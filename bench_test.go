package repro_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates the corresponding result on the device model; the
// expensive GENESIS preparation is done once outside the timed region.
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured numbers.

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/dnn"
	"repro/internal/genesis"
	"repro/internal/harness"
	sonicpkg "repro/internal/sonic"
)

var (
	prepOnce sync.Once
	prepped  []*harness.Prepared
	prepEval *harness.Eval
	prepErr  error
)

// prepare runs the quick GENESIS sweep for all three networks and measures
// every (runtime, power) cell once.
func prepare(b *testing.B) ([]*harness.Prepared, *harness.Eval) {
	b.Helper()
	prepOnce.Do(func() {
		prepped, prepErr = harness.PrepareAll(harness.PrepareOptions{Seed: 1, Quick: true})
		if prepErr != nil {
			return
		}
		prepEval, prepErr = harness.RunAll(prepped)
	})
	if prepErr != nil {
		b.Fatal(prepErr)
	}
	return prepped, prepEval
}

// BenchmarkTrain measures the float64 training loop on the HAR network —
// the inner loop GENESIS's sweep spends most of its time in. One iteration
// is one epoch over 240 samples; -benchmem makes per-sample allocation
// regressions (the scratch-tensor reuse this repo relies on) visible.
func BenchmarkTrain(b *testing.B) {
	ds, err := dnn.DatasetFor("har", 1, 360, 90)
	if err != nil {
		b.Fatal(err)
	}
	n, err := dnn.NetworkFor("har", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.MaxSamplesPerEpoch = 240
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnn.Train(n, ds, cfg)
	}
}

// BenchmarkGenesisQuick measures one full quick-mode GENESIS sweep for the
// HAR network: base training, per-config fine-tuning, quantization, and
// measured deployment. This is the preparation pipeline PR 5 parallelized.
func BenchmarkGenesisQuick(b *testing.B) {
	opts := genesis.DefaultOptions("har")
	opts.TrainSamples, opts.TestSamples = 360, 90
	opts.Epochs, opts.FineTuneEpochs = 2, 1
	opts.MaxSamplesPerEpoch = 240
	opts.PruneLevels = []float64{0.75, 0.9}
	opts.RankFracs = []float64{0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := genesis.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Chosen < 0 {
			b.Fatal("no feasible configuration chosen")
		}
	}
}

// BenchmarkFig1 regenerates Fig. 1: IMpJ vs accuracy sending full images.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := harness.Fig1(100); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2: IMpJ vs accuracy sending results only.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := harness.Fig2(100); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable1 regenerates the application-model parameter table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := harness.Table1(); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable2 regenerates the network/compression summary (Table 2).
func BenchmarkTable2(b *testing.B) {
	ps, _ := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := harness.Table2(ps); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig4 regenerates the accuracy-vs-MACs sweeps (Fig. 4a-c),
// including the full GENESIS evaluation pipeline for one network per
// iteration.
func BenchmarkFig4(b *testing.B) {
	ps, _ := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if tab := harness.Fig4(p); len(tab.Rows) == 0 {
				b.Fatal("empty")
			}
		}
	}
}

// BenchmarkFig5 regenerates the IMpJ-vs-energy selections (Fig. 5a-c).
func BenchmarkFig5(b *testing.B) {
	ps, _ := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			if tab := harness.Fig5(p); len(tab.Rows) == 0 {
				b.Fatal("empty")
			}
		}
	}
}

// BenchmarkFig6 regenerates the tiling-vs-loop-continuation microbenchmark.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := harness.Fig6(1000, 55); len(tab.Rows) != 3 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkFig9 measures inference time for all six implementations on all
// four power systems across the three networks — the paper's headline
// figure. One iteration is the full 72-cell measurement matrix.
func BenchmarkFig9(b *testing.B) {
	ps, _ := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := harness.RunAll(ps)
		if err != nil {
			b.Fatal(err)
		}
		if tab := harness.Fig9(ev); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig10 regenerates the kernel/control split per layer.
func BenchmarkFig10(b *testing.B) {
	_, ev := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := harness.Fig10(ev); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig11 regenerates inference energy on the 1 mF system.
func BenchmarkFig11(b *testing.B) {
	_, ev := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := harness.Fig11(ev); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig12 regenerates SONIC's per-operation energy breakdown.
func BenchmarkFig12(b *testing.B) {
	_, ev := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := harness.Fig12(ev); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkClaims recomputes the §9.1 headline ratios.
func BenchmarkClaims(b *testing.B) {
	_, ev := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := harness.Claims(ev); len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblation measures the TAILS LEA/DMA ablation (§9.1).
func BenchmarkAblation(b *testing.B) {
	ps, _ := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Ablation(ps[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSparseUndoLogging measures the design-choice ablation of
// §6.2.2: SONIC's sparse undo-logging versus loop-ordered buffering on the
// sparse fully-connected layers.
func BenchmarkAblationSparseUndoLogging(b *testing.B) {
	ps, _ := prepare(b)
	p := ps[1] // har: sparse-FC heavy
	input := p.Model.QuantizeInput(p.Input)
	cont := harness.Powers()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rt := range []repro.Runtime{sonicpkg.SONIC{}, sonicpkg.SONIC{SparseViaBuffering: true}} {
			if _, err := harness.Measure(p.Net, p.Model, rt, cont, input); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtensions measures the checkpointing-baseline comparison (§2)
// and the §10 JIT index-checkpoint architecture estimate.
func BenchmarkExtensions(b *testing.B) {
	ps, _ := prepare(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Extensions(ps[1]); err != nil {
			b.Fatal(err)
		}
	}
}
