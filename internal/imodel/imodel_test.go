package imodel

import (
	"math"
	"testing"
	"testing/quick"
)

func wildlifeWith(einfer, tp, tn float64) Params {
	p := WildlifeDefaults()
	p.EInfer, p.TP, p.TN = einfer, tp, tn
	return p
}

func TestValidate(t *testing.T) {
	if err := WildlifeDefaults().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := WildlifeDefaults()
	bad.TP = 1.5
	if bad.Validate() == nil {
		t.Error("tp > 1 should fail")
	}
	bad = WildlifeDefaults()
	bad.EComm = -1
	if bad.Validate() == nil {
		t.Error("negative energy should fail")
	}
}

func TestIdealBeatsBaseline(t *testing.T) {
	p := WildlifeDefaults()
	if Ideal(p) <= Baseline(p) {
		t.Errorf("Ideal (%v) should beat Baseline (%v)", Ideal(p), Baseline(p))
	}
	// With p = 0.05 and communication-dominated energy, the gap is ~1/p = 20x.
	ratio := Ideal(p) / Baseline(p)
	if ratio < 15 || ratio > 21 {
		t.Errorf("Ideal/Baseline = %v, want ~20 (paper Fig. 1)", ratio)
	}
}

func TestPerfectInferenceApproachesIdeal(t *testing.T) {
	// With tp = tn = 1 and EInfer = 0, Eq. 3 reduces to Eq. 2.
	p := wildlifeWith(0, 1, 1)
	if math.Abs(Inference(p)-Ideal(p)) > 1e-12 {
		t.Errorf("perfect inference %v != ideal %v", Inference(p), Ideal(p))
	}
}

func TestZeroAccuracyInferenceSendsNothing(t *testing.T) {
	p := wildlifeWith(EInferSONICTAILS, 0, 1)
	if Inference(p) != 0 {
		t.Errorf("tp = 0 should give IMpJ 0, got %v", Inference(p))
	}
}

func TestPaperFig1Shape(t *testing.T) {
	// At high accuracy, both local-inference systems deliver about
	// 1/p = 20x the baseline (Fig. 1's annotation), and the naive and
	// SONIC&TAILS curves are close (communication dominates).
	naive := Inference(wildlifeWith(EInferNaive, 0.99, 0.99))
	st := Inference(wildlifeWith(EInferSONICTAILS, 0.99, 0.99))
	base := Baseline(WildlifeDefaults())
	if naive/base < 10 || st/base < 10 {
		t.Errorf("local inference should dominate baseline: naive %v, st %v, base %v",
			naive/base, st/base, base)
	}
	if st/naive > 1.2 {
		t.Errorf("with full-image comms SONIC&TAILS should be within ~14%% of naive, ratio %v", st/naive)
	}
	if st <= naive {
		t.Errorf("SONIC&TAILS (%v) should still edge out naive (%v)", st, naive)
	}
}

func TestPaperFig2Shape(t *testing.T) {
	// Sending only results divides Ecomm by ~98: now inference energy
	// matters, and SONIC&TAILS beats naive by ~4.6x (paper Fig. 2).
	p := WildlifeDefaults()
	p.EComm /= ResultOnlyCommFactor
	naive := p
	naive.EInfer, naive.TP, naive.TN = EInferNaive, 0.99, 0.99
	st := p
	st.EInfer, st.TP, st.TN = EInferSONICTAILS, 0.99, 0.99
	ratio := Inference(st) / Inference(naive)
	if ratio < 3 || ratio > 7 {
		t.Errorf("result-only SONIC&TAILS/naive = %v, want ~4.6 (paper)", ratio)
	}
	// The paper reports ~480x over always-send for SONIC&TAILS.
	base := Baseline(WildlifeDefaults())
	overBase := Inference(st) / base
	if overBase < 200 || overBase > 900 {
		t.Errorf("SONIC&TAILS over always-send = %v, want ~480", overBase)
	}
	// And a ~2.2x gap to ideal (result-only).
	ideal := p
	gap := Ideal(ideal) / Inference(st)
	if gap < 1.5 || gap > 3.5 {
		t.Errorf("ideal/SONIC&TAILS gap = %v, want ~2.2", gap)
	}
}

// Property: IMpJ is monotonically non-decreasing in accuracy.
func TestMonotoneInAccuracyProperty(t *testing.T) {
	f := func(seed uint16) bool {
		a1 := float64(seed%100) / 100
		a2 := a1 + float64(seed%7)/10
		if a2 > 1 {
			a2 = 1
		}
		lo := Inference(wildlifeWith(EInferSONICTAILS, a1, a1))
		hi := Inference(wildlifeWith(EInferSONICTAILS, a2, a2))
		return hi >= lo-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: inference IMpJ never exceeds ideal.
func TestInferenceBoundedByIdealProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		tp := float64(a) / 255
		tn := float64(b) / 255
		p := wildlifeWith(EInferSONICTAILS, tp, tn)
		return Inference(p) <= Ideal(p)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSweepAccuracy(t *testing.T) {
	acc, impj := SweepAccuracy(wildlifeWith(EInferSONICTAILS, 0, 0), Inference, 10)
	if len(acc) != 11 || len(impj) != 11 {
		t.Fatalf("sweep lengths %d/%d", len(acc), len(impj))
	}
	if acc[0] != 0 || acc[10] != 1 {
		t.Errorf("endpoints wrong: %v", acc)
	}
	for i := 1; i < len(impj); i++ {
		if impj[i] < impj[i-1]-1e-15 {
			t.Errorf("sweep not monotone at %d", i)
		}
	}
}
