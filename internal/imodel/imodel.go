// Package imodel implements the paper's analytical application-performance
// model (§3, Table 1, Eqs. 1–3). The figure of merit is IMpJ — "interesting
// messages per Joule" — the number of interesting sensor readings an
// energy-harvesting device communicates per Joule harvested.
//
// Energy is divided between sensing, inference, and communication; local
// inference filters readings so that only (hopefully) interesting ones are
// communicated. GENESIS uses this model as the objective when choosing a
// compressed network configuration, and the Fig. 1/Fig. 2 benchmarks sweep
// it over accuracy.
package imodel

import "fmt"

// Params are the model inputs described in the paper's Table 1. Energies
// are in Joules; p, tp, tn are probabilities.
type Params struct {
	P      float64 // base rate of "interesting" events
	TP     float64 // true-positive rate of inference
	TN     float64 // true-negative rate of inference
	ESense float64 // energy cost of one sensor reading (J)
	EComm  float64 // energy cost of communicating one reading (J)
	EInfer float64 // energy cost of one inference (J)
}

// Validate reports whether the parameters are in range.
func (p Params) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
		prob bool
	}{
		{"p", p.P, true}, {"tp", p.TP, true}, {"tn", p.TN, true},
		{"Esense", p.ESense, false}, {"Ecomm", p.EComm, false}, {"Einfer", p.EInfer, false},
	} {
		if pr.v < 0 {
			return fmt.Errorf("imodel: %s must be non-negative, got %v", pr.name, pr.v)
		}
		if pr.prob && pr.v > 1 {
			return fmt.Errorf("imodel: %s must be a probability, got %v", pr.name, pr.v)
		}
	}
	return nil
}

// Baseline is Eq. 1: a system with no local inference communicates every
// sensor reading, interesting or not.
func Baseline(p Params) float64 {
	return p.P / (p.ESense + p.EComm)
}

// Ideal is Eq. 2: an (unbuildable) oracle communicates exactly the
// interesting readings and spends no inference energy.
func Ideal(p Params) float64 {
	return p.P / (p.ESense + p.P*p.EComm)
}

// Inference is Eq. 3: a realistic system pays EInfer per reading and
// communicates true positives plus false positives
// (rate (1-p)(1-tn) of uninteresting readings leak through).
func Inference(p Params) float64 {
	sent := p.P*p.TP + (1-p.P)*(1-p.TN)
	return p.P * p.TP / ((p.ESense + p.EInfer) + sent*p.EComm)
}

// WildlifeDefaults returns the paper's wildlife-monitoring case-study
// parameters (§3.2): p=0.05, Esense=10 mJ, Ecomm=23 J over OpenChirp.
// tp/tn are left at 1 for the caller to sweep.
func WildlifeDefaults() Params {
	return Params{P: 0.05, TP: 1, TN: 1, ESense: 0.010, EComm: 23.0}
}

// EInferNaive and EInferSONICTAILS are the measured per-inference energies
// the paper plugs into the case study: 198 mJ for the naive task-tiled
// implementation (Tile-8) and 26 mJ for SONIC & TAILS.
const (
	EInferNaive      = 0.198
	EInferSONICTAILS = 0.026
)

// ResultOnlyCommFactor is the communication-energy reduction when sending
// only the inference result instead of the full sensor reading (§3.2:
// "Ecomm decreases by 98×" in the wildlife example).
const ResultOnlyCommFactor = 98.0

// SweepAccuracy evaluates a model curve at evenly spaced accuracies in
// [0, 1], treating tp == tn == accuracy as the paper's figures do. The
// returned slices have n+1 points including both endpoints.
func SweepAccuracy(base Params, eval func(Params) float64, n int) (acc, impj []float64) {
	acc = make([]float64, n+1)
	impj = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		a := float64(i) / float64(n)
		p := base
		p.TP, p.TN = a, a
		acc[i] = a
		impj[i] = eval(p)
	}
	return acc, impj
}
