package intermittest

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// forkRuntime pairs a runtime with an explicit subtest label: the tape
// variants share Name() with their interpreted twins (the executor is not
// part of the runtime's identity), so the label disambiguates.
type forkRuntime struct {
	label string
	rt    core.Runtime
}

// forkRuntimes is every runtime the fork oracle must cover: the six Fig. 9
// implementations, the checkpoint baseline, and the deliberately unsafe
// negative control — whose corrupted verdicts must survive forking
// bit-for-bit just as faithfully as the clean runtimes' verdicts do — plus
// the op-tape variant of each real runtime, so journal/snapshot forking is
// proven against both executors.
func forkRuntimes() []forkRuntime {
	return []forkRuntime{
		{"base", baseline.Base{}},
		{"base-tape", baseline.Base{Tape: true}},
		{"tile-8", baseline.Tile{TileSize: 8}},
		{"tile-8-tape", baseline.Tile{TileSize: 8, Tape: true}},
		{"tile-32", baseline.Tile{TileSize: 32}},
		{"tile-32-tape", baseline.Tile{TileSize: 32, Tape: true}},
		{"tile-128", baseline.Tile{TileSize: 128}},
		{"tile-128-tape", baseline.Tile{TileSize: 128, Tape: true}},
		{"sonic", sonic.SONIC{}},
		{"sonic-tape", sonic.SONIC{Tape: true}},
		{"tails", tails.TAILS{}},
		{"tails-tape", tails.TAILS{Tape: true}},
		{"ckpt-8", checkpoint.Checkpoint{Interval: 8}},
		{"ckpt-8-tape", checkpoint.Checkpoint{Interval: 8, Tape: true}},
		{"broken", Broken{}},
	}
}

// diffResults asserts two ScheduleResults are bit-identical in everything a
// campaign verdict depends on: completion, error, first logit divergence,
// WAR totals and retained records, and the device's full final accounting
// (op counts, per-section stats, reboots, dead time, commit maximum).
func diffResults(t *testing.T, label string, want, got *ScheduleResult) bool {
	t.Helper()
	ok := true
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf(label+": "+format, args...)
		ok = false
	}
	if want.DNC != got.DNC {
		fail("DNC: scratch=%v fork=%v", want.DNC, got.DNC)
	}
	switch {
	case (want.Err == nil) != (got.Err == nil):
		fail("error: scratch=%v fork=%v", want.Err, got.Err)
	case want.Err != nil && want.Err.Error() != got.Err.Error():
		fail("error text: scratch=%q fork=%q", want.Err, got.Err)
	}
	if !reflect.DeepEqual(want.Mismatch, got.Mismatch) {
		fail("mismatch: scratch=%v fork=%v", want.Mismatch, got.Mismatch)
	}
	if want.WARCount != got.WARCount {
		fail("WAR count: scratch=%d fork=%d", want.WARCount, got.WARCount)
	}
	if !reflect.DeepEqual(want.WAR, got.WAR) {
		fail("WAR records: scratch=%v fork=%v", want.WAR, got.WAR)
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		fail("device stats: scratch=%+v fork=%+v", want.Stats, got.Stats)
	}
	return ok
}

// TestForkDifferentialOracle proves the snapshot-and-fork check path is
// bit-identical to full from-scratch simulation, for every runtime: same
// logit verdicts, same WAR counts and records, same DNC outcomes, and the
// same final device Stats down to per-section op attribution and dead
// time. It samples single-failure boundaries across the whole run (edges
// included) plus multi-failure schedules whose later failures are
// simulated live in the forked suffix.
//
// This test must never skip: a runtime that stops implementing
// core.Resumer, or a journal that fails to cover the golden run, silently
// reverts the campaign to the slow path and voids the equivalence claim —
// so both conditions are hard failures here, and CI greps for this test's
// per-runtime PASS lines.
func TestForkDifferentialOracle(t *testing.T) {
	qm, x := TinyModel(1)
	for _, fr := range forkRuntimes() {
		rt, label := fr.rt, fr.label
		t.Run(label, func(t *testing.T) {
			t.Parallel()
			scratch, err := NewCheckerOpt(qm, x, rt, Options{CheckWAR: true, ForceScratch: true})
			if err != nil {
				t.Fatal(err)
			}
			if scratch.Forks() {
				t.Fatal("ForceScratch checker still forks")
			}
			// A short stride forces many snapshots, so sampled boundaries
			// land in many distinct restore windows.
			forked, err := NewCheckerOpt(qm, x, rt, Options{CheckWAR: true, SnapStride: 256})
			if err != nil {
				t.Fatal(err)
			}
			if !forked.Forks() {
				t.Fatalf("%s does not fork: journal unavailable (Resumer regression?)", label)
			}
			if forked.TotalOps() != scratch.TotalOps() {
				t.Fatalf("golden op counts differ: fork=%d scratch=%d",
					forked.TotalOps(), scratch.TotalOps())
			}

			total := int(forked.TotalOps())
			stride := total / 60
			if stride < 1 {
				stride = 1
			}
			bounds := []int{1, 2, total - 1, total}
			for b := 1 + stride/2; b <= total; b += stride {
				bounds = append(bounds, b)
			}
			bad := 0
			for _, b := range bounds {
				if b < 1 || b > total {
					continue
				}
				if !diffResults(t, label+" single", scratch.Check([]int{b}), forked.Check([]int{b})) {
					if bad++; bad >= 3 {
						t.Fatal("too many divergences; stopping early")
					}
				}
			}

			// Multi-failure schedules: the journal eliminates only the
			// prefix before the first failure; everything after — including
			// later brown-outs and the DNC cutoff — runs live in the suffix.
			mid := total / 2
			for _, gaps := range [][]int{
				{1, 40, 40},
				{mid, 500, 500},
				{total, 7},
				{mid, 1, 1, 1, 1, 1, 1, 1}, // immediate refailures: DNC parity
			} {
				if !diffResults(t, label+" multi", scratch.Check(gaps), forked.Check(gaps)) {
					if bad++; bad >= 3 {
						t.Fatal("too many divergences; stopping early")
					}
				}
			}
		})
	}
}

// TestMinimizeOneMinimal is the 1-minimality property test: Minimize's
// output must still fail, while removing any single element or decrementing
// any single gap must yield a passing schedule. Seeded across runtimes and
// failure modes: logit corruption (Broken), golden-input corruption (Base),
// and does-not-complete (SONIC under immediate refailure).
func TestMinimizeOneMinimal(t *testing.T) {
	qm, x := TinyModel(1)
	cases := []struct {
		rt   core.Runtime
		seed func(t *testing.T) []int
	}{
		{Broken{}, func(t *testing.T) []int { return []int{firstFailingBound(t, qm, x, Broken{}), 500, 500} }},
		{baseline.Base{}, func(t *testing.T) []int { return []int{firstFailingBound(t, qm, x, baseline.Base{}), 300} }},
		{sonic.SONIC{}, func(t *testing.T) []int {
			gaps := []int{50}
			for i := 0; i < 8; i++ {
				gaps = append(gaps, 1)
			}
			return gaps
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.rt.Name(), func(t *testing.T) {
			t.Parallel()
			c, err := NewCheckerOpt(qm, x, tc.rt, Options{})
			if err != nil {
				t.Fatal(err)
			}
			seed := tc.seed(t)
			if !c.Check(seed).Failing() {
				t.Fatalf("seed schedule %v does not fail", seed)
			}
			min := c.Minimize(seed)
			if !c.Check(min).Failing() {
				t.Fatalf("minimized schedule %v no longer fails", min)
			}
			if len(min) == 0 {
				t.Fatal("minimized schedule is empty yet failing")
			}
			for i := range min {
				drop := append(append([]int(nil), min[:i]...), min[i+1:]...)
				if len(drop) > 0 && c.Check(drop).Failing() {
					t.Errorf("not 1-minimal: dropping element %d of %v still fails", i, min)
				}
			}
			for i := range min {
				if min[i] <= 1 {
					continue
				}
				dec := append([]int(nil), min...)
				dec[i]--
				if c.Check(dec).Failing() {
					t.Errorf("not 1-minimal: decrementing gap %d of %v still fails", i, min)
				}
			}
			t.Logf("%s: %v -> %v", tc.rt.Name(), seed, min)
		})
	}
}

// firstFailingBound sweeps the runtime and returns its first mismatching
// boundary, failing the test if the sweep is clean.
func firstFailingBound(t *testing.T, qm *dnn.QuantModel, x []float64, rt core.Runtime) int {
	t.Helper()
	rep, err := SweepRuntime(qm, x, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) == 0 {
		t.Fatalf("%s: no failing boundary to seed from", rt.Name())
	}
	return rep.Mismatches[0].Boundary
}
