package intermittest

import (
	"fmt"
	"strconv"
	"strings"
)

// MinLiveGap is the fixed margin added on top of a runtime's measured
// atomic-region size when computing its liveness floor (Checker.
// LiveGapFloor); it absorbs small boot/resume costs the golden run's
// region measurement cannot see.
const MinLiveGap = 64

// maxFuzzFailures bounds a decoded schedule's length so one fuzz execution
// stays fast; the trailing continuous-power phase checks the result.
const maxFuzzFailures = 32

// DecodeSchedule maps arbitrary fuzzer bytes onto relative per-cycle op
// budgets in [0, 4095]: each big-endian byte pair is one charge cycle. The
// mapping is total — every input decodes to a valid schedule — which is
// what coverage-guided fuzzing wants. Callers add each runtime's liveness
// floor via Checker.AbsoluteGaps before running, so a brown-out schedule
// can never starve a correct runtime of the energy one atomic region needs.
func DecodeSchedule(data []byte) []int {
	n := len(data) / 2
	if n > maxFuzzFailures {
		n = maxFuzzFailures
	}
	gaps := make([]int, 0, n)
	for i := 0; i < n; i++ {
		gaps = append(gaps, (int(data[2*i])<<8|int(data[2*i+1]))%4096)
	}
	return gaps
}

// ParseSchedule parses a comma-separated gap list ("375,500,64") as passed
// on the cmd/fuzz command line.
func ParseSchedule(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var gaps []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("intermittest: bad schedule element %q: %w", f, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("intermittest: schedule gap %d must be >= 1", v)
		}
		gaps = append(gaps, v)
	}
	return gaps, nil
}

// FormatSchedule renders a gap list in ParseSchedule's format.
func FormatSchedule(gaps []int) string {
	parts := make([]string, len(gaps))
	for i, g := range gaps {
		parts[i] = strconv.Itoa(g)
	}
	return strings.Join(parts, ",")
}
