package intermittest

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/sonic"
)

// Broken is the campaign's deliberately unsafe negative control: a SONIC
// variant whose dense fully-connected layers accumulate *in place* — read
// the partial, add, write it back — without double buffering or undo
// logging. Under continuous power it is bit-identical to SONIC (same
// accumulation order), so only the fault-injection campaign can tell them
// apart: a brown-out landing between the partial's store and the cursor
// commit replays the iteration and applies its multiply-accumulate twice.
// This is exactly the WAR bug class of §4; the consistency checker must
// flag it and the differential sweep must observe corrupted logits.
type Broken struct{}

// Name identifies the runtime.
func (Broken) Name() string { return "broken" }

// Infer mirrors SONIC's drive loop with the unsafe dense kernel patched in.
func (Broken) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	return Broken{}.ResumeInfer(img, nil)
}

// ResumeInfer implements core.Resumer, so the campaign's fork path covers
// the negative control too — its corrupted logits must survive forking
// bit-for-bit for the sweep's verdicts to stay trustworthy.
func (Broken) ResumeInfer(img *core.Image, atReboot func() error) ([]fixed.Q15, error) {
	e := &sonic.Exec{Img: img, Dev: img.Dev}
	e.Dev.Emit(mcu.TraceRunBegin, "broken", 0)
	if atReboot != nil {
		if err := atReboot(); err != nil {
			return nil, err
		}
	}
	if err := e.Dev.Run(func() { e.ResetVolatile(); e.Run(brokenLayer) }); err != nil {
		return nil, err
	}
	e.Dev.FlushTrace()
	return img.ReadOutput(sonic.FinalParity(img.Model)), nil
}

// brokenLayer is Broken's layer dispatch: dense layers run the in-place
// kernel, everything else falls back to SONIC's safe software kernels.
func brokenLayer(s *sonic.Exec, li int, parity bool, start sonic.Cursor) {
	l := &s.Img.Layers[li]
	if l.Q.Kind != dnn.QDense {
		s.RunLayerSoftware(li, parity, start)
		return
	}
	q := l.Q
	dev := s.Dev
	src, dst := sonic.ActBufs(s.Img, parity)
	acc := s.Img.AccA
	name := core.LayerName(s.Img.Model, li)
	switch start.Pass {
	case 0:
		// Zero the in-place accumulator (write-only, idempotent — the bug
		// is not here).
		s.MapLayer(name, start, q.Out, func(o int) {
			dev.Store(acc, o, 0)
		})
		start = sonic.Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
		fallthrough
	case 1:
		// In-place accumulation: acc[o] += W[o,i]·x[i]. Re-executing an
		// iteration after a brown-out reads the already-updated partial —
		// the classic non-idempotent loop body.
		total := q.In * q.Out
		for it := start.I; it < total; it++ {
			dev.SetSection(name, mcu.PhaseKernel)
			dev.Op(mcu.OpBranch)
			i, o := it/q.Out, it%q.Out
			x := fixed.Q15(dev.Load(src, i))
			wv := fixed.Q15(dev.Load(l.W, o*q.In+i))
			dev.Op(mcu.OpFixedMul)
			a := fixed.Acc(dev.Load(acc, o))
			dev.Op(mcu.OpFixedAdd)
			dev.Store(acc, o, int64(a.MAC(wv, x)))
			dev.SetSection(name, mcu.PhaseControl)
			s.Checkpoint(sonic.Cursor{Layer: start.Layer, Pass: 1, I: it + 1})
		}
		start = sonic.Cursor{Layer: start.Layer, Pass: 2}
		s.Transition(name, start)
		fallthrough
	default:
		s.MapLayer(name, start, q.Out, func(o int) {
			bq := fixed.Q15(dev.Load(l.B, o))
			a := fixed.Acc(dev.Load(acc, o))
			dev.Op(mcu.OpFixedAdd)
			dev.Store(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
		})
	}
}
