package intermittest

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// TestSparseAdversarialCampaign sweeps a brown-out across every operation
// boundary of the adversarial CSR model — hitting every row boundary,
// every multi-row advance over empty rows, and every undo-log arm point
// (the rd > pos resume) of every row shape — for all seven runtimes under
// both executors, with the WAR shadow tracker armed. The tape executors'
// fused row-span trains must survive exactly where the interpreted walk
// does; CI greps for each runtime's PASS line, so a skip or a dropped
// subtest fails the build.
func TestSparseAdversarialCampaign(t *testing.T) {
	qm, x := AdversarialCSRModel(1)
	for _, tc := range []struct {
		rt   core.Runtime
		tape bool
	}{
		{baseline.Base{}, false}, {baseline.Base{Tape: true}, true},
		{baseline.Tile{TileSize: 8}, false}, {baseline.Tile{TileSize: 8, Tape: true}, true},
		{baseline.Tile{TileSize: 32}, false}, {baseline.Tile{TileSize: 32, Tape: true}, true},
		{baseline.Tile{TileSize: 128}, false}, {baseline.Tile{TileSize: 128, Tape: true}, true},
		{sonic.SONIC{}, false}, {sonic.SONIC{Tape: true}, true},
		{tails.TAILS{}, false}, {tails.TAILS{Tape: true}, true},
		{checkpoint.Checkpoint{Interval: 8}, false}, {checkpoint.Checkpoint{Interval: 8, Tape: true}, true},
	} {
		rt := tc.rt
		name := rt.Name()
		if tc.tape {
			name += "-tape"
		}
		t.Run(name, func(t *testing.T) {
			// The naive baseline is the negative control: it must fail
			// somewhere, proving the sweep has teeth on this model too.
			unsafe := rt.Name() == "base"
			rep, err := SweepRuntime(qm, x, rt, Options{CheckWAR: !unsafe})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Exhaustive || int64(rep.Swept) != rep.TotalOps {
				t.Fatalf("sweep not exhaustive: swept %d of %d", rep.Swept, rep.TotalOps)
			}
			if unsafe {
				if len(rep.Mismatches) == 0 {
					t.Fatalf("negative control survived the sweep: %s", rep.Summary())
				}
				return
			}
			if !rep.Clean() {
				t.Errorf("NOT clean: %s", rep.Summary())
				for i, m := range rep.Mismatches {
					if i >= 5 {
						break
					}
					t.Logf("  %s", m)
				}
				for i, v := range rep.WARSample {
					if i >= 5 {
						break
					}
					t.Logf("  WAR %s[%d] layer=%s op=%d", v.Region, v.Index, v.Layer, v.Op)
				}
			}
		})
	}
}
