package intermittest

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dnn"
)

// TinyModel builds the smallest quantized model that still exercises every
// kernel class the runtimes implement — a pruned convolution (including
// the bias-only finalize path when pruning kills a filter), ReLU, max
// pooling, a sparse fully-connected layer (SONIC's undo-logging path), and
// a dense fully-connected layer. One inference is a few thousand device
// operations, small enough that a fault-injection campaign can place a
// brown-out at every single operation boundary for every runtime.
//
// The seed fully determines the weights and the returned input sample, so
// campaigns reproduce from one value.
func TinyModel(seed uint64) (*dnn.QuantModel, []float64) {
	rng := rand.New(rand.NewPCG(seed, mix(seed)))
	n := dnn.NewNetwork("tiny", dnn.Shape{1, 2, 8})
	conv := dnn.NewConv(rng, 2, 1, 1, 3) // -> 2x2x6
	conv.Prune(0.2)
	n.Add(
		conv,
		dnn.NewReLU(),
		dnn.NewMaxPool(2), // -> 2x1x3
		dnn.NewFlatten(),
		dnn.NewDense(rng, 6, 6),
		dnn.NewReLU(),
		dnn.NewDense(rng, 3, 6),
	)
	n.Layers[4] = dnn.NewSparseDense(n.Layers[4].(*dnn.Dense), 0.05)

	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()*1.6 - 0.8
	}
	qm, err := dnn.Quantize(n, [][]float64{x})
	if err != nil {
		// The tiny architecture is fixed; quantization over a nonempty
		// calibration sample cannot fail for it.
		panic("intermittest: tiny model does not quantize: " + err.Error())
	}
	return qm, x
}

// AdversarialCSRModel builds a tiny network whose sparse layer has every
// CSR row shape that stresses the sparse walk's control flow: a leading
// empty row (the very first iteration starts with a row advance), runs of
// consecutive empty rows (multi-row advances in one iteration),
// single-nonzero rows (boundary iterations only, no in-row run), a row
// long enough to span multiple checkpoint periods and charge quanta, and a
// trailing empty row (RowPtr's tail is walked but never executed). A
// fault-injection sweep over it hits a brown-out at every row boundary and
// every undo-log arm point (the rd > pos resume iteration) of each shape.
//
// The seed determines the weight values and the input sample; the CSR
// structure is fixed.
func AdversarialCSRModel(seed uint64) (*dnn.QuantModel, []float64) {
	rng := rand.New(rand.NewPCG(seed, mix(seed)))
	const in, out = 24, 10
	// Nonzeros kept per output row, by row index.
	shape := [out]int{0, 1, 0, 0, 20, 3, 1, 0, 5, 0}

	d := dnn.NewDense(rng, out, in)
	wd := d.W.Data()
	for o := 0; o < out; o++ {
		// Below-threshold weights prune; kept entries get a solid
		// magnitude so quantization retains them all.
		cols := rng.Perm(in)[:shape[o]]
		for i := 0; i < in; i++ {
			wd[o*in+i] = (rng.Float64() - 0.5) * 0.01
		}
		for _, c := range cols {
			v := 0.3 + rng.Float64()*0.6
			if rng.IntN(2) == 0 {
				v = -v
			}
			wd[o*in+c] = v
		}
	}

	n := dnn.NewNetwork("csr-adv", dnn.Shape{1, 1, in})
	n.Add(d, dnn.NewReLU(), dnn.NewDense(rng, 4, out))
	n.Layers[0] = dnn.NewSparseDense(d, 0.1)

	x := make([]float64, in)
	for i := range x {
		x[i] = rng.Float64()*1.6 - 0.8
	}
	qm, err := dnn.Quantize(n, [][]float64{x})
	if err != nil {
		panic("intermittest: adversarial CSR model does not quantize: " + err.Error())
	}
	// The sweep's value rests on the crafted structure surviving pruning
	// and quantization; check it rather than assume it.
	q := &qm.Layers[0]
	if q.Kind != dnn.QSparseDense {
		panic("intermittest: adversarial CSR layer did not stay sparse")
	}
	for o := 0; o < out; o++ {
		if got := int(q.RowPtr[o+1] - q.RowPtr[o]); got != shape[o] {
			panic(fmt.Sprintf("intermittest: adversarial CSR row %d has %d nonzeros, want %d", o, got, shape[o]))
		}
	}
	return qm, x
}

// mix derives a second PCG state word from one seed (SplitMix64 finalizer),
// mirroring the energy package's seeding so one CLI value pins everything.
func mix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
