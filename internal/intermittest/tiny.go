package intermittest

import (
	"math/rand/v2"

	"repro/internal/dnn"
)

// TinyModel builds the smallest quantized model that still exercises every
// kernel class the runtimes implement — a pruned convolution (including
// the bias-only finalize path when pruning kills a filter), ReLU, max
// pooling, a sparse fully-connected layer (SONIC's undo-logging path), and
// a dense fully-connected layer. One inference is a few thousand device
// operations, small enough that a fault-injection campaign can place a
// brown-out at every single operation boundary for every runtime.
//
// The seed fully determines the weights and the returned input sample, so
// campaigns reproduce from one value.
func TinyModel(seed uint64) (*dnn.QuantModel, []float64) {
	rng := rand.New(rand.NewPCG(seed, mix(seed)))
	n := dnn.NewNetwork("tiny", dnn.Shape{1, 2, 8})
	conv := dnn.NewConv(rng, 2, 1, 1, 3) // -> 2x2x6
	conv.Prune(0.2)
	n.Add(
		conv,
		dnn.NewReLU(),
		dnn.NewMaxPool(2), // -> 2x1x3
		dnn.NewFlatten(),
		dnn.NewDense(rng, 6, 6),
		dnn.NewReLU(),
		dnn.NewDense(rng, 3, 6),
	)
	n.Layers[4] = dnn.NewSparseDense(n.Layers[4].(*dnn.Dense), 0.05)

	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()*1.6 - 0.8
	}
	qm, err := dnn.Quantize(n, [][]float64{x})
	if err != nil {
		// The tiny architecture is fixed; quantization over a nonempty
		// calibration sample cannot fail for it.
		panic("intermittest: tiny model does not quantize: " + err.Error())
	}
	return qm, x
}

// mix derives a second PCG state word from one seed (SplitMix64 finalizer),
// mirroring the energy package's seeding so one CLI value pins everything.
func mix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
