package intermittest

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// protected returns the six crash-consistent runtimes the paper claims
// survive arbitrary brown-out placement.
func protected() []core.Runtime {
	return []core.Runtime{
		baseline.Tile{TileSize: 8},
		baseline.Tile{TileSize: 32},
		baseline.Tile{TileSize: 128},
		sonic.SONIC{},
		tails.TAILS{},
		checkpoint.Checkpoint{Interval: 8},
	}
}

func TestTinyModelDeterministic(t *testing.T) {
	a, xa := TinyModel(7)
	b, xb := TinyModel(7)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatalf("input sample not reproducible at %d", i)
		}
	}
	la := a.Forward(a.QuantizeInput(xa))
	lb := b.Forward(b.QuantizeInput(xb))
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("logits not reproducible at %d: %d vs %d", i, la[i], lb[i])
		}
	}
}

// TestProtectedRuntimesExhaustivelyClean is the tentpole acceptance
// criterion: a brown-out at every single operation boundary, under all six
// crash-consistent runtimes, with the WAR shadow tracker armed — zero logit
// mismatches, zero consistency violations, every run completes.
func TestProtectedRuntimesExhaustivelyClean(t *testing.T) {
	qm, x := TinyModel(1)
	rep, err := Campaign(qm, x, protected(), Options{CheckWAR: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Runtimes {
		if !rr.Exhaustive {
			t.Errorf("%s: sweep not exhaustive (%d ops)", rr.Runtime, rr.TotalOps)
		}
		if int64(rr.Swept) != rr.TotalOps {
			t.Errorf("%s: swept %d of %d boundaries", rr.Runtime, rr.Swept, rr.TotalOps)
		}
		if !rr.Clean() {
			t.Errorf("%s: NOT clean: %s", rr.Runtime, rr.Summary())
			for i, m := range rr.Mismatches {
				if i >= 5 {
					break
				}
				t.Logf("  %s", m)
			}
			for i, v := range rr.WARSample {
				if i >= 5 {
					break
				}
				t.Logf("  WAR %s[%d] layer=%s op=%d", v.Region, v.Index, v.Layer, v.Op)
			}
		}
	}
	t.Logf("\n%s", rep)
}

// TestBaseIsUnsafe: the naive baseline is a natural negative control — its
// in-place ReLU overwrites the input activations, so a restart from scratch
// reads corrupted input. Both oracles must catch it: the differential sweep
// sees wrong logits, and the WAR detector flags the in-place overwrite
// (even under continuous power).
func TestBaseIsUnsafe(t *testing.T) {
	qm, x := TinyModel(1)
	rep, err := SweepRuntime(qm, x, baseline.Base{}, Options{CheckWAR: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) == 0 {
		t.Error("base: differential sweep found no logit mismatches; expected corruption")
	}
	if rep.GoldenWAR == 0 {
		t.Error("base: WAR detector silent on the in-place ReLU")
	}
	found := false
	for _, v := range rep.WARSample {
		if strings.HasPrefix(v.Region, "act.") {
			found = true
		}
	}
	if !found && len(rep.WARSample) > 0 {
		t.Errorf("base: expected WAR on an activation buffer, got %s[%d]",
			rep.WARSample[0].Region, rep.WARSample[0].Index)
	}
	t.Log(rep.Summary())
}

// TestBrokenNegativeControl: the deliberately unsafe runtime must be
// bit-identical to SONIC under continuous power (so nothing but fault
// injection can distinguish it) yet flagged by both oracles under faults.
func TestBrokenNegativeControl(t *testing.T) {
	qm, x := TinyModel(1)
	cs, err := NewChecker(qm, x, sonic.SONIC{}, false)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewChecker(qm, x, Broken{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs.Golden() {
		if cs.Golden()[i] != cb.Golden()[i] {
			t.Fatalf("broken diverges from sonic under continuous power at logit %d", i)
		}
	}

	// Differential oracle alone (WAR checking off): brown-outs corrupt logits.
	rep, err := SweepRuntime(qm, x, Broken{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) == 0 {
		t.Error("broken: exhaustive differential sweep found no mismatches")
	}

	// WAR oracle: flags the in-place dense kernel even with no brown-out.
	cw, err := NewChecker(qm, x, Broken{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw.GoldenWAR()) == 0 {
		t.Error("broken: WAR detector silent on in-place dense accumulation")
	}
	for _, v := range cw.GoldenWAR() {
		if !strings.HasPrefix(v.Region, "acc.") {
			t.Errorf("broken: WAR on unexpected region %s[%d]", v.Region, v.Index)
		}
	}
}

// TestMinimize shrinks a failing multi-failure schedule down to a minimal
// reproducer that still fails.
func TestMinimize(t *testing.T) {
	qm, x := TinyModel(1)
	c, err := NewChecker(qm, x, Broken{}, false)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SweepRuntime(qm, x, Broken{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("no failing boundary to minimize from")
	}
	b := rep.Mismatches[0].Boundary
	gaps := []int{b, 500, 500}
	if !c.Check(gaps).Failing() {
		gaps = []int{b}
	}
	min := c.Minimize(gaps)
	if !c.Check(min).Failing() {
		t.Fatalf("minimized schedule %v no longer fails", min)
	}
	if len(min) > len(gaps) {
		t.Fatalf("minimize grew the schedule: %v -> %v", gaps, min)
	}
	t.Logf("minimized %v -> %v", gaps, min)
}

// TestSampledSweep exercises the stratified sampling path used when a model
// is too big for the exhaustive mode.
func TestSampledSweep(t *testing.T) {
	qm, x := TinyModel(1)
	rep, err := SweepRuntime(qm, x, sonic.SONIC{}, Options{
		ExhaustiveLimit: 100, MaxBoundaries: 64, Seed: 3, CheckWAR: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhaustive {
		t.Fatal("sweep should have sampled")
	}
	if rep.Swept == 0 || rep.Swept > 64 {
		t.Fatalf("sampled %d boundaries, want 1..64", rep.Swept)
	}
	if !rep.Clean() {
		t.Errorf("sonic sampled sweep not clean: %s", rep.Summary())
	}
	// Same seed, same boundaries.
	rep2, err := SweepRuntime(qm, x, sonic.SONIC{}, Options{
		ExhaustiveLimit: 100, MaxBoundaries: 64, Seed: 3, CheckWAR: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Swept != rep.Swept {
		t.Errorf("sampling not reproducible: %d vs %d boundaries", rep2.Swept, rep.Swept)
	}
}
