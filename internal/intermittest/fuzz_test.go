package intermittest

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// FuzzIntermittence feeds fuzzer-chosen brown-out schedules to the
// crash-consistent runtimes, with the WAR shadow tracker armed. Every gap
// is raised to the runtime's measured liveness floor, so a failure to
// complete is a genuine liveness bug, and any logit divergence or WAR
// violation is a consistency bug. The seed corpus runs as part of the
// ordinary deterministic test suite;
// `go test -fuzz=FuzzIntermittence ./internal/intermittest` explores
// beyond it.
func FuzzIntermittence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x40})             // one early failure
	f.Add([]byte{0x01, 0x77})             // one mid-run failure
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}) // repeated minimum-gap failures
	f.Add([]byte{0x02, 0x00, 0x00, 0x10, 0x01, 0x80, 0x00, 0x40})

	qm, x := TinyModel(1)
	rts := []core.Runtime{
		baseline.Tile{TileSize: 8},
		sonic.SONIC{},
		tails.TAILS{},
		checkpoint.Checkpoint{Interval: 8},
	}
	checkers := make([]*Checker, len(rts))
	for i, rt := range rts {
		c, err := NewChecker(qm, x, rt, true)
		if err != nil {
			f.Fatal(err)
		}
		checkers[i] = c
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rel := DecodeSchedule(data)
		for _, c := range checkers {
			gaps := c.AbsoluteGaps(rel)
			if res := c.Check(gaps); res.Failing() {
				t.Fatalf("intermittence bug: %s\nreproduce: go run ./cmd/fuzz -runtime %s -war -schedule %s",
					res, res.Runtime, FormatSchedule(gaps))
			}
		}
	})
}
