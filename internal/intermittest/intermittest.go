// Package intermittest is a fault-injection campaign engine for the
// intermittent device model: it sweeps brown-out placement across operation
// boundaries (exhaustively below a threshold, stratified-sampled with a
// seed above it) and differentially checks every run's final logits and
// predicted class against a continuous-power golden run of the same
// runtime. With WAR checking enabled it additionally arms the device's
// memory-consistency shadow tracker, catching write-after-read hazards even
// at boundaries where the logits happen to survive.
//
// The paper's central correctness claim (§4, §6) is that SONIC/TAILS
// tolerate a power failure at *any* instruction boundary; this package is
// the systematic form of that claim, and the deliberately unsafe runtimes
// (the naive baseline, and Broken in this package) are its negative
// controls.
package intermittest

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
)

// Options configures a campaign.
type Options struct {
	// ExhaustiveLimit is the largest golden op count for which every single
	// boundary is swept; above it the sweep stratifies MaxBoundaries random
	// samples (one per equal-width stratum, so coverage stays uniform).
	ExhaustiveLimit int
	// MaxBoundaries bounds the sampled sweep size.
	MaxBoundaries int
	// Seed drives the sampling RNG; exhaustive sweeps ignore it.
	Seed uint64
	// CheckWAR arms the device's write-after-read shadow tracker on every
	// run, including the golden one.
	CheckWAR bool
	// Workers is the sweep parallelism (defaults to GOMAXPROCS). Each
	// boundary runs on its own fresh device, so workers share nothing.
	Workers int
	// SnapStride is the op stride of the golden run's snapshot train
	// (<= 0 selects mcu.DefaultSnapStride). Denser trains shorten per-fork
	// replay at the cost of recording more pages.
	SnapStride int
	// ForceScratch pins the original from-scratch path: no journal is
	// recorded and every Check simulates the whole run. The fork oracle
	// flips this knob to prove both paths are bit-identical.
	ForceScratch bool
}

func (o Options) withDefaults() Options {
	if o.ExhaustiveLimit <= 0 {
		// Snapshot-and-fork serves each boundary in O(suffix), so the
		// default exhaustive budget is 4x what full re-simulation afforded.
		o.ExhaustiveLimit = 200000
	}
	if o.MaxBoundaries <= 0 {
		o.MaxBoundaries = 512
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Mismatch records one differential check failure: the first diverging
// logit of a faulted run.
type Mismatch struct {
	Boundary  int // failing schedule position (ops before brown-out)
	Logit     int // first differing logit index
	Got, Want fixed.Q15
	GotPred   int
	WantPred  int
}

func (m Mismatch) String() string {
	return fmt.Sprintf("boundary %d: logit[%d]=%d want %d (pred %d want %d)",
		m.Boundary, m.Logit, m.Got, m.Want, m.GotPred, m.WantPred)
}

// RuntimeReport is one runtime's campaign outcome.
type RuntimeReport struct {
	Runtime    string
	TotalOps   int64 // golden continuous-power op count
	Exhaustive bool  // every boundary in [1, TotalOps] swept
	Swept      int   // boundaries actually run
	GoldenPred int   // predicted class under continuous power
	GoldenWAR  int   // WAR violations in the golden run itself

	Mismatches []Mismatch
	DNC        []int    // boundaries that failed to complete
	Errors     []string // unexpected deploy/infer errors
	WARBounds  []int    // boundaries with ≥1 WAR violation
	WARSample  []mcu.WARViolation
}

// Clean reports whether the runtime survived the whole sweep: every faulted
// run completed, matched the golden logits, and (when checked) raised no
// WAR violation anywhere, golden run included.
func (r *RuntimeReport) Clean() bool {
	return len(r.Mismatches) == 0 && len(r.DNC) == 0 && len(r.Errors) == 0 &&
		len(r.WARBounds) == 0 && r.GoldenWAR == 0
}

// Summary renders the runtime's outcome as one line.
func (r *RuntimeReport) Summary() string {
	mode := "sampled"
	if r.Exhaustive {
		mode = "exhaustive"
	}
	verdict := "CLEAN"
	detail := ""
	if !r.Clean() {
		verdict = "UNSAFE"
		if len(r.Mismatches) > 0 {
			detail += fmt.Sprintf(" first-mismatch@%d", r.Mismatches[0].Boundary)
		}
		if n := len(r.WARBounds); n > 0 {
			detail += fmt.Sprintf(" war@%d-boundaries", n)
		}
		if r.GoldenWAR > 0 {
			detail += fmt.Sprintf(" golden-war=%d", r.GoldenWAR)
		}
	}
	return fmt.Sprintf("%-12s ops=%-6d swept=%-5d (%s) mismatch=%-4d dnc=%-3d err=%-3d %s%s",
		r.Runtime, r.TotalOps, r.Swept, mode, len(r.Mismatches), len(r.DNC),
		len(r.Errors), verdict, detail)
}

// Report is a whole campaign's outcome.
type Report struct {
	Seed     uint64
	Runtimes []*RuntimeReport
}

// String renders one summary line per runtime.
func (r *Report) String() string {
	var b strings.Builder
	for _, rr := range r.Runtimes {
		b.WriteString(rr.Summary())
		b.WriteByte('\n')
	}
	return b.String()
}

// Checker holds one runtime's golden result and checks failure schedules
// against it. It is safe for concurrent Check calls.
//
// The golden run doubles as the recording run for snapshot-and-fork
// checking: when the runtime implements core.Resumer (and ForceScratch is
// off), the golden device journals a snapshot train plus op-exact effect
// logs, and every subsequent Check whose first failure lands inside the
// recorded range restores the nearest snapshot and simulates only the
// suffix — bit-identical to a from-scratch run, as the fork oracle proves.
// The quantized input is computed once here and shared read-only by every
// worker; forked checks skip LoadInput entirely.
type Checker struct {
	qm       *dnn.QuantModel
	qin      []fixed.Q15
	rt       core.Runtime
	checkWAR bool

	want      []fixed.Q15
	wantPred  int
	totalOps  int64
	maxRegion int64
	goldenWAR []mcu.WARViolation

	journal *mcu.Journal
	resumer core.Resumer
}

// NewChecker runs the runtime once under continuous power and captures the
// golden logits, total op count, and (for core.Resumer runtimes) the fork
// journal. The golden run is per-runtime because accelerated runtimes
// (TAILS) compute bit-different but equally valid logits vs the software
// kernels.
func NewChecker(qm *dnn.QuantModel, x []float64, rt core.Runtime, checkWAR bool) (*Checker, error) {
	return NewCheckerOpt(qm, x, rt, Options{CheckWAR: checkWAR})
}

// NewCheckerOpt is NewChecker with full campaign options (snapshot stride,
// ForceScratch).
func NewCheckerOpt(qm *dnn.QuantModel, x []float64, rt core.Runtime, opt Options) (*Checker, error) {
	c := &Checker{qm: qm, qin: qm.QuantizeInput(x), rt: rt, checkWAR: opt.CheckWAR}
	dev := mcu.New(energy.Continuous{})
	if opt.CheckWAR {
		dev.EnableWARCheck()
	}
	img, err := core.Deploy(dev, qm)
	if err != nil {
		return nil, fmt.Errorf("intermittest: golden deploy: %w", err)
	}
	resumer, canFork := rt.(core.Resumer)
	var j *mcu.Journal
	if canFork && !opt.ForceScratch {
		j = dev.StartJournal(opt.SnapStride)
	}
	want, err := rt.Infer(img, c.qin)
	if j != nil {
		dev.StopJournal()
	}
	if err != nil {
		return nil, fmt.Errorf("intermittest: golden %s run: %w", rt.Name(), err)
	}
	c.want = want
	c.wantPred = core.Argmax(want)
	for _, n := range dev.Stats().OpCount {
		c.totalOps += n
	}
	if j != nil && j.MaxOp() == c.totalOps {
		c.journal = j
		c.resumer = resumer
	}
	c.maxRegion = dev.Stats().MaxRegionOps
	c.goldenWAR = dev.WARViolations()
	return c, nil
}

// Forks reports whether Check serves single-prefix schedules from the
// golden journal (false when the runtime cannot resume or ForceScratch
// pinned the original path).
func (c *Checker) Forks() bool { return c.journal != nil }

// LiveGapFloor returns the smallest per-cycle op budget that guarantees
// this runtime commits at least one atomic region per charge cycle: twice
// the golden run's largest commit-to-commit region (the factor covers the
// post-reboot resume prefix) plus a fixed margin. Failure schedules whose
// gaps all meet the floor make "does not complete" a genuine liveness bug
// rather than an under-provisioned energy buffer — a tile-128 task simply
// needs more energy than a tiny capacitor holds (§2.1), and fuzzing must
// not report that physics as a defect.
func (c *Checker) LiveGapFloor() int {
	return int(2*c.maxRegion) + MinLiveGap
}

// AbsoluteGaps converts relative fuzzed budgets (from DecodeSchedule) into
// a schedule that satisfies the runtime's liveness floor.
func (c *Checker) AbsoluteGaps(rel []int) []int {
	floor := c.LiveGapFloor()
	gaps := make([]int, len(rel))
	for i, r := range rel {
		gaps[i] = floor + r
	}
	return gaps
}

// TotalOps returns the golden run's operation count — the number of
// distinct brown-out boundaries.
func (c *Checker) TotalOps() int64 { return c.totalOps }

// Golden returns the golden logits.
func (c *Checker) Golden() []fixed.Q15 { return c.want }

// GoldenWAR returns WAR violations seen in the golden run (a runtime that
// hazards even under continuous power, like the naive baseline, flags here).
func (c *Checker) GoldenWAR() []mcu.WARViolation { return c.goldenWAR }

// ScheduleResult is the outcome of one faulted run.
type ScheduleResult struct {
	Runtime  string
	Gaps     []int
	DNC      bool
	Err      error
	Mismatch *Mismatch
	WARCount int
	WAR      []mcu.WARViolation

	// Stats is the faulted device's final accounting — identical between
	// the forked and from-scratch paths (the fork oracle's strongest
	// check). It is nil for sweep results served by equivalence-class
	// dedup, which copies verdicts rather than simulating.
	Stats *mcu.Stats
}

// Failing reports whether the schedule exposed a bug: a logit divergence, a
// WAR violation, an unexpected error, or a failure to complete. (Every
// FailSchedule ends in continuous power, so completion is always possible
// for a correct runtime.)
func (r *ScheduleResult) Failing() bool {
	return r.DNC || r.Err != nil || r.Mismatch != nil || r.WARCount > 0
}

func (r *ScheduleResult) String() string {
	switch {
	case r.Err != nil:
		return fmt.Sprintf("%s gaps=%v: error: %v", r.Runtime, r.Gaps, r.Err)
	case r.DNC:
		return fmt.Sprintf("%s gaps=%v: does not complete", r.Runtime, r.Gaps)
	case r.Mismatch != nil:
		return fmt.Sprintf("%s gaps=%v: %s (war=%d)", r.Runtime, r.Gaps, r.Mismatch, r.WARCount)
	case r.WARCount > 0:
		v := r.WAR[0]
		return fmt.Sprintf("%s gaps=%v: %d WAR violations, first %s[%d] in %s",
			r.Runtime, r.Gaps, r.WARCount, v.Region, v.Index, v.Layer)
	default:
		return fmt.Sprintf("%s gaps=%v: ok", r.Runtime, r.Gaps)
	}
}

// Check runs the runtime under the given brown-out schedule (ops before the
// k-th failure) on a fresh device and differentially checks the result.
//
// When the golden journal is available and the schedule's first failure
// lands inside the recorded run, the check forks: the device is restored
// to the recorded prefix at that boundary (first reboot included) and only
// the suffix — plus any later failures in the schedule — is simulated.
// Otherwise (no journal, ForceScratch, or a first gap beyond the run) the
// whole schedule is simulated from scratch. Both paths are bit-identical.
func (c *Checker) Check(gaps []int) *ScheduleResult {
	res := &ScheduleResult{Runtime: c.rt.Name(), Gaps: gaps}
	dev := mcu.New(energy.NewFailSchedule(gaps))
	if c.checkWAR {
		dev.EnableWARCheck()
	}
	img, err := core.Deploy(dev, c.qm)
	if err != nil {
		res.Err = err
		return res
	}
	var got []fixed.Q15
	if c.journal != nil && len(gaps) > 0 && gaps[0] >= 1 && int64(gaps[0]) <= c.totalOps {
		got, err = c.resumer.ResumeInfer(img, func() error {
			return c.journal.RestorePrefix(dev, int64(gaps[0]))
		})
	} else {
		got, err = c.rt.Infer(img, c.qin)
	}
	res.Stats = dev.Stats()
	res.WARCount = dev.WARCount()
	res.WAR = dev.WARViolations()
	if err != nil {
		if errors.Is(err, mcu.ErrDoesNotComplete) {
			res.DNC = true
		} else {
			res.Err = err
		}
		return res
	}
	boundary := 0
	if len(gaps) > 0 {
		boundary = gaps[0]
	}
	for i := range got {
		if got[i] != c.want[i] {
			res.Mismatch = &Mismatch{
				Boundary: boundary, Logit: i,
				Got: got[i], Want: c.want[i],
				GotPred: core.Argmax(got), WantPred: c.wantPred,
			}
			break
		}
	}
	return res
}

// Minimize greedily shrinks a failing schedule while it keeps failing:
// dropping whole failures, then rounding the surviving gaps down to the
// smallest value that still fails (binary search per gap), repeated to a
// fixpoint. The returned schedule is 1-minimal: removing any element, or
// decrementing any gap, yields a schedule that passes. Every probe goes
// through Check, so the binary searches reuse the golden snapshot train —
// each candidate costs only its suffix.
func (c *Checker) Minimize(gaps []int) []int {
	if !c.Check(gaps).Failing() {
		return gaps
	}
	cur := append([]int(nil), gaps...)
	for {
		prev := append([]int(nil), cur...)
		for changed := true; changed; {
			changed = false
			for i := 0; i < len(cur); i++ {
				cand := append(append([]int(nil), cur[:i]...), cur[i+1:]...)
				if c.Check(cand).Failing() {
					cur = cand
					changed = true
					i--
				}
			}
		}
		for i := range cur {
			lo, hi := 1, cur[i] // invariant: schedule with cur[i]=hi fails
			for lo < hi {
				mid := (lo + hi) / 2
				cand := append([]int(nil), cur...)
				cand[i] = mid
				if c.Check(cand).Failing() {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			cur[i] = hi
		}
		// Shrinking one gap can re-enable shrinking another; loop until a
		// whole cycle changes nothing, so the result is 1-minimal.
		if len(prev) == len(cur) {
			same := true
			for i := range cur {
				if cur[i] != prev[i] {
					same = false
					break
				}
			}
			if same {
				return cur
			}
		}
	}
}

// SweepRuntime runs the single-failure brown-out placement campaign for one
// runtime: golden run, boundary selection, then one faulted run per
// equivalence class of boundaries across Workers goroutines.
//
// With the golden journal available, boundaries are grouped into
// equivalence classes before any simulation: two boundaries whose prefixes
// end at the same last nonvolatile write (and the same WAR-event count)
// restore identical machine images, so their forked suffixes are
// op-for-op the same run. One representative per class is simulated; the
// other members' verdicts are copied, with WAR record positions rebased to
// their own boundary. Coverage is unchanged — every boundary still gets a
// verdict, it just isn't recomputed when it's provably identical.
func SweepRuntime(qm *dnn.QuantModel, x []float64, rt core.Runtime, opt Options) (*RuntimeReport, error) {
	opt = opt.withDefaults()
	c, err := NewCheckerOpt(qm, x, rt, opt)
	if err != nil {
		return nil, err
	}
	rep := &RuntimeReport{
		Runtime:    rt.Name(),
		TotalOps:   c.totalOps,
		GoldenPred: c.wantPred,
		GoldenWAR:  len(c.goldenWAR),
	}
	bounds, exhaustive := boundaries(c.totalOps, opt)
	rep.Exhaustive = exhaustive
	rep.Swept = len(bounds)

	// Representative selection: index into bounds of each boundary's class
	// representative (itself when no journal, or when it leads its class).
	repOf := make([]int, len(bounds))
	for i := range repOf {
		repOf[i] = i
	}
	if c.journal != nil {
		type classKey struct {
			lastWrite int64
			warCount  int
		}
		seen := make(map[classKey]int, len(bounds))
		for i, b := range bounds {
			pre := int64(b) - 1
			k := classKey{lastWrite: c.journal.LastFRAMWriteAtOrBefore(pre)}
			if c.checkWAR {
				k.warCount, _ = c.journal.WARPrefix(int64(b))
			}
			if first, ok := seen[k]; ok {
				repOf[i] = first
			} else {
				seen[k] = i
			}
		}
	}

	// One gaps arena for the whole sweep: per-check []int{b} slices are
	// carved from it instead of allocated in the worker loop.
	gapsArena := make([]int, len(bounds))
	for i, b := range bounds {
		gapsArena[i] = b
	}

	results := make([]*ScheduleResult, len(bounds))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = c.Check(gapsArena[i : i+1 : i+1])
			}
		}()
	}
	for i := range bounds {
		if repOf[i] == i {
			next <- i
		}
	}
	close(next)
	wg.Wait()

	// Fill the non-representative members from their class results.
	for i := range bounds {
		if repOf[i] != i {
			results[i] = c.cloneResult(results[repOf[i]], bounds[repOf[i]], gapsArena[i:i+1:i+1])
		}
	}

	for i, r := range results {
		b := bounds[i]
		switch {
		case r.Err != nil:
			rep.Errors = append(rep.Errors, fmt.Sprintf("boundary %d: %v", b, r.Err))
		case r.DNC:
			rep.DNC = append(rep.DNC, b)
		case r.Mismatch != nil:
			rep.Mismatches = append(rep.Mismatches, *r.Mismatch)
		}
		if r.WARCount > 0 {
			rep.WARBounds = append(rep.WARBounds, b)
			if len(rep.WARSample) == 0 {
				rep.WARSample = r.WAR
			}
		}
	}
	return rep, nil
}

// cloneResult derives boundary b's verdict from its class representative's
// without simulating. Both forks restore the identical machine image (same
// last nonvolatile write, same WAR prefix) and run the identical suffix, so
// everything except op positions carries over: the Mismatch gets b as its
// boundary, the WAR count and records get the prefix recomputed for b with
// the representative's suffix events shifted by the boundary offset —
// exactly what a real fork at b would record. Stats stay nil: per-section
// op attribution depends on the prefix and is not needed for verdicts.
func (c *Checker) cloneResult(rep *ScheduleResult, repB int, gaps []int) *ScheduleResult {
	b := gaps[0]
	res := &ScheduleResult{Runtime: rep.Runtime, Gaps: gaps, DNC: rep.DNC, Err: rep.Err}
	if rep.Mismatch != nil {
		m := *rep.Mismatch
		m.Boundary = b
		res.Mismatch = &m
	}
	if c.checkWAR {
		prefB, keptB := c.journal.WARPrefix(int64(b))
		prefRep, _ := c.journal.WARPrefix(int64(repB))
		res.WARCount = prefB + (rep.WARCount - prefRep)
		war := keptB
		shift := int64(b - repB)
		for _, v := range rep.WAR {
			if v.Op < int64(repB) {
				continue // representative's own prefix records, superseded by keptB
			}
			if len(war) >= mcu.WARMaxKeep {
				break
			}
			v.Op += shift
			war = append(war, v)
		}
		res.WAR = war
	}
	return res
}

// Campaign sweeps every runtime and collects the per-runtime reports.
func Campaign(qm *dnn.QuantModel, x []float64, rts []core.Runtime, opt Options) (*Report, error) {
	rep := &Report{Seed: opt.Seed}
	for _, rt := range rts {
		rr, err := SweepRuntime(qm, x, rt, opt)
		if err != nil {
			return nil, err
		}
		rep.Runtimes = append(rep.Runtimes, rr)
	}
	return rep, nil
}

// boundaries selects the swept brown-out placements: every op boundary when
// the run is small enough, otherwise one seeded random sample from each of
// MaxBoundaries equal-width strata so coverage stays uniform end to end.
func boundaries(total int64, opt Options) ([]int, bool) {
	if total <= int64(opt.ExhaustiveLimit) {
		b := make([]int, total)
		for i := range b {
			b[i] = i + 1
		}
		return b, true
	}
	rng := rand.New(rand.NewPCG(opt.Seed, mix(opt.Seed)))
	n := opt.MaxBoundaries
	b := make([]int, 0, n)
	for k := 0; k < n; k++ {
		lo := total*int64(k)/int64(n) + 1
		hi := total * int64(k+1) / int64(n)
		if hi < lo {
			continue
		}
		b = append(b, int(lo+rng.Int64N(hi-lo+1)))
	}
	sort.Ints(b)
	return b, false
}
