// Package intermittest is a fault-injection campaign engine for the
// intermittent device model: it sweeps brown-out placement across operation
// boundaries (exhaustively below a threshold, stratified-sampled with a
// seed above it) and differentially checks every run's final logits and
// predicted class against a continuous-power golden run of the same
// runtime. With WAR checking enabled it additionally arms the device's
// memory-consistency shadow tracker, catching write-after-read hazards even
// at boundaries where the logits happen to survive.
//
// The paper's central correctness claim (§4, §6) is that SONIC/TAILS
// tolerate a power failure at *any* instruction boundary; this package is
// the systematic form of that claim, and the deliberately unsafe runtimes
// (the naive baseline, and Broken in this package) are its negative
// controls.
package intermittest

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
)

// Options configures a campaign.
type Options struct {
	// ExhaustiveLimit is the largest golden op count for which every single
	// boundary is swept; above it the sweep stratifies MaxBoundaries random
	// samples (one per equal-width stratum, so coverage stays uniform).
	ExhaustiveLimit int
	// MaxBoundaries bounds the sampled sweep size.
	MaxBoundaries int
	// Seed drives the sampling RNG; exhaustive sweeps ignore it.
	Seed uint64
	// CheckWAR arms the device's write-after-read shadow tracker on every
	// run, including the golden one.
	CheckWAR bool
	// Workers is the sweep parallelism (defaults to GOMAXPROCS). Each
	// boundary runs on its own fresh device, so workers share nothing.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.ExhaustiveLimit <= 0 {
		o.ExhaustiveLimit = 50000
	}
	if o.MaxBoundaries <= 0 {
		o.MaxBoundaries = 512
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Mismatch records one differential check failure: the first diverging
// logit of a faulted run.
type Mismatch struct {
	Boundary  int // failing schedule position (ops before brown-out)
	Logit     int // first differing logit index
	Got, Want fixed.Q15
	GotPred   int
	WantPred  int
}

func (m Mismatch) String() string {
	return fmt.Sprintf("boundary %d: logit[%d]=%d want %d (pred %d want %d)",
		m.Boundary, m.Logit, m.Got, m.Want, m.GotPred, m.WantPred)
}

// RuntimeReport is one runtime's campaign outcome.
type RuntimeReport struct {
	Runtime    string
	TotalOps   int64 // golden continuous-power op count
	Exhaustive bool  // every boundary in [1, TotalOps] swept
	Swept      int   // boundaries actually run
	GoldenPred int   // predicted class under continuous power
	GoldenWAR  int   // WAR violations in the golden run itself

	Mismatches []Mismatch
	DNC        []int    // boundaries that failed to complete
	Errors     []string // unexpected deploy/infer errors
	WARBounds  []int    // boundaries with ≥1 WAR violation
	WARSample  []mcu.WARViolation
}

// Clean reports whether the runtime survived the whole sweep: every faulted
// run completed, matched the golden logits, and (when checked) raised no
// WAR violation anywhere, golden run included.
func (r *RuntimeReport) Clean() bool {
	return len(r.Mismatches) == 0 && len(r.DNC) == 0 && len(r.Errors) == 0 &&
		len(r.WARBounds) == 0 && r.GoldenWAR == 0
}

// Summary renders the runtime's outcome as one line.
func (r *RuntimeReport) Summary() string {
	mode := "sampled"
	if r.Exhaustive {
		mode = "exhaustive"
	}
	verdict := "CLEAN"
	detail := ""
	if !r.Clean() {
		verdict = "UNSAFE"
		if len(r.Mismatches) > 0 {
			detail += fmt.Sprintf(" first-mismatch@%d", r.Mismatches[0].Boundary)
		}
		if n := len(r.WARBounds); n > 0 {
			detail += fmt.Sprintf(" war@%d-boundaries", n)
		}
		if r.GoldenWAR > 0 {
			detail += fmt.Sprintf(" golden-war=%d", r.GoldenWAR)
		}
	}
	return fmt.Sprintf("%-12s ops=%-6d swept=%-5d (%s) mismatch=%-4d dnc=%-3d err=%-3d %s%s",
		r.Runtime, r.TotalOps, r.Swept, mode, len(r.Mismatches), len(r.DNC),
		len(r.Errors), verdict, detail)
}

// Report is a whole campaign's outcome.
type Report struct {
	Seed     uint64
	Runtimes []*RuntimeReport
}

// String renders one summary line per runtime.
func (r *Report) String() string {
	var b strings.Builder
	for _, rr := range r.Runtimes {
		b.WriteString(rr.Summary())
		b.WriteByte('\n')
	}
	return b.String()
}

// Checker holds one runtime's golden result and checks failure schedules
// against it. It is safe for concurrent Check calls.
type Checker struct {
	qm       *dnn.QuantModel
	qin      []fixed.Q15
	rt       core.Runtime
	checkWAR bool

	want      []fixed.Q15
	wantPred  int
	totalOps  int64
	maxRegion int64
	goldenWAR []mcu.WARViolation
}

// NewChecker runs the runtime once under continuous power and captures the
// golden logits and total op count. The golden run is per-runtime because
// accelerated runtimes (TAILS) compute bit-different but equally valid
// logits vs the software kernels.
func NewChecker(qm *dnn.QuantModel, x []float64, rt core.Runtime, checkWAR bool) (*Checker, error) {
	c := &Checker{qm: qm, qin: qm.QuantizeInput(x), rt: rt, checkWAR: checkWAR}
	dev := mcu.New(energy.Continuous{})
	if checkWAR {
		dev.EnableWARCheck()
	}
	img, err := core.Deploy(dev, qm)
	if err != nil {
		return nil, fmt.Errorf("intermittest: golden deploy: %w", err)
	}
	want, err := rt.Infer(img, c.qin)
	if err != nil {
		return nil, fmt.Errorf("intermittest: golden %s run: %w", rt.Name(), err)
	}
	c.want = want
	c.wantPred = core.Argmax(want)
	for _, n := range dev.Stats().OpCount {
		c.totalOps += n
	}
	c.maxRegion = dev.Stats().MaxRegionOps
	c.goldenWAR = dev.WARViolations()
	return c, nil
}

// LiveGapFloor returns the smallest per-cycle op budget that guarantees
// this runtime commits at least one atomic region per charge cycle: twice
// the golden run's largest commit-to-commit region (the factor covers the
// post-reboot resume prefix) plus a fixed margin. Failure schedules whose
// gaps all meet the floor make "does not complete" a genuine liveness bug
// rather than an under-provisioned energy buffer — a tile-128 task simply
// needs more energy than a tiny capacitor holds (§2.1), and fuzzing must
// not report that physics as a defect.
func (c *Checker) LiveGapFloor() int {
	return int(2*c.maxRegion) + MinLiveGap
}

// AbsoluteGaps converts relative fuzzed budgets (from DecodeSchedule) into
// a schedule that satisfies the runtime's liveness floor.
func (c *Checker) AbsoluteGaps(rel []int) []int {
	floor := c.LiveGapFloor()
	gaps := make([]int, len(rel))
	for i, r := range rel {
		gaps[i] = floor + r
	}
	return gaps
}

// TotalOps returns the golden run's operation count — the number of
// distinct brown-out boundaries.
func (c *Checker) TotalOps() int64 { return c.totalOps }

// Golden returns the golden logits.
func (c *Checker) Golden() []fixed.Q15 { return c.want }

// GoldenWAR returns WAR violations seen in the golden run (a runtime that
// hazards even under continuous power, like the naive baseline, flags here).
func (c *Checker) GoldenWAR() []mcu.WARViolation { return c.goldenWAR }

// ScheduleResult is the outcome of one faulted run.
type ScheduleResult struct {
	Runtime  string
	Gaps     []int
	DNC      bool
	Err      error
	Mismatch *Mismatch
	WARCount int
	WAR      []mcu.WARViolation
}

// Failing reports whether the schedule exposed a bug: a logit divergence, a
// WAR violation, an unexpected error, or a failure to complete. (Every
// FailSchedule ends in continuous power, so completion is always possible
// for a correct runtime.)
func (r *ScheduleResult) Failing() bool {
	return r.DNC || r.Err != nil || r.Mismatch != nil || r.WARCount > 0
}

func (r *ScheduleResult) String() string {
	switch {
	case r.Err != nil:
		return fmt.Sprintf("%s gaps=%v: error: %v", r.Runtime, r.Gaps, r.Err)
	case r.DNC:
		return fmt.Sprintf("%s gaps=%v: does not complete", r.Runtime, r.Gaps)
	case r.Mismatch != nil:
		return fmt.Sprintf("%s gaps=%v: %s (war=%d)", r.Runtime, r.Gaps, r.Mismatch, r.WARCount)
	case r.WARCount > 0:
		v := r.WAR[0]
		return fmt.Sprintf("%s gaps=%v: %d WAR violations, first %s[%d] in %s",
			r.Runtime, r.Gaps, r.WARCount, v.Region, v.Index, v.Layer)
	default:
		return fmt.Sprintf("%s gaps=%v: ok", r.Runtime, r.Gaps)
	}
}

// Check runs the runtime under the given brown-out schedule (ops before the
// k-th failure) on a fresh device and differentially checks the result.
func (c *Checker) Check(gaps []int) *ScheduleResult {
	res := &ScheduleResult{Runtime: c.rt.Name(), Gaps: gaps}
	dev := mcu.New(energy.NewFailSchedule(gaps))
	if c.checkWAR {
		dev.EnableWARCheck()
	}
	img, err := core.Deploy(dev, c.qm)
	if err != nil {
		res.Err = err
		return res
	}
	got, err := c.rt.Infer(img, c.qin)
	res.WARCount = dev.WARCount()
	res.WAR = dev.WARViolations()
	if err != nil {
		if errors.Is(err, mcu.ErrDoesNotComplete) {
			res.DNC = true
		} else {
			res.Err = err
		}
		return res
	}
	boundary := 0
	if len(gaps) > 0 {
		boundary = gaps[0]
	}
	for i := range got {
		if got[i] != c.want[i] {
			res.Mismatch = &Mismatch{
				Boundary: boundary, Logit: i,
				Got: got[i], Want: c.want[i],
				GotPred: core.Argmax(got), WantPred: c.wantPred,
			}
			break
		}
	}
	return res
}

// Minimize greedily shrinks a failing schedule while it keeps failing:
// first dropping whole failures, then rounding the surviving gaps down to
// the smallest value that still fails (binary search per gap). The returned
// schedule is 1-minimal under element removal.
func (c *Checker) Minimize(gaps []int) []int {
	if !c.Check(gaps).Failing() {
		return gaps
	}
	cur := append([]int(nil), gaps...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := append(append([]int(nil), cur[:i]...), cur[i+1:]...)
			if c.Check(cand).Failing() {
				cur = cand
				changed = true
				i--
			}
		}
	}
	for i := range cur {
		lo, hi := 1, cur[i] // invariant: schedule with cur[i]=hi fails
		for lo < hi {
			mid := (lo + hi) / 2
			cand := append([]int(nil), cur...)
			cand[i] = mid
			if c.Check(cand).Failing() {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cur[i] = hi
	}
	return cur
}

// SweepRuntime runs the single-failure brown-out placement campaign for one
// runtime: golden run, boundary selection, then one faulted run per
// boundary across Workers goroutines.
func SweepRuntime(qm *dnn.QuantModel, x []float64, rt core.Runtime, opt Options) (*RuntimeReport, error) {
	opt = opt.withDefaults()
	c, err := NewChecker(qm, x, rt, opt.CheckWAR)
	if err != nil {
		return nil, err
	}
	rep := &RuntimeReport{
		Runtime:    rt.Name(),
		TotalOps:   c.totalOps,
		GoldenPred: c.wantPred,
		GoldenWAR:  len(c.goldenWAR),
	}
	bounds, exhaustive := boundaries(c.totalOps, opt)
	rep.Exhaustive = exhaustive
	rep.Swept = len(bounds)

	results := make([]*ScheduleResult, len(bounds))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = c.Check([]int{bounds[i]})
			}
		}()
	}
	for i := range bounds {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, r := range results {
		b := bounds[i]
		switch {
		case r.Err != nil:
			rep.Errors = append(rep.Errors, fmt.Sprintf("boundary %d: %v", b, r.Err))
		case r.DNC:
			rep.DNC = append(rep.DNC, b)
		case r.Mismatch != nil:
			rep.Mismatches = append(rep.Mismatches, *r.Mismatch)
		}
		if r.WARCount > 0 {
			rep.WARBounds = append(rep.WARBounds, b)
			if len(rep.WARSample) == 0 {
				rep.WARSample = r.WAR
			}
		}
	}
	return rep, nil
}

// Campaign sweeps every runtime and collects the per-runtime reports.
func Campaign(qm *dnn.QuantModel, x []float64, rts []core.Runtime, opt Options) (*Report, error) {
	rep := &Report{Seed: opt.Seed}
	for _, rt := range rts {
		rr, err := SweepRuntime(qm, x, rt, opt)
		if err != nil {
			return nil, err
		}
		rep.Runtimes = append(rep.Runtimes, rr)
	}
	return rep, nil
}

// boundaries selects the swept brown-out placements: every op boundary when
// the run is small enough, otherwise one seeded random sample from each of
// MaxBoundaries equal-width strata so coverage stays uniform end to end.
func boundaries(total int64, opt Options) ([]int, bool) {
	if total <= int64(opt.ExhaustiveLimit) {
		b := make([]int, total)
		for i := range b {
			b[i] = i + 1
		}
		return b, true
	}
	rng := rand.New(rand.NewPCG(opt.Seed, mix(opt.Seed)))
	n := opt.MaxBoundaries
	b := make([]int, 0, n)
	for k := 0; k < n; k++ {
		lo := total*int64(k)/int64(n) + 1
		hi := total * int64(k+1) / int64(n)
		if hi < lo {
			continue
		}
		b = append(b, int(lo+rng.Int64N(hi-lo+1)))
	}
	sort.Ints(b)
	return b, false
}
