// Package trace is the consumer half of the execution-tracing subsystem:
// a bounded ring buffer that records the device model's typed event
// stream (mcu.TraceEvent), exporters that render it as Chrome
// trace-event JSON (loadable in Perfetto), CSV, or a terminal timeline,
// and an Analysis that derives per-charge-cycle wasted work — the
// quantitative version of the paper's Fig. 6 for every runtime.
//
// Events are timestamped in both live cycles and accumulated energy, and
// carry the energy buffer's level when the power system exposes it, so a
// trace shows *where* power failures land and *how much* work between
// the last commit and each reboot is re-executed.
//
// The ring is bounded: when it fills, the oldest events are overwritten
// (Drops counts them) — but the wasted-work aggregation is computed
// online as events arrive, so Analysis stays exact over the whole run
// regardless of ring capacity.
package trace

import "repro/internal/mcu"

// Event is the device model's trace event.
type Event = mcu.TraceEvent

// DefaultCapacity is the default ring size in events.
const DefaultCapacity = 1 << 16

// Buffer is a bounded ring of trace events implementing mcu.Tracer. It
// is not safe for concurrent use; each simulated device gets its own.
type Buffer struct {
	events []Event
	next   int
	count  int
	drops  uint64
	mask   uint32 // event kinds this buffer subscribes to (mcu.TraceMasker)

	// Online per-charge-cycle aggregation (exact even after ring wrap).
	closed   []ChargeCycle
	cur      ChargeCycle
	sawEvent bool
	lastC    int64   // cycles at the most recent event
	lastE    float64 // energy at the most recent event
	lastD    float64 // dead seconds at the most recent event
}

// NewBuffer returns a ring holding up to capacity events (DefaultCapacity
// if capacity <= 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Buffer{events: make([]Event, 0, capacity), mask: mcu.TraceMaskAll}
}

// AnalysisKinds is the minimal event-kind mask the online wasted-work
// aggregation needs: run start, durable commits, brown-outs, reboots, and
// recharge completions.
var AnalysisKinds = mcu.MaskOf(mcu.TraceRunBegin, mcu.TraceCommit,
	mcu.TraceBrownOut, mcu.TraceReboot, mcu.TraceRechargeDone)

// NewAnalysisBuffer returns a ring subscribed only to AnalysisKinds. Its
// Analysis() aggregates (commits, wasted work, recharge time) are
// identical to a fully-subscribed buffer's, but the device skips the
// per-iteration event kinds entirely — the right tracer for harness
// sweeps that only consume the aggregation, at a fraction of the cost.
func NewAnalysisBuffer(capacity int) *Buffer {
	b := NewBuffer(capacity)
	b.mask = AnalysisKinds
	return b
}

// TraceMask implements mcu.TraceMasker: the device consults it once at
// SetTracer time and never constructs masked-out events.
func (b *Buffer) TraceMask() uint32 { return b.mask }

// TraceEvent records one event, overwriting the oldest when full, and
// feeds the online wasted-work aggregation.
func (b *Buffer) TraceEvent(e Event) {
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, e)
	} else {
		b.events[b.next] = e
		b.drops++
	}
	if b.next++; b.next == cap(b.events) {
		b.next = 0
	}
	b.count = len(b.events)
	b.observe(e)
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return b.count }

// Drops returns how many events were overwritten after the ring filled.
func (b *Buffer) Drops() uint64 { return b.drops }

// Events returns the buffered events oldest-first. The slice is freshly
// allocated; the ring is unchanged.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, b.count)
	if b.count == cap(b.events) {
		out = append(out, b.events[b.next:]...)
	}
	return append(out, b.events[:b.next]...)
}

// Reset clears the ring and the aggregation state.
func (b *Buffer) Reset() {
	b.events = b.events[:0]
	b.next, b.count, b.drops = 0, 0, 0
	b.closed = nil
	b.cur = ChargeCycle{}
	b.sawEvent = false
	b.lastC, b.lastE, b.lastD = 0, 0, 0
}

// observe updates the per-charge-cycle aggregation with one event.
func (b *Buffer) observe(e Event) {
	if !b.sawEvent {
		b.sawEvent = true
		b.cur = newCycle(0, e.Cycles, e.EnergyNJ)
	}
	switch e.Kind {
	case mcu.TraceCommit:
		b.cur.Commits++
		b.cur.lastCommitC = e.Cycles
		b.cur.lastCommitE = e.EnergyNJ
	case mcu.TraceBrownOut:
		b.cur.BrownedOut = true
		b.cur.FailedIn = e.Label
		b.cur.WastedCycles = e.Cycles - b.cur.lastCommitC
		b.cur.WastedEnergyNJ = e.EnergyNJ - b.cur.lastCommitE
	case mcu.TraceReboot:
		b.cur.EndCycles = e.Cycles
		b.cur.EndEnergyNJ = e.EnergyNJ
		b.closed = append(b.closed, b.cur)
		b.cur = newCycle(len(b.closed), e.Cycles, e.EnergyNJ)
	case mcu.TraceRechargeDone:
		b.cur.RechargeSec += e.DeadSec - b.lastD
	}
	b.lastC, b.lastE, b.lastD = e.Cycles, e.EnergyNJ, e.DeadSec
}

func newCycle(index int, cycles int64, energy float64) ChargeCycle {
	return ChargeCycle{
		Index:         index,
		StartCycles:   cycles,
		StartEnergyNJ: energy,
		lastCommitC:   cycles,
		lastCommitE:   energy,
	}
}
