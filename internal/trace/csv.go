package trace

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV renders every buffered event as one CSV row, suitable for
// spreadsheet analysis or plotting the energy sawtooth directly. Unlike
// the Chrome exporter it keeps all event kinds, including per-iteration
// loop-index and privatize events. wall_us includes recharge dead time;
// level_nj is empty when the power system does not expose a buffer level.
func WriteCSV(w io.Writer, events []Event, clockHz float64) error {
	if clockHz <= 0 {
		clockHz = 16e6
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kind", "cycles", "wall_us", "energy_nj", "level_nj", "dead_s", "label", "arg",
	}); err != nil {
		return err
	}
	for _, e := range events {
		wall := (float64(e.Cycles)/clockHz + e.DeadSec) * 1e6
		level := ""
		if e.LevelNJ >= 0 {
			level = strconv.FormatFloat(e.LevelNJ, 'f', 3, 64)
		}
		if err := cw.Write([]string{
			e.Kind.String(),
			strconv.FormatInt(e.Cycles, 10),
			strconv.FormatFloat(wall, 'f', 3, 64),
			strconv.FormatFloat(e.EnergyNJ, 'f', 3, 64),
			level,
			strconv.FormatFloat(e.DeadSec, 'f', 6, 64),
			e.Label,
			strconv.FormatInt(e.Arg, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
