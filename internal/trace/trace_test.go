package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/mcu"
)

// ev builds a synthetic event.
func ev(k mcu.TraceKind, cycles int64, energyNJ float64, label string, arg int64) Event {
	return Event{Kind: k, Cycles: cycles, EnergyNJ: energyNJ, LevelNJ: -1, Label: label, Arg: arg}
}

func TestRingWrap(t *testing.T) {
	b := NewBuffer(4)
	for i := int64(0); i < 10; i++ {
		b.TraceEvent(ev(mcu.TraceOpBatch, i, float64(i), "l", 1))
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if b.Drops() != 6 {
		t.Fatalf("Drops = %d, want 6", b.Drops())
	}
	got := b.Events()
	if len(got) != 4 {
		t.Fatalf("Events len = %d", len(got))
	}
	for i, e := range got {
		if e.Cycles != int64(6+i) {
			t.Errorf("event %d: cycles %d, want %d (oldest-first order)", i, e.Cycles, 6+i)
		}
	}
	b.Reset()
	if b.Len() != 0 || b.Drops() != 0 || len(b.Events()) != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestAnalysisSyntheticRun(t *testing.T) {
	b := NewBuffer(0)
	// Cycle 0: commit at 100 cycles/50 nJ, brown-out at 180/90, reboot.
	b.TraceEvent(ev(mcu.TraceRunBegin, 0, 0, "sonic", 0))
	b.TraceEvent(ev(mcu.TraceOpBatch, 80, 40, "conv1", 80))
	b.TraceEvent(ev(mcu.TraceCommit, 100, 50, "conv1", 0))
	b.TraceEvent(ev(mcu.TraceBrownOut, 180, 90, "conv1", 0))
	b.TraceEvent(ev(mcu.TraceReboot, 180, 90, "", 1))
	rc := ev(mcu.TraceRechargeDone, 180, 90, "", 0)
	rc.DeadSec = 0.25
	b.TraceEvent(rc)
	// Cycle 1: no commit before the brown-out: whole cycle wasted.
	b.TraceEvent(ev(mcu.TraceBrownOut, 260, 130, "conv2", 0))
	b.TraceEvent(ev(mcu.TraceReboot, 260, 130, "", 2))
	// Cycle 2: commits, then the run ends cleanly.
	b.TraceEvent(ev(mcu.TraceCommit, 300, 150, "conv2", 0))
	b.TraceEvent(ev(mcu.TraceOpBatch, 340, 170, "fc", 40))

	a := b.Analysis()
	if len(a.Cycles) != 3 {
		t.Fatalf("cycles = %d, want 3", len(a.Cycles))
	}
	if a.Reboots != 2 || a.Commits != 2 {
		t.Fatalf("reboots %d commits %d, want 2/2", a.Reboots, a.Commits)
	}
	c0 := a.Cycles[0]
	if !c0.BrownedOut || c0.FailedIn != "conv1" {
		t.Errorf("cycle 0: %+v", c0)
	}
	if c0.WastedCycles != 80 || c0.WastedEnergyNJ != 40 {
		t.Errorf("cycle 0 waste = %d cyc %.0f nJ, want 80/40", c0.WastedCycles, c0.WastedEnergyNJ)
	}
	c1 := a.Cycles[1]
	if c1.WastedCycles != 80 || c1.WastedEnergyNJ != 40 {
		t.Errorf("cycle 1 (commitless) waste = %d cyc %.0f nJ, want 80/40", c1.WastedCycles, c1.WastedEnergyNJ)
	}
	if c1.RechargeSec != 0.25 {
		t.Errorf("cycle 1 recharge = %v, want 0.25", c1.RechargeSec)
	}
	c2 := a.Cycles[2]
	if c2.BrownedOut || c2.WastedEnergyNJ != 0 || c2.Commits != 1 {
		t.Errorf("cycle 2: %+v", c2)
	}
	if a.TotalWastedEnergyNJ != 80 {
		t.Errorf("total wasted = %.0f, want 80", a.TotalWastedEnergyNJ)
	}
	if got := a.WastedEnergyPerCycleNJ(); got != 40 {
		t.Errorf("wasted/cycle = %.0f, want 40", got)
	}
	if a.TotalLiveCycles != 340 || a.TotalEnergyNJ != 170 {
		t.Errorf("totals: %d cyc %.0f nJ", a.TotalLiveCycles, a.TotalEnergyNJ)
	}
	if !strings.Contains(a.String(), "2 reboots") {
		t.Errorf("summary: %s", a.String())
	}
}

// TestAnalysisSurvivesWrap checks the aggregates stay exact when the ring
// has long since overwritten the events they came from.
func TestAnalysisSurvivesWrap(t *testing.T) {
	b := NewBuffer(8)
	for i := int64(0); i < 100; i++ {
		base := i * 100
		b.TraceEvent(ev(mcu.TraceCommit, base+50, float64(base+50), "l", 0))
		b.TraceEvent(ev(mcu.TraceBrownOut, base+100, float64(base+100), "l", 0))
		b.TraceEvent(ev(mcu.TraceReboot, base+100, float64(base+100), "", i+1))
	}
	a := b.Analysis()
	if a.Reboots != 100 || a.Commits != 100 {
		t.Fatalf("reboots %d commits %d", a.Reboots, a.Commits)
	}
	if a.TotalWastedCycles != 100*50 {
		t.Errorf("wasted cycles = %d, want 5000", a.TotalWastedCycles)
	}
	if a.Drops == 0 {
		t.Error("expected ring drops")
	}
}

// chromeFile matches the exported JSON shape.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChrome(t *testing.T) {
	events := []Event{
		{Kind: mcu.TraceRunBegin, Label: "sonic", LevelNJ: -1},
		{Kind: mcu.TraceOpBatch, Cycles: 1000, EnergyNJ: 500, LevelNJ: 14000, Label: "conv1", Arg: 1000},
		{Kind: mcu.TraceBrownOut, Cycles: 1600, EnergyNJ: 800, LevelNJ: 0, Label: "conv1"},
		{Kind: mcu.TraceReboot, Cycles: 1600, EnergyNJ: 800, LevelNJ: 0, Arg: 1},
		{Kind: mcu.TraceRechargeDone, Cycles: 1600, EnergyNJ: 800, DeadSec: 0.1, LevelNJ: 14700},
		{Kind: mcu.TraceCommit, Cycles: 1900, EnergyNJ: 950, DeadSec: 0.1, LevelNJ: 12000, Label: "conv1"},
	}
	cap := energy.Cap100uF
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, ChromeOptions{ClockHz: 16e6, Capacitor: &cap}); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var sawReboot, sawCommit, sawVoltage, sawSlice bool
	for _, e := range f.TraceEvents {
		switch {
		case strings.HasPrefix(e.Name, "reboot"):
			sawReboot = true
		case e.Name == "commit":
			sawCommit = true
		case e.Name == "voltage" && e.Ph == "C":
			sawVoltage = true
		case e.Name == "conv1" && e.Ph == "X":
			sawSlice = true
			// 1000 cycles at 16 MHz = 62.5 us, starting at the run-begin ts.
			if e.Dur < 60 || e.Dur > 65 {
				t.Errorf("conv1 slice dur = %v us", e.Dur)
			}
		}
	}
	if !sawReboot || !sawCommit || !sawVoltage || !sawSlice {
		t.Errorf("missing tracks: reboot %v commit %v voltage %v slice %v",
			sawReboot, sawCommit, sawVoltage, sawSlice)
	}
	// Dead time shifts later events' wall-clock position.
	for _, e := range f.TraceEvents {
		if e.Name == "commit" {
			want := (1900.0/16e6 + 0.1) * 1e6
			if e.Ts < want-1 || e.Ts > want+1 {
				t.Errorf("commit ts = %v, want ~%v", e.Ts, want)
			}
		}
	}
}

func TestWriteCSVAndTimeline(t *testing.T) {
	b := NewBuffer(0)
	b.TraceEvent(ev(mcu.TraceOpBatch, 100, 50, "conv1", 100))
	b.TraceEvent(ev(mcu.TraceBrownOut, 150, 75, "conv1", 0))
	b.TraceEvent(ev(mcu.TraceReboot, 150, 75, "", 1))
	b.TraceEvent(ev(mcu.TraceCommit, 200, 100, "conv1", 0))

	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, b.Events(), 16e6); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d, want header + 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kind,cycles,wall_us") {
		t.Errorf("csv header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[2], "brown-out,150") {
		t.Errorf("csv row: %s", lines[2])
	}

	var tl bytes.Buffer
	if err := WriteTimeline(&tl, b.Analysis()); err != nil {
		t.Fatal(err)
	}
	out := tl.String()
	if !strings.Contains(out, "† conv1") || !strings.Contains(out, "1 reboots") {
		t.Errorf("timeline:\n%s", out)
	}
}
