package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/energy"
	"repro/internal/mcu"
)

// ChromeOptions configures the Chrome trace-event exporter.
type ChromeOptions struct {
	// ClockHz converts live cycles to wall-clock microseconds (the
	// MSP430's 16 MHz if zero).
	ClockHz float64
	// Capacitor, when set, enables the voltage counter track: the
	// buffer's energy level is converted back to capacitor volts.
	Capacitor *energy.Capacitor
}

// chromeEvent is one entry of the trace-event JSON format, understood by
// Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Track ids: 0 is the power system, 1 the runtime control plane, and
// layers get one track each from firstLayerTid up, in order of first
// appearance.
const (
	powerTid      = 0
	runtimeTid    = 1
	firstLayerTid = 10
)

// WriteChrome renders events as Chrome trace-event JSON: one duration
// track per layer (execution slices, rebuilt from op batches so
// re-executed work is visible), instant events for reboots, brown-outs,
// commits, task dispatches, calibration, and LEA/DMA invocations, plus a
// voltage/energy counter track sampling the capacitor between events.
// Wall-clock time includes recharge dead time, so charge cycles appear
// separated by the off gaps the paper's Fig. 6 shows.
func WriteChrome(w io.Writer, events []Event, o ChromeOptions) error {
	clock := o.ClockHz
	if clock <= 0 {
		clock = 16e6
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(data)
		return err
	}
	meta := func(tid int, name string) error {
		return emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	if err := meta(powerTid, "power"); err != nil {
		return err
	}
	if err := meta(runtimeTid, "runtime"); err != nil {
		return err
	}

	ts := func(e Event) float64 {
		return (float64(e.Cycles)/clock + e.DeadSec) * 1e6
	}
	layerTid := map[string]int{}
	tidOf := func(layer string) (int, error) {
		if tid, ok := layerTid[layer]; ok {
			return tid, nil
		}
		tid := firstLayerTid + len(layerTid)
		layerTid[layer] = tid
		return tid, meta(tid, "layer "+layer)
	}
	counter := func(e Event) error {
		if e.LevelNJ < 0 {
			return nil
		}
		if err := emit(chromeEvent{Name: "energy buffer", Ph: "C", Pid: 1, Ts: ts(e),
			Args: map[string]any{"nJ": e.LevelNJ}}); err != nil {
			return err
		}
		if o.Capacitor != nil && o.Capacitor.C > 0 {
			v := math.Sqrt(o.Capacitor.VOff*o.Capacitor.VOff + 2*e.LevelNJ*1e-9/o.Capacitor.C)
			if err := emit(chromeEvent{Name: "voltage", Ph: "C", Pid: 1, Ts: ts(e),
				Args: map[string]any{"V": v}}); err != nil {
				return err
			}
		}
		return nil
	}
	instant := func(tid int, name string, e Event, args map[string]any) error {
		return emit(chromeEvent{Name: name, Ph: "i", Pid: 1, Tid: tid, Ts: ts(e), S: "t", Args: args})
	}

	prevTs := math.NaN()
	for _, e := range events {
		t := ts(e)
		switch e.Kind {
		case mcu.TraceOpBatch:
			// A batch covers the interval since the previous event (every
			// other emission flushes the pending batch first).
			tid, err := tidOf(e.Label)
			if err != nil {
				return err
			}
			start := t
			if !math.IsNaN(prevTs) && prevTs < t {
				start = prevTs
			}
			if err := emit(chromeEvent{Name: e.Label, Ph: "X", Pid: 1, Tid: tid,
				Ts: start, Dur: t - start, Args: map[string]any{"ops": e.Arg}}); err != nil {
				return err
			}
			if err := counter(e); err != nil {
				return err
			}
		case mcu.TraceBrownOut:
			if err := instant(powerTid, "brown-out", e, map[string]any{"layer": e.Label}); err != nil {
				return err
			}
			if err := counter(e); err != nil {
				return err
			}
		case mcu.TraceReboot:
			if err := instant(powerTid, fmt.Sprintf("reboot #%d", e.Arg), e, nil); err != nil {
				return err
			}
		case mcu.TraceRechargeDone:
			if err := counter(e); err != nil {
				return err
			}
		case mcu.TraceCommit:
			if err := instant(runtimeTid, "commit", e, nil); err != nil {
				return err
			}
		case mcu.TraceRunBegin:
			if err := instant(runtimeTid, "run "+e.Label, e, nil); err != nil {
				return err
			}
		case mcu.TraceTaskBegin:
			if err := instant(runtimeTid, "task "+e.Label, e, nil); err != nil {
				return err
			}
		case mcu.TraceTaskCommitStage:
			if err := instant(runtimeTid, "commit-stage", e, map[string]any{"next": e.Label}); err != nil {
				return err
			}
		case mcu.TraceTaskCommitReplay:
			if err := instant(runtimeTid, "commit-replay", e, map[string]any{"entries": e.Arg}); err != nil {
				return err
			}
		case mcu.TraceCalibrate:
			if err := instant(powerTid, "calibrate "+e.Label, e, map[string]any{"tile": e.Arg}); err != nil {
				return err
			}
		case mcu.TraceDMA:
			if err := instant(runtimeTid, "dma "+e.Label, e, map[string]any{"words": e.Arg}); err != nil {
				return err
			}
		case mcu.TraceLEA:
			if err := instant(runtimeTid, "lea "+e.Label, e, map[string]any{"n": e.Arg}); err != nil {
				return err
			}
		case mcu.TraceCheckpoint:
			if err := instant(runtimeTid, "checkpoint", e, map[string]any{"regWords": e.Arg}); err != nil {
				return err
			}
			// Loop-index, privatize, and layer begin/end events are omitted
			// from the Chrome view (they are per-iteration noise there); the
			// CSV exporter keeps everything.
		}
		prevTs = t
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
