package trace

import (
	"fmt"
	"io"
	"strings"
)

// timelineMaxRows caps the terminal rendering; runs with more charge
// cycles show the first and last halves around an elision marker.
const timelineMaxRows = 48

// WriteTimeline renders the analysis as a per-charge-cycle terminal
// timeline: each row is one charge cycle, with a bar split into useful
// (committed) and wasted (re-executed) energy, the layer the cycle died
// in, and the commit count. It is the terminal version of the paper's
// Fig. 6 execution diagrams.
func WriteTimeline(w io.Writer, a *Analysis) error {
	if len(a.Cycles) == 0 {
		_, err := fmt.Fprintln(w, "trace: no events recorded")
		return err
	}
	const barWidth = 40
	maxE := 0.0
	for _, c := range a.Cycles {
		if e := c.EnergyNJ(); e > maxE {
			maxE = e
		}
	}
	if maxE <= 0 {
		maxE = 1
	}
	if _, err := fmt.Fprintf(w, "charge-cycle timeline (%s useful, %s wasted; bar = energy, max %.2f uJ)\n",
		"█", "░", maxE/1e3); err != nil {
		return err
	}
	rows := a.Cycles
	elideAt := -1
	if len(rows) > timelineMaxRows {
		elideAt = timelineMaxRows / 2
	}
	skipped := 0
	for i, c := range rows {
		if elideAt >= 0 && i >= elideAt && i < len(rows)-timelineMaxRows/2 {
			skipped++
			continue
		}
		if skipped > 0 {
			if _, err := fmt.Fprintf(w, "  ... %d cycles elided ...\n", skipped); err != nil {
				return err
			}
			skipped = 0
		}
		total := c.EnergyNJ()
		wasted := c.WastedEnergyNJ
		if wasted < 0 {
			wasted = 0
		}
		if wasted > total {
			wasted = total
		}
		wlen := int(wasted / maxE * barWidth)
		ulen := int((total-wasted)/maxE*barWidth + 0.5)
		bar := strings.Repeat("█", ulen) + strings.Repeat("░", wlen)
		end := "done"
		if c.BrownedOut {
			end = "† " + c.FailedIn
		}
		if _, err := fmt.Fprintf(w, "%4d %-*s %6.2fuJ %2d commits  %s\n",
			c.Index, barWidth, bar, total/1e3, c.Commits, end); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, a.String())
	return err
}
