package trace

import (
	"fmt"
	"strings"
)

// ChargeCycle summarizes one charge cycle: the execution between two
// reboots (or from boot to the first reboot, or to the end of the run).
// Wasted work is the live cycles and energy spent after the cycle's last
// durable commit and before the brown-out — work that re-execution
// repeats after the reboot, the quantity the paper's Fig. 6 illustrates.
type ChargeCycle struct {
	Index         int
	StartCycles   int64
	EndCycles     int64
	StartEnergyNJ float64
	EndEnergyNJ   float64

	// Commits is the number of durable-progress points in this cycle.
	Commits int
	// BrownedOut reports whether the cycle ended in a power failure
	// (false only for the final cycle of a completed run).
	BrownedOut bool
	// FailedIn is the layer label executing when power failed.
	FailedIn string
	// WastedCycles and WastedEnergyNJ measure the re-executed work
	// between the last commit and the brown-out (the whole cycle if it
	// committed nothing).
	WastedCycles   int64
	WastedEnergyNJ float64
	// RechargeSec is the dead time spent refilling the buffer before
	// this cycle's execution began.
	RechargeSec float64

	lastCommitC int64
	lastCommitE float64
}

// LiveCycles is the cycle's total executed cycles.
func (c ChargeCycle) LiveCycles() int64 { return c.EndCycles - c.StartCycles }

// EnergyNJ is the cycle's total consumed energy.
func (c ChargeCycle) EnergyNJ() float64 { return c.EndEnergyNJ - c.StartEnergyNJ }

// Analysis is the derived wasted-work summary of a traced run.
type Analysis struct {
	Cycles []ChargeCycle

	Reboots             int
	Commits             int
	TotalLiveCycles     int64
	TotalEnergyNJ       float64
	TotalWastedCycles   int64
	TotalWastedEnergyNJ float64
	TotalRechargeSec    float64

	// Drops is the number of ring-buffer overwrites; the aggregates
	// above are exact regardless (they are computed online).
	Drops uint64
}

// Analysis snapshots the online aggregation, closing the in-flight cycle
// at the last observed timestamps. The Buffer remains usable.
func (b *Buffer) Analysis() *Analysis {
	cycles := append([]ChargeCycle(nil), b.closed...)
	if b.sawEvent {
		cur := b.cur
		cur.EndCycles = b.lastC
		cur.EndEnergyNJ = b.lastE
		cycles = append(cycles, cur)
	}
	a := &Analysis{Cycles: cycles, Drops: b.drops}
	for _, c := range cycles {
		if c.BrownedOut {
			a.Reboots++
			a.TotalWastedCycles += c.WastedCycles
			a.TotalWastedEnergyNJ += c.WastedEnergyNJ
		}
		a.Commits += c.Commits
		a.TotalLiveCycles += c.LiveCycles()
		a.TotalEnergyNJ += c.EnergyNJ()
		a.TotalRechargeSec += c.RechargeSec
	}
	return a
}

// WastedEnergyPerCycleNJ is the mean energy wasted per browned-out charge
// cycle (0 when the run never failed).
func (a *Analysis) WastedEnergyPerCycleNJ() float64 {
	if a.Reboots == 0 {
		return 0
	}
	return a.TotalWastedEnergyNJ / float64(a.Reboots)
}

// WastedEnergyShare is the fraction of all consumed energy that was
// re-executed work.
func (a *Analysis) WastedEnergyShare() float64 {
	if a.TotalEnergyNJ == 0 {
		return 0
	}
	return a.TotalWastedEnergyNJ / a.TotalEnergyNJ
}

// String renders a one-paragraph summary.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d charge cycles, %d reboots, %d commits; ", len(a.Cycles), a.Reboots, a.Commits)
	fmt.Fprintf(&b, "wasted %.2f uJ (%.1f%% of %.2f uJ consumed", a.TotalWastedEnergyNJ/1e3,
		100*a.WastedEnergyShare(), a.TotalEnergyNJ/1e3)
	if a.Reboots > 0 {
		fmt.Fprintf(&b, "; %.0f nJ/cycle", a.WastedEnergyPerCycleNJ())
	}
	b.WriteString(")")
	if a.Drops > 0 {
		fmt.Fprintf(&b, "; ring dropped %d oldest events", a.Drops)
	}
	return b.String()
}
