package mem

import (
	"math/rand/v2"
	"testing"
)

// TestSnapshotRoundTrip: a bank snapshot restores bit-identical contents
// after arbitrary further writes, both onto the source bank and onto a
// structurally identical sibling.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	build := func() (*Memory, []*Region) {
		m := New(FRAM, 64*1024)
		regs := []*Region{
			m.MustAlloc("w", 1000, 2),
			m.MustAlloc("act", 300, 2),
			m.MustAlloc("ctl", 8, 2),
		}
		return m, regs
	}
	m, regs := build()
	for _, r := range regs {
		for i := 0; i < r.Len(); i++ {
			r.Put(i, rng.Int64N(1<<15))
		}
	}
	snap := m.Snapshot(nil, nil)

	// Scribble over everything, then restore in place.
	for _, r := range regs {
		for i := 0; i < r.Len(); i++ {
			r.Put(i, -1)
		}
	}
	if err := snap.RestoreTo(m); err != nil {
		t.Fatal(err)
	}
	sum := func(regs []*Region) (s int64) {
		for _, r := range regs {
			for i := 0; i < r.Len(); i++ {
				s = s*1099511628211 + r.Get(i)
			}
		}
		return s
	}
	want := sum(regs)

	// Restore onto a fresh structurally identical bank.
	m2, regs2 := build()
	if err := snap.RestoreTo(m2); err != nil {
		t.Fatal(err)
	}
	if got := sum(regs2); got != want {
		t.Fatalf("cross-bank restore diverged: %d vs %d", got, want)
	}

	// Layout mismatch must be rejected, not silently corrupt.
	m3 := New(FRAM, 64*1024)
	m3.MustAlloc("w", 1000, 2)
	if err := snap.RestoreTo(m3); err == nil {
		t.Fatal("restore onto mismatched layout succeeded")
	}
}

// TestSnapshotTrainSharesPages: consecutive snapshots share the page
// storage of untouched regions instead of copying it.
func TestSnapshotTrainSharesPages(t *testing.T) {
	m := New(FRAM, 64*1024)
	a := m.MustAlloc("a", 4*SnapPageWords, 2)
	b := m.MustAlloc("b", 4*SnapPageWords, 2)
	for i := 0; i < a.Len(); i++ {
		a.Put(i, int64(i))
	}
	s1 := m.Snapshot(nil, nil)
	b.Put(0, 7) // dirty exactly one page of b
	s2 := m.Snapshot(s1, nil)

	shared, owned := 0, 0
	for ri := range s2.regions {
		for p := range s2.regions[ri].pages {
			if &s2.regions[ri].pages[p][0] == &s1.regions[ri].pages[p][0] {
				shared++
			} else {
				owned++
			}
		}
	}
	if owned != 1 || shared != 7 {
		t.Fatalf("page sharing off: %d owned, %d shared (want 1/7)", owned, shared)
	}

	// The dirty-hint path shares clean pages without comparing.
	b.Put(SnapPageWords, 9)
	s3 := m.Snapshot(s2, func(region, page int) bool { return region == 1 && page == 1 })
	if &s3.regions[1].pages[1][0] == &s2.regions[1].pages[1][0] {
		t.Fatal("dirty page was shared")
	}
	if &s3.regions[0].pages[0][0] != &s2.regions[0].pages[0][0] {
		t.Fatal("clean page was copied despite clean hint")
	}
}

type putRecord struct {
	name string
	i    int
	v    int64
}

type recordObs struct{ puts []putRecord }

func (o *recordObs) OnPut(r *Region, i int, v int64) {
	o.puts = append(o.puts, putRecord{r.Name, i, v})
}

// TestPutObserver: an installed observer sees every Put on existing and
// future regions, and uninstalls cleanly.
func TestPutObserver(t *testing.T) {
	m := New(FRAM, 4096)
	a := m.MustAlloc("a", 4, 2)
	obs := &recordObs{}
	m.SetObserver(obs)
	a.Put(1, 11)
	b := m.MustAlloc("b", 4, 2)
	b.Put(2, 22)
	m.SetObserver(nil)
	a.Put(3, 33)
	want := []putRecord{{"a", 1, 11}, {"b", 2, 22}}
	if len(obs.puts) != len(want) {
		t.Fatalf("observer saw %v, want %v", obs.puts, want)
	}
	for i := range want {
		if obs.puts[i] != want[i] {
			t.Fatalf("observer saw %v, want %v", obs.puts, want)
		}
	}
	if m.IndexOf(a) != 0 || m.IndexOf(b) != 1 || m.RegionAt(1) != b || m.Regions() != 2 {
		t.Fatal("region indexing inconsistent")
	}
}

// TestShadowSnapshotRoundTrip: restoring a shadow snapshot rewinds the
// in-flight WAR state machine exactly — a write that was a violation at
// snapshot time is again a violation after restore, and vice versa.
func TestShadowSnapshotRoundTrip(t *testing.T) {
	m := New(FRAM, 4096)
	r := m.MustAlloc("r", 16, 2)
	s := NewShadow()
	s.OnRead(r, 3)  // 3: readFirst — a later write is a WAR violation
	s.OnWrite(r, 5) // 5: written — later writes are safe
	snap := s.Snapshot()

	if !s.OnWrite(r, 3) {
		t.Fatal("write after read not flagged before snapshot use")
	}
	s.Commit()
	if s.OnWrite(r, 3) {
		t.Fatal("commit did not clear word state")
	}
	s.Restore(snap)
	if !s.OnWrite(r, 3) {
		t.Fatal("restored shadow lost the read-first state")
	}
	if s.OnWrite(r, 5) {
		t.Fatal("restored shadow lost the written state")
	}
}
