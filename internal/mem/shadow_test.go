package mem

import "testing"

func shadowFixture(t *testing.T) (*Shadow, *Region, *Region) {
	t.Helper()
	fram := New(FRAM, 4096)
	sram := New(SRAM, 4096)
	nv := fram.MustAlloc("nv", 16, 2)
	v := sram.MustAlloc("v", 16, 2)
	return NewShadow(), nv, v
}

func TestShadowWARDetection(t *testing.T) {
	s, nv, _ := shadowFixture(t)

	// Write-dominated word: never a violation.
	if s.OnWrite(nv, 0) {
		t.Error("first-access write flagged")
	}
	s.OnRead(nv, 0)
	if s.OnWrite(nv, 0) {
		t.Error("write after write-dominated read flagged")
	}

	// Read-first word: the later write is the WAR hazard.
	s.OnRead(nv, 1)
	if !s.OnWrite(nv, 1) {
		t.Error("write-after-read not flagged")
	}
	// Reported once per word per region, not per write.
	if s.OnWrite(nv, 1) {
		t.Error("same hazard flagged twice")
	}
}

func TestShadowCommitAndAbortReset(t *testing.T) {
	s, nv, _ := shadowFixture(t)

	s.OnRead(nv, 2)
	s.Commit()
	if s.OnWrite(nv, 2) {
		t.Error("write after commit flagged: commit must reset word states")
	}

	s.Commit() // also clears the write mark
	s.OnRead(nv, 2)
	s.Abort()
	if s.OnWrite(nv, 2) {
		t.Error("write after abort flagged: abort must reset word states")
	}
}

func TestShadowLoggedWordExempt(t *testing.T) {
	s, nv, _ := shadowFixture(t)

	s.OnRead(nv, 3)
	s.NoteLogged(nv, 3)
	if s.OnWrite(nv, 3) {
		t.Error("undo-logged word flagged")
	}

	// The sanction ends at commit.
	s.Commit()
	s.OnRead(nv, 3)
	if !s.OnWrite(nv, 3) {
		t.Error("logged sanction leaked past commit")
	}
}

func TestShadowExemptRegion(t *testing.T) {
	s, nv, _ := shadowFixture(t)
	s.Exempt(nv)
	s.OnRead(nv, 4)
	if s.OnWrite(nv, 4) {
		t.Error("exempt region flagged")
	}
}

func TestShadowIgnoresSRAM(t *testing.T) {
	s, _, v := shadowFixture(t)
	s.OnRead(v, 0)
	if s.OnWrite(v, 0) {
		t.Error("volatile SRAM access flagged: reboot clears it, no WAR possible")
	}
}
