package mem

import "testing"

func TestAllocBudget(t *testing.T) {
	m := New(FRAM, 100)
	r, err := m.Alloc("a", 20, 2) // 40 bytes
	if err != nil {
		t.Fatal(err)
	}
	if m.Used() != 40 || m.Free() != 60 {
		t.Errorf("used/free = %d/%d", m.Used(), m.Free())
	}
	if _, err := m.Alloc("b", 40, 2); err == nil { // 80 > 60
		t.Error("over-allocation should fail")
	}
	if _, err := m.Alloc("c", 30, 2); err != nil { // exactly 60
		t.Errorf("exact fit should succeed: %v", err)
	}
	m.Release(r)
	if m.Used() != 60 {
		t.Errorf("after release used = %d, want 60", m.Used())
	}
}

func TestAllocInvalid(t *testing.T) {
	m := New(SRAM, 100)
	if _, err := m.Alloc("bad", -1, 2); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := m.Alloc("bad", 1, 0); err == nil {
		t.Error("zero elem bytes should fail")
	}
}

func TestMustAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc should panic on overflow")
		}
	}()
	New(SRAM, 10).MustAlloc("x", 100, 2)
}

func TestClearVolatile(t *testing.T) {
	sram := New(SRAM, 1024)
	fram := New(FRAM, 1024)
	rs := sram.MustAlloc("s", 4, 2)
	rf := fram.MustAlloc("f", 4, 2)
	rs.Put(0, 42)
	rf.Put(0, 42)
	sram.ClearVolatile()
	fram.ClearVolatile()
	if rs.Get(0) != 0 {
		t.Error("SRAM should clear on power failure")
	}
	if rf.Get(0) != 42 {
		t.Error("FRAM must persist through power failure")
	}
}

func TestRegionAccessors(t *testing.T) {
	m := New(FRAM, 1024)
	r := m.MustAlloc("r", 8, 4)
	if r.Len() != 8 || r.Kind() != FRAM || r.ElemBytes != 4 {
		t.Errorf("region metadata wrong: %d %v %d", r.Len(), r.Kind(), r.ElemBytes)
	}
	r.Put(3, -7)
	if r.Get(3) != -7 {
		t.Error("Put/Get roundtrip failed")
	}
	r.Words()[3] = 9
	if r.Get(3) != 9 {
		t.Error("Words should alias storage")
	}
}

func TestReleaseForeignRegionPanics(t *testing.T) {
	m1 := New(FRAM, 100)
	m2 := New(FRAM, 100)
	r := m1.MustAlloc("r", 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("releasing a foreign region should panic")
		}
	}()
	m2.Release(r)
}

func TestReset(t *testing.T) {
	m := New(SRAM, 100)
	m.MustAlloc("a", 10, 2)
	m.Reset()
	if m.Used() != 0 {
		t.Errorf("used after reset = %d", m.Used())
	}
}

func TestKindString(t *testing.T) {
	if FRAM.String() != "FRAM" || SRAM.String() != "SRAM" {
		t.Error("kind strings wrong")
	}
}
