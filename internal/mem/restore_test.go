package mem

import "testing"

// protoBank builds a bank with a large "weights" region and a small "act"
// region, deterministically initialized, plus its snapshot — the shape of
// a provisioning prototype.
func protoBank(t *testing.T) (*Memory, *Snapshot) {
	t.Helper()
	m := New(FRAM, 64*1024)
	w := m.MustAlloc("weights", 3*SnapPageWords, 2)
	act := m.MustAlloc("act", 100, 2)
	for i := 0; i < w.Len(); i++ {
		w.Put(i, int64(i*7))
	}
	for i := 0; i < act.Len(); i++ {
		act.Put(i, int64(i))
	}
	return m, m.Snapshot(nil, nil)
}

func TestRestoreInPlaceRewritesOnlyModifiedPages(t *testing.T) {
	m, snap := protoBank(t)
	hint := NewDirtyPages(snap)

	// First restore right after snapshotting: every region is dirty (Put
	// marked it), every page compares clean.
	st, err := snap.RestoreInPlace(m, hint)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 0 || st.Skipped != 0 || st.Clean == 0 {
		t.Errorf("post-snapshot restore = %+v, want all pages compared clean", st)
	}
	if m.RegionAt(0).Dirty() || m.RegionAt(1).Dirty() {
		t.Error("restore should clear region dirty flags")
	}

	// A run that only touches act: weights stay clean and are skipped
	// wholesale; act's one page is compared, found modified, copied, and
	// hinted.
	act := m.RegionAt(1)
	act.Put(3, 999)
	st, err = snap.RestoreInPlace(m, hint)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 3 || st.Copied != 1 || st.Clean != 0 {
		t.Errorf("act-only restore = %+v, want 3 skipped / 1 copied", st)
	}
	if act.Get(3) != 3 {
		t.Errorf("act[3] = %d after restore, want 3", act.Get(3))
	}
	if hint.Marked() != 1 {
		t.Errorf("hint marks %d pages, want 1", hint.Marked())
	}

	// Next round: the hinted page is copied without comparing even though
	// this run never touched it... provided the region is dirty at all.
	act.Put(0, 5)
	st, err = snap.RestoreInPlace(m, hint)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 1 || st.Clean != 0 || st.Skipped != 3 {
		t.Errorf("hinted restore = %+v, want the hinted page copied outright", st)
	}
	if act.Get(0) != 0 {
		t.Errorf("act[0] = %d after restore, want 0", act.Get(0))
	}
}

func TestRestoreInPlaceWordsMarksButROWordsDoesNot(t *testing.T) {
	m, snap := protoBank(t)
	if _, err := snap.RestoreInPlace(m, nil); err != nil {
		t.Fatal(err)
	}
	w := m.RegionAt(0)
	_ = w.ROWords()[5]
	if w.Dirty() {
		t.Error("ROWords must not mark the region dirty")
	}
	w.Words()[5] = -1
	if !w.Dirty() {
		t.Error("Words must mark the region dirty")
	}
	st, err := snap.RestoreInPlace(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 1 {
		t.Errorf("restore after raw write = %+v, want exactly the written page copied", st)
	}
	if w.Get(5) != 35 {
		t.Errorf("weights[5] = %d after restore, want 35", w.Get(5))
	}
}

func TestRestoreInPlaceKeepsRegionsLive(t *testing.T) {
	m, snap := protoBank(t)
	w, act := m.RegionAt(0), m.RegionAt(1)
	wWords := w.ROWords()
	act.Put(0, 42)
	if _, err := snap.RestoreInPlace(m, nil); err != nil {
		t.Fatal(err)
	}
	if m.RegionAt(0) != w || m.RegionAt(1) != act {
		t.Error("restore must not replace Region objects")
	}
	if &wWords[0] != &w.ROWords()[0] {
		t.Error("restore must not reallocate backing storage")
	}
}

func TestRestoreInPlaceStructureMismatch(t *testing.T) {
	_, snap := protoBank(t)
	other := New(FRAM, 64*1024)
	other.MustAlloc("weights", 3*SnapPageWords, 2)
	if _, err := snap.RestoreInPlace(other, nil); err == nil {
		t.Error("restore onto a structurally different bank must fail")
	}

	m2, snap2 := protoBank(t)
	if _, err := snap.RestoreInPlace(m2, NewDirtyPages(snap2)); err != nil {
		t.Fatal(err) // same shape: fine
	}
	short := &DirtyPages{pages: make([][]bool, 1)}
	if _, err := snap.RestoreInPlace(m2, short); err == nil {
		t.Error("misshapen hint must fail")
	}
}

func TestClearVolatileMarksDirty(t *testing.T) {
	m := New(SRAM, 1024)
	r := m.MustAlloc("buf", 8, 2)
	if r.Dirty() {
		t.Error("fresh region should start clean")
	}
	m.ClearVolatile()
	if !r.Dirty() {
		t.Error("ClearVolatile must mark SRAM regions dirty")
	}
}
