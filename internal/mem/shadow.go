package mem

// Shadow is an opt-in memory-consistency tracker for nonvolatile regions.
// It watches every word access between two durable commit points and flags
// write-after-read (WAR) violations — the exact bug class loop continuation
// must avoid (paper §4): if a charge cycle reads a nonvolatile word and
// later overwrites it, re-executing that cycle after a brown-out reads the
// *new* value where the original run read the old one, silently corrupting
// the result. A write is safe when it dominates the reads of its word
// (write-before-read is idempotent under replay), when the word's original
// value was durably undo-logged first (SONIC's sparse updates), or when the
// region implements its own crash-consistency protocol and is exempted
// (commit cursors, redo logs, checkpoint areas).
//
// Per word the tracker keeps a three-state machine, reset at every commit
// and every power failure:
//
//	untouched --read--> readFirst --write--> VIOLATION (unless logged/exempt)
//	untouched --write-> written   (all later accesses safe)
//
// Only FRAM regions are tracked; SRAM is cleared on reboot, so volatile
// WAR hazards cannot leak state across a power failure.
type Shadow struct {
	state   map[*Region][]uint8
	exempt  map[*Region]bool
	touched []touchedWord
}

type touchedWord struct {
	r *Region
	i int
}

// Per-word shadow states. wordLogged is a flag bit layered over the state:
// a logged word may be rewritten freely until the next commit because its
// pre-state is recoverable.
const (
	wordUntouched uint8 = 0
	wordReadFirst uint8 = 1
	wordWritten   uint8 = 2
	wordLogged    uint8 = 4
)

// NewShadow returns an empty tracker.
func NewShadow() *Shadow {
	return &Shadow{
		state:  make(map[*Region][]uint8),
		exempt: make(map[*Region]bool),
	}
}

// Exempt excludes a region from WAR checking. Use it for regions that carry
// their own crash-consistency protocol (commit indices, undo/redo logs,
// checkpoint slots): their write-after-read patterns are the mechanism that
// makes everything else safe, not a hazard.
func (s *Shadow) Exempt(r *Region) { s.exempt[r] = true }

// NoteLogged records that the word's current value has been durably saved
// (undo-logged) in this commit region, sanctioning later overwrites until
// the next commit or abort.
func (s *Shadow) NoteLogged(r *Region, i int) {
	if s.exempt[r] || r.Kind() != FRAM {
		return
	}
	st := s.words(r)
	if st[i] == wordUntouched {
		s.touched = append(s.touched, touchedWord{r, i})
	}
	st[i] |= wordLogged
}

// OnRead records a word read.
func (s *Shadow) OnRead(r *Region, i int) {
	if s.exempt[r] || r.Kind() != FRAM {
		return
	}
	st := s.words(r)
	if st[i] == wordUntouched {
		st[i] = wordReadFirst
		s.touched = append(s.touched, touchedWord{r, i})
	}
}

// OnWrite records a word write and reports whether it is a WAR violation:
// the word's first access in this commit region was a read, and its
// pre-state was never logged.
func (s *Shadow) OnWrite(r *Region, i int) bool {
	if s.exempt[r] || r.Kind() != FRAM {
		return false
	}
	st := s.words(r)
	switch st[i] {
	case wordUntouched:
		st[i] = wordWritten
		s.touched = append(s.touched, touchedWord{r, i})
		return false
	case wordReadFirst:
		st[i] = wordWritten // report each hazardous word once per region
		return true
	default:
		return false
	}
}

// Commit marks a durable progress point: replay can no longer revisit the
// accesses seen so far, so all word states reset.
func (s *Shadow) Commit() { s.clear() }

// Abort marks a power failure before commit. The in-flight region will be
// replayed from its last commit, so word states reset the same way. (Any
// violation it contained was already reported by OnWrite.)
func (s *Shadow) Abort() { s.clear() }

func (s *Shadow) clear() {
	for _, t := range s.touched {
		if st, ok := s.state[t.r]; ok && t.i < len(st) {
			st[t.i] = wordUntouched
		}
	}
	s.touched = s.touched[:0]
}

func (s *Shadow) words(r *Region) []uint8 {
	st := s.state[r]
	if len(st) < r.Len() {
		st = make([]uint8, r.Len())
		s.state[r] = st
	}
	return st
}
