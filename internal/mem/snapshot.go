package mem

import "fmt"

// SnapPageWords is the page granularity of bank snapshots: unchanged pages
// are shared (by slice reference) with the previous snapshot in a train, so
// a stride-S train over a long run costs a small multiple of live memory
// rather than S full copies.
const SnapPageWords = 256

type regionSnap struct {
	name  string
	words int
	pages [][]int64 // page p covers words [p*SnapPageWords, ...); last may be short
}

// Snapshot is an immutable copy of a bank's full contents, taken by
// Memory.Snapshot. Pages unchanged since the previous snapshot alias the
// previous snapshot's storage; callers must treat snapshots as read-only.
type Snapshot struct {
	kind    Kind
	regions []regionSnap
}

// Snapshot captures the bank's contents. prev, if non-nil and structurally
// identical (same region count, names, and lengths), is the previous
// snapshot in the train: pages equal to their prev counterpart are shared
// instead of copied. dirty, if non-nil, is a hint that page p of region r
// may have changed since prev; clean pages are shared without comparison.
func (m *Memory) Snapshot(prev *Snapshot, dirty func(region, page int) bool) *Snapshot {
	s := &Snapshot{kind: m.kind, regions: make([]regionSnap, len(m.regions))}
	if prev != nil && !m.matches(prev) {
		prev = nil
	}
	for ri, r := range m.regions {
		n := len(r.words)
		np := (n + SnapPageWords - 1) / SnapPageWords
		rs := regionSnap{name: r.Name, words: n, pages: make([][]int64, np)}
		for p := 0; p < np; p++ {
			lo := p * SnapPageWords
			hi := lo + SnapPageWords
			if hi > n {
				hi = n
			}
			live := r.words[lo:hi]
			if prev != nil {
				old := prev.regions[ri].pages[p]
				if (dirty != nil && !dirty(ri, p)) || pageEqual(live, old) {
					rs.pages[p] = old
					continue
				}
			}
			rs.pages[p] = append([]int64(nil), live...)
		}
		s.regions[ri] = rs
	}
	return s
}

func pageEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (m *Memory) matches(s *Snapshot) bool {
	if s.kind != m.kind || len(s.regions) != len(m.regions) {
		return false
	}
	for ri, r := range m.regions {
		if s.regions[ri].name != r.Name || s.regions[ri].words != len(r.words) {
			return false
		}
	}
	return true
}

// RestoreTo copies the snapshot's contents into a structurally identical
// bank — the bank the snapshot was taken from, or another bank whose
// region list (count, names, lengths) matches word for word, as a fork
// device's does after a deterministic re-deploy.
func (s *Snapshot) RestoreTo(m *Memory) error {
	if !m.matches(s) {
		return fmt.Errorf("mem: snapshot does not match %s bank layout (%d regions vs %d)",
			m.kind, len(s.regions), len(m.regions))
	}
	for ri, rs := range s.regions {
		r := m.regions[ri]
		r.dirty = true
		for p, page := range rs.pages {
			copy(r.words[p*SnapPageWords:], page)
		}
	}
	return nil
}

// shadowWordSnap is one saved in-flight shadow word state.
type shadowWordSnap struct {
	r  *Region
	i  int
	st uint8
}

// ShadowSnapshot captures a Shadow's in-flight (uncommitted) word states.
type ShadowSnapshot struct {
	words []shadowWordSnap
}

// Snapshot captures the tracker's in-flight state — every word touched
// since the last commit or abort. The exempt set is structural (rebuilt by
// whoever configured the tracker) and is not captured.
func (s *Shadow) Snapshot() *ShadowSnapshot {
	snap := &ShadowSnapshot{words: make([]shadowWordSnap, 0, len(s.touched))}
	for _, t := range s.touched {
		snap.words = append(snap.words, shadowWordSnap{t.r, t.i, s.state[t.r][t.i]})
	}
	return snap
}

// Restore rewinds the tracker to a snapshot taken from the same Shadow:
// current in-flight state is discarded and the saved word states reapplied.
func (s *Shadow) Restore(snap *ShadowSnapshot) {
	s.clear()
	for _, w := range snap.words {
		s.words(w.r)[w.i] = w.st
		s.touched = append(s.touched, touchedWord{w.r, w.i})
	}
}
