package mem

import "fmt"

// DirtyPages is a reusable page-granularity hint set over one snapshot's
// region layout, fed back by RestoreInPlace: a page marked here was found
// modified by some previous restore over the same bank, so the next
// restore copies it outright instead of comparing first. Marks only ever
// accumulate — copying a page that happens to be clean is harmless, while
// re-verifying one that is usually dirty wastes a read pass. One hint set
// belongs to one (snapshot, bank) pairing, e.g. a fleet pool slot.
type DirtyPages struct {
	pages [][]bool
}

// NewDirtyPages returns an empty hint set shaped like s.
func NewDirtyPages(s *Snapshot) *DirtyPages {
	dp := &DirtyPages{pages: make([][]bool, len(s.regions))}
	for i, rs := range s.regions {
		dp.pages[i] = make([]bool, len(rs.pages))
	}
	return dp
}

// Marked counts the pages currently hinted dirty.
func (dp *DirtyPages) Marked() int {
	n := 0
	for _, reg := range dp.pages {
		for _, d := range reg {
			if d {
				n++
			}
		}
	}
	return n
}

// RestoreStats reports what one RestoreInPlace actually did, in pages.
type RestoreStats struct {
	Copied  int // rewritten: hinted dirty, or compared and found modified
	Clean   int // compared and found identical to the snapshot
	Skipped int // not even compared: their whole region was never written
}

// RestoreInPlace rewrites the bank's contents to equal the snapshot
// without touching its structure: the Memory, its Region objects, and
// their backing slices all stay live, so pointers into the bank (a
// deployed core.Image, a protocol-exemption list) survive the restore.
// This is the provisioning primitive behind pooled fleet devices.
//
// Regions whose Dirty flag is clear are trusted to already hold the
// snapshot's contents and are skipped wholesale. That trust is the
// caller's contract: it holds when the bank was produced by the same
// deterministic procedure as the snapshot's source (a re-deploy of the
// same model image) or by a previous restore of this same snapshot, and
// every write since went through the tracked paths (Put, SetRange,
// Words, ClearVolatile). Within a dirty region, pages hinted in hint are
// copied outright; the rest are compared and copied only on mismatch,
// with fresh mismatches fed back into hint. Every processed region's
// Dirty flag is cleared. hint may be nil (compare everything dirty); when
// non-nil it must have been built by NewDirtyPages over this snapshot.
func (s *Snapshot) RestoreInPlace(m *Memory, hint *DirtyPages) (RestoreStats, error) {
	var st RestoreStats
	if !m.matches(s) {
		return st, fmt.Errorf("mem: snapshot does not match %s bank layout (%d regions vs %d)",
			m.kind, len(s.regions), len(m.regions))
	}
	if hint != nil && len(hint.pages) != len(s.regions) {
		return st, fmt.Errorf("mem: dirty-page hint shaped for %d regions, snapshot has %d",
			len(hint.pages), len(s.regions))
	}
	for ri, rs := range s.regions {
		r := m.regions[ri]
		if !r.dirty {
			st.Skipped += len(rs.pages)
			continue
		}
		var marks []bool
		if hint != nil {
			if len(hint.pages[ri]) != len(rs.pages) {
				return st, fmt.Errorf("mem: dirty-page hint for region %q has %d pages, snapshot has %d",
					rs.name, len(hint.pages[ri]), len(rs.pages))
			}
			marks = hint.pages[ri]
		}
		for p, page := range rs.pages {
			live := r.words[p*SnapPageWords : p*SnapPageWords+len(page)]
			if marks != nil && marks[p] {
				copy(live, page)
				st.Copied++
				continue
			}
			if pageEqual(live, page) {
				st.Clean++
				continue
			}
			copy(live, page)
			st.Copied++
			if marks != nil {
				marks[p] = true
			}
		}
		r.dirty = false
	}
	return st, nil
}
