// Package mem models the MSP430FR5994's two embedded memories: a small
// volatile SRAM and a larger non-volatile FRAM. Each memory has a byte
// capacity enforced at allocation time (GENESIS's feasibility check is
// "do the weights fit in FRAM?"), and hands out word-addressed regions.
//
// A power failure clears SRAM but leaves FRAM intact; the device model in
// package mcu calls ClearVolatile on reboot. Access energy is charged by
// the device, not here — this package is pure storage.
package mem

import "fmt"

// Kind distinguishes the two memory technologies.
type Kind uint8

// Memory kinds.
const (
	FRAM Kind = iota // non-volatile, slower, higher access energy
	SRAM             // volatile, fast
)

func (k Kind) String() string {
	if k == FRAM {
		return "FRAM"
	}
	return "SRAM"
}

// Default capacities of the TI MSP430FR5994 (256 KB FRAM, 8 KB SRAM, of
// which 4 KB is the LEA-shared bank).
const (
	DefaultFRAMBytes = 256 * 1024
	DefaultSRAMBytes = 8 * 1024
	LEABufferBytes   = 4 * 1024
)

// Memory is one physical memory bank.
type Memory struct {
	kind     Kind
	capacity int
	used     int
	regions  []*Region
	obs      PutObserver
}

// PutObserver sees every host- or device-side Put into an observed bank.
// The mcu journal uses it to log nonvolatile writes during a recording run;
// a nil observer costs one predictable branch per Put.
type PutObserver interface {
	OnPut(r *Region, i int, v int64)
}

// New returns a memory bank of the given kind and byte capacity.
func New(kind Kind, capacityBytes int) *Memory {
	return &Memory{kind: kind, capacity: capacityBytes}
}

// Kind returns the memory technology.
func (m *Memory) Kind() Kind { return m.kind }

// Capacity returns the bank's size in bytes.
func (m *Memory) Capacity() int { return m.capacity }

// Used returns allocated bytes.
func (m *Memory) Used() int { return m.used }

// Free returns unallocated bytes.
func (m *Memory) Free() int { return m.capacity - m.used }

// Region is a named, word-addressed allocation. Words are int64 in the
// simulation (so device kernels can hold exact wide accumulators); ElemBytes records the *modelled* element width (2 for Q15
// weights/activations, 4 for wide accumulators) used in capacity
// accounting.
type Region struct {
	Name      string
	ElemBytes int
	mem       *Memory
	kind      Kind // copy of mem.kind, so Kind() avoids the pointer chase
	words     []int64
	obs       PutObserver

	// dirty records whether the region may have been written since the
	// last Snapshot.RestoreInPlace over its bank. Every write path sets it
	// — Put, SetRange, ClearVolatile, and Words (which hands out a
	// writable slice, so it must assume the worst) — while the read-only
	// ROWords view does not, which is what lets a pooled fleet device skip
	// its weight tables entirely on re-provisioning: kernels only ever
	// read them through ROWords, so they stay clean.
	dirty bool
}

// Alloc reserves a region of n words of elemBytes each, or fails if the
// bank lacks capacity.
func (m *Memory) Alloc(name string, n, elemBytes int) (*Region, error) {
	if n < 0 || elemBytes <= 0 {
		return nil, fmt.Errorf("mem: invalid allocation %q: %d x %dB", name, n, elemBytes)
	}
	bytes := n * elemBytes
	if m.used+bytes > m.capacity {
		return nil, fmt.Errorf("mem: %s out of memory allocating %q: need %dB, %dB free",
			m.kind, name, bytes, m.Free())
	}
	m.used += bytes
	r := &Region{Name: name, ElemBytes: elemBytes, mem: m, kind: m.kind, words: make([]int64, n), obs: m.obs}
	m.regions = append(m.regions, r)
	return r, nil
}

// SetObserver installs (or with nil removes) a Put observer on the bank and
// every region it has handed out; regions allocated later inherit it.
func (m *Memory) SetObserver(o PutObserver) {
	m.obs = o
	for _, r := range m.regions {
		r.obs = o
	}
}

// Observed reports whether a Put observer is installed on the bank. Fused
// bulk kernels write raw backing words and must stay off banks an
// observer is watching.
func (m *Memory) Observed() bool { return m.obs != nil }

// IndexOf returns r's position in the bank's live region list, or -1. The
// index is stable while no region is released, which lets a recording keyed
// by index be replayed onto a structurally identical bank.
func (m *Memory) IndexOf(r *Region) int {
	for i, reg := range m.regions {
		if reg == r {
			return i
		}
	}
	return -1
}

// RegionAt returns the i-th live region.
func (m *Memory) RegionAt(i int) *Region { return m.regions[i] }

// Regions returns the number of live regions.
func (m *Memory) Regions() int { return len(m.regions) }

// MustAlloc is Alloc that panics on failure; for fixed-size runtime
// metadata whose fit is a program invariant.
func (m *Memory) MustAlloc(name string, n, elemBytes int) *Region {
	r, err := m.Alloc(name, n, elemBytes)
	if err != nil {
		panic(err)
	}
	return r
}

// Release frees a region's reservation. The region must belong to m.
func (m *Memory) Release(r *Region) {
	for i, reg := range m.regions {
		if reg == r {
			m.used -= len(r.words) * r.ElemBytes
			m.regions = append(m.regions[:i], m.regions[i+1:]...)
			r.mem = nil
			return
		}
	}
	panic(fmt.Sprintf("mem: freeing region %q not in %s", r.Name, m.kind))
}

// Reset releases all regions.
func (m *Memory) Reset() {
	m.regions = nil
	m.used = 0
}

// ClearVolatile zeroes every region if the bank is SRAM (power failure
// semantics); FRAM banks are untouched.
func (m *Memory) ClearVolatile() {
	if m.kind != SRAM {
		return
	}
	for _, r := range m.regions {
		r.dirty = true
		for i := range r.words {
			r.words[i] = 0
		}
	}
}

// Kind returns the memory technology holding this region.
func (r *Region) Kind() Kind { return r.kind }

// Len returns the region's word count.
func (r *Region) Len() int { return len(r.words) }

// Get reads word i without energy accounting (host-side inspection only;
// device code must go through mcu.Device which charges access energy).
func (r *Region) Get(i int) int64 { return r.words[i] }

// Put writes word i without energy accounting (host-side initialization,
// e.g. placing weights at deploy time).
func (r *Region) Put(i int, v int64) {
	if r.obs != nil {
		r.obs.OnPut(r, i, v)
	}
	r.dirty = true
	r.words[i] = v
}

// Words exposes the raw storage for host-side bulk initialization and for
// the device model's fused kernels, which operate on the backing slice
// directly after charging the whole loop (see internal/kern). The slice is
// writable, so the region is conservatively marked dirty; code that only
// reads should use ROWords instead.
func (r *Region) Words() []int64 {
	r.dirty = true
	return r.words
}

// ROWords exposes the raw storage for read-only access — fused kernels'
// source operands, weight tables, host-side inspection. Callers must not
// write through it: writes would evade the dirty tracking that
// Snapshot.RestoreInPlace relies on to skip untouched regions.
func (r *Region) ROWords() []int64 { return r.words }

// Dirty reports whether the region may have been written since it was
// allocated or last restored by RestoreInPlace, whichever came later.
// Provisioning observability and tests only.
func (r *Region) Dirty() bool { return r.dirty }

// Observed reports whether a PutObserver is attached. Bulk writers that
// bypass Put (fused kernels writing through Words) must check it and
// route stores through Put/SetRange instead, so the observer still sees
// every write.
func (r *Region) Observed() bool { return r.obs != nil }

// SetRange writes vs into words [i, i+len(vs)) with the same observer
// semantics as len(vs) ascending Put calls.
func (r *Region) SetRange(i int, vs []int64) {
	r.dirty = true
	if r.obs != nil {
		for j, v := range vs {
			r.obs.OnPut(r, i+j, v)
			r.words[i+j] = v
		}
		return
	}
	copy(r.words[i:], vs)
}
