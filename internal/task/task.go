// Package task implements a task-based intermittent execution runtime in
// the style of Alpaca (Maeng et al., OOPSLA'17), the state of the art the
// paper compares against. Programs are chains of tasks; each task executes
// atomically with respect to power failures:
//
//   - writes to task-shared non-volatile data are redo-logged during
//     execution;
//   - at the task transition the log is committed to the home locations
//     under a two-phase protocol, so a failure during commit replays the
//     (idempotent) redo log on reboot;
//   - a failure during execution discards the log and restarts the task.
//
// This reproduces the cost structure the paper attributes to prior
// task-based systems: every write pays dynamic buffering, every transition
// pays commit plus dispatch, and every failure wastes the partial task.
package task

import (
	"fmt"

	"repro/internal/mcu"
	"repro/internal/mem"
)

// ID names a task within a runtime. Done terminates the program.
type ID int32

// Done is the transition target that ends the program.
const Done ID = -1

// execution phases of the two-phase commit protocol.
const (
	phaseExec   = 0
	phaseCommit = 1
)

// state-region word offsets.
const (
	stPhase = 0 // phaseExec or phaseCommit
	stCur   = 1 // current task id
	stNext  = 2 // transition target staged before commit
	stCount = 3 // redo-log entry count

	stateWords = 4
)

// Func is a task body. It must be idempotent up to its task-shared writes
// (which the runtime privatizes) and returns the next task.
type Func func(*Ctx) ID

// Runtime executes a task graph on a device.
type Runtime struct {
	dev *mcu.Device

	tasks []taskEntry
	state *mem.Region
	log   *mem.Region // interleaved (packed address, value) pairs
	cap   int

	shared []*mem.Region
	ids    map[*mem.Region]int

	// The write set maps (region, word) to log slots. It models Alpaca's
	// privatization lookup and is volatile: cleared at task start and
	// implicitly discarded by restarts. The host-side representation is a
	// dense epoch-stamped table per shared region — a wsSlot entry is live
	// only when its wsMark equals the current epoch, so the per-task clear
	// is one counter bump instead of a map wipe.
	wsSlot  [][]int32
	wsMark  [][]uint32
	wsEpoch uint32

	// Two-entry cache for the region→id resolution: task kernels privatize
	// through the same one or two regions (e.g. a finalize pass reading the
	// partial and writing the output) for thousands of consecutive
	// accesses, so this skips the map lookup on nearly every access.
	lastReg, prevReg *mem.Region
	lastID, prevID   int

	// logScratch is the reusable staging buffer for WriteRange's
	// interleaved (address, value) log entries.
	logScratch []int64
}

// regionID resolves a task-shared region to its dense id, panicking on
// unregistered regions.
func (rt *Runtime) regionID(r *mem.Region) int {
	if r == rt.lastReg {
		return rt.lastID
	}
	if r == rt.prevReg {
		rt.lastReg, rt.prevReg = r, rt.lastReg
		rt.lastID, rt.prevID = rt.prevID, rt.lastID
		return rt.lastID
	}
	id, ok := rt.ids[r]
	if !ok {
		panic(fmt.Sprintf("task: region %q not registered as task-shared", r.Name))
	}
	rt.prevReg, rt.prevID = rt.lastReg, rt.lastID
	rt.lastReg, rt.lastID = r, id
	return id
}

type taskEntry struct {
	name string
	f    Func
}

// DefaultLogEntries is the redo-log capacity if the caller does not size it.
const DefaultLogEntries = 1024

// New creates a runtime on dev with a redo log of logEntries entries.
// The log and control state live in FRAM and count against its capacity.
func New(dev *mcu.Device, logEntries int) (*Runtime, error) {
	if logEntries <= 0 {
		logEntries = DefaultLogEntries
	}
	state, err := dev.FRAM.Alloc("task.state", stateWords, 2)
	if err != nil {
		return nil, err
	}
	log, err := dev.FRAM.Alloc("task.redolog", 2*logEntries, 4)
	if err != nil {
		dev.FRAM.Release(state)
		return nil, err
	}
	// Both regions implement the two-phase commit protocol itself; exempt
	// them from WAR checking.
	dev.MarkProtocol(state, log)
	return &Runtime{
		dev:   dev,
		state: state,
		log:   log,
		cap:   logEntries,
		ids:   make(map[*mem.Region]int),
	}, nil
}

// Release frees the runtime's FRAM footprint.
func (rt *Runtime) Release() {
	rt.dev.FRAM.Release(rt.state)
	rt.dev.FRAM.Release(rt.log)
}

// Add registers a task and returns its ID.
func (rt *Runtime) Add(name string, f Func) ID {
	rt.tasks = append(rt.tasks, taskEntry{name: name, f: f})
	return ID(len(rt.tasks) - 1)
}

// Share registers a non-volatile region as task-shared: reads and writes to
// it from task bodies go through the redo-log protocol.
func (rt *Runtime) Share(r *mem.Region) {
	if _, ok := rt.ids[r]; ok {
		return
	}
	rt.ids[r] = len(rt.shared)
	rt.shared = append(rt.shared, r)
	rt.wsSlot = append(rt.wsSlot, make([]int32, r.Len()))
	rt.wsMark = append(rt.wsMark, make([]uint32, r.Len()))
}

// clearWriteSet invalidates every write-set entry by advancing the epoch.
// On the (rare) wrap to zero the mark tables are zeroed so stale stamps
// from 2³² tasks ago cannot read as live.
func (rt *Runtime) clearWriteSet() {
	rt.wsEpoch++
	if rt.wsEpoch == 0 {
		for _, marks := range rt.wsMark {
			clear(marks)
		}
		rt.wsEpoch = 1
	}
}

// Start initializes the control state to begin execution at entry. This is
// host-side (deploy/boot-time) work.
func (rt *Runtime) Start(entry ID) {
	rt.state.Put(stPhase, phaseExec)
	rt.state.Put(stCur, int64(entry))
	rt.state.Put(stNext, 0)
	rt.state.Put(stCount, 0)
}

// Run drives the task graph to completion under the device's power system.
// It returns mcu.ErrDoesNotComplete if some task cannot finish within the
// device's energy buffer.
func (rt *Runtime) Run() error {
	return rt.dev.Run(func() {
		// Reboot path: a failure during commit must finish the commit by
		// replaying the (idempotent) redo log.
		if rt.dev.Load(rt.state, stPhase) == phaseCommit {
			rt.replayAndFinish()
		}
		// One Ctx serves every dispatch: it escapes into the task bodies,
		// so allocating it per task would otherwise dominate the steady
		// state heap traffic of a pooled fleet (thousands of dispatches
		// per inference).
		ctx := Ctx{rt: rt}
		for {
			cur := ID(rt.dev.Load(rt.state, stCur))
			if cur == Done {
				return
			}
			if int(cur) < 0 || int(cur) >= len(rt.tasks) {
				panic(fmt.Sprintf("task: invalid task id %d", cur))
			}
			// Task prologue: discard any stale log from an interrupted
			// execution and reset the volatile privatization table.
			rt.dev.Emit(mcu.TraceTaskBegin, rt.tasks[cur].name, int64(cur))
			rt.dev.Store(rt.state, stCount, 0)
			rt.clearWriteSet()
			next := rt.tasks[cur].f(&ctx)
			rt.commit(next)
		}
	})
}

// commit runs the two-phase transition: stage the target, enter commit
// phase, replay the log to the home locations, then finish.
func (rt *Runtime) commit(next ID) {
	dev := rt.dev
	layer, _ := dev.Section()
	dev.SetSection(layer, mcu.PhaseTransition)
	dev.Emit(mcu.TraceTaskCommitStage, rt.TaskName(next), int64(next))
	dev.Store(rt.state, stNext, int64(next))
	dev.Store(rt.state, stPhase, phaseCommit)
	rt.replayAndFinish()
}

// replayAndFinish applies every log entry to its home location and
// completes the transition. It is idempotent: a failure anywhere inside
// re-enters it on reboot.
func (rt *Runtime) replayAndFinish() {
	dev := rt.dev
	layer, _ := dev.Section()
	dev.SetSection(layer, mcu.PhaseTransition)
	n := int(dev.Load(rt.state, stCount))
	dev.Emit(mcu.TraceTaskCommitReplay, layer, int64(n))
	// The log is contiguous, so its reads charge as one bulk batch. The
	// home-location writes commit in maximal consecutive-address runs:
	// bulk WriteRange appends contiguous spans to the log, so most of a
	// tile's entries replay as a handful of StoreRange batches — each
	// charging exactly one store per word of the same kind the scalar
	// loop would, so the brown-out lands on the identical op. Scattered
	// leftovers fall back to the scalar store.
	dev.LoadRange(rt.log, 0, 2*n)
	lw := rt.log.ROWords()
	for j := 0; j < n; {
		addr := lw[2*j]
		region, idx := rt.decode(addr)
		run := j + 1
		for run < n && lw[2*run] == addr+int64(run-j) {
			run++
		}
		// The home writes are redo-logged: once stPhase is durably
		// phaseCommit the task body never re-reads the old values, and a
		// failure mid-replay rewrites the words from the log. Not a WAR
		// hazard even though the body read these words earlier.
		if m := run - j; m >= 4 {
			if cap(rt.logScratch) < m {
				rt.logScratch = make([]int64, m)
			}
			vals := rt.logScratch[:m]
			for t := 0; t < m; t++ {
				vals[t] = lw[2*(j+t)+1]
			}
			dev.MarkLoggedRange(region, idx, m)
			dev.StoreRange(region, idx, vals)
			j = run
			continue
		}
		for ; j < run; j++ {
			r, i := rt.decode(lw[2*j])
			dev.MarkLogged(r, i)
			dev.Store(r, i, lw[2*j+1])
		}
	}
	dev.Store(rt.state, stCur, dev.Load(rt.state, stNext))
	dev.Store(rt.state, stCount, 0)
	dev.Op(mcu.OpDispatch) // scheduler + two-phase commit bookkeeping
	dev.Store(rt.state, stPhase, phaseExec)
	dev.Progress()
}

// pack encodes a (region, index) pair as a single log address word.
func (rt *Runtime) pack(region int, idx int) int64 {
	return int64(region)<<32 | int64(idx)
}

// decode inverts pack.
func (rt *Runtime) decode(addr int64) (*mem.Region, int) {
	return rt.shared[addr>>32], int(addr & 0xffffffff)
}

// Ctx is the view a task body has of the runtime.
type Ctx struct {
	rt *Runtime
}

// Dev exposes the device for compute operations (multiplies, adds) and for
// reads of read-only data such as weights, which need no privatization.
func (c *Ctx) Dev() *mcu.Device { return c.rt.dev }

// Read reads task-shared data, observing the task's own uncommitted writes
// (read-own-write through the redo log).
func (c *Ctx) Read(r *mem.Region, i int) int64 {
	rt := c.rt
	id := rt.regionID(r)
	rt.dev.Op(mcu.OpPrivatize) // dynamic-buffering lookup
	if rt.wsMark[id][i] == rt.wsEpoch {
		return rt.dev.Load(rt.log, 2*int(rt.wsSlot[id][i])+1)
	}
	return rt.dev.Load(r, i)
}

// Write buffers a task-shared write in the redo log; the home location is
// only updated at commit.
func (c *Ctx) Write(r *mem.Region, i int, v int64) {
	rt := c.rt
	id := rt.regionID(r)
	rt.dev.Op(mcu.OpPrivatize) // dynamic-buffering insertion
	if rt.wsMark[id][i] == rt.wsEpoch {
		rt.dev.Store(rt.log, 2*int(rt.wsSlot[id][i])+1, v)
		return
	}
	n := int(rt.dev.Load(rt.state, stCount))
	if n >= rt.cap {
		panic(fmt.Sprintf("task: redo log overflow (%d entries): task writes too much task-shared data", rt.cap))
	}
	rt.dev.Emit(mcu.TracePrivatize, r.Name, int64(n))
	rt.dev.Store(rt.log, 2*n, rt.pack(id, i))
	rt.dev.Store(rt.log, 2*n+1, v)
	rt.dev.Store(rt.state, stCount, int64(n+1))
	rt.wsSlot[id][i] = int32(n)
	rt.wsMark[id][i] = rt.wsEpoch
}

// Fresh reports whether none of the words r[i:i+n] is privatized in the
// task's write set. It is a host-side predicate (no simulated cost) that
// kernels use to choose between the bulk Range forms below and the scalar
// Read/Write calls; the Range forms re-verify it before charging.
func (c *Ctx) Fresh(r *mem.Region, i, n int) bool {
	rt := c.rt
	return rt.allFresh(rt.regionID(r), i, n)
}

// allFresh reports whether no word of [i, i+n) in shared region id has a
// live write-set entry.
func (rt *Runtime) allFresh(id, i, n int) bool {
	epoch := rt.wsEpoch
	for _, m := range rt.wsMark[id][i : i+n] {
		if m == epoch {
			return false
		}
	}
	return true
}

// ReadRange is the bulk form of n consecutive Read calls of words
// r[i:i+n], legal only when none of them is privatized (every read goes to
// the home location). It charges the scalar calls' exact op multiset — n
// privatization lookups, then n home loads — segment-grouped within the
// current task, which never commits mid-range, and returns false without
// charging anything when some word is privatized so the caller can fall
// back to scalar Reads. Values are then read with r.Get, as with
// Device.LoadRange.
func (c *Ctx) ReadRange(r *mem.Region, i, n int) bool {
	rt := c.rt
	if n <= 0 {
		return true
	}
	if !rt.allFresh(rt.regionID(r), i, n) {
		return false
	}
	rt.dev.Ops(mcu.OpPrivatize, n)
	rt.dev.LoadRange(r, i, n)
	return true
}

// WriteRange is the bulk form of len(vals) consecutive Write calls to
// words r[i:i+len(vals)] none of which the task has written before: every
// word then appends a fresh redo-log entry, so the protocol traffic is
// uniform and bulk-chargeable — per word one privatization lookup, one
// log-count load, two contiguous log stores, and one log-count store,
// segment-grouped within the current task. Returns false without side
// effects when some word is already privatized (the scalar path's
// in-place log update applies then). A power failure mid-range leaves
// partial log contents that differ word-for-word from the scalar
// interleaving, but an execution-phase failure restarts the task, which
// resets the log count and write set before any of it can be read.
func (c *Ctx) WriteRange(r *mem.Region, i int, vals []int64) bool {
	rt := c.rt
	n := len(vals)
	if n == 0 {
		return true
	}
	id := rt.regionID(r)
	if !rt.allFresh(id, i, n) {
		return false
	}
	dev := rt.dev
	n0 := int(rt.state.Get(stCount))
	if n0+n > rt.cap {
		panic(fmt.Sprintf("task: redo log overflow (%d entries): task writes too much task-shared data", rt.cap))
	}
	dev.Ops(mcu.OpPrivatize, n)
	// The log-count loads and stores hit the same state word n times; the
	// state region is protocol-exempt from WAR tracking, so charging them
	// as bulk FRAM ops is observationally identical to n scalar accesses.
	dev.Ops(mcu.OpLoadFRAM, n)
	if dev.Tracer() != nil {
		for j := 0; j < n; j++ {
			dev.Emit(mcu.TracePrivatize, r.Name, int64(n0+j))
		}
	}
	if cap(rt.logScratch) < 2*n {
		rt.logScratch = make([]int64, 2*n)
	}
	entries := rt.logScratch[:2*n]
	for j := 0; j < n; j++ {
		entries[2*j] = rt.pack(id, i+j)
		entries[2*j+1] = vals[j]
	}
	dev.StoreRange(rt.log, 2*n0, entries)
	dev.Ops(mcu.OpStoreFRAM, n)
	rt.state.Put(stCount, int64(n0+n))
	epoch := rt.wsEpoch
	slots, marks := rt.wsSlot[id], rt.wsMark[id]
	for j := 0; j < n; j++ {
		slots[i+j] = int32(n0 + j)
		marks[i+j] = epoch
	}
	return true
}

// AccumulateRow is the bulk form of k successive read-modify-write pairs
// (Read then Write) on the single word r[i], as a CSR row walk performs on
// its row's partial accumulator: the first pair reads the home location and
// appends a fresh redo-log entry, each later pair reads and rewrites that
// log slot in place. It charges the scalar sequence's exact op multiset —
// 2k privatization lookups, one home load (shadow-recorded), one log
// append (log-count load, two log stores, log-count store), and k-1
// in-place log loads and stores — and installs final as the entry's value;
// the k-1 intermediate values are never materialized, which is unobservable
// because an execution-phase failure restarts the task and resets the log
// before any of them could be read. The per-pair arithmetic op (FixedAdd)
// stays with the caller, as do the operand loads. Returns false without
// side effects when r[i] is already privatized — the scalar in-place
// update applies then — so callers can fall back per pair.
func (c *Ctx) AccumulateRow(r *mem.Region, i, k int, final int64) bool {
	rt := c.rt
	if k <= 0 {
		return true
	}
	id := rt.regionID(r)
	if rt.wsMark[id][i] == rt.wsEpoch {
		return false
	}
	dev := rt.dev
	n := int(rt.state.Get(stCount))
	if n >= rt.cap {
		panic(fmt.Sprintf("task: redo log overflow (%d entries): task writes too much task-shared data", rt.cap))
	}
	dev.Ops(mcu.OpPrivatize, 2*k)
	dev.LoadRange(r, i, 1) // first pair's home read
	dev.Ops(mcu.OpLoadFRAM, 1)
	dev.Emit(mcu.TracePrivatize, r.Name, int64(n))
	if cap(rt.logScratch) < 2 {
		rt.logScratch = make([]int64, 2)
	}
	entry := rt.logScratch[:2]
	entry[0], entry[1] = rt.pack(id, i), final
	dev.StoreRange(rt.log, 2*n, entry)
	dev.Ops(mcu.OpStoreFRAM, 1)
	rt.state.Put(stCount, int64(n+1))
	// Later pairs: read and rewrite the log slot in place.
	dev.Ops(mcu.OpLoadFRAM, k-1)
	dev.Ops(mcu.OpStoreFRAM, k-1)
	rt.wsSlot[id][i] = int32(n)
	rt.wsMark[id][i] = rt.wsEpoch
	return true
}

// TaskName returns the registered name of a task (for diagnostics).
func (rt *Runtime) TaskName(id ID) string {
	if id == Done {
		return "done"
	}
	return rt.tasks[id].name
}
