package task

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/mcu"
)

// sumProgram builds a two-task program: task 0 accumulates i into a shared
// sum for `per` iterations per task invocation, then transitions to itself
// until n iterations are done; task 1 squares the sum. Returns the runtime
// and the shared region.
func sumProgram(t *testing.T, dev *mcu.Device, n, per int) (*Runtime, func() (sum, sq, i int64)) {
	t.Helper()
	rt, err := New(dev, 64)
	if err != nil {
		t.Fatal(err)
	}
	shared := dev.FRAM.MustAlloc("shared", 3, 2) // [i, sum, square]
	rt.Share(shared)

	var squareID ID
	loopID := rt.Add("loop", func(c *Ctx) ID {
		for k := 0; k < per; k++ {
			i := c.Read(shared, 0)
			if i >= int64(n) {
				return squareID
			}
			c.Write(shared, 1, c.Read(shared, 1)+i)
			c.Write(shared, 0, i+1)
		}
		return 0 // self-transition
	})
	squareID = rt.Add("square", func(c *Ctx) ID {
		s := c.Read(shared, 1)
		c.Dev().Op(mcu.OpMul)
		c.Write(shared, 2, s*s)
		return Done
	})
	_ = loopID
	return rt, func() (int64, int64, int64) {
		return shared.Get(1), shared.Get(2), shared.Get(0)
	}
}

func TestRunsToCompletionContinuous(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	rt, result := sumProgram(t, dev, 10, 4)
	rt.Start(0)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	sum, sq, _ := result()
	if sum != 45 || sq != 45*45 {
		t.Errorf("sum=%d sq=%d, want 45/2025", sum, sq)
	}
}

func TestIdenticalResultUnderFailures(t *testing.T) {
	// Sweep failure periods; every run must produce exactly the
	// continuous-power answer.
	for period := 5; period < 200; period += 7 {
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		rt, result := sumProgram(t, dev, 10, 3)
		rt.Start(0)
		err := rt.Run()
		if errors.Is(err, mcu.ErrDoesNotComplete) {
			continue // too-small budget is a legitimate outcome for tiny periods
		}
		if err != nil {
			t.Fatal(err)
		}
		sum, sq, i := result()
		if sum != 45 || sq != 2025 || i != 10 {
			t.Fatalf("period %d: sum=%d sq=%d i=%d (want 45/2025/10) after %d reboots",
				period, sum, sq, i, dev.Stats().Reboots)
		}
	}
}

// Property: for arbitrary failure schedules the committed result never
// reflects a partial task (atomicity).
func TestTaskAtomicityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		period := int(seed%150) + 20
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		rt, err := New(dev, 16)
		if err != nil {
			return false
		}
		shared := dev.FRAM.MustAlloc("pair", 2, 2)
		rt.Share(shared)
		// The task writes a pair that must always be committed together.
		rt.Add("pair", func(c *Ctx) ID {
			g := c.Read(shared, 0)
			if g >= 5 {
				return Done
			}
			c.Write(shared, 0, g+1)
			for i := 0; i < 10; i++ {
				c.Dev().Op(mcu.OpAdd)
			}
			c.Write(shared, 1, (g+1)*100)
			return 0
		})
		rt.Start(0)
		if err := rt.Run(); err != nil {
			return errors.Is(err, mcu.ErrDoesNotComplete)
		}
		// Invariant: shared[1] == shared[0]*100 exactly (no torn commit).
		return shared.Get(1) == shared.Get(0)*100 && shared.Get(0) == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReadOwnWrite(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	rt, _ := New(dev, 16)
	shared := dev.FRAM.MustAlloc("x", 1, 2)
	rt.Share(shared)
	shared.Put(0, 7)
	var sawOwnWrite bool
	rt.Add("t", func(c *Ctx) ID {
		c.Write(shared, 0, 42)
		sawOwnWrite = c.Read(shared, 0) == 42
		return Done
	})
	rt.Start(0)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawOwnWrite {
		t.Error("task must observe its own uncommitted writes")
	}
	if shared.Get(0) != 42 {
		t.Error("write not committed")
	}
}

func TestWritesInvisibleUntilCommit(t *testing.T) {
	// Fail the task after it has logged a write; the home location must
	// still hold the old value on restart.
	dev := mcu.New(energy.NewFailAfterOps(1000, 1000))
	rt, _ := New(dev, 16)
	shared := dev.FRAM.MustAlloc("x", 1, 2)
	rt.Share(shared)
	shared.Put(0, 7)
	attempt := 0
	rt.Add("t", func(c *Ctx) ID {
		attempt++
		c.Write(shared, 0, 99)
		if attempt == 1 {
			// Burn the rest of the budget to force a failure mid-task.
			for {
				c.Dev().Op(mcu.OpAdd)
			}
		}
		if c.Read(shared, 0) != 99 {
			t.Error("log lost own write")
		}
		return Done
	})
	rt.Start(0)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if attempt < 2 {
		t.Fatal("expected a retry")
	}
	if shared.Get(0) != 99 {
		t.Error("final commit missing")
	}
}

func TestWARDataSafeAcrossFailure(t *testing.T) {
	// The classic WAR hazard: task reads x then writes x. If the write hit
	// home memory before a failure, re-execution would see the new value
	// and double-apply. The redo log must prevent that.
	for period := 10; period < 120; period += 3 {
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		rt, _ := New(dev, 16)
		x := dev.FRAM.MustAlloc("x", 1, 2)
		rt.Share(x)
		x.Put(0, 1)
		rt.Add("double", func(c *Ctx) ID {
			v := c.Read(x, 0)
			// Interleave compute so failures land between read and write.
			for i := 0; i < 20; i++ {
				c.Dev().Op(mcu.OpAdd)
			}
			c.Write(x, 0, v*2)
			g := c.Read(x, 0) // generation check via self-read
			if g != v*2 {
				t.Fatal("read-own-write broken")
			}
			if v*2 >= 16 {
				return Done
			}
			return 0
		})
		rt.Start(0)
		err := rt.Run()
		if errors.Is(err, mcu.ErrDoesNotComplete) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if x.Get(0) != 16 {
			t.Fatalf("period %d: x = %d, want exactly 16 (no double-apply)", period, x.Get(0))
		}
	}
}

func TestNonTerminationDetected(t *testing.T) {
	// A task demanding more ops than the budget, self-transitioning.
	dev := mcu.New(energy.NewFailAfterOps(50, 50))
	rt, _ := New(dev, 16)
	rt.Add("hog", func(c *Ctx) ID {
		for i := 0; i < 500; i++ {
			c.Dev().Op(mcu.OpAdd)
		}
		return Done
	})
	rt.Start(0)
	if err := rt.Run(); !errors.Is(err, mcu.ErrDoesNotComplete) {
		t.Errorf("err = %v, want ErrDoesNotComplete", err)
	}
}

func TestLogOverflowPanics(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	rt, _ := New(dev, 4)
	shared := dev.FRAM.MustAlloc("arr", 16, 2)
	rt.Share(shared)
	rt.Add("big", func(c *Ctx) ID {
		for i := 0; i < 16; i++ {
			c.Write(shared, i, 1)
		}
		return Done
	})
	rt.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("log overflow should panic")
		}
	}()
	rt.Run()
}

func TestUnregisteredRegionPanics(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	rt, _ := New(dev, 4)
	r := dev.FRAM.MustAlloc("rogue", 1, 2)
	rt.Add("t", func(c *Ctx) ID {
		c.Write(r, 0, 1)
		return Done
	})
	rt.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("unregistered shared access should panic")
		}
	}()
	rt.Run()
}

func TestTransitionCostCharged(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	rt, _ := New(dev, 8)
	rt.Add("a", func(c *Ctx) ID { return 1 })
	rt.Add("b", func(c *Ctx) ID { return Done })
	rt.Start(0)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().OpCount[mcu.OpDispatch] != 2 {
		t.Errorf("transitions = %d, want 2", dev.Stats().OpCount[mcu.OpDispatch])
	}
}

func TestTaskName(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	rt, _ := New(dev, 4)
	id := rt.Add("hello", func(c *Ctx) ID { return Done })
	if rt.TaskName(id) != "hello" || rt.TaskName(Done) != "done" {
		t.Error("task names wrong")
	}
}

func TestOverwriteReusesLogSlot(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	rt, _ := New(dev, 2) // tiny log: repeated writes must reuse one slot
	shared := dev.FRAM.MustAlloc("x", 1, 2)
	rt.Share(shared)
	rt.Add("t", func(c *Ctx) ID {
		for i := 0; i < 10; i++ {
			c.Write(shared, 0, int64(i))
		}
		return Done
	})
	rt.Start(0)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if shared.Get(0) != 9 {
		t.Errorf("x = %d, want 9", shared.Get(0))
	}
}

func BenchmarkTaskTransition(b *testing.B) {
	dev := mcu.New(energy.Continuous{})
	rt, err := New(dev, 16)
	if err != nil {
		b.Fatal(err)
	}
	shared := dev.FRAM.MustAlloc("x", 1, 2)
	rt.Share(shared)
	rt.Add("bounce", func(c *Ctx) ID {
		v := c.Read(shared, 0)
		c.Write(shared, 0, v+1)
		if v >= 99 {
			return Done
		}
		return 0
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shared.Put(0, 0)
		rt.Start(0)
		if err := rt.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
