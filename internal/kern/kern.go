// Package kern holds the allocation-free fixed-point compute kernels of
// the fused fast path: bulk loops over the raw int64 word slices backing
// mem.Region storage (Region.Words), replacing per-word Get/Put calls and
// per-element fixed-point helper dispatch in the tape executors' inner
// loops.
//
// Every kernel computes exactly what the corresponding scalar loop
// computes, using the same fixed-point primitives (or their verbatim
// integer expansions — Acc.MAC is a plain int64 multiply-add), so the
// values a fused span writes are bit-identical to the scalar path's. The
// energy side of the contract lives in mcu.ChargeBlock: callers charge a
// whole number of loop iterations first, then invoke a kernel for exactly
// that many, so these functions do no accounting and never fail.
//
// Kernels take explicit [i0, i0+m) spans with pre-offset slices so the
// compiler hoists bounds checks out of the loops; none of them allocates.
package kern

import "repro/internal/fixed"

// ConvMAC applies one conv filter element to output positions [i0, i0+m):
// dst[base+j] = inter[base+j] + w·src[srcBase+off[j]], the accumulate
// form of the loop-ordered-buffering inner loop (fixed.Acc.MAC is a plain
// int64 multiply-add).
func ConvMAC(dst, inter, src []int64, base, srcBase int, off []int32, i0, m int, w int64) {
	for j := i0; j < i0+m; j++ {
		dst[base+j] = inter[base+j] + w*src[srcBase+int(off[j])]
	}
}

// ConvFirst is ConvMAC for the first element of a filter, which writes
// without reading the previous generation: dst[base+j] = w·src[...].
func ConvFirst(dst, src []int64, base, srcBase int, off []int32, i0, m int, w int64) {
	for j := i0; j < i0+m; j++ {
		dst[base+j] = w * src[srcBase+int(off[j])]
	}
}

// MACRow applies one conv filter element to a contiguous row of m output
// positions: dst[j] = acc[accOff+j] + w·src[srcOff+j] (dst is a scratch
// row indexed from zero).
func MACRow(dst, acc, src []int64, accOff, srcOff, m int, w int64) {
	for j := 0; j < m; j++ {
		dst[j] = acc[accOff+j] + w*src[srcOff+j]
	}
}

// MulRow is MACRow's first-generation form (no accumulator read):
// dst[j] = w·src[srcOff+j].
func MulRow(dst, src []int64, srcOff, m int, w int64) {
	for j := 0; j < m; j++ {
		dst[j] = w * src[srcOff+j]
	}
}

// DenseRow applies one dense input element x to a scratch row of m
// outputs: dst[j] = acc[accOff+j] + w[wOff+j·stride]·x (the strided
// column of W for this input).
func DenseRow(dst, acc, w []int64, accOff, wOff, stride, m int, x int64) {
	for j := 0; j < m; j++ {
		dst[j] = acc[accOff+j] + w[wOff+j*stride]*x
	}
}

// DenseRowFirst is DenseRow without the accumulator read (first input
// element).
func DenseRowFirst(dst, w []int64, wOff, stride, m int, x int64) {
	for j := 0; j < m; j++ {
		dst[j] = w[wOff+j*stride] * x
	}
}

// DenseMAC applies one dense input element x to outputs [o0, o0+m):
// dst[o] = inter[o] + w[o·stride+wOff]·x (the column of W for this input).
func DenseMAC(dst, inter, w []int64, stride, wOff int, o0, m int, x int64) {
	for o := o0; o < o0+m; o++ {
		dst[o] = inter[o] + w[o*stride+wOff]*x
	}
}

// DenseFirst is DenseMAC for the first input element (no previous
// generation): dst[o] = w[o·stride+wOff]·x.
func DenseFirst(dst, w []int64, stride, wOff int, o0, m int, x int64) {
	for o := o0; o < o0+m; o++ {
		dst[o] = w[o*stride+wOff] * x
	}
}

// CSRRow applies nonzeros [p0, p0+m) of one CSR row to its in-place
// accumulator: acc accumulates sequentially through the span, and the
// return values are the final accumulator and the value it held before
// the last update — the durable content of the sparse undo-log's
// canonical slot after the span.
func CSRRow(w, cols, src []int64, p0, m int, acc int64) (final, canonical int64) {
	for p := p0; p < p0+m; p++ {
		canonical = acc
		acc += w[p] * src[cols[p]]
	}
	return acc, canonical
}

// CSRSpans applies m funded nonzeros starting at position pos to their
// rows' in-place accumulators — the multi-row extension of CSRRow. Spans
// (the compiled (start, len, row) table of rows owning nonzeros) are
// consumed in order from index si; each touched row's final accumulator is
// written back to acc, exactly the per-row canonical-slot commit the
// scalar walk coalesces to. Returns the end position, the end span index,
// the last row touched (the resume cursor's row coordinate), and the
// canonical value — the accumulator before the last update, the durable
// content of the sparse undo-log's canonical slot after the run. Empty
// rows own no span and are never touched; a resume mid-row (pos inside
// span si) simply consumes the span's remainder. m must be >= 1 and the
// caller guarantees pos lies inside span si.
func CSRSpans(w, cols, src, acc []int64, spStart, spLen, spRow []int32, si, pos, m int) (endPos, endSi, lastRow int, canonical int64) {
	for m > 0 {
		row := int(spRow[si])
		end := int(spStart[si]) + int(spLen[si])
		n := end - pos
		if n > m {
			n = m
		}
		// CSRRow's loop, inlined and split: only the value before the
		// span's last update can become the canonical return, so the
		// per-iteration canonical copy is hoisted out of the MAC loop.
		a := acc[row]
		last := pos + n - 1
		for p := pos; p < last; p++ {
			a += w[p] * src[cols[p]]
		}
		canonical = a
		a += w[last] * src[cols[last]]
		acc[row] = a
		lastRow = row
		pos += n
		m -= n
		if pos == end {
			si++
		}
	}
	return pos, si, lastRow, canonical
}

// CSRRowSum returns the sum of the m products w[p]*src[cols[p]] for p in
// [p0, p0+m) — one CSR row segment's contribution without touching the
// accumulator, for executors that buffer the row partial elsewhere (the
// task runtime's redo log) instead of writing it home.
func CSRRowSum(w, cols, src []int64, p0, m int) int64 {
	var a int64
	for p := p0; p < p0+m; p++ {
		a += w[p] * src[cols[p]]
	}
	return a
}

// ReLU rectifies src[srcOff:srcOff+m] into dst[dstOff:dstOff+m].
func ReLU(dst, src []int64, dstOff, srcOff, m int) {
	for j := 0; j < m; j++ {
		dst[dstOff+j] = int64(fixed.ReLU(fixed.Q15(src[srcOff+j])))
	}
}

// MaxPool reduces one window per output element [i0, i0+m): element j's
// window starts at base[j], spans window columns of window rows, with
// rows rowStride words apart.
func MaxPool(dst, src []int64, base []int32, window, rowStride, i0, m int) {
	for j := i0; j < i0+m; j++ {
		rowStart := int(base[j])
		best := fixed.MinusOne
		for ky := 0; ky < window; ky++ {
			for kx := 0; kx < window; kx++ {
				best = fixed.Max(best, fixed.Q15(src[rowStart+kx]))
			}
			rowStart += rowStride
		}
		dst[j] = int64(best)
	}
}

// Zero clears dst[i0:i0+m].
func Zero(dst []int64, i0, m int) {
	for j := i0; j < i0+m; j++ {
		dst[j] = 0
	}
}

// FinalizeVec rescales m accumulators into activations with a
// per-element bias: dst[dstOff+j] = sat((acc[srcOff+j] + bias[srcOff+j]«15)
// » shift), the AddQ+SatShiftSigned finalize of the dense and sparse
// layers.
func FinalizeVec(dst, acc, bias []int64, dstOff, srcOff, m, shift int) {
	for j := 0; j < m; j++ {
		a := fixed.Acc(acc[srcOff+j]).AddQ(fixed.Q15(bias[srcOff+j]))
		dst[dstOff+j] = int64(a.SatShiftSigned(shift))
	}
}

// FinalizeConst is FinalizeVec with one bias for the whole span (a conv
// filter's bias). acc may be nil — a fully-pruned filter has no partials
// and produces bias only.
func FinalizeConst(dst, acc []int64, bias int64, dstOff, srcOff, m, shift int) {
	bq := fixed.Q15(bias)
	if acc == nil {
		v := int64(fixed.Acc(0).AddQ(bq).SatShiftSigned(shift))
		for j := dstOff; j < dstOff+m; j++ {
			dst[j] = v
		}
		return
	}
	for j := 0; j < m; j++ {
		dst[dstOff+j] = int64(fixed.Acc(acc[srcOff+j]).AddQ(bq).SatShiftSigned(shift))
	}
}

// Copy copies src[srcOff:srcOff+m] into dst[dstOff:dstOff+m] (the DMA
// block move).
func Copy(dst, src []int64, dstOff, srcOff, m int) {
	copy(dst[dstOff:dstOff+m], src[srcOff:srcOff+m])
}

// DotQ15 is the LEA vector MAC: the wide dot product of
// x[xOff:xOff+n] and y[yOff:yOff+n] (plain int64 multiply-adds, the
// expansion of fixed.Acc.MAC over Q15 words).
func DotQ15(x, y []int64, xOff, yOff, n int) int64 {
	var acc int64
	for i := 0; i < n; i++ {
		acc += x[xOff+i] * y[yOff+i]
	}
	return acc
}

// FIR is the LEA 1-D discrete-time convolution:
// out[i] = sat(Σ_k coef[k]·in[i+k] » 15) for i in [0, outN).
func FIR(out, in, coef []int64, outOff, inOff, coefOff, coefN, outN int) {
	for i := 0; i < outN; i++ {
		var acc fixed.Acc
		for k := 0; k < coefN; k++ {
			acc += fixed.Acc(coef[coefOff+k] * in[inOff+i+k])
		}
		out[outOff+i] = int64(acc.Sat())
	}
}

// AddSatV is the LEA vector add: dst[i] = sat(a[i]+b[i]) over n Q15
// elements.
func AddSatV(dst, a, b []int64, dstOff, aOff, bOff, n int) {
	for i := 0; i < n; i++ {
		dst[dstOff+i] = int64(fixed.Add(fixed.Q15(a[aOff+i]), fixed.Q15(b[bOff+i])))
	}
}

// ShiftRight arithmetic-right-shifts r[off:off+n] in place (the software
// pre-scale pass LEA cannot perform).
func ShiftRight(r []int64, off, n, sh int) {
	for i := off; i < off+n; i++ {
		r[i] >>= uint(sh)
	}
}
