package kern

import (
	"testing"

	"repro/internal/fixed"
)

// pcg is the repository's standard deterministic generator (PCG-XSH-RR
// flavor kept local to avoid a test-only dependency).
type pcg struct{ state uint64 }

func (p *pcg) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	x ^= x >> 33
	return x * 0xff51afd7ed558ccd
}

func (p *pcg) q15() int64 {
	return int64(int16(p.next()))
}

func q15Vec(r *pcg, n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = r.q15()
	}
	return v
}

// TestDotQ15MatchesScalarMAC pins DotQ15 to the scalar fixed.Acc.MAC
// loop it replaces.
func TestDotQ15MatchesScalarMAC(t *testing.T) {
	r := &pcg{state: 0x7a9e}
	const n = 257
	x, y := q15Vec(r, n+3), q15Vec(r, n+5)
	var want fixed.Acc
	for i := 0; i < n; i++ {
		want = want.MAC(fixed.Q15(x[3+i]), fixed.Q15(y[5+i]))
	}
	if got := fixed.Acc(DotQ15(x, y, 3, 5, n)); got != want {
		t.Fatalf("DotQ15 = %d, want %d", got, want)
	}
}

// TestCSRRowMatchesScalar pins CSRRow's accumulator and canonical-slot
// returns to the scalar sparse inner loop.
func TestCSRRowMatchesScalar(t *testing.T) {
	r := &pcg{state: 0xbeef}
	const nnz, cols = 64, 32
	w := q15Vec(r, nnz)
	src := q15Vec(r, cols)
	ci := make([]int64, nnz)
	for i := range ci {
		ci[i] = int64(r.next() % cols)
	}
	acc := int64(12345)
	wantAcc, wantCanon := acc, int64(0)
	for p := 5; p < 5+40; p++ {
		wantCanon = wantAcc
		wantAcc += w[p] * src[ci[p]]
	}
	gotAcc, gotCanon := CSRRow(w, ci, src, 5, 40, acc)
	if gotAcc != wantAcc || gotCanon != wantCanon {
		t.Fatalf("CSRRow = (%d, %d), want (%d, %d)", gotAcc, gotCanon, wantAcc, wantCanon)
	}
}

// csrFixture builds a CSR matrix with adversarial row shapes — empty
// rows, single-nonzero rows, and long rows — plus its compiled span
// tables, mirroring tape.compileSparse.
func csrFixture(r *pcg, rows, colsN int) (w, ci []int64, rowPtr []int, spStart, spLen, spRow, spanOf []int32) {
	rowPtr = make([]int, rows+1)
	for row := 0; row < rows; row++ {
		var n int
		switch row % 4 {
		case 0:
			n = 0 // empty: advanced over, never executed
		case 1:
			n = 1 // single nonzero: boundary iteration only
		default:
			n = 3 + int(r.next()%11)
		}
		rowPtr[row+1] = rowPtr[row] + n
	}
	nnz := rowPtr[rows]
	w = q15Vec(r, nnz)
	ci = make([]int64, nnz)
	for i := range ci {
		ci[i] = int64(r.next() % uint64(colsN))
	}
	spanOf = make([]int32, nnz)
	for row := 0; row < rows; row++ {
		s, e := rowPtr[row], rowPtr[row+1]
		if e <= s {
			continue
		}
		si := int32(len(spStart))
		spStart = append(spStart, int32(s))
		spLen = append(spLen, int32(e-s))
		spRow = append(spRow, int32(row))
		for p := s; p < e; p++ {
			spanOf[p] = si
		}
	}
	return
}

// TestCSRSpansMatchesPerRow pins the multi-row walk to the per-row CSRRow
// loop it fuses: for every (resume position, funded count) pair over an
// adversarial matrix, the accumulators, end cursor, last row, and
// canonical value must match running CSRRow span by span.
func TestCSRSpansMatchesPerRow(t *testing.T) {
	r := &pcg{state: 0x5ba12e}
	const rows, colsN = 23, 16
	w, ci, rowPtr, spStart, spLen, spRow, spanOf := csrFixture(r, rows, colsN)
	src := q15Vec(r, colsN)
	nnz := rowPtr[rows]

	for pos := 0; pos < nnz; pos++ {
		for m := 1; pos+m <= nnz; m++ {
			// Reference: per-row CSRRow over the same funded window, with
			// mid-span resume state (the accumulator already holds the
			// prefix of the resumed row).
			want := make([]int64, rows)
			touched := make([]bool, rows)
			wantCanon, wantRow := int64(0), -1
			p, left := pos, m
			for si := int(spanOf[pos]); left > 0; si++ {
				row := int(spRow[si])
				end := int(spStart[si]) + int(spLen[si])
				// Seed the resumed row's prefix exactly as the device
				// accumulator would hold it.
				pre, _ := CSRRow(w, ci, src, int(spStart[si]), p-int(spStart[si]), 0)
				n := end - p
				if n > left {
					n = left
				}
				final, canon := CSRRow(w, ci, src, p, n, pre)
				want[row] = final
				touched[row] = true
				wantCanon, wantRow = canon, row
				p += n
				left -= n
			}

			acc := make([]int64, rows)
			for row := 0; row < rows; row++ {
				if s, e := rowPtr[row], rowPtr[row+1]; e > s {
					prefix := pos - s
					if prefix > e-s {
						prefix = e - s
					}
					if prefix > 0 {
						acc[row], _ = CSRRow(w, ci, src, s, prefix, 0)
					}
				}
			}
			endPos, endSi, lastRow, canon := CSRSpans(w, ci, src, acc, spStart, spLen, spRow, int(spanOf[pos]), pos, m)
			if endPos != p {
				t.Fatalf("pos=%d m=%d: endPos=%d want %d", pos, m, endPos, p)
			}
			if lastRow != wantRow || canon != wantCanon {
				t.Fatalf("pos=%d m=%d: (lastRow, canon)=(%d, %d) want (%d, %d)", pos, m, lastRow, canon, wantRow, wantCanon)
			}
			if endPos < nnz {
				if want := int(spanOf[endPos]); endSi != want {
					t.Fatalf("pos=%d m=%d: endSi=%d want %d", pos, m, endSi, want)
				}
			} else if endSi != len(spStart) {
				t.Fatalf("pos=%d m=%d: endSi=%d want %d (past end)", pos, m, endSi, len(spStart))
			}
			for row := range want {
				if touched[row] && acc[row] != want[row] {
					t.Fatalf("pos=%d m=%d row=%d: acc=%d want %d", pos, m, row, acc[row], want[row])
				}
			}
		}
	}
}

// BenchmarkCSRSpansLayer is the tier-0 perf signal for the multi-row
// sparse walk: one whole-layer CSRSpans call against the per-row CSRRow
// loop it fuses, on the same 256×256 ~5% matrix as BenchmarkCSRMatvec.
func BenchmarkCSRSpansLayer(b *testing.B) {
	r := &pcg{state: 3}
	const rows, colsN = 256, 256
	w, ci, rowPtr, spStart, spLen, spRow, _ := csrFixture(r, rows, colsN)
	src := q15Vec(r, colsN)
	nnz := rowPtr[rows]
	acc := make([]int64, rows)
	b.Run("multirow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CSRSpans(w, ci, src, acc, spStart, spLen, spRow, 0, 0, nnz)
		}
	})
	b.Run("perrow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for si := range spStart {
				final, _ := CSRRow(w, ci, src, int(spStart[si]), int(spLen[si]), 0)
				acc[spRow[si]] = final
			}
		}
	})
}

// BenchmarkDotQ15 is the tier-0 perf signal for the dense inner product:
// the fused raw-word loop against the scalar fixed.Acc.MAC loop it
// replaces, at the LEA-tile vector length.
func BenchmarkDotQ15(b *testing.B) {
	r := &pcg{state: 1}
	const n = 512
	x, y := q15Vec(r, n), q15Vec(r, n)
	b.Run("fused", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += DotQ15(x, y, 0, 0, n)
		}
		_ = sink
	})
	b.Run("scalar", func(b *testing.B) {
		var sink fixed.Acc
		for i := 0; i < b.N; i++ {
			var acc fixed.Acc
			for j := 0; j < n; j++ {
				acc = acc.MAC(fixed.Q15(x[j]), fixed.Q15(y[j]))
			}
			sink += acc
		}
		_ = sink
	})
}

// BenchmarkCSRMatvec is the tier-0 perf signal for the sparse path: a
// full CSR matrix-vector product through CSRRow against the scalar
// row-walk, at the paper's ~5% density on a 256×256 layer.
func BenchmarkCSRMatvec(b *testing.B) {
	r := &pcg{state: 2}
	const rows, colsN = 256, 256
	const perRow = 13 // ~5% density
	w := q15Vec(r, rows*perRow)
	src := q15Vec(r, colsN)
	ci := make([]int64, rows*perRow)
	for i := range ci {
		ci[i] = int64(r.next() % colsN)
	}
	rowPtr := make([]int, rows+1)
	for i := range rowPtr {
		rowPtr[i] = i * perRow
	}
	out := make([]int64, rows)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for row := 0; row < rows; row++ {
				acc, _ := CSRRow(w, ci, src, rowPtr[row], perRow, 0)
				out[row] = acc
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for row := 0; row < rows; row++ {
				var acc int64
				for p := rowPtr[row]; p < rowPtr[row+1]; p++ {
					acc += w[p] * src[ci[p]]
				}
				out[row] = acc
			}
		}
	})
}
