package kern

import (
	"testing"

	"repro/internal/fixed"
)

// pcg is the repository's standard deterministic generator (PCG-XSH-RR
// flavor kept local to avoid a test-only dependency).
type pcg struct{ state uint64 }

func (p *pcg) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	x ^= x >> 33
	return x * 0xff51afd7ed558ccd
}

func (p *pcg) q15() int64 {
	return int64(int16(p.next()))
}

func q15Vec(r *pcg, n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = r.q15()
	}
	return v
}

// TestDotQ15MatchesScalarMAC pins DotQ15 to the scalar fixed.Acc.MAC
// loop it replaces.
func TestDotQ15MatchesScalarMAC(t *testing.T) {
	r := &pcg{state: 0x7a9e}
	const n = 257
	x, y := q15Vec(r, n+3), q15Vec(r, n+5)
	var want fixed.Acc
	for i := 0; i < n; i++ {
		want = want.MAC(fixed.Q15(x[3+i]), fixed.Q15(y[5+i]))
	}
	if got := fixed.Acc(DotQ15(x, y, 3, 5, n)); got != want {
		t.Fatalf("DotQ15 = %d, want %d", got, want)
	}
}

// TestCSRRowMatchesScalar pins CSRRow's accumulator and canonical-slot
// returns to the scalar sparse inner loop.
func TestCSRRowMatchesScalar(t *testing.T) {
	r := &pcg{state: 0xbeef}
	const nnz, cols = 64, 32
	w := q15Vec(r, nnz)
	src := q15Vec(r, cols)
	ci := make([]int64, nnz)
	for i := range ci {
		ci[i] = int64(r.next() % cols)
	}
	acc := int64(12345)
	wantAcc, wantCanon := acc, int64(0)
	for p := 5; p < 5+40; p++ {
		wantCanon = wantAcc
		wantAcc += w[p] * src[ci[p]]
	}
	gotAcc, gotCanon := CSRRow(w, ci, src, 5, 40, acc)
	if gotAcc != wantAcc || gotCanon != wantCanon {
		t.Fatalf("CSRRow = (%d, %d), want (%d, %d)", gotAcc, gotCanon, wantAcc, wantCanon)
	}
}

// BenchmarkDotQ15 is the tier-0 perf signal for the dense inner product:
// the fused raw-word loop against the scalar fixed.Acc.MAC loop it
// replaces, at the LEA-tile vector length.
func BenchmarkDotQ15(b *testing.B) {
	r := &pcg{state: 1}
	const n = 512
	x, y := q15Vec(r, n), q15Vec(r, n)
	b.Run("fused", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += DotQ15(x, y, 0, 0, n)
		}
		_ = sink
	})
	b.Run("scalar", func(b *testing.B) {
		var sink fixed.Acc
		for i := 0; i < b.N; i++ {
			var acc fixed.Acc
			for j := 0; j < n; j++ {
				acc = acc.MAC(fixed.Q15(x[j]), fixed.Q15(y[j]))
			}
			sink += acc
		}
		_ = sink
	})
}

// BenchmarkCSRMatvec is the tier-0 perf signal for the sparse path: a
// full CSR matrix-vector product through CSRRow against the scalar
// row-walk, at the paper's ~5% density on a 256×256 layer.
func BenchmarkCSRMatvec(b *testing.B) {
	r := &pcg{state: 2}
	const rows, colsN = 256, 256
	const perRow = 13 // ~5% density
	w := q15Vec(r, rows*perRow)
	src := q15Vec(r, colsN)
	ci := make([]int64, rows*perRow)
	for i := range ci {
		ci[i] = int64(r.next() % colsN)
	}
	rowPtr := make([]int, rows+1)
	for i := range rowPtr {
		rowPtr[i] = i * perRow
	}
	out := make([]int64, rows)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for row := 0; row < rows; row++ {
				acc, _ := CSRRow(w, ci, src, rowPtr[row], perRow, 0)
				out[row] = acc
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for row := 0; row < rows; row++ {
				var acc int64
				for p := rowPtr[row]; p < rowPtr[row+1]; p++ {
					acc += w[p] * src[ci[p]]
				}
				out[row] = acc
			}
		}
	})
}
