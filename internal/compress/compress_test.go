package compress

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dnn"
	"repro/internal/tensor"
)

// randomInput generates a deterministic random input for a network.
func randomInput(n *dnn.Network, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 0))
	x := make([]float64, n.In.Len())
	for i := range x {
		x[i] = rng.NormFloat64() * 0.3
	}
	return x
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestMagnitudeQuantile(t *testing.T) {
	vals := []float64{-4, 3, -2, 1, 0.5, -0.1, 0.05, 2.5}
	thr := magnitudeQuantile(vals, 0.5)
	kept := 0
	for _, v := range vals {
		if math.Abs(v) > thr {
			kept++
		}
	}
	if kept < 3 || kept > 5 {
		t.Errorf("quantile 0.5 kept %d of 8", kept)
	}
	if magnitudeQuantile(vals, 0) != 0 {
		t.Error("dropFrac 0 should return 0")
	}
	if magnitudeQuantile([]float64{0, 0}, 0.5) != 0 {
		t.Error("all-zero input should return 0")
	}
}

func TestPruneConvDropsRequestedFraction(t *testing.T) {
	n := dnn.HARNet(1)
	c := n.Layers[0].(*dnn.Conv)
	total := c.W.Len()
	kept, err := PruneConv(n, 0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(kept) / float64(total)
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("kept fraction %v, want ~0.2", frac)
	}
	if _, err := PruneConv(n, 1, 0.5); err == nil {
		t.Error("pruning a non-conv layer should error")
	}
}

func TestSparsifyDense(t *testing.T) {
	n := dnn.HARNet(1)
	sd, err := SparsifyDense(n, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d := sd.W.Density(); d < 0.05 || d > 0.2 {
		t.Errorf("density %v, want ~0.1", d)
	}
	if _, err := n.Validate(); err != nil {
		t.Fatalf("network invalid after sparsify: %v", err)
	}
	if _, err := SparsifyDense(n, 0, 0.5); err == nil {
		t.Error("sparsifying a conv should error")
	}
}

func TestSeparateDenseFullRankIsExact(t *testing.T) {
	n := dnn.HARNet(2)
	x := randomInput(n, 1)
	want := n.Forward(x)
	// Layer 5 is Dense(6, 64): full rank = 6.
	if err := SeparateDense(n, 5, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got := n.Forward(x)
	if d := maxDiff(got, want); d > 1e-8 {
		t.Errorf("full-rank separation changed outputs by %v", d)
	}
	// The separated pair replaces one layer with two.
	if len(n.Layers) != 7 {
		t.Errorf("layer count %d, want 7", len(n.Layers))
	}
}

func TestSeparateDenseLowRankApproximates(t *testing.T) {
	n := dnn.HARNet(2)
	x := randomInput(n, 2)
	want := n.Forward(x)
	if err := SeparateDense(n, 3, 8); err != nil { // Dense(64, 384) at rank 8
		t.Fatal(err)
	}
	if _, err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got := n.Forward(x)
	// Low rank approximates: outputs correlated but not exact.
	if d := maxDiff(got, want); d == 0 {
		t.Error("rank-8 separation should not be exact")
	}
	// Parameters must shrink: 64*384 -> 8*384 + 64*8.
	params := n.ParamCount()
	if params >= 25102 { // original HAR count
		t.Errorf("separation should reduce params, got %d", params)
	}
}

func TestSeparateConvSpatialFullRankIsExact(t *testing.T) {
	n := dnn.MNISTNet(3)
	x := randomInput(n, 3)
	want := n.Forward(x)
	// Conv1 is (8,1,5,5): unfolding is 5x40, full rank 5.
	if err := SeparateConvSpatial(n, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got := n.Forward(x)
	if d := maxDiff(got, want); d > 1e-7 {
		t.Errorf("full-rank spatial separation changed outputs by %v", d)
	}
}

func TestSeparateConvSpatialReducesMACs(t *testing.T) {
	n := dnn.MNISTNet(3)
	macsBefore := n.LayerMACs()[0]
	if err := SeparateConvSpatial(n, 0, 2); err != nil {
		t.Fatal(err)
	}
	macsAfter := n.LayerMACs()[0] + n.LayerMACs()[1]
	if macsAfter >= macsBefore {
		t.Errorf("rank-2 spatial separation should cut MACs: %d -> %d", macsBefore, macsAfter)
	}
}

func TestSeparateConvTucker2FullRankIsExact(t *testing.T) {
	n := dnn.MNISTNet(4)
	x := randomInput(n, 4)
	want := n.Forward(x)
	// Conv2 is (16,8,5,5): full Tucker-2 ranks are (16,8).
	if err := SeparateConvTucker2(n, 3, 16, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got := n.Forward(x)
	if d := maxDiff(got, want); d > 1e-6 {
		t.Errorf("full-rank Tucker-2 changed outputs by %v", d)
	}
	if len(n.Layers) != 12 {
		t.Errorf("layer count %d, want 12 (one conv became three)", len(n.Layers))
	}
}

func TestSeparateConvTucker2LowRankCompresses(t *testing.T) {
	n := dnn.MNISTNet(4)
	before := n.ParamCount()
	if err := SeparateConvTucker2(n, 3, 4, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if after := n.ParamCount(); after >= before {
		t.Errorf("Tucker-2 (4,3) should compress: %d -> %d", before, after)
	}
}

// Property: the Frobenius error of the reconstructed weight matrix
// decreases (weakly) as separation rank increases (Eckart–Young).
func TestSeparationErrorMonotoneProperty(t *testing.T) {
	base := dnn.HARNet(7)
	orig := base.Layers[3].(*dnn.Dense).W
	errAt := func(rank int) float64 {
		n := base.Clone()
		if err := SeparateDense(n, 3, rank); err != nil {
			t.Fatal(err)
		}
		first := n.Layers[3].(*dnn.Dense)
		second := n.Layers[4].(*dnn.Dense)
		eff := tensor.MatMul(second.W, first.W)
		diff := orig.Clone()
		diff.AddScaled(-1, eff)
		return diff.Norm2()
	}
	f := func(seed uint8) bool {
		r1 := 1 + int(seed)%30
		r2 := r1 + 1 + int(seed/8)%20
		return errAt(r2) <= errAt(r1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Compressed networks must remain trainable (fine-tuning path).
func TestCompressedNetworkFineTunes(t *testing.T) {
	n := dnn.HARNet(8)
	ds, _ := dnn.DatasetFor("har", 8, 240, 60)
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 2
	dnn.Train(n, ds, cfg)
	accBefore := dnn.Evaluate(n, ds.Test)

	if _, err := PruneConv(n, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := SparsifyDense(n, 3, 0.8); err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 1
	dnn.Train(n, ds, cfg)
	accAfter := dnn.Evaluate(n, ds.Test)
	if accAfter < accBefore-0.25 {
		t.Errorf("fine-tuned compressed net lost too much accuracy: %v -> %v", accBefore, accAfter)
	}
}
