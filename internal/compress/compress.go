// Package compress implements the network transformations GENESIS sweeps
// (§5.2): magnitude pruning of convolutional and fully-connected layers,
// SVD separation of fully-connected layers, and Tucker/spatial separation
// of convolutional layers. Every transformation maps a trained float
// network to a smaller network that computes (approximately) the same
// function and can be fine-tuned afterwards.
package compress

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dnn"
	"repro/internal/linalg"
	"repro/internal/tensor"
)

// PruneConv installs a magnitude-pruning mask on the conv layer at index
// li, dropping the smallest fraction of weights. It returns the retained
// count.
func PruneConv(n *dnn.Network, li int, dropFrac float64) (int, error) {
	c, ok := n.Layers[li].(*dnn.Conv)
	if !ok {
		return 0, fmt.Errorf("compress: layer %d is %s, not conv", li, n.Layers[li].Kind())
	}
	thr := magnitudeQuantile(c.W.Data(), dropFrac)
	return c.Prune(thr), nil
}

// SparsifyDense replaces the dense layer at index li with a CSR sparse
// layer, dropping the smallest fraction of weights.
func SparsifyDense(n *dnn.Network, li int, dropFrac float64) (*dnn.SparseDense, error) {
	d, ok := n.Layers[li].(*dnn.Dense)
	if !ok {
		return nil, fmt.Errorf("compress: layer %d is %s, not dense", li, n.Layers[li].Kind())
	}
	thr := magnitudeQuantile(d.W.Data(), dropFrac)
	sd := dnn.NewSparseDense(d, thr)
	n.Layers[li] = sd
	return sd, nil
}

// magnitudeQuantile returns the |value| below which dropFrac of the entries
// fall. A dropFrac of 0 returns 0 (keep everything).
func magnitudeQuantile(vals []float64, dropFrac float64) float64 {
	if dropFrac <= 0 {
		return 0
	}
	if dropFrac >= 1 {
		dropFrac = 0.999
	}
	// Histogram-based quantile: exact enough for thresholding and O(n).
	maxAbs := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	const bins = 4096
	var hist [bins]int
	for _, v := range vals {
		b := int(math.Abs(v) / maxAbs * (bins - 1))
		hist[b]++
	}
	target := int(dropFrac * float64(len(vals)))
	acc := 0
	for b := 0; b < bins; b++ {
		acc += hist[b]
		if acc >= target {
			return float64(b+1) / (bins - 1) * maxAbs
		}
	}
	return maxAbs
}

// SeparateDense replaces the dense layer at index li (out×in) with two
// dense layers (rank×in then out×rank) using truncated SVD — the
// "separation" of §5.2 for fully-connected layers. The original bias moves
// to the second factor. Rank is clamped to min(out,in).
func SeparateDense(n *dnn.Network, li, rank int) error {
	d, ok := n.Layers[li].(*dnn.Dense)
	if !ok {
		return fmt.Errorf("compress: layer %d is %s, not dense", li, n.Layers[li].Kind())
	}
	if rank < 1 {
		rank = 1
	}
	if m := min(d.Out, d.In); rank > m {
		rank = m
	}
	svd := linalg.Decompose(d.W)
	a1, a2 := svd.LowRankFactors(rank) // W ≈ a1(out,rank) * a2(rank,in)
	first := dnn.NewDense(nil2rng(), rank, d.In)
	second := dnn.NewDense(nil2rng(), d.Out, rank)
	copy(first.W.Data(), a2.Data())
	first.B.Zero()
	copy(second.W.Data(), a1.Data())
	copy(second.B.Data(), d.B.Data())
	n.Layers = append(n.Layers[:li], append([]dnn.Layer{first, second}, n.Layers[li+1:]...)...)
	return nil
}

// SeparateConvSpatial replaces the conv layer at index li — F filters of
// (C,KH,KW) — with a vertical conv (rank filters of C×KH×1) followed by a
// horizontal conv (F filters of rank×1×KW), via SVD of the (C·KH)×(F·KW)
// unfolding (Jaderberg-style spatial separation; the paper's "3×1D conv"
// for single-channel filters). Exact when rank equals the unfolding's rank.
func SeparateConvSpatial(n *dnn.Network, li, rank int) error {
	c, ok := n.Layers[li].(*dnn.Conv)
	if !ok {
		return fmt.Errorf("compress: layer %d is %s, not conv", li, n.Layers[li].Kind())
	}
	if rank < 1 {
		rank = 1
	}
	// Unfold W[f,c,kh,kw] into M[(c,kh),(f,kw)].
	m := tensor.New(c.C*c.KH, c.F*c.KW)
	for f := 0; f < c.F; f++ {
		for ci := 0; ci < c.C; ci++ {
			for kh := 0; kh < c.KH; kh++ {
				for kw := 0; kw < c.KW; kw++ {
					m.Set(c.W.At(f, ci, kh, kw), ci*c.KH+kh, f*c.KW+kw)
				}
			}
		}
	}
	if mr := min(m.Dim(0), m.Dim(1)); rank > mr {
		rank = mr
	}
	svd := linalg.Decompose(m)
	a, b := svd.LowRankFactors(rank) // M ≈ a((c,kh),r) * b(r,(f,kw))

	vert := dnn.NewConv(nil2rng(), rank, c.C, c.KH, 1)
	for r := 0; r < rank; r++ {
		for ci := 0; ci < c.C; ci++ {
			for kh := 0; kh < c.KH; kh++ {
				vert.W.Set(a.At(ci*c.KH+kh, r), r, ci, kh, 0)
			}
		}
	}
	vert.B.Zero()
	horiz := dnn.NewConv(nil2rng(), c.F, rank, 1, c.KW)
	for f := 0; f < c.F; f++ {
		for r := 0; r < rank; r++ {
			for kw := 0; kw < c.KW; kw++ {
				horiz.W.Set(b.At(r, f*c.KW+kw), f, r, 0, kw)
			}
		}
	}
	copy(horiz.B.Data(), c.B.Data())
	n.Layers = append(n.Layers[:li], append([]dnn.Layer{vert, horiz}, n.Layers[li+1:]...)...)
	return nil
}

// SeparateConvTucker2 replaces the conv layer at index li with the Tucker-2
// chain used by GENESIS on multi-channel filters: a 1×1 conv projecting C
// input channels to rankC, the (KH,KW) core conv rankC→rankF, and a 1×1
// conv expanding rankF to F (HOOI on the F and C modes, §5.2).
func SeparateConvTucker2(n *dnn.Network, li, rankF, rankC int) error {
	c, ok := n.Layers[li].(*dnn.Conv)
	if !ok {
		return fmt.Errorf("compress: layer %d is %s, not conv", li, n.Layers[li].Kind())
	}
	if rankF < 1 {
		rankF = 1
	}
	if rankC < 1 {
		rankC = 1
	}
	tk := linalg.HOOI(c.W, []int{rankF, rankC, c.KH, c.KW})
	rankF, rankC = tk.Ranks[0], tk.Ranks[1]
	uF, uC := tk.Factors[0], tk.Factors[1] // (F,rankF), (C,rankC)
	// Spatial factors are orthonormal square matrices absorbed into the
	// core so the chain has exactly three convolutions.
	core := linalg.ModeMul(linalg.ModeMul(tk.Core, tk.Factors[2], 2), tk.Factors[3], 3)

	proj := dnn.NewConv(nil2rng(), rankC, c.C, 1, 1)
	for r := 0; r < rankC; r++ {
		for ci := 0; ci < c.C; ci++ {
			proj.W.Set(uC.At(ci, r), r, ci, 0, 0)
		}
	}
	proj.B.Zero()
	mid := dnn.NewConv(nil2rng(), rankF, rankC, c.KH, c.KW)
	copy(mid.W.Data(), core.Data())
	mid.B.Zero()
	expand := dnn.NewConv(nil2rng(), c.F, rankF, 1, 1)
	for f := 0; f < c.F; f++ {
		for r := 0; r < rankF; r++ {
			expand.W.Set(uF.At(f, r), f, r, 0, 0)
		}
	}
	copy(expand.B.Data(), c.B.Data())
	n.Layers = append(n.Layers[:li],
		append([]dnn.Layer{proj, mid, expand}, n.Layers[li+1:]...)...)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// nil2rng returns a deterministic rng for layer constructors whose weights
// are immediately overwritten by the factorization.
func nil2rng() *rand.Rand { return rand.New(rand.NewPCG(0xC0, 0)) }
