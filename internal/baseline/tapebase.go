package baseline

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/kern"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/tape"
)

// tapeBaseLayer is baseLayer executing from the compiled program: the
// identical op stream, with the conv weight decode read from tables and
// every per-attempt allocation replaced by pooled scratch. Dense, sparse,
// and pooling kernels are already decode-free, so they run the shared
// interpreted bodies. Any change here must stay bit-exact with baseLayer
// (TestTapeInterpreterDifferential enforces it).
func tapeBaseLayer(dev *mcu.Device, img *core.Image, prog *tape.Program, li int,
	parity bool, sc *tape.Scratch) bool {
	l := &img.Layers[li]
	q := l.Q
	tl := &prog.Layers[li]
	src, dst := actBufs(img, parity)
	dev.SetSection(tl.Name, mcu.PhaseControl)

	switch q.Kind {
	case dnn.QConv:
		tapeBaseConv(dev, img, prog, l, tl, src, dst, sc)
	case dnn.QDense:
		baseDense(dev, l, tl.Name, src, dst)
	case dnn.QSparseDense:
		baseSparseDense(dev, l, tl.Name, src, dst)
	case dnn.QReLU:
		dev.SetSection(tl.Name, mcu.PhaseKernel)
		n := q.InShape.Len()
		dev.Ops(mcu.OpBranch, n)
		dev.LoadRange(src, 0, n)
		vals := sc.Out[:n]
		kern.ReLU(vals, src.ROWords(), 0, 0, n)
		dev.StoreRange(dst, 0, vals)
	case dnn.QPool:
		basePool(dev, q, tl.Name, src, dst)
	case dnn.QFlatten:
		return parity // identity: no copy, no parity flip
	}
	return !parity
}

// tapeBaseConv is baseConv with the per-element (kx, ky, ci, f) div/mod
// decode replaced by the program's WSrc/WAccBase tables and the zero/row/
// finalize buffers drawn from scratch instead of fresh allocations.
func tapeBaseConv(dev *mcu.Device, img *core.Image, prog *tape.Program,
	l *core.LayerImage, tl *tape.Layer, src, dst *mem.Region, sc *tape.Scratch) {
	q := l.Q
	w := q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	positions := tl.Positions
	dev.SetSection(tl.Name, mcu.PhaseKernel)

	acc := img.AccA
	n := q.F * positions
	dev.Ops(mcu.OpBranch, n)
	dev.StoreRange(acc, 0, prog.Zeros(n))
	row := sc.Row[:ow]
	// Charges stay bulk (MACRange/StoreRange); the value computation runs
	// over the raw backing words — Get has no side effects, so the hoist
	// is unconditionally equivalent.
	srcW, accW := src.ROWords(), acc.ROWords()
	apply := func(widx int) {
		wv := fixed.Q15(dev.Load(l.W, widx))
		srcRow := int(tl.WSrc[widx])
		accRow := int(tl.WAccBase[widx])
		for oy := 0; oy < oh; oy++ {
			dev.MACRange(src, srcRow, acc, accRow, ow)
			kern.MACRow(row, accW, srcW, accRow, srcRow, ow, int64(wv))
			dev.StoreRange(acc, accRow, row)
			srcRow += w
			accRow += ow
		}
	}
	if l.NZ != nil {
		for p := 0; p < l.NZ.Len(); p++ {
			dev.Op(mcu.OpBranch)
			apply(int(dev.Load(l.NZ, p)))
		}
	} else {
		for widx := 0; widx < l.W.Len(); widx++ {
			dev.Op(mcu.OpBranch)
			apply(widx)
		}
	}
	out := sc.Out[:positions]
	for f := 0; f < q.F; f++ {
		b := fixed.Q15(dev.Load(l.B, f))
		base := f * positions
		dev.Ops(mcu.OpBranch, positions)
		dev.LoadRange(acc, base, positions)
		dev.Ops(mcu.OpFixedAdd, positions)
		kern.FinalizeConst(out, accW, int64(b), 0, base, positions, q.Shift)
		dev.StoreRange(dst, base, out)
	}
}
