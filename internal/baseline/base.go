// Package baseline implements the two comparison points of the paper's
// evaluation (§8):
//
//   - Base: a standard DNN inference implementation with no intermittence
//     support. It keeps loop state in volatile registers and accumulates
//     dot products in registers, so it is fast — but after a power failure
//     it can only restart from the beginning, and on power systems whose
//     buffer is smaller than a whole inference it never completes.
//
//   - Tile-k: inference ported to the Alpaca-style task runtime
//     (package task), with each layer's inner loop split into tasks of k
//     iterations, as in the paper's Fig. 6. Task-shared data (the partial
//     accumulators and loop indices) pay redo-logging on every write and
//     commit at every transition, reproducing the overhead structure of
//     prior task-based systems.
//
// Both produce bit-identical logits to dnn.QuantModel.Forward; the
// difference is cost and whether they tolerate intermittent power.
package baseline

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/mem"
)

// Base is the unprotected straight-line implementation.
type Base struct{}

// Name identifies the runtime.
func (Base) Name() string { return "base" }

// Infer runs one inference. Under intermittent power the whole inference
// restarts from scratch on every failure; if it cannot finish within one
// charge cycle it returns mcu.ErrDoesNotComplete.
func (Base) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	dev := img.Dev
	dev.Emit(mcu.TraceRunBegin, "base", 0)
	var outB bool
	err := dev.Run(func() {
		parity := false // input in ActA
		for li := range img.Layers {
			parity = baseLayer(dev, img, li, parity)
		}
		outB = parity
	})
	if err != nil {
		return nil, err
	}
	dev.FlushTrace()
	return img.ReadOutput(outB), nil
}

// actBufs returns (src, dst) activation buffers for the given parity.
func actBufs(img *core.Image, parity bool) (*mem.Region, *mem.Region) {
	if parity {
		return img.ActB, img.ActA
	}
	return img.ActA, img.ActB
}

// baseLayer executes one layer with register-state loops, returning the new
// buffer parity.
func baseLayer(dev *mcu.Device, img *core.Image, li int, parity bool) bool {
	l := &img.Layers[li]
	q := l.Q
	src, dst := actBufs(img, parity)
	name := core.LayerName(img.Model, li)
	dev.SetSection(name, mcu.PhaseControl)

	switch q.Kind {
	case dnn.QConv:
		baseConv(dev, img, l, name, src, dst)
	case dnn.QDense:
		baseDense(dev, l, name, src, dst)
	case dnn.QSparseDense:
		baseSparseDense(dev, l, name, src, dst)
	case dnn.QReLU:
		dev.SetSection(name, mcu.PhaseKernel)
		n := q.InShape.Len()
		for i := 0; i < n; i++ {
			dev.Op(mcu.OpBranch)
			v := fixed.ReLU(fixed.Q15(dev.Load(src, i)))
			dev.Store(dst, i, int64(v))
		}
	case dnn.QPool:
		basePool(dev, q, name, src, dst)
	case dnn.QFlatten:
		return parity // identity: no copy, no parity flip
	}
	return !parity
}

// baseConv computes a (possibly pruned) convolution one output at a time,
// accumulating in a register. The weight traversal order matches the host
// reference exactly.
func baseConv(dev *mcu.Device, img *core.Image, l *core.LayerImage, name string,
	src, dst *mem.Region) {
	q := l.Q
	h, w := q.InShape[1], q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	positions := oh * ow
	dev.SetSection(name, mcu.PhaseKernel)

	// Zero the wide accumulators, then sweep filter elements, then
	// finalize. Even Base uses the filter-element-major order (it is also
	// the cache-friendly order on a machine with no cache, and keeps the
	// arithmetic identical across implementations); its advantage over
	// SONIC is purely that loop indices and partials needing no
	// protection stay in registers where possible. Partials for all
	// positions do not fit in registers, so they live in AccA like
	// everyone else's — but without double buffering or index writes.
	acc := img.AccA
	for f := 0; f < q.F; f++ {
		base := f * positions
		for i := 0; i < positions; i++ {
			dev.Op(mcu.OpBranch)
			dev.Store(acc, base+i, 0)
		}
	}
	apply := func(widx int) {
		wv := fixed.Q15(dev.Load(l.W, widx))
		kx := widx % q.KW
		ky := (widx / q.KW) % q.KH
		ci := (widx / (q.KW * q.KH)) % q.C
		f := widx / (q.KW * q.KH * q.C)
		base := f * positions
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dev.Op(mcu.OpBranch)
				x := fixed.Q15(dev.Load(src, (ci*h+oy+ky)*w+ox+kx))
				dev.Op(mcu.OpFixedMul)
				a := fixed.Acc(dev.Load(acc, base+oy*ow+ox))
				dev.Op(mcu.OpFixedAdd)
				dev.Store(acc, base+oy*ow+ox, int64(a.MAC(wv, x)))
			}
		}
	}
	if l.NZ != nil {
		for p := 0; p < l.NZ.Len(); p++ {
			dev.Op(mcu.OpBranch)
			apply(int(dev.Load(l.NZ, p)))
		}
	} else {
		for widx := 0; widx < l.W.Len(); widx++ {
			dev.Op(mcu.OpBranch)
			apply(widx)
		}
	}
	// Finalize: bias and rescale into Q15 activations.
	for f := 0; f < q.F; f++ {
		b := fixed.Q15(dev.Load(l.B, f))
		base := f * positions
		for i := 0; i < positions; i++ {
			dev.Op(mcu.OpBranch)
			a := fixed.Acc(dev.Load(acc, base+i))
			dev.Op(mcu.OpFixedAdd)
			out := a.AddQ(b).SatShiftSigned(q.Shift)
			dev.Store(dst, base+i, int64(out))
		}
	}
}

// baseDense computes a fully-connected layer one output at a time with a
// register accumulator.
func baseDense(dev *mcu.Device, l *core.LayerImage, name string, src, dst *mem.Region) {
	q := l.Q
	dev.SetSection(name, mcu.PhaseKernel)
	for o := 0; o < q.Out; o++ {
		var acc fixed.Acc
		row := o * q.In
		for i := 0; i < q.In; i++ {
			dev.Op(mcu.OpBranch)
			wv := fixed.Q15(dev.Load(l.W, row+i))
			x := fixed.Q15(dev.Load(src, i))
			dev.Op(mcu.OpFixedMul)
			dev.Op(mcu.OpFixedAdd)
			acc = acc.MAC(wv, x)
		}
		b := fixed.Q15(dev.Load(l.B, o))
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, o, int64(acc.AddQ(b).SatShiftSigned(q.Shift)))
	}
}

// baseSparseDense walks the CSR rows with a register accumulator.
func baseSparseDense(dev *mcu.Device, l *core.LayerImage, name string, src, dst *mem.Region) {
	q := l.Q
	dev.SetSection(name, mcu.PhaseKernel)
	for o := 0; o < q.Out; o++ {
		var acc fixed.Acc
		lo := int(dev.Load(l.RowPtr, o))
		hi := int(dev.Load(l.RowPtr, o+1))
		for p := lo; p < hi; p++ {
			dev.Op(mcu.OpBranch)
			wv := fixed.Q15(dev.Load(l.W, p))
			c := int(dev.Load(l.Cols, p))
			x := fixed.Q15(dev.Load(src, c))
			dev.Op(mcu.OpFixedMul)
			dev.Op(mcu.OpFixedAdd)
			acc = acc.MAC(wv, x)
		}
		b := fixed.Q15(dev.Load(l.B, o))
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, o, int64(acc.AddQ(b).SatShiftSigned(q.Shift)))
	}
}

// basePool computes max pooling.
func basePool(dev *mcu.Device, q *dnn.QuantLayer, name string, src, dst *mem.Region) {
	dev.SetSection(name, mcu.PhaseKernel)
	c, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
	oh, ow := h/q.Window, w/q.Window
	n := 0
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := fixed.MinusOne
				for ky := 0; ky < q.Window; ky++ {
					for kx := 0; kx < q.Window; kx++ {
						dev.Op(mcu.OpBranch)
						v := fixed.Q15(dev.Load(src, (ci*h+oy*q.Window+ky)*w+ox*q.Window+kx))
						best = fixed.Max(best, v)
					}
				}
				dev.Store(dst, n, int64(best))
				n++
			}
		}
	}
}
