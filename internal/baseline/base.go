// Package baseline implements the two comparison points of the paper's
// evaluation (§8):
//
//   - Base: a standard DNN inference implementation with no intermittence
//     support. It keeps loop state in volatile registers and accumulates
//     dot products in registers, so it is fast — but after a power failure
//     it can only restart from the beginning, and on power systems whose
//     buffer is smaller than a whole inference it never completes.
//
//   - Tile-k: inference ported to the Alpaca-style task runtime
//     (package task), with each layer's inner loop split into tasks of k
//     iterations, as in the paper's Fig. 6. Task-shared data (the partial
//     accumulators and loop indices) pay redo-logging on every write and
//     commit at every transition, reproducing the overhead structure of
//     prior task-based systems.
//
// Both produce bit-identical logits to dnn.QuantModel.Forward; the
// difference is cost and whether they tolerate intermittent power.
package baseline

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/tape"
)

// Base is the unprotected straight-line implementation.
type Base struct {
	// Tape selects the pre-decoded op-tape executor (internal/tape): the
	// model compiles once per process and the conv weight decode plus all
	// per-attempt allocations leave the retry path. The issued op stream
	// is bit-exact with the interpreted walk
	// (TestTapeInterpreterDifferential).
	Tape bool
}

// Name identifies the runtime.
func (Base) Name() string { return "base" }

// Infer runs one inference. Under intermittent power the whole inference
// restarts from scratch on every failure; if it cannot finish within one
// charge cycle it returns mcu.ErrDoesNotComplete.
func (b Base) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	return b.ResumeInfer(img, nil)
}

// ResumeInfer implements core.Resumer: Infer minus LoadInput, with an
// optional pre-attempt hook for restoring a forked prefix.
func (b Base) ResumeInfer(img *core.Image, atReboot func() error) ([]fixed.Q15, error) {
	dev := img.Dev
	dev.Emit(mcu.TraceRunBegin, "base", 0)
	if atReboot != nil {
		if err := atReboot(); err != nil {
			return nil, err
		}
	}
	var prog *tape.Program
	var sc *tape.Scratch
	if b.Tape {
		prog = tape.Get(img.Model)
		sc = prog.GetScratch()
		defer prog.PutScratch(sc)
	}
	var outB bool
	err := dev.Run(func() {
		parity := false // input in ActA
		if prog != nil {
			for li := range img.Layers {
				parity = tapeBaseLayer(dev, img, prog, li, parity, sc)
			}
		} else {
			for li := range img.Layers {
				parity = baseLayer(dev, img, li, parity)
			}
		}
		outB = parity
	})
	if err != nil {
		return nil, err
	}
	dev.FlushTrace()
	return img.ReadOutput(outB), nil
}

// actBufs returns (src, dst) activation buffers for the given parity.
func actBufs(img *core.Image, parity bool) (*mem.Region, *mem.Region) {
	if parity {
		return img.ActB, img.ActA
	}
	return img.ActA, img.ActB
}

// baseLayer executes one layer with register-state loops, returning the new
// buffer parity.
func baseLayer(dev *mcu.Device, img *core.Image, li int, parity bool) bool {
	l := &img.Layers[li]
	q := l.Q
	src, dst := actBufs(img, parity)
	name := core.LayerName(img.Model, li)
	dev.SetSection(name, mcu.PhaseControl)

	switch q.Kind {
	case dnn.QConv:
		baseConv(dev, img, l, name, src, dst)
	case dnn.QDense:
		baseDense(dev, l, name, src, dst)
	case dnn.QSparseDense:
		baseSparseDense(dev, l, name, src, dst)
	case dnn.QReLU:
		dev.SetSection(name, mcu.PhaseKernel)
		n := q.InShape.Len()
		dev.Ops(mcu.OpBranch, n)
		dev.LoadRange(src, 0, n)
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			vals[i] = int64(fixed.ReLU(fixed.Q15(src.Get(i))))
		}
		dev.StoreRange(dst, 0, vals)
	case dnn.QPool:
		basePool(dev, q, name, src, dst)
	case dnn.QFlatten:
		return parity // identity: no copy, no parity flip
	}
	return !parity
}

// baseConv computes a (possibly pruned) convolution one output at a time,
// accumulating in a register. The weight traversal order matches the host
// reference exactly.
func baseConv(dev *mcu.Device, img *core.Image, l *core.LayerImage, name string,
	src, dst *mem.Region) {
	q := l.Q
	h, w := q.InShape[1], q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	positions := oh * ow
	dev.SetSection(name, mcu.PhaseKernel)

	// Zero the wide accumulators, then sweep filter elements, then
	// finalize. Even Base uses the filter-element-major order (it is also
	// the cache-friendly order on a machine with no cache, and keeps the
	// arithmetic identical across implementations); its advantage over
	// SONIC is purely that loop indices and partials needing no
	// protection stay in registers where possible. Partials for all
	// positions do not fit in registers, so they live in AccA like
	// everyone else's — but without double buffering or index writes.
	acc := img.AccA
	zeros := make([]int64, q.F*positions)
	dev.Ops(mcu.OpBranch, len(zeros))
	dev.StoreRange(acc, 0, zeros)
	row := make([]int64, ow)
	apply := func(widx int) {
		wv := fixed.Q15(dev.Load(l.W, widx))
		kx := widx % q.KW
		ky := (widx / q.KW) % q.KH
		ci := (widx / (q.KW * q.KH)) % q.C
		f := widx / (q.KW * q.KH * q.C)
		base := f * positions
		for oy := 0; oy < oh; oy++ {
			srcRow := (ci*h+oy+ky)*w + kx
			accRow := base + oy*ow
			// One macro-op MAC per output row: same per-element op
			// multiset as the scalar loop, charged in bulk.
			dev.MACRange(src, srcRow, acc, accRow, ow)
			for ox := 0; ox < ow; ox++ {
				x := fixed.Q15(src.Get(srcRow + ox))
				a := fixed.Acc(acc.Get(accRow + ox))
				row[ox] = int64(a.MAC(wv, x))
			}
			dev.StoreRange(acc, accRow, row)
		}
	}
	if l.NZ != nil {
		for p := 0; p < l.NZ.Len(); p++ {
			dev.Op(mcu.OpBranch)
			apply(int(dev.Load(l.NZ, p)))
		}
	} else {
		for widx := 0; widx < l.W.Len(); widx++ {
			dev.Op(mcu.OpBranch)
			apply(widx)
		}
	}
	// Finalize: bias and rescale into Q15 activations.
	out := make([]int64, positions)
	for f := 0; f < q.F; f++ {
		b := fixed.Q15(dev.Load(l.B, f))
		base := f * positions
		dev.Ops(mcu.OpBranch, positions)
		dev.LoadRange(acc, base, positions)
		dev.Ops(mcu.OpFixedAdd, positions)
		for i := 0; i < positions; i++ {
			a := fixed.Acc(acc.Get(base + i))
			out[i] = int64(a.AddQ(b).SatShiftSigned(q.Shift))
		}
		dev.StoreRange(dst, base, out)
	}
}

// baseDense computes a fully-connected layer one output at a time with a
// register accumulator.
func baseDense(dev *mcu.Device, l *core.LayerImage, name string, src, dst *mem.Region) {
	q := l.Q
	dev.SetSection(name, mcu.PhaseKernel)
	for o := 0; o < q.Out; o++ {
		var acc fixed.Acc
		row := o * q.In
		dev.MACRange(l.W, row, src, 0, q.In)
		for i := 0; i < q.In; i++ {
			acc = acc.MAC(fixed.Q15(l.W.Get(row+i)), fixed.Q15(src.Get(i)))
		}
		b := fixed.Q15(dev.Load(l.B, o))
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, o, int64(acc.AddQ(b).SatShiftSigned(q.Shift)))
	}
}

// baseSparseDense walks the CSR rows with a register accumulator.
func baseSparseDense(dev *mcu.Device, l *core.LayerImage, name string, src, dst *mem.Region) {
	q := l.Q
	dev.SetSection(name, mcu.PhaseKernel)
	for o := 0; o < q.Out; o++ {
		var acc fixed.Acc
		lo := int(dev.Load(l.RowPtr, o))
		hi := int(dev.Load(l.RowPtr, o+1))
		cnt := hi - lo
		// Bulk-charge the uniform per-entry work; the activation loads
		// stay scalar because the CSR column gather is not contiguous.
		dev.Ops(mcu.OpBranch, cnt)
		dev.LoadRange(l.W, lo, cnt)
		dev.LoadRange(l.Cols, lo, cnt)
		dev.Ops(mcu.OpFixedMul, cnt)
		dev.Ops(mcu.OpFixedAdd, cnt)
		for p := lo; p < hi; p++ {
			wv := fixed.Q15(l.W.Get(p))
			c := int(l.Cols.Get(p))
			x := fixed.Q15(dev.Load(src, c))
			acc = acc.MAC(wv, x)
		}
		b := fixed.Q15(dev.Load(l.B, o))
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, o, int64(acc.AddQ(b).SatShiftSigned(q.Shift)))
	}
}

// basePool computes max pooling.
func basePool(dev *mcu.Device, q *dnn.QuantLayer, name string, src, dst *mem.Region) {
	dev.SetSection(name, mcu.PhaseKernel)
	c, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
	oh, ow := h/q.Window, w/q.Window
	n := 0
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := fixed.MinusOne
				dev.Ops(mcu.OpBranch, q.Window*q.Window)
				for ky := 0; ky < q.Window; ky++ {
					rowStart := (ci*h+oy*q.Window+ky)*w + ox*q.Window
					dev.LoadRange(src, rowStart, q.Window)
					for kx := 0; kx < q.Window; kx++ {
						best = fixed.Max(best, fixed.Q15(src.Get(rowStart+kx)))
					}
				}
				dev.Store(dst, n, int64(best))
				n++
			}
		}
	}
}
