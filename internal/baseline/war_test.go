package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/intermittest"
)

// TestTileWARSilent sweeps every brown-out placement over the tiled
// runtimes with the WAR shadow tracker armed: the Alpaca-style redo log
// must keep every commit region free of unlogged read-then-write hazards,
// and every schedule must reproduce the continuous-power logits.
func TestTileWARSilent(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	for _, ts := range []int{8, 32} {
		rep, err := intermittest.SweepRuntime(qm, x, baseline.Tile{TileSize: ts},
			intermittest.Options{CheckWAR: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Errorf("%s not intermittence-safe: %s", rep.Runtime, rep.Summary())
		}
		if rep.GoldenWAR != 0 {
			t.Errorf("%s golden run has WAR hazards: %v", rep.Runtime, rep.GoldenWAR)
		}
	}
}

// TestBaseWARFlagged is a negative control: the unprotected baseline does
// in-place NV updates with no logging, so the WAR detector must fire even
// on continuous power, and brown-outs must corrupt its logits.
func TestBaseWARFlagged(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	rep, err := intermittest.SweepRuntime(qm, x, baseline.Base{},
		intermittest.Options{CheckWAR: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoldenWAR == 0 {
		t.Error("WAR detector silent on the unprotected baseline")
	}
	if len(rep.Mismatches) == 0 {
		t.Error("brown-out sweep found no logit corruption in the unprotected baseline")
	}
}
