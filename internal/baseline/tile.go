package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/task"
)

// Tile is DNN inference ported onto the Alpaca-style task runtime with a
// fixed tiling: each task executes TileSize loop iterations, then
// transitions (committing its redo log). The paper evaluates Tile-8,
// Tile-32, and Tile-128.
//
// Iteration granularity mirrors SONIC's loop structure (Fig. 6/7): a
// convolution iteration applies one filter element across all output
// positions; a dense fully-connected iteration applies one input element
// across all outputs; a sparse fully-connected iteration applies one
// nonzero weight; activation and pooling iterations produce one output
// element. All partial accumulators are task-shared, so every update pays
// redo-logging — the cost SONIC eliminates.
type Tile struct {
	TileSize int
	// LogEntries sizes the runtime redo log (default DefaultLogEntries).
	LogEntries int
}

// DefaultLogEntries is sized for the largest per-task write set: a tile of
// per-MAC iterations writes at most TileSize distinct partials plus the
// loop cursor.
const DefaultLogEntries = 512

// Name identifies the runtime, e.g. "tile-32".
func (t Tile) Name() string { return fmt.Sprintf("tile-%d", t.TileSize) }

// ctl-slot index within the image control block used for the pass cursor.
const tileCursorSlot = 0

// Infer builds the task graph over the deployed image and drives it to
// completion.
func (t Tile) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if t.TileSize <= 0 {
		return nil, fmt.Errorf("baseline: invalid tile size %d", t.TileSize)
	}
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	logEntries := t.LogEntries
	if logEntries == 0 {
		logEntries = DefaultLogEntries
	}
	rt, err := task.New(img.Dev, logEntries)
	if err != nil {
		return nil, fmt.Errorf("baseline: allocating task runtime: %w", err)
	}
	defer rt.Release()

	for _, r := range []*mem.Region{img.ActA, img.ActB, img.AccA, img.AccB, img.Ctl} {
		if r != nil {
			rt.Share(r)
		}
	}

	b := tileBuilder{img: img, rt: rt, k: t.TileSize}
	outB, err := b.build()
	if err != nil {
		return nil, err
	}
	img.Dev.Emit(mcu.TraceRunBegin, t.Name(), int64(t.TileSize))
	rt.Start(0)
	if err := rt.Run(); err != nil {
		return nil, err
	}
	img.Dev.FlushTrace()
	return img.ReadOutput(outB), nil
}

// passFn executes one loop iteration of a pass.
type passFn func(c *task.Ctx, iter int)

// addPassFn registers a pass: name, layer label, iteration count, body.
type addPassFn func(name, layer string, n int, f passFn)

// tileBuilder assembles the per-layer pass tasks. Because the layer graph
// is static, each task closes over its source/destination buffers; only
// loop cursors live in task-shared memory.
type tileBuilder struct {
	img *core.Image
	rt  *task.Runtime
	k   int
}

// build creates all tasks in execution order; task 0 is the entry. It
// returns the parity of the buffer holding the final output.
func (b *tileBuilder) build() (bool, error) {
	parity := false
	var passes []struct {
		name  string
		layer string
		n     int
		f     passFn
	}
	addPass := func(name, layer string, n int, f passFn) {
		passes = append(passes, struct {
			name  string
			layer string
			n     int
			f     passFn
		}{name, layer, n, f})
	}

	for li := range b.img.Layers {
		l := &b.img.Layers[li]
		q := l.Q
		src, dst := actBufs(b.img, parity)
		layer := core.LayerName(b.img.Model, li)
		switch q.Kind {
		case dnn.QConv:
			b.convPasses(addPass, l, layer, src, dst)
			parity = !parity
		case dnn.QDense:
			b.densePasses(addPass, l, layer, src, dst)
			parity = !parity
		case dnn.QSparseDense:
			b.sparsePasses(addPass, l, layer, src, dst)
			parity = !parity
		case dnn.QReLU:
			n := q.InShape.Len()
			addPass("relu", layer, n, func(c *task.Ctx, i int) {
				dev := c.Dev()
				dev.Op(mcu.OpBranch)
				v := fixed.ReLU(fixed.Q15(c.Read(src, i)))
				c.Write(dst, i, int64(v))
			})
			parity = !parity
		case dnn.QPool:
			b.poolPass(addPass, q, layer, src, dst)
			parity = !parity
		case dnn.QFlatten:
			// identity
		}
	}

	// Materialize each pass as one self-transitioning task over a shared
	// cursor in the control block.
	ctl := b.img.Ctl
	for pi := range passes {
		p := passes[pi]
		next := task.ID(pi + 1)
		if pi == len(passes)-1 {
			next = task.Done
		}
		self := task.ID(pi)
		b.rt.Add(p.name, func(c *task.Ctx) task.ID {
			dev := c.Dev()
			dev.SetSection(p.layer, mcu.PhaseControl)
			base := int(c.Read(ctl, tileCursorSlot))
			dev.SetSection(p.layer, mcu.PhaseKernel)
			end := base + b.k
			if end > p.n {
				end = p.n
			}
			for i := base; i < end; i++ {
				p.f(c, i)
			}
			dev.SetSection(p.layer, mcu.PhaseControl)
			if end >= p.n {
				c.Write(ctl, tileCursorSlot, 0) // reset for next pass
				return next
			}
			c.Write(ctl, tileCursorSlot, int64(end))
			return self
		})
	}
	return parity, nil
}

// convPasses emits the zero-init (sparse only), accumulate, and finalize
// passes for a convolution. An accumulate iteration is one multiply-
// accumulate — "a[i] += b[i] × c" exactly as in the paper's Fig. 6 — on
// the task-shared partial buffer, so every iteration pays privatization.
func (b *tileBuilder) convPasses(addPass addPassFn,
	l *core.LayerImage, layer string, src, dst *mem.Region) {
	q := l.Q
	h, w := q.InShape[1], q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	positions := oh * ow
	acc := b.img.AccA
	elemsPerFilter := q.C * q.KH * q.KW
	elems := l.W.Len()
	if l.NZ != nil {
		elems = l.NZ.Len()
	}

	// apply performs one MAC: filter element `e` at output position `i`.
	apply := func(c *task.Ctx, e, i int) {
		dev := c.Dev()
		widx := e
		first := false
		if l.NZ != nil {
			widx = int(dev.Load(l.NZ, e))
		} else {
			first = widx%elemsPerFilter == 0
		}
		wv := fixed.Q15(dev.Load(l.W, widx))
		kx := widx % q.KW
		ky := (widx / q.KW) % q.KH
		ci := (widx / (q.KW * q.KH)) % q.C
		f := widx / elemsPerFilter
		oy, ox := i/ow, i%ow
		x := fixed.Q15(dev.Load(src, (ci*h+oy+ky)*w+ox+kx))
		dev.Op(mcu.OpFixedMul)
		pos := f*positions + i
		var a fixed.Acc
		if !first {
			a = fixed.Acc(c.Read(acc, pos))
			dev.Op(mcu.OpFixedAdd)
		}
		c.Write(acc, pos, int64(a.MAC(wv, x)))
	}

	if l.NZ != nil {
		total := q.F * positions
		addPass("conv-zero", layer, total, func(c *task.Ctx, i int) {
			c.Dev().Op(mcu.OpBranch)
			c.Write(acc, i, 0)
		})
	}
	addPass("conv-acc", layer, elems*positions, func(c *task.Ctx, it int) {
		c.Dev().Op(mcu.OpBranch)
		apply(c, it/positions, it%positions)
	})
	addPass("conv-fin", layer, q.F*positions, func(c *task.Ctx, i int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		f := i / positions
		bq := fixed.Q15(dev.Load(l.B, f))
		a := fixed.Acc(c.Read(acc, i))
		dev.Op(mcu.OpFixedAdd)
		c.Write(dst, i, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	})
}

// densePasses emits the accumulate and finalize passes for a dense
// fully-connected layer; one iteration is one MAC on the task-shared
// partial of output o by input element i.
func (b *tileBuilder) densePasses(addPass addPassFn,
	l *core.LayerImage, layer string, src, dst *mem.Region) {
	q := l.Q
	acc := b.img.AccA
	addPass("fc-acc", layer, q.In*q.Out, func(c *task.Ctx, it int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		i, o := it/q.Out, it%q.Out
		x := fixed.Q15(dev.Load(src, i))
		wv := fixed.Q15(dev.Load(l.W, o*q.In+i))
		dev.Op(mcu.OpFixedMul)
		var a fixed.Acc
		if i > 0 {
			a = fixed.Acc(c.Read(acc, o))
			dev.Op(mcu.OpFixedAdd)
		}
		c.Write(acc, o, int64(a.MAC(wv, x)))
	})
	addPass("fc-fin", layer, q.Out, func(c *task.Ctx, o int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		bq := fixed.Q15(dev.Load(l.B, o))
		a := fixed.Acc(c.Read(acc, o))
		dev.Op(mcu.OpFixedAdd)
		c.Write(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	})
}

// sparsePasses emits zero-init, per-nonzero accumulate, and finalize passes
// for a sparse fully-connected layer. Each nonzero update reads and writes
// its row's partial — the WAR pattern that forces redo-logging here and
// that SONIC's sparse undo-logging replaces.
func (b *tileBuilder) sparsePasses(addPass addPassFn,
	l *core.LayerImage, layer string, src, dst *mem.Region) {
	q := l.Q
	acc := b.img.AccA
	addPass("spfc-zero", layer, q.Out, func(c *task.Ctx, o int) {
		c.Dev().Op(mcu.OpBranch)
		c.Write(acc, o, 0)
	})
	// Row lookup per nonzero: the device walks RowPtr lazily by keeping a
	// "current row" volatile variable... but volatile state cannot span
	// tasks, so each iteration binary-searches RowPtr. This is what a real
	// port pays for splitting a CSR walk across tasks.
	addPass("spfc-acc", layer, len(q.W), func(c *task.Ctx, p int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		row := sparseRowOf(dev, l, p, q.Out)
		wv := fixed.Q15(dev.Load(l.W, p))
		col := int(dev.Load(l.Cols, p))
		x := fixed.Q15(dev.Load(src, col))
		dev.Op(mcu.OpFixedMul)
		a := fixed.Acc(c.Read(acc, row))
		dev.Op(mcu.OpFixedAdd)
		c.Write(acc, row, int64(a.MAC(wv, x)))
	})
	addPass("spfc-fin", layer, q.Out, func(c *task.Ctx, o int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		bq := fixed.Q15(dev.Load(l.B, o))
		a := fixed.Acc(c.Read(acc, o))
		dev.Op(mcu.OpFixedAdd)
		c.Write(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	})
}

// sparseRowOf binary-searches RowPtr for the row containing nonzero p.
func sparseRowOf(dev *mcu.Device, l *core.LayerImage, p, rows int) int {
	lo, hi := 0, rows // invariant: RowPtr[lo] <= p < RowPtr[hi]
	for lo+1 < hi {
		dev.Op(mcu.OpBranch)
		mid := (lo + hi) / 2
		if dev.Load(l.RowPtr, mid) <= int64(p) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// poolPass emits the pooling pass: one output element per iteration.
func (b *tileBuilder) poolPass(addPass addPassFn,
	q *dnn.QuantLayer, layer string, src, dst *mem.Region) {
	c0, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
	oh, ow := h/q.Window, w/q.Window
	addPass("pool", layer, c0*oh*ow, func(c *task.Ctx, i int) {
		dev := c.Dev()
		ox := i % ow
		oy := (i / ow) % oh
		ci := i / (ow * oh)
		best := fixed.MinusOne
		for ky := 0; ky < q.Window; ky++ {
			for kx := 0; kx < q.Window; kx++ {
				dev.Op(mcu.OpBranch)
				v := fixed.Q15(dev.Load(src, (ci*h+oy*q.Window+ky)*w+ox*q.Window+kx))
				best = fixed.Max(best, v)
			}
		}
		c.Write(dst, i, int64(best))
	})
}
