package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/kern"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/tape"
	"repro/internal/task"
)

// Tile is DNN inference ported onto the Alpaca-style task runtime with a
// fixed tiling: each task executes TileSize loop iterations, then
// transitions (committing its redo log). The paper evaluates Tile-8,
// Tile-32, and Tile-128.
//
// Iteration granularity mirrors SONIC's loop structure (Fig. 6/7): a
// convolution iteration applies one filter element across all output
// positions; a dense fully-connected iteration applies one input element
// across all outputs; a sparse fully-connected iteration applies one
// nonzero weight; activation and pooling iterations produce one output
// element. All partial accumulators are task-shared, so every update pays
// redo-logging — the cost SONIC eliminates.
type Tile struct {
	TileSize int
	// LogEntries sizes the runtime redo log (default DefaultLogEntries).
	LogEntries int
	// Tape sources the conv/pool decode memos from the model's compiled
	// program (internal/tape) instead of rebuilding them on every
	// inference. Bit-exact with the interpreted build
	// (TestTapeInterpreterDifferential).
	Tape bool
}

// DefaultLogEntries is sized for the largest per-task write set: a tile of
// per-MAC iterations writes at most TileSize distinct partials plus the
// loop cursor.
const DefaultLogEntries = 512

// Name identifies the runtime, e.g. "tile-32".
func (t Tile) Name() string { return fmt.Sprintf("tile-%d", t.TileSize) }

// ctl-slot index within the image control block used for the pass cursor.
const tileCursorSlot = 0

// minBulk is the chunk size below which a rangeFn falls back to the scalar
// pass body: tiny chunks don't amortize the Range machinery.
const minBulk = 4

// loadKind returns the load op kind for a region's memory (the tile
// rangeFns charge repeated or strided loads of read-only data in bulk).
func loadKind(r *mem.Region) mcu.OpKind {
	if r.Kind() == mem.FRAM {
		return mcu.OpLoadFRAM
	}
	return mcu.OpLoadSRAM
}

// Infer builds the task graph over the deployed image and drives it to
// completion.
func (t Tile) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	return t.ResumeInfer(img, nil)
}

// ResumeInfer implements core.Resumer: the full task-graph setup (runtime
// allocation, sharing, building, Start) runs first, then atReboot — whose
// prefix restore overwrites the setup's nonvolatile state — then the run.
func (t Tile) ResumeInfer(img *core.Image, atReboot func() error) ([]fixed.Q15, error) {
	if t.TileSize <= 0 {
		return nil, fmt.Errorf("baseline: invalid tile size %d", t.TileSize)
	}
	logEntries := t.LogEntries
	if logEntries == 0 {
		logEntries = DefaultLogEntries
	}
	rt, err := task.New(img.Dev, logEntries)
	if err != nil {
		return nil, fmt.Errorf("baseline: allocating task runtime: %w", err)
	}
	defer rt.Release()

	for _, r := range []*mem.Region{img.ActA, img.ActB, img.AccA, img.AccB, img.Ctl} {
		if r != nil {
			rt.Share(r)
		}
	}

	b := tileBuilder{img: img, rt: rt, k: t.TileSize}
	if t.Tape {
		b.prog = tape.Get(img.Model)
	}
	outB, err := b.build()
	if err != nil {
		return nil, err
	}
	img.Dev.Emit(mcu.TraceRunBegin, t.Name(), int64(t.TileSize))
	rt.Start(0)
	if atReboot != nil {
		if err := atReboot(); err != nil {
			return nil, err
		}
	}
	if err := rt.Run(); err != nil {
		return nil, err
	}
	img.Dev.FlushTrace()
	return img.ReadOutput(outB), nil
}

// passFn executes one loop iteration of a pass.
type passFn func(c *task.Ctx, iter int)

// rangeFn executes iterations [lo, hi) of a pass in one call. Providers
// bulk-charge uniform chunks through the device's Range macro-ops and the
// task runtime's ReadRange/WriteRange, falling back to the scalar passFn
// body per iteration where bulking is illegal (privatized words, scattered
// accesses). The charged op multiset per iteration is identical to the
// scalar body's.
type rangeFn func(c *task.Ctx, lo, hi int)

// addPassFn registers a pass: name, layer label, iteration count, scalar
// body, and optional bulk range body (nil for scalar-only passes).
type addPassFn func(name, layer string, n int, f passFn, fr rangeFn)

// tileBuilder assembles the per-layer pass tasks. Because the layer graph
// is static, each task closes over its source/destination buffers; only
// loop cursors live in task-shared memory.
type tileBuilder struct {
	img *core.Image
	rt  *task.Runtime
	k   int
	// prog, when set, supplies the pre-decoded per-layer tables so the
	// builder skips its per-inference decode-memo construction.
	prog *tape.Program
}

// layerTape returns layer li's compiled tables, or nil without a program.
func (b *tileBuilder) layerTape(li int) *tape.Layer {
	if b.prog == nil {
		return nil
	}
	return &b.prog.Layers[li]
}

// build creates all tasks in execution order; task 0 is the entry. It
// returns the parity of the buffer holding the final output.
func (b *tileBuilder) build() (bool, error) {
	parity := false
	var passes []struct {
		name  string
		layer string
		n     int
		f     passFn
		fr    rangeFn
	}
	addPass := func(name, layer string, n int, f passFn, fr rangeFn) {
		passes = append(passes, struct {
			name  string
			layer string
			n     int
			f     passFn
			fr    rangeFn
		}{name, layer, n, f, fr})
	}

	for li := range b.img.Layers {
		l := &b.img.Layers[li]
		q := l.Q
		src, dst := actBufs(b.img, parity)
		layer := core.LayerName(b.img.Model, li)
		switch q.Kind {
		case dnn.QConv:
			b.convPasses(addPass, l, li, layer, src, dst)
			parity = !parity
		case dnn.QDense:
			b.densePasses(addPass, l, layer, src, dst)
			parity = !parity
		case dnn.QSparseDense:
			b.sparsePasses(addPass, l, li, layer, src, dst)
			parity = !parity
		case dnn.QReLU:
			n := q.InShape.Len()
			reluIter := func(c *task.Ctx, i int) {
				dev := c.Dev()
				dev.Op(mcu.OpBranch)
				v := fixed.ReLU(fixed.Q15(c.Read(src, i)))
				c.Write(dst, i, int64(v))
			}
			vals := make([]int64, b.k)
			addPass("relu", layer, n, reluIter, func(c *task.Ctx, lo, hi int) {
				nn := hi - lo
				if nn < minBulk || !c.Fresh(src, lo, nn) || !c.Fresh(dst, lo, nn) {
					for i := lo; i < hi; i++ {
						reluIter(c, i)
					}
					return
				}
				c.Dev().Ops(mcu.OpBranch, nn)
				c.ReadRange(src, lo, nn)
				kern.ReLU(vals, src.ROWords(), 0, lo, nn)
				c.WriteRange(dst, lo, vals[:nn])
			})
			parity = !parity
		case dnn.QPool:
			b.poolPass(addPass, q, li, layer, src, dst)
			parity = !parity
		case dnn.QFlatten:
			// identity
		}
	}

	// Materialize each pass as one self-transitioning task over a shared
	// cursor in the control block. The tape build pre-resolves each pass's
	// two attribution sections into tokens — same accounting, no
	// per-activation Section construction; the interpreted build keeps the
	// string path as the independent reference.
	ctl := b.img.Ctl
	for pi := range passes {
		p := passes[pi]
		next := task.ID(pi + 1)
		if pi == len(passes)-1 {
			next = task.Done
		}
		self := task.ID(pi)
		body := func(c *task.Ctx, base int) (int, task.ID) {
			end := base + b.k
			if end > p.n {
				end = p.n
			}
			if p.fr != nil {
				p.fr(c, base, end)
			} else {
				for i := base; i < end; i++ {
					p.f(c, i)
				}
			}
			if end >= p.n {
				return end, next
			}
			return end, self
		}
		if b.prog != nil {
			tokC := b.img.Dev.SectionToken(p.layer, mcu.PhaseControl)
			tokK := b.img.Dev.SectionToken(p.layer, mcu.PhaseKernel)
			b.rt.Add(p.name, func(c *task.Ctx) task.ID {
				dev := c.Dev()
				dev.SetSectionTok(tokC)
				base := int(c.Read(ctl, tileCursorSlot))
				dev.SetSectionTok(tokK)
				end, to := body(c, base)
				dev.SetSectionTok(tokC)
				if to != self {
					c.Write(ctl, tileCursorSlot, 0) // reset for next pass
				} else {
					c.Write(ctl, tileCursorSlot, int64(end))
				}
				return to
			})
			continue
		}
		b.rt.Add(p.name, func(c *task.Ctx) task.ID {
			dev := c.Dev()
			dev.SetSection(p.layer, mcu.PhaseControl)
			base := int(c.Read(ctl, tileCursorSlot))
			dev.SetSection(p.layer, mcu.PhaseKernel)
			end, to := body(c, base)
			dev.SetSection(p.layer, mcu.PhaseControl)
			if to != self {
				c.Write(ctl, tileCursorSlot, 0) // reset for next pass
			} else {
				c.Write(ctl, tileCursorSlot, int64(end))
			}
			return to
		})
	}
	return parity, nil
}

// convPasses emits the zero-init (sparse only), accumulate, and finalize
// passes for a convolution. An accumulate iteration is one multiply-
// accumulate — "a[i] += b[i] × c" exactly as in the paper's Fig. 6 — on
// the task-shared partial buffer, so every iteration pays privatization.
func (b *tileBuilder) convPasses(addPass addPassFn,
	l *core.LayerImage, li int, layer string, src, dst *mem.Region) {
	q := l.Q
	h, w := q.InShape[1], q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	positions := oh * ow
	acc := b.img.AccA
	elemsPerFilter := q.C * q.KH * q.KW
	elems := l.W.Len()
	if l.NZ != nil {
		elems = l.NZ.Len()
	}

	// Host-side decode memos: per weight index the unpacked filter
	// coordinates folded into base offsets, per output position its
	// row-major input offset. They replace the div/mod chains the kernel
	// closure would otherwise recompute on every MAC; the simulated op
	// stream is unchanged. With a compiled program the tables come
	// pre-built (the same formulas, computed once per process); otherwise
	// they are rebuilt here on every inference.
	var wSrc, wAcc []int32
	var wFirst []bool // dense layout only: indexed by widx == walked pos
	var posTab []int32
	if tl := b.layerTape(li); tl != nil {
		wSrc, wAcc, wFirst, posTab = tl.WSrc, tl.WAccBase, tl.First, tl.PosOff
	} else {
		wSrc = make([]int32, l.W.Len())
		wAcc = make([]int32, l.W.Len())
		wFirst = make([]bool, l.W.Len())
		for widx := range wSrc {
			kx := widx % q.KW
			ky := (widx / q.KW) % q.KH
			ci := (widx / (q.KW * q.KH)) % q.C
			f := widx / elemsPerFilter
			wSrc[widx] = int32((ci*h+ky)*w + kx)
			wAcc[widx] = int32(f * positions)
			wFirst[widx] = widx%elemsPerFilter == 0
		}
		posTab = make([]int32, positions)
		for i := range posTab {
			posTab[i] = int32((i/ow)*w + i%ow)
		}
	}

	// apply performs one MAC: filter element `e` at output position `i`.
	apply := func(c *task.Ctx, e, i int) {
		dev := c.Dev()
		widx := e
		if l.NZ != nil {
			widx = int(dev.Load(l.NZ, e))
		}
		first := l.NZ == nil && wFirst[widx]
		wv := fixed.Q15(dev.Load(l.W, widx))
		x := fixed.Q15(dev.Load(src, int(wSrc[widx])+int(posTab[i])))
		dev.Op(mcu.OpFixedMul)
		pos := int(wAcc[widx]) + i
		var a fixed.Acc
		if !first {
			a = fixed.Acc(c.Read(acc, pos))
			dev.Op(mcu.OpFixedAdd)
		}
		c.Write(acc, pos, int64(a.MAC(wv, x)))
	}

	if l.NZ != nil {
		total := q.F * positions
		zeroIter := func(c *task.Ctx, i int) {
			c.Dev().Op(mcu.OpBranch)
			c.Write(acc, i, 0)
		}
		zeros := make([]int64, b.k)
		addPass("conv-zero", layer, total, zeroIter, func(c *task.Ctx, lo, hi int) {
			n := hi - lo
			if n < minBulk || !c.Fresh(acc, lo, n) {
				for i := lo; i < hi; i++ {
					zeroIter(c, i)
				}
				return
			}
			c.Dev().Ops(mcu.OpBranch, n)
			c.WriteRange(acc, lo, zeros[:n])
		})
	}

	// accIter is the scalar conv-acc body; accRange (dense weights only)
	// is its bulk form, chunked by filter element and output row so every
	// charged range is uniform in op kinds and contiguous in memory.
	accIter := func(c *task.Ctx, it int) {
		c.Dev().Op(mcu.OpBranch)
		apply(c, it/positions, it%positions)
	}
	var accRange rangeFn
	if l.NZ == nil {
		vals := make([]int64, b.k)
		wKind := loadKind(l.W)
		accRange = func(c *task.Ctx, lo, hi int) {
			dev := c.Dev()
			for lo < hi {
				e, i0 := lo/positions, lo%positions
				n := hi - lo
				if m := positions - i0; m < n {
					n = m // one filter element
				}
				if m := ow - i0%ow; m < n {
					n = m // one output row: contiguous source loads
				}
				first := wFirst[e]
				pos0 := int(wAcc[e]) + i0
				// For accumulating chunks the privatization probe and the
				// accumulator-generation read are one ReadRange call, so the
				// write-set epoch table is scanned once as the gate instead
				// of a Fresh scan followed by a second ReadRange scan. The
				// chunk's charge order is a bulk regrouping either way, and
				// interp and tape both execute this same body, so brown-outs
				// land identically on both executors.
				bulk := n >= minBulk
				if bulk && first {
					bulk = c.Fresh(acc, pos0, n)
				} else if bulk {
					bulk = c.ReadRange(acc, pos0, n)
				}
				if !bulk {
					for j := 0; j < n; j++ {
						accIter(c, lo+j)
					}
					lo += n
					continue
				}
				dev.Ops(mcu.OpBranch, n)
				// n loads of the same read-only weight word, bulk-charged;
				// per-word shadow records only matter for words that are
				// later written, which deployed weights never are.
				dev.Ops(wKind, n)
				wv := fixed.Q15(l.W.Get(e))
				srcStart := int(wSrc[e]) + int(posTab[i0])
				dev.LoadRange(src, srcStart, n)
				dev.Ops(mcu.OpFixedMul, n)
				if !first {
					dev.Ops(mcu.OpFixedAdd, n)
					kern.MACRow(vals, acc.ROWords(), src.ROWords(), pos0, srcStart, n, int64(wv))
				} else {
					kern.MulRow(vals, src.ROWords(), srcStart, n, int64(wv))
				}
				c.WriteRange(acc, pos0, vals[:n])
				lo += n
			}
		}
	}
	addPass("conv-acc", layer, elems*positions, accIter, accRange)

	finIter := func(c *task.Ctx, i int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		f := i / positions
		bq := fixed.Q15(dev.Load(l.B, f))
		a := fixed.Acc(c.Read(acc, i))
		dev.Op(mcu.OpFixedAdd)
		c.Write(dst, i, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	}
	finVals := make([]int64, b.k)
	bKind := loadKind(l.B)
	addPass("conv-fin", layer, q.F*positions, finIter, func(c *task.Ctx, lo, hi int) {
		dev := c.Dev()
		for lo < hi {
			f := lo / positions
			n := hi - lo
			if m := positions - lo%positions; m < n {
				n = m // one filter: a single bias word
			}
			if n < minBulk || !c.Fresh(acc, lo, n) || !c.Fresh(dst, lo, n) {
				for j := 0; j < n; j++ {
					finIter(c, lo+j)
				}
				lo += n
				continue
			}
			dev.Ops(mcu.OpBranch, n)
			dev.Ops(bKind, n) // n loads of the same read-only bias word
			bq := fixed.Q15(l.B.Get(f))
			c.ReadRange(acc, lo, n)
			dev.Ops(mcu.OpFixedAdd, n)
			kern.FinalizeConst(finVals, acc.ROWords(), int64(bq), 0, lo, n, q.Shift)
			c.WriteRange(dst, lo, finVals[:n])
			lo += n
		}
	})
}

// densePasses emits the accumulate and finalize passes for a dense
// fully-connected layer; one iteration is one MAC on the task-shared
// partial of output o by input element i.
func (b *tileBuilder) densePasses(addPass addPassFn,
	l *core.LayerImage, layer string, src, dst *mem.Region) {
	q := l.Q
	acc := b.img.AccA
	accIter := func(c *task.Ctx, it int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		i, o := it/q.Out, it%q.Out
		x := fixed.Q15(dev.Load(src, i))
		wv := fixed.Q15(dev.Load(l.W, o*q.In+i))
		dev.Op(mcu.OpFixedMul)
		var a fixed.Acc
		if i > 0 {
			a = fixed.Acc(c.Read(acc, o))
			dev.Op(mcu.OpFixedAdd)
		}
		c.Write(acc, o, int64(a.MAC(wv, x)))
	}
	vals := make([]int64, b.k)
	wKind, srcKind := loadKind(l.W), loadKind(src)
	addPass("fc-acc", layer, q.In*q.Out, accIter, func(c *task.Ctx, lo, hi int) {
		dev := c.Dev()
		for lo < hi {
			i, o0 := lo/q.Out, lo%q.Out
			n := hi - lo
			if m := q.Out - o0; m < n {
				n = m // one input element
			}
			if n < minBulk || !c.Fresh(acc, o0, n) {
				for j := 0; j < n; j++ {
					accIter(c, lo+j)
				}
				lo += n
				continue
			}
			dev.Ops(mcu.OpBranch, n)
			dev.Ops(srcKind, n) // n loads of the same input word
			x := fixed.Q15(src.Get(i))
			dev.Ops(wKind, n) // n strided read-only weight loads
			dev.Ops(mcu.OpFixedMul, n)
			if i > 0 {
				c.ReadRange(acc, o0, n)
				dev.Ops(mcu.OpFixedAdd, n)
				kern.DenseRow(vals, acc.ROWords(), l.W.ROWords(), o0, o0*q.In+i, q.In, n, int64(x))
			} else {
				kern.DenseRowFirst(vals, l.W.ROWords(), o0*q.In+i, q.In, n, int64(x))
			}
			c.WriteRange(acc, o0, vals[:n])
			lo += n
		}
	})
	finIter := func(c *task.Ctx, o int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		bq := fixed.Q15(dev.Load(l.B, o))
		a := fixed.Acc(c.Read(acc, o))
		dev.Op(mcu.OpFixedAdd)
		c.Write(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	}
	finVals := make([]int64, b.k)
	addPass("fc-fin", layer, q.Out, finIter, func(c *task.Ctx, lo, hi int) {
		dev := c.Dev()
		n := hi - lo
		if n < minBulk || !c.Fresh(acc, lo, n) || !c.Fresh(dst, lo, n) {
			for o := lo; o < hi; o++ {
				finIter(c, o)
			}
			return
		}
		dev.Ops(mcu.OpBranch, n)
		dev.LoadRange(l.B, lo, n)
		c.ReadRange(acc, lo, n)
		dev.Ops(mcu.OpFixedAdd, n)
		kern.FinalizeVec(finVals, acc.ROWords(), l.B.ROWords(), 0, lo, n, q.Shift)
		c.WriteRange(dst, lo, finVals[:n])
	})
}

// sparsePasses emits zero-init, per-nonzero accumulate, and finalize passes
// for a sparse fully-connected layer. Each nonzero update reads and writes
// its row's partial — the WAR pattern that forces redo-logging here and
// that SONIC's sparse undo-logging replaces.
func (b *tileBuilder) sparsePasses(addPass addPassFn,
	l *core.LayerImage, li int, layer string, src, dst *mem.Region) {
	q := l.Q
	acc := b.img.AccA
	zeroIter := func(c *task.Ctx, o int) {
		c.Dev().Op(mcu.OpBranch)
		c.Write(acc, o, 0)
	}
	zeros := make([]int64, b.k)
	addPass("spfc-zero", layer, q.Out, zeroIter, func(c *task.Ctx, lo, hi int) {
		n := hi - lo
		if n < minBulk || !c.Fresh(acc, lo, n) {
			for o := lo; o < hi; o++ {
				zeroIter(c, o)
			}
			return
		}
		c.Dev().Ops(mcu.OpBranch, n)
		c.WriteRange(acc, lo, zeros[:n])
	})
	// Row lookup per nonzero: the device walks RowPtr lazily by keeping a
	// "current row" volatile variable... but volatile state cannot span
	// tasks, so each iteration binary-searches RowPtr. This is what a real
	// port pays for splitting a CSR walk across tasks.
	accIter := func(c *task.Ctx, p int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		row := sparseRowOf(dev, l, p, q.Out)
		wv := fixed.Q15(dev.Load(l.W, p))
		col := int(dev.Load(l.Cols, p))
		x := fixed.Q15(dev.Load(src, col))
		dev.Op(mcu.OpFixedMul)
		a := fixed.Acc(c.Read(acc, row))
		dev.Op(mcu.OpFixedAdd)
		c.Write(acc, row, int64(a.MAC(wv, x)))
	}
	// The bulk body walks whole row segments — the owning row and its end
	// come from a host-side RowPtr search, free of simulated charge like
	// every other rangeFn's chunk math: one AccumulateRow per segment
	// replaces that row's read-modify-write chain through the redo log,
	// and the probe loop is charged from its host-counted step count. The
	// op multiset per iteration is identical to the scalar body's, and
	// both executors run this same body, so a brown-out mid-chunk wastes
	// the same charged prefix in each.
	rowPtr := q.RowPtr
	rowPtrKind := loadKind(l.RowPtr)
	wKind, colsKind, srcKind := loadKind(l.W), loadKind(l.Cols), loadKind(src)
	accRange := func(c *task.Ctx, lo, hi int) {
		dev := c.Dev()
		wW, colsW, srcW := l.W.ROWords(), l.Cols.ROWords(), src.ROWords()
		for lo < hi {
			row := hostRowOf(rowPtr, lo)
			n := hi - lo
			if m := int(rowPtr[row+1]) - lo; m < n {
				n = m // this row's nonzeros within the tile
			}
			if n < minBulk || !c.Fresh(acc, row, 1) {
				for j := 0; j < n; j++ {
					accIter(c, lo+j)
				}
				lo += n
				continue
			}
			s := searchSteps(q.Out, row)
			dev.Ops(mcu.OpBranch, n*(1+s))
			dev.Ops(rowPtrKind, n*s)
			dev.Ops(wKind, n)
			dev.Ops(colsKind, n)
			dev.Ops(srcKind, n)
			dev.Ops(mcu.OpFixedMul, n)
			dev.Ops(mcu.OpFixedAdd, n)
			a := acc.Get(row) + kern.CSRRowSum(wW, colsW, srcW, lo, n)
			// Cannot fail: the Fresh probe above is AccumulateRow's own
			// precondition and nothing privatizes the word in between.
			c.AccumulateRow(acc, row, n, a)
			lo += n
		}
	}
	addPass("spfc-acc", layer, len(q.W), accIter, accRange)
	finIter := func(c *task.Ctx, o int) {
		dev := c.Dev()
		dev.Op(mcu.OpBranch)
		bq := fixed.Q15(dev.Load(l.B, o))
		a := fixed.Acc(c.Read(acc, o))
		dev.Op(mcu.OpFixedAdd)
		c.Write(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	}
	finVals := make([]int64, b.k)
	addPass("spfc-fin", layer, q.Out, finIter, func(c *task.Ctx, lo, hi int) {
		dev := c.Dev()
		n := hi - lo
		if n < minBulk || !c.Fresh(acc, lo, n) || !c.Fresh(dst, lo, n) {
			for o := lo; o < hi; o++ {
				finIter(c, o)
			}
			return
		}
		dev.Ops(mcu.OpBranch, n)
		dev.LoadRange(l.B, lo, n)
		c.ReadRange(acc, lo, n)
		dev.Ops(mcu.OpFixedAdd, n)
		kern.FinalizeVec(finVals, acc.ROWords(), l.B.ROWords(), 0, lo, n, q.Shift)
		c.WriteRange(dst, lo, finVals[:n])
	})
}

// hostRowOf returns the row owning nonzero p — sparseRowOf's answer,
// derived host-side from the quantized RowPtr without simulated loads.
func hostRowOf(rowPtr []int32, p int) int {
	lo, hi := 0, len(rowPtr)-1
	for lo+1 < hi {
		if mid := (lo + hi) / 2; int(rowPtr[mid]) <= p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// searchSteps returns the number of probe iterations sparseRowOf performs
// for any nonzero in the given row: each probe compares a row boundary
// RowPtr[mid] against a key strictly inside the row, so the comparison —
// and with it the whole probe path — is the same for every key the row
// owns, and can be counted host-side without loading RowPtr.
func searchSteps(rows, row int) int {
	lo, hi, s := 0, rows, 0
	for lo+1 < hi {
		s++
		if mid := (lo + hi) / 2; mid <= row {
			lo = mid
		} else {
			hi = mid
		}
	}
	return s
}

// sparseRowOf binary-searches RowPtr for the row containing nonzero p.
func sparseRowOf(dev *mcu.Device, l *core.LayerImage, p, rows int) int {
	lo, hi := 0, rows // invariant: RowPtr[lo] <= p < RowPtr[hi]
	for lo+1 < hi {
		dev.Op(mcu.OpBranch)
		mid := (lo + hi) / 2
		if dev.Load(l.RowPtr, mid) <= int64(p) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// poolPass emits the pooling pass: one output element per iteration. With
// a compiled program the window-origin decode comes from the PoolBase
// table instead of the per-iteration div/mod chain.
func (b *tileBuilder) poolPass(addPass addPassFn,
	q *dnn.QuantLayer, li int, layer string, src, dst *mem.Region) {
	c0, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
	oh, ow := h/q.Window, w/q.Window
	var poolBase []int32
	if tl := b.layerTape(li); tl != nil {
		poolBase = tl.PoolBase
	}
	addPass("pool", layer, c0*oh*ow, func(c *task.Ctx, i int) {
		dev := c.Dev()
		var origin int
		if poolBase != nil {
			origin = int(poolBase[i])
		} else {
			ox := i % ow
			oy := (i / ow) % oh
			ci := i / (ow * oh)
			origin = (ci*h+oy*q.Window)*w + ox*q.Window
		}
		best := fixed.MinusOne
		for ky := 0; ky < q.Window; ky++ {
			rowStart := origin + ky*w
			for kx := 0; kx < q.Window; kx++ {
				dev.Op(mcu.OpBranch)
				v := fixed.Q15(dev.Load(src, rowStart+kx))
				best = fixed.Max(best, v)
			}
		}
		c.Write(dst, i, int64(best))
	}, nil)
}
