package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
)

func benchRuntime(b *testing.B, rt core.Runtime) {
	qm, ex := buildModel(b)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		b.Fatal(err)
	}
	qin := qm.QuantizeInput(ex[0].X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Infer(img, qin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseInferHAR(b *testing.B)    { benchRuntime(b, Base{}) }
func BenchmarkTile8InferHAR(b *testing.B)   { benchRuntime(b, Tile{TileSize: 8}) }
func BenchmarkTile128InferHAR(b *testing.B) { benchRuntime(b, Tile{TileSize: 128}) }
