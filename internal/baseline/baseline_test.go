package baseline

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
)

// buildModel trains a small HAR network (with a pruned conv and a sparse FC
// so all layer kinds are exercised) and quantizes it.
func buildModel(t testing.TB) (*dnn.QuantModel, []dataset.Example) {
	t.Helper()
	ds := dataset.HAR(1, 240, 8)
	n := dnn.HARNet(1)
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 2
	dnn.Train(n, ds, cfg)
	n.Layers[0].(*dnn.Conv).Prune(0.03)
	n.Layers[3] = dnn.NewSparseDense(n.Layers[3].(*dnn.Dense), 0.02)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		t.Fatal(err)
	}
	return qm, ds.Test
}

func TestBaseMatchesHostReference(t *testing.T) {
	qm, ex := buildModel(t)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex {
		qin := qm.QuantizeInput(e.X)
		want := qm.Forward(qin)
		got, err := Base{}.Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, want)
	}
}

func TestTileMatchesHostReferenceContinuous(t *testing.T) {
	qm, ex := buildModel(t)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{8, 32, 128} {
		qin := qm.QuantizeInput(ex[0].X)
		want := qm.Forward(qin)
		got, err := Tile{TileSize: k}.Infer(img, qin)
		if err != nil {
			t.Fatalf("tile-%d: %v", k, err)
		}
		assertEqualQ(t, got, want)
	}
}

func TestTileCorrectUnderFailureInjection(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	want := qm.Forward(qin)
	for _, period := range []int{4001, 9001, 20011} {
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Tile{TileSize: 8}.Infer(img, qin)
		if errors.Is(err, mcu.ErrDoesNotComplete) {
			t.Fatalf("period %d: tile-8 should complete (largest task ~3.6k ops)", period)
		}
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, want)
		if period < 25000 && dev.Stats().Reboots == 0 {
			t.Errorf("period %d: expected reboots", period)
		}
	}
}

// Property: tile inference is exactly equal to the host reference for any
// failure period that allows completion.
func TestTileEquivalenceProperty(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[1].X)
	want := qm.Forward(qin)
	f := func(seed uint16) bool {
		period := 5000 + int(seed)%20000
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			return false
		}
		got, err := Tile{TileSize: 16}.Infer(img, qin)
		if errors.Is(err, mcu.ErrDoesNotComplete) {
			return true // small budgets may legitimately not complete
		}
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestBaseDoesNotCompleteOnSmallBuffer(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	dev := mcu.New(energy.NewIntermittent(energy.Cap100uF,
		energy.ConstantHarvester{Watts: energy.DefaultRFWatts}))
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Base{}.Infer(img, qin)
	if !errors.Is(err, mcu.ErrDoesNotComplete) {
		t.Errorf("base on 100uF should not complete, got %v", err)
	}
}

func TestBaseFasterThanTiles(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	run := func(rt core.Runtime) float64 {
		dev := mcu.New(energy.Continuous{})
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Infer(img, qin); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().EnergyNJ()
	}
	base := run(Base{})
	t8 := run(Tile{TileSize: 8})
	t128 := run(Tile{TileSize: 128})
	if t8 <= base || t128 <= base {
		t.Errorf("tiling should cost more than base: base=%v t8=%v t128=%v", base, t8, t128)
	}
	if t128 >= t8 {
		t.Errorf("larger tiles should amortize overheads: t8=%v t128=%v", t8, t128)
	}
	t.Logf("energy: base=%.1fuJ tile-8=%.1fuJ tile-128=%.1fuJ (t8/base=%.1fx)",
		base/1e3, t8/1e3, t128/1e3, t8/base)
}

func assertEqualQ(t *testing.T, got, want []fixed.Q15) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("logit %d: got %d, want %d", i, got[i], want[i])
		}
	}
}
