package svm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/imodel"
	"repro/internal/mcu"
	"repro/internal/sonic"
)

func TestTrainLearnsHAR(t *testing.T) {
	ds := dataset.HAR(1, 600, 150)
	n, acc, err := Train(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Errorf("SVM accuracy %v, want >= 0.5 (6-class, chance 0.17)", acc)
	}
	if len(n.Layers) != 1 || n.Layers[0].Kind() != "dense" {
		t.Error("SVM should be a single dense layer")
	}
}

func TestEmptyDataset(t *testing.T) {
	ds := &dataset.Dataset{Name: "empty", InputShape: [3]int{1, 1, 4}, NumClasses: 2}
	if _, _, err := Train(ds, DefaultConfig()); err == nil {
		t.Error("empty dataset should error")
	}
}

// TestSVMDeploysAndRunsIntermittently: the SVM must run unchanged through
// the quantize/deploy/SONIC path.
func TestSVMDeploysAndRunsIntermittently(t *testing.T) {
	ds := dataset.HAR(2, 400, 80)
	n, _, err := Train(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		t.Fatal(err)
	}
	dev := mcu.New(energy.NewIntermittent(energy.Cap100uF,
		energy.ConstantHarvester{Watts: energy.DefaultRFWatts}))
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	qin := qm.QuantizeInput(ds.Test[0].X)
	want := qm.Forward(qin)
	got, err := (sonic.SONIC{}).Infer(img, qin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SVM logit %d differs intermittently", i)
		}
	}
}

// TestSVMVersusDNNByIMpJ reproduces §5.1's comparison: score a feasible SVM
// and a compressed DNN with the same IMpJ model. The paper found the DNN
// ahead (2x on MNIST, 8x on HAR); we assert the comparison runs and report
// the measured ratio — on our easier synthetic data the gap narrows, which
// EXPERIMENTS.md documents.
func TestSVMVersusDNNByIMpJ(t *testing.T) {
	ds := dataset.HAR(3, 600, 150)

	svmNet, svmAcc, err := Train(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dnnNet := dnn.HARNet(3)
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 3
	dnn.Train(dnnNet, ds, cfg)
	dnnAcc := dnn.Evaluate(dnnNet, ds.Test)

	score := func(n *dnn.Network) (float64, float64) {
		qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
		if err != nil {
			t.Fatal(err)
		}
		dev := mcu.New(energy.Continuous{})
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := (sonic.SONIC{}).Infer(img, qm.QuantizeInput(ds.Test[0].X)); err != nil {
			t.Fatal(err)
		}
		eInfer := dev.Stats().EnergyNJ() * 1e-9
		conf := dnn.Confusion(n, ds.Test, ds.NumClasses)
		tp, tn := dnn.BinaryRates(conf, 0)
		p := imodel.WildlifeDefaults()
		p.EComm /= imodel.ResultOnlyCommFactor
		p.TP, p.TN, p.EInfer = tp, tn, eInfer
		return imodel.Inference(p), eInfer
	}
	svmIMpJ, svmE := score(svmNet)
	dnnIMpJ, dnnE := score(dnnNet)
	if svmIMpJ <= 0 || dnnIMpJ <= 0 {
		t.Fatal("IMpJ should be positive for both models")
	}
	t.Logf("HAR: SVM acc %.2f E %.2fmJ IMpJ %.2f | DNN acc %.2f E %.2fmJ IMpJ %.2f | DNN/SVM = %.2fx",
		svmAcc, svmE*1e3, svmIMpJ, dnnAcc, dnnE*1e3, dnnIMpJ, dnnIMpJ/svmIMpJ)
	if dnnAcc < svmAcc-0.05 {
		t.Errorf("DNN accuracy (%v) should not trail the linear SVM (%v)", dnnAcc, svmAcc)
	}
}
