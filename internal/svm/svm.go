// Package svm implements the traditional-inference baseline of §5.1: linear
// one-vs-rest support vector machines trained with hinge loss. The paper
// evaluated SVMs against the DNNs and found that "no SVM model that fit on
// the device was competitive with the DNN models": measured by IMpJ, SVM
// underperformed by 2× on MNIST and 8× on HAR. This package reproduces
// that comparison: an SVM deploys as a single dense layer (so it runs on
// every runtime unchanged) and is scored with the same IMpJ model.
package svm

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dataset"
	"repro/internal/dnn"
)

// Config controls SVM training.
type Config struct {
	Epochs int
	LR     float64
	// Lambda is the L2 regularization strength.
	Lambda float64
	Seed   uint64
}

// DefaultConfig returns a reasonable hinge-loss SGD configuration.
func DefaultConfig() Config {
	return Config{Epochs: 6, LR: 0.01, Lambda: 1e-4, Seed: 1}
}

// Train fits a linear one-vs-rest SVM on the dataset and returns it as a
// single-dense-layer network (plus its test accuracy), directly deployable
// through the usual quantize-and-deploy path.
func Train(ds *dataset.Dataset, cfg Config) (*dnn.Network, float64, error) {
	if len(ds.Train) == 0 {
		return nil, 0, fmt.Errorf("svm: empty training set")
	}
	in := ds.InputLen()
	classes := ds.NumClasses
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x51))

	n := dnn.NewNetwork(ds.Name+"-svm", dnn.Shape{1, 1, in})
	layer := dnn.NewDense(rng, classes, in)
	layer.W.Scale(0.01) // small init: hinge loss is scale-sensitive
	n.Add(layer)

	w := layer.W.Data()
	b := layer.B.Data()
	order := make([]int, len(ds.Train))
	for i := range order {
		order[i] = i
	}
	lr := cfg.LR
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, c int) { order[a], order[c] = order[c], order[a] })
		for _, idx := range order {
			ex := ds.Train[idx]
			for c := 0; c < classes; c++ {
				// One-vs-rest hinge: y in {-1,+1}, margin y*(w·x+b) >= 1.
				y := -1.0
				if ex.Label == c {
					y = 1.0
				}
				row := w[c*in : (c+1)*in]
				score := b[c]
				for j, x := range ex.X {
					score += row[j] * x
				}
				// L2 shrinkage (applied on every step).
				for j := range row {
					row[j] -= lr * cfg.Lambda * row[j]
				}
				if y*score < 1 {
					for j, x := range ex.X {
						row[j] += lr * y * x
					}
					b[c] += lr * y
				}
			}
		}
		lr *= 0.8
	}
	return n, dnn.Evaluate(n, ds.Test), nil
}
