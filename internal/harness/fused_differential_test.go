package harness

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/intermittest"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/sonic"
	"repro/internal/trace"
)

// fusedObservation extends diffObservation with the device-native
// wasted-work figure, which the fused path must also reproduce bit-exactly
// (it commits once per funded span instead of once per op).
type fusedObservation struct {
	diffObservation
	WastedNJ float64
}

// fusedRun executes one inference with fused kernels allowed (noFuse
// false) or pinned to the scalar path (noFuse true). Unlike diffRun it
// attaches no WAR shadow — a shadow tracker is one of the conditions that
// (correctly) disables fusion, so the fused path would never engage.
func fusedRun(t *testing.T, qm *dnn.QuantModel, qin []fixed.Q15,
	rt core.Runtime, power energy.System, noFuse bool) fusedObservation {
	t.Helper()
	dev := mcu.New(power)
	dev.NoFuse = noFuse
	dev.TrackWasted(true)
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	logits, ierr := rt.Infer(img, qin)
	obs := fusedObservation{
		diffObservation: diffObservation{
			Logits: logits,
			Stats:  *dev.Stats(),
		},
		WastedNJ: dev.WastedNJ(),
	}
	if ierr != nil {
		if errors.Is(ierr, mcu.ErrDoesNotComplete) {
			obs.DNC = true
		} else {
			obs.Err = ierr.Error()
		}
	}
	return obs
}

// fusedPowers returns the power systems the fused oracle sweeps: the
// devirtualized kinds fusion engages on. Count-based fail schedules are
// deliberately absent — they are not bulk-fundable, so fusion never
// engages there (TestTapeInterpreterDifferential already covers them on
// the scalar path).
func fusedPowers() []struct {
	name string
	mk   func() energy.System
} {
	return []struct {
		name string
		mk   func() energy.System
	}{
		{"cont", func() energy.System { return energy.Continuous{} }},
		{"rf-100uF", func() energy.System {
			return energy.NewIntermittent(energy.Cap100uF, energy.ConstantHarvester{Watts: 1e-3})
		}},
		{"rf-1mF", func() energy.System {
			return energy.NewIntermittent(energy.Cap1mF, energy.ConstantHarvester{Watts: 10e-3})
		}},
	}
}

// TestFusedScalarDifferential is the fused-kernel fast path's oracle: for
// every runtime in both executors, under continuous power and real
// capacitor/harvester brown-out cycles, a run with fused bulk kernels
// allowed must be bit-identical — logits, cycles, integer-picojoule
// energy, per-op counts, per-section stats, MaxRegionOps, reboot count,
// dead time, and the wasted-work figure — to the same run with
// Device.NoFuse pinning the scalar op-by-op path.
//
// Like the bulk/tape oracles, CI greps for each runtime's PASS line and
// rejects skips.
func TestFusedScalarDifferential(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	qin := qm.QuantizeInput(x)

	for _, pair := range tapePairs() {
		pair := pair
		for _, ex := range []struct {
			label string
			rt    core.Runtime
		}{
			{pair.interp.Name(), pair.interp},
			{pair.interp.Name() + "-tape", pair.tape},
		} {
			ex := ex
			t.Run(ex.label, func(t *testing.T) {
				for _, pw := range fusedPowers() {
					fused := fusedRun(t, qm, qin, ex.rt, pw.mk(), false)
					scalar := fusedRun(t, qm, qin, ex.rt, pw.mk(), true)
					diffCompare(t, pw.name, fused.diffObservation, scalar.diffObservation)
					if fused.WastedNJ != scalar.WastedNJ {
						t.Errorf("%s: WastedNJ diverges: fused=%v scalar=%v",
							pw.name, fused.WastedNJ, scalar.WastedNJ)
					}
				}
			})
		}
	}
}

// TestTrackWastedMatchesTraceAnalysis pins the device-native wasted-work
// mirror to the trace subsystem's arithmetic: the same run observed
// through a trace buffer (which forces the scalar path — a tracer must
// see every op) must report the identical TotalWastedEnergyNJ, bit for
// bit, as a fused run using Device.TrackWasted. This is what lets fleet
// campaigns drop their per-device tracers without moving a single
// reported number.
func TestTrackWastedMatchesTraceAnalysis(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	qin := qm.QuantizeInput(x)

	for _, pair := range tapePairs() {
		rt := pair.tape
		t.Run(rt.Name(), func(t *testing.T) {
			power := func() energy.System {
				return energy.NewIntermittent(energy.Cap100uF, energy.ConstantHarvester{Watts: 1e-3})
			}

			// Reference: tracer-attached run, trace analysis arithmetic.
			devT := mcu.New(power())
			buf := trace.NewAnalysisBuffer(256)
			devT.SetTracer(buf)
			imgT, err := core.Deploy(devT, qm)
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			if _, err := rt.Infer(imgT, qin); err != nil {
				t.Fatalf("traced infer: %v", err)
			}
			devT.FlushTrace()
			want := buf.Analysis().TotalWastedEnergyNJ

			// Device-native mirror on the fused path.
			devW := mcu.New(power())
			devW.TrackWasted(true)
			imgW, err := core.Deploy(devW, qm)
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			if _, err := rt.Infer(imgW, qin); err != nil {
				t.Fatalf("tracked infer: %v", err)
			}
			got := devW.WastedNJ()

			if got != want {
				t.Fatalf("wasted energy diverges: TrackWasted=%v trace analysis=%v", got, want)
			}
			if devT.Stats().Reboots != devW.Stats().Reboots {
				t.Fatalf("reboot count diverges: traced=%d tracked=%d",
					devT.Stats().Reboots, devW.Stats().Reboots)
			}
		})
	}
}

// flattenFRAM reads a snapshot's contents back through a structurally
// identical scratch bank (snapshots are opaque) and returns them as one
// flat word list.
func flattenFRAM(t *testing.T, snap *mem.Snapshot, qm *dnn.QuantModel) []int64 {
	t.Helper()
	dev := mcu.New(energy.Continuous{})
	if _, err := core.Deploy(dev, qm); err != nil {
		t.Fatalf("scratch deploy: %v", err)
	}
	if err := snap.RestoreTo(dev.FRAM); err != nil {
		t.Fatalf("restore: %v", err)
	}
	var out []int64
	for i := 0; i < dev.FRAM.Regions(); i++ {
		out = append(out, dev.FRAM.RegionAt(i).Words()...)
	}
	return out
}

// putCounter counts every OnPut an observed bank delivers.
type putCounter struct{ n int64 }

func (c *putCounter) OnPut(*mem.Region, int, int64) { c.n++ }

// TestFusedSnapshotCOWAndObserver is the regression guard for the two
// sharing contracts raw-word kernels could silently break:
//
//  1. Bank snapshots are copies (COW against *previous snapshots*, never
//     against live words), so fused writes through Region.Words must not
//     alter any existing snapshot's contents.
//  2. An attached PutObserver must see every store — so the fused path
//     must disqualify itself and every store must route through Put.
func TestFusedSnapshotCOWAndObserver(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	qin := qm.QuantizeInput(x)
	rt := sonic.SONIC{Tape: true}

	t.Run("snapshot-cow", func(t *testing.T) {
		dev := mcu.New(energy.Continuous{})
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatalf("deploy: %v", err)
		}
		snap0 := dev.FRAM.Snapshot(nil, nil)
		if _, err := rt.Infer(img, qin); err != nil {
			t.Fatalf("infer: %v", err)
		}
		// snap1 shares every page unchanged since snap0 (the weights) with
		// snap0's storage.
		snap1 := dev.FRAM.Snapshot(snap0, nil)
		want0 := flattenFRAM(t, snap0, qm)
		want1 := flattenFRAM(t, snap1, qm)

		// A second fused inference rewrites activations and accumulators
		// in place through raw backing slices.
		if _, err := rt.Infer(img, qin); err != nil {
			t.Fatalf("second infer: %v", err)
		}
		if got := flattenFRAM(t, snap0, qm); !reflect.DeepEqual(got, want0) {
			t.Error("fused run mutated the pre-run snapshot")
		}
		if got := flattenFRAM(t, snap1, qm); !reflect.DeepEqual(got, want1) {
			t.Error("fused run mutated the mid-train snapshot")
		}
	})

	t.Run("put-observer", func(t *testing.T) {
		ref := fusedRun(t, qm, qin, rt, energy.Continuous{}, false)

		dev := mcu.New(energy.Continuous{})
		ctr := &putCounter{}
		dev.FRAM.SetObserver(ctr)
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatalf("deploy: %v", err)
		}
		logits, err := rt.Infer(img, qin)
		if err != nil {
			t.Fatalf("infer: %v", err)
		}
		if !reflect.DeepEqual(logits, ref.Logits) {
			t.Errorf("observer fallback changed logits: got %v want %v", logits, ref.Logits)
		}
		stores := dev.Stats().OpCount[mcu.OpStoreFRAM]
		if ctr.n < stores {
			t.Errorf("observer missed stores: saw %d puts, device charged %d FRAM stores",
				ctr.n, stores)
		}
	})
}

var _ = fmt.Sprintf // keep fmt for schedule labels if extended
