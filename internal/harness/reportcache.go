package harness

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/genesis"
)

// The report cache is content-addressed: the cache key is a hash over every
// genesis.Options field that can influence the sweep's outcome, so a warm
// run of the paper pipeline skips training entirely and any change to the
// sweep inputs (seed, sample counts, budgets, prune/rank grids, ...)
// invalidates the entry automatically. The parallelism knobs (Workers,
// ForceSerial) are deliberately excluded — parallel and serial runs produce
// bit-identical reports (see TestGenesisParallelDeterministic), so they
// share cache entries.

// reportCacheVersion invalidates all entries when the Report encoding or
// the hash recipe changes.
const reportCacheVersion = 1

// reportRecord is the on-disk form of one cached report.
type reportRecord struct {
	Version int
	Hash    string
	Report  *genesis.Report
}

// OptionsHash returns the content-address of a sweep: a hex sha256 over
// every result-affecting field of the options.
func OptionsHash(o genesis.Options) string {
	h := sha256.New()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }
	fmt.Fprintf(h, "network=%s\nseed=%d\n", o.Network, o.Seed)
	fmt.Fprintf(h, "train=%d\ntest=%d\nepochs=%d\nfinetune=%d\ncap=%d\n",
		o.TrainSamples, o.TestSamples, o.Epochs, o.FineTuneEpochs, o.MaxSamplesPerEpoch)
	fmt.Fprintf(h, "fram=%d\ninteresting=%d\n", o.FRAMBudgetBytes, o.Interesting)
	fmt.Fprintf(h, "app=%s,%s,%s,%s,%s,%s\n",
		f(o.App.P), f(o.App.TP), f(o.App.TN), f(o.App.ESense), f(o.App.EComm), f(o.App.EInfer))
	rt := "tails" // the genesis.Run default when MeasureRuntime is nil
	if o.MeasureRuntime != nil {
		rt = o.MeasureRuntime.Name()
	}
	fmt.Fprintf(h, "runtime=%s\n", rt)
	fmt.Fprintf(h, "prune=")
	for _, p := range o.PruneLevels {
		fmt.Fprintf(h, "%s,", f(p))
	}
	fmt.Fprintf(h, "\nrank=")
	for _, r := range o.RankFracs {
		fmt.Fprintf(h, "%s,", f(r))
	}
	fmt.Fprintf(h, "\n")
	return hex.EncodeToString(h.Sum(nil))
}

// reportCachePath names the cache entry for a sweep.
func reportCachePath(dir string, o genesis.Options) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%s.report", o.Network, OptionsHash(o)))
}

// loadReportCache returns the cached report for these options, or nil on
// any miss: absent file, undecodable file, version skew, or hash mismatch.
// A corrupt entry therefore degrades to retraining, never to an error.
func loadReportCache(dir string, opts genesis.Options) *genesis.Report {
	f, err := os.Open(reportCachePath(dir, opts))
	if err != nil {
		return nil
	}
	defer f.Close()
	var rec reportRecord
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return nil
	}
	if rec.Version != reportCacheVersion || rec.Hash != OptionsHash(opts) || rec.Report == nil {
		return nil
	}
	// The stored copy carries sanitized options (no runtime interface, no
	// parallelism knobs); restore the caller's so downstream consumers see
	// exactly what a cold Run would have recorded.
	rec.Report.Options = opts
	return rec.Report
}

// saveReportCache writes the report cache entry atomically (temp file +
// rename), so concurrent writers and crashed runs never leave a torn entry.
func saveReportCache(dir string, opts genesis.Options, rep *genesis.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// gob cannot encode the non-nil MeasureRuntime interface (and the
	// parallelism knobs must not leak into shared entries), so the stored
	// copy carries sanitized options; loadReportCache restores them.
	cp := *rep
	cp.Options.MeasureRuntime = nil
	cp.Options.Workers = 0
	cp.Options.ForceSerial = false
	tmp, err := os.CreateTemp(dir, "report-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	rec := reportRecord{Version: reportCacheVersion, Hash: OptionsHash(opts), Report: &cp}
	if err := gob.NewEncoder(tmp).Encode(rec); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), reportCachePath(dir, opts))
}
