package harness

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/intermittest"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// tapePair couples a runtime with its tape-executing variant. Name comes
// from the runtime itself so the subtest labels match the fleet/CLI
// vocabulary.
type tapePair struct {
	interp core.Runtime
	tape   core.Runtime
}

// tapePairs returns all seven runtimes in both executors.
func tapePairs() []tapePair {
	return []tapePair{
		{baseline.Base{}, baseline.Base{Tape: true}},
		{baseline.Tile{TileSize: 8}, baseline.Tile{TileSize: 8, Tape: true}},
		{baseline.Tile{TileSize: 32}, baseline.Tile{TileSize: 32, Tape: true}},
		{baseline.Tile{TileSize: 128}, baseline.Tile{TileSize: 128, Tape: true}},
		{sonic.SONIC{}, sonic.SONIC{Tape: true}},
		{tails.TAILS{}, tails.TAILS{Tape: true}},
		{checkpoint.Checkpoint{Interval: 8}, checkpoint.Checkpoint{Interval: 8, Tape: true}},
	}
}

// TestTapeInterpreterDifferential is the op-tape executor's oracle: for
// every runtime, the tape path must reproduce the interpreted walk
// bit-for-bit — logits, cycles, integer-picojoule energy, per-op counts,
// per-section stats, reboot placement, and WAR shadow verdicts — under
// continuous power and a fleet of fuzzed brown-out schedules, and under
// both the bulk and the forced-scalar charging paths.
//
// Like the bulk/fork oracles, this is the safety net that makes the tape
// legal to ship anywhere (fleet campaigns default paths, CLIs): CI greps
// for each runtime's PASS line and rejects skips.
func TestTapeInterpreterDifferential(t *testing.T) {
	const fuzzedSchedules = 30
	qm, x := intermittest.TinyModel(1)
	qin := qm.QuantizeInput(x)

	for _, pair := range tapePairs() {
		pair := pair
		t.Run(pair.interp.Name(), func(t *testing.T) {
			// Continuous power, bulk charging: the pure compute path.
			interp := diffRun(t, qm, qin, pair.interp, energy.Continuous{}, false)
			tp := diffRun(t, qm, qin, pair.tape, energy.Continuous{}, false)
			diffCompare(t, "cont", tp, interp)

			// Forced-scalar charging on both executors: proves the tape
			// composes with the bulk/scalar equivalence rather than
			// depending on it.
			interpScalar := diffRun(t, qm, qin, pair.interp, energy.Continuous{}, true)
			tpScalar := diffRun(t, qm, qin, pair.tape, energy.Continuous{}, true)
			diffCompare(t, "cont-scalar", tpScalar, interpScalar)

			// Fuzzed brown-out schedules above the runtime's liveness
			// floor, with a tail of tight gaps maximizing mid-kernel
			// reboot coverage (same shape as TestBulkScalarDifferential).
			totalOps := int64(0)
			for _, n := range interp.Stats.OpCount {
				totalOps += n
			}
			floor := int(2*interp.Stats.MaxRegionOps) + 50
			rng := rand.New(rand.NewPCG(0x7a9e, uint64(totalOps)))
			for s := 0; s < fuzzedSchedules; s++ {
				gaps := make([]int, 1+rng.IntN(4))
				for i := range gaps {
					gaps[i] = floor + rng.IntN(int(totalOps))
				}
				if s%5 == 4 {
					for i := range gaps {
						gaps[i] = floor + rng.IntN(floor)
					}
				}
				label := fmt.Sprintf("sched%02d%v", s, gaps)
				interp := diffRun(t, qm, qin, pair.interp, energy.NewFailSchedule(gaps), false)
				tp := diffRun(t, qm, qin, pair.tape, energy.NewFailSchedule(gaps), false)
				diffCompare(t, label, tp, interp)
			}
		})
	}
}
