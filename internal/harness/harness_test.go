package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/sonic"
)

// sonicRuntime returns a fresh SONIC runtime for steady-state tests.
func sonicRuntime() core.Runtime { return sonic.SONIC{} }

// prepQuick prepares one network with small budgets; shared across tests.
var prepCache = map[string]*Prepared{}

func prepQuick(t testing.TB, net string) *Prepared {
	t.Helper()
	if p, ok := prepCache[net]; ok {
		return p
	}
	p, err := Prepare(net, PrepareOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prepCache[net] = p
	return p
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("x", 1.5)
	tab.AddRow(12, "y")
	out := tab.Render()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "bb") {
		t.Errorf("render missing pieces:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("csv wrong: %q", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Errorf("csv row count wrong: %q", csv)
	}
}

func TestFig1Fig2Shapes(t *testing.T) {
	f1 := Fig1(10)
	if len(f1.Rows) != 11 {
		t.Fatalf("fig1 rows = %d", len(f1.Rows))
	}
	f2 := Fig2(10)
	// At full accuracy, result-only sending beats full-image sending.
	last1 := f1.Rows[len(f1.Rows)-1]
	last2 := f2.Rows[len(f2.Rows)-1]
	v1, err1 := strconv.ParseFloat(last1[4], 64)
	v2, err2 := strconv.ParseFloat(last2[4], 64)
	if err1 != nil || err2 != nil || v2 <= v1 {
		t.Errorf("result-only IMpJ (%s) should exceed full-image (%s)", last2[4], last1[4])
	}
}

func TestTable1(t *testing.T) {
	if len(Table1().Rows) != 6 {
		t.Error("table 1 should list six parameters")
	}
}

func TestFig6WastedWork(t *testing.T) {
	tab := Fig6(40, 120)
	if len(tab.Rows) != 3 {
		t.Fatalf("fig6 rows = %d", len(tab.Rows))
	}
	// tile-12 should either not complete or waste more than tile-5; SONIC
	// completes with minimal waste.
	var sonicRow, t5 []string
	for _, r := range tab.Rows {
		switch r[0] {
		case "sonic":
			sonicRow = r
		case "tile-5":
			t5 = r
		}
	}
	if sonicRow[1] != "ok" {
		t.Error("sonic must complete")
	}
	if sonicRow[3] != "0" && sonicRow[3] != "1" {
		t.Errorf("sonic waste = %s, want <= 1 iteration", sonicRow[3])
	}
	if t5[1] == "ok" && t5[3] == "0" {
		t.Error("tile-5 under failures should waste work")
	}
}

func TestHarnessEndToEndHAR(t *testing.T) {
	p := prepQuick(t, "har")
	ev, err := RunAll([]*Prepared{p})
	if err != nil {
		t.Fatal(err)
	}
	// 6 runtimes x 4 power systems.
	if len(ev.Results) != 24 {
		t.Fatalf("results = %d, want 24", len(ev.Results))
	}

	// Completion shape (§9.1): SONIC and TAILS always complete; base never
	// completes on intermittent power; tile-128 fails at 100uF.
	for _, pw := range []string{"cont", "50mF", "1mF", "100uF"} {
		for _, rt := range []string{"sonic", "tails", "tile-8"} {
			if r := ev.Find("har", rt, pw); !r.Completed {
				t.Errorf("%s @ %s must complete", rt, pw)
			}
		}
	}
	// The compressed HAR model is small enough that a 1 mF (or 50 mF)
	// buffer can fund a whole inference, so Base completes there; the
	// 100 uF system reproduces the paper's non-termination.
	if r := ev.Find("har", "base", "100uF"); r.Completed {
		t.Error("base @ 100uF should not complete")
	}
	if r := ev.Find("har", "tile-128", "100uF"); r.Completed {
		t.Error("tile-128 @ 100uF should not complete")
	}

	// Performance shape on continuous power.
	base := ev.Find("har", "base", "cont").EnergyMJ
	sonic := ev.Find("har", "sonic", "cont").EnergyMJ
	tails := ev.Find("har", "tails", "cont").EnergyMJ
	tile8 := ev.Find("har", "tile-8", "cont").EnergyMJ
	if !(base < sonic && sonic < tile8) {
		t.Errorf("ordering wrong: base %v, sonic %v, tile8 %v", base, sonic, tile8)
	}
	if tails >= sonic {
		t.Errorf("tails (%v) should beat sonic (%v)", tails, sonic)
	}
	if tile8/sonic < 2 {
		t.Errorf("sonic improvement over tile-8 = %.2fx, want > 2x", tile8/sonic)
	}

	// SONIC time consistent across capacitors (steady-state metric).
	s100 := ev.Find("har", "sonic", "100uF").SteadySec
	s50m := ev.Find("har", "sonic", "50mF").SteadySec
	if r := s100 / s50m; r > 1.3 || r < 0.7 {
		t.Errorf("sonic steady time inconsistent: 100uF %v vs 50mF %v", s100, s50m)
	}

	// Figure tables render without panicking and contain the nets.
	for _, tab := range []*Table{Fig9(ev), Fig10(ev), Fig11(ev), Fig12(ev), Claims(ev)} {
		out := tab.Render()
		if len(out) == 0 {
			t.Errorf("%s rendered empty", tab.Title)
		}
	}
	f4, f5 := Fig4(p), Fig5(p)
	if len(f4.Rows) != len(p.Report.Results) || len(f5.Rows) != len(f4.Rows) {
		t.Error("fig4/fig5 row counts wrong")
	}
	if _, err := Ablation(p); err != nil {
		t.Fatal(err)
	}
}

func TestTable2(t *testing.T) {
	p := prepQuick(t, "har")
	tab := Table2([]*Prepared{p})
	if len(tab.Rows) == 0 {
		t.Fatal("table 2 empty")
	}
	if !strings.Contains(tab.Render(), "har") {
		t.Error("table 2 missing network name")
	}
}

func TestCacheRoundtrip(t *testing.T) {
	p := prepQuick(t, "har")
	dir := t.TempDir()
	if err := p.Model.SaveFile(cachePath(dir, "har")); err != nil {
		t.Fatal(err)
	}
	if !CacheExists(dir, "har") {
		t.Fatal("cache should exist")
	}
	loaded, err := LoadCached(dir, "har", 1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Model.MACs() != p.Model.MACs() {
		t.Error("cached model differs")
	}
}

func TestFig9LayersAndSVMComparison(t *testing.T) {
	p := prepQuick(t, "har")
	ev, err := RunAll([]*Prepared{p})
	if err != nil {
		t.Fatal(err)
	}
	layers := Fig9Layers(ev)
	if len(layers.Rows) == 0 {
		t.Error("Fig9Layers empty")
	}
	svmTab, err := SVMComparison(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(svmTab.Rows) != 2 {
		t.Errorf("SVM comparison rows = %d", len(svmTab.Rows))
	}
	ext, err := Extensions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Rows) != 7 {
		t.Errorf("Extensions rows = %d, want 7", len(ext.Rows))
	}
}

// TestSteadyStateProxy validates the SteadySec metric: running several
// consecutive inferences on one intermittent device, the wall-clock time
// per inference (live + dead) must approach the single-run steady-state
// figure, because in steady state every consumed joule is harvested.
func TestSteadyStateProxy(t *testing.T) {
	p := prepQuick(t, "har")
	input := p.Model.QuantizeInput(p.Input)
	pw := Powers()[3] // 100uF

	single, err := Measure(p.Net, p.Model, sonicRuntime(), pw, input)
	if err != nil {
		t.Fatal(err)
	}

	dev := mcu.New(pw.Make())
	img, err := core.Deploy(dev, p.Model)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := sonicRuntime().Infer(img, input); err != nil {
			t.Fatal(err)
		}
	}
	st := dev.Stats()
	perInference := (st.LiveSeconds(dev.Cost.ClockHz) + st.DeadSeconds) / n
	if rel := perInference/single.SteadySec - 1; rel > 0.15 || rel < -0.15 {
		t.Errorf("repeated-run time %.4fs/inference vs steady proxy %.4fs (rel %.0f%%)",
			perInference, single.SteadySec, rel*100)
	}
}
