package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dnn"
	"repro/internal/genesis"
)

// Prepared bundles everything the evaluation needs about one network: the
// GENESIS sweep report, the chosen deployable model, and a test input.
type Prepared struct {
	Net    string
	Report *genesis.Report
	Model  *dnn.QuantModel
	Input  []float64 // one representative test sample
	Label  int
}

// Networks lists the three evaluation networks in paper order.
func Networks() []string { return []string{"mnist", "har", "okg"} }

// PrepareOptions sizes the GENESIS runs behind the evaluation.
type PrepareOptions struct {
	Seed     uint64
	Quick    bool   // small training budgets for tests
	CacheDir string // if set, chosen models are cached as gob files
}

// genesisOptions builds the sweep options for a network.
func genesisOptions(net string, po PrepareOptions) genesis.Options {
	o := genesis.DefaultOptions(net)
	o.Seed = po.Seed
	if po.Quick {
		o.TrainSamples, o.TestSamples = 360, 90
		o.Epochs, o.FineTuneEpochs = 2, 1
		o.MaxSamplesPerEpoch = 240
		o.PruneLevels = []float64{0.75, 0.9}
		o.RankFracs = []float64{0.5}
	}
	return o
}

// Prepare runs GENESIS for one network (or loads the cached result) and
// returns the chosen deployable model.
func Prepare(net string, po PrepareOptions) (*Prepared, error) {
	opts := genesisOptions(net, po)
	rep, err := genesis.Run(opts)
	if err != nil {
		return nil, err
	}
	chosen := rep.ChosenResult()
	if chosen == nil || chosen.Model == nil {
		return nil, fmt.Errorf("harness: GENESIS found no feasible configuration for %s", net)
	}
	ds, err := dnn.DatasetFor(net, opts.Seed, 4, 4)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Net: net, Report: rep, Model: chosen.Model,
		Input: ds.Test[0].X, Label: ds.Test[0].Label}
	if po.CacheDir != "" {
		_ = chosen.Model.SaveFile(cachePath(po.CacheDir, net))
	}
	return p, nil
}

// PrepareAll prepares every evaluation network.
func PrepareAll(po PrepareOptions) ([]*Prepared, error) {
	var out []*Prepared
	for _, net := range Networks() {
		p, err := Prepare(net, po)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func cachePath(dir, net string) string {
	return filepath.Join(dir, net+".qmodel")
}

// LoadCached loads a previously prepared model (without the sweep report).
func LoadCached(dir, net string, seed uint64) (*Prepared, error) {
	qm, err := dnn.LoadQuantFile(cachePath(dir, net))
	if err != nil {
		return nil, err
	}
	ds, err := dnn.DatasetFor(net, seed, 4, 4)
	if err != nil {
		return nil, err
	}
	return &Prepared{Net: net, Model: qm, Input: ds.Test[0].X, Label: ds.Test[0].Label}, nil
}

// CacheExists reports whether a cached model is present.
func CacheExists(dir, net string) bool {
	_, err := os.Stat(cachePath(dir, net))
	return err == nil
}
