package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/genesis"
)

// Prepared bundles everything the evaluation needs about one network: the
// GENESIS sweep report, the chosen deployable model, and a test input.
type Prepared struct {
	Net    string
	Report *genesis.Report
	Model  *dnn.QuantModel
	Input  []float64 // one representative test sample
	Label  int
	// CacheHit is true when the report came from the content-addressed
	// report cache, i.e. this Prepare ran zero training epochs.
	CacheHit bool
}

// Networks lists the three evaluation networks in paper order.
func Networks() []string { return []string{"mnist", "har", "okg"} }

// QuantInput returns the prepared test sample quantized for deployment —
// the form device-level consumers (measurement cells, fleet campaigns)
// feed to Runtime.Infer.
func (p *Prepared) QuantInput() []fixed.Q15 {
	return p.Model.QuantizeInput(p.Input)
}

// PrepareOptions sizes the GENESIS runs behind the evaluation.
type PrepareOptions struct {
	Seed     uint64
	Quick    bool   // small training budgets for tests
	CacheDir string // if set, reports and chosen models are cached here

	// ForceSerial pins preparation to a single goroutine end to end
	// (networks, configs, and per-example evaluation); Workers bounds the
	// per-config fan-out inside each sweep (0 = GOMAXPROCS). Neither
	// affects results — see TestGenesisParallelDeterministic.
	ForceSerial bool
	Workers     int
}

// genesisOptions builds the sweep options for a network.
func genesisOptions(net string, po PrepareOptions) genesis.Options {
	o := genesis.DefaultOptions(net)
	o.Seed = po.Seed
	o.ForceSerial = po.ForceSerial
	o.Workers = po.Workers
	if po.Quick {
		o.TrainSamples, o.TestSamples = 360, 90
		o.Epochs, o.FineTuneEpochs = 2, 1
		o.MaxSamplesPerEpoch = 240
		o.PruneLevels = []float64{0.75, 0.9}
		o.RankFracs = []float64{0.5}
	}
	return o
}

// Prepare runs GENESIS for one network — or loads the report from the
// content-addressed cache, skipping training entirely — and returns the
// chosen deployable model.
func Prepare(net string, po PrepareOptions) (*Prepared, error) {
	opts := genesisOptions(net, po)
	var rep *genesis.Report
	cacheHit := false
	if po.CacheDir != "" {
		if r := loadReportCache(po.CacheDir, opts); r != nil {
			rep, cacheHit = r, true
		}
	}
	if rep == nil {
		var err error
		rep, err = genesis.Run(opts)
		if err != nil {
			return nil, err
		}
		if po.CacheDir != "" {
			if err := saveReportCache(po.CacheDir, opts, rep); err != nil {
				return nil, fmt.Errorf("harness: caching %s report: %w", net, err)
			}
		}
	}
	chosen := rep.ChosenResult()
	if chosen == nil || chosen.Model == nil {
		return nil, fmt.Errorf("harness: GENESIS found no feasible configuration for %s", net)
	}
	ds, err := dnn.DatasetFor(net, opts.Seed, 4, 4)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Net: net, Report: rep, Model: chosen.Model,
		Input: ds.Test[0].X, Label: ds.Test[0].Label, CacheHit: cacheHit}
	if po.CacheDir != "" {
		if err := chosen.Model.SaveFile(cachePath(po.CacheDir, net)); err != nil {
			return nil, fmt.Errorf("harness: caching %s model: %w", net, err)
		}
	}
	return p, nil
}

// PrepareAll prepares every evaluation network, fanning the three sweeps
// out across goroutines (each sweep further parallelizes over its configs).
// Results are returned in Networks() order regardless of completion order.
func PrepareAll(po PrepareOptions) ([]*Prepared, error) {
	nets := Networks()
	out := make([]*Prepared, len(nets))
	if po.ForceSerial {
		for i, net := range nets {
			p, err := Prepare(net, po)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}
	errs := make([]error, len(nets))
	var wg sync.WaitGroup
	for i, net := range nets {
		wg.Add(1)
		go func(i int, net string) {
			defer wg.Done()
			out[i], errs[i] = Prepare(net, po)
		}(i, net)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: preparing %s: %w", nets[i], err)
		}
	}
	return out, nil
}

func cachePath(dir, net string) string {
	return filepath.Join(dir, net+".qmodel")
}

// LoadCached loads a previously prepared model (without the sweep report).
func LoadCached(dir, net string, seed uint64) (*Prepared, error) {
	qm, err := dnn.LoadQuantFile(cachePath(dir, net))
	if err != nil {
		return nil, err
	}
	ds, err := dnn.DatasetFor(net, seed, 4, 4)
	if err != nil {
		return nil, err
	}
	return &Prepared{Net: net, Model: qm, Input: ds.Test[0].X, Label: ds.Test[0].Label}, nil
}

// CacheExists reports whether a cached model is present.
func CacheExists(dir, net string) bool {
	_, err := os.Stat(cachePath(dir, net))
	return err == nil
}
