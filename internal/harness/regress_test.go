package harness

import (
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/sonic"
)

// TestSteadySecUsesObservedHarvest is the regression test for the
// steady-state timing bug: SteadySec amortized recharging at the nominal
// RF constant for *every* non-continuous power system, even solar, whose
// observed harvest differs by more than an order of magnitude. The fix
// divides by the run's observed mean harvest power instead.
func TestSteadySecUsesObservedHarvest(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	net := dnn.NewNetwork("synthetic", dnn.Shape{1, 1, 256}).Add(
		dnn.NewDense(rng, 128, 256),
		dnn.NewReLU(),
		dnn.NewDense(rng, 10, 128),
	)
	if _, err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	calib := make([]float64, 256)
	for i := range calib {
		calib[i] = rng.Float64()*2 - 1
	}
	qm, err := dnn.Quantize(net, [][]float64{calib})
	if err != nil {
		t.Fatal(err)
	}
	input := qm.QuantizeInput(calib)

	solar := StochasticPowers(3)[2] // solar-100uF
	res, err := Measure("synthetic", qm, sonic.SONIC{}, solar, input)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Reboots == 0 {
		t.Fatalf("want a completed run with reboots, got completed=%v reboots=%d",
			res.Completed, res.Reboots)
	}
	oldFormula := res.LiveSec + res.EnergyMJ*1e-3/energy.DefaultRFWatts
	if rel := res.SteadySec/oldFormula - 1; rel < 0.10 && rel > -0.10 {
		t.Errorf("solar SteadySec %.4fs within 10%% of the RF-constant formula %.4fs: observed harvest not used",
			res.SteadySec, oldFormula)
	}

	// The constant-RF banks must be unaffected: observed harvest of a
	// constant harvester equals the constant, so the figures don't move.
	rf := Powers()[3] // 100uF RF
	res, err = Measure("synthetic", qm, sonic.SONIC{}, rf, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reboots == 0 {
		t.Fatal("RF run should reboot")
	}
	oldFormula = res.LiveSec + res.EnergyMJ*1e-3/energy.DefaultRFWatts
	if rel := res.SteadySec/oldFormula - 1; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("RF SteadySec %.6fs moved from the constant formula %.6fs", res.SteadySec, oldFormula)
	}
}

// TestExtensionsRendersDNC is the regression test for the table-abort bug:
// a single row whose runtime browns out forever used to error out the whole
// Extensions table. It must render as "DNC" and later rows must survive.
func TestExtensionsRendersDNC(t *testing.T) {
	p := prepQuick(t, "har")
	cont := Powers()[0]
	// An unprotected baseline on a 100 µF bank restarts from scratch every
	// charge and never completes (§2.1) — the guaranteed-DNC row.
	tiny := Powers()[3]
	tab, err := extensionsTable(p, cont, []extRow{
		{baseline.Base{}, tiny, false},
		{sonic.SONIC{}, cont, false},
	})
	if err != nil {
		t.Fatalf("DNC row aborted the table: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (DNC row plus surviving row)", len(tab.Rows))
	}
	if tab.Rows[0][2] != "DNC" || tab.Rows[0][3] != "-" {
		t.Errorf("incomplete row rendered as %v, want energy DNC and ratio -", tab.Rows[0])
	}
	if tab.Rows[1][2] == "DNC" || !strings.HasSuffix(tab.Rows[1][3], "x") {
		t.Errorf("surviving row mangled: %v", tab.Rows[1])
	}
}

// TestScoreModelPropagatesDeployError is the regression test for the §5.1
// score bug: Deploy/Infer failures were swallowed and scored as 0 IMpJ /
// 0 J. A model whose weights exceed FRAM must surface the deploy error.
func TestScoreModelPropagatesDeployError(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	net := dnn.NewNetwork("oversized", dnn.Shape{1, 1, 400}).Add(
		dnn.NewDense(rng, 400, 400), // 160k weights = 320 KB > 256 KB FRAM
	)
	if _, err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	calib := make([]float64, 400)
	for i := range calib {
		calib[i] = rng.Float64()
	}
	qm, err := dnn.Quantize(net, [][]float64{calib})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := scoreModel(qm, 0.9, calib); err == nil {
		t.Fatal("oversized model scored without error; deploy failure swallowed")
	}
}
