package harness

import (
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/sonic"
	"repro/internal/tails"
	"repro/internal/trace"
)

// PowerSpec names a power system and builds fresh instances of it. The
// declarative energy.SystemSpec is the single source of truth for what
// the system is — the same vocabulary fleet campaigns and the serving API
// use — so the Fig. 9 harness, the CLIs, and fleet specs can no longer
// drift apart on capacitor sizes or harvester parameters. Seed feeds the
// harvester RNG of stochastic systems; deterministic systems ignore it,
// so the zero value is fine for the paper's RF bank.
type PowerSpec struct {
	Name string
	Seed uint64
	// Spec declares the power system (capacitor, harvester class, params).
	Spec energy.SystemSpec
	// New, when non-nil, overrides Spec for systems the declarative
	// vocabulary cannot express — e.g. test-only fault injectors.
	New func(seed uint64) energy.System
}

// Make builds a fresh instance of the power system from the spec's seed.
func (p PowerSpec) Make() energy.System {
	if p.New != nil {
		return p.New(p.Seed)
	}
	sys, err := p.Spec.New(p.Seed)
	if err != nil {
		// Powers()/StochasticPowers() only hand out valid specs; a bad
		// hand-rolled spec is a programming error, not a runtime condition.
		panic("harness: power spec " + p.Name + ": " + err.Error())
	}
	return sys
}

// Powers returns the paper's four power systems (§8): continuous, and RF
// harvesting with 50 mF, 1 mF, and 100 µF capacitor banks.
func Powers() []PowerSpec {
	return []PowerSpec{
		{Name: "cont", Spec: energy.SystemSpec{Kind: "cont"}},
		{Name: "50mF", Spec: energy.SystemSpec{Kind: "const", CapFarads: 50e-3}},
		{Name: "1mF", Spec: energy.SystemSpec{Kind: "const", CapFarads: 1e-3}},
		{Name: "100uF", Spec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
	}
}

// StochasticPowers returns variable-harvest power systems whose RNG
// sequences are fully determined by seed, so stochastic runs — and their
// traces — reproduce from one CLI value: a lognormally-varying RF
// harvester on the 100 µF and 1 mF banks, and a diurnal solar harvester
// on the 100 µF bank.
func StochasticPowers(seed uint64) []PowerSpec {
	return []PowerSpec{
		{Name: "stoch-100uF", Seed: seed, Spec: energy.SystemSpec{Kind: "stoch", CapFarads: 100e-6}},
		{Name: "stoch-1mF", Seed: seed, Spec: energy.SystemSpec{Kind: "stoch", CapFarads: 1e-3}},
		{Name: "solar-100uF", Seed: seed, Spec: energy.SystemSpec{Kind: "solar", CapFarads: 100e-6, Watts: 5e-3}},
	}
}

// Runtimes returns the six implementations of Fig. 9: the naive baseline,
// three Alpaca tilings, SONIC, and TAILS.
func Runtimes() []core.Runtime {
	return []core.Runtime{
		baseline.Base{},
		baseline.Tile{TileSize: 8},
		baseline.Tile{TileSize: 32},
		baseline.Tile{TileSize: 128},
		sonic.SONIC{},
		tails.TAILS{},
	}
}

// TapeRuntimes returns the same six implementations with the pre-decoded
// op-tape executors selected: bit-identical results (enforced by
// TestTapeInterpreterDifferential), faster host simulation.
func TapeRuntimes() []core.Runtime {
	return []core.Runtime{
		baseline.Base{Tape: true},
		baseline.Tile{TileSize: 8, Tape: true},
		baseline.Tile{TileSize: 32, Tape: true},
		baseline.Tile{TileSize: 128, Tape: true},
		sonic.SONIC{Tape: true},
		tails.TAILS{Tape: true},
	}
}

// RunResult is one measured (network, runtime, power) cell.
type RunResult struct {
	Net, Runtime, Power string
	Completed           bool

	LiveSec   float64
	DeadSec   float64
	SteadySec float64 // live + consumed-energy/harvest-power (see below)
	EnergyMJ  float64
	Reboots   int
	Predicted int

	// Wasted-work aggregates, filled only by MeasureTraced: durable
	// commits observed, and the re-executed cycles/energy between each
	// charge cycle's last commit and its brown-out.
	Commits        int
	WastedCycles   int64
	WastedEnergyNJ float64

	Sections map[mcu.Section]*mcu.SectionStats
	OpEnergy [mcu.NumOps]float64
	OpCount  [mcu.NumOps]int64
	ClockHz  float64
}

// Measure deploys the model on a fresh device with the given power system
// and runs one inference under the given runtime.
//
// SteadySec reports the steady-state inference time: live time plus the
// dead time implied by harvesting every consumed joule at the RF
// harvester's power. A single simulated run starts from a charged
// capacitor — free energy that large banks would amortize over many
// inferences — so the steady-state figure is what the paper's repeated
// measurements observe. For continuous power SteadySec equals live time.
func Measure(net string, qm *dnn.QuantModel, rt core.Runtime, p PowerSpec, input []fixed.Q15) (RunResult, error) {
	return measure(net, qm, rt, p, input, nil, false)
}

// MeasureScalar is Measure with the fused bulk kernels pinned off
// (Device.NoFuse), forcing the scalar op-by-op path. Results are
// bit-identical to Measure's (enforced by TestFusedScalarDifferential);
// the bench tool uses the pair to price the fused fast path.
func MeasureScalar(net string, qm *dnn.QuantModel, rt core.Runtime, p PowerSpec, input []fixed.Q15) (RunResult, error) {
	return measure(net, qm, rt, p, input, nil, true)
}

// MeasureTraced is Measure with execution tracing enabled: events are
// recorded into buf (a fresh small ring if nil) and the run's wasted-work
// analysis fills the RunResult's Commits/Wasted* fields. The returned
// Analysis gives the full per-charge-cycle breakdown; its aggregates are
// exact even when the ring overwrote old events.
func MeasureTraced(net string, qm *dnn.QuantModel, rt core.Runtime, p PowerSpec,
	input []fixed.Q15, buf *trace.Buffer) (RunResult, *trace.Analysis, error) {
	if buf == nil {
		buf = trace.NewBuffer(4096)
	}
	res, err := measure(net, qm, rt, p, input, buf, false)
	a := buf.Analysis()
	res.Commits = a.Commits
	res.WastedCycles = a.TotalWastedCycles
	res.WastedEnergyNJ = a.TotalWastedEnergyNJ
	return res, a, err
}

func measure(net string, qm *dnn.QuantModel, rt core.Runtime, p PowerSpec,
	input []fixed.Q15, tracer *trace.Buffer, noFuse bool) (RunResult, error) {
	dev := mcu.New(p.Make())
	dev.NoFuse = noFuse
	if tracer != nil {
		dev.SetTracer(tracer)
	}
	img, err := core.Deploy(dev, qm)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: deploy %s: %w", net, err)
	}
	logits, ierr := rt.Infer(img, input)
	dev.FlushTrace() // runtimes flush on success; cover the DNC path too
	res := RunResult{Net: net, Runtime: rt.Name(), Power: p.Name, ClockHz: dev.Cost.ClockHz}
	st := dev.Stats()
	res.LiveSec = st.LiveSeconds(dev.Cost.ClockHz)
	res.DeadSec = st.DeadSeconds
	res.EnergyMJ = st.EnergyMJ()
	res.Reboots = st.Reboots
	res.SteadySec = res.LiveSec
	if p.Name != "cont" {
		res.SteadySec += st.EnergyNJ() * 1e-9 / harvestWatts(dev.Power)
	}
	res.Sections = st.Sections
	res.OpEnergy = st.OpEnergy()
	res.OpCount = st.OpCount
	if ierr != nil {
		if errors.Is(ierr, mcu.ErrDoesNotComplete) {
			res.Completed = false
			return res, nil
		}
		return res, ierr
	}
	res.Completed = true
	res.Predicted = core.Argmax(logits)
	return res, nil
}

// harvestWatts returns the harvest power used to amortize recharging into
// SteadySec: the power system's *observed* mean harvest (recharged energy
// over measured dead time) whenever the run recharged at least once, and
// the nominal RF constant otherwise. Using the constant for every
// non-continuous power was a bug: for solar or stochastic harvesters the
// observed mean differs from the RF figure by up to an order of magnitude,
// and the steady-state amortization must reflect what the run actually
// harvested.
func harvestWatts(p energy.System) float64 {
	if op, ok := p.(interface{ ObservedHarvestW() float64 }); ok {
		if w := op.ObservedHarvestW(); w > 0 {
			return w
		}
	}
	return energy.DefaultRFWatts
}

// LayerSections aggregates a run's sections by layer label, returning
// (layer -> phase -> energy nJ) and the ordered layer labels seen.
func LayerSections(res RunResult) (map[string]map[mcu.Phase]float64, []string) {
	agg := make(map[string]map[mcu.Phase]float64)
	for sec, st := range res.Sections {
		m := agg[sec.Layer]
		if m == nil {
			m = make(map[mcu.Phase]float64)
			agg[sec.Layer] = m
		}
		m[sec.Phase] += st.EnergyNJ()
	}
	order := []string{"conv1", "conv2", "conv3", "fc", "other", "boot"}
	var present []string
	for _, l := range order {
		if _, ok := agg[l]; ok {
			present = append(present, l)
		}
	}
	return agg, present
}
