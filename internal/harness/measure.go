package harness

import (
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// PowerSpec names a power system and builds fresh instances of it.
type PowerSpec struct {
	Name string
	Make func() energy.System
}

// Powers returns the paper's four power systems (§8): continuous, and RF
// harvesting with 50 mF, 1 mF, and 100 µF capacitor banks.
func Powers() []PowerSpec {
	rf := func(c energy.Capacitor) func() energy.System {
		return func() energy.System {
			return energy.NewIntermittent(c, energy.ConstantHarvester{Watts: energy.DefaultRFWatts})
		}
	}
	return []PowerSpec{
		{Name: "cont", Make: func() energy.System { return energy.Continuous{} }},
		{Name: "50mF", Make: rf(energy.Cap50mF)},
		{Name: "1mF", Make: rf(energy.Cap1mF)},
		{Name: "100uF", Make: rf(energy.Cap100uF)},
	}
}

// Runtimes returns the six implementations of Fig. 9: the naive baseline,
// three Alpaca tilings, SONIC, and TAILS.
func Runtimes() []core.Runtime {
	return []core.Runtime{
		baseline.Base{},
		baseline.Tile{TileSize: 8},
		baseline.Tile{TileSize: 32},
		baseline.Tile{TileSize: 128},
		sonic.SONIC{},
		tails.TAILS{},
	}
}

// RunResult is one measured (network, runtime, power) cell.
type RunResult struct {
	Net, Runtime, Power string
	Completed           bool

	LiveSec   float64
	DeadSec   float64
	SteadySec float64 // live + consumed-energy/harvest-power (see below)
	EnergyMJ  float64
	Reboots   int
	Predicted int

	Sections map[mcu.Section]*mcu.SectionStats
	OpEnergy [mcu.NumOps]float64
	OpCount  [mcu.NumOps]int64
	ClockHz  float64
}

// Measure deploys the model on a fresh device with the given power system
// and runs one inference under the given runtime.
//
// SteadySec reports the steady-state inference time: live time plus the
// dead time implied by harvesting every consumed joule at the RF
// harvester's power. A single simulated run starts from a charged
// capacitor — free energy that large banks would amortize over many
// inferences — so the steady-state figure is what the paper's repeated
// measurements observe. For continuous power SteadySec equals live time.
func Measure(net string, qm *dnn.QuantModel, rt core.Runtime, p PowerSpec, input []fixed.Q15) (RunResult, error) {
	dev := mcu.New(p.Make())
	img, err := core.Deploy(dev, qm)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: deploy %s: %w", net, err)
	}
	logits, ierr := rt.Infer(img, input)
	res := RunResult{Net: net, Runtime: rt.Name(), Power: p.Name, ClockHz: dev.Cost.ClockHz}
	st := dev.Stats()
	res.LiveSec = st.LiveSeconds(dev.Cost.ClockHz)
	res.DeadSec = st.DeadSeconds
	res.EnergyMJ = st.EnergyMJ()
	res.Reboots = st.Reboots
	res.SteadySec = res.LiveSec
	if p.Name != "cont" {
		res.SteadySec += st.EnergyNJ * 1e-9 / energy.DefaultRFWatts
	}
	res.Sections = st.Sections
	res.OpEnergy = st.OpEnergy
	res.OpCount = st.OpCount
	if ierr != nil {
		if errors.Is(ierr, mcu.ErrDoesNotComplete) {
			res.Completed = false
			return res, nil
		}
		return res, ierr
	}
	res.Completed = true
	res.Predicted = core.Argmax(logits)
	return res, nil
}

// LayerSections aggregates a run's sections by layer label, returning
// (layer -> phase -> energy nJ) and the ordered layer labels seen.
func LayerSections(res RunResult) (map[string]map[mcu.Phase]float64, []string) {
	agg := make(map[string]map[mcu.Phase]float64)
	for sec, st := range res.Sections {
		m := agg[sec.Layer]
		if m == nil {
			m = make(map[mcu.Phase]float64)
			agg[sec.Layer] = m
		}
		m[sec.Phase] += st.EnergyNJ
	}
	order := []string{"conv1", "conv2", "conv3", "fc", "other", "boot"}
	var present []string
	for _, l := range order {
		if _, ok := agg[l]; ok {
			present = append(present, l)
		}
	}
	return agg, present
}
