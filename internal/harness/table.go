// Package harness runs the paper's evaluation: it prepares the three
// networks with GENESIS, measures every inference implementation on every
// power system on the device model, and renders the series behind each of
// the paper's tables and figures as text tables and CSV.
package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one table or one figure's series.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV returns the table in comma-separated form.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
