package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/intermittest"
	"repro/internal/mcu"
)

// diffObservation is everything a run makes observable: the logits, the
// completion outcome, the full device statistics, and the WAR shadow
// verdict. The bulk-charge fast path must reproduce all of it bit-for-bit.
type diffObservation struct {
	Logits   []fixed.Q15
	DNC      bool
	Err      string
	Stats    mcu.Stats
	WARCount int
	WARs     []mcu.WARViolation
}

// diffRun executes one inference on a fresh device and captures the full
// observation. scalar selects the pre-optimization per-op charging path via
// Device.ForceScalar.
func diffRun(t *testing.T, qm *dnn.QuantModel, qin []fixed.Q15,
	rt core.Runtime, power energy.System, scalar bool) diffObservation {
	t.Helper()
	dev := mcu.New(power)
	dev.ForceScalar = scalar
	dev.EnableWARCheck()
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	logits, ierr := rt.Infer(img, qin)
	obs := diffObservation{
		Logits:   logits,
		Stats:    *dev.Stats(),
		WARCount: dev.WARCount(),
		WARs:     dev.WARViolations(),
	}
	if ierr != nil {
		if errors.Is(ierr, mcu.ErrDoesNotComplete) {
			obs.DNC = true
		} else {
			obs.Err = ierr.Error()
		}
	}
	return obs
}

// diffCompare asserts two observations are bit-identical, field by field so
// a divergence names what broke rather than dumping two structs.
func diffCompare(t *testing.T, label string, fast, scalar diffObservation) {
	t.Helper()
	if !reflect.DeepEqual(fast.Logits, scalar.Logits) {
		t.Errorf("%s: logits diverge: fast=%v scalar=%v", label, fast.Logits, scalar.Logits)
	}
	if fast.DNC != scalar.DNC || fast.Err != scalar.Err {
		t.Errorf("%s: outcome diverges: fast=(dnc=%v err=%q) scalar=(dnc=%v err=%q)",
			label, fast.DNC, fast.Err, scalar.DNC, scalar.Err)
	}
	fs, ss := fast.Stats, scalar.Stats
	if fs.LiveCycles != ss.LiveCycles {
		t.Errorf("%s: LiveCycles: fast=%d scalar=%d", label, fs.LiveCycles, ss.LiveCycles)
	}
	if fs.EnergyPJ != ss.EnergyPJ {
		t.Errorf("%s: EnergyPJ: fast=%d scalar=%d", label, fs.EnergyPJ, ss.EnergyPJ)
	}
	if fs.DeadSeconds != ss.DeadSeconds {
		t.Errorf("%s: DeadSeconds: fast=%v scalar=%v", label, fs.DeadSeconds, ss.DeadSeconds)
	}
	if fs.Reboots != ss.Reboots {
		t.Errorf("%s: Reboots: fast=%d scalar=%d", label, fs.Reboots, ss.Reboots)
	}
	if fs.OpCount != ss.OpCount {
		t.Errorf("%s: OpCount: fast=%v scalar=%v", label, fs.OpCount, ss.OpCount)
	}
	if fs.OpEnergyPJ != ss.OpEnergyPJ {
		t.Errorf("%s: OpEnergyPJ: fast=%v scalar=%v", label, fs.OpEnergyPJ, ss.OpEnergyPJ)
	}
	if fs.MaxRegionOps != ss.MaxRegionOps {
		t.Errorf("%s: MaxRegionOps: fast=%d scalar=%d", label, fs.MaxRegionOps, ss.MaxRegionOps)
	}
	if !reflect.DeepEqual(fs.Sections, ss.Sections) {
		t.Errorf("%s: per-section stats diverge", label)
	}
	if fast.WARCount != scalar.WARCount || !reflect.DeepEqual(fast.WARs, scalar.WARs) {
		t.Errorf("%s: WAR verdict diverges: fast=%d scalar=%d",
			label, fast.WARCount, scalar.WARCount)
	}
}

// TestBulkScalarDifferential is the bulk-charge fast path's oracle: for
// every Fig. 9 runtime, under continuous power and 50 fuzzed brown-out
// schedules each, a run with the O(1) bulk accounting must be bit-identical
// — logits, cycles, integer-picojoule energy, per-op counts, per-section
// stats, MaxRegionOps, reboot count, and WAR shadow verdicts — to the same
// run with Device.ForceScalar pinning the original per-op charging path.
//
// This test is the safety net for the whole optimization and must never be
// skipped (CI greps for its presence in -v output).
func TestBulkScalarDifferential(t *testing.T) {
	const fuzzedSchedules = 50
	qm, x := intermittest.TinyModel(1)
	qin := qm.QuantizeInput(x)

	for _, rt := range Runtimes() {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			// Continuous power: the pure compute path, no reboots.
			fast := diffRun(t, qm, qin, rt, energy.Continuous{}, false)
			scalar := diffRun(t, qm, qin, rt, energy.Continuous{}, true)
			diffCompare(t, "cont", fast, scalar)

			// Fuzzed brown-out schedules. Gaps sit above the runtime's
			// liveness floor (twice the largest atomic region, so each
			// charge cycle can commit) but are otherwise random, then a
			// tail of tight gaps stresses repeated reboot/replay paths.
			totalOps := int64(0)
			for _, n := range fast.Stats.OpCount {
				totalOps += n
			}
			floor := int(2*fast.Stats.MaxRegionOps) + 50
			rng := rand.New(rand.NewPCG(0xd1ff, uint64(totalOps)))
			for s := 0; s < fuzzedSchedules; s++ {
				gaps := make([]int, 1+rng.IntN(4))
				for i := range gaps {
					gaps[i] = floor + rng.IntN(int(totalOps))
				}
				if s%5 == 4 {
					// Every fifth schedule: gaps near the floor, maximizing
					// reboot count and mid-kernel brown-out coverage.
					for i := range gaps {
						gaps[i] = floor + rng.IntN(floor)
					}
				}
				label := fmt.Sprintf("sched%02d%v", s, gaps)
				fast := diffRun(t, qm, qin, rt, energy.NewFailSchedule(gaps), false)
				scalar := diffRun(t, qm, qin, rt, energy.NewFailSchedule(gaps), true)
				diffCompare(t, label, fast, scalar)
			}
		})
	}
}
