package harness

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/trace"
)

// TestTraceNeutrality checks that enabling tracing is purely
// observational: under deterministic failure injection, every runtime
// produces the same prediction, stats, and completion status traced and
// untraced.
func TestTraceNeutrality(t *testing.T) {
	p := prepQuick(t, "har")
	input := p.Model.QuantizeInput(p.Input)
	// Fail every 60k operations: enough for the protected runtimes to make
	// progress between failures, and several reboots per inference.
	failing := PowerSpec{Name: "failinj", New: func(uint64) energy.System {
		return energy.NewFailAfterOps(60000, 60000)
	}}
	runtimes := append(Runtimes(), core.Runtime(checkpoint.Checkpoint{Interval: 64}))
	for _, rt := range runtimes {
		plain, perr := Measure(p.Net, p.Model, rt, failing, input)
		buf := trace.NewBuffer(1024) // small, so the ring wraps
		traced, a, terr := MeasureTraced(p.Net, p.Model, rt, failing, input, buf)
		if (perr == nil) != (terr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", rt.Name(), perr, terr)
		}
		if perr != nil {
			continue
		}
		if plain.Completed != traced.Completed || plain.Predicted != traced.Predicted {
			t.Errorf("%s: completion/prediction differ traced (%v/%d) vs untraced (%v/%d)",
				rt.Name(), traced.Completed, traced.Predicted, plain.Completed, plain.Predicted)
		}
		if plain.LiveSec != traced.LiveSec || plain.EnergyMJ != traced.EnergyMJ ||
			plain.Reboots != traced.Reboots || plain.DeadSec != traced.DeadSec {
			t.Errorf("%s: stats differ traced vs untraced:\n  %+v\n  %+v", rt.Name(), traced, plain)
		}
		// The online aggregation must agree with the device's own counters.
		if a.Reboots != plain.Reboots {
			t.Errorf("%s: analysis reboots %d vs device %d", rt.Name(), a.Reboots, plain.Reboots)
		}
		if plain.Completed && plain.Reboots > 0 && traced.Commits == 0 {
			t.Errorf("%s: completed through %d reboots with no commits traced", rt.Name(), plain.Reboots)
		}
	}
}

// TestWastedWorkTileVsSONIC reproduces the tentpole acceptance claim: on
// the paper's 100 µF system, coarse-grained Tile-128 wastes more energy
// per charge cycle than SONIC's loop continuation, because a task that
// exceeds the buffer re-executes from its start every cycle while SONIC
// loses at most the in-flight iteration.
func TestWastedWorkTileVsSONIC(t *testing.T) {
	p := prepQuick(t, "har")
	input := p.Model.QuantizeInput(p.Input)
	uf100 := Powers()[3]
	if uf100.Name != "100uF" {
		t.Fatalf("power order changed: %s", uf100.Name)
	}
	_, sonicA, err := MeasureTraced(p.Net, p.Model, Runtimes()[4], uf100, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, tileA, err := MeasureTraced(p.Net, p.Model, Runtimes()[3], uf100, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sonicA.Reboots == 0 || tileA.Reboots == 0 {
		t.Fatalf("expected reboots at 100uF: sonic %d, tile-128 %d", sonicA.Reboots, tileA.Reboots)
	}
	sw, tw := sonicA.WastedEnergyPerCycleNJ(), tileA.WastedEnergyPerCycleNJ()
	if tw <= sw {
		t.Errorf("tile-128 should waste more per charge cycle: tile %.0f nJ vs sonic %.0f nJ", tw, sw)
	}
}

// TestStochasticPowersReproducible checks the CLI-facing property the
// seed plumbing exists for: same seed, same run; different seed,
// (almost surely) different power schedule.
func TestStochasticPowersReproducible(t *testing.T) {
	p := prepQuick(t, "har")
	input := p.Model.QuantizeInput(p.Input)
	spec := StochasticPowers(7)[0]
	a, err := Measure(p.Net, p.Model, Runtimes()[4], spec, input)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(p.Net, p.Model, Runtimes()[4], spec, input)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeadSec != b.DeadSec || a.Reboots != b.Reboots {
		t.Errorf("same seed must reproduce: %+v vs %+v", a, b)
	}
	spec2 := StochasticPowers(8)[0]
	c, err := Measure(p.Net, p.Model, Runtimes()[4], spec2, input)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeadSec == c.DeadSec {
		t.Errorf("different seeds gave identical dead time %v", a.DeadSec)
	}
}

// TestFindIndexed checks Find after RunAll, including misses.
func TestFindIndexed(t *testing.T) {
	ev := &Eval{Results: []RunResult{
		{Net: "har", Runtime: "sonic", Power: "cont", Reboots: 1},
		{Net: "har", Runtime: "tails", Power: "100uF", Reboots: 2},
	}}
	if r := ev.Find("har", "tails", "100uF"); r == nil || r.Reboots != 2 {
		t.Errorf("Find hit failed: %+v", r)
	}
	if r := ev.Find("har", "sonic", "1mF"); r != nil {
		t.Errorf("Find miss returned %+v", r)
	}
}
