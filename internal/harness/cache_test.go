package harness

import (
	"os"
	"testing"

	"repro/internal/dnn"
)

// TestReportCacheLifecycle drives the content-addressed report cache
// through its states: cold miss (trains, writes), warm hit (zero training
// epochs), options-hash invalidation (retrains), and corrupt-entry
// fallback (retrains and rewrites).
func TestReportCacheLifecycle(t *testing.T) {
	dir := t.TempDir()
	po := PrepareOptions{Seed: 5, Quick: true, CacheDir: dir}

	e0 := dnn.EpochsRun()
	cold, err := Prepare("har", po)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("cold run reported a cache hit")
	}
	if dnn.EpochsRun() == e0 {
		t.Error("cold run performed no training")
	}

	e1 := dnn.EpochsRun()
	warm, err := Prepare("har", po)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("warm run missed the cache")
	}
	if got := dnn.EpochsRun(); got != e1 {
		t.Errorf("warm run trained %d epochs, want 0", got-e1)
	}
	if warm.Report.Chosen != cold.Report.Chosen ||
		len(warm.Report.Results) != len(cold.Report.Results) {
		t.Errorf("warm report differs: chosen %d/%d results %d/%d",
			warm.Report.Chosen, cold.Report.Chosen,
			len(warm.Report.Results), len(cold.Report.Results))
	}
	for i := range cold.Report.Results {
		c, w := &cold.Report.Results[i], &warm.Report.Results[i]
		if c.Accuracy != w.Accuracy || c.EInferJ != w.EInferJ || c.ParamBytes != w.ParamBytes {
			t.Errorf("result %d differs after cache round-trip", i)
		}
	}

	// Changing any result-affecting option must change the key and retrain.
	changed := po
	changed.Seed = 6
	e2 := dnn.EpochsRun()
	inv, err := Prepare("har", changed)
	if err != nil {
		t.Fatal(err)
	}
	if inv.CacheHit {
		t.Error("changed options still hit the cache")
	}
	if dnn.EpochsRun() == e2 {
		t.Error("invalidated run performed no training")
	}

	// A corrupt entry must fall back to retraining, then self-heal.
	path := reportCachePath(dir, genesisOptions("har", po))
	if err := os.WriteFile(path, []byte("not a gob record"), 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := dnn.EpochsRun()
	rec, err := Prepare("har", po)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CacheHit {
		t.Error("corrupt entry reported as a hit")
	}
	if dnn.EpochsRun() == e3 {
		t.Error("corrupt-entry run performed no training")
	}
	again, err := Prepare("har", po)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("cache not rewritten after corrupt-entry fallback")
	}
}

// TestOptionsHashIgnoresParallelismKnobs pins the cache-key contract:
// Workers and ForceSerial do not affect results (the determinism oracle
// proves it), so serial and parallel runs must share cache entries.
func TestOptionsHashIgnoresParallelismKnobs(t *testing.T) {
	a := genesisOptions("har", PrepareOptions{Seed: 5, Quick: true})
	b := a
	b.Workers = 7
	b.ForceSerial = true
	if OptionsHash(a) != OptionsHash(b) {
		t.Error("parallelism knobs changed the cache key")
	}
	c := a
	c.FRAMBudgetBytes++
	if OptionsHash(a) == OptionsHash(c) {
		t.Error("FRAM budget change did not change the cache key")
	}
	d := a
	d.PruneLevels = append([]float64{0.1}, a.PruneLevels...)
	if OptionsHash(a) == OptionsHash(d) {
		t.Error("prune-grid change did not change the cache key")
	}
}
