package harness

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/genesis"
	"repro/internal/imodel"
	"repro/internal/mcu"
	"repro/internal/sonic"
	"repro/internal/svm"
	"repro/internal/tails"
	"repro/internal/trace"
)

// Fig1 regenerates Fig. 1: IMpJ versus inference accuracy in the wildlife
// monitoring case study, communicating the full sensor reading.
func Fig1(points int) *Table {
	return impjSweep(points, false,
		"Fig 1: IMpJ vs accuracy, sending full image (wildlife monitoring)")
}

// Fig2 regenerates Fig. 2: the same sweep when only the inference result is
// communicated (Ecomm reduced 98x).
func Fig2(points int) *Table {
	return impjSweep(points, true,
		"Fig 2: IMpJ vs accuracy, sending only the inference result")
}

func impjSweep(points int, resultOnly bool, title string) *Table {
	t := &Table{Title: title,
		Header: []string{"accuracy", "always-send", "ideal", "naive-inference", "sonic-tails"}}
	base := imodel.WildlifeDefaults()
	commBase := base
	if resultOnly {
		base.EComm /= imodel.ResultOnlyCommFactor
	}
	for i := 0; i <= points; i++ {
		a := float64(i) / float64(points)
		naive := base
		naive.TP, naive.TN, naive.EInfer = a, a, imodel.EInferNaive
		st := base
		st.TP, st.TN, st.EInfer = a, a, imodel.EInferSONICTAILS
		// "Always send" pays full communication regardless of the scheme.
		t.AddRow(a, imodel.Baseline(commBase)*1e3, imodel.Ideal(base)*1e3,
			imodel.Inference(naive)*1e3, imodel.Inference(st)*1e3)
	}
	t.Note = "IMpJ in interesting messages per kilojoule (x1000), as in the paper's axes."
	return t
}

// Table1 renders the parameter glossary of the application model.
func Table1() *Table {
	t := &Table{Title: "Table 1: application model parameters",
		Header: []string{"parameter", "description", "wildlife value"}}
	w := imodel.WildlifeDefaults()
	t.AddRow("p", "base rate of interesting events", w.P)
	t.AddRow("tp", "true positive rate of inference", "swept")
	t.AddRow("tn", "true negative rate of inference", "swept")
	t.AddRow("Esense", "energy per sensor reading (J)", w.ESense)
	t.AddRow("Ecomm", "energy per communicated reading (J)", w.EComm)
	t.AddRow("Einfer", "energy per inference (J)", "measured per config")
	return t
}

// Table2 renders the per-network summary of the GENESIS-chosen
// configurations: layer inventory, compression, and accuracy.
func Table2(prepared []*Prepared) *Table {
	t := &Table{Title: "Table 2: networks and chosen compression",
		Header: []string{"network", "layer", "geometry", "weight-bytes", "technique", "accuracy", "compression"}}
	for _, p := range prepared {
		if p.Report == nil {
			continue
		}
		if n := erroredConfigs(p.Report.Results); n > 0 {
			if t.Note != "" {
				t.Note += "\n"
			}
			t.Note += fmt.Sprintf("%s: %d configuration(s) failed to evaluate (see Fig 4 for details)", p.Net, n)
		}
		chosen := p.Report.ChosenResult()
		uncompressed := p.Report.Results[0]
		ratio := float64(uncompressed.ParamBytes) / float64(chosen.ParamBytes)
		first := true
		for i := range p.Model.Layers {
			ql := &p.Model.Layers[i]
			var geom string
			switch ql.Kind {
			case dnn.QConv:
				geom = fmt.Sprintf("%dx%dx%dx%d", ql.F, ql.C, ql.KH, ql.KW)
				if ql.NZ != nil {
					geom += fmt.Sprintf(" (%d nz)", len(ql.NZ))
				}
			case dnn.QDense, dnn.QSparseDense:
				geom = fmt.Sprintf("%dx%d", ql.Out, ql.In)
				if ql.Kind == dnn.QSparseDense {
					geom += fmt.Sprintf(" (%d nz)", len(ql.W))
				}
			default:
				continue
			}
			acc, comp := "", ""
			if first {
				acc = fmt.Sprintf("%.1f%%", chosen.Accuracy*100)
				comp = fmt.Sprintf("%.1fx (%s)", ratio, chosen.Config.Name())
				first = false
			}
			t.AddRow(p.Net, ql.Kind.String(), geom, ql.WeightWords()*2, chosen.Config.Name(), acc, comp)
		}
	}
	return t
}

// erroredConfigs counts sweep results that failed to evaluate.
func erroredConfigs(results []genesis.Result) int {
	n := 0
	for i := range results {
		if results[i].Err != "" {
			n++
		}
	}
	return n
}

// Fig4 renders the accuracy-versus-MACs exploration for one network,
// marking feasibility and Pareto-front membership per technique family.
func Fig4(p *Prepared) *Table {
	t := &Table{Title: fmt.Sprintf("Fig 4 (%s): accuracy vs MAC ops", p.Net),
		Header: []string{"config", "technique", "MACs", "accuracy", "feasible", "pareto"}}
	res := p.Report.Results
	inFront := func(front []int, i int) bool {
		for _, f := range front {
			if f == i {
				return true
			}
		}
		return false
	}
	fronts := map[string][]int{
		"prune":    genesis.ParetoFront(res, genesis.ByTechnique(res, genesis.TechPrune)),
		"separate": genesis.ParetoFront(res, genesis.ByTechnique(res, genesis.TechSeparate)),
		"both":     genesis.ParetoFront(res, genesis.ByTechnique(res, genesis.TechPrune, genesis.TechSeparate, genesis.TechBoth)),
	}
	for i := range res {
		r := &res[i]
		if r.Err != "" {
			// Failed configs would otherwise render as fake 0-MAC,
			// 0-accuracy rows; show the failure instead.
			t.AddRow(r.Config.Name(), string(r.Config.Technique), "-", "-",
				"error", r.Err)
			continue
		}
		mark := ""
		for name, front := range fronts {
			if inFront(front, i) {
				if mark != "" {
					mark += "+"
				}
				mark += name
			}
		}
		t.AddRow(r.Config.Name(), string(r.Config.Technique), r.MACs,
			r.Accuracy, fmt.Sprint(r.Feasible), mark)
	}
	return t
}

// Fig5 renders the IMpJ-versus-inference-energy view of the same sweep and
// marks GENESIS's chosen configuration.
func Fig5(p *Prepared) *Table {
	t := &Table{Title: fmt.Sprintf("Fig 5 (%s): IMpJ vs energy per inference", p.Net),
		Header: []string{"config", "Einfer-mJ", "tp", "tn", "IMpJ", "feasible", "chosen"}}
	for i := range p.Report.Results {
		r := &p.Report.Results[i]
		if r.Err != "" {
			t.AddRow(r.Config.Name(), "-", "-", "-", "-", "error", r.Err)
			continue
		}
		chosen := ""
		if i == p.Report.Chosen {
			chosen = "<== chosen"
		}
		t.AddRow(r.Config.Name(), r.EInferJ*1e3, r.TP, r.TN, r.IMpJ,
			fmt.Sprint(r.Feasible), chosen)
	}
	return t
}

// Eval holds every measured (net, runtime, power) cell.
type Eval struct {
	Prepared []*Prepared
	Results  []RunResult

	index map[cellKey]int // lazily built by Find
}

type cellKey struct{ net, rt, power string }

// RunAll measures every runtime on every power system for every prepared
// network. Cells are independent simulated devices, so they run in
// parallel; results keep a deterministic order.
func RunAll(prepared []*Prepared) (*Eval, error) {
	type cell struct {
		p  *Prepared
		rt core.Runtime
		pw PowerSpec
	}
	var cells []cell
	for _, p := range prepared {
		for _, rt := range Runtimes() {
			for _, pw := range Powers() {
				cells = append(cells, cell{p, rt, pw})
			}
		}
	}
	ev := &Eval{Prepared: prepared}
	ev.Results = make([]RunResult, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			input := c.p.Model.QuantizeInput(c.p.Input)
			// Analysis-only tracing: the sweep consumes just the
			// commit/wasted-work aggregates, so skip the per-iteration
			// event kinds (loop-index, privatize, op batches) entirely.
			buf := trace.NewAnalysisBuffer(1024)
			ev.Results[i], _, errs[i] = MeasureTraced(c.p.Net, c.p.Model, c.rt, c.pw, input, buf)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// Find returns the cell for (net, runtime, power), or nil. The lookup
// index is built on first use; figures call Find once per rendered row,
// so the linear scan it replaces was quadratic in the result count.
func (ev *Eval) Find(net, rt, power string) *RunResult {
	if ev.index == nil {
		ev.index = make(map[cellKey]int, len(ev.Results))
		for i := range ev.Results {
			r := &ev.Results[i]
			ev.index[cellKey{r.Net, r.Runtime, r.Power}] = i
		}
	}
	i, ok := ev.index[cellKey{net, rt, power}]
	if !ok {
		return nil
	}
	return &ev.Results[i]
}

// Fig9 renders inference time for every implementation: continuous power
// (9a), the 100 µF system (9b), and the full power-system sweep (9c).
func Fig9(ev *Eval) *Table {
	t := &Table{Title: "Fig 9: inference time (s) by implementation and power system",
		Header: []string{"network", "runtime", "power", "status", "live-s", "steady-s", "reboots", "energy-mJ", "wasted-uJ/cycle"}}
	t.Note = "steady-s amortizes recharge time (energy / harvest power); DNC = does not complete;\n" +
		"wasted-uJ/cycle is the mean re-executed energy per charge cycle (traced)."
	for _, r := range ev.Results {
		status := "ok"
		if !r.Completed {
			status = "DNC"
		}
		wasted := 0.0
		if r.Reboots > 0 {
			wasted = r.WastedEnergyNJ / float64(r.Reboots) / 1e3
		}
		t.AddRow(r.Net, r.Runtime, r.Power, status, r.LiveSec, r.SteadySec, r.Reboots, r.EnergyMJ, wasted)
	}
	return t
}

// Fig10 renders the kernel/control/transition split per layer on continuous
// power for the implementations the paper shows (Base, Tile-32, SONIC,
// TAILS).
func Fig10(ev *Eval) *Table {
	t := &Table{Title: "Fig 10: kernel vs control energy per layer (continuous power)",
		Header: []string{"network", "runtime", "layer", "kernel-uJ", "control-uJ", "transition-uJ"}}
	for _, net := range Networks() {
		for _, rt := range []string{"base", "tile-32", "sonic", "tails"} {
			r := ev.Find(net, rt, "cont")
			if r == nil {
				continue
			}
			agg, layers := LayerSections(*r)
			for _, layer := range layers {
				if layer == "boot" {
					continue
				}
				m := agg[layer]
				t.AddRow(net, rt, layer,
					m[mcu.PhaseKernel]/1e3, m[mcu.PhaseControl]/1e3, m[mcu.PhaseTransition]/1e3)
			}
		}
	}
	return t
}

// Fig11 renders energy per inference on the 1 mF power system.
func Fig11(ev *Eval) *Table {
	t := &Table{Title: "Fig 11: inference energy (mJ) with 1 mF capacitor",
		Header: []string{"network", "runtime", "status", "energy-mJ"}}
	for _, net := range Networks() {
		for _, rt := range Runtimes() {
			r := ev.Find(net, rt.Name(), "1mF")
			if r == nil {
				continue
			}
			status := "ok"
			if !r.Completed {
				status = "DNC"
			}
			t.AddRow(net, rt.Name(), status, r.EnergyMJ)
		}
	}
	return t
}

// Fig12 renders SONIC's energy broken down by operation class and layer.
func Fig12(ev *Eval) *Table {
	t := &Table{Title: "Fig 12: SONIC energy by operation class and layer (uJ)",
		Header: []string{"network", "layer", "op", "energy-uJ", "share"}}
	for _, net := range Networks() {
		r := ev.Find(net, "sonic", "cont")
		if r == nil {
			continue
		}
		total := 0.0
		for sec, st := range r.Sections {
			if sec.Layer == "boot" {
				continue
			}
			total += st.EnergyNJ()
		}
		agg := map[string]map[mcu.OpKind]float64{}
		for sec, st := range r.Sections {
			if sec.Layer == "boot" {
				continue
			}
			m := agg[sec.Layer]
			if m == nil {
				m = map[mcu.OpKind]float64{}
				agg[sec.Layer] = m
			}
			for op := mcu.OpKind(0); op < mcu.NumOps; op++ {
				m[op] += st.OpEnergyNJ(op)
			}
		}
		for _, layer := range []string{"conv1", "conv2", "conv3", "fc", "other"} {
			m, ok := agg[layer]
			if !ok {
				continue
			}
			for op := mcu.OpKind(0); op < mcu.NumOps; op++ {
				if m[op] <= 0 {
					continue
				}
				t.AddRow(net, layer, op.String(), m[op]/1e3, fmt.Sprintf("%.1f%%", 100*m[op]/total))
			}
		}
	}
	return t
}

// Fig6 regenerates the illustrative tiling-vs-loop-continuation microbench:
// a task-shared accumulation loop of n iterations executed under a fixed
// per-charge operation budget. It reports completion and total iteration
// executions (re-executed work shows up as executions > n).
func Fig6(n, budget int) *Table {
	t := &Table{Title: "Fig 6: dot-product loop under tiling vs loop continuation",
		Header: []string{"scheme", "status", "iterations-executed", "wasted", "reboots"}}
	t.Note = fmt.Sprintf("loop of %d iterations; power fails every %d operations", n, budget)

	runTile := func(tileSize int) {
		dev := mcu.New(energy.NewFailAfterOps(budget, budget))
		executed := 0
		cursor := dev.FRAM.MustAlloc("i", 1, 2)
		acc := dev.FRAM.MustAlloc("acc", 1, 4)
		log := dev.FRAM.MustAlloc("log", 2, 4)
		err := dev.Run(func() {
			for {
				base := int(dev.Load(cursor, 0))
				if base >= n {
					return
				}
				end := base + tileSize
				if end > n {
					end = n
				}
				// Tile body: a[i] += b[i]*c with redo-logged accumulator.
				v := dev.Load(acc, 0)
				for i := base; i < end; i++ {
					executed++
					dev.Op(mcu.OpBranch)
					dev.Op(mcu.OpLoadFRAM) // b[i]
					dev.Op(mcu.OpFixedMul)
					dev.Op(mcu.OpPrivatize)
					v += int64(i)
					dev.Store(log, 0, v) // buffered write
				}
				// Commit phase.
				dev.Store(acc, 0, dev.Load(log, 0))
				dev.Store(cursor, 0, int64(end))
				dev.Op(mcu.OpDispatch)
				dev.Progress()
			}
		})
		status := "ok"
		if err != nil {
			status = "DNC"
		}
		t.AddRow(fmt.Sprintf("tile-%d", tileSize), status, executed, executed-int(cursor.Get(0)), dev.Stats().Reboots)
	}
	runSONIC := func() {
		dev := mcu.New(energy.NewFailAfterOps(budget, budget))
		executed := 0
		cursor := dev.FRAM.MustAlloc("i", 1, 2)
		acc := dev.FRAM.MustAlloc("acc", 2, 4) // double-buffered partial
		err := dev.Run(func() {
			for {
				i := int(dev.Load(cursor, 0))
				if i >= n {
					return
				}
				executed++
				dev.Op(mcu.OpBranch)
				dev.Op(mcu.OpLoadFRAM) // b[i]
				dev.Op(mcu.OpFixedMul)
				prev := dev.Load(acc, (i+1)&1)
				dev.Store(acc, i&1, prev+int64(i))
				dev.Store(cursor, 0, int64(i+1))
				dev.Progress()
			}
		})
		status := "ok"
		if err != nil {
			status = "DNC"
		}
		t.AddRow("sonic", status, executed, executed-int(cursor.Get(0)), dev.Stats().Reboots)
	}
	runTile(5)
	runTile(12)
	runSONIC()
	return t
}

// Claims computes the §9.1 headline ratios from the measured cells:
// geometric-mean slowdowns/speedups across networks on continuous power,
// and the LEA/DMA ablation on the first network.
func Claims(ev *Eval) *Table {
	t := &Table{Title: "Headline claims (geometric means across networks, continuous power)",
		Header: []string{"claim", "paper", "measured"}}
	gmeanRatio := func(num, den string) float64 {
		prod, n := 1.0, 0
		for _, net := range Networks() {
			a := ev.Find(net, num, "cont")
			b := ev.Find(net, den, "cont")
			if a == nil || b == nil || !a.Completed || !b.Completed {
				continue
			}
			prod *= a.EnergyMJ / b.EnergyMJ
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return math.Pow(prod, 1/float64(n))
	}
	t.AddRow("tile-8 vs base (slowdown)", "13.4x", fmt.Sprintf("%.1fx", gmeanRatio("tile-8", "base")))
	t.AddRow("sonic vs base (slowdown)", "1.45x", fmt.Sprintf("%.2fx", gmeanRatio("sonic", "base")))
	t.AddRow("tails vs base", "0.83x (1.2x faster)", fmt.Sprintf("%.2fx", gmeanRatio("tails", "base")))
	t.AddRow("sonic improvement vs tile-8", "6.9x", fmt.Sprintf("%.1fx", gmeanRatio("tile-8", "sonic")))
	t.AddRow("tails improvement vs tile-8", "12.2x", fmt.Sprintf("%.1fx", gmeanRatio("tile-8", "tails")))
	t.AddRow("sonic vs tile-128", "5.2x", fmt.Sprintf("%.1fx", gmeanRatio("tile-128", "sonic")))
	return t
}

// Extensions measures the two beyond-the-evaluation reproductions: the §2
// checkpointing-baseline comparison and the §10 just-in-time
// index-checkpoint architecture estimate.
func Extensions(p *Prepared) (*Table, error) {
	powers := Powers()
	cont, uf100 := powers[0], powers[3]
	rows := []extRow{
		{sonic.SONIC{}, cont, false},
		{checkpoint.Checkpoint{Interval: 4}, cont, false},
		{checkpoint.Checkpoint{Interval: 64}, cont, false},
		{sonic.SONIC{}, uf100, false},
		{checkpoint.Checkpoint{Interval: 64}, uf100, false},
		{sonic.SONIC{}, cont, true},
		{sonic.SONIC{SparseViaBuffering: true}, cont, false},
	}
	return extensionsTable(p, cont, rows)
}

// extRow is one (runtime, power, jit-architecture) cell of the Extensions
// table.
type extRow struct {
	rt  core.Runtime
	pw  PowerSpec
	jit bool
}

// extensionsTable renders the Extensions rows against a sonic-on-golden
// reference. A row whose runtime cannot complete on its power system — the
// checkpoint-64 @ 100 µF configuration dumps more state per checkpoint than
// the capacitor funds — renders as "DNC" and the table keeps going, like
// Fig 9/11 do; only unexpected errors abort.
func extensionsTable(p *Prepared, golden PowerSpec, rows []extRow) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("Extensions (%s): checkpointing baseline and §10 architecture", p.Net),
		Header: []string{"system", "power", "energy-mJ", "vs sonic"}}
	input := p.Model.QuantizeInput(p.Input)
	measure := func(rt core.Runtime, pw PowerSpec, jit bool) (e float64, completed bool, err error) {
		dev := mcu.New(pw.Make())
		dev.JITIndexCheckpoint = jit
		img, err := core.Deploy(dev, p.Model)
		if err != nil {
			return 0, false, err
		}
		if _, err := rt.Infer(img, input); err != nil {
			if errors.Is(err, mcu.ErrDoesNotComplete) {
				return 0, false, nil
			}
			return 0, false, err
		}
		return dev.Stats().EnergyMJ(), true, nil
	}
	sonicCont, sonicOK, err := measure(sonic.SONIC{}, golden, false)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		name := r.rt.Name()
		if r.jit {
			name += "+jit-arch"
		}
		e, ok, err := measure(r.rt, r.pw, r.jit)
		if err != nil {
			return nil, err
		}
		if !ok {
			t.AddRow(name, r.pw.Name, "DNC", "-")
			continue
		}
		ratio := "-"
		if sonicOK && sonicCont > 0 {
			ratio = fmt.Sprintf("%.2fx", e/sonicCont)
		}
		t.AddRow(name, r.pw.Name, e, ratio)
	}
	return t, nil
}

// Ablation measures the LEA and DMA contributions (§9.1) for one prepared
// network.
func Ablation(p *Prepared) (*Table, error) {
	return AblationModel(p.Net, p.Model, p.Input)
}

// AblationModel is Ablation over an explicit model and input.
func AblationModel(name string, qm *dnn.QuantModel, x []float64) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("TAILS ablation (%s): software-emulated LEA and DMA", name),
		Header: []string{"variant", "energy-mJ", "vs tails"}}
	input := qm.QuantizeInput(x)
	cont := Powers()[0]
	variants := []core.Runtime{
		tails.TAILS{},
		tails.TAILS{SoftwareLEA: true},
		tails.TAILS{SoftwareDMA: true},
		tails.TAILS{SoftwareLEA: true, SoftwareDMA: true},
		sonic.SONIC{},
		baseline.Base{},
	}
	var ref float64
	for i, rt := range variants {
		res, err := Measure(name, qm, rt, cont, input)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			ref = res.EnergyMJ
		}
		t.AddRow(rt.Name(), res.EnergyMJ, fmt.Sprintf("%.2fx", res.EnergyMJ/ref))
	}
	return t, nil
}

// Fig9Layers renders the per-layer live-time composition of Fig. 9a:
// where each implementation's live seconds go, on continuous power.
func Fig9Layers(ev *Eval) *Table {
	t := &Table{Title: "Fig 9a detail: live time by layer (s, continuous power)",
		Header: []string{"network", "runtime", "layer", "live-s", "share"}}
	for _, net := range Networks() {
		for _, rt := range Runtimes() {
			r := ev.Find(net, rt.Name(), "cont")
			if r == nil || !r.Completed {
				continue
			}
			agg := map[string]int64{}
			var total int64
			for sec, st := range r.Sections {
				if sec.Layer == "boot" {
					continue
				}
				agg[sec.Layer] += st.Cycles
				total += st.Cycles
			}
			for _, layer := range []string{"conv1", "conv2", "conv3", "fc", "other"} {
				cyc, ok := agg[layer]
				if !ok {
					continue
				}
				t.AddRow(net, rt.Name(), layer, float64(cyc)/r.ClockHz,
					fmt.Sprintf("%.0f%%", 100*float64(cyc)/float64(total)))
			}
		}
	}
	return t
}

// SVMComparison reproduces §5.1: a feasible linear SVM scored against the
// GENESIS-chosen DNN with the same IMpJ model ("no SVM model that fit on
// the device was competitive with the DNN models").
func SVMComparison(p *Prepared, seed uint64) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("SVM vs DNN (%s), per §5.1", p.Net),
		Header: []string{"model", "accuracy", "weight-bytes", "Einfer-mJ", "IMpJ"}}
	ds, err := dnn.DatasetFor(p.Net, seed, 600, 150)
	if err != nil {
		return nil, err
	}
	svmNet, svmAcc, err := svm.Train(ds, svm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	qm, err := dnn.Quantize(svmNet, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		return nil, err
	}
	svmIMpJ, svmE, err := scoreModel(qm, svmAcc, ds.Test[0].X)
	if err != nil {
		return nil, fmt.Errorf("harness: score svm: %w", err)
	}
	dnnAcc := 0.0
	if p.Report != nil {
		dnnAcc = p.Report.ChosenResult().Accuracy
	}
	dnnIMpJ, dnnE, err := scoreModel(p.Model, dnnAcc, ds.Test[0].X)
	if err != nil {
		return nil, fmt.Errorf("harness: score dnn: %w", err)
	}
	t.AddRow("linear-svm", svmAcc, qm.WeightWords()*2, svmE*1e3, svmIMpJ)
	t.AddRow("dnn (chosen)", dnnAcc, p.Model.WeightWords()*2, dnnE*1e3, dnnIMpJ)
	t.Note = fmt.Sprintf("DNN/SVM IMpJ = %.2fx (paper: SVM underperforms by 2x on MNIST, 8x on HAR)",
		dnnIMpJ/svmIMpJ)
	return t, nil
}

// scoreModel deploys m on a fresh continuously-powered device, runs one
// TAILS inference on input x, and folds the measured inference energy into
// the §5.1 application model. Deploy and inference failures propagate:
// silently scoring an undeployable model as 0 IMpJ / 0 J made the §5.1
// comparison print a nonsense 0-energy row instead of failing loudly.
func scoreModel(m *dnn.QuantModel, acc float64, x []float64) (impj, einferJ float64, err error) {
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, m)
	if err != nil {
		return 0, 0, err
	}
	defer img.Release()
	if _, err := (tails.TAILS{}).Infer(img, m.QuantizeInput(x)); err != nil {
		return 0, 0, err
	}
	eInfer := dev.Stats().EnergyNJ() * 1e-9
	app := imodel.WildlifeDefaults()
	app.EComm /= imodel.ResultOnlyCommFactor
	app.TP, app.TN, app.EInfer = acc, acc, eInfer
	return imodel.Inference(app), eInfer, nil
}
