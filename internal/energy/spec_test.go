package energy

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSystemSpecValidate(t *testing.T) {
	valid := []SystemSpec{
		{Kind: "cont"},
		{Kind: "const", CapFarads: 100e-6},
		{Kind: "stoch", CapFarads: 100e-6, Sigma: 0.7},
		{Kind: "solar", CapFarads: 1e-3, Watts: 5e-3},
		{Kind: "trace", CapFarads: 100e-6, Trace: []float64{1e-3, 2e-3}},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v: %v", s, err)
		}
	}
	invalid := []SystemSpec{
		{},
		{Kind: "fusion"},
		{Kind: "const"},
		{Kind: "const", CapFarads: -1},
		{Kind: "stoch", CapFarads: 100e-6, Watts: -1},
		{Kind: "trace", CapFarads: 100e-6},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v passed validation", s)
		}
	}
}

// TestSystemSpecDeterministicPerSeed pins the fleet contract: equal
// (spec, seed) pairs yield systems with identical consume/recharge
// behavior, and stochastic kinds diverge across seeds.
func TestSystemSpecDeterministicPerSeed(t *testing.T) {
	spec := SystemSpec{Kind: "stoch", CapFarads: 100e-6}
	drain := func(sys System) []float64 {
		var deads []float64
		for i := 0; i < 5; i++ {
			for sys.Consume(100) {
			}
			deads = append(deads, sys.Recharge())
		}
		return deads
	}
	a, err := spec.New(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.New(42)
	if err != nil {
		t.Fatal(err)
	}
	da, db := drain(a), drain(b)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same (spec, seed) diverged at recharge %d: %v vs %v", i, da[i], db[i])
		}
	}
	c, err := spec.New(43)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i, d := range drain(c) {
		if d != da[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical stochastic recharge times")
	}
}

// TestSystemSpecKinds checks each kind constructs the documented system
// class with the documented defaults.
func TestSystemSpecKinds(t *testing.T) {
	if sys, err := (SystemSpec{Kind: "cont"}).New(1); err != nil {
		t.Fatal(err)
	} else if _, ok := sys.(Continuous); !ok {
		t.Fatalf("cont built %T", sys)
	}
	sys, err := SystemSpec{Kind: "const", CapFarads: 100e-6}.New(1)
	if err != nil {
		t.Fatal(err)
	}
	im, ok := sys.(*Intermittent)
	if !ok {
		t.Fatalf("const built %T", sys)
	}
	// Zero watts defaults to the paper's RF harvester power (observed
	// harvest is averaged over recharges, so drain once first).
	for im.Consume(100) {
	}
	im.Recharge()
	if got := im.ObservedHarvestW(); got != DefaultRFWatts {
		t.Fatalf("default const harvest = %v, want %v", got, DefaultRFWatts)
	}
	if sys.BufferEnergy() <= 0 {
		t.Fatal("const system has no usable buffer")
	}
	if _, err := (SystemSpec{Kind: "trace", CapFarads: 100e-6, Trace: []float64{1e-3}}).New(1); err != nil {
		t.Fatal(err)
	}
}

// TestSystemSpecJSONRoundTrip: the spec is the wire format of the serving
// API, so it must survive JSON unchanged.
func TestSystemSpecJSONRoundTrip(t *testing.T) {
	in := SystemSpec{Kind: "stoch", CapFarads: 100e-6, Watts: 2e-3, Sigma: 0.5}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SystemSpec
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed spec: %+v -> %+v", in, out)
	}
}
