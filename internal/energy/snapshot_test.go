package energy

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// drive applies a deterministic mixed prefix of scalar, bulk, and recharge
// traffic to a power system.
func drive(s System, seed uint64, ops int) {
	rng := rand.New(rand.NewPCG(seed, mixSeed(seed)))
	for i := 0; i < ops; i++ {
		switch rng.IntN(5) {
		case 0:
			if b, ok := s.(BulkConsumer); ok {
				if n := 1 + rng.IntN(40); b.ConsumeN(3.5, n) < n {
					s.Recharge()
				}
				continue
			}
			fallthrough
		default:
			if !s.Consume(3.5) {
				s.Recharge()
			}
		}
	}
}

// observe collects everything a power system makes visible, plus a probe of
// its forward behavior (the next 200 ops' failure pattern), which pins the
// hidden cursors too.
func observe(s System, probe System) []any {
	obs := []any{s.BufferEnergy()}
	if p, ok := s.(*Intermittent); ok {
		obs = append(obs, p.LevelNJ(), p.ObservedHarvestW())
	}
	if r, ok := s.(*Recorder); ok {
		obs = append(obs, r.LevelNJ(), append([]TracePoint(nil), r.Trace()...))
	}
	if probe != nil {
		pat := make([]bool, 200)
		for i := range pat {
			pat[i] = probe.Consume(3.5)
			if !pat[i] {
				probe.Recharge()
			}
		}
		obs = append(obs, pat)
	}
	return obs
}

// TestSnapshotRoundTripAllSystems: after an arbitrary op prefix, snapshot,
// run further, restore — the observable state (buffer pJ, schedule cursor,
// recorded trace) and all forward behavior must be bit-identical to the
// snapshot instant.
func TestSnapshotRoundTripAllSystems(t *testing.T) {
	mk := func() []System {
		return []System{
			Continuous{},
			NewIntermittent(Cap100uF, ConstantHarvester{DefaultRFWatts}),
			NewFailAfterOps(137, 41),
			NewFailSchedule([]int{120, 75, 300}),
			NewRecorder(NewIntermittent(Cap100uF, ConstantHarvester{DefaultRFWatts}), 16),
		}
	}
	for i, s := range mk() {
		name := reflect.TypeOf(s).String()
		drive(s, uint64(i)+1, 5000)
		snap := s.(Snapshotter).SnapshotState()
		want := observe(s, nil)

		// Diverge, then restore.
		drive(s, 99, 3333)
		if err := RestoreState(s, snap); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := observe(s, nil); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: restored observable state diverged:\n got %v\nwant %v", name, got, want)
		}

		// Forward behavior after restore must match a twin that was driven
		// identically and never restored.
		twin := mk()[i]
		drive(twin, uint64(i)+1, 5000)
		if got, want := observe(s, s), observe(twin, twin); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: post-restore behavior diverged:\n got %v\nwant %v", name, got, want)
		}
	}
}

// TestRestoreStateRejectsMismatch: a state restores only onto its own type.
func TestRestoreStateRejectsMismatch(t *testing.T) {
	f := NewFailSchedule([]int{10})
	st := f.SnapshotState()
	if err := RestoreState(NewFailAfterOps(5, 0), st); err == nil {
		t.Fatal("cross-type restore succeeded")
	}
	if err := RestoreState(f, nil); err == nil {
		t.Fatal("nil state restore succeeded")
	}
}
