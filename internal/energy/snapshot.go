package energy

import "fmt"

// SystemState is an opaque, immutable capture of a power system's
// instantaneous state, produced by a Snapshotter and reinstated with
// RestoreState. Restoring onto a different system (or a system of another
// type) is rejected rather than guessed at.
type SystemState interface {
	restoreTo(s System) bool
}

// Snapshotter is the optional System extension behind deterministic
// simulation forking: SnapshotState captures everything Consume/Recharge
// have accumulated, so a restored system continues bit-identically to one
// that never stopped. All of this package's systems implement it.
type Snapshotter interface {
	SnapshotState() SystemState
}

// RestoreState reinstates a captured state onto s.
func RestoreState(s System, st SystemState) error {
	if st == nil || !st.restoreTo(s) {
		return fmt.Errorf("energy: state %T does not restore onto %T", st, s)
	}
	return nil
}

type continuousState struct{}

// SnapshotState captures nothing: continuous power is stateless.
func (Continuous) SnapshotState() SystemState { return continuousState{} }

func (continuousState) restoreTo(s System) bool {
	_, ok := s.(Continuous)
	return ok
}

type intermittentState struct {
	remainingPJ int64
	usablePJ    int64
	harvestedNJ float64
	deadSec     float64
}

// SnapshotState captures the buffer level and harvest observations.
func (p *Intermittent) SnapshotState() SystemState {
	return intermittentState{p.remainingPJ, p.usablePJ, p.harvestedNJ, p.deadSec}
}

func (st intermittentState) restoreTo(s System) bool {
	p, ok := s.(*Intermittent)
	if !ok {
		return false
	}
	p.remainingPJ = st.remainingPJ
	p.usablePJ = st.usablePJ
	p.harvestedNJ = st.harvestedNJ
	p.deadSec = st.deadSec
	return true
}

type failAfterOpsState struct {
	count  int
	limit  int
	failed bool
}

// SnapshotState captures the op counter and the armed failure window.
func (f *FailAfterOps) SnapshotState() SystemState {
	return failAfterOpsState{f.count, f.limit, f.failed}
}

func (st failAfterOpsState) restoreTo(s System) bool {
	f, ok := s.(*FailAfterOps)
	if !ok {
		return false
	}
	f.count = st.count
	f.limit = st.limit
	f.failed = st.failed
	return true
}

type failScheduleState struct {
	cycle int
	count int
}

// SnapshotState captures the schedule cursor and the in-cycle op count.
func (f *FailSchedule) SnapshotState() SystemState {
	return failScheduleState{f.cycle, f.count}
}

func (st failScheduleState) restoreTo(s System) bool {
	f, ok := s.(*FailSchedule)
	if !ok {
		return false
	}
	f.cycle = st.cycle
	f.count = st.count
	return true
}

type recorderState struct {
	inner  SystemState
	points []TracePoint
	ops    int
	dead   float64
}

// SnapshotState captures the wrapped capacitor plus the recorded trace.
func (r *Recorder) SnapshotState() SystemState {
	return recorderState{
		inner:  r.Inner.SnapshotState(),
		points: append([]TracePoint(nil), r.points...),
		ops:    r.ops,
		dead:   r.dead,
	}
}

func (st recorderState) restoreTo(s System) bool {
	r, ok := s.(*Recorder)
	if !ok || !st.inner.restoreTo(r.Inner) {
		return false
	}
	r.points = append(r.points[:0:0], st.points...)
	r.ops = st.ops
	r.dead = st.dead
	return true
}
