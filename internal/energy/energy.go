// Package energy models the power side of an energy-harvesting system: a
// capacitor that buffers harvested energy between an operating threshold
// and a brown-out threshold, and harvesters that refill it (constant-power
// RF, stochastic RF, and a diurnal solar trace).
//
// It also provides deterministic fault-injection power systems used by the
// correctness tests: sources that cut power after an exact number of
// operations, so failures can be placed at chosen instruction boundaries.
//
// All energies are in nanojoules (nJ) and times in seconds.
package energy

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// System supplies energy to a device. Consume is called once per simulated
// operation with that operation's energy cost; it returns false when the
// buffer is exhausted and the device browns out. Recharge refills the
// buffer and returns the time spent dead.
type System interface {
	// Consume drains e nanojoules. A false return means power failed
	// during this operation (its effects must not be observed).
	Consume(e float64) bool
	// Recharge refills the buffer after a failure and returns dead time
	// in seconds.
	Recharge() float64
	// BufferEnergy returns the usable energy per full charge, in nJ
	// (infinite for continuous power).
	BufferEnergy() float64
	// Reset restores the initial (fully charged) state.
	Reset()
}

// BulkConsumer is an optional System extension used by the device model's
// bulk-charge fast path: ConsumeN charges n operations of eachNJ nanojoules
// in one call and returns how many of them were funded. Its contract is
// exact equivalence with the scalar path — after ConsumeN the system's
// state (and any recorded samples) must be bit-identical to what funded
// sequential Consume(eachNJ) calls would have left, plus one further
// failing call when funded < n, because the scalar device also charges the
// op that browns out. Implementations are analytic (O(1) per call), which
// is what makes O(1)-per-kernel-loop accounting possible.
type BulkConsumer interface {
	ConsumeN(eachNJ float64, n int) int
}

// PJConsumer is an optional System extension used by the device model's
// per-operation fast path: ConsumePJ drains an already-quantized integer
// picojoule cost, skipping the float→pJ conversion Consume performs on
// every call. Its contract is exact equivalence with Consume(e) where
// pj == PicojoulesOf(e) — both paths perform the identical integer
// subtraction, so which one the device uses is unobservable in results.
// Recorder deliberately does not implement it: its per-op level sampling
// needs the Consume entry point.
type PJConsumer interface {
	ConsumePJ(pj int64) bool
}

// pjOf converts a nanojoule cost to integer picojoules. All capacitor
// accounting is done in integer pJ so that n sequential subtractions and
// one n-fold subtraction are the same arithmetic — the associativity the
// bulk path's bit-exactness guarantee rests on (float64 accumulation is
// order-sensitive; int64 is not). The cost model's resolution is 0.1 nJ,
// far above 1 pJ, so the quantization is lossless for op costs.
func pjOf(e float64) int64 { return int64(math.Round(e * 1000)) }

// PicojoulesOf converts a nanojoule figure to the integer picojoules this
// package accounts in — exposed so the device model quantizes its cost
// table with the same rounding the capacitor applies to Consume.
func PicojoulesOf(e float64) int64 { return pjOf(e) }

// Continuous is mains-like power: never fails.
type Continuous struct{}

// Consume always succeeds.
func (Continuous) Consume(float64) bool { return true }

// ConsumeN funds every op.
func (Continuous) ConsumeN(_ float64, n int) int { return n }

// ConsumePJ always succeeds.
func (Continuous) ConsumePJ(int64) bool { return true }

// Recharge is never needed and returns 0.
func (Continuous) Recharge() float64 { return 0 }

// BufferEnergy is unbounded.
func (Continuous) BufferEnergy() float64 { return math.Inf(1) }

// Reset is a no-op.
func (Continuous) Reset() {}

// Capacitor models an energy buffer charged to VOn and usable down to VOff:
// usable energy = ½C(VOn² − VOff²).
type Capacitor struct {
	C    float64 // Farads
	VOn  float64 // operating (turn-on) voltage
	VOff float64 // brown-out voltage
}

// UsableNJ returns the usable buffered energy in nanojoules.
func (c Capacitor) UsableNJ() float64 {
	return 0.5 * c.C * (c.VOn*c.VOn - c.VOff*c.VOff) * 1e9
}

// CapBank returns a capacitor bank of the paper's evaluated sizes (§8:
// 100 µF, 1 mF, 50 mF) with the narrow unregulated operating window of
// MSP430-class energy-harvesting frontends (turn-on 1.88 V, brown-out
// 1.8 V). The resulting 100 µF usable buffer (~14.7 µJ, several thousand
// simulated operations) is the calibration point that reproduces the
// paper's completion matrix: SONIC/TAILS and Tile-8 always complete,
// Tile-128 exceeds the buffer and never terminates, and the unprotected
// baseline cannot finish an inference within one charge.
func CapBank(farads float64) Capacitor {
	return Capacitor{C: farads, VOn: 1.88, VOff: 1.8}
}

// Named capacitor sizes from the paper's methodology.
var (
	Cap100uF = CapBank(100e-6)
	Cap1mF   = CapBank(1e-3)
	Cap50mF  = CapBank(50e-3)
)

// Harvester produces power. PowerW may vary call to call (stochastic or
// trace-driven harvesters); calls are made once per recharge.
type Harvester interface {
	PowerW() float64
}

// ConstantHarvester supplies fixed power, e.g. an RF harvester at a fixed
// distance from its transmitter.
type ConstantHarvester struct{ Watts float64 }

// PowerW returns the fixed harvest power.
func (h ConstantHarvester) PowerW() float64 { return h.Watts }

// DefaultRFWatts approximates a Powercast P2110B harvester ~1 m from a 3 W
// transmitter: a few milliwatts of DC output.
const DefaultRFWatts = 3e-3

// StochasticHarvester models RF harvest with multiplicative lognormal
// variation around a mean, as seen with antenna orientation and multipath
// changes between charge cycles.
type StochasticHarvester struct {
	Mean  float64 // Watts
	Sigma float64 // lognormal sigma, e.g. 0.3
	rng   *rand.Rand
}

// mixSeed derives the second PCG state word from the caller's seed
// (SplitMix64 finalizer). Both RNG words come from the one seed callers
// plumb down — e.g. from harness.PowerSpec and the CLI — so a run is
// reproducible from that single value, with no hidden stream constants.
func mixSeed(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStochasticHarvester returns a seeded stochastic harvester. The seed
// fully determines the power sequence.
func NewStochasticHarvester(mean, sigma float64, seed uint64) *StochasticHarvester {
	return &StochasticHarvester{Mean: mean, Sigma: sigma, rng: rand.New(rand.NewPCG(seed, mixSeed(seed)))}
}

// PowerW samples the harvest power for one charge cycle.
func (h *StochasticHarvester) PowerW() float64 {
	return h.Mean * math.Exp(h.rng.NormFloat64()*h.Sigma-h.Sigma*h.Sigma/2)
}

// SolarHarvester models a small solar array whose output follows a diurnal
// half-sine: zero at night, peaking at noon. Each recharge advances an
// internal clock by the dead time of the previous cycle; for simplicity the
// phase is sampled pseudo-randomly per recharge, representing deployments
// that run at arbitrary times of day.
type SolarHarvester struct {
	Peak float64 // Watts at noon
	rng  *rand.Rand
}

// NewSolarHarvester returns a seeded solar harvester. The seed fully
// determines the power sequence.
func NewSolarHarvester(peak float64, seed uint64) *SolarHarvester {
	return &SolarHarvester{Peak: peak, rng: rand.New(rand.NewPCG(seed, mixSeed(^seed)))}
}

// PowerW samples the harvest power at a random time of day (clamped to a
// small floor so recharge always completes).
func (h *SolarHarvester) PowerW() float64 {
	t := h.rng.Float64() // fraction of a day
	p := h.Peak * math.Max(0, math.Sin(t*2*math.Pi))
	if p < h.Peak*0.01 {
		p = h.Peak * 0.01
	}
	return p
}

// Intermittent is a capacitor-buffered harvesting power system. The buffer
// level is tracked in integer picojoules (see pjOf) so the bulk path's
// n-fold subtraction is bit-identical to n scalar subtractions.
type Intermittent struct {
	Cap       Capacitor
	Harvester Harvester

	remainingPJ int64
	usablePJ    int64
	harvestedNJ float64
	deadSec     float64
}

// NewIntermittent returns a power system with the capacitor fully charged.
func NewIntermittent(c Capacitor, h Harvester) *Intermittent {
	p := &Intermittent{Cap: c, Harvester: h}
	p.Reset()
	return p
}

// Consume drains e nJ, failing when the buffer empties.
func (p *Intermittent) Consume(e float64) bool {
	p.remainingPJ -= pjOf(e)
	return p.remainingPJ >= 0
}

// ConsumePJ drains an already-quantized cost: the same subtraction as
// Consume, minus the per-call float→pJ conversion.
func (p *Intermittent) ConsumePJ(pj int64) bool {
	p.remainingPJ -= pj
	return p.remainingPJ >= 0
}

// ConsumeN drains up to n ops of e nJ analytically: the funded count is
// floor(remaining/cost), and a partial batch also charges the failing op,
// exactly as the scalar loop does.
func (p *Intermittent) ConsumeN(e float64, n int) int {
	return p.ConsumeNPJ(pjOf(e), n)
}

// ConsumeNPJ is ConsumeN for an already-quantized per-op cost — the same
// arithmetic minus the per-call float→pJ conversion, for callers that
// cache pjOf(e) (the device model's costPJ table).
func (p *Intermittent) ConsumeNPJ(dec int64, n int) int {
	if dec <= 0 {
		if p.remainingPJ >= 0 {
			return n
		}
		return 0
	}
	if p.remainingPJ < 0 {
		p.remainingPJ -= dec
		return 0
	}
	funded := p.remainingPJ / dec
	if funded >= int64(n) {
		p.remainingPJ -= int64(n) * dec
		return n
	}
	p.remainingPJ -= (funded + 1) * dec
	return int(funded)
}

// FundWhole funds up to n whole blocks of unitPJ picojoules each and
// returns the funded count: floor(remaining/unitPJ), charging only the
// funded blocks and never a partial one. The fused-kernel fast path uses
// it to execute exactly the funded prefix of a uniform loop in bulk and
// hand the first unfunded iteration back to the scalar path, which then
// charges op by op and browns out at the identical op index — so the
// failing iteration's partial consumption (and with it the recharge
// deficit and dead time) is produced by the same code on both paths.
func (p *Intermittent) FundWhole(unitPJ int64, n int) int {
	if p.remainingPJ < 0 {
		return 0
	}
	if unitPJ <= 0 {
		return n
	}
	funded := p.remainingPJ / unitPJ
	if funded >= int64(n) {
		p.remainingPJ -= int64(n) * unitPJ
		return n
	}
	p.remainingPJ -= funded * unitPJ
	return int(funded)
}

// Recharge refills the capacitor and returns the dead time, computed from
// the harvester's power for this cycle.
func (p *Intermittent) Recharge() float64 {
	deficitPJ := p.usablePJ - max(p.remainingPJ, 0)
	p.remainingPJ = p.usablePJ
	w := p.Harvester.PowerW()
	if w <= 0 {
		panic("energy: harvester produced non-positive power")
	}
	deficit := float64(deficitPJ) * 1e-3 // nJ
	d := deficit * 1e-9 / w
	p.harvestedNJ += deficit
	p.deadSec += d
	return d
}

// ObservedHarvestW reports the mean harvest power actually seen by the run
// so far: total recharged energy over total dead time. It returns 0 before
// the first recharge, when no observation exists; callers fall back to a
// nominal figure then. For a constant harvester this equals the constant,
// while for stochastic or diurnal harvesters it is the run's true average,
// which steady-state amortization must use instead of the RF constant.
func (p *Intermittent) ObservedHarvestW() float64 {
	if p.deadSec <= 0 {
		return 0
	}
	return p.harvestedNJ * 1e-9 / p.deadSec
}

// BufferEnergy returns the usable energy per charge in nJ.
func (p *Intermittent) BufferEnergy() float64 { return p.Cap.UsableNJ() }

// LevelNJ reports the remaining buffered energy; the tracing subsystem
// samples it to render the sawtooth voltage/energy track of Fig. 6.
func (p *Intermittent) LevelNJ() float64 { return float64(max(p.remainingPJ, 0)) * 1e-3 }

// Reset refills the capacitor and discards harvest observations.
func (p *Intermittent) Reset() {
	p.usablePJ = pjOf(p.Cap.UsableNJ())
	p.remainingPJ = p.usablePJ
	p.harvestedNJ = 0
	p.deadSec = 0
}

// String describes the power system.
func (p *Intermittent) String() string {
	return fmt.Sprintf("intermittent(%.0fuF, %.1fuJ/cycle)", p.Cap.C*1e6, p.Cap.UsableNJ()/1e3)
}

// FailAfterOps is a deterministic fault-injection source: power fails after
// exactly N successful Consume calls, regardless of energy, then every M
// calls after each recharge. Dead time is zero. Used by correctness tests
// to place failures at exact operation boundaries.
type FailAfterOps struct {
	First  int // ops before the first failure
	Period int // ops between subsequent failures (0 = never again)

	count  int
	limit  int
	failed bool
}

// NewFailAfterOps returns a source failing first after `first` ops and then
// every `period` ops.
func NewFailAfterOps(first, period int) *FailAfterOps {
	f := &FailAfterOps{First: first, Period: period}
	f.Reset()
	return f
}

// Consume counts operations and fails at the configured boundaries.
func (f *FailAfterOps) Consume(float64) bool {
	if f.limit <= 0 {
		return true // exhausted schedule: behave as continuous
	}
	f.count++
	if f.count >= f.limit {
		f.failed = true
		return false
	}
	return true
}

// ConsumePJ counts one operation; the cost is irrelevant to this source.
func (f *FailAfterOps) ConsumePJ(int64) bool { return f.Consume(0) }

// ConsumeN counts a batch of up to n ops, stopping at the configured
// boundary. The op arithmetic is count-exact: a partial batch advances the
// counter past the failing op, exactly as the scalar loop does.
func (f *FailAfterOps) ConsumeN(_ float64, n int) int {
	if f.limit <= 0 {
		return n // exhausted schedule: behave as continuous
	}
	avail := f.limit - 1 - f.count
	if avail < 0 {
		avail = 0
	}
	if n <= avail {
		f.count += n
		return n
	}
	f.count += avail + 1
	f.failed = true
	return avail
}

// Recharge arms the next failure window.
func (f *FailAfterOps) Recharge() float64 {
	f.count = 0
	f.limit = f.Period
	f.failed = false
	return 0
}

// BufferEnergy is reported as the op budget (callers treat it as opaque).
func (f *FailAfterOps) BufferEnergy() float64 { return float64(f.limit) }

// Reset restores the initial schedule.
func (f *FailAfterOps) Reset() {
	f.count = 0
	f.limit = f.First
	f.failed = false
}

// FailSchedule is a deterministic multi-failure fault-injection source: the
// k-th charge cycle browns out on its Gaps[k]-th Consume call, regardless
// of energy. When the schedule is exhausted the source
// behaves as continuous power, so every run terminates and can be checked
// against a golden result. Dead time is zero. Fuzzers decode their input
// bytes into a gap list and hand it here, making every failure schedule a
// small, printable, replayable value.
type FailSchedule struct {
	Gaps []int

	cycle int
	count int
}

// NewFailSchedule returns a source that fails after gaps[0] ops, then after
// the next gaps[1] ops, and so on; non-positive gaps are treated as 1 (a
// failure schedule can never brown out "before" an op boundary).
func NewFailSchedule(gaps []int) *FailSchedule {
	return &FailSchedule{Gaps: gaps}
}

// Consume counts operations and fails at the current cycle's boundary.
func (f *FailSchedule) Consume(float64) bool {
	if f.cycle >= len(f.Gaps) {
		return true // exhausted schedule: behave as continuous
	}
	gap := f.Gaps[f.cycle]
	if gap < 1 {
		gap = 1
	}
	f.count++
	return f.count < gap
}

// ConsumePJ counts one operation; the cost is irrelevant to this source.
func (f *FailSchedule) ConsumePJ(int64) bool { return f.Consume(0) }

// ConsumeN counts a batch of up to n ops against the current cycle's
// boundary, with the same count-exact partial-batch semantics as
// FailAfterOps.ConsumeN.
func (f *FailSchedule) ConsumeN(_ float64, n int) int {
	if f.cycle >= len(f.Gaps) {
		return n // exhausted schedule: behave as continuous
	}
	gap := f.Gaps[f.cycle]
	if gap < 1 {
		gap = 1
	}
	avail := gap - 1 - f.count
	if avail < 0 {
		avail = 0
	}
	if n <= avail {
		f.count += n
		return n
	}
	f.count += avail + 1
	return avail
}

// Recharge advances to the next scheduled failure window.
func (f *FailSchedule) Recharge() float64 {
	f.cycle++
	f.count = 0
	return 0
}

// BufferEnergy is reported as the current op budget (callers treat it as
// opaque); once the schedule is exhausted it is unbounded, like Continuous.
func (f *FailSchedule) BufferEnergy() float64 {
	if f.cycle >= len(f.Gaps) {
		return math.Inf(1)
	}
	return float64(f.Gaps[f.cycle])
}

// Reset restores the initial schedule.
func (f *FailSchedule) Reset() {
	f.cycle = 0
	f.count = 0
}

// TraceHarvester replays a recorded power trace, one sample per recharge
// (cycling when exhausted). Deployments use it to drive the device from
// real measured harvesting conditions; the repository uses it for
// reproducible time-varying power in tests.
type TraceHarvester struct {
	Trace []float64 // Watts per charge cycle; must be positive
	pos   int
}

// NewTraceHarvester validates and wraps a trace.
func NewTraceHarvester(trace []float64) (*TraceHarvester, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("energy: empty harvest trace")
	}
	for i, w := range trace {
		if w <= 0 {
			return nil, fmt.Errorf("energy: trace sample %d is non-positive (%v)", i, w)
		}
	}
	return &TraceHarvester{Trace: trace}, nil
}

// PowerW returns the next trace sample, cycling.
func (h *TraceHarvester) PowerW() float64 {
	w := h.Trace[h.pos]
	h.pos = (h.pos + 1) % len(h.Trace)
	return w
}

// TracePoint is one sample of the energy buffer's state over a run.
type TracePoint struct {
	OpIndex int     // Consume calls so far
	LevelNJ float64 // remaining buffered energy
	DeadSec float64 // cumulative recharge time so far
}

// Recorder wraps a power system and samples the buffer level every
// SampleEvery operations, producing the sawtooth energy trace of the
// paper's Fig. 6 (charge, drain, fail, recharge). It adds no energy cost.
type Recorder struct {
	Inner       *Intermittent
	SampleEvery int

	points []TracePoint
	ops    int
	dead   float64
}

// NewRecorder wraps an intermittent power system.
func NewRecorder(inner *Intermittent, sampleEvery int) *Recorder {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Recorder{Inner: inner, SampleEvery: sampleEvery}
}

// Consume forwards to the wrapped system and samples the level.
func (r *Recorder) Consume(e float64) bool {
	ok := r.Inner.Consume(e)
	r.ops++
	if r.ops%r.SampleEvery == 0 || !ok {
		r.points = append(r.points, TracePoint{OpIndex: r.ops,
			LevelNJ: float64(max(r.Inner.remainingPJ, 0)) * 1e-3, DeadSec: r.dead})
	}
	return ok
}

// ConsumeN forwards a batch to the wrapped capacitor and reconstructs the
// intermediate sample points analytically: the level after the j-th op of
// the batch is start − j·cost, so the recorded trace is bit-identical to
// n sequential Consume calls — including the unconditional sample at a
// mid-batch failure — without walking every op.
func (r *Recorder) ConsumeN(e float64, n int) int {
	start := r.Inner.remainingPJ
	dec := pjOf(e)
	funded := r.Inner.ConsumeN(e, n)
	consumed := funded
	failed := funded < n
	if failed {
		consumed++ // the failing op is also counted and sampled
	}
	// Sample at every multiple of SampleEvery within the batch.
	j0 := r.SampleEvery - r.ops%r.SampleEvery
	for j := j0; j <= consumed; j += r.SampleEvery {
		r.points = append(r.points, TracePoint{OpIndex: r.ops + j,
			LevelNJ: float64(max(start-int64(j)*dec, 0)) * 1e-3, DeadSec: r.dead})
	}
	// The failing op samples unconditionally (once: the multiples loop
	// above already covered it when it lands on a sample boundary).
	if failed && (r.ops+consumed)%r.SampleEvery != 0 {
		r.points = append(r.points, TracePoint{OpIndex: r.ops + consumed,
			LevelNJ: float64(max(start-int64(consumed)*dec, 0)) * 1e-3, DeadSec: r.dead})
	}
	r.ops += consumed
	return funded
}

// Recharge forwards and records the refill.
func (r *Recorder) Recharge() float64 {
	d := r.Inner.Recharge()
	r.dead += d
	r.points = append(r.points, TracePoint{OpIndex: r.ops,
		LevelNJ: float64(r.Inner.remainingPJ) * 1e-3, DeadSec: r.dead})
	return d
}

// BufferEnergy forwards to the wrapped system.
func (r *Recorder) BufferEnergy() float64 { return r.Inner.BufferEnergy() }

// LevelNJ forwards to the wrapped system.
func (r *Recorder) LevelNJ() float64 { return r.Inner.LevelNJ() }

// ObservedHarvestW forwards to the wrapped system.
func (r *Recorder) ObservedHarvestW() float64 { return r.Inner.ObservedHarvestW() }

// Reset forwards and clears the trace.
func (r *Recorder) Reset() {
	r.Inner.Reset()
	r.points = nil
	r.ops = 0
	r.dead = 0
}

// Trace returns the recorded samples.
func (r *Recorder) Trace() []TracePoint { return r.points }
