package energy

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// scalarConsumeN replays ConsumeN's contract through the scalar interface:
// sequential Consume(e) calls, also charging the op that fails, returning
// how many were funded. This is the reference ConsumeN is checked against.
func scalarConsumeN(s System, e float64, n int) int {
	for i := 0; i < n; i++ {
		if !s.Consume(e) {
			return i
		}
	}
	return n
}

// bulkSystem pairs a system with an equally-configured twin so the bulk
// path on one can be replayed scalar on the other.
type bulkPair struct {
	name   string
	bulk   System                                 // driven through ConsumeN
	scalar System                                 // driven through sequential Consume
	level  func(a, b System) (int64, int64, bool) // internal state, if any
}

func intLevel(a, b System) (int64, int64, bool) {
	return a.(*Intermittent).remainingPJ, b.(*Intermittent).remainingPJ, true
}

func pairs() []bulkPair {
	rf := ConstantHarvester{Watts: DefaultRFWatts}
	mkRec := func() System { return NewRecorder(NewIntermittent(Cap100uF, rf), 7) }
	return []bulkPair{
		{name: "continuous", bulk: Continuous{}, scalar: Continuous{}},
		{name: "intermittent",
			bulk:   NewIntermittent(Cap100uF, rf),
			scalar: NewIntermittent(Cap100uF, rf),
			level:  intLevel},
		{name: "fail-after-ops",
			bulk:   NewFailAfterOps(137, 61),
			scalar: NewFailAfterOps(137, 61)},
		{name: "fail-schedule",
			bulk:   NewFailSchedule([]int{97, 13, 1, 250}),
			scalar: NewFailSchedule([]int{97, 13, 1, 250})},
		{name: "recorder", bulk: mkRec(), scalar: mkRec(),
			level: func(a, b System) (int64, int64, bool) {
				return a.(*Recorder).Inner.remainingPJ, b.(*Recorder).Inner.remainingPJ, true
			}},
	}
}

// TestConsumeNMatchesScalar is the bulk path's property test: for every
// power system, an arbitrary interleaving of ConsumeN batches, single
// Consume calls, and recharges leaves the system in a state bit-identical
// to the same interleaving with each batch unrolled into sequential scalar
// calls — including the funded count of every partial batch (the failing
// op's exact index) and, for Recorder, the recorded sample points.
func TestConsumeNMatchesScalar(t *testing.T) {
	costs := []float64{0, 0.1, 2.5, 10.4, 32.1, 100}
	for _, p := range pairs() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			bc, ok := p.bulk.(BulkConsumer)
			if !ok {
				t.Fatalf("%T does not implement BulkConsumer", p.bulk)
			}
			rng := rand.New(rand.NewPCG(0xb01c, 0xcafe))
			midBatchFails := 0
			for step := 0; step < 4000; step++ {
				e := costs[rng.IntN(len(costs))]
				if rng.IntN(4) == 0 { // single scalar op on both twins
					ra, rb := p.bulk.Consume(e), p.scalar.Consume(e)
					if ra != rb {
						t.Fatalf("step %d: Consume(%v): bulk=%v scalar=%v", step, e, ra, rb)
					}
					if !ra {
						p.bulk.Recharge()
						p.scalar.Recharge()
					}
				} else {
					n := 1 + rng.IntN(64)
					got := bc.ConsumeN(e, n)
					want := scalarConsumeN(p.scalar, e, n)
					if got != want {
						t.Fatalf("step %d: ConsumeN(%v, %d): bulk funded %d, scalar funded %d",
							step, e, n, got, want)
					}
					if got < n {
						if got > 0 {
							midBatchFails++
						}
						p.bulk.Recharge()
						p.scalar.Recharge()
					}
				}
				if p.level != nil {
					if a, b, ok := p.level(p.bulk, p.scalar); ok && a != b {
						t.Fatalf("step %d: level diverged: bulk=%d scalar=%d pJ", step, a, b)
					}
				}
			}
			// Failure-capable systems must have exercised failures landing
			// strictly inside a batch, not only at its first op.
			if _, cont := p.bulk.(Continuous); !cont && midBatchFails == 0 {
				t.Fatalf("no mid-batch failure was exercised; property vacuous")
			}
			if rb, ok := p.bulk.(*Recorder); ok {
				rs := p.scalar.(*Recorder)
				if len(rb.Trace()) == 0 || !reflect.DeepEqual(rb.Trace(), rs.Trace()) {
					t.Fatalf("recorder traces diverge: bulk %d points, scalar %d points",
						len(rb.Trace()), len(rs.Trace()))
				}
			}
		})
	}
}

// TestConsumePJMatchesConsume checks the per-op integer fast path: for
// every system implementing PJConsumer, ConsumePJ(PicojoulesOf(e)) returns
// the same verdict and leaves the same state as Consume(e).
func TestConsumePJMatchesConsume(t *testing.T) {
	for _, p := range pairs() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			pc, ok := p.bulk.(PJConsumer)
			if _, rec := p.bulk.(*Recorder); rec {
				// Recorder deliberately opts out: its per-op sampling needs
				// the Consume entry point so the device never bypasses it.
				if ok {
					t.Fatalf("Recorder must not implement PJConsumer")
				}
				return
			}
			if !ok {
				t.Fatalf("%T does not implement PJConsumer", p.bulk)
			}
			rng := rand.New(rand.NewPCG(0x9a55, 0xfeed))
			costs := []float64{0.1, 2.5, 10.4, 100}
			for step := 0; step < 20000; step++ {
				e := costs[rng.IntN(len(costs))]
				ra := pc.ConsumePJ(PicojoulesOf(e))
				rb := p.scalar.Consume(e)
				if ra != rb {
					t.Fatalf("step %d: ConsumePJ(%v)=%v Consume=%v", step, e, ra, rb)
				}
				if p.level != nil {
					if a, b, ok := p.level(p.bulk, p.scalar); ok && a != b {
						t.Fatalf("step %d: level diverged: %d vs %d pJ", step, a, b)
					}
				}
				if !ra {
					p.bulk.Recharge()
					p.scalar.Recharge()
				}
			}
		})
	}
}
