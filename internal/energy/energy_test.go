package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCapacitorUsableEnergy(t *testing.T) {
	// 100 uF between 1.88 V and 1.8 V: 0.5 * 1e-4 * (3.5344 - 3.24) J.
	got := Cap100uF.UsableNJ()
	want := 0.5 * 1e-4 * (1.88*1.88 - 1.8*1.8) * 1e9
	if math.Abs(got-want) > 1 {
		t.Errorf("UsableNJ = %v, want %v", got, want)
	}
	// Larger caps buffer proportionally more.
	if r := Cap1mF.UsableNJ() / Cap100uF.UsableNJ(); math.Abs(r-10) > 1e-9 {
		t.Errorf("1mF/100uF = %v, want 10", r)
	}
}

func TestContinuousNeverFails(t *testing.T) {
	var c Continuous
	for i := 0; i < 1000; i++ {
		if !c.Consume(1e12) {
			t.Fatal("continuous power must never fail")
		}
	}
	if !math.IsInf(c.BufferEnergy(), 1) {
		t.Error("continuous buffer should be infinite")
	}
	if c.Recharge() != 0 {
		t.Error("continuous recharge should be free")
	}
}

func TestIntermittentFailsWhenDrained(t *testing.T) {
	p := NewIntermittent(Cap100uF, ConstantHarvester{Watts: DefaultRFWatts})
	budget := p.BufferEnergy()
	n := 0
	for p.Consume(100) { // 100 nJ ops
		n++
		if n > 10_000_000 {
			t.Fatal("never failed")
		}
	}
	want := int(budget / 100)
	if n < want-1 || n > want+1 {
		t.Errorf("ops before failure = %d, want ~%d", n, want)
	}
}

func TestIntermittentRechargeTime(t *testing.T) {
	p := NewIntermittent(Cap100uF, ConstantHarvester{Watts: 1e-3}) // 1 mW
	for p.Consume(1000) {
	}
	dead := p.Recharge()
	// Refill ~450.5 uJ at 1 mW -> ~0.45 s.
	want := Cap100uF.UsableNJ() * 1e-9 / 1e-3
	if math.Abs(dead-want) > 0.01 {
		t.Errorf("recharge time = %v, want ~%v", dead, want)
	}
	// After recharge, the buffer is full again.
	if !p.Consume(p.BufferEnergy() - 1) {
		t.Error("buffer should be full after recharge")
	}
}

func TestIntermittentPartialRecharge(t *testing.T) {
	p := NewIntermittent(Cap1mF, ConstantHarvester{Watts: 1e-3})
	// Drain only half, then recharge: dead time should be ~half of full.
	half := p.BufferEnergy() / 2
	if !p.Consume(half) {
		t.Fatal("half drain should succeed")
	}
	dead := p.Recharge()
	full := p.BufferEnergy() * 1e-9 / 1e-3
	if math.Abs(dead-full/2) > full*0.02 {
		t.Errorf("partial recharge = %v, want ~%v", dead, full/2)
	}
}

// Property: total consumed energy before failure never exceeds the buffer.
// The bound is checked in the integer picojoules the capacitor accounts
// in: BufferEnergy() is a float nJ figure whose last bits can sit below
// the pJ-quantized capacity (e.g. 14719.999999999978 vs 14720000 pJ),
// which is representation error, not an overdraft.
func TestBufferBoundProperty(t *testing.T) {
	f := func(opCost uint16) bool {
		cost := float64(opCost%5000) + 1
		p := NewIntermittent(Cap100uF, ConstantHarvester{Watts: 1e-3})
		total := 0.0
		for p.Consume(cost) {
			total += cost
		}
		return pjOf(total) <= pjOf(p.BufferEnergy())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStochasticHarvesterStatistics(t *testing.T) {
	h := NewStochasticHarvester(3e-3, 0.3, 1)
	sum := 0.0
	n := 5000
	for i := 0; i < n; i++ {
		p := h.PowerW()
		if p <= 0 {
			t.Fatal("power must be positive")
		}
		sum += p
	}
	mean := sum / float64(n)
	if mean < 2.5e-3 || mean > 3.5e-3 {
		t.Errorf("mean power = %v, want ~3e-3", mean)
	}
}

func TestSolarHarvesterBounds(t *testing.T) {
	h := NewSolarHarvester(10e-3, 2)
	for i := 0; i < 1000; i++ {
		p := h.PowerW()
		if p <= 0 || p > 10e-3 {
			t.Fatalf("solar power out of range: %v", p)
		}
	}
}

func TestFailAfterOpsSchedule(t *testing.T) {
	f := NewFailAfterOps(3, 2)
	// First window: ops 1,2 succeed, op 3 fails.
	if !f.Consume(0) || !f.Consume(0) {
		t.Fatal("first two ops should succeed")
	}
	if f.Consume(0) {
		t.Fatal("third op should fail")
	}
	if f.Recharge() != 0 {
		t.Error("fault injection has zero dead time")
	}
	// Next windows: every 2 ops.
	if !f.Consume(0) {
		t.Fatal("op after recharge should succeed")
	}
	if f.Consume(0) {
		t.Fatal("second op should fail (period 2)")
	}
}

func TestFailAfterOpsZeroPeriodBecomesContinuous(t *testing.T) {
	f := NewFailAfterOps(1, 0)
	if f.Consume(0) {
		t.Fatal("should fail on first op")
	}
	f.Recharge()
	for i := 0; i < 100; i++ {
		if !f.Consume(0) {
			t.Fatal("period 0 should never fail again")
		}
	}
}

func TestResets(t *testing.T) {
	p := NewIntermittent(Cap100uF, ConstantHarvester{Watts: 1e-3})
	for p.Consume(1e5) {
	}
	p.Reset()
	if !p.Consume(p.BufferEnergy() / 2) {
		t.Error("reset should refill")
	}
	f := NewFailAfterOps(2, 5)
	f.Consume(0)
	f.Reset()
	if !f.Consume(0) {
		t.Error("reset should rearm first window")
	}
}

func TestTraceHarvester(t *testing.T) {
	h, err := NewTraceHarvester([]float64{1e-3, 2e-3, 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{h.PowerW(), h.PowerW(), h.PowerW(), h.PowerW()}
	want := []float64{1e-3, 2e-3, 3e-3, 1e-3} // cycles
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace sample %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := NewTraceHarvester(nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := NewTraceHarvester([]float64{1e-3, 0}); err == nil {
		t.Error("non-positive sample should error")
	}
}

func TestRecorderSawtooth(t *testing.T) {
	inner := NewIntermittent(Cap100uF, ConstantHarvester{Watts: 1e-3})
	r := NewRecorder(inner, 10)
	// Drain through two full charge cycles.
	for cycles := 0; cycles < 2; {
		if !r.Consume(100) {
			r.Recharge()
			cycles++
		}
	}
	pts := r.Trace()
	if len(pts) < 10 {
		t.Fatalf("too few samples: %d", len(pts))
	}
	// The trace must be a sawtooth: strictly decreasing runs punctuated by
	// jumps back to (near) full.
	full := inner.BufferEnergy()
	refills, drops := 0, 0
	for i := 1; i < len(pts); i++ {
		switch {
		case pts[i].LevelNJ > pts[i-1].LevelNJ:
			refills++
			if math.Abs(pts[i].LevelNJ-full) > 1 {
				t.Fatalf("refill to %v, want full %v", pts[i].LevelNJ, full)
			}
		case pts[i].LevelNJ < pts[i-1].LevelNJ:
			drops++
		}
	}
	if refills != 2 {
		t.Errorf("refills = %d, want 2", refills)
	}
	if drops < 5 {
		t.Errorf("expected a draining sawtooth, got %d drops", drops)
	}
	if pts[len(pts)-1].DeadSec <= 0 {
		t.Error("dead time should accumulate in the trace")
	}
	r.Reset()
	if len(r.Trace()) != 0 {
		t.Error("reset should clear the trace")
	}
}

func TestRecorderWithDevice(t *testing.T) {
	// The recorder satisfies energy.System and can power a device.
	inner := NewIntermittent(Cap100uF, ConstantHarvester{Watts: 1e-3})
	var sys System = NewRecorder(inner, 5)
	if !sys.Consume(1) {
		t.Fatal("first op should succeed")
	}
}

func TestFailScheduleBoundaries(t *testing.T) {
	f := NewFailSchedule([]int{3, 2})
	// Cycle 0: ops 1,2 succeed, op 3 fails.
	for i := 0; i < 2; i++ {
		if !f.Consume(1) {
			t.Fatalf("cycle 0 op %d failed early", i+1)
		}
	}
	if f.Consume(1) {
		t.Fatal("cycle 0 did not fail at gap 3")
	}
	if d := f.Recharge(); d != 0 {
		t.Fatalf("fault-injection recharge took %v dead seconds", d)
	}
	// Cycle 1: op 1 succeeds, op 2 fails.
	if !f.Consume(1) {
		t.Fatal("cycle 1 op 1 failed early")
	}
	if f.Consume(1) {
		t.Fatal("cycle 1 did not fail at gap 2")
	}
	f.Recharge()
	// Schedule exhausted: continuous from here on.
	for i := 0; i < 1000; i++ {
		if !f.Consume(1) {
			t.Fatal("exhausted schedule failed")
		}
	}
	if !math.IsInf(f.BufferEnergy(), 1) {
		t.Fatal("exhausted schedule should report unbounded buffer")
	}
	// Reset restores the full schedule.
	f.Reset()
	f.Consume(1)
	f.Consume(1)
	if f.Consume(1) {
		t.Fatal("reset did not restore the schedule")
	}
}

func TestFailScheduleClampsNonPositiveGaps(t *testing.T) {
	f := NewFailSchedule([]int{0})
	if f.Consume(1) {
		t.Fatal("gap 0 must clamp to 1 and fail the first op")
	}
}

func TestObservedHarvestWConstant(t *testing.T) {
	p := NewIntermittent(Cap100uF, ConstantHarvester{Watts: DefaultRFWatts})
	if w := p.ObservedHarvestW(); w != 0 {
		t.Fatalf("ObservedHarvestW before any recharge = %v, want 0", w)
	}
	p.Consume(p.Cap.UsableNJ() + 1) // drain past empty
	p.Recharge()
	if w := p.ObservedHarvestW(); math.Abs(w-DefaultRFWatts) > 1e-12 {
		t.Fatalf("observed %v W, want the constant %v W", w, DefaultRFWatts)
	}
	p.Reset()
	if w := p.ObservedHarvestW(); w != 0 {
		t.Fatalf("Reset kept harvest observations (%v W)", w)
	}
}

func TestObservedHarvestWVariable(t *testing.T) {
	trace, err := NewTraceHarvester([]float64{1e-3, 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	p := NewIntermittent(Cap100uF, trace)
	e := p.Cap.UsableNJ()
	for i := 0; i < 2; i++ {
		p.Consume(e + 1)
		p.Recharge()
	}
	// Mean power is energy-weighted: 2E harvested over E*1e-9*(1/1e-3+1/3e-3)
	// seconds = 1.5e-3 W, not the arithmetic mean 2e-3.
	want := 2.0 / (1/1e-3 + 1/3e-3)
	if w := p.ObservedHarvestW(); math.Abs(w-want)/want > 1e-9 {
		t.Fatalf("observed %v W, want %v W", w, want)
	}
}

func TestRecorderForwardsObservedHarvest(t *testing.T) {
	p := NewIntermittent(Cap100uF, ConstantHarvester{Watts: DefaultRFWatts})
	r := NewRecorder(p, 4)
	r.Consume(p.Cap.UsableNJ() + 1)
	r.Recharge()
	if w := r.ObservedHarvestW(); math.Abs(w-DefaultRFWatts) > 1e-12 {
		t.Fatalf("recorder observed %v W, want %v W", w, DefaultRFWatts)
	}
}
