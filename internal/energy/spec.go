package energy

import "fmt"

// SystemSpec is a declarative, serializable description of a power system:
// a capacitor size plus a named harvester class and its parameters. It is
// the unit fleet campaigns and the job-serving API pass around — a spec
// plus one seed fully determines a power system, including every sample a
// stochastic harvester will ever draw, so any device in a fleet can be
// re-simulated in isolation from its (spec, seed) pair.
type SystemSpec struct {
	// Kind selects the harvester class: "cont" (mains-like, never fails),
	// "const" (fixed-power RF), "stoch" (lognormal RF), "solar" (diurnal
	// half-sine), or "trace" (replayed samples).
	Kind string `json:"kind"`
	// CapFarads sizes the buffering capacitor (ignored for "cont").
	CapFarads float64 `json:"cap_farads,omitempty"`
	// Watts is the harvester's mean ("const", "stoch") or peak ("solar")
	// power. Zero defaults to DefaultRFWatts.
	Watts float64 `json:"watts,omitempty"`
	// Sigma is the lognormal sigma for "stoch" (zero defaults to 0.4).
	Sigma float64 `json:"sigma,omitempty"`
	// Trace holds the per-cycle power samples for "trace".
	Trace []float64 `json:"trace,omitempty"`
}

// Validate reports whether the spec describes a constructible system,
// without constructing it.
func (s SystemSpec) Validate() error {
	switch s.Kind {
	case "cont":
		return nil
	case "const", "stoch", "solar":
		if s.CapFarads <= 0 {
			return fmt.Errorf("energy: %q spec needs a positive capacitor, got %v", s.Kind, s.CapFarads)
		}
		if s.Watts < 0 {
			return fmt.Errorf("energy: %q spec has negative harvest power %v", s.Kind, s.Watts)
		}
		return nil
	case "trace":
		if s.CapFarads <= 0 {
			return fmt.Errorf("energy: %q spec needs a positive capacitor, got %v", s.Kind, s.CapFarads)
		}
		_, err := NewTraceHarvester(s.Trace)
		return err
	case "":
		return fmt.Errorf("energy: spec has no harvester kind")
	default:
		return fmt.Errorf("energy: unknown harvester kind %q", s.Kind)
	}
}

// New constructs the power system the spec describes, fully charged. The
// seed pins every random draw of stochastic harvesters; deterministic
// kinds ignore it, so equal (spec, seed) pairs always yield systems with
// identical behavior.
func (s SystemSpec) New(seed uint64) (System, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := s.Watts
	if w == 0 {
		w = DefaultRFWatts
	}
	cap := CapBank(s.CapFarads)
	switch s.Kind {
	case "cont":
		return Continuous{}, nil
	case "const":
		return NewIntermittent(cap, ConstantHarvester{Watts: w}), nil
	case "stoch":
		sigma := s.Sigma
		if sigma == 0 {
			sigma = 0.4
		}
		return NewIntermittent(cap, NewStochasticHarvester(w, sigma, seed)), nil
	case "solar":
		return NewIntermittent(cap, NewSolarHarvester(w, seed)), nil
	default: // "trace", already validated
		h, err := NewTraceHarvester(s.Trace)
		if err != nil {
			return nil, err
		}
		return NewIntermittent(cap, h), nil
	}
}
