package serve

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/intermittest"
)

// ModelSource resolves model names for fleet specs.
type ModelSource interface {
	Model(name string) (fleet.Model, error)
}

// ModelCache is the serving-side model registry: each named network is
// prepared at most once per process and the resulting deployable model is
// shared, read-only, by every job that references it. Preparation goes
// through harness.Prepare, so with a CacheDir set the GENESIS report comes
// from the content-addressed report cache and a warm server trains
// nothing at all.
//
// Builds are per-model singleflight: the cache mutex is held only for map
// bookkeeping, never across harness.Prepare, so a submission referencing a
// cached model is not serialized behind another model's training. Callers
// asking for the same in-flight model wait on that one build.
type ModelCache struct {
	po harness.PrepareOptions

	mu         sync.Mutex
	entries    map[string]*modelEntry
	prepares   int64
	prototypes int64
}

// modelEntry is one model's singleflight slot: ready closes when the
// build finishes, after m and err are set (they are immutable from then
// on).
type modelEntry struct {
	ready chan struct{}
	m     fleet.Model
	err   error
}

// NewModelCache returns an empty cache preparing networks with po.
func NewModelCache(po harness.PrepareOptions) *ModelCache {
	return &ModelCache{po: po, entries: make(map[string]*modelEntry)}
}

// Model resolves one model name: "tiny" (the intermittence-test network,
// built in-process) or an evaluation network prepared via GENESIS.
func (c *ModelCache) Model(name string) (fleet.Model, error) {
	c.mu.Lock()
	if e, ok := c.entries[name]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.m, e.err
	}
	e := &modelEntry{ready: make(chan struct{})}
	c.entries[name] = e
	c.mu.Unlock()

	e.m, e.err = c.build(name)
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Errors are not cached: a later submission retries the build.
		delete(c.entries, name)
	} else {
		c.prepares++
		c.prototypes++
	}
	c.mu.Unlock()
	return e.m, e.err
}

// build constructs one model, outside any lock. Every cached model ships
// with its provisioning prototype, so campaigns referencing it restore
// pooled devices from the cache's deploy-once snapshots instead of each
// building their own (and the campaign-side Prototypes counter stays at
// zero for served jobs — the cache's prototype count is the source of
// truth).
func (c *ModelCache) build(name string) (fleet.Model, error) {
	var m fleet.Model
	switch {
	case name == "tiny":
		qm, x := intermittest.TinyModel(c.po.Seed)
		m = fleet.Model{Net: "tiny", QM: qm, Input: qm.QuantizeInput(x)}
	case slices.Contains(harness.Networks(), name):
		p, err := harness.Prepare(name, c.po)
		if err != nil {
			return fleet.Model{}, fmt.Errorf("serve: preparing %s: %w", name, err)
		}
		m = fleet.Model{Net: name, QM: p.Model, Input: p.QuantInput()}
	default:
		return fleet.Model{}, fmt.Errorf("serve: unknown model %q (have tiny, %v)", name, harness.Networks())
	}
	proto, err := fleet.NewPrototype(m)
	if err != nil {
		return fleet.Model{}, err
	}
	m.Proto = proto
	return m, nil
}

// Prepares reports how many distinct models have been built — jobs
// re-using a model do not increment it, which the lifecycle tests assert.
func (c *ModelCache) Prepares() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prepares
}

// CacheStats is the model cache's counter snapshot, served on /stats.
type CacheStats struct {
	// Models is the number of distinct models built and cached.
	Models int64 `json:"models"`
	// Prototypes is the number of deploy-once provisioning prototypes
	// built alongside them (one per cached model).
	Prototypes int64 `json:"prototypes"`
}

// CacheStats returns the counter snapshot.
func (c *ModelCache) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Models: c.prepares, Prototypes: c.prototypes}
}

// registry resolves a spec's model list into the map fleet campaigns
// consume.
func registry(src ModelSource, names []string) (map[string]fleet.Model, error) {
	out := make(map[string]fleet.Model, len(names))
	for _, n := range names {
		if _, ok := out[n]; ok {
			continue
		}
		m, err := src.Model(n)
		if err != nil {
			return nil, err
		}
		out[n] = m
	}
	return out, nil
}
