package serve

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/intermittest"
)

// ModelSource resolves model names for fleet specs.
type ModelSource interface {
	Model(name string) (fleet.Model, error)
}

// ModelCache is the serving-side model registry: each named network is
// prepared at most once per process and the resulting deployable model is
// shared, read-only, by every job that references it. Preparation goes
// through harness.Prepare, so with a CacheDir set the GENESIS report comes
// from the content-addressed report cache and a warm server trains
// nothing at all.
type ModelCache struct {
	mu       sync.Mutex
	po       harness.PrepareOptions
	models   map[string]fleet.Model
	prepares int64
}

// NewModelCache returns an empty cache preparing networks with po.
func NewModelCache(po harness.PrepareOptions) *ModelCache {
	return &ModelCache{po: po, models: make(map[string]fleet.Model)}
}

// Model resolves one model name: "tiny" (the intermittence-test network,
// built in-process) or an evaluation network prepared via GENESIS.
func (c *ModelCache) Model(name string) (fleet.Model, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[name]; ok {
		return m, nil
	}
	var m fleet.Model
	switch {
	case name == "tiny":
		qm, x := intermittest.TinyModel(c.po.Seed)
		m = fleet.Model{Net: "tiny", QM: qm, Input: qm.QuantizeInput(x)}
	case slices.Contains(harness.Networks(), name):
		p, err := harness.Prepare(name, c.po)
		if err != nil {
			return fleet.Model{}, fmt.Errorf("serve: preparing %s: %w", name, err)
		}
		m = fleet.Model{Net: name, QM: p.Model, Input: p.QuantInput()}
	default:
		return fleet.Model{}, fmt.Errorf("serve: unknown model %q (have tiny, %v)", name, harness.Networks())
	}
	c.prepares++
	c.models[name] = m
	return m, nil
}

// Prepares reports how many distinct models have been built — jobs
// re-using a model do not increment it, which the lifecycle tests assert.
func (c *ModelCache) Prepares() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prepares
}

// registry resolves a spec's model list into the map fleet campaigns
// consume.
func registry(src ModelSource, names []string) (map[string]fleet.Model, error) {
	out := make(map[string]fleet.Model, len(names))
	for _, n := range names {
		if _, ok := out[n]; ok {
			continue
		}
		m, err := src.Model(n)
		if err != nil {
			return nil, err
		}
		out[n] = m
	}
	return out, nil
}
