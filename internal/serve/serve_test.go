package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/harness"
)

// newTestServer returns a Server over the tiny model plus an httptest
// front-end, torn down at test end.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	cache := NewModelCache(harness.PrepareOptions{Seed: 1, Quick: true})
	s := New(cache, opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func tinySpec(devices int) fleet.Spec {
	return fleet.Spec{
		Devices:  devices,
		Seed:     1,
		Models:   []string{"tiny"},
		Runtimes: []string{"base", "tile-32", "sonic", "tails"},
		Powers: []fleet.PowerClass{
			{Name: "rf-100uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
			{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}},
		},
	}
}

func postSpec(t *testing.T, ts *httptest.Server, spec fleet.Spec) (jobDoc, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d jobDoc
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
	}
	return d, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobDoc {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var d jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want Status) jobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		d := getJob(t, ts, id)
		if d.Status == want {
			return d
		}
		if d.Status == StatusFailed {
			t.Fatalf("job %s failed: %s", id, d.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached status %q", id, want)
	return jobDoc{}
}

// TestServeSubmitPollResult is the basic lifecycle: POST a spec, poll
// until done, check the aggregates answer the campaign.
func TestServeSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	d, code := postSpec(t, ts, tinySpec(200))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if d.ID == "" || d.Hash == "" || d.Total != 200 {
		t.Fatalf("bad submit doc: %+v", d)
	}
	fin := waitStatus(t, ts, d.ID, StatusDone)
	if fin.Done != 200 || fin.Agg == nil {
		t.Fatalf("finished doc missing progress/aggregates: %+v", fin)
	}
	if fin.Agg.Devices != 200 || fin.Agg.Completed == 0 {
		t.Fatalf("degenerate aggregates: %+v", fin.Agg)
	}
	if fin.Agg.IMpJ.P50 <= 0 {
		t.Fatalf("IMpJ median = %v, want > 0", fin.Agg.IMpJ.P50)
	}
}

// TestServeDuplicateSpecCacheHit proves content-addressed dedup: the same
// spec resubmitted — while running and after completion — is answered from
// the original job with zero additional simulation. Counters are the
// evidence: campaigns_run and devices_simulated must not move.
func TestServeDuplicateSpecCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	spec := tinySpec(300)
	first, code := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}

	// Duplicate while queued/running: same job id, no new campaign.
	dup, code := postSpec(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("duplicate status = %d, want 200", code)
	}
	if dup.ID != first.ID || !dup.Deduped {
		t.Fatalf("duplicate not served from original job: %+v", dup)
	}

	waitStatus(t, ts, first.ID, StatusDone)
	before := s.Stats()
	if before.CampaignsRun != 1 {
		t.Fatalf("campaigns_run = %d after one unique spec, want 1", before.CampaignsRun)
	}

	// Duplicate after completion: full cached aggregates, zero re-simulation.
	done, code := postSpec(t, ts, spec)
	if code != http.StatusOK || done.ID != first.ID || done.Status != StatusDone {
		t.Fatalf("post-completion duplicate: code=%d doc=%+v", code, done)
	}
	if done.Agg == nil || done.Agg.Devices != 300 {
		t.Fatalf("cached answer missing aggregates: %+v", done.Agg)
	}
	after := s.Stats()
	if after.CampaignsRun != before.CampaignsRun || after.DevicesSimulated != before.DevicesSimulated {
		t.Fatalf("duplicate spec re-simulated: before=%+v after=%+v", before, after)
	}
	if after.Deduped != 2 {
		t.Fatalf("deduped counter = %d, want 2", after.Deduped)
	}

	// A different spec is NOT deduped.
	other := spec
	other.Seed++
	od, code := postSpec(t, ts, other)
	if code != http.StatusAccepted || od.ID == first.ID {
		t.Fatalf("distinct spec collided with cache: code=%d id=%s", code, od.ID)
	}
}

// TestServeShardSpellingDedup is the regression for the Shards-default
// dedup bug: a spec submitted with Shards unset and the same spec spelled
// with Shards:DefaultShards run the identical campaign, so the second
// submission must be answered from the first job's cache with zero
// additional simulation — not re-run as a "different" fleet.
func TestServeShardSpellingDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	implicit := tinySpec(300) // Shards: 0 — defaulted
	first, code := postSpec(t, ts, implicit)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	waitStatus(t, ts, first.ID, StatusDone)
	before := s.Stats()
	if before.CampaignsRun != 1 {
		t.Fatalf("campaigns_run = %d after one unique spec, want 1", before.CampaignsRun)
	}

	explicit := tinySpec(300)
	explicit.Shards = fleet.DefaultShards // same campaign, spelled out
	dup, code := postSpec(t, ts, explicit)
	if code != http.StatusOK {
		t.Fatalf("explicit-shards duplicate status = %d, want 200 (cache hit)", code)
	}
	if dup.ID != first.ID || !dup.Deduped || dup.Status != StatusDone {
		t.Fatalf("explicit-shards spec not served from original job: %+v", dup)
	}
	if dup.Agg == nil || dup.Agg.Devices != 300 {
		t.Fatalf("cached answer missing aggregates: %+v", dup.Agg)
	}
	after := s.Stats()
	if after.CampaignsRun != before.CampaignsRun || after.DevicesSimulated != before.DevicesSimulated {
		t.Fatalf("shard spelling re-simulated the fleet: before=%+v after=%+v", before, after)
	}

	// The tape knob is an executor choice with proven-identical results;
	// it must hit the same cache entry too.
	taped := tinySpec(300)
	taped.Tape = true
	td, code := postSpec(t, ts, taped)
	if code != http.StatusOK || td.ID != first.ID || !td.Deduped {
		t.Fatalf("tape-flagged duplicate not served from cache: code=%d doc=%+v", code, td)
	}
	if got := s.Stats(); got.CampaignsRun != before.CampaignsRun {
		t.Fatalf("tape knob re-simulated: %+v", got)
	}

	// A genuinely different shard grouping is NOT a duplicate.
	other := tinySpec(300)
	other.Shards = 32
	od, code := postSpec(t, ts, other)
	if code != http.StatusAccepted || od.ID == first.ID {
		t.Fatalf("distinct shard count collided with cache: code=%d id=%s", code, od.ID)
	}
	waitStatus(t, ts, od.ID, StatusDone)
}

// TestServeModelReuseAcrossJobs proves harness.Prepared-style model reuse:
// two jobs over the same model name trigger exactly one model build.
func TestServeModelReuseAcrossJobs(t *testing.T) {
	cache := NewModelCache(harness.PrepareOptions{Seed: 1, Quick: true})
	s := New(cache, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	a := tinySpec(50)
	b := tinySpec(50)
	b.Seed = 99 // distinct spec, same model
	da, _ := postSpec(t, ts, a)
	db, _ := postSpec(t, ts, b)
	waitStatus(t, ts, da.ID, StatusDone)
	waitStatus(t, ts, db.ID, StatusDone)
	if n := cache.Prepares(); n != 1 {
		t.Fatalf("two jobs over one model built it %d times, want 1", n)
	}
	if s.Stats().CampaignsRun != 2 {
		t.Fatalf("campaigns_run = %d, want 2", s.Stats().CampaignsRun)
	}
}

// TestServeCancellation cancels an in-flight job via DELETE and checks it
// stops short.
func TestServeCancellation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	d, code := postSpec(t, ts, tinySpec(50000))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	// Wait until it is actually simulating.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if doc := getJob(t, ts, d.ID); doc.Status == StatusRunning && doc.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+d.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitStatus(t, ts, d.ID, StatusCancelled)
	if fin.Done >= fin.Total {
		t.Fatalf("cancelled job simulated all %d devices", fin.Total)
	}
	// A cancelled job is not reused for dedup — resubmission retries it.
	retry, code := postSpec(t, ts, tinySpec(50000))
	if code != http.StatusAccepted || retry.ID == d.ID {
		t.Fatalf("cancelled job was reused: code=%d id=%s", code, retry.ID)
	}
}

// TestServeProgressStreams checks GET mid-run reports monotonic progress
// and live aggregates before completion.
func TestServeProgressStreams(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	d, _ := postSpec(t, ts, tinySpec(20000))
	sawPartial := false
	deadline := time.Now().Add(30 * time.Second)
	last := 0
	for time.Now().Before(deadline) {
		doc := getJob(t, ts, d.ID)
		if doc.Done < last {
			t.Fatalf("progress went backwards: %d -> %d", last, doc.Done)
		}
		last = doc.Done
		if doc.Status == StatusRunning && doc.Done > 0 && doc.Done < doc.Total && doc.Agg != nil {
			if doc.Agg.Devices == 0 {
				t.Fatal("mid-run aggregates empty despite progress")
			}
			sawPartial = true
		}
		if doc.Status == StatusDone {
			break
		}
	}
	if !sawPartial {
		t.Fatal("never observed streamed mid-run aggregates")
	}
}

// TestServeGracefulShutdown drains: the running job finishes, and new
// submissions are turned away with 503.
func TestServeGracefulShutdown(t *testing.T) {
	cache := NewModelCache(harness.PrepareOptions{Seed: 1, Quick: true})
	s := New(cache, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d, code := postSpec(t, ts, tinySpec(2000))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	// The in-flight job ran to completion during the drain.
	if doc := getJob(t, ts, d.ID); doc.Status != StatusDone || doc.Done != doc.Total {
		t.Fatalf("drained job state: %+v", doc)
	}
	// Post-drain submissions are rejected.
	if _, code := postSpec(t, ts, tinySpec(10)); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining {
		t.Fatal("healthz does not report draining")
	}
}

// TestServeShutdownDeadlineCancels: a drain whose deadline expires cancels
// both the in-flight job and the queued one behind it rather than hanging,
// and freezes their elapsed_s at cancellation.
func TestServeShutdownDeadlineCancels(t *testing.T) {
	cache := NewModelCache(harness.PrepareOptions{Seed: 1, Quick: true})
	s := New(cache, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d, _ := postSpec(t, ts, tinySpec(200000))
	queuedSpec := tinySpec(200000)
	queuedSpec.Seed = 2
	q, code := postSpec(t, ts, queuedSpec)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit status = %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if doc := getJob(t, ts, d.ID); doc.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	for _, id := range []string{d.ID, q.ID} {
		doc := getJob(t, ts, id)
		if doc.Status != StatusCancelled {
			t.Fatalf("deadline-expired drain left job %s %q", id, doc.Status)
		}
		// A cancelled job's clock is stopped: elapsed_s must not keep
		// growing after the fact (the runner stamps finished even for jobs
		// it skips).
		time.Sleep(60 * time.Millisecond)
		if again := getJob(t, ts, id); again.Elapsed != doc.Elapsed {
			t.Fatalf("cancelled job %s elapsed still ticking: %v -> %v", id, doc.Elapsed, again.Elapsed)
		}
	}
}

// TestServeConcurrentDoneReads hammers GET /jobs/{id} on a finished job
// from many goroutines. The done readout must be immutable — the summary
// is materialized once at finalization — so under -race this guards
// against quantile readout mutating shared sketch state per request.
func TestServeConcurrentDoneReads(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	d, _ := postSpec(t, ts, tinySpec(200))
	want := waitStatus(t, ts, d.ID, StatusDone)
	wantAgg, err := json.Marshal(want.Agg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(ts.URL + "/jobs/" + d.ID)
				if err != nil {
					t.Error(err)
					return
				}
				var doc jobDoc
				err = json.NewDecoder(resp.Body).Decode(&doc)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				got, err := json.Marshal(doc.Agg)
				if err != nil {
					t.Error(err)
					return
				}
				if doc.Agg == nil || !bytes.Equal(got, wantAgg) {
					t.Errorf("concurrent read corrupted aggregates: %s", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestServeThroughputCounters: after a campaign completes, /stats reports
// the fleet's cumulative charged-op total and positive ops/sec and
// devices/sec throughput rates, and the HTTP wire form carries the new
// fields. A second identical submission is deduped, so the cumulative
// counters must not move.
func TestServeThroughputCounters(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	d, _ := postSpec(t, ts, tinySpec(200))
	waitStatus(t, ts, d.ID, StatusDone)

	st := s.Stats()
	if st.OpsCharged <= 0 {
		t.Fatalf("OpsCharged = %d after a completed 200-device campaign", st.OpsCharged)
	}
	// Each completed device charges at least one op per inference, so the
	// fleet total must dominate the device count by orders of magnitude.
	if st.OpsCharged < st.DevicesSimulated {
		t.Fatalf("OpsCharged = %d < DevicesSimulated = %d", st.OpsCharged, st.DevicesSimulated)
	}
	if st.BusySeconds <= 0 {
		t.Fatalf("BusySeconds = %v after a completed campaign", st.BusySeconds)
	}
	if st.OpsPerSec <= 0 || st.DevicesPerSec <= 0 {
		t.Fatalf("throughput rates not positive: ops/s=%v dev/s=%v", st.OpsPerSec, st.DevicesPerSec)
	}
	if got := st.OpsPerSec * st.BusySeconds; got < float64(st.OpsCharged)*0.999 || got > float64(st.OpsCharged)*1.001 {
		t.Fatalf("OpsPerSec inconsistent with OpsCharged/BusySeconds: %v * %v = %v, want %d",
			st.OpsPerSec, st.BusySeconds, got, st.OpsCharged)
	}

	// Wire form: GET /stats must expose the counters and rates.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Stats Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Stats.OpsCharged != st.OpsCharged {
		t.Fatalf("/stats ops_charged = %d, want %d", doc.Stats.OpsCharged, st.OpsCharged)
	}
	if doc.Stats.OpsPerSec <= 0 || doc.Stats.DevicesPerSec <= 0 {
		t.Fatalf("/stats rates not positive: %+v", doc.Stats)
	}

	// A deduped resubmission answers from the finished job without
	// simulating a device, so work counters must be unchanged.
	if _, code := postSpec(t, ts, tinySpec(200)); code != http.StatusOK {
		t.Fatalf("dedup resubmit status = %d, want 200", code)
	}
	after := s.Stats()
	if after.OpsCharged != st.OpsCharged || after.DevicesSimulated != st.DevicesSimulated {
		t.Fatalf("dedup moved work counters: before %+v after %+v", st, after)
	}
}

// TestServeFinishedJobEviction: with a small retention bound, the oldest
// terminal job is evicted — its id 404s, and resubmitting its spec runs a
// fresh campaign instead of hitting the dedup cache.
func TestServeFinishedJobEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, MaxFinishedJobs: 2})
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		spec := tinySpec(50)
		spec.Seed = seed
		d, code := postSpec(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit seed %d: status %d", seed, code)
		}
		waitStatus(t, ts, d.ID, StatusDone)
		ids = append(ids, d.ID)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still served: status %d", resp.StatusCode)
	}
	// The two youngest survive.
	for _, id := range ids[1:] {
		if doc := getJob(t, ts, id); doc.Status != StatusDone {
			t.Fatalf("retained job %s lost: %+v", id, doc)
		}
	}
	// The evicted spec re-runs rather than dedups.
	before := s.Stats().CampaignsRun
	respec := tinySpec(50)
	respec.Seed = 1
	rd, code := postSpec(t, ts, respec)
	if code != http.StatusAccepted || rd.ID == ids[0] {
		t.Fatalf("evicted spec answered from cache: code=%d id=%s", code, rd.ID)
	}
	waitStatus(t, ts, rd.ID, StatusDone)
	if after := s.Stats().CampaignsRun; after != before+1 {
		t.Fatalf("campaigns_run = %d, want %d", after, before+1)
	}
}

// TestServeRejectsBadSpecs exercises validation surface: malformed JSON,
// unknown fields, unknown models, oversized fleets, missing jobs.
func TestServeRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxDevices: 1000})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", code)
	}
	if code := post(`{"bogus_field": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
	big, _ := json.Marshal(tinySpec(5000))
	if code := post(string(big)); code != http.StatusBadRequest {
		t.Errorf("oversized fleet: status %d", code)
	}
	bad := tinySpec(10)
	bad.Models = []string{"resnet"}
	bb, _ := json.Marshal(bad)
	if code := post(string(bb)); code != http.StatusBadRequest {
		t.Errorf("unknown model: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d", resp.StatusCode)
	}
}

// TestServeHealthz sanity-checks the liveness endpoint shape.
func TestServeHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var doc struct {
		OK    bool  `json:"ok"`
		Stats Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.OK {
		t.Fatal("healthz not ok")
	}
	if doc.Stats != (Stats{}) {
		t.Fatalf("fresh server has nonzero stats: %+v", doc.Stats)
	}
}

// TestServeQueueFull: with a single-slot queue and a long job occupying
// the runner, further distinct submissions get 503 rather than queueing
// without bound.
func TestServeQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	// Long-running job occupies the runner...
	if _, code := postSpec(t, ts, tinySpec(100000)); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	// ...second fills the queue slot (runner may have already drained the
	// first from the channel, so allow either outcome for this one)...
	s2 := tinySpec(100000)
	s2.Seed = 2
	_, code2 := postSpec(t, ts, s2)
	if code2 != http.StatusAccepted && code2 != http.StatusServiceUnavailable {
		t.Fatalf("second submit: %d", code2)
	}
	// ...then saturate: within a few distinct submissions the queue must
	// push back with 503.
	got503 := false
	for i := 0; i < 4 && !got503; i++ {
		sp := tinySpec(100000)
		sp.Seed = uint64(10 + i)
		_, code := postSpec(t, ts, sp)
		got503 = code == http.StatusServiceUnavailable
	}
	if !got503 {
		t.Fatal("queue never pushed back with 503")
	}
}

// TestServeStatsEndpoint: /stats rolls up the server counters, the fleet
// provisioning work of finished campaigns, and the model cache's build
// counters — and proves served jobs provision from the cache's prototype
// (pooled restores, no fresh deploys, no campaign-built prototypes).
func TestServeStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	d, code := postSpec(t, ts, tinySpec(64))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts, d.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var doc struct {
		Jobs       int        `json:"jobs"`
		Stats      Stats      `json:"stats"`
		ModelCache CacheStats `json:"model_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Jobs != 1 || doc.Stats.CampaignsRun != 1 || doc.Stats.DevicesSimulated != 64 {
		t.Fatalf("stats counters off: %+v", doc)
	}
	p := doc.Stats.Provision
	if p.Restores != 64 || p.FreshDeploys != 0 {
		t.Fatalf("served campaign did not provision from the pool: %+v", p)
	}
	if p.Prototypes != 0 {
		t.Fatalf("campaign built %d prototypes despite the model cache providing one", p.Prototypes)
	}
	if doc.ModelCache != (CacheStats{Models: 1, Prototypes: 1}) {
		t.Fatalf("model cache counters = %+v", doc.ModelCache)
	}
}
