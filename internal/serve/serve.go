// Package serve is the job-serving front-end over internal/fleet: an
// HTTP/JSON API that accepts fleet-campaign specs, queues them, dedups
// identical specs through their content address (a resubmitted spec is
// answered from the finished or in-flight job without re-simulating a
// single device), streams progress and aggregate statistics while a
// campaign runs, and supports cancellation and graceful drain.
//
//	POST   /jobs      submit a fleet.Spec        -> {id, status, ...}
//	GET    /jobs/{id} progress + aggregates      (streamed while running)
//	DELETE /jobs/{id} cancel a queued/running job
//	GET    /healthz   liveness + counters
//	GET    /stats     counters + model-cache + provisioning detail
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Options configures a Server.
type Options struct {
	// Workers bounds each campaign's simulation fan-out (0 = GOMAXPROCS).
	Workers int
	// MaxDevices rejects jobs larger than this (0 = DefaultMaxDevices).
	MaxDevices int
	// QueueDepth bounds the pending-job queue (0 = 64).
	QueueDepth int
	// MaxFinishedJobs bounds how many terminal jobs are retained for
	// GET/dedup before the oldest are evicted (0 = DefaultMaxFinishedJobs).
	MaxFinishedJobs int
}

// DefaultMaxDevices caps a single job's fleet size.
const DefaultMaxDevices = 1_000_000

// DefaultMaxFinishedJobs is the terminal-job retention bound. A retained
// terminal job costs O(summary) — its campaign's shard aggregates are
// dropped at finalization — so the server's footprint stays bounded no
// matter how many distinct specs a long-lived process serves.
const DefaultMaxFinishedJobs = 1024

// job is one submitted campaign.
type job struct {
	id     string
	hash   string
	spec   fleet.Spec
	cancel context.CancelFunc
	ctx    context.Context

	mu       sync.Mutex
	campaign *fleet.Campaign // nil once the job reaches a terminal state
	status   Status
	// summary is materialized exactly once, by the runner, when the job
	// completes. Sketch quantile readout mutates sketch internals, so the
	// aggregates of a finished campaign must never be read concurrently by
	// response handlers; handlers only ever see this immutable snapshot.
	summary   *fleet.Summary
	done      int // final device count, set at terminal state
	err       error
	dedupHits int64
	submitted time.Time
	finished  time.Time
}

func (j *job) setStatus(st Status) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

// Server queues and runs fleet jobs. Construct with New, mount Handler on
// an http.Server, and call Shutdown to drain.
type Server struct {
	models ModelSource
	opt    Options

	mu       sync.Mutex
	jobs     map[string]*job
	byHash   map[string]*job
	retired  []*job // terminal jobs in finalization order, oldest first
	queue    chan *job
	draining bool
	idSeq    int64

	runnerDone chan struct{}

	submitted atomic.Int64
	deduped   atomic.Int64
	campaigns atomic.Int64
	devices   atomic.Int64
	ops       atomic.Int64 // charged ops across all completed campaigns
	busyNS    atomic.Int64 // wall time the runner spent inside campaigns

	provMu sync.Mutex
	prov   fleet.ProvisionStats
}

// New returns a Server with its job runner started.
func New(models ModelSource, opt Options) *Server {
	if opt.MaxDevices <= 0 {
		opt.MaxDevices = DefaultMaxDevices
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 64
	}
	if opt.MaxFinishedJobs <= 0 {
		opt.MaxFinishedJobs = DefaultMaxFinishedJobs
	}
	s := &Server{
		models:     models,
		opt:        opt,
		jobs:       make(map[string]*job),
		byHash:     make(map[string]*job),
		queue:      make(chan *job, opt.QueueDepth),
		runnerDone: make(chan struct{}),
	}
	go s.runner()
	return s
}

// runner executes queued jobs one campaign at a time; each campaign
// parallelizes internally across opt.Workers simulation workers.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for j := range s.queue {
		if j.ctx.Err() != nil {
			s.finalize(j, StatusCancelled, nil, nil)
			continue
		}
		j.setStatus(StatusRunning)
		s.campaigns.Add(1)
		start := time.Now()
		res, err := j.campaign.Run(j.ctx, s.opt.Workers)
		s.busyNS.Add(time.Since(start).Nanoseconds())
		switch {
		case err == nil:
			s.finalize(j, StatusDone, res, nil)
		case errors.Is(err, context.Canceled):
			s.finalize(j, StatusCancelled, nil, nil)
		default:
			s.finalize(j, StatusFailed, nil, err)
		}
	}
}

// finalize moves j to a terminal state. The summary is materialized here,
// once, while the runner is the aggregates' sole owner (quantile readout
// mutates sketch internals, so it must never run on shared state), and
// the campaign — 64 shard aggregates' worth of memory — is dropped: a
// retained terminal job costs O(summary).
func (s *Server) finalize(j *job, st Status, res *fleet.Result, err error) {
	var sum *fleet.Summary
	done, _ := j.campaign.Progress()
	if res != nil {
		v := res.Agg.Summary()
		sum, done = &v, res.Done
		s.devices.Add(int64(res.Agg.Devices))
		s.ops.Add(res.Agg.Ops)
		s.provMu.Lock()
		s.prov.Add(res.Provision)
		s.provMu.Unlock()
	}
	j.mu.Lock()
	j.status, j.err, j.summary, j.done = st, err, sum, done
	j.campaign = nil
	if j.finished.IsZero() {
		j.finished = time.Now()
	}
	j.mu.Unlock()
	s.retire(j)
}

// retire records j's finalization order and evicts the oldest retained
// terminal jobs beyond opt.MaxFinishedJobs, so s.jobs/s.byHash stay
// bounded on a long-lived server.
func (s *Server) retire(j *job) {
	s.mu.Lock()
	s.retired = append(s.retired, j)
	for len(s.retired) > s.opt.MaxFinishedJobs {
		old := s.retired[0]
		s.retired = s.retired[1:]
		delete(s.jobs, old.id)
		if s.byHash[old.hash] == old {
			delete(s.byHash, old.hash)
		}
	}
	s.mu.Unlock()
}

// Stats is the server's cumulative counter snapshot. The lifecycle tests
// use it to prove duplicate jobs are answered without re-simulation, and
// the provisioning tests that pooled campaigns restore devices instead of
// re-deploying them.
type Stats struct {
	Submitted        int64 `json:"submitted"`
	Deduped          int64 `json:"deduped"`
	CampaignsRun     int64 `json:"campaigns_run"`
	DevicesSimulated int64 `json:"devices_simulated"`
	// OpsCharged is the cumulative charged-op total across every device
	// the server has simulated; BusySeconds is the wall time the runner
	// spent inside campaigns. Their ratios below are the fleet operator's
	// throughput readout — how much simulated work this server retires
	// per second of campaign time.
	OpsCharged    int64                `json:"ops_charged"`
	BusySeconds   float64              `json:"busy_s"`
	OpsPerSec     float64              `json:"ops_per_sec"`
	DevicesPerSec float64              `json:"devices_per_sec"`
	Provision     fleet.ProvisionStats `json:"provision"`
}

// Stats returns the counter snapshot. Throughput rates divide cumulative
// work by cumulative campaign wall time, so they are lifetime averages
// (zero until the first campaign finishes accruing time).
func (s *Server) Stats() Stats {
	s.provMu.Lock()
	prov := s.prov
	s.provMu.Unlock()
	st := Stats{
		Submitted:        s.submitted.Load(),
		Deduped:          s.deduped.Load(),
		CampaignsRun:     s.campaigns.Load(),
		DevicesSimulated: s.devices.Load(),
		OpsCharged:       s.ops.Load(),
		BusySeconds:      float64(s.busyNS.Load()) / 1e9,
		Provision:        prov,
	}
	if st.BusySeconds > 0 {
		st.OpsPerSec = float64(st.OpsCharged) / st.BusySeconds
		st.DevicesPerSec = float64(st.DevicesSimulated) / st.BusySeconds
	}
	return st
}

// Shutdown drains the server: new submissions are rejected immediately,
// queued and running jobs are given until ctx expires to finish, then
// cancelled. It returns nil on a clean drain, ctx.Err() otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.runnerDone:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-s.runnerDone
		return ctx.Err()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, draining := len(s.jobs), s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": draining,
		"jobs":     jobs,
		"stats":    s.Stats(),
	})
}

// handleStats serves the observability rollup: the server's cumulative
// counters (including fleet provisioning work — restores, page traffic,
// fresh deploys) plus the model cache's build counters when the model
// source exposes them.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	doc := map[string]any{
		"jobs":  jobs,
		"stats": s.Stats(),
	}
	if mc, ok := s.models.(interface{ CacheStats() CacheStats }); ok {
		doc["model_cache"] = mc.CacheStats()
	}
	writeJSON(w, http.StatusOK, doc)
}

// jobDoc is the wire form of a job's state.
type jobDoc struct {
	ID        string         `json:"id"`
	Hash      string         `json:"hash"`
	Status    Status         `json:"status"`
	Deduped   bool           `json:"deduped,omitempty"`
	DedupHits int64          `json:"dedup_hits,omitempty"`
	Done      int            `json:"done"`
	Total     int            `json:"total"`
	Error     string         `json:"error,omitempty"`
	Elapsed   float64        `json:"elapsed_s"`
	Agg       *fleet.Summary `json:"aggregates,omitempty"`
}

// doc renders the job, including streamed mid-campaign aggregates while
// it runs. It is read-only with respect to shared aggregate state: a
// terminal job's summary was materialized once at finalization, and a
// running job's snapshot merges into a fresh, handler-local accumulator.
func (j *job) doc(deduped bool) jobDoc {
	j.mu.Lock()
	st, sum, jerr := j.status, j.summary, j.err
	hits, sub, fin := j.dedupHits, j.submitted, j.finished
	done, campaign := j.done, j.campaign
	j.mu.Unlock()
	if campaign != nil {
		done, _ = campaign.Progress()
	}
	d := jobDoc{
		ID: j.id, Hash: j.hash, Status: st,
		Deduped: deduped, DedupHits: hits,
		Done: done, Total: j.spec.Devices,
	}
	end := time.Now()
	if !fin.IsZero() {
		end = fin
	}
	d.Elapsed = end.Sub(sub).Seconds()
	if jerr != nil {
		d.Error = jerr.Error()
	}
	switch {
	case sum != nil:
		d.Agg = sum
	case st == StatusRunning && campaign != nil:
		if snap, err := campaign.Snapshot(); err == nil {
			live := snap.Agg.Summary()
			d.Agg = &live
		}
	}
	return d
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec fleet.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	if spec.Devices > s.opt.MaxDevices {
		writeErr(w, http.StatusBadRequest, "fleet of %d devices exceeds the %d-device job cap",
			spec.Devices, s.opt.MaxDevices)
		return
	}
	hash := spec.Hash()

	// Fast path: an identical spec already queued, running, or finished is
	// answered from its job — zero re-simulation.
	if d, ok := s.lookupDup(hash); ok {
		writeJSON(w, http.StatusOK, d)
		return
	}

	// Reject drained submissions before resolving models: preparation may
	// train a network for minutes, pointless work for a job that the
	// post-resolve draining re-check would turn away anyway.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Resolve models outside the server lock: a first reference to an
	// evaluation network may train (or hit the GENESIS report cache).
	models, err := registry(s.models, spec.Models)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	campaign, err := fleet.NewCampaign(spec, models)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		hash: hash, spec: spec, campaign: campaign,
		ctx: ctx, cancel: cancel,
		status: StatusQueued, submitted: time.Now(),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Re-check under the lock: a duplicate may have landed while models
	// resolved.
	if dup, ok := s.byHash[hash]; ok && dup.reusable() {
		s.mu.Unlock()
		cancel()
		s.recordDup(dup)
		writeJSON(w, http.StatusOK, dup.doc(true))
		return
	}
	s.idSeq++
	j.id = fmt.Sprintf("job-%d-%s", s.idSeq, hash[:12])
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		writeErr(w, http.StatusServiceUnavailable, "job queue is full")
		return
	}
	s.jobs[j.id] = j
	s.byHash[hash] = j
	s.mu.Unlock()
	s.submitted.Add(1)
	writeJSON(w, http.StatusAccepted, j.doc(false))
}

// reusable reports whether a duplicate submission can be answered from
// this job. Failed and cancelled jobs are not reused — resubmitting one
// retries it.
func (j *job) reusable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusQueued || j.status == StatusRunning || j.status == StatusDone
}

// lookupDup finds a reusable job with this content address.
func (s *Server) lookupDup(hash string) (jobDoc, bool) {
	s.mu.Lock()
	dup, ok := s.byHash[hash]
	s.mu.Unlock()
	if !ok || !dup.reusable() {
		return jobDoc{}, false
	}
	s.recordDup(dup)
	return dup.doc(true), true
}

func (s *Server) recordDup(j *job) {
	s.deduped.Add(1)
	j.mu.Lock()
	j.dedupHits++
	j.mu.Unlock()
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.doc(false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	j.cancel()
	// A queued job will be skipped by the runner; mark it cancelled now so
	// the response reflects its fate.
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, j.doc(false))
}
