package sonic

import (
	"math/rand/v2"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/mcu"
)

// tinyModel builds the smallest model exercising conv, relu, sparse and
// dense layers, so one inference is a few thousand device operations and a
// failure can be injected at every single operation boundary.
func tinyModel(t testing.TB) (*dnn.QuantModel, []float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(21, 0))
	n := dnn.NewNetwork("tiny", dnn.Shape{1, 1, 12})
	n.Add(
		dnn.NewConv(rng, 2, 1, 1, 3), // -> 2x1x10
		dnn.NewReLU(),
		dnn.NewFlatten(),
		dnn.NewDense(rng, 8, 20),
		dnn.NewReLU(),
		dnn.NewDense(rng, 3, 8),
	)
	n.Layers[0].(*dnn.Conv).Prune(0.05)
	n.Layers[3] = dnn.NewSparseDense(n.Layers[3].(*dnn.Dense), 0.05)
	ds := dataset.HAR(21, 2, 0)
	x := ds.Train[0].X[:12]
	qm, err := dnn.Quantize(n, [][]float64{x})
	if err != nil {
		t.Fatal(err)
	}
	return qm, x
}

// countOps measures the total operations of one continuous inference.
func countOps(t testing.TB, qm *dnn.QuantModel, x []float64, rt core.Runtime) int64 {
	t.Helper()
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Infer(img, qm.QuantizeInput(x)); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range dev.Stats().OpCount {
		total += c
	}
	return total
}

// TestExhaustiveFailureBoundaries is the strongest correctness evidence in
// the suite: for a single power failure placed after EVERY prefix length of
// the instruction stream (1, 2, ..., N ops), SONIC must complete and
// produce the continuous-power result bit-exactly. This covers every
// partially-executed store, every half-finished buffer swap, and every
// checkpoint boundary.
func TestExhaustiveFailureBoundaries(t *testing.T) {
	qm, x := tinyModel(t)
	qin := qm.QuantizeInput(x)
	want := qm.Forward(qin)
	total := countOps(t, qm, x, SONIC{})
	if total > 40000 {
		t.Fatalf("tiny model too big for exhaustive sweep: %d ops", total)
	}
	for n := int64(1); n < total+10; n++ {
		dev := mcu.New(energy.NewFailAfterOps(int(n), 0)) // one failure, then continuous
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := (SONIC{}).Infer(img, qin)
		if err != nil {
			t.Fatalf("failure after op %d: %v", n, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("failure after op %d corrupted logit %d: got %d want %d",
					n, i, got[i], want[i])
			}
		}
	}
	t.Logf("verified all %d single-failure placements", total+9)
}

// The same sweep for the tiled Alpaca implementation (sparser stride keeps
// the test fast; the redo-log protocol has no per-op phase variety beyond
// its period anyway).
func TestExhaustiveFailureBoundariesTile(t *testing.T) {
	qm, x := tinyModel(t)
	qin := qm.QuantizeInput(x)
	want := qm.Forward(qin)
	rt := baseline.Tile{TileSize: 4}
	total := countOps(t, qm, x, rt)
	for n := int64(1); n < total+10; n += 3 {
		dev := mcu.New(energy.NewFailAfterOps(int(n), 0))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.Infer(img, qin)
		if err != nil {
			t.Fatalf("failure after op %d: %v", n, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("failure after op %d corrupted logit %d", n, i)
			}
		}
	}
}

// A conv where one filter is pruned away entirely exercises SONIC's
// bias-only finalize path (FinPar == -1).
func TestFullyPrunedFilterBiasOnly(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 0))
	n := dnn.NewNetwork("deadfilter", dnn.Shape{1, 1, 10})
	conv := dnn.NewConv(rng, 3, 1, 1, 3)
	// Kill filter 1 completely; keep the others.
	conv.Mask = make([]bool, conv.W.Len())
	for i := range conv.Mask {
		f := i / 3
		conv.Mask[i] = f != 1
	}
	conv.ApplyMask()
	conv.B.Set(0.4, 1) // its outputs must equal the bias
	n.Add(conv, dnn.NewFlatten(), dnn.NewDense(rng, 2, 24))
	x := make([]float64, 10)
	for i := range x {
		x[i] = 0.2
	}
	qm, err := dnn.Quantize(n, [][]float64{x})
	if err != nil {
		t.Fatal(err)
	}
	if qm.Layers[0].NZ == nil {
		t.Fatal("expected a sparse conv")
	}
	qin := qm.QuantizeInput(x)
	want := qm.Forward(qin)
	for _, period := range []int{0, 41, 167} {
		var p energy.System = energy.Continuous{}
		if period > 0 {
			p = energy.NewFailAfterOps(period, period)
		}
		dev := mcu.New(p)
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		if img.Layers[0].FinPar.Get(1) != -1 {
			t.Fatal("filter 1 should have FinPar -1")
		}
		got, err := (SONIC{}).Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("period %d: logit %d differs", period, i)
			}
		}
	}
}
