package sonic_test

import (
	"testing"

	"repro/internal/intermittest"
	"repro/internal/sonic"
)

// TestSONICWARSilent sweeps every brown-out placement with the WAR shadow
// tracker armed, for both sparse-kernel strategies: loop-continuation's
// idempodent iterations (double-buffered dense passes, undo-logged sparse
// accumulates) must leave no unlogged read-then-write hazard, and every
// schedule must reproduce the continuous-power logits bit-exactly.
func TestSONICWARSilent(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	for _, rt := range []sonic.SONIC{{}, {SparseViaBuffering: true}} {
		rep, err := intermittest.SweepRuntime(qm, x, rt,
			intermittest.Options{CheckWAR: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Errorf("%s not intermittence-safe: %s", rep.Runtime, rep.Summary())
		}
		if rep.GoldenWAR != 0 {
			t.Errorf("%s golden run has WAR hazards: %v", rep.Runtime, rep.GoldenWAR)
		}
	}
}
