package sonic

import (
	"repro/internal/mcu"
)

// Fused execution of the loop-continuation kernels: each uniform inner
// loop's per-iteration charge profile is captured as an mcu.Block, the
// device funds a whole number of iterations in one call
// (mcu.ChargeBlock), and the data movement for exactly those iterations
// runs as one bulk loop over raw memory words (internal/kern). The
// first unfunded iteration — and every non-uniform iteration (resume
// points, CSR row advances, mid-checkpoint-period entries) — runs on the
// unchanged scalar path, so brown-outs land at the identical op index
// with identical partial energy consumption, and logits, Stats, reboot
// placement, and WAR records stay bit-exact (the fused differential
// oracle and TestTapeInterpreterDifferential prove it per runtime).

// canFuse reports whether fused kernels may engage: the device allows it
// (no tracer, journal, or WAR shadow; devirtualized power) and no
// PutObserver is attached to FRAM, where all image state lives — an
// observer must see every store, which only the scalar path issues.
func (s *Exec) canFuse() bool {
	return s.Dev.CanFuse() && !s.Dev.FRAM.Observed()
}

// unitBlock builds the charge profile of one fused commit unit from the
// per-iteration body ops and returns it with the unit's iteration count.
// Under loop continuation (Every == 1) a unit is one iteration ending in
// a cursor store; under periodic checkpointing a unit is Every
// iterations, the first Every-1 charging only an index increment and the
// last the register/stack dump plus the cursor store. The body slice is
// consumed (op counts are scaled in place).
func (s *Exec) unitBlock(tokC mcu.SectionTok, body ...mcu.BlockOp) (*mcu.Block, int) {
	per := 1
	if s.Every > 1 {
		per = s.Every
		for i := range body {
			body[i].N *= per
		}
		body = append(body, mcu.BlockOp{Tok: tokC, Kind: mcu.OpIncrement, N: per - 1},
			mcu.BlockOp{Tok: tokC, Kind: mcu.OpStoreFRAM, N: s.RegWords})
	}
	return s.Dev.NewBlock(append(body, mcu.BlockOp{Tok: tokC, Kind: s.cursorKind(), N: 1})...), per
}

// forceUnitBlock builds the charge profile of one iteration that always
// commits through ForceCheckpoint (the sparse undo-logging loop): even
// checkpointing runtimes pay the register dump and cursor store on every
// iteration there. The body slice is consumed.
func (s *Exec) forceUnitBlock(tokC mcu.SectionTok, body ...mcu.BlockOp) *mcu.Block {
	if s.Every > 1 {
		body = append(body, mcu.BlockOp{Tok: tokC, Kind: mcu.OpStoreFRAM, N: s.RegWords})
	}
	return s.Dev.NewBlock(append(body, mcu.BlockOp{Tok: tokC, Kind: s.cursorKind(), N: 1})...)
}

// cursorKind is the op kind StoreIndex charges for the durable cursor.
func (s *Exec) cursorKind() mcu.OpKind {
	if s.Dev.JITIndexCheckpoint {
		return mcu.OpStoreSRAM
	}
	return mcu.OpStoreFRAM
}

// fuseIters funds as many whole commit units as fit in [i, n) and
// returns the funded iteration count (0 when the buffer cannot pay for
// one unit, or when a periodic-checkpoint loop is mid-period — the
// scalar path must reach the next durable commit first).
func (s *Exec) fuseIters(b *mcu.Block, per, i, n int) int {
	if per > 1 && s.sinceCk != 0 {
		return 0
	}
	units := (n - i) / per
	if units <= 0 {
		return 0
	}
	return s.Dev.ChargeBlock(b, units) * per
}

// fuseCommit makes the final fused cursor durable. The scalar path
// stores the cursor at every commit; only the last value survives, and
// with no journal, tracer, or observer attached the intermediate stores
// are unobservable, so one coalesced write leaves identical state.
func (s *Exec) fuseCommit(c Cursor) {
	s.Img.Ctl.Put(slotCursor, c.Pack())
	if s.Every > 1 {
		s.sinceCk = 0
	}
}

// FuseUnit is unitBlock for runtimes layered on Exec (TAILS): it builds
// the commit-unit charge profile when fusion may engage and returns a nil
// block (scalar-only) otherwise, so callers pass the result straight to
// FuseMapTok.
func (s *Exec) FuseUnit(tokC mcu.SectionTok, body ...mcu.BlockOp) (*mcu.Block, int) {
	if !s.canFuse() {
		return nil, 1
	}
	return s.unitBlock(tokC, body...)
}

// FuseMapTok is MapLayerTok with the fused fast path (fuseMap) exported
// for runtimes layered on Exec.
func (s *Exec) FuseMapTok(tokK, tokC mcu.SectionTok, blk *mcu.Block, per int, start Cursor, n int, span func(i0, m int), body func(i int)) {
	s.fuseMap(tokK, tokC, blk, per, start, n, span, body)
}

// fuseMap is MapLayerTok with a fused fast path: span(i0, m) performs m
// iterations' data movement in bulk after blk funds them; the remainder
// falls through to the scalar body. Pass blk == nil to force the scalar
// path (its op stream is identical to MapLayerTok's).
func (s *Exec) fuseMap(tokK, tokC mcu.SectionTok, blk *mcu.Block, per int, start Cursor, n int, span func(i0, m int), body func(i int)) {
	dev := s.Dev
	for i := start.I; i < n; {
		if blk != nil {
			if m := s.fuseIters(blk, per, i, n); m > 0 {
				span(i, m)
				i += m
				s.fuseCommit(Cursor{Layer: start.Layer, Pass: start.Pass, I: i})
				continue
			}
		}
		dev.SetSectionTok(tokK)
		dev.Op(mcu.OpBranch)
		body(i)
		dev.SetSectionTok(tokC)
		s.Checkpoint(Cursor{Layer: start.Layer, Pass: start.Pass, I: i + 1})
		i++
	}
}
