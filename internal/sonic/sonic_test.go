package sonic

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
)

// buildModel trains a small HAR network with all layer kinds (pruned conv,
// dense FC, sparse FC, relu) and quantizes it.
func buildModel(t testing.TB) (*dnn.QuantModel, []dataset.Example) {
	t.Helper()
	ds := dataset.HAR(3, 240, 12)
	n := dnn.HARNet(3)
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 2
	dnn.Train(n, ds, cfg)
	n.Layers[0].(*dnn.Conv).Prune(0.03)
	n.Layers[3] = dnn.NewSparseDense(n.Layers[3].(*dnn.Dense), 0.02)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		t.Fatal(err)
	}
	return qm, ds.Test
}

// buildPoolModel exercises a conv+pool topology (MNIST-like, untrained —
// arithmetic equivalence does not need accuracy).
func buildPoolModel(t testing.TB) (*dnn.QuantModel, []float64) {
	t.Helper()
	n := dnn.MNISTNet(5)
	ds := dataset.Digits(5, 4, 0)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	return qm, ds.Train[1].X
}

func assertEqualQ(t *testing.T, got, want []fixed.Q15, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: logit %d: got %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

func TestSONICMatchesHostReferenceContinuous(t *testing.T) {
	qm, ex := buildModel(t)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex {
		qin := qm.QuantizeInput(e.X)
		want := qm.Forward(qin)
		got, err := SONIC{}.Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, want, "continuous")
	}
}

func TestSONICMatchesHostOnConvPoolTopology(t *testing.T) {
	qm, x := buildPoolModel(t)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	qin := qm.QuantizeInput(x)
	want := qm.Forward(qin)
	got, err := SONIC{}.Infer(img, qin)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualQ(t, got, want, "mnist-topology")
}

// The paper's core guarantee: SONIC completes and produces the
// continuous-power result under ANY power schedule. Sweep failure periods
// down to a handful of operations per charge.
func TestSONICCorrectUnderDenseFailureInjection(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	want := qm.Forward(qin)
	for _, period := range []int{60, 97, 231, 1009, 5003} {
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SONIC{}.Infer(img, qin)
		if err != nil {
			t.Fatalf("period %d: SONIC must always complete: %v", period, err)
		}
		assertEqualQ(t, got, want, "injected")
		if dev.Stats().Reboots == 0 {
			t.Errorf("period %d: expected reboots", period)
		}
	}
}

// Property: for random failure periods, SONIC's output is exactly the host
// reference's.
func TestSONICEquivalenceProperty(t *testing.T) {
	qm, ex := buildModel(t)
	inputs := make([][]fixed.Q15, 0, 4)
	wants := make([][]fixed.Q15, 0, 4)
	for i := 0; i < 4; i++ {
		qin := qm.QuantizeInput(ex[i].X)
		inputs = append(inputs, qin)
		wants = append(wants, qm.Forward(qin))
	}
	f := func(seed uint32) bool {
		period := 50 + int(seed%5000)
		sample := int(seed) % len(inputs)
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			return false
		}
		got, err := SONIC{}.Infer(img, inputs[sample])
		if err != nil {
			return false
		}
		for i := range got {
			if got[i] != wants[sample][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSONICCompletesOnAllCapacitors(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	want := qm.Forward(qin)
	for _, cap := range []energy.Capacitor{energy.Cap100uF, energy.Cap1mF, energy.Cap50mF} {
		dev := mcu.New(energy.NewIntermittent(cap, energy.ConstantHarvester{Watts: energy.DefaultRFWatts}))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SONIC{}.Infer(img, qin)
		if err != nil {
			t.Fatalf("cap %.0fuF: %v", cap.C*1e6, err)
		}
		assertEqualQ(t, got, want, "capacitor")
	}
}

func TestSONICStochasticHarvester(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[1].X)
	want := qm.Forward(qin)
	dev := mcu.New(energy.NewIntermittent(energy.Cap100uF,
		energy.NewStochasticHarvester(energy.DefaultRFWatts, 0.4, 7)))
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SONIC{}.Infer(img, qin)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualQ(t, got, want, "stochastic")
}

func TestSONICFasterThanTilingSlowerThanBase(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	run := func(rt core.Runtime) float64 {
		dev := mcu.New(energy.Continuous{})
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Infer(img, qin); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().EnergyNJ()
	}
	base := run(baseline.Base{})
	tile8 := run(baseline.Tile{TileSize: 8})
	sonic := run(SONIC{})
	if sonic <= base {
		t.Errorf("SONIC (%v) should cost somewhat more than base (%v)", sonic, base)
	}
	if sonic >= tile8 {
		t.Errorf("SONIC (%v) must beat tile-8 (%v)", sonic, tile8)
	}
	t.Logf("energy: base=%.1fuJ sonic=%.1fuJ tile8=%.1fuJ; sonic/base=%.2fx tile8/sonic=%.2fx",
		base/1e3, sonic/1e3, tile8/1e3, sonic/base, tile8/sonic)
}

func TestSONICReusesImageAcrossInferences(t *testing.T) {
	// Back-to-back inferences on one deployed image must be independent.
	qm, ex := buildModel(t)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		qin := qm.QuantizeInput(ex[i].X)
		got, err := SONIC{}.Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, qm.Forward(qin), "reuse")
	}
}

func TestCursorPackUnpack(t *testing.T) {
	cases := []Cursor{
		{}, {Layer: 5, Pass: 2, Pos: 3200, I: 4607},
		{Layer: 63, Pass: 3, Pos: 1<<20 - 1, I: 1<<20 - 1},
	}
	for _, c := range cases {
		if got := Unpack(c.Pack()); got != c {
			t.Errorf("pack/unpack %+v -> %+v", c, got)
		}
	}
}

func BenchmarkSONICInferHAR(b *testing.B) {
	qm, ex := buildModel(b)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		b.Fatal(err)
	}
	qin := qm.QuantizeInput(ex[0].X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SONIC{}).Infer(img, qin); err != nil {
			b.Fatal(err)
		}
	}
}

// The §6.2.2 ablation: sparse undo-logging must (a) compute the same
// result as loop-ordered buffering and (b) be significantly cheaper on
// sparse layers, where buffering wastes energy copying unmodified
// partials.
func TestSparseUndoLoggingAblation(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	want := qm.Forward(qin)

	run := func(rt core.Runtime) float64 {
		dev := mcu.New(energy.Continuous{})
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, want, rt.Name())
		return dev.Stats().EnergyNJ()
	}
	withSUL := run(SONIC{})
	without := run(SONIC{SparseViaBuffering: true})
	if without <= withSUL {
		t.Errorf("loop-ordered buffering on sparse FC should cost more: %v vs %v", without, withSUL)
	}
	t.Logf("sparse FC: undo-logging %.0fuJ vs buffering %.0fuJ (%.1fx saved)",
		withSUL/1e3, without/1e3, without/withSUL)
}

// The ablated kernel must also be correct under failure injection.
func TestSparseBufferedCorrectUnderFailures(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[1].X)
	want := qm.Forward(qin)
	for _, period := range []int{997, 5003} {
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := (SONIC{SparseViaBuffering: true}).Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, want, "buffered-injected")
	}
}

// The §10 future-architecture estimate: eliminating per-iteration FRAM
// index writes (via a just-in-time checkpointing index cache) should save
// on the order of 14% of SONIC's system energy — and must not change
// results, even under failure injection.
func TestJITIndexCheckpointArchitecture(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	want := qm.Forward(qin)

	run := func(jit bool, period int) float64 {
		var p energy.System = energy.Continuous{}
		if period > 0 {
			p = energy.NewFailAfterOps(period, period)
		}
		dev := mcu.New(p)
		dev.JITIndexCheckpoint = jit
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SONIC{}.Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, want, "jit")
		return dev.Stats().EnergyNJ()
	}

	stock := run(false, 0)
	jit := run(true, 0)
	saving := 1 - jit/stock
	if saving < 0.05 || saving > 0.30 {
		t.Errorf("JIT index checkpoint saving = %.1f%%, expected ~14%% (5-30%%)", saving*100)
	}
	t.Logf("JIT index-checkpoint architecture saves %.1f%% of SONIC energy (paper estimate: 14%%)", saving*100)

	// Correctness must hold under power failures too (the cache flushes at
	// brown-out, so indices persist).
	run(true, 777)
}

// A network with two sparse layers exercises the undo-log read-index reset
// between layers.
func TestTwoSparseLayersUndoLogReset(t *testing.T) {
	ds := dataset.HAR(11, 120, 8)
	rng := rand.New(rand.NewPCG(11, 0))
	n := dnn.NewNetwork("twosparse", dnn.Shape{3, 1, 32})
	n.Add(dnn.NewFlatten(),
		dnn.NewDense(rng, 48, 96), dnn.NewReLU(),
		dnn.NewDense(rng, 24, 48), dnn.NewReLU(),
		dnn.NewDense(rng, 6, 24))
	dnn.Train(n, ds, dnn.TrainConfig{Epochs: 1, LR: 0.004, Momentum: 0.9, Decay: 1, Seed: 1})
	n.Layers[1] = dnn.NewSparseDense(n.Layers[1].(*dnn.Dense), 0.02)
	n.Layers[3] = dnn.NewSparseDense(n.Layers[3].(*dnn.Dense), 0.02)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	qin := qm.QuantizeInput(ds.Test[0].X)
	want := qm.Forward(qin)
	for _, period := range []int{0, 83, 419, 1993} {
		var p energy.System = energy.Continuous{}
		if period > 0 {
			p = energy.NewFailAfterOps(period, period)
		}
		dev := mcu.New(p)
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SONIC{}.Infer(img, qin)
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		assertEqualQ(t, got, want, "two-sparse")
	}
}

// Solar harvesting: wildly varying recharge times must not affect results.
func TestSONICSolarHarvester(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[2].X)
	want := qm.Forward(qin)
	dev := mcu.New(energy.NewIntermittent(energy.Cap100uF, energy.NewSolarHarvester(5e-3, 3)))
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SONIC{}.Infer(img, qin)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualQ(t, got, want, "solar")
	if dev.Stats().DeadSeconds <= 0 {
		t.Error("solar run should accumulate dead time")
	}
}

// Time-varying trace-driven power must not affect results either.
func TestSONICTraceHarvester(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[3].X)
	want := qm.Forward(qin)
	trace, err := energy.NewTraceHarvester([]float64{5e-3, 1e-3, 8e-3, 2e-4})
	if err != nil {
		t.Fatal(err)
	}
	dev := mcu.New(energy.NewIntermittent(energy.Cap100uF, trace))
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SONIC{}.Infer(img, qin)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualQ(t, got, want, "trace")
}
