package sonic

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/kern"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/tape"
)

// TapeLayerFn returns a LayerFn executing convolution and pooling layers
// from the compiled program's pre-decoded tables — the layers whose
// interpreted kernels pay a div/mod coordinate decode on every inner
// iteration — and everything else through the software kernels, which are
// already decode-free. The issued op stream (every charged load, section
// switch, and cursor commit) is identical to runLayerSONIC's, so logits,
// Stats, reboot placement, and WAR records are bit-exact
// (TestTapeInterpreterDifferential, the fork oracle).
//
// Checkpointing runtimes reuse it unchanged: the checkpoint policy lives
// in Exec.Every, not in the layer walk.
func TapeLayerFn(p *tape.Program) LayerFn {
	return func(s *Exec, li int, parity bool, start Cursor) {
		l := &s.Img.Layers[li]
		switch l.Q.Kind {
		case dnn.QConv:
			tl := &p.Layers[li]
			src, dst := ActBufs(s.Img, parity)
			s.Dev.SetSection(tl.Name, mcu.PhaseControl)
			s.tapeConvLayer(l, tl, src, dst, start)
		case dnn.QPool:
			tl := &p.Layers[li]
			src, dst := ActBufs(s.Img, parity)
			s.Dev.SetSection(tl.Name, mcu.PhaseControl)
			s.tapePoolLayer(l, tl, src, dst, start)
		case dnn.QSparseDense:
			if s.SparseViaBuffering {
				s.RunLayerSoftware(li, parity, start)
				break
			}
			tl := &p.Layers[li]
			src, dst := ActBufs(s.Img, parity)
			s.Dev.SetSection(tl.Name, mcu.PhaseControl)
			s.tapeSparseLayer(l, tl, src, dst, start)
		default:
			s.RunLayerSoftware(li, parity, start)
		}
	}
}

// tapeConvLayer is convLayer with every coordinate decode read from the
// program: the filter-element decode (kx/ky/ci/f) comes from WSrc and
// WAccBase, the first-element-of-filter test from First, the inner
// position decode (oy, ox) from PosOff, and the finalize filter decode
// from FilterOf. The NZ boundary probe loads are still issued — they are
// charged device work — but their values feed nothing the tables don't
// already answer.
func (s *Exec) tapeConvLayer(l *core.LayerImage, tl *tape.Layer, src, dst *mem.Region, start Cursor) {
	q := l.Q
	positions := tl.Positions
	dev := s.Dev
	// Hoist the tables into locals: dev.Load/Store are opaque calls, so
	// slice reads through the tl pointer would reload the header (and
	// re-bounds-check) on every inner iteration.
	wSrc, wAcc, first, posOff, filterOf := tl.WSrc, tl.WAccBase, tl.First, tl.PosOff, tl.FilterOf
	name := tl.Name
	// Pre-resolve the layer's two attribution sections once: the inner loop
	// flips kernel↔control per iteration, and a token switch is an index
	// load where the string path rebuilds and compares a Section value.
	tokK := dev.SectionToken(name, mcu.PhaseKernel)
	tokC := dev.SectionToken(name, mcu.PhaseControl)

	// Fused fast path: the inner loop's charge profile is uniform within
	// one filter element (one branch, the src load, the multiply, the
	// previous-generation load+add except on a filter's first element,
	// the dest store, and the commit), so whole runs of funded iterations
	// execute as bulk word loops.
	fuse := s.canFuse()
	var blkFirst, blkRest *mcu.Block
	var per int
	if fuse {
		blkFirst, per = s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedMul, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		blkRest, _ = s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 2},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedMul, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
	}
	srcW := src.ROWords()

	if start.Pass == 0 {
		for pos := start.Pos; pos < tl.Elems; pos++ {
			dev.SetSectionTok(tokC)
			widx := pos
			if l.NZ != nil {
				widx = int(dev.Load(l.NZ, pos))
				if pos > 0 {
					dev.Load(l.NZ, pos-1) // boundary probe, pre-decoded into First
				}
			}
			firstOfFilter := first[pos]
			wv := fixed.Q15(dev.Load(l.W, widx))
			srcBase := int(wSrc[widx])
			base := int(wAcc[widx])
			dest, inter := AccBufs(s.Img, pos)

			iStart := 0
			if pos == start.Pos {
				iStart = start.I
			}
			for i := iStart; i < positions; {
				if fuse {
					blk := blkRest
					if firstOfFilter {
						blk = blkFirst
					}
					if m := s.fuseIters(blk, per, i, positions); m > 0 {
						if firstOfFilter {
							kern.ConvFirst(dest.Words(), srcW, base, srcBase, posOff, i, m, int64(wv))
						} else {
							kern.ConvMAC(dest.Words(), inter.ROWords(), srcW, base, srcBase, posOff, i, m, int64(wv))
						}
						i += m
						s.fuseCommit(Cursor{Layer: start.Layer, Pos: pos, I: i})
						continue
					}
				}
				dev.SetSectionTok(tokK)
				dev.Op(mcu.OpBranch)
				x := fixed.Q15(dev.Load(src, srcBase+int(posOff[i])))
				dev.Op(mcu.OpFixedMul)
				var a fixed.Acc
				if !firstOfFilter {
					a = fixed.Acc(dev.Load(inter, base+i))
					dev.Op(mcu.OpFixedAdd)
				}
				dev.Store(dest, base+i, int64(a.MAC(wv, x)))
				dev.SetSectionTok(tokC)
				s.Checkpoint(Cursor{Layer: start.Layer, Pos: pos, I: i + 1})
				i++
			}
			s.Transition(name, Cursor{Layer: start.Layer, Pos: pos + 1})
		}
		start = Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
	}

	fin := func(i int) {
		f := int(filterOf[i])
		var par int64
		if l.FinPar != nil {
			par = dev.Load(l.FinPar, f)
		} else {
			par = int64(((f+1)*tl.EPF - 1) & 1)
		}
		bq := fixed.Q15(dev.Load(l.B, f))
		var a fixed.Acc
		if par >= 0 {
			final, _ := AccBufs(s.Img, int(par))
			a = fixed.Acc(dev.Load(final, i))
			dev.Op(mcu.OpFixedAdd)
		}
		dev.Store(dst, i, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	}
	n := q.F * positions
	if !fuse {
		s.MapLayerTok(tokK, tokC, start, n, fin)
		return
	}
	// Fused finalize, one segment per filter: the charge profile is
	// constant within a filter (the parity lookup when FinPar exists, the
	// bias load, and — except for fully-pruned filters — the partial load
	// and add) but varies across filters, so segments charge separately.
	dstW := dst.Words()
	for i := start.I; i < n; {
		f := int(filterOf[i])
		segEnd := (f + 1) * positions
		if segEnd > n {
			segEnd = n
		}
		var par int64
		if l.FinPar != nil {
			par = l.FinPar.Get(f)
		} else {
			par = int64(((f+1)*tl.EPF - 1) & 1)
		}
		loads := 2 // bias + partial
		if l.FinPar != nil {
			loads++
		}
		adds := 1
		if par < 0 {
			loads--
			adds = 0
		}
		blk, _ := s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: loads},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: adds},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		for i < segEnd {
			if m := s.fuseIters(blk, per, i, segEnd); m > 0 {
				var finalW []int64
				if par >= 0 {
					final, _ := AccBufs(s.Img, int(par))
					finalW = final.ROWords()
				}
				kern.FinalizeConst(dstW, finalW, l.B.Get(f), i, i, m, q.Shift)
				i += m
				s.fuseCommit(Cursor{Layer: start.Layer, Pass: start.Pass, I: i})
				continue
			}
			dev.SetSectionTok(tokK)
			dev.Op(mcu.OpBranch)
			fin(i)
			dev.SetSectionTok(tokC)
			s.Checkpoint(Cursor{Layer: start.Layer, Pass: start.Pass, I: i + 1})
			i++
		}
	}
}

// tapeSparseLayer is sparseLayer with the CSR row walk fused end-to-end:
// instead of charging one row at a time (re-probing RowPtr at every row
// boundary on the host), it builds a charge *train* over the compiled span
// tables — one variable-profile segment per row remainder plus one
// boundary segment per row advance, with the advance's extra branch and
// probe-load ops pre-derived from consecutive SpRow differences — and
// funds the whole remaining layer in a single ChargeTrain call.
// kern.CSRSpans then executes exactly the funded iterations across row
// boundaries, committing each touched row's accumulator and one coalesced
// cursor at the end. ChargeTrain drains the same integer pJ at the same
// iteration boundaries as per-row ChargeBlock and the scalar walk, so
// brown-outs land at identical op indices with identical partial energy
// and the interpreted path remains a bit-exact oracle
// (TestTapeInterpreterDifferential, the fork oracle).
//
// The one resume iteration whose undo-log read index is already past
// (rd > pos) stays scalar, exactly as in sparseLayer; after it executes,
// rd == pos and the train resumes.
func (s *Exec) tapeSparseLayer(l *core.LayerImage, tl *tape.Layer, src, dst *mem.Region, start Cursor) {
	if !s.canFuse() {
		// Observed or scalar-forced device: the interpreted walk already
		// issues the canonical scalar op stream.
		s.sparseLayer(l, tl.Name, src, dst, start)
		return
	}
	q := l.Q
	dev := s.Dev
	acc := s.Img.AccA
	ctl := s.Img.Ctl
	nnz := len(q.W)
	name := tl.Name
	tokK := dev.SectionToken(name, mcu.PhaseKernel)
	tokC := dev.SectionToken(name, mcu.PhaseControl)
	var per int

	switch start.Pass {
	case 0:
		blkZero, perZ := s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		accW := acc.Words()
		s.fuseMap(tokK, tokC, blkZero, perZ, start, q.Out, func(i0, m int) {
			kern.Zero(accW, i0, m)
		}, func(o int) {
			dev.Store(acc, o, 0)
		})
		dev.Store(ctl, slotRead, 0)
		start = Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
		fallthrough
	case 1:
		// In-row iteration profile (identical to sparseLayer's blkRow): one
		// branch, seven loads (the failing RowPtr probe, the read index,
		// the original partial, the canonical slot, weight, column,
		// activation), the three-store two-phase update, and the MAC.
		blkRow := s.forceUnitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 7},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 3},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedMul, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1})
		// Boundary iterations add one successful RowPtr probe (a branch
		// and a load) per row advanced; cache one block per distinct
		// advance count (networks have very few).
		var bnd map[int]*mcu.Block
		bndBlock := func(adv int) *mcu.Block {
			if adv == 0 {
				return blkRow
			}
			if b, ok := bnd[adv]; ok {
				return b
			}
			b := s.forceUnitBlock(tokC,
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1 + adv},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 7 + adv},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 3},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedMul, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1})
			if bnd == nil {
				bnd = make(map[int]*mcu.Block)
			}
			bnd[adv] = b
			return b
		}
		spStart, spLen, spRow, spanOf := tl.SpStart, tl.SpLen, tl.SpRow, tl.SpanOf
		wW, colsW, srcW := l.W.ROWords(), l.Cols.ROWords(), src.ROWords()
		accW := acc.Words()
		var segs []mcu.TrainSeg
		row := start.I
		for pos := start.Pos; pos < nnz; {
			if int(ctl.Get(slotRead)) <= pos {
				// Build the remaining layer as a segment train from the
				// live (pos, row) state; ChargeTrain funds a prefix.
				si := int(spanOf[pos])
				segs = segs[:0]
				p, r := pos, row
				for sj := si; p < nnz; sj++ {
					end := int(spStart[sj]) + int(spLen[sj])
					inRow := end - p
					if adv := int(spRow[sj]) - r; adv > 0 {
						segs = append(segs, mcu.TrainSeg{Blk: bndBlock(adv), N: 1})
						inRow--
						p++
					}
					if inRow > 0 {
						segs = append(segs, mcu.TrainSeg{Blk: blkRow, N: inRow})
						p += inRow
					}
					r = int(spRow[sj])
				}
				if n := dev.ChargeTrain(segs); n > 0 {
					endPos, _, lastRow, canon := kern.CSRSpans(wW, colsW, srcW, accW, spStart, spLen, spRow, si, pos, n)
					pos = endPos
					row = lastRow
					ctl.Put(slotCanonical, canon)
					ctl.Put(slotRead, int64(pos))
					s.fuseCommit(Cursor{Layer: start.Layer, Pass: 1, Pos: pos, I: row})
					continue
				}
			}
			// Scalar iteration: the brown-out boundary (first unfunded
			// iteration) and the rd > pos resume, verbatim from
			// sparseLayer.
			dev.SetSectionTok(tokK)
			dev.Op(mcu.OpBranch)
			for int(dev.Load(l.RowPtr, row+1)) <= pos {
				dev.Op(mcu.OpBranch)
				row++
			}
			rd := int(dev.Load(ctl, slotRead))
			if rd <= pos {
				orig := dev.Load(acc, row)
				dev.Store(ctl, slotCanonical, orig)
				dev.Store(ctl, slotRead, int64(pos+1))
				dev.MarkLogged(acc, row)
			}
			canon := fixed.Acc(dev.Load(ctl, slotCanonical))
			wv := fixed.Q15(dev.Load(l.W, pos))
			col := int(dev.Load(l.Cols, pos))
			x := fixed.Q15(dev.Load(src, col))
			dev.Op(mcu.OpFixedMul)
			dev.Op(mcu.OpFixedAdd)
			dev.Store(acc, row, int64(canon.MAC(wv, x)))
			dev.SetSectionTok(tokC)
			s.ForceCheckpoint(Cursor{Layer: start.Layer, Pass: 1, Pos: pos + 1, I: row})
			pos++
		}
		start = Cursor{Layer: start.Layer, Pass: 2}
		s.Transition(name, start)
		fallthrough
	default:
		var blkFin *mcu.Block
		blkFin, per = s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 2},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		accW, bW, dstW := acc.ROWords(), l.B.ROWords(), dst.Words()
		s.fuseMap(tokK, tokC, blkFin, per, start, q.Out, func(i0, m int) {
			kern.FinalizeVec(dstW, accW, bW, i0, i0, m, q.Shift)
		}, func(o int) {
			bq := fixed.Q15(dev.Load(l.B, o))
			a := fixed.Acc(dev.Load(acc, o))
			dev.Op(mcu.OpFixedAdd)
			dev.Store(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
		})
	}
}

// MapLayerTok is MapLayer with the per-iteration kernel/control section
// flips going through pre-resolved tokens. The op stream (branch charge,
// body, checkpoint) is identical to MapLayer's.
func (s *Exec) MapLayerTok(tokK, tokC mcu.SectionTok, start Cursor, n int, body func(i int)) {
	dev := s.Dev
	for i := start.I; i < n; i++ {
		dev.SetSectionTok(tokK)
		dev.Op(mcu.OpBranch)
		body(i)
		dev.SetSectionTok(tokC)
		s.Checkpoint(Cursor{Layer: start.Layer, Pass: start.Pass, I: i + 1})
	}
}

// tapePoolLayer is RunLayerSoftware's pooling case with the window-origin
// decode ((ci, oy, ox) from i — three div/mods per output) read from
// PoolBase.
func (s *Exec) tapePoolLayer(l *core.LayerImage, tl *tape.Layer, src, dst *mem.Region, start Cursor) {
	q := l.Q
	w := q.InShape[2]
	poolBase := tl.PoolBase
	tokK := s.Dev.SectionToken(tl.Name, mcu.PhaseKernel)
	tokC := s.Dev.SectionToken(tl.Name, mcu.PhaseControl)
	var blk *mcu.Block
	var per int
	if s.canFuse() {
		win := q.Window * q.Window
		blk, per = s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1 + win},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: win},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
	}
	srcW, dstW := src.ROWords(), dst.Words()
	s.fuseMap(tokK, tokC, blk, per, start, len(poolBase), func(i0, m int) {
		kern.MaxPool(dstW, srcW, poolBase, q.Window, w, i0, m)
	}, func(i int) {
		rowStart := int(poolBase[i])
		best := fixed.MinusOne
		for ky := 0; ky < q.Window; ky++ {
			for kx := 0; kx < q.Window; kx++ {
				s.Dev.Op(mcu.OpBranch)
				v := fixed.Q15(s.Dev.Load(src, rowStart+kx))
				best = fixed.Max(best, v)
			}
			rowStart += w
		}
		s.Dev.Store(dst, i, int64(best))
	})
}
