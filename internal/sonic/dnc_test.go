package sonic

import (
	"errors"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
)

// TestCompletionMatrix pins the §9.1 completion behaviour: the naive
// baseline never completes on intermittent power; Tile-128 exceeds the
// 100 µF energy buffer (non-termination) but completes on 1 mF; Tile-8,
// Tile-32, and SONIC complete everywhere; and SONIC's execution time is
// consistent across capacitor sizes.
func TestCompletionMatrix(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)

	// Steady-state inference time: live time plus amortized dead time
	// (consumed energy over harvest power). A single measured run would
	// credit the initial free charge of a large capacitor; in steady state
	// every consumed joule must be harvested, which is what the paper's
	// repeated-inference measurements see.
	run := func(rt core.Runtime, cap energy.Capacitor) (error, float64) {
		dev := mcu.New(energy.NewIntermittent(cap, energy.ConstantHarvester{Watts: energy.DefaultRFWatts}))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		_, err = rt.Infer(img, qin)
		st := dev.Stats()
		steady := st.LiveSeconds(dev.Cost.ClockHz) + st.EnergyNJ()*1e-9/energy.DefaultRFWatts
		return err, steady
	}

	cases := []struct {
		rt       core.Runtime
		cap      energy.Capacitor
		complete bool
	}{
		{baseline.Base{}, energy.Cap100uF, false},
		{baseline.Base{}, energy.Cap1mF, false},
		{baseline.Tile{TileSize: 8}, energy.Cap100uF, true},
		{baseline.Tile{TileSize: 32}, energy.Cap100uF, true},
		{baseline.Tile{TileSize: 128}, energy.Cap100uF, false},
		{baseline.Tile{TileSize: 128}, energy.Cap1mF, true},
		{SONIC{}, energy.Cap100uF, true},
		{SONIC{}, energy.Cap1mF, true},
	}
	for _, c := range cases {
		err, _ := run(c.rt, c.cap)
		if c.complete && err != nil {
			t.Errorf("%s @ %.0fuF should complete: %v", c.rt.Name(), c.cap.C*1e6, err)
		}
		if !c.complete && !errors.Is(err, mcu.ErrDoesNotComplete) {
			t.Errorf("%s @ %.0fuF should NOT complete, got %v", c.rt.Name(), c.cap.C*1e6, err)
		}
	}

	// SONIC's time is consistent across power systems (§9.1).
	_, t100 := run(SONIC{}, energy.Cap100uF)
	_, t50m := run(SONIC{}, energy.Cap50mF)
	if ratio := t100 / t50m; ratio > 1.5 {
		t.Errorf("SONIC time should be consistent across capacitors: 100uF %.3fs vs 50mF %.3fs", t100, t50m)
	}
}
