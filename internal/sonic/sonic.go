// Package sonic implements SONIC, the paper's software system for DNN
// inference on intermittent power (§6). SONIC deliberately "breaks the
// rules" of task-based systems: instead of privatizing and redo-logging
// task-shared state, it writes loop indices directly to non-volatile
// memory (loop continuation) and makes every loop iteration idempotent via
// loop-ordered buffering (convolutions and dense fully-connected layers)
// and sparse undo-logging (sparse fully-connected layers).
//
// Progress state is a single packed FRAM word — (layer, pass, pos, i) —
// so each checkpoint is one atomic store, and Task_Next_Filter's
// "atomic { swap buffers; i = 0; pos++ }" (Listing 1) is a single word
// update: the double-buffer parity is derived from pos.
//
// SONIC produces logits bit-identical to dnn.QuantModel.Forward under any
// power schedule.
package sonic

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/kern"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/tape"
)

// SONIC is the software-only runtime. The zero value is the paper's
// configuration; SparseViaBuffering is an ablation knob that disables
// sparse undo-logging and runs sparse fully-connected layers with
// loop-ordered buffering instead, paying the buffer-copying cost §6.2.2
// describes ("SONIC ends up spending most of its time and energy copying
// unmodified activations between buffers").
type SONIC struct {
	SparseViaBuffering bool

	// Tape selects the pre-decoded op-tape executor for the conv and
	// pooling kernels (see TapeLayerFn). Bit-exact with the interpreted
	// walk; it only changes host simulation speed.
	Tape bool
}

// Name identifies the runtime.
func (s SONIC) Name() string {
	if s.SparseViaBuffering {
		return "sonic-nosul" // no sparse undo-logging
	}
	return "sonic"
}

// Control-block slots.
const (
	slotCursor    = 0 // packed (layer, pass, pos, i)
	slotRead      = 1 // sparse undo-logging read index
	slotCanonical = 2 // sparse undo-logging canonical value
)

// Cursor packs SONIC's entire progress state into one word so that every
// checkpoint is a single atomic FRAM store. TAILS reuses it.
type Cursor struct {
	Layer int
	Pass  int // 0 = main pass, then layer-specific passes
	Pos   int // outer loop: filter element / input element / nonzero index
	I     int // inner loop: output position / output index
}

// Pack encodes the cursor as a single word.
func (c Cursor) Pack() int64 {
	return int64(c.Layer)<<44 | int64(c.Pass)<<40 | int64(c.Pos)<<20 | int64(c.I)
}

// Unpack decodes a packed cursor word.
func Unpack(v int64) Cursor {
	return Cursor{
		Layer: int(v >> 44),
		Pass:  int(v>>40) & 0xf,
		Pos:   int(v>>20) & 0xfffff,
		I:     int(v) & 0xfffff,
	}
}

// Infer runs one inference with loop continuation. It completes on any
// power system whose buffer can fund a single loop iteration.
func (s SONIC) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	return s.ResumeInfer(img, nil)
}

// ResumeInfer implements core.Resumer: Infer minus LoadInput, with an
// optional pre-attempt hook for restoring a forked prefix. Loop
// continuation needs no special resume handling — recovering from whatever
// the restored cursor says is exactly its normal reboot path.
func (s SONIC) ResumeInfer(img *core.Image, atReboot func() error) ([]fixed.Q15, error) {
	e := &Exec{Img: img, Dev: img.Dev, SparseViaBuffering: s.SparseViaBuffering}
	e.Dev.Emit(mcu.TraceRunBegin, s.Name(), 0)
	if atReboot != nil {
		if err := atReboot(); err != nil {
			return nil, err
		}
	}
	var layerFn LayerFn = runLayerSONIC
	if s.Tape {
		layerFn = TapeLayerFn(tape.Get(img.Model))
	}
	if err := e.Dev.Run(func() { e.ResetVolatile(); e.Run(layerFn) }); err != nil {
		return nil, err
	}
	e.Dev.FlushTrace()
	return img.ReadOutput(FinalParity(img.Model)), nil
}

// FinalParity computes which activation buffer holds the output: every
// value-producing layer flips the ping-pong parity; flatten does not.
func FinalParity(qm *dnn.QuantModel) bool {
	parity := false
	for i := range qm.Layers {
		if qm.Layers[i].Kind != dnn.QFlatten {
			parity = !parity
		}
	}
	return parity
}

// Exec is the volatile execution context shared by SONIC and TAILS; it is
// reconstructed from the packed cursor after every reboot.
type Exec struct {
	Img *core.Image
	Dev *mcu.Device

	// SparseViaBuffering selects the ablated sparse-FC kernel.
	SparseViaBuffering bool

	// Every > 1 switches the progress policy from loop continuation to
	// periodic checkpointing (package checkpoint): the durable cursor is
	// stored only every Every-th iteration, together with a register/stack
	// dump of RegWords words, and the in-between iterations keep their
	// index in volatile registers. Boundaries (generation, pass, layer)
	// and sparse undo-logging iterations always checkpoint, because
	// re-execution across them is not idempotent.
	Every    int
	RegWords int

	sinceCk int
}

// ResetVolatile clears the engine's register-resident state; runtimes call
// it at the top of every attempt, since a reboot wipes registers.
func (s *Exec) ResetVolatile() { s.sinceCk = 0 }

// LayerFn executes (or resumes) one layer from the given start cursor,
// reading activations from src and writing to dst. SONIC and TAILS supply
// different implementations for the compute-heavy layers.
type LayerFn func(s *Exec, li int, parity bool, start Cursor)

// runLayerSONIC is SONIC's all-software layer dispatch.
func runLayerSONIC(s *Exec, li int, parity bool, start Cursor) {
	s.RunLayerSoftware(li, parity, start)
}

// Checkpoint writes the packed cursor — SONIC's per-iteration progress
// store, the "unsafe" direct NV write that loop continuation legalizes.
func (s *Exec) Checkpoint(c Cursor) {
	if s.Every > 1 {
		s.sinceCk++
		if s.sinceCk < s.Every {
			// Index stays in a volatile register; a failure here replays
			// from the last durable checkpoint (wasted work).
			s.Dev.Op(mcu.OpIncrement)
			return
		}
	}
	s.ForceCheckpoint(c)
}

// ForceCheckpoint makes the cursor durable regardless of the checkpoint
// policy. Under periodic checkpointing it also dumps the modelled
// register/stack state, as software checkpointing systems must.
func (s *Exec) ForceCheckpoint(c Cursor) {
	if s.Every > 1 {
		s.sinceCk = 0
		s.Dev.Emit(mcu.TraceCheckpoint, "", int64(s.RegWords))
		s.Dev.Ops(mcu.OpStoreFRAM, s.RegWords)
	} else {
		s.Dev.Emit(mcu.TraceLoopIndex, "", c.Pack())
	}
	// StoreIndex lets the device model apply the §10 just-in-time index
	// checkpoint architecture when enabled; on the stock MSP430 model it
	// is a plain FRAM store.
	s.Dev.StoreIndex(s.Img.Ctl, slotCursor, c.Pack())
	s.Dev.Progress()
}

// Transition marks a task boundary (filter-element or layer change): one
// cursor store plus the lightweight dispatch cost.
func (s *Exec) Transition(layer string, c Cursor) {
	s.Dev.SetSection(layer, mcu.PhaseTransition)
	s.Dev.Op(mcu.OpTransition)
	s.ForceCheckpoint(c)
}

// Run executes (or resumes) the whole inference. On entry it decodes the
// cursor from FRAM and jumps to the interrupted iteration.
func (s *Exec) Run(layerFn LayerFn) {
	dev := s.Dev
	dev.SetSection("other", mcu.PhaseControl)
	cur := Unpack(dev.Load(s.Img.Ctl, slotCursor))

	parity := false
	for li := 0; li < len(s.Img.Layers); li++ {
		q := s.Img.Layers[li].Q
		flips := q.Kind != dnn.QFlatten
		if li < cur.Layer {
			if flips {
				parity = !parity
			}
			continue // already completed before the last failure
		}
		start := Cursor{Layer: li}
		if li == cur.Layer {
			start = cur
		}
		layerFn(s, li, parity, start)
		if flips {
			parity = !parity
		}
		s.Transition(core.LayerName(s.Img.Model, li), Cursor{Layer: li + 1})
	}
}

// RunLayerSoftware executes one layer from the given resume point using
// SONIC's software kernels.
func (s *Exec) RunLayerSoftware(li int, parity bool, start Cursor) {
	l := &s.Img.Layers[li]
	src, dst := ActBufs(s.Img, parity)
	name := core.LayerName(s.Img.Model, li)
	s.Dev.SetSection(name, mcu.PhaseControl)

	switch l.Q.Kind {
	case dnn.QConv:
		s.convLayer(l, name, src, dst, start)
	case dnn.QDense:
		s.denseLayer(l, name, src, dst, start)
	case dnn.QSparseDense:
		if s.SparseViaBuffering {
			s.sparseLayerBuffered(l, name, src, dst, start)
		} else {
			s.sparseLayer(l, name, src, dst, start)
		}
	case dnn.QReLU:
		tokK := s.Dev.SectionToken(name, mcu.PhaseKernel)
		tokC := s.Dev.SectionToken(name, mcu.PhaseControl)
		var blk *mcu.Block
		var per int
		if s.canFuse() {
			blk, per = s.unitBlock(tokC,
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		}
		srcW, dstW := src.ROWords(), dst.Words()
		s.fuseMap(tokK, tokC, blk, per, start, l.Q.InShape.Len(), func(i0, m int) {
			kern.ReLU(dstW, srcW, i0, i0, m)
		}, func(i int) {
			v := fixed.ReLU(fixed.Q15(s.Dev.Load(src, i)))
			s.Dev.Store(dst, i, int64(v))
		})
	case dnn.QPool:
		q := l.Q
		c0, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
		oh, ow := h/q.Window, w/q.Window
		s.MapLayer(name, start, c0*oh*ow, func(i int) {
			ox := i % ow
			oy := (i / ow) % oh
			ci := i / (ow * oh)
			best := fixed.MinusOne
			for ky := 0; ky < q.Window; ky++ {
				for kx := 0; kx < q.Window; kx++ {
					s.Dev.Op(mcu.OpBranch)
					v := fixed.Q15(s.Dev.Load(src, (ci*h+oy*q.Window+ky)*w+ox*q.Window+kx))
					best = fixed.Max(best, v)
				}
			}
			s.Dev.Store(dst, i, int64(best))
		})
	case dnn.QFlatten:
		// identity: nothing to execute
	}
}

// ActBufs returns (src, dst) activation buffers for a parity.
func ActBufs(img *core.Image, parity bool) (*mem.Region, *mem.Region) {
	if parity {
		return img.ActB, img.ActA
	}
	return img.ActA, img.ActB
}

// AccBufs returns (dest, inter) partial buffers for a filter-element index:
// the double buffer swaps every outer iteration, so parity is pos&1.
func AccBufs(img *core.Image, pos int) (dest, inter *mem.Region) {
	if pos&1 == 0 {
		return img.AccA, img.AccB
	}
	return img.AccB, img.AccA
}

// mapLayer runs an elementwise pass (ReLU, pooling) with loop continuation
// on the single index i.
func (s *Exec) MapLayer(name string, start Cursor, n int, body func(i int)) {
	dev := s.Dev
	for i := start.I; i < n; i++ {
		dev.SetSection(name, mcu.PhaseKernel)
		dev.Op(mcu.OpBranch)
		body(i)
		dev.SetSection(name, mcu.PhaseControl)
		s.Checkpoint(Cursor{Layer: start.Layer, Pass: start.Pass, I: i + 1})
	}
}

// convLayer is the loop-ordered-buffering convolution of Fig. 7/Listing 1.
// The outer loop (pos) walks filter elements — the NZ list for pruned
// filters, every element for dense ones. Each inner iteration applies the
// current filter element to one output position, reading only the
// *previous* generation's partials (inter) and writing only the current
// generation's (dest): no location is both read and written, so every
// iteration is idempotent.
//
// Because loops are ordered so a filter's elements are consecutive, each
// filter's output block alternates buffers independently of the others:
// the first element of a filter writes without reading (so no generation
// crosses filters), and the finalize pass picks up each filter's partials
// from the parity of its last element.
func (s *Exec) convLayer(l *core.LayerImage, name string, src, dst *mem.Region, start Cursor) {
	q := l.Q
	h, w := q.InShape[1], q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	positions := oh * ow
	elemsPerFilter := q.C * q.KH * q.KW
	elems := l.W.Len()
	if l.NZ != nil {
		elems = l.NZ.Len()
	}
	dev := s.Dev

	if start.Pass == 0 {
		for pos := start.Pos; pos < elems; pos++ {
			// Task entry (Task_Convolve): load the filter element into
			// volatile registers. Re-executed after every power failure.
			dev.SetSection(name, mcu.PhaseControl)
			widx := pos
			first := pos == 0
			if l.NZ != nil {
				widx = int(dev.Load(l.NZ, pos))
				if pos > 0 {
					prev := int(dev.Load(l.NZ, pos-1))
					first = prev/elemsPerFilter != widx/elemsPerFilter
				}
			} else {
				first = widx%elemsPerFilter == 0
			}
			wv := fixed.Q15(dev.Load(l.W, widx))
			kx := widx % q.KW
			ky := (widx / q.KW) % q.KH
			ci := (widx / (q.KW * q.KH)) % q.C
			f := widx / elemsPerFilter
			base := f * positions
			dest, inter := AccBufs(s.Img, pos)

			iStart := 0
			if pos == start.Pos {
				iStart = start.I
			}
			for i := iStart; i < positions; i++ {
				dev.SetSection(name, mcu.PhaseKernel)
				dev.Op(mcu.OpBranch)
				oy, ox := i/ow, i%ow
				x := fixed.Q15(dev.Load(src, (ci*h+oy+ky)*w+ox+kx))
				dev.Op(mcu.OpFixedMul)
				var a fixed.Acc
				if !first {
					a = fixed.Acc(dev.Load(inter, base+i))
					dev.Op(mcu.OpFixedAdd)
				}
				dev.Store(dest, base+i, int64(a.MAC(wv, x)))
				dev.SetSection(name, mcu.PhaseControl)
				s.Checkpoint(Cursor{Layer: start.Layer, Pos: pos, I: i + 1})
			}
			// Task_Next_Filter: swap buffers, reset i, advance pos — one
			// atomic word store since parity is derived from pos.
			s.Transition(name, Cursor{Layer: start.Layer, Pos: pos + 1})
		}
		start = Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
	}

	// Finalize pass: add bias and rescale each filter's final-generation
	// partials into Q15 activations. Fully-pruned filters (FinPar == -1)
	// have no partials and produce bias only.
	s.MapLayer(name, start, q.F*positions, func(i int) {
		f := i / positions
		var par int64
		if l.FinPar != nil {
			par = dev.Load(l.FinPar, f)
		} else {
			par = int64(((f+1)*elemsPerFilter - 1) & 1)
		}
		bq := fixed.Q15(dev.Load(l.B, f))
		var a fixed.Acc
		if par >= 0 {
			final, _ := AccBufs(s.Img, int(par))
			a = fixed.Acc(dev.Load(final, i))
			dev.Op(mcu.OpFixedAdd)
		}
		dev.Store(dst, i, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	})
}

// denseLayer applies loop-ordered buffering to a dense fully-connected
// layer: the outer loop walks input elements, the inner loop updates every
// output's partial in the opposite buffer.
func (s *Exec) denseLayer(l *core.LayerImage, name string, src, dst *mem.Region, start Cursor) {
	q := l.Q
	dev := s.Dev
	tokK := dev.SectionToken(name, mcu.PhaseKernel)
	tokC := dev.SectionToken(name, mcu.PhaseControl)
	fuse := s.canFuse()
	var blkFirst, blkRest *mcu.Block
	var per int
	if fuse {
		blkFirst, per = s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedMul, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		blkRest, _ = s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 2},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedMul, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
	}
	if start.Pass == 0 {
		wW := l.W.ROWords()
		for pos := start.Pos; pos < q.In; pos++ {
			dev.SetSection(name, mcu.PhaseControl)
			x := fixed.Q15(dev.Load(src, pos))
			dest, inter := AccBufs(s.Img, pos)
			iStart := 0
			if pos == start.Pos {
				iStart = start.I
			}
			for o := iStart; o < q.Out; {
				if fuse {
					blk := blkRest
					if pos == 0 {
						blk = blkFirst
					}
					if m := s.fuseIters(blk, per, o, q.Out); m > 0 {
						if pos == 0 {
							kern.DenseFirst(dest.Words(), wW, q.In, pos, o, m, int64(x))
						} else {
							kern.DenseMAC(dest.Words(), inter.ROWords(), wW, q.In, pos, o, m, int64(x))
						}
						o += m
						s.fuseCommit(Cursor{Layer: start.Layer, Pos: pos, I: o})
						continue
					}
				}
				dev.SetSectionTok(tokK)
				dev.Op(mcu.OpBranch)
				wv := fixed.Q15(dev.Load(l.W, o*q.In+pos))
				dev.Op(mcu.OpFixedMul)
				var a fixed.Acc
				if pos > 0 {
					a = fixed.Acc(dev.Load(inter, o))
					dev.Op(mcu.OpFixedAdd)
				}
				dev.Store(dest, o, int64(a.MAC(wv, x)))
				dev.SetSectionTok(tokC)
				s.Checkpoint(Cursor{Layer: start.Layer, Pos: pos, I: o + 1})
				o++
			}
			s.Transition(name, Cursor{Layer: start.Layer, Pos: pos + 1})
		}
		start = Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
	}
	final, _ := AccBufs(s.Img, q.In-1)
	var blkFin *mcu.Block
	if fuse {
		blkFin, per = s.unitBlock(tokC,
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 2},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1},
			mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
	}
	finalW, bW, dstW := final.ROWords(), l.B.ROWords(), dst.Words()
	s.fuseMap(tokK, tokC, blkFin, per, start, q.Out, func(i0, m int) {
		kern.FinalizeVec(dstW, finalW, bW, i0, i0, m, q.Shift)
	}, func(o int) {
		bq := fixed.Q15(dev.Load(l.B, o))
		a := fixed.Acc(dev.Load(final, o))
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	})
}

// sparseLayer runs a sparse fully-connected layer with sparse undo-logging
// (§6.2.2): partials accumulate in place in AccA; before each modification
// the original value is copied to a canonical slot and the read index
// advances, so an interrupted update resumes from the buffered original.
// Work per iteration is proportional to the modifications made — one
// nonzero — not to the output size, which is why SONIC prefers it to
// loop-ordered buffering here.
func (s *Exec) sparseLayer(l *core.LayerImage, name string, src, dst *mem.Region, start Cursor) {
	q := l.Q
	dev := s.Dev
	acc := s.Img.AccA
	ctl := s.Img.Ctl
	nnz := len(q.W)
	tokK := dev.SectionToken(name, mcu.PhaseKernel)
	tokC := dev.SectionToken(name, mcu.PhaseControl)
	fuse := s.canFuse()
	var per int

	switch start.Pass {
	case 0:
		// Zero the in-place accumulator (write-only, idempotent), and
		// rearm the undo-log read index (idempotent: re-zeroing after a
		// failure here is harmless because pass 1 has not started).
		var blkZero *mcu.Block
		if fuse {
			blkZero, per = s.unitBlock(tokC,
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		}
		accW := acc.Words()
		s.fuseMap(tokK, tokC, blkZero, per, start, q.Out, func(i0, m int) {
			kern.Zero(accW, i0, m)
		}, func(o int) {
			dev.Store(acc, o, 0)
		})
		dev.Store(ctl, slotRead, 0)
		start = Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
		fallthrough
	case 1:
		// row is carried in the cursor's i field so the CSR walk resumes
		// without rescanning RowPtr from zero.
		//
		// Fused per-row runs: within one CSR row the charge profile is
		// uniform — one branch, the row-boundary probe, the undo-log
		// read-index load and (once the log is armed) the three-store
		// two-phase update, the weight/column/activation loads, and the
		// always-forced commit. Row advances and the one resume
		// iteration whose read index is already past (rd > pos) are
		// non-uniform and run scalar.
		var blkRow *mcu.Block
		if fuse {
			blkRow = s.forceUnitBlock(tokC,
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 7},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 3},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedMul, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1})
		}
		row := start.I
		for pos := start.Pos; pos < nnz; {
			if fuse {
				rowEnd := int(l.RowPtr.Get(row + 1))
				if rowEnd > nnz {
					rowEnd = nnz
				}
				if rowEnd > pos && int(ctl.Get(slotRead)) <= pos {
					if m := s.Dev.ChargeBlock(blkRow, rowEnd-pos); m > 0 {
						final, canon := kern.CSRRow(l.W.ROWords(), l.Cols.ROWords(), src.ROWords(), pos, m, acc.Get(row))
						pos += m
						ctl.Put(slotCanonical, canon)
						ctl.Put(slotRead, int64(pos))
						acc.Put(row, final)
						s.fuseCommit(Cursor{Layer: start.Layer, Pass: 1, Pos: pos, I: row})
						continue
					}
				}
			}
			dev.SetSectionTok(tokK)
			dev.Op(mcu.OpBranch)
			// Advance row until RowPtr[row+1] > pos.
			for int(dev.Load(l.RowPtr, row+1)) <= pos {
				dev.Op(mcu.OpBranch)
				row++
			}
			// Sparse undo-logging two-phase update.
			rd := int(dev.Load(ctl, slotRead))
			if rd <= pos {
				orig := dev.Load(acc, row)
				dev.Store(ctl, slotCanonical, orig)
				dev.Store(ctl, slotRead, int64(pos+1))
				// The original value is now durable: overwriting acc[row]
				// is recoverable, not a WAR hazard.
				dev.MarkLogged(acc, row)
			}
			canon := fixed.Acc(dev.Load(ctl, slotCanonical))
			wv := fixed.Q15(dev.Load(l.W, pos))
			col := int(dev.Load(l.Cols, pos))
			x := fixed.Q15(dev.Load(src, col))
			dev.Op(mcu.OpFixedMul)
			dev.Op(mcu.OpFixedAdd)
			dev.Store(acc, row, int64(canon.MAC(wv, x)))
			dev.SetSectionTok(tokC)
			// Sparse undo-logging is only idempotent one iteration deep,
			// so even checkpointing runtimes commit the cursor here.
			s.ForceCheckpoint(Cursor{Layer: start.Layer, Pass: 1, Pos: pos + 1, I: row})
			pos++
		}
		start = Cursor{Layer: start.Layer, Pass: 2}
		s.Transition(name, start)
		fallthrough
	default:
		var blkFin *mcu.Block
		if fuse {
			blkFin, per = s.unitBlock(tokC,
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 2},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1},
				mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
		}
		accW, bW, dstW := acc.ROWords(), l.B.ROWords(), dst.Words()
		s.fuseMap(tokK, tokC, blkFin, per, start, q.Out, func(i0, m int) {
			kern.FinalizeVec(dstW, accW, bW, i0, i0, m, q.Shift)
		}, func(o int) {
			bq := fixed.Q15(dev.Load(l.B, o))
			a := fixed.Acc(dev.Load(acc, o))
			dev.Op(mcu.OpFixedAdd)
			dev.Store(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
		})
	}
}

// sparseLayerBuffered is the ablation of sparse undo-logging: the sparse
// fully-connected layer computed with loop-ordered buffering, as a dense
// layer would be. Each outer iteration applies one nonzero weight, but must
// copy every *unmodified* partial from the previous generation's buffer to
// the current one so the generations stay coherent — work proportional to
// the output size rather than to the modifications made. This is exactly
// the waste §6.2.2 identifies and sparse undo-logging eliminates.
func (s *Exec) sparseLayerBuffered(l *core.LayerImage, name string, src, dst *mem.Region, start Cursor) {
	q := l.Q
	dev := s.Dev
	nnz := len(q.W)

	if start.Pass == 0 {
		row := start.I
		gen := make([]int64, q.Out)
		for pos := start.Pos; pos < nnz; pos++ {
			dev.SetSection(name, mcu.PhaseControl)
			dest, inter := AccBufs(s.Img, pos)
			// Advance the CSR row cursor (carried in the packed cursor).
			for int(dev.Load(l.RowPtr, row+1)) <= pos {
				dev.Op(mcu.OpBranch)
				row++
			}
			wv := fixed.Q15(dev.Load(l.W, pos))
			col := int(dev.Load(l.Cols, pos))
			x := fixed.Q15(dev.Load(src, col))
			dev.Op(mcu.OpFixedMul)
			prod := fixed.Acc(0).MAC(wv, x)
			dev.SetSection(name, mcu.PhaseKernel)
			// One generation: copy all partials forward, adding the
			// product into the modified row. No checkpoint inside the
			// copy, so the whole generation charges as bulk macro-ops.
			dev.Ops(mcu.OpBranch, q.Out)
			if pos > 0 {
				dev.LoadRange(inter, 0, q.Out)
			}
			dev.Op(mcu.OpFixedAdd) // the one modified row
			for o := 0; o < q.Out; o++ {
				var a fixed.Acc
				if pos > 0 {
					a = fixed.Acc(inter.Get(o))
				}
				if o == row {
					a += prod
				}
				gen[o] = int64(a)
			}
			dev.StoreRange(dest, 0, gen)
			dev.SetSection(name, mcu.PhaseControl)
			s.Checkpoint(Cursor{Layer: start.Layer, Pos: pos + 1, I: row})
		}
		start = Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
	}

	var final *mem.Region
	if nnz > 0 {
		final, _ = AccBufs(s.Img, nnz-1)
	}
	s.MapLayer(name, start, q.Out, func(o int) {
		bq := fixed.Q15(dev.Load(l.B, o))
		var a fixed.Acc
		if final != nil {
			a = fixed.Acc(dev.Load(final, o))
			dev.Op(mcu.OpFixedAdd)
		}
		dev.Store(dst, o, int64(a.AddQ(bq).SatShiftSigned(q.Shift)))
	})
}
