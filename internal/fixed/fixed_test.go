package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundtrip(t *testing.T) {
	cases := []float64{0, 0.5, -0.5, 0.25, -0.999, 0.999, 1.0 / 3.0}
	for _, f := range cases {
		q := FromFloat(f)
		if got := q.Float(); math.Abs(got-f) > 1.0/(1<<FracBits) {
			t.Errorf("roundtrip %v: got %v, err %v", f, got, math.Abs(got-f))
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(2.0) != One {
		t.Errorf("FromFloat(2.0) = %v, want One", FromFloat(2.0))
	}
	if FromFloat(-2.0) != MinusOne {
		t.Errorf("FromFloat(-2.0) = %v, want MinusOne", FromFloat(-2.0))
	}
	if FromFloat(1.0) != One {
		t.Errorf("FromFloat(1.0) = %v, want One (1.0 not representable)", FromFloat(1.0))
	}
}

func TestAddSaturates(t *testing.T) {
	if Add(One, One) != One {
		t.Errorf("One+One should saturate to One")
	}
	if Add(MinusOne, MinusOne) != MinusOne {
		t.Errorf("MinusOne+MinusOne should saturate to MinusOne")
	}
	if Sub(MinusOne, One) != MinusOne {
		t.Errorf("MinusOne-One should saturate")
	}
}

func TestMulBasics(t *testing.T) {
	half := FromFloat(0.5)
	quarter := Mul(half, half)
	if math.Abs(quarter.Float()-0.25) > 1e-4 {
		t.Errorf("0.5*0.5 = %v, want 0.25", quarter.Float())
	}
	// MinusOne*MinusOne would be +1.0, which must saturate to One.
	if Mul(MinusOne, MinusOne) != One {
		t.Errorf("(-1)*(-1) should saturate to One, got %v", Mul(MinusOne, MinusOne))
	}
}

func TestNegSaturates(t *testing.T) {
	if Neg(MinusOne) != One {
		t.Errorf("Neg(MinusOne) = %v, want One", Neg(MinusOne))
	}
	if Neg(One) != MinusOne+1 {
		t.Errorf("Neg(One) = %v, want %v", Neg(One), MinusOne+1)
	}
}

// Property: Add is commutative and never leaves the representable range.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Q15(a), Q15(b)
		s1, s2 := Add(x, y), Add(y, x)
		return s1 == s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul is commutative.
func TestMulCommutativeProperty(t *testing.T) {
	f := func(a, b int16) bool {
		return Mul(Q15(a), Q15(b)) == Mul(Q15(b), Q15(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: results track real arithmetic within quantization error when the
// real result is in range.
func TestAddAccuracyProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Q15(a), Q15(b)
		real := x.Float() + y.Float()
		got := Add(x, y).Float()
		if real > One.Float() {
			return got == One.Float()
		}
		if real < -1.0 {
			return got == -1.0
		}
		return math.Abs(got-real) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAccuracyProperty(t *testing.T) {
	eps := 1.0 / (1 << FracBits)
	f := func(a, b int16) bool {
		x, y := Q15(a), Q15(b)
		real := x.Float() * y.Float()
		got := Mul(x, y).Float()
		if real >= One.Float() {
			return got == One.Float()
		}
		return math.Abs(got-real) <= eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccMAC(t *testing.T) {
	var acc Acc
	half := FromFloat(0.5)
	// 10 * (0.5*0.5) = 2.5; a plain Q15 would saturate, the accumulator must not.
	for i := 0; i < 10; i++ {
		acc = acc.MAC(half, half)
	}
	if math.Abs(acc.Float()-2.5) > 1e-3 {
		t.Errorf("acc = %v, want 2.5", acc.Float())
	}
	if acc.Sat() != One {
		t.Errorf("Sat of 2.5 should saturate to One")
	}
	// Shifting by 2 rescales 2.5 -> 0.625, which fits.
	if got := acc.SatShift(2).Float(); math.Abs(got-0.625) > 1e-3 {
		t.Errorf("SatShift(2) = %v, want 0.625", got)
	}
}

func TestAccAddQ(t *testing.T) {
	var acc Acc
	acc = acc.AddQ(FromFloat(0.25))
	acc = acc.AddQ(FromFloat(0.25))
	if math.Abs(acc.Float()-0.5) > 1e-4 {
		t.Errorf("AddQ sum = %v, want 0.5", acc.Float())
	}
}

// Property: accumulator MAC equals exact integer arithmetic (no drift).
func TestAccExactProperty(t *testing.T) {
	f := func(vals []int16) bool {
		var acc Acc
		var exact int64
		for _, v := range vals {
			acc = acc.MAC(Q15(v), Q15(v))
			exact += int64(v) * int64(v)
		}
		return int64(acc) == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	s := ScaleFor(5.3) // needs 2^3 = 8 >= 5.3
	if s != 3 {
		t.Fatalf("ScaleFor(5.3) = %d, want 3", s)
	}
	q := s.Quantize(5.3)
	if got := s.Apply(q); math.Abs(got-5.3) > 8.0/(1<<FracBits) {
		t.Errorf("scale roundtrip of 5.3 = %v", got)
	}
}

func TestScaleForBounds(t *testing.T) {
	if ScaleFor(0.5) != 0 {
		t.Errorf("ScaleFor(0.5) = %d, want 0", ScaleFor(0.5))
	}
	if ScaleFor(1e9) != 15 {
		t.Errorf("ScaleFor(1e9) should clamp to 15")
	}
}

func TestReLUMaxAbs(t *testing.T) {
	if ReLU(FromFloat(-0.3)) != 0 {
		t.Error("ReLU of negative should be 0")
	}
	if v := FromFloat(0.3); ReLU(v) != v {
		t.Error("ReLU of positive should be identity")
	}
	if Max(FromFloat(0.1), FromFloat(0.2)) != FromFloat(0.2) {
		t.Error("Max wrong")
	}
	if Abs(MinusOne) != One {
		t.Error("Abs(MinusOne) should saturate to One")
	}
	if Abs(FromFloat(-0.25)) != FromFloat(0.25) {
		t.Error("Abs(-0.25) wrong")
	}
}

// Property: saturation ordering — Add never exceeds bounds.
func TestSaturationBoundsProperty(t *testing.T) {
	f := func(a, b int16) bool {
		v := Add(Q15(a), Q15(b))
		return v >= MinusOne && v <= One
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := FromFloat(0.37), FromFloat(-0.81)
	var sink Q15
	for i := 0; i < b.N; i++ {
		sink = Mul(x, y)
	}
	_ = sink
}

func BenchmarkAccMAC(b *testing.B) {
	x, y := FromFloat(0.37), FromFloat(-0.81)
	var acc Acc
	for i := 0; i < b.N; i++ {
		acc = acc.MAC(x, y)
	}
	_ = acc
}

func TestMulRound(t *testing.T) {
	// Rounding differs from truncation for odd low bits.
	a, b := Q15(3), Q15(16384) // 3 * 0.5 = 1.5 -> trunc 1, round 2
	if Mul(a, b) != 1 {
		t.Errorf("Mul trunc = %d, want 1", Mul(a, b))
	}
	if MulRound(a, b) != 2 {
		t.Errorf("MulRound = %d, want 2", MulRound(a, b))
	}
}

func TestSatShiftSigned(t *testing.T) {
	var acc Acc
	acc = acc.MAC(FromFloat(0.5), FromFloat(0.5)) // 0.25
	// Positive shift divides.
	if got := acc.SatShiftSigned(1).Float(); math.Abs(got-0.125) > 1e-3 {
		t.Errorf("shift +1 = %v, want 0.125", got)
	}
	// Negative shift multiplies.
	if got := acc.SatShiftSigned(-1).Float(); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("shift -1 = %v, want 0.5", got)
	}
	// Negative shift saturates on overflow.
	if got := acc.SatShiftSigned(-4); got != One {
		t.Errorf("0.25 << 4 should saturate to One, got %v", got)
	}
	var neg Acc
	neg = neg.MAC(FromFloat(-0.5), FromFloat(0.5))
	if got := neg.SatShiftSigned(-4); got != MinusOne {
		t.Errorf("-0.25 << 4 should saturate to MinusOne, got %v", got)
	}
	// Zero shift equals Sat.
	if acc.SatShiftSigned(0) != acc.Sat() {
		t.Error("shift 0 should equal Sat")
	}
}

// Property: SatShiftSigned(+k) matches the real value within quantization.
func TestSatShiftSignedProperty(t *testing.T) {
	f := func(a, b int16, kRaw uint8) bool {
		k := int(kRaw%8) - 3 // shifts in [-3, 4]
		var acc Acc
		acc = acc.MAC(Q15(a), Q15(b))
		real := acc.Float() * math.Pow(2, -float64(k))
		got := acc.SatShiftSigned(k).Float()
		if real >= One.Float() {
			return got == One.Float()
		}
		if real <= -1.0 {
			return got == -1.0
		}
		return math.Abs(got-real) <= 1.0/(1<<FracBits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
