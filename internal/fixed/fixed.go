// Package fixed implements saturating 16-bit fixed-point arithmetic in the
// Q1.15 format used by the TI Low-Energy Accelerator (LEA) and, more
// generally, by MSP430-class DSP libraries.
//
// A Q15 value stores a real number in [-1, 1) as a signed 16-bit integer
// scaled by 2^15. All operations saturate rather than wrap, matching LEA
// semantics. Because DNN activations and weights routinely exceed [-1, 1),
// layers carry a power-of-two scale factor alongside their Q15 payloads; the
// Scale type captures that convention.
package fixed

import "math"

// FracBits is the number of fractional bits in the Q1.15 format.
const FracBits = 15

// One is the largest representable Q15 value, approximately +1.0.
// (Exactly 1.0 is not representable; this matches hardware behaviour.)
const One = Q15(math.MaxInt16)

// MinusOne is the smallest representable Q15 value, exactly -1.0.
const MinusOne = Q15(math.MinInt16)

// Q15 is a signed 16-bit fixed-point number with 15 fractional bits.
type Q15 int16

// FromFloat converts a float64 to Q15, saturating to [-1, 1-2^-15] and
// rounding to nearest.
func FromFloat(f float64) Q15 {
	scaled := math.Round(f * (1 << FracBits))
	if scaled > math.MaxInt16 {
		return One
	}
	if scaled < math.MinInt16 {
		return MinusOne
	}
	return Q15(scaled)
}

// Float returns the real value represented by q.
func (q Q15) Float() float64 {
	return float64(q) / (1 << FracBits)
}

// sat32 clamps a 32-bit intermediate to the Q15 range.
func sat32(v int32) Q15 {
	if v > math.MaxInt16 {
		return One
	}
	if v < math.MinInt16 {
		return MinusOne
	}
	return Q15(v)
}

// Add returns a+b with saturation.
func Add(a, b Q15) Q15 { return sat32(int32(a) + int32(b)) }

// Sub returns a-b with saturation.
func Sub(a, b Q15) Q15 { return sat32(int32(a) - int32(b)) }

// Mul returns a*b with saturation and truncation toward zero of the low
// fractional bits, matching the MSP430 hardware multiplier's fractional mode.
func Mul(a, b Q15) Q15 {
	p := int64(a) * int64(b) // at most 30 fractional bits
	return sat32(int32(p >> FracBits))
}

// MulRound returns a*b rounded to nearest rather than truncated.
func MulRound(a, b Q15) Q15 {
	p := int64(a)*int64(b) + (1 << (FracBits - 1))
	return sat32(int32(p >> FracBits))
}

// Neg returns -a with saturation (Neg(MinusOne) == One).
func Neg(a Q15) Q15 { return sat32(-int32(a)) }

// Acc is a 32-bit multiply-accumulate register in Q17.15 format, mirroring
// the LEA's extended-precision accumulator. Sums of many Q15 products can be
// accumulated without intermediate saturation, then saturated once at the
// end — exactly how vector MAC hardware behaves.
type Acc int64

// MAC accumulates a*b into the accumulator without intermediate saturation.
func (acc Acc) MAC(a, b Q15) Acc { return acc + Acc(int64(a)*int64(b)) }

// AddQ accumulates a Q15 value (converted to the accumulator's scale).
func (acc Acc) AddQ(a Q15) Acc { return acc + Acc(int64(a)<<FracBits) }

// Sat saturates the accumulator back to a Q15 value.
func (acc Acc) Sat() Q15 {
	v := int64(acc) >> FracBits
	if v > math.MaxInt16 {
		return One
	}
	if v < math.MinInt16 {
		return MinusOne
	}
	return Q15(v)
}

// SatShift arithmetic-right-shifts the accumulator by sh bits before
// saturating, implementing a power-of-two rescale. Layers use this to map a
// wide accumulator back into the activation's Q15 range.
func (acc Acc) SatShift(sh uint) Q15 {
	v := int64(acc) >> (FracBits + sh)
	if v > math.MaxInt16 {
		return One
	}
	if v < math.MinInt16 {
		return MinusOne
	}
	return Q15(v)
}

// SatShiftSigned is SatShift generalized to negative shifts: a negative sh
// left-shifts (scales up) the accumulator before saturating. Quantized
// layers use this when the output scale is finer than the product scale.
func (acc Acc) SatShiftSigned(sh int) Q15 {
	v := int64(acc)
	if sh >= 0 {
		v >>= FracBits + uint(sh)
	} else {
		lsh := uint(-sh)
		// Detect overflow before shifting left.
		if v > (math.MaxInt16 << FracBits >> lsh) {
			return One
		}
		if v < (math.MinInt16 << FracBits >> lsh) {
			return MinusOne
		}
		v = (v << lsh) >> FracBits
	}
	if v > math.MaxInt16 {
		return One
	}
	if v < math.MinInt16 {
		return MinusOne
	}
	return Q15(v)
}

// Float returns the real value held in the accumulator.
func (acc Acc) Float() float64 {
	return float64(acc) / float64(int64(1)<<(2*FracBits))
}

// Scale is a power-of-two scale factor attached to a Q15 tensor: the real
// value of element q is q.Float() * 2^Scale. GENESIS picks per-layer scales
// during quantization so that activations use the Q15 dynamic range well.
type Scale int8

// Apply returns the real value of q under scale s.
func (s Scale) Apply(q Q15) float64 {
	return q.Float() * math.Pow(2, float64(s))
}

// Quantize converts a real value to Q15 under scale s, saturating.
func (s Scale) Quantize(f float64) Q15 {
	return FromFloat(f * math.Pow(2, -float64(s)))
}

// ScaleFor returns the smallest power-of-two scale that makes maxAbs
// representable in Q15 without saturation.
func ScaleFor(maxAbs float64) Scale {
	s := Scale(0)
	for maxAbs >= 1.0 && s < 15 {
		maxAbs /= 2
		s++
	}
	return s
}

// ReLU returns max(a, 0).
func ReLU(a Q15) Q15 {
	if a < 0 {
		return 0
	}
	return a
}

// Max returns the larger of a and b.
func Max(a, b Q15) Q15 {
	if a > b {
		return a
	}
	return b
}

// Abs returns |a| with saturation (Abs(MinusOne) == One).
func Abs(a Q15) Q15 {
	if a < 0 {
		return Neg(a)
	}
	return a
}
