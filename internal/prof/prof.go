// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the repository's CLIs, so the simulator's hot paths can be inspected
// with `go tool pprof` against a real workload (a paper regeneration or a
// fuzz campaign) rather than only against microbenchmarks.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler owns the optional CPU and heap profile outputs of one command.
type Profiler struct {
	cpu *string
	mem *string
	f   *os.File
}

// RegisterFlags installs -cpuprofile and -memprofile on the default flag
// set. Call before flag.Parse.
func RegisterFlags() *Profiler {
	return &Profiler{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag.Parse.
func (p *Profiler) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.f = f
	return nil
}

// Stop flushes both profiles. It is idempotent, and must be called on
// every exit path explicitly: os.Exit does not run deferred calls, and a
// truncated CPU profile is unreadable.
func (p *Profiler) Stop() {
	if p.f != nil {
		pprof.StopCPUProfile()
		p.f.Close()
		p.f = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
		*p.mem = ""
	}
}
