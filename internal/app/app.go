// Package app is the end-to-end IoT application layer the paper's §3
// motivates: a battery-less sensing device that harvests energy, takes
// readings, runs local inference to decide which readings are interesting,
// and communicates only those. It turns the analytical IMpJ model
// (internal/imodel) into a simulated deployment: sensing and communication
// energies are drawn from the same harvested-energy ledger as inference,
// and the pipeline reports how many interesting messages a fixed energy
// budget delivered.
//
// The package is the library form of the case study in
// examples/wildlife; its tests validate that the closed-form Eq. 3
// prediction matches the simulated deployment.
package app

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/imodel"
	"repro/internal/mcu"
)

// Event is one sensor reading with ground truth.
type Event struct {
	X     []float64
	Label int
}

// Source produces the event stream (e.g. a seeded synthetic camera trap).
type Source interface {
	Next() Event
}

// Config describes the deployment.
type Config struct {
	// Runtime executes inference on the deployed image; nil disables local
	// inference (the "always send" baseline).
	Runtime core.Runtime
	// Interesting is the class worth communicating.
	Interesting int
	// ESenseJ and ECommJ are the §3 energy costs in Joules.
	ESenseJ, ECommJ float64
	// Oracle short-circuits inference with ground truth (Eq. 2's ideal).
	Oracle bool
}

// Tally is the outcome of a deployment run.
type Tally struct {
	Events          int
	Sent            int
	InterestingSent int
	MissedPositives int // interesting events filtered out (false negatives)
	SenseJ          float64
	CommJ           float64
	InferJ          float64
	Reboots         int
}

// IMpJ returns interesting messages delivered per Joule spent.
func (t Tally) IMpJ() float64 {
	total := t.SenseJ + t.CommJ + t.InferJ
	if total == 0 {
		return 0
	}
	return float64(t.InterestingSent) / total
}

// Pipeline is a deployed sensing application.
type Pipeline struct {
	cfg   Config
	dev   *mcu.Device
	img   *core.Image
	model *dnn.QuantModel
}

// New deploys the model (if the config uses local inference) and returns a
// ready pipeline.
func New(dev *mcu.Device, model *dnn.QuantModel, cfg Config) (*Pipeline, error) {
	p := &Pipeline{cfg: cfg, dev: dev, model: model}
	if cfg.Runtime != nil {
		img, err := core.Deploy(dev, model)
		if err != nil {
			return nil, fmt.Errorf("app: %w", err)
		}
		p.img = img
	}
	return p, nil
}

// Run consumes events from src until budgetJ Joules of harvested energy
// (sensing + inference + communication) are spent, and returns the tally.
func (p *Pipeline) Run(src Source, budgetJ float64) (Tally, error) {
	var t Tally
	rebootsBefore := p.dev.Stats().Reboots
	spend := func(j float64) bool {
		if t.SenseJ+t.CommJ+t.InferJ+j > budgetJ {
			return false
		}
		return true
	}
	for {
		if !spend(p.cfg.ESenseJ) {
			break
		}
		ev := src.Next()
		t.Events++
		t.SenseJ += p.cfg.ESenseJ

		send := true
		switch {
		case p.cfg.Oracle:
			send = ev.Label == p.cfg.Interesting
		case p.cfg.Runtime != nil:
			before := p.dev.Stats().EnergyNJ()
			logits, err := p.cfg.Runtime.Infer(p.img, p.model.QuantizeInput(ev.X))
			if err != nil {
				return t, fmt.Errorf("app: inference: %w", err)
			}
			t.InferJ += (p.dev.Stats().EnergyNJ() - before) * 1e-9
			send = core.Argmax(logits) == p.cfg.Interesting
		}
		if !send {
			if ev.Label == p.cfg.Interesting {
				t.MissedPositives++
			}
			continue
		}
		if !spend(p.cfg.ECommJ) {
			break
		}
		t.CommJ += p.cfg.ECommJ
		t.Sent++
		if ev.Label == p.cfg.Interesting {
			t.InterestingSent++
		}
	}
	t.Reboots = p.dev.Stats().Reboots - rebootsBefore
	return t, nil
}

// Predict evaluates the closed-form Eq. 3 for this configuration given the
// network's measured rates and per-inference energy — what GENESIS
// estimates before deployment. Tests compare it against Run.
func Predict(cfg Config, p, tp, tn, eInferJ float64) float64 {
	m := imodel.Params{P: p, TP: tp, TN: tn,
		ESense: cfg.ESenseJ, EComm: cfg.ECommJ, EInfer: eInferJ}
	if cfg.Oracle {
		return imodel.Ideal(m)
	}
	if cfg.Runtime == nil {
		return imodel.Baseline(m)
	}
	return imodel.Inference(m)
}
