package app

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/sonic"
)

// synthSource draws events with the interesting class at a fixed base rate.
type synthSource struct {
	rng         *rand.Rand
	interesting []dataset.Example
	boring      []dataset.Example
	p           float64
}

func newSource(t testing.TB, seed uint64, interesting int, p float64) *synthSource {
	t.Helper()
	ds := dataset.HAR(seed, 1, 600)
	s := &synthSource{rng: rand.New(rand.NewPCG(seed, 5)), p: p}
	for _, ex := range ds.Test {
		if ex.Label == interesting {
			s.interesting = append(s.interesting, ex)
		} else {
			s.boring = append(s.boring, ex)
		}
	}
	return s
}

func (s *synthSource) Next() Event {
	if s.rng.Float64() < s.p {
		ex := s.interesting[s.rng.IntN(len(s.interesting))]
		return Event{X: ex.X, Label: ex.Label}
	}
	ex := s.boring[s.rng.IntN(len(s.boring))]
	return Event{X: ex.X, Label: ex.Label}
}

// deployModel trains and quantizes a HAR model and measures its rates.
func deployModel(t testing.TB) (*dnn.QuantModel, float64, float64, float64) {
	t.Helper()
	ds := dataset.HAR(3, 600, 300)
	n := dnn.HARNet(3)
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 3
	dnn.Train(n, ds, cfg)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		t.Fatal(err)
	}
	// Rates of the *quantized* model on held-out data, class 0 interesting.
	var posHit, posTot, negHit, negTot int
	for _, ex := range ds.Test {
		pred := qm.Infer(ex.X)
		if ex.Label == 0 {
			posTot++
			if pred == 0 {
				posHit++
			}
		} else {
			negTot++
			if pred != 0 {
				negHit++
			}
		}
	}
	tp := float64(posHit) / float64(posTot)
	tn := float64(negHit) / float64(negTot)
	// Per-inference energy under SONIC.
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (sonic.SONIC{}).Infer(img, qm.QuantizeInput(ds.Test[0].X)); err != nil {
		t.Fatal(err)
	}
	return qm, tp, tn, dev.Stats().EnergyNJ() * 1e-9
}

func TestPipelineOrderingMatchesModel(t *testing.T) {
	qm, tp, tn, eInfer := deployModel(t)
	const (
		p       = 0.10
		eSense  = 0.002
		eComm   = 0.10
		budgetJ = 40.0
	)
	run := func(cfg Config) Tally {
		dev := mcu.New(energy.NewIntermittent(energy.Cap1mF,
			energy.ConstantHarvester{Watts: energy.DefaultRFWatts}))
		pl, err := New(dev, qm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tally, err := pl.Run(newSource(t, 8, 0, p), budgetJ)
		if err != nil {
			t.Fatal(err)
		}
		return tally
	}
	base := Config{Interesting: 0, ESenseJ: eSense, ECommJ: eComm}
	filt := base
	filt.Runtime = sonic.SONIC{}
	orc := base
	orc.Oracle = true

	tb, tf, to := run(base), run(filt), run(orc)

	// Ordering: baseline < filtered < oracle, as Eqs. 1-3 require.
	if !(tb.IMpJ() < tf.IMpJ() && tf.IMpJ() <= to.IMpJ()) {
		t.Fatalf("IMpJ ordering wrong: base %v filtered %v oracle %v",
			tb.IMpJ(), tf.IMpJ(), to.IMpJ())
	}
	if tf.Reboots == 0 {
		t.Error("filtered deployment on intermittent power should reboot")
	}
	if tb.Sent != tb.Events && tb.Sent < tb.Events-1 {
		t.Errorf("always-send should transmit every sensed event: %d/%d", tb.Sent, tb.Events)
	}

	// The closed-form Eq. 3 must predict the simulated IMpJ closely — the
	// analytical model of §3 validated against the deployment it models.
	pred := Predict(filt, p, tp, tn, eInfer)
	if rel := math.Abs(pred-tf.IMpJ()) / pred; rel > 0.25 {
		t.Errorf("Eq.3 prediction %v vs simulated %v (rel err %.0f%%)", pred, tf.IMpJ(), rel*100)
	}
	t.Logf("IMpJ: always-send %.3f, filtered %.3f (Eq.3 predicts %.3f), oracle %.3f",
		tb.IMpJ(), tf.IMpJ(), pred, to.IMpJ())
}

func TestPipelineBudgetRespected(t *testing.T) {
	qm, _, _, _ := deployModel(t)
	dev := mcu.New(energy.Continuous{})
	pl, err := New(dev, qm, Config{Runtime: sonic.SONIC{}, Interesting: 0,
		ESenseJ: 0.001, ECommJ: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	tally, err := pl.Run(newSource(t, 9, 0, 0.2), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tally.SenseJ + tally.CommJ + tally.InferJ; got > 2.0 {
		t.Errorf("budget exceeded: %v > 2.0", got)
	}
	if tally.Events == 0 {
		t.Error("no events processed")
	}
}

func TestMissedPositivesCounted(t *testing.T) {
	qm, tp, _, _ := deployModel(t)
	if tp >= 1 {
		t.Skip("model is perfect on the positive class; no misses to count")
	}
	dev := mcu.New(energy.Continuous{})
	pl, err := New(dev, qm, Config{Runtime: sonic.SONIC{}, Interesting: 0,
		ESenseJ: 0.001, ECommJ: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tally, err := pl.Run(newSource(t, 10, 0, 0.5), 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if tally.MissedPositives == 0 {
		t.Log("no false negatives in this stream (acceptable)")
	}
}
