package dnn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tensor"
)

// Dense is a fully-connected layer y = Wx + b over a flattened input.
type Dense struct {
	Out, In int
	W       *tensor.Tensor // (Out, In)
	B       *tensor.Tensor // (Out)

	dW, dB        *tensor.Tensor
	inCache       *tensor.Tensor
	outBuf, dxBuf *tensor.Tensor
}

// NewDense returns a fully-connected layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, out, in int) *Dense {
	l := &Dense{
		Out: out, In: in,
		W:  tensor.New(out, in),
		B:  tensor.New(out),
		dW: tensor.New(out, in),
		dB: tensor.New(out),
	}
	l.W.RandNormal(rng, math.Sqrt(2.0/float64(in)))
	return l
}

func (l *Dense) Kind() string { return "dense" }

func (l *Dense) OutShape(in Shape) (Shape, error) {
	if in.Len() != l.In {
		return Shape{}, fmt.Errorf("dnn: dense expects %d inputs, got %v (%d)", l.In, in, in.Len())
	}
	return Shape{1, 1, l.Out}, nil
}

func (l *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.inCache = x
	xd := x.Data()
	out := scratch(&l.outBuf, 1, 1, l.Out)
	od := out.Data()
	wd := l.W.Data()
	for o := 0; o < l.Out; o++ {
		row := wd[o*l.In : (o+1)*l.In]
		s := l.B.Data()[o]
		for i, w := range row {
			s += w * xd[i]
		}
		od[o] = s
	}
	return out
}

func (l *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	xd := l.inCache.Data()
	dyd := dy.Data()
	dx := scratchZero(&l.dxBuf, l.inCache.Dim(0), l.inCache.Dim(1), l.inCache.Dim(2))
	dxd := dx.Data()
	wd, dwd := l.W.Data(), l.dW.Data()
	for o := 0; o < l.Out; o++ {
		g := dyd[o]
		l.dB.Data()[o] += g
		if g == 0 {
			continue
		}
		row := wd[o*l.In : (o+1)*l.In]
		drow := dwd[o*l.In : (o+1)*l.In]
		for i := range row {
			drow[i] += g * xd[i]
			dxd[i] += g * row[i]
		}
	}
	return dx
}

func (l *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }
func (l *Dense) Grads() []*tensor.Tensor  { return []*tensor.Tensor{l.dW, l.dB} }
func (l *Dense) MACs(in Shape) int        { return l.Out * l.In }
func (l *Dense) ParamCount() int          { return l.Out*l.In + l.Out }

func (l *Dense) ensureGrads() {
	if l.dW == nil {
		l.dW = tensor.New(l.Out, l.In)
		l.dB = tensor.New(l.Out)
	}
}

// SparseDense is a pruned fully-connected layer stored in CSR form. It is
// what GENESIS emits after pruning a Dense layer, and what SONIC's sparse
// undo-logging kernel consumes on-device. Gradients flow only to retained
// weights, implementing masked fine-tuning.
type SparseDense struct {
	Out, In int
	W       *tensor.CSR
	B       *tensor.Tensor // (Out)

	dVals         []float64 // gradient per retained weight
	dB            *tensor.Tensor
	inCache       *tensor.Tensor
	valsT         *tensor.Tensor // view over W.Vals for the optimizer
	dValsT        *tensor.Tensor
	outBuf, dxBuf *tensor.Tensor
}

// NewSparseDense prunes a Dense layer at the given magnitude threshold and
// returns the sparse replacement.
func NewSparseDense(d *Dense, threshold float64) *SparseDense {
	csr := tensor.NewCSR(d.W, threshold)
	l := &SparseDense{Out: d.Out, In: d.In, W: csr, B: d.B.Clone()}
	l.initBuffers()
	return l
}

func (l *SparseDense) initBuffers() {
	l.dVals = make([]float64, l.W.NNZ())
	l.dB = tensor.New(max(l.Out, 1))
	if l.W.NNZ() > 0 {
		l.valsT = tensor.FromSlice(l.W.Vals, l.W.NNZ())
		l.dValsT = tensor.FromSlice(l.dVals, l.W.NNZ())
	} else {
		l.valsT = tensor.New(1)
		l.dValsT = tensor.New(1)
	}
}

func (l *SparseDense) Kind() string { return "sparse-dense" }

func (l *SparseDense) OutShape(in Shape) (Shape, error) {
	if in.Len() != l.In {
		return Shape{}, fmt.Errorf("dnn: sparse-dense expects %d inputs, got %v", l.In, in)
	}
	return Shape{1, 1, l.Out}, nil
}

func (l *SparseDense) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.inCache = x
	out := scratch(&l.outBuf, 1, 1, l.Out)
	od := out.Data()
	xd := x.Data()
	for o := 0; o < l.Out; o++ {
		s := l.B.Data()[o]
		for p := l.W.RowPtr[o]; p < l.W.RowPtr[o+1]; p++ {
			s += l.W.Vals[p] * xd[l.W.Cols[p]]
		}
		od[o] = s
	}
	return out
}

func (l *SparseDense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	xd := l.inCache.Data()
	dyd := dy.Data()
	dx := scratchZero(&l.dxBuf, l.inCache.Dim(0), l.inCache.Dim(1), l.inCache.Dim(2))
	dxd := dx.Data()
	for o := 0; o < l.Out; o++ {
		g := dyd[o]
		l.dB.Data()[o] += g
		if g == 0 {
			continue
		}
		for p := l.W.RowPtr[o]; p < l.W.RowPtr[o+1]; p++ {
			c := l.W.Cols[p]
			l.dVals[p] += g * xd[c]
			dxd[c] += g * l.W.Vals[p]
		}
	}
	return dx
}

func (l *SparseDense) Params() []*tensor.Tensor { return []*tensor.Tensor{l.valsT, l.B} }
func (l *SparseDense) Grads() []*tensor.Tensor  { return []*tensor.Tensor{l.dValsT, l.dB} }
func (l *SparseDense) MACs(in Shape) int        { return l.W.NNZ() }
func (l *SparseDense) ParamCount() int          { return l.W.NNZ() + l.Out }

func (l *SparseDense) ensureGrads() {
	if l.dVals == nil || l.valsT == nil {
		l.initBuffers()
	}
}
