package dnn

import (
	"math/rand/v2"

	"repro/internal/dataset"
)

// xorDataset builds a small XOR-style nonlinear classification set.
func xorDataset() *dataset.Dataset {
	rng := rand.New(rand.NewPCG(42, 0))
	ds := &dataset.Dataset{Name: "xor", InputShape: [3]int{1, 1, 2}, NumClasses: 2}
	for i := 0; i < 80; i++ {
		a, b := rng.Float64() > 0.5, rng.Float64() > 0.5
		x := []float64{0.1, 0.1}
		if a {
			x[0] = 0.9
		}
		if b {
			x[1] = 0.9
		}
		x[0] += rng.NormFloat64() * 0.03
		x[1] += rng.NormFloat64() * 0.03
		label := 0
		if a != b {
			label = 1
		}
		ds.Train = append(ds.Train, dataset.Example{X: x, Label: label})
	}
	ds.Test = ds.Train
	return ds
}
