package dnn

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tensor"
)

// numericGrad estimates dLoss/dParam by central differences, where loss is
// an arbitrary scalar function of the network output.
func numericGrad(f func() float64, p *tensor.Tensor, i int) float64 {
	const eps = 1e-5
	orig := p.Data()[i]
	p.Data()[i] = orig + eps
	up := f()
	p.Data()[i] = orig - eps
	down := f()
	p.Data()[i] = orig
	return (up - down) / (2 * eps)
}

// checkLayerGradients runs a full analytic backward pass through the layers
// and compares every parameter gradient and the input gradient against
// numerical differentiation of a quadratic loss.
func checkLayerGradients(t *testing.T, in Shape, layers ...Layer) {
	t.Helper()
	rng := rand.New(rand.NewPCG(99, 0))
	x := tensor.New(in[0], in[1], in[2])
	x.RandNormal(rng, 1)

	forward := func() float64 {
		a := x.Clone()
		for _, l := range layers {
			a = l.Forward(a)
		}
		// loss = 0.5 * sum(y^2), so dLoss/dy = y
		s := 0.0
		for _, v := range a.Data() {
			s += v * v
		}
		return 0.5 * s
	}

	// Analytic pass.
	a := x.Clone()
	for _, l := range layers {
		a = l.Forward(a)
	}
	dy := a.Clone()
	for i := len(layers) - 1; i >= 0; i-- {
		dy = layers[i].Backward(dy)
	}

	for li, l := range layers {
		params, grads := l.Params(), l.Grads()
		for pi, p := range params {
			n := p.Len()
			stride := 1
			if n > 40 {
				stride = n / 40 // sample large tensors
			}
			for i := 0; i < n; i += stride {
				// Pruned conv weights are frozen: their analytic gradient
				// is zero by design, so skip the numeric comparison.
				if c, ok := l.(*Conv); ok && pi == 0 && c.Mask != nil && !c.Mask[i] {
					continue
				}
				want := numericGrad(forward, p, i)
				got := grads[pi].Data()[i]
				if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
					t.Errorf("layer %d param %d[%d]: analytic %v vs numeric %v", li, pi, i, got, want)
					return
				}
			}
		}
	}
	// Input gradient.
	for i := 0; i < x.Len(); i += 1 + x.Len()/40 {
		want := numericGrad(forward, x, i)
		got := dy.Data()[i]
		if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("input grad [%d]: analytic %v vs numeric %v", i, got, want)
			return
		}
	}
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	checkLayerGradients(t, Shape{2, 6, 6}, NewConv(rng, 3, 2, 3, 3))
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	checkLayerGradients(t, Shape{3, 1, 12}, NewConv(rng, 4, 3, 1, 5))
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	checkLayerGradients(t, Shape{1, 1, 10}, NewDense(rng, 7, 10))
}

func TestSparseDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	d := NewDense(rng, 8, 12)
	sd := NewSparseDense(d, 0.2) // prune small weights
	if sd.W.NNZ() == 0 || sd.W.NNZ() == 8*12 {
		t.Fatalf("pruning degenerate: nnz=%d", sd.W.NNZ())
	}
	checkLayerGradients(t, Shape{1, 1, 12}, sd)
}

func TestStackedGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	checkLayerGradients(t, Shape{1, 8, 8},
		NewConv(rng, 4, 1, 3, 3), NewReLU(), NewMaxPool(2),
		NewFlatten(), NewDense(rng, 5, 4*3*3))
}

func TestMaskedConvGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 0))
	c := NewConv(rng, 3, 2, 3, 3)
	c.Prune(0.15)
	if c.retained() == 0 || c.retained() == c.W.Len() {
		t.Fatalf("pruning degenerate: %d/%d", c.retained(), c.W.Len())
	}
	checkLayerGradients(t, Shape{2, 6, 6}, c)
}

func TestConvOutShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	c := NewConv(rng, 2, 3, 5, 5)
	if _, err := c.OutShape(Shape{2, 10, 10}); err == nil {
		t.Error("wrong channel count should error")
	}
	if _, err := c.OutShape(Shape{3, 4, 4}); err == nil {
		t.Error("kernel larger than input should error")
	}
	if s, err := c.OutShape(Shape{3, 10, 10}); err != nil || s != (Shape{2, 6, 6}) {
		t.Errorf("OutShape = %v, %v", s, err)
	}
}

func TestPoolOutShapeError(t *testing.T) {
	p := NewMaxPool(2)
	if _, err := p.OutShape(Shape{1, 5, 4}); err == nil {
		t.Error("odd spatial size should error for window 2")
	}
}

func TestNetworkValidate(t *testing.T) {
	n := MNISTNet(1)
	out, err := n.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Errorf("MNIST output = %v", out)
	}
	if n.NumClasses() != 10 {
		t.Errorf("NumClasses = %d", n.NumClasses())
	}
	for _, name := range []string{"har", "okg"} {
		nn, err := NetworkFor(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nn.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMACsAndParams(t *testing.T) {
	n := MNISTNet(1)
	// conv1: 8 filters x 1x5x5 over 24x24 outputs.
	wantConv1 := 8 * 25 * 24 * 24
	if got := n.LayerMACs()[0]; got != wantConv1 {
		t.Errorf("conv1 MACs = %d, want %d", got, wantConv1)
	}
	if n.MACs() <= wantConv1 {
		t.Errorf("total MACs should exceed conv1")
	}
	// Params: conv1 8*25+8, conv2 16*8*25+16, fc1 256*64+64, fc2 64*10+10
	want := 8*25 + 8 + 16*8*25 + 16 + 256*64 + 64 + 640 + 10
	if got := n.ParamCount(); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
	if n.ParamBytes() != 2*want {
		t.Errorf("ParamBytes = %d, want %d", n.ParamBytes(), 2*want)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	grad := make([]float64, 3)
	loss := SoftmaxCrossEntropy([]float64{1, 1, 1}, 0, grad)
	if math.Abs(loss-math.Log(3)) > 1e-9 {
		t.Errorf("uniform loss = %v, want ln 3", loss)
	}
	// Gradient sums to zero.
	if math.Abs(grad[0]+grad[1]+grad[2]) > 1e-9 {
		t.Errorf("gradient should sum to 0: %v", grad)
	}
	// Confident correct prediction has near-zero loss.
	loss = SoftmaxCrossEntropy([]float64{10, -10, -10}, 0, grad)
	if loss > 1e-6 {
		t.Errorf("confident loss = %v", loss)
	}
}

func TestTrainingLearnsXORLikeTask(t *testing.T) {
	// A small dense net must fit a simple nonlinear labelled set.
	rng := rand.New(rand.NewPCG(8, 0))
	_ = rng
	n := NewNetwork("toy", Shape{1, 1, 2})
	r2 := rand.New(rand.NewPCG(9, 0))
	n.Add(NewDense(r2, 8, 2), NewReLU(), NewDense(r2, 2, 8))
	ds := xorDataset()
	Train(n, ds, TrainConfig{Epochs: 200, LR: 0.05, Momentum: 0.9, Decay: 1, Seed: 1})
	if acc := Evaluate(n, ds.Train); acc < 0.99 {
		t.Errorf("XOR accuracy = %v, want ~1.0", acc)
	}
}

func TestConfusionAndBinaryRates(t *testing.T) {
	conf := [][]int{
		{8, 2}, // class 0: 8 right, 2 wrong
		{1, 9}, // class 1: 9 right, 1 wrong
	}
	tp, tn := BinaryRates(conf, 1)
	if math.Abs(tp-0.9) > 1e-12 || math.Abs(tn-0.8) > 1e-12 {
		t.Errorf("tp=%v tn=%v, want 0.9/0.8", tp, tn)
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	n := MNISTNet(3)
	// Prune one conv and sparsify one dense to exercise all layer kinds.
	n.Layers[3].(*Conv).Prune(0.05)
	d := n.Layers[7].(*Dense)
	n.Layers[7] = NewSparseDense(d, 0.05)
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Outputs must match bit-for-bit.
	rng := rand.New(rand.NewPCG(11, 0))
	x := make([]float64, 784)
	for i := range x {
		x[i] = rng.Float64()
	}
	a, b := n.Forward(x), n2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs after roundtrip: %v vs %v", i, a[i], b[i])
		}
	}
	// Decoded network must be trainable (grads restored).
	if n2.Layers[7].(*SparseDense).dVals == nil {
		t.Error("sparse grads not restored")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := HARNet(1)
	c := n.Clone()
	c.Layers[0].(*Conv).W.Data()[0] += 100
	if n.Layers[0].(*Conv).W.Data()[0] == c.Layers[0].(*Conv).W.Data()[0] {
		t.Error("clone shares weights")
	}
}

func TestSummary(t *testing.T) {
	s := MNISTNet(1).Summary()
	if len(s) == 0 || !bytes.Contains([]byte(s), []byte("conv")) {
		t.Errorf("summary missing conv: %q", s)
	}
}
