package dnn

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// epochsRun counts completed training epochs process-wide. It exists so the
// warm-cache path can prove it performed zero training (see cmd/bench and
// the CI warm-cache step).
var epochsRun atomic.Int64

// EpochsRun returns the number of training epochs completed by this process.
func EpochsRun() int64 { return epochsRun.Load() }

// SGD is a stochastic-gradient-descent optimizer with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64 // multiplicative LR decay per epoch

	velocity map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD returns an optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: 1.0,
		velocity: make(map[*tensor.Tensor]*tensor.Tensor)}
}

// Step applies accumulated gradients to the network's parameters and clears
// them.
func (o *SGD) Step(n *Network) {
	for _, l := range n.Layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			g := grads[i]
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(p.Shape()...)
				o.velocity[p] = v
			}
			vd, pd, gd := v.Data(), p.Data(), g.Data()
			for j := range pd {
				vd[j] = o.Momentum*vd[j] - o.LR*gd[j]
				pd[j] += vd[j]
				gd[j] = 0
			}
		}
		if c, ok := l.(*Conv); ok {
			c.ApplyMask()
		}
	}
}

// EndEpoch applies per-epoch learning-rate decay.
func (o *SGD) EndEpoch() { o.LR *= o.Decay }

// SoftmaxCrossEntropy returns the loss and writes dLoss/dLogits into grad.
func SoftmaxCrossEntropy(logits []float64, label int, grad []float64) float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		grad[i] = math.Exp(v - maxv)
		sum += grad[i]
	}
	loss := 0.0
	for i := range grad {
		grad[i] /= sum
		if i == label {
			loss = -math.Log(grad[i] + 1e-12)
			grad[i] -= 1
		}
	}
	return loss
}

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs   int
	LR       float64
	Momentum float64
	Decay    float64 // LR multiplier per epoch (1.0 = constant)
	Seed     uint64
	Verbose  bool
	// MaxSamplesPerEpoch caps the samples visited per epoch (0 = all);
	// GENESIS's fine-tuning passes use small caps to bound sweep cost.
	MaxSamplesPerEpoch int
}

// DefaultTrainConfig returns a reasonable configuration for the synthetic
// datasets in this repository.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 4, LR: 0.004, Momentum: 0.9, Decay: 0.7, Seed: 1}
}

// Train fits the network on ds.Train with per-sample SGD and returns the
// final training loss.
func Train(n *Network, ds *dataset.Dataset, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		return math.NaN()
	}
	if cfg.Decay == 0 {
		cfg.Decay = 1.0
	}
	opt := NewSGD(cfg.LR, cfg.Momentum)
	opt.Decay = cfg.Decay
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7247))
	order := make([]int, len(ds.Train))
	for i := range order {
		order[i] = i
	}
	classes := n.NumClasses()
	grad := make([]float64, classes)
	dyBuf := tensor.New(1, 1, classes)
	lastLoss := math.NaN()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		samples := order
		if cfg.MaxSamplesPerEpoch > 0 && cfg.MaxSamplesPerEpoch < len(samples) {
			samples = samples[:cfg.MaxSamplesPerEpoch]
		}
		total := 0.0
		for _, idx := range samples {
			ex := ds.Train[idx]
			logits := n.forward(ex.X)
			total += SoftmaxCrossEntropy(logits, ex.Label, grad)
			copy(dyBuf.Data(), grad)
			dy := dyBuf
			for li := len(n.Layers) - 1; li >= 0; li-- {
				dy = n.Layers[li].Backward(dy)
			}
			opt.Step(n)
		}
		lastLoss = total / float64(len(samples))
		epochsRun.Add(1)
		opt.EndEpoch()
		if cfg.Verbose {
			fmt.Printf("  epoch %d: loss %.4f\n", epoch, lastLoss)
		}
	}
	return lastLoss
}

// Evaluate returns top-1 accuracy on the given examples, sharding the work
// across an automatically sized worker pool (see EvaluateWorkers).
func Evaluate(n *Network, examples []dataset.Example) float64 {
	return EvaluateWorkers(n, examples, 0)
}

// Confusion returns the confusion matrix m[true][predicted] over examples,
// sharding the work across an automatically sized worker pool (see
// ConfusionWorkers).
func Confusion(n *Network, examples []dataset.Example, classes int) [][]int {
	return ConfusionWorkers(n, examples, classes, 0)
}

// BinaryRates treats `interesting` as the positive class and returns the
// true-positive and true-negative rates of argmax classification — the tp
// and tn parameters of the paper's IMpJ model (Table 1).
func BinaryRates(conf [][]int, interesting int) (tp, tn float64) {
	var posTotal, posHit, negTotal, negHit int
	for truth, row := range conf {
		for pred, count := range row {
			if truth == interesting {
				posTotal += count
				if pred == interesting {
					posHit += count
				}
			} else {
				negTotal += count
				if pred != interesting {
					negHit += count
				}
			}
		}
	}
	if posTotal > 0 {
		tp = float64(posHit) / float64(posTotal)
	}
	if negTotal > 0 {
		tn = float64(negHit) / float64(negTotal)
	}
	return tp, tn
}
