package dnn

import "repro/internal/tensor"

// This file implements per-layer scratch tensors: every layer keeps its
// Forward output and Backward input-gradient buffers between calls instead
// of allocating fresh tensors per sample. The training inner loop runs one
// Forward and one Backward per sample (batch size 1), so these buffers
// turned the hot loop from ~2 allocations per layer per sample into zero
// steady-state allocations without changing a single arithmetic operation —
// the SGD numerics, and therefore the trained weights, are bit-identical.
//
// The buffers are unexported, so gob serialization (and Clone, which is
// built on it) never sees them: clones start with nil buffers and are
// therefore safe to use from other goroutines. A single Network/Layer
// remains single-goroutine, as it always was (layers cache activations).

// scratch returns a tensor with the given shape for a Forward/Backward
// result, reusing *buf when its shape already matches. The contents are
// unspecified: callers must fully overwrite every element.
func scratch(buf **tensor.Tensor, dims ...int) *tensor.Tensor {
	if t := *buf; t != nil && sameShape(t, dims) {
		return t
	}
	t := tensor.New(dims...)
	*buf = t
	return t
}

// scratchZero is scratch for accumulation targets: the returned tensor is
// zero-filled, matching the tensor.New the call site used to perform.
func scratchZero(buf **tensor.Tensor, dims ...int) *tensor.Tensor {
	if t := *buf; t != nil && sameShape(t, dims) {
		t.Zero()
		return t
	}
	t := tensor.New(dims...)
	*buf = t
	return t
}

func sameShape(t *tensor.Tensor, dims []int) bool {
	s := t.Shape()
	if len(s) != len(dims) {
		return false
	}
	for i := range s {
		if s[i] != dims[i] {
			return false
		}
	}
	return true
}
