// Package dnn is a from-scratch deep neural network library sized for the
// networks the paper deploys: small convolutional and fully-connected
// classifiers. It provides float64 training (forward, backprop, SGD with
// momentum), inference, pruning masks, MAC/parameter accounting, Q15
// post-training quantization, and gob serialization.
//
// Training runs per-sample (batch size 1), matching how the embedded device
// sees data and keeping the implementation simple and allocation-light.
package dnn

import (
	"fmt"

	"repro/internal/tensor"
)

// Shape describes an activation volume as (channels, height, width).
type Shape [3]int

// Len returns the number of elements in the volume.
func (s Shape) Len() int { return s[0] * s[1] * s[2] }

// Flat returns the shape flattened to a single vector dimension.
func (s Shape) Flat() Shape { return Shape{1, 1, s.Len()} }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]) }

// Layer is one stage of a network. Forward and Backward operate on a single
// sample; Backward must be called after the corresponding Forward (layers
// cache whatever they need) and accumulates parameter gradients internally.
type Layer interface {
	// Kind returns a short identifier ("conv", "dense", ...).
	Kind() string
	// OutShape returns the output volume for a given input volume, or an
	// error if the input is incompatible.
	OutShape(in Shape) (Shape, error)
	// Forward computes the layer output for one sample.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward takes dLoss/dOutput and returns dLoss/dInput, accumulating
	// parameter gradients.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors matching Params element-for-element.
	Grads() []*tensor.Tensor
	// MACs returns the multiply-accumulate operations one inference
	// through this layer performs for the given input volume.
	MACs(in Shape) int
	// ParamCount returns the number of stored parameters (for pruned
	// layers, only the retained ones).
	ParamCount() int
}

// ReLU is an elementwise rectifier.
type ReLU struct {
	mask []bool

	outBuf, dxBuf *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

func (r *ReLU) Kind() string { return "relu" }

func (r *ReLU) OutShape(in Shape) (Shape, error) { return in, nil }

func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := scratch(&r.outBuf, x.Shape()...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	od := out.Data()
	for i, v := range x.Data() {
		if v > 0 {
			r.mask[i] = true
			od[i] = v
		} else {
			r.mask[i] = false
			od[i] = 0
		}
	}
	return out
}

func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := scratch(&r.dxBuf, dy.Shape()...)
	dxd := dx.Data()
	for i, v := range dy.Data() {
		if r.mask[i] {
			dxd[i] = v
		} else {
			dxd[i] = 0
		}
	}
	return dx
}

func (r *ReLU) Params() []*tensor.Tensor { return nil }
func (r *ReLU) Grads() []*tensor.Tensor  { return nil }
func (r *ReLU) MACs(in Shape) int        { return 0 }
func (r *ReLU) ParamCount() int          { return 0 }

// MaxPool is a 2-D max pooling layer with a square window and equal stride.
type MaxPool struct {
	Window int

	inShape       Shape
	argmax        []int
	outBuf, dxBuf *tensor.Tensor
}

// NewMaxPool returns a max-pooling layer with the given window size
// (window 2 halves each spatial dimension).
func NewMaxPool(window int) *MaxPool { return &MaxPool{Window: window} }

func (p *MaxPool) Kind() string { return "pool" }

func (p *MaxPool) OutShape(in Shape) (Shape, error) {
	if in[1]%p.Window != 0 || in[2]%p.Window != 0 {
		return Shape{}, fmt.Errorf("dnn: pool window %d does not divide input %v", p.Window, in)
	}
	return Shape{in[0], in[1] / p.Window, in[2] / p.Window}, nil
}

func (p *MaxPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/p.Window, w/p.Window
	out := scratch(&p.outBuf, c, oh, ow)
	p.inShape = Shape{c, h, w}
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	xi := x.Data()
	oi := out.Data()
	n := 0
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best, bidx := -1e300, 0
				for ky := 0; ky < p.Window; ky++ {
					for kx := 0; kx < p.Window; kx++ {
						idx := (ci*h+(oy*p.Window+ky))*w + ox*p.Window + kx
						if xi[idx] > best {
							best, bidx = xi[idx], idx
						}
					}
				}
				oi[n] = best
				p.argmax[n] = bidx
				n++
			}
		}
	}
	return out
}

func (p *MaxPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := scratchZero(&p.dxBuf, p.inShape[0], p.inShape[1], p.inShape[2])
	dxd := dx.Data()
	for i, src := range p.argmax {
		dxd[src] += dy.Data()[i]
	}
	return dx
}

func (p *MaxPool) Params() []*tensor.Tensor { return nil }
func (p *MaxPool) Grads() []*tensor.Tensor  { return nil }
func (p *MaxPool) MACs(in Shape) int        { return 0 }
func (p *MaxPool) ParamCount() int          { return 0 }

// Flatten reshapes a volume into a vector; data layout is unchanged.
type Flatten struct {
	inShape Shape
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

func (f *Flatten) Kind() string { return "flatten" }

func (f *Flatten) OutShape(in Shape) (Shape, error) { return in.Flat(), nil }

func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = Shape{x.Dim(0), x.Dim(1), x.Dim(2)}
	return x.Reshape(1, 1, x.Len())
}

func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape[0], f.inShape[1], f.inShape[2])
}

func (f *Flatten) Params() []*tensor.Tensor { return nil }
func (f *Flatten) Grads() []*tensor.Tensor  { return nil }
func (f *Flatten) MACs(in Shape) int        { return 0 }
func (f *Flatten) ParamCount() int          { return 0 }
