package dnn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tensor"
)

// Conv is a 2-D convolution with valid padding and stride 1, over an input
// volume (C,H,W) with F filters of size (C,KH,KW). One-dimensional
// convolutions — the shape GENESIS's separation emits — are just Convs with
// KH or KW equal to 1.
//
// A Conv may carry a pruning Mask (same shape as W); masked weights stay
// zero through training and are excluded from ParamCount and MACs. This is
// how GENESIS's pruned convolutional layers train and deploy.
type Conv struct {
	F, C, KH, KW int
	W            *tensor.Tensor // (F, C, KH, KW)
	B            *tensor.Tensor // (F)
	Mask         []bool         // nil = dense; else len == W.Len()

	dW, dB        *tensor.Tensor
	inCache       *tensor.Tensor
	outBuf, dxBuf *tensor.Tensor
}

// NewConv returns a conv layer with Xavier-initialized weights.
func NewConv(rng *rand.Rand, f, c, kh, kw int) *Conv {
	l := &Conv{
		F: f, C: c, KH: kh, KW: kw,
		W:  tensor.New(f, c, kh, kw),
		B:  tensor.New(f),
		dW: tensor.New(f, c, kh, kw),
		dB: tensor.New(f),
	}
	fanIn := float64(c * kh * kw)
	l.W.RandNormal(rng, math.Sqrt(2.0/fanIn))
	return l
}

func (l *Conv) Kind() string { return "conv" }

func (l *Conv) OutShape(in Shape) (Shape, error) {
	if in[0] != l.C {
		return Shape{}, fmt.Errorf("dnn: conv expects %d channels, got %v", l.C, in)
	}
	oh, ow := in[1]-l.KH+1, in[2]-l.KW+1
	if oh <= 0 || ow <= 0 {
		return Shape{}, fmt.Errorf("dnn: conv kernel %dx%d larger than input %v", l.KH, l.KW, in)
	}
	return Shape{l.F, oh, ow}, nil
}

func (l *Conv) Forward(x *tensor.Tensor) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h-l.KH+1, w-l.KW+1
	out := scratch(&l.outBuf, l.F, oh, ow)
	l.inCache = x
	xd, wd, od := x.Data(), l.W.Data(), out.Data()
	for f := 0; f < l.F; f++ {
		bias := l.B.Data()[f]
		obase := f * oh * ow
		for i := obase; i < obase+oh*ow; i++ {
			od[i] = bias
		}
		for ci := 0; ci < c; ci++ {
			for ky := 0; ky < l.KH; ky++ {
				for kx := 0; kx < l.KW; kx++ {
					wv := wd[((f*l.C+ci)*l.KH+ky)*l.KW+kx]
					if wv == 0 {
						continue
					}
					for oy := 0; oy < oh; oy++ {
						xrow := xd[(ci*h+oy+ky)*w+kx:]
						orow := od[obase+oy*ow:]
						for ox := 0; ox < ow; ox++ {
							orow[ox] += wv * xrow[ox]
						}
					}
				}
			}
		}
	}
	return out
}

func (l *Conv) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := l.inCache
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := dy.Dim(1), dy.Dim(2)
	dx := scratchZero(&l.dxBuf, c, h, w)
	xd, wd, dyd := x.Data(), l.W.Data(), dy.Data()
	dwd, dxd := l.dW.Data(), dx.Data()
	for f := 0; f < l.F; f++ {
		obase := f * oh * ow
		// Bias gradient.
		s := 0.0
		for i := obase; i < obase+oh*ow; i++ {
			s += dyd[i]
		}
		l.dB.Data()[f] += s
		for ci := 0; ci < c; ci++ {
			for ky := 0; ky < l.KH; ky++ {
				for kx := 0; kx < l.KW; kx++ {
					widx := ((f*l.C+ci)*l.KH+ky)*l.KW + kx
					if l.Mask != nil && !l.Mask[widx] {
						continue // pruned weight: no gradient, no input grad
					}
					wv := wd[widx]
					g := 0.0
					for oy := 0; oy < oh; oy++ {
						xrow := xd[(ci*h+oy+ky)*w+kx:]
						dyrow := dyd[obase+oy*ow:]
						xbase := (ci*h + oy + ky) * w
						for ox := 0; ox < ow; ox++ {
							g += dyrow[ox] * xrow[ox]
							dxd[xbase+kx+ox] += wv * dyrow[ox]
						}
					}
					dwd[widx] += g
				}
			}
		}
	}
	return dx
}

func (l *Conv) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }
func (l *Conv) Grads() []*tensor.Tensor  { return []*tensor.Tensor{l.dW, l.dB} }

// MACs counts one multiply-accumulate per retained weight per output
// position.
func (l *Conv) MACs(in Shape) int {
	oh, ow := in[1]-l.KH+1, in[2]-l.KW+1
	return l.retained() * oh * ow
}

func (l *Conv) retained() int {
	if l.Mask == nil {
		return l.W.Len()
	}
	n := 0
	for _, m := range l.Mask {
		if m {
			n++
		}
	}
	return n
}

// ParamCount counts retained weights plus biases.
func (l *Conv) ParamCount() int { return l.retained() + l.F }

// ApplyMask zeroes all pruned weights; call after every optimizer step.
func (l *Conv) ApplyMask() {
	if l.Mask == nil {
		return
	}
	for i, m := range l.Mask {
		if !m {
			l.W.Data()[i] = 0
		}
	}
}

// Prune installs a pruning mask dropping weights with |w| <= threshold and
// zeroes them. It returns the number of retained weights.
func (l *Conv) Prune(threshold float64) int {
	l.Mask = make([]bool, l.W.Len())
	for i, v := range l.W.Data() {
		l.Mask[i] = math.Abs(v) > threshold
	}
	l.ApplyMask()
	return l.retained()
}

// ensureGrads (re)creates gradient buffers after deserialization.
func (l *Conv) ensureGrads() {
	if l.dW == nil {
		l.dW = tensor.New(l.F, l.C, l.KH, l.KW)
		l.dB = tensor.New(l.F)
	}
}
