package dnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/tensor"
)

// Network is an ordered chain of layers applied to a fixed input volume.
type Network struct {
	Name   string
	In     Shape
	Layers []Layer

	inBuf *tensor.Tensor
}

// NewNetwork returns an empty network for the given input volume.
func NewNetwork(name string, in Shape) *Network {
	return &Network{Name: name, In: in}
}

// Add appends layers to the network and returns it for chaining.
func (n *Network) Add(layers ...Layer) *Network {
	n.Layers = append(n.Layers, layers...)
	return n
}

// Validate checks that every layer's input volume matches its predecessor
// and returns the output shape.
func (n *Network) Validate() (Shape, error) {
	s := n.In
	for i, l := range n.Layers {
		next, err := l.OutShape(s)
		if err != nil {
			return Shape{}, fmt.Errorf("dnn: layer %d (%s): %w", i, l.Kind(), err)
		}
		s = next
	}
	return s, nil
}

// NumClasses returns the length of the network's output vector.
func (n *Network) NumClasses() int {
	s, err := n.Validate()
	if err != nil {
		panic(err)
	}
	return s.Len()
}

// Forward runs one sample through the network and returns the logits. The
// returned slice is a copy and stays valid across later calls; the
// allocation-free internal path is forward().
func (n *Network) Forward(x []float64) []float64 {
	return append([]float64(nil), n.forward(x)...)
}

// forward runs one sample through the network and returns the logits as a
// view into the final layer's scratch buffer — valid only until the next
// forward pass. Hot loops (training, Infer) use this to stay
// allocation-free per sample.
func (n *Network) forward(x []float64) []float64 {
	if len(x) != n.In.Len() {
		panic(fmt.Sprintf("dnn: input length %d != %v", len(x), n.In))
	}
	t := scratch(&n.inBuf, n.In[0], n.In[1], n.In[2])
	copy(t.Data(), x)
	for _, l := range n.Layers {
		t = l.Forward(t)
	}
	return t.Data()
}

// Infer returns the argmax class for one sample.
func (n *Network) Infer(x []float64) int {
	logits := n.forward(x)
	best, bi := logits[0], 0
	for i, v := range logits {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// MACs returns the total multiply-accumulates for one inference.
func (n *Network) MACs() int {
	s := n.In
	total := 0
	for _, l := range n.Layers {
		total += l.MACs(s)
		s, _ = l.OutShape(s)
	}
	return total
}

// LayerMACs returns per-layer MAC counts.
func (n *Network) LayerMACs() []int {
	s := n.In
	out := make([]int, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = l.MACs(s)
		s, _ = l.OutShape(s)
	}
	return out
}

// ParamCount returns the total stored parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.Layers {
		total += l.ParamCount()
	}
	return total
}

// ParamBytes returns the FRAM footprint of the parameters assuming 16-bit
// quantized weights, plus 32-bit column/row indices for sparse layers. This
// is the figure GENESIS checks against the device's memory budget.
func (n *Network) ParamBytes() int {
	total := 0
	for _, l := range n.Layers {
		switch sl := l.(type) {
		case *SparseDense:
			// 2 bytes per value + 2 bytes per column index + row pointers.
			total += sl.W.NNZ()*4 + (sl.Out+1)*2 + sl.Out*2
		default:
			total += l.ParamCount() * 2
		}
	}
	return total
}

// Clone deep-copies the network via serialization.
func (n *Network) Clone() *Network {
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		panic(err)
	}
	c, err := Decode(&buf)
	if err != nil {
		panic(err)
	}
	return c
}

// layerRecord is the serialized form of one layer.
type layerRecord struct {
	Kind string
	Conv *Conv
	Dns  *Dense
	Spr  *sparseRecord
	Pool *MaxPool
}

// sparseRecord serializes a SparseDense (CSR fields are exported already,
// but the layer holds unexported training state we must not encode).
type sparseRecord struct {
	Out, In int
	W       *tensor.CSR
	B       []float64
}

// netRecord is the serialized form of a Network.
type netRecord struct {
	Name   string
	In     Shape
	Layers []layerRecord
}

// Encode writes the network to w in gob format.
func (n *Network) Encode(w interface{ Write([]byte) (int, error) }) error {
	rec := netRecord{Name: n.Name, In: n.In}
	for _, l := range n.Layers {
		var lr layerRecord
		lr.Kind = l.Kind()
		switch t := l.(type) {
		case *Conv:
			lr.Conv = t
		case *Dense:
			lr.Dns = t
		case *SparseDense:
			lr.Spr = &sparseRecord{Out: t.Out, In: t.In, W: t.W, B: t.B.Data()}
		case *MaxPool:
			lr.Pool = t
		case *ReLU, *Flatten:
			// kind alone suffices
		default:
			return fmt.Errorf("dnn: cannot encode layer kind %q", l.Kind())
		}
		rec.Layers = append(rec.Layers, lr)
	}
	return gob.NewEncoder(w).Encode(rec)
}

// Decode reads a network written by Encode.
func Decode(r interface{ Read([]byte) (int, error) }) (*Network, error) {
	var rec netRecord
	if err := gob.NewDecoder(r).Decode(&rec); err != nil {
		return nil, err
	}
	n := NewNetwork(rec.Name, rec.In)
	for _, lr := range rec.Layers {
		switch lr.Kind {
		case "conv":
			lr.Conv.ensureGrads()
			n.Add(lr.Conv)
		case "dense":
			lr.Dns.ensureGrads()
			n.Add(lr.Dns)
		case "sparse-dense":
			sd := &SparseDense{Out: lr.Spr.Out, In: lr.Spr.In, W: lr.Spr.W,
				B: tensor.FromSlice(lr.Spr.B, len(lr.Spr.B))}
			sd.initBuffers()
			n.Add(sd)
		case "pool":
			n.Add(lr.Pool)
		case "relu":
			n.Add(NewReLU())
		case "flatten":
			n.Add(NewFlatten())
		default:
			return nil, fmt.Errorf("dnn: unknown layer kind %q", lr.Kind)
		}
	}
	if _, err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// SaveFile writes the network to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Encode(f)
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Summary returns a human-readable per-layer description.
func (n *Network) Summary() string {
	var buf bytes.Buffer
	s := n.In
	fmt.Fprintf(&buf, "%s: input %v\n", n.Name, s)
	for i, l := range n.Layers {
		next, _ := l.OutShape(s)
		fmt.Fprintf(&buf, "  %2d %-12s %v -> %v  params=%d macs=%d\n",
			i, l.Kind(), s, next, l.ParamCount(), l.MACs(s))
		s = next
	}
	fmt.Fprintf(&buf, "  total params=%d (%d bytes) macs=%d\n",
		n.ParamCount(), n.ParamBytes(), n.MACs())
	return buf.String()
}
