package dnn

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestDenseOutShapeError(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	d := NewDense(rng, 4, 10)
	if _, err := d.OutShape(Shape{1, 1, 9}); err == nil {
		t.Error("wrong input length should error")
	}
}

func TestSparseDenseOutShapeError(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	sd := NewSparseDense(NewDense(rng, 4, 10), 0.1)
	if _, err := sd.OutShape(Shape{1, 1, 3}); err == nil {
		t.Error("wrong input length should error")
	}
}

func TestMaxPoolWindow3(t *testing.T) {
	p := NewMaxPool(3)
	out, err := p.OutShape(Shape{2, 9, 6})
	if err != nil || out != (Shape{2, 3, 2}) {
		t.Fatalf("OutShape = %v, %v", out, err)
	}
	rng := rand.New(rand.NewPCG(2, 0))
	checkLayerGradients(t, Shape{2, 9, 6}, NewMaxPool(3))
	_ = rng
}

func TestValidateReportsLayerIndex(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	n := NewNetwork("bad", Shape{1, 4, 4})
	n.Add(NewFlatten(), NewDense(rng, 2, 99)) // 16 != 99
	_, err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "layer 1") {
		t.Errorf("error should identify layer 1: %v", err)
	}
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	n := HARNet(1)
	defer func() {
		if recover() == nil {
			t.Error("wrong input length should panic")
		}
	}()
	n.Forward(make([]float64, 5))
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/net.gob"); err == nil {
		t.Error("missing file should error")
	}
	if _, err := LoadQuantFile("/nonexistent/m.qmodel"); err == nil {
		t.Error("missing quant file should error")
	}
}

func TestQuantFileRoundtrip(t *testing.T) {
	n := HARNet(1)
	ds := dataset.HAR(1, 2, 1)
	qm, err := Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.qmodel"
	if err := qm.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	qm2, err := LoadQuantFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Forward results must be identical.
	x := qm.QuantizeInput(ds.Test[0].X)
	a, b := qm.Forward(x), qm2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d differs after roundtrip", i)
		}
	}
	if qm2.MACs() != qm.MACs() || qm2.WeightWords() != qm.WeightWords() {
		t.Error("metadata differs after roundtrip")
	}
}

func TestTrainZeroEpochs(t *testing.T) {
	n := HARNet(1)
	ds := dataset.HAR(1, 10, 2)
	loss := Train(n, ds, TrainConfig{Epochs: 0})
	if loss == loss { // NaN check: NaN != NaN
		t.Error("zero epochs should return NaN loss")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	n := HARNet(1)
	if Evaluate(n, nil) != 0 {
		t.Error("empty evaluation should be 0")
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.Len() != 24 || s.Flat() != (Shape{1, 1, 24}) {
		t.Error("shape helpers wrong")
	}
	if s.String() != "2x3x4" {
		t.Errorf("String = %q", s.String())
	}
}

func TestConvPruneAllAndNone(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 0))
	c := NewConv(rng, 2, 1, 3, 3)
	if kept := c.Prune(1e9); kept != 0 {
		t.Errorf("pruning everything kept %d", kept)
	}
	c2 := NewConv(rng, 2, 1, 3, 3)
	if kept := c2.Prune(0); kept != c2.W.Len() {
		t.Errorf("zero threshold kept %d of %d", kept, c2.W.Len())
	}
}

func TestQuantizeFullyPrunedConv(t *testing.T) {
	// A conv with every weight pruned must quantize to an empty NZ list
	// and still run (outputs = bias only).
	rng := rand.New(rand.NewPCG(5, 0))
	n := NewNetwork("deadconv", Shape{1, 6, 6})
	conv := NewConv(rng, 2, 1, 3, 3)
	conv.Prune(1e9)
	conv.B.Set(0.25, 0)
	conv.B.Set(-0.25, 1)
	n.Add(conv, NewFlatten(), NewDense(rng, 2, 32))
	x := make([]float64, 36)
	for i := range x {
		x[i] = 0.3
	}
	qm, err := Quantize(n, [][]float64{x})
	if err != nil {
		t.Fatal(err)
	}
	if len(qm.Layers[0].NZ) != 0 {
		t.Errorf("NZ should be empty, got %d", len(qm.Layers[0].NZ))
	}
	out := qm.Forward(qm.QuantizeInput(x))
	if len(out) != 2 {
		t.Fatal("bad output")
	}
}
