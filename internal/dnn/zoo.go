package dnn

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dataset"
)

// The three reference architectures mirror the paper's Table 2 networks
// (image classification, human activity recognition, keyword spotting),
// scaled to the synthetic datasets: a two-conv LeNet-style image network,
// a 1-D conv network over accelerometer windows, and a conv + deep-FC
// network over spectrograms.

// MNISTNet builds the uncompressed image-classification network.
func MNISTNet(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0x31))
	n := NewNetwork("mnist", Shape{1, 28, 28})
	n.Add(
		NewConv(rng, 8, 1, 5, 5), // -> 8x24x24
		NewReLU(),
		NewMaxPool(2),             // -> 8x12x12
		NewConv(rng, 16, 8, 5, 5), // -> 16x8x8
		NewReLU(),
		NewMaxPool(2), // -> 16x4x4
		NewFlatten(),
		NewDense(rng, 64, 256),
		NewReLU(),
		NewDense(rng, 10, 64),
	)
	return n
}

// HARNet builds the uncompressed human-activity-recognition network: 1-D
// convolution over 3-axis accelerometer windows.
func HARNet(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0x32))
	n := NewNetwork("har", Shape{3, 1, 32})
	n.Add(
		NewConv(rng, 16, 3, 1, 9), // -> 16x1x24
		NewReLU(),
		NewFlatten(), // -> 384
		NewDense(rng, 64, 384),
		NewReLU(),
		NewDense(rng, 6, 64),
	)
	return n
}

// OkGNet builds the uncompressed keyword-spotting network: a conv front-end
// over the spectrogram followed by a deep stack of fully-connected layers,
// mirroring the paper's OkG topology.
func OkGNet(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0x33))
	n := NewNetwork("okg", Shape{1, 32, 16})
	n.Add(
		NewConv(rng, 12, 1, 5, 5), // -> 12x28x12
		NewReLU(),
		NewMaxPool(2), // -> 12x14x6
		NewFlatten(),  // -> 1008
		NewDense(rng, 96, 1008),
		NewReLU(),
		NewDense(rng, 32, 96),
		NewReLU(),
		NewDense(rng, 12, 32),
	)
	return n
}

// NetworkFor returns the uncompressed reference network matching a dataset
// name ("digits"/"mnist", "har", "okg").
func NetworkFor(name string, seed uint64) (*Network, error) {
	switch name {
	case "mnist", "digits":
		return MNISTNet(seed), nil
	case "har":
		return HARNet(seed), nil
	case "okg", "keyword":
		return OkGNet(seed), nil
	}
	return nil, fmt.Errorf("dnn: unknown network %q", name)
}

// DatasetFor generates the synthetic dataset matching a network name.
func DatasetFor(name string, seed uint64, nTrain, nTest int) (*dataset.Dataset, error) {
	switch name {
	case "mnist", "digits":
		return dataset.Digits(seed, nTrain, nTest), nil
	case "har":
		return dataset.HAR(seed, nTrain, nTest), nil
	case "okg", "keyword":
		return dataset.Keyword(seed, nTrain, nTest), nil
	}
	return nil, fmt.Errorf("dnn: unknown dataset %q", name)
}
