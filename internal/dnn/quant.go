package dnn

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"

	"repro/internal/fixed"
	"repro/internal/tensor"
)

// QKind identifies the operation a quantized layer performs.
type QKind uint8

// Quantized layer kinds.
const (
	QConv QKind = iota
	QDense
	QSparseDense
	QReLU
	QPool
	QFlatten
)

func (k QKind) String() string {
	switch k {
	case QConv:
		return "conv"
	case QDense:
		return "dense"
	case QSparseDense:
		return "sparse-dense"
	case QReLU:
		return "relu"
	case QPool:
		return "pool"
	case QFlatten:
		return "flatten"
	}
	return "?"
}

// QuantLayer is one layer of a quantized model: Q15 weights plus the fixed
// power-of-two scales GENESIS assigns during post-training quantization.
// This is the layer descriptor the device runtimes (SONIC, TAILS, and the
// task-tiled baselines) consume.
type QuantLayer struct {
	Kind QKind

	// Convolution geometry (QConv) or matrix geometry (QDense/QSparseDense,
	// where Out==F and In==C).
	F, C, KH, KW int
	Out, In      int

	W []fixed.Q15 // dense weights (row-major) or CSR values for sparse
	B []fixed.Q15 // biases, quantized at scale InScale+WScale

	// NZ lists flat indices of nonzero weights for pruned conv layers; nil
	// means the filter is dense. Device sparse-conv kernels walk this list.
	NZ []int32

	// CSR structure for QSparseDense.
	RowPtr []int32
	Cols   []int32

	Window int // pooling window (QPool)

	// Shift maps the Q30 accumulator into the output's Q15 range:
	// out = acc >> (15 + Shift), where Shift = OutScale-InScale-WScale.
	Shift    int
	InScale  fixed.Scale
	WScale   fixed.Scale
	OutScale fixed.Scale

	InShape  Shape
	OutShape Shape
}

// MACs returns the layer's multiply-accumulate count per inference.
func (l *QuantLayer) MACs() int {
	switch l.Kind {
	case QConv:
		per := l.OutShape[1] * l.OutShape[2]
		if l.NZ != nil {
			return len(l.NZ) * per
		}
		return len(l.W) * per
	case QDense:
		return l.Out * l.In
	case QSparseDense:
		return len(l.W)
	}
	return 0
}

// WeightWords returns the number of 16-bit words of weight/index storage the
// layer occupies in FRAM.
func (l *QuantLayer) WeightWords() int {
	switch l.Kind {
	case QConv:
		if l.NZ != nil {
			return 2*len(l.NZ) + len(l.B) // value + packed index per nonzero
		}
		return len(l.W) + len(l.B)
	case QDense:
		return len(l.W) + len(l.B)
	case QSparseDense:
		return 2*len(l.W) + len(l.RowPtr) + len(l.B)
	}
	return 0
}

// QuantModel is a quantized, deployable network image.
type QuantModel struct {
	Name    string
	In      Shape
	InScale fixed.Scale
	Layers  []QuantLayer
}

// scaleMargin widens calibrated activation ranges so that test inputs
// slightly outside the calibration range do not saturate.
const scaleMargin = 1.5

// Quantize converts a trained float network into a Q15 model, calibrating
// per-layer activation scales on the given samples.
func Quantize(n *Network, calib [][]float64) (*QuantModel, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("dnn: quantization requires calibration samples")
	}
	// Pass 1: record max |activation| at the input and after every layer.
	maxAbs := make([]float64, len(n.Layers)+1)
	for _, x := range calib {
		t := tensor.FromSlice(append([]float64(nil), x...), n.In[0], n.In[1], n.In[2])
		for i := 0; i < len(x); i++ {
			if a := math.Abs(x[i]); a > maxAbs[0] {
				maxAbs[0] = a
			}
		}
		for li, l := range n.Layers {
			t = l.Forward(t)
			if m := t.MaxAbs(); m > maxAbs[li+1] {
				maxAbs[li+1] = m
			}
		}
	}
	scales := make([]fixed.Scale, len(maxAbs))
	for i, m := range maxAbs {
		scales[i] = fixed.ScaleFor(m * scaleMargin)
	}
	// Shape-preserving layers must keep their input scale so their device
	// kernels are pure data movement/comparison.
	shape := n.In
	for li, l := range n.Layers {
		switch l.(type) {
		case *ReLU, *MaxPool, *Flatten:
			scales[li+1] = scales[li]
		}
		shape, _ = l.OutShape(shape)
	}
	_ = shape

	qm := &QuantModel{Name: n.Name, In: n.In, InScale: scales[0]}
	in := n.In
	for li, l := range n.Layers {
		out, err := l.OutShape(in)
		if err != nil {
			return nil, err
		}
		ql := QuantLayer{InShape: in, OutShape: out,
			InScale: scales[li], OutScale: scales[li+1]}
		switch t := l.(type) {
		case *Conv:
			ql.Kind = QConv
			ql.F, ql.C, ql.KH, ql.KW = t.F, t.C, t.KH, t.KW
			ql.WScale = fixed.ScaleFor(t.W.MaxAbs())
			ql.W = quantizeSlice(t.W.Data(), ql.WScale)
			ql.B = quantizeSlice(t.B.Data(), ql.InScale+ql.WScale)
			ql.Shift = int(ql.OutScale) - int(ql.InScale) - int(ql.WScale)
			if t.Mask != nil {
				for i, m := range t.Mask {
					if m && ql.W[i] != 0 {
						ql.NZ = append(ql.NZ, int32(i))
					}
				}
			}
		case *Dense:
			ql.Kind = QDense
			ql.Out, ql.In = t.Out, t.In
			ql.WScale = fixed.ScaleFor(t.W.MaxAbs())
			ql.W = quantizeSlice(t.W.Data(), ql.WScale)
			ql.B = quantizeSlice(t.B.Data(), ql.InScale+ql.WScale)
			ql.Shift = int(ql.OutScale) - int(ql.InScale) - int(ql.WScale)
		case *SparseDense:
			ql.Kind = QSparseDense
			ql.Out, ql.In = t.Out, t.In
			maxW := 0.0
			for _, v := range t.W.Vals {
				if a := math.Abs(v); a > maxW {
					maxW = a
				}
			}
			ql.WScale = fixed.ScaleFor(maxW)
			ql.W = quantizeSlice(t.W.Vals, ql.WScale)
			ql.B = quantizeSlice(t.B.Data(), ql.InScale+ql.WScale)
			ql.RowPtr = append([]int32(nil), t.W.RowPtr...)
			ql.Cols = append([]int32(nil), t.W.Cols...)
			ql.Shift = int(ql.OutScale) - int(ql.InScale) - int(ql.WScale)
		case *ReLU:
			ql.Kind = QReLU
		case *MaxPool:
			ql.Kind = QPool
			ql.Window = t.Window
		case *Flatten:
			ql.Kind = QFlatten
		default:
			return nil, fmt.Errorf("dnn: cannot quantize layer kind %q", l.Kind())
		}
		qm.Layers = append(qm.Layers, ql)
		in = out
	}
	return qm, nil
}

func quantizeSlice(vals []float64, s fixed.Scale) []fixed.Q15 {
	out := make([]fixed.Q15, len(vals))
	for i, v := range vals {
		out[i] = s.Quantize(v)
	}
	return out
}

// QuantizeInput converts a float input sample into the model's input scale.
func (m *QuantModel) QuantizeInput(x []float64) []fixed.Q15 {
	out := make([]fixed.Q15, len(x))
	for i, v := range x {
		out[i] = m.InScale.Quantize(v)
	}
	return out
}

// Forward runs the quantized model on a quantized input on the host (no
// device simulation). This is the bit-exact reference the device runtimes
// are validated against: SONIC, TAILS, and the baselines must all produce
// exactly these outputs.
func (m *QuantModel) Forward(x []fixed.Q15) []fixed.Q15 {
	act := append([]fixed.Q15(nil), x...)
	for i := range m.Layers {
		act = m.Layers[i].forward(act)
	}
	return act
}

func (l *QuantLayer) forward(x []fixed.Q15) []fixed.Q15 {
	switch l.Kind {
	case QConv:
		return l.forwardConv(x)
	case QDense:
		out := make([]fixed.Q15, l.Out)
		for o := 0; o < l.Out; o++ {
			var acc fixed.Acc
			row := l.W[o*l.In : (o+1)*l.In]
			for i, w := range row {
				acc = acc.MAC(w, x[i])
			}
			acc = acc.AddQ(l.B[o])
			out[o] = acc.SatShiftSigned(l.Shift)
		}
		return out
	case QSparseDense:
		out := make([]fixed.Q15, l.Out)
		for o := 0; o < l.Out; o++ {
			var acc fixed.Acc
			for p := l.RowPtr[o]; p < l.RowPtr[o+1]; p++ {
				acc = acc.MAC(l.W[p], x[l.Cols[p]])
			}
			acc = acc.AddQ(l.B[o])
			out[o] = acc.SatShiftSigned(l.Shift)
		}
		return out
	case QReLU:
		out := make([]fixed.Q15, len(x))
		for i, v := range x {
			out[i] = fixed.ReLU(v)
		}
		return out
	case QPool:
		c, h, w := l.InShape[0], l.InShape[1], l.InShape[2]
		oh, ow := h/l.Window, w/l.Window
		out := make([]fixed.Q15, c*oh*ow)
		n := 0
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := fixed.MinusOne
					for ky := 0; ky < l.Window; ky++ {
						for kx := 0; kx < l.Window; kx++ {
							v := x[(ci*h+oy*l.Window+ky)*w+ox*l.Window+kx]
							best = fixed.Max(best, v)
						}
					}
					out[n] = best
					n++
				}
			}
		}
		return out
	case QFlatten:
		return x
	}
	panic("dnn: unknown quant layer kind")
}

// forwardConv computes the conv in the same loop-ordered fashion SONIC uses
// (filter-element outer loop, accumulating partials) so the host reference
// and the device kernels follow identical arithmetic.
func (l *QuantLayer) forwardConv(x []fixed.Q15) []fixed.Q15 {
	h, w := l.InShape[1], l.InShape[2]
	oh, ow := l.OutShape[1], l.OutShape[2]
	accs := make([]fixed.Acc, l.F*oh*ow)
	apply := func(widx int, wv fixed.Q15) {
		kx := widx % l.KW
		ky := (widx / l.KW) % l.KH
		ci := (widx / (l.KW * l.KH)) % l.C
		f := widx / (l.KW * l.KH * l.C)
		base := f * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				xi := x[(ci*h+oy+ky)*w+ox+kx]
				accs[base+oy*ow+ox] = accs[base+oy*ow+ox].MAC(wv, xi)
			}
		}
	}
	if l.NZ != nil {
		for _, widx := range l.NZ {
			apply(int(widx), l.W[widx])
		}
	} else {
		for widx, wv := range l.W {
			if wv != 0 {
				apply(widx, wv)
			}
		}
	}
	out := make([]fixed.Q15, l.F*oh*ow)
	for f := 0; f < l.F; f++ {
		for i := f * oh * ow; i < (f+1)*oh*ow; i++ {
			out[i] = accs[i].AddQ(l.B[f]).SatShiftSigned(l.Shift)
		}
	}
	return out
}

// Infer returns the argmax class for a float input.
func (m *QuantModel) Infer(x []float64) int {
	logits := m.Forward(m.QuantizeInput(x))
	best, bi := fixed.MinusOne, 0
	for i, v := range logits {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// MACs returns the total multiply-accumulates per inference.
func (m *QuantModel) MACs() int {
	t := 0
	for i := range m.Layers {
		t += m.Layers[i].MACs()
	}
	return t
}

// WeightWords returns total 16-bit words of parameter storage.
func (m *QuantModel) WeightWords() int {
	t := 0
	for i := range m.Layers {
		t += m.Layers[i].WeightWords()
	}
	return t
}

// SaveFile writes the quantized model to path in gob format.
func (m *QuantModel) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(m)
}

// LoadQuantFile reads a quantized model written by SaveFile.
func LoadQuantFile(path string) (*QuantModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m QuantModel
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
