package dnn

import (
	"bytes"
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// This file shards inference-only passes (Evaluate, Confusion) over a pool
// of per-worker network clones. Clones are mandatory: layers cache
// activations between Forward and Backward, so a single Network is never
// goroutine-safe. Each worker decodes a private copy of the network from a
// once-encoded gob blob and walks a contiguous shard of the examples.
//
// The reductions are integer counts (correct predictions, confusion-cell
// tallies), which are order-independent, so the sharded result is
// bit-identical to the serial one for any worker count. That equivalence is
// what lets genesis run the sweep in parallel while still matching the
// ForceSerial oracle (TestGenesisParallelDeterministic).

// minShard is the smallest number of examples worth a dedicated worker;
// below it the clone-decode cost dominates.
const minShard = 32

// evalWorkers resolves a caller-supplied worker count: <= 0 means "auto"
// (GOMAXPROCS, capped so each worker gets at least minShard examples).
func evalWorkers(workers, n int) int {
	if workers > 0 {
		if workers > n {
			return max(n, 1)
		}
		return workers
	}
	w := runtime.GOMAXPROCS(0)
	if byLoad := n / minShard; byLoad < w {
		w = byLoad
	}
	return max(w, 1)
}

// cloneFromBlob materializes an independent network from an Encode blob.
func cloneFromBlob(blob []byte) *Network {
	c, err := Decode(bytes.NewReader(blob))
	if err != nil {
		panic(err) // blob came from Encode on a valid network
	}
	return c
}

// shardBounds returns the half-open range of examples for worker w of ws.
func shardBounds(w, ws, n int) (lo, hi int) {
	return w * n / ws, (w + 1) * n / ws
}

// EvaluateWorkers returns top-1 accuracy on the given examples using the
// requested number of workers (<= 0 = auto, 1 = serial on n itself). The
// result is bit-identical for every worker count.
func EvaluateWorkers(n *Network, examples []dataset.Example, workers int) float64 {
	if len(examples) == 0 {
		return 0
	}
	ws := evalWorkers(workers, len(examples))
	if ws <= 1 {
		return float64(countCorrect(n, examples)) / float64(len(examples))
	}
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		panic(err)
	}
	blob := buf.Bytes()
	counts := make([]int, ws)
	var wg sync.WaitGroup
	for w := 0; w < ws; w++ {
		lo, hi := shardBounds(w, ws, len(examples))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			counts[w] = countCorrect(cloneFromBlob(blob), examples[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return float64(total) / float64(len(examples))
}

func countCorrect(n *Network, examples []dataset.Example) int {
	correct := 0
	for _, ex := range examples {
		if n.Infer(ex.X) == ex.Label {
			correct++
		}
	}
	return correct
}

// ConfusionWorkers returns the confusion matrix m[true][predicted] over
// examples using the requested number of workers (<= 0 = auto, 1 = serial
// on n itself). The result is bit-identical for every worker count.
func ConfusionWorkers(n *Network, examples []dataset.Example, classes, workers int) [][]int {
	ws := evalWorkers(workers, len(examples))
	if ws <= 1 || len(examples) == 0 {
		return confusionInto(newConfusion(classes), n, examples)
	}
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		panic(err)
	}
	blob := buf.Bytes()
	parts := make([][][]int, ws)
	var wg sync.WaitGroup
	for w := 0; w < ws; w++ {
		lo, hi := shardBounds(w, ws, len(examples))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = confusionInto(newConfusion(classes), cloneFromBlob(blob), examples[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	m := newConfusion(classes)
	for _, part := range parts {
		for t, row := range part {
			for p, count := range row {
				m[t][p] += count
			}
		}
	}
	return m
}

func newConfusion(classes int) [][]int {
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	return m
}

func confusionInto(m [][]int, n *Network, examples []dataset.Example) [][]int {
	for _, ex := range examples {
		m[ex.Label][n.Infer(ex.X)]++
	}
	return m
}
