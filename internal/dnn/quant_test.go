package dnn

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fixed"
)

// trainSmall fits a network on a small synthetic dataset; shared by the
// quantization tests.
func trainSmall(t *testing.T, name string) (*Network, *dataset.Dataset) {
	t.Helper()
	ds, err := DatasetFor(name, 1, 600, 150)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NetworkFor(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	Train(n, ds, cfg)
	return n, ds
}

func TestTrainingReachesUsefulAccuracyHAR(t *testing.T) {
	n, ds := trainSmall(t, "har")
	acc := Evaluate(n, ds.Test)
	if acc < 0.7 {
		t.Errorf("HAR accuracy = %v, want >= 0.7", acc)
	}
}

func TestTrainingReachesUsefulAccuracyDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("training digits is slow")
	}
	n, ds := trainSmall(t, "digits")
	acc := Evaluate(n, ds.Test)
	if acc < 0.6 {
		t.Errorf("digits accuracy = %v, want >= 0.6", acc)
	}
}

func TestQuantizedModelAgreesWithFloat(t *testing.T) {
	n, ds := trainSmall(t, "har")
	calib := make([][]float64, 0, 32)
	for i := 0; i < 32 && i < len(ds.Train); i++ {
		calib = append(calib, ds.Train[i].X)
	}
	qm, err := Quantize(n, calib)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, ex := range ds.Test {
		if qm.Infer(ex.X) == n.Infer(ex.X) {
			agree++
		}
	}
	frac := float64(agree) / float64(len(ds.Test))
	if frac < 0.9 {
		t.Errorf("quantized/float agreement = %v, want >= 0.9", frac)
	}
}

func TestQuantizeRequiresCalibration(t *testing.T) {
	n := HARNet(1)
	if _, err := Quantize(n, nil); err == nil {
		t.Error("expected error without calibration samples")
	}
}

func TestQuantMACsMatchFloat(t *testing.T) {
	n := HARNet(1)
	ds := dataset.HAR(1, 4, 0)
	qm, err := Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	if qm.MACs() != n.MACs() {
		t.Errorf("quant MACs %d != float MACs %d", qm.MACs(), n.MACs())
	}
	if qm.WeightWords() == 0 {
		t.Error("WeightWords should be nonzero")
	}
}

func TestQuantSparseAndPrunedLayers(t *testing.T) {
	n := HARNet(2)
	ds := dataset.HAR(2, 64, 16)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	Train(n, ds, cfg)
	// Prune the conv and sparsify the first dense layer.
	n.Layers[0].(*Conv).Prune(0.05)
	n.Layers[3] = NewSparseDense(n.Layers[3].(*Dense), 0.05)
	qm, err := Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		t.Fatal(err)
	}
	if qm.Layers[0].NZ == nil {
		t.Error("pruned conv should carry an NZ index list")
	}
	if qm.Layers[3].Kind != QSparseDense || qm.Layers[3].RowPtr == nil {
		t.Error("sparse dense not quantized as sparse")
	}
	// Sparse layer MACs equal its NNZ.
	if got := qm.Layers[3].MACs(); got != len(qm.Layers[3].W) {
		t.Errorf("sparse MACs = %d, want %d", got, len(qm.Layers[3].W))
	}
	// The quantized model must still be runnable.
	out := qm.Forward(qm.QuantizeInput(ds.Test[0].X))
	if len(out) != 6 {
		t.Errorf("output length = %d", len(out))
	}
}

func TestQuantShapePreservingScales(t *testing.T) {
	n := HARNet(1)
	ds := dataset.HAR(1, 2, 0)
	qm, err := Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range qm.Layers {
		switch l.Kind {
		case QReLU, QPool, QFlatten:
			if l.InScale != l.OutScale {
				t.Errorf("layer %d (%v): shape-preserving layer changed scale %d->%d",
					i, l.Kind, l.InScale, l.OutScale)
			}
		}
	}
}

func TestQKindString(t *testing.T) {
	kinds := []QKind{QConv, QDense, QSparseDense, QReLU, QPool, QFlatten}
	want := []string{"conv", "dense", "sparse-dense", "relu", "pool", "flatten"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("QKind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestQuantizeInputScale(t *testing.T) {
	n := HARNet(1)
	ds := dataset.HAR(1, 2, 0)
	qm, _ := Quantize(n, [][]float64{ds.Train[0].X})
	q := qm.QuantizeInput(ds.Train[0].X)
	for i, v := range q {
		back := qm.InScale.Apply(v)
		if diff := back - ds.Train[0].X[i]; diff > 0.01 || diff < -0.01 {
			t.Fatalf("input quantization error too large at %d: %v", i, diff)
		}
	}
}

func BenchmarkFloatForwardHAR(b *testing.B) {
	n := HARNet(1)
	ds := dataset.HAR(1, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(ds.Train[0].X)
	}
}

func BenchmarkQuantForwardHAR(b *testing.B) {
	n := HARNet(1)
	ds := dataset.HAR(1, 1, 0)
	qm, _ := Quantize(n, [][]float64{ds.Train[0].X})
	x := qm.QuantizeInput(ds.Train[0].X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.Forward(x)
	}
}

var _ = fixed.One // keep import if tests above change
