// Package genesis implements GENESIS (§5): automatic exploration of
// compressed network configurations — pruning and separation at several
// aggressiveness levels — with fine-tuning, feasibility checking against
// the device's non-volatile memory budget, Pareto-frontier construction
// (Fig. 4), and selection of the configuration that maximizes the IMpJ
// application-performance model of §3 (Fig. 5).
//
// Inference energy per configuration is measured, not estimated: the
// quantized network is deployed on the device model and run once under the
// deployment runtime (TAILS by default) on continuous power, exactly as
// the paper derives per-operation energies from its SONIC & TAILS
// prototype (§5.3).
package genesis

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/imodel"
	"repro/internal/mcu"
	"repro/internal/tails"
)

// Technique identifies which compression family a configuration uses.
type Technique string

// Technique values.
const (
	TechNone     Technique = "none"
	TechPrune    Technique = "prune"
	TechSeparate Technique = "separate"
	TechBoth     Technique = "both"
)

// Config is one point in GENESIS's search space: a global pruning level
// (fraction of weights dropped) and a separation rank fraction (fraction of
// full rank retained), applied across the network's layers.
type Config struct {
	Technique  Technique
	PruneLevel float64 // 0 = no pruning
	RankFrac   float64 // 1 = no separation
}

// Name is a short identifier like "prune-0.90" or "both-0.75-r0.50".
func (c Config) Name() string {
	switch c.Technique {
	case TechNone:
		return "uncompressed"
	case TechPrune:
		return fmt.Sprintf("prune-%.2f", c.PruneLevel)
	case TechSeparate:
		return fmt.Sprintf("sep-r%.2f", c.RankFrac)
	default:
		return fmt.Sprintf("both-%.2f-r%.2f", c.PruneLevel, c.RankFrac)
	}
}

// Result is the evaluated outcome of one configuration.
type Result struct {
	Config     Config
	Accuracy   float64
	TP, TN     float64
	MACs       int
	ParamBytes int
	Feasible   bool
	EInferJ    float64 // measured energy per inference (Joules)
	IMpJ       float64
	Model      *dnn.QuantModel // nil if quantization/deployment failed

	// Err records why evaluation failed ("apply: ...", "quantize: ...",
	// "deploy: ...", "infer: ..."); empty for a fully evaluated config. A
	// string rather than an error so Result survives gob round-trips
	// through the report cache. Errored results are never feasible and are
	// excluded from per-technique frontiers.
	Err string
}

// Options configures a GENESIS run.
type Options struct {
	Network string // "mnist", "har", or "okg"
	Seed    uint64

	TrainSamples, TestSamples int
	Epochs                    int // base training epochs
	FineTuneEpochs            int // per-config fine-tuning epochs
	MaxSamplesPerEpoch        int // cap per epoch (0 = all)

	// FRAMBudgetBytes is the weight-storage budget for feasibility. The
	// paper's original networks exceed their device's 256 KB FRAM; our
	// scaled-down networks exceed a scaled-down budget (default 40 KB,
	// modelling a small FRAM part with the runtime resident).
	FRAMBudgetBytes int

	// Interesting is the class index treated as the "interesting" event
	// for the tp/tn rates of the application model.
	Interesting int

	// App supplies Esense and Ecomm (and the base rate p); EInfer is
	// filled per configuration from measurement.
	App imodel.Params

	// MeasureRuntime is the inference implementation whose energy defines
	// EInfer (default TAILS — the deployed system is SONIC & TAILS, and
	// the paper derives per-operation energies from that prototype).
	MeasureRuntime core.Runtime

	PruneLevels []float64
	RankFracs   []float64

	// Workers bounds the per-config fan-out of Run (0 = GOMAXPROCS).
	// ForceSerial pins the entire run to a single goroutine with serial
	// per-example evaluation; it exists so tests can prove the parallel
	// path bit-identical to the serial one. Neither knob affects results,
	// and both are excluded from the report-cache OptionsHash.
	Workers     int
	ForceSerial bool
}

// DefaultOptions returns a sweep sized for the synthetic datasets.
func DefaultOptions(network string) Options {
	app := imodel.WildlifeDefaults()
	app.EComm /= imodel.ResultOnlyCommFactor // devices send results, not images
	return Options{
		Network:         network,
		Seed:            1,
		TrainSamples:    1200,
		TestSamples:     300,
		Epochs:          3,
		FineTuneEpochs:  1,
		FRAMBudgetBytes: 40 * 1024,
		Interesting:     0,
		App:             app,
		PruneLevels:     []float64{0.5, 0.75, 0.9, 0.96},
		RankFracs:       []float64{0.75, 0.5, 0.3},
	}
}

// Report is the full outcome of a GENESIS run.
type Report struct {
	Options Options
	Dataset string
	Results []Result
	// Chosen indexes the feasible result with the highest IMpJ (-1 if no
	// configuration is feasible).
	Chosen int
}

// ChosenResult returns the selected configuration, or nil.
func (r *Report) ChosenResult() *Result {
	if r.Chosen < 0 {
		return nil
	}
	return &r.Results[r.Chosen]
}

// Run executes the full GENESIS pipeline.
func Run(opts Options) (*Report, error) {
	ds, err := dnn.DatasetFor(opts.Network, opts.Seed, opts.TrainSamples, opts.TestSamples)
	if err != nil {
		return nil, err
	}
	base, err := dnn.NetworkFor(opts.Network, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = opts.Epochs
	cfg.Seed = opts.Seed
	cfg.MaxSamplesPerEpoch = opts.MaxSamplesPerEpoch
	dnn.Train(base, ds, cfg)

	report := &Report{Options: opts, Dataset: ds.String(), Chosen: -1}
	configs := opts.Configs()
	report.Results = make([]Result, len(configs))
	if opts.ForceSerial {
		for i, c := range configs {
			report.Results[i] = evaluateClone(base.Clone(), ds, c, opts, 1)
		}
	} else {
		// Each worker evaluates on a private decode of the trained base
		// (Clone is itself an Encode/Decode round-trip, so a decoded copy
		// is exactly what the serial path's Clone produces). Results land
		// at their config's index, and every per-example reduction is an
		// order-independent integer count, so the report is bit-identical
		// to the ForceSerial path — see TestGenesisParallelDeterministic.
		var raw bytes.Buffer
		if err := base.Encode(&raw); err != nil {
			return nil, err
		}
		blob := raw.Bytes()
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, c := range configs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, c Config) {
				defer wg.Done()
				defer func() { <-sem }()
				n, err := dnn.Decode(bytes.NewReader(blob))
				if err != nil {
					report.Results[i] = Result{Config: c, Err: fmt.Sprintf("clone: %v", err)}
					return
				}
				report.Results[i] = evaluateClone(n, ds, c, opts, 0)
			}(i, c)
		}
		wg.Wait()
	}
	best := -1.0
	for i := range report.Results {
		r := &report.Results[i]
		if r.Feasible && r.IMpJ > best {
			best = r.IMpJ
			report.Chosen = i
		}
	}
	return report, nil
}

// Configs enumerates the sweep: the uncompressed point, each pruning level,
// each separation level, and their cross product.
func (o Options) Configs() []Config {
	out := []Config{{Technique: TechNone, RankFrac: 1}}
	for _, p := range o.PruneLevels {
		out = append(out, Config{Technique: TechPrune, PruneLevel: p, RankFrac: 1})
	}
	for _, r := range o.RankFracs {
		out = append(out, Config{Technique: TechSeparate, RankFrac: r})
	}
	for _, p := range o.PruneLevels {
		for _, r := range o.RankFracs {
			out = append(out, Config{Technique: TechBoth, PruneLevel: p, RankFrac: r})
		}
	}
	return out
}

// evaluateClone applies a configuration to an already-private copy of the
// trained base network (the caller hands over ownership), fine-tunes,
// quantizes, measures, and scores it. evalWorkers is passed through to the
// sharded accuracy/confusion passes (1 = fully serial, 0 = auto).
func evaluateClone(n *dnn.Network, ds *dataset.Dataset, c Config, opts Options, evalWorkers int) Result {
	if err := Apply(n, c); err != nil {
		return Result{Config: c, Err: fmt.Sprintf("apply: %v", err)}
	}
	if opts.FineTuneEpochs > 0 && c.Technique != TechNone {
		ft := dnn.DefaultTrainConfig()
		ft.Epochs = opts.FineTuneEpochs
		ft.LR = 0.001
		ft.Seed = opts.Seed + 77
		ft.MaxSamplesPerEpoch = opts.MaxSamplesPerEpoch
		dnn.Train(n, ds, ft)
	}
	res := evaluateNetwork(n, ds, opts, evalWorkers)
	res.Config = c
	return res
}

// evaluateNetwork quantizes a compressed network, checks feasibility,
// measures its inference energy on the device model, and scores it with
// the IMpJ application model.
func evaluateNetwork(n *dnn.Network, ds *dataset.Dataset, opts Options, evalWorkers int) Result {
	var res Result
	res.Accuracy = dnn.EvaluateWorkers(n, ds.Test, evalWorkers)
	conf := dnn.ConfusionWorkers(n, ds.Test, ds.NumClasses, evalWorkers)
	res.TP, res.TN = dnn.BinaryRates(conf, opts.Interesting)
	res.MACs = n.MACs()

	calib := make([][]float64, 0, 16)
	for i := 0; i < 16 && i < len(ds.Train); i++ {
		calib = append(calib, ds.Train[i].X)
	}
	qm, err := dnn.Quantize(n, calib)
	if err != nil {
		res.Err = fmt.Sprintf("quantize: %v", err)
		return res
	}
	res.Model = qm
	res.ParamBytes = qm.WeightWords() * 2
	res.Feasible = res.ParamBytes <= opts.FRAMBudgetBytes

	// Measure inference energy on the device model. Each call builds its
	// own mcu.Device, so concurrent workers never share device state.
	rt := opts.MeasureRuntime
	if rt == nil {
		rt = tails.TAILS{}
	}
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		res.Feasible = false
		res.Err = fmt.Sprintf("deploy: %v", err)
		return res
	}
	defer img.Release()
	if _, err := rt.Infer(img, qm.QuantizeInput(ds.Test[0].X)); err != nil {
		res.Feasible = false
		res.Err = fmt.Sprintf("infer: %v", err)
		return res
	}
	res.EInferJ = dev.Stats().EnergyNJ() * 1e-9

	app := opts.App
	app.TP, app.TN, app.EInfer = res.TP, res.TN, res.EInferJ
	res.IMpJ = imodel.Inference(app)
	return res
}

// Apply transforms a network in place according to a configuration.
// Separation runs first (back to front so indices stay valid), then
// pruning on the resulting layers. Classifier (final) fully-connected
// layers are never compressed, and tiny layers are skipped.
func Apply(n *dnn.Network, c Config) error {
	sep := c.Technique == TechSeparate || c.Technique == TechBoth
	prune := c.Technique == TechPrune || c.Technique == TechBoth

	lastFC := -1
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if n.Layers[i].Kind() == "dense" {
			lastFC = i
			break
		}
	}

	if sep && c.RankFrac < 1 {
		for i := len(n.Layers) - 1; i >= 0; i-- {
			switch l := n.Layers[i].(type) {
			case *dnn.Conv:
				if l.W.Len() < 64 {
					continue
				}
				if l.C == 1 {
					full := minInt(l.C*l.KH, l.F*l.KW)
					if err := compress.SeparateConvSpatial(n, i, scaleRank(full, c.RankFrac)); err != nil {
						return err
					}
				} else {
					rf := scaleRank(l.F, c.RankFrac)
					rc := scaleRank(l.C, c.RankFrac)
					if err := compress.SeparateConvTucker2(n, i, rf, rc); err != nil {
						return err
					}
				}
			case *dnn.Dense:
				if i == lastFC || l.Out*l.In < 1024 {
					continue
				}
				full := minInt(l.Out, l.In)
				if err := compress.SeparateDense(n, i, scaleRank(full, c.RankFrac)); err != nil {
					return err
				}
			}
		}
		// Recompute the classifier index after insertions.
		lastFC = -1
		for i := len(n.Layers) - 1; i >= 0; i-- {
			if n.Layers[i].Kind() == "dense" {
				lastFC = i
				break
			}
		}
	}

	if prune && c.PruneLevel > 0 {
		for i := len(n.Layers) - 1; i >= 0; i-- {
			switch l := n.Layers[i].(type) {
			case *dnn.Conv:
				if l.W.Len() < 100 {
					continue
				}
				if _, err := compress.PruneConv(n, i, c.PruneLevel); err != nil {
					return err
				}
			case *dnn.Dense:
				if i == lastFC || l.Out*l.In < 1024 {
					continue
				}
				if _, err := compress.SparsifyDense(n, i, c.PruneLevel); err != nil {
					return err
				}
			}
		}
	}
	_, err := n.Validate()
	return err
}

func scaleRank(full int, frac float64) int {
	r := int(float64(full)*frac + 0.5)
	if r < 1 {
		r = 1
	}
	return r
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ParetoFront returns the indices of results on the accuracy-vs-MACs Pareto
// frontier among the given candidate indices: points where no other
// candidate has both fewer-or-equal MACs and strictly higher accuracy.
// Indices are returned sorted by MACs ascending.
func ParetoFront(results []Result, candidates []int) []int {
	var front []int
	for _, i := range candidates {
		dominated := false
		for _, j := range candidates {
			if j == i {
				continue
			}
			if results[j].MACs <= results[i].MACs && results[j].Accuracy > results[i].Accuracy {
				dominated = true
				break
			}
			if results[j].MACs < results[i].MACs && results[j].Accuracy >= results[i].Accuracy {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	sort.Slice(front, func(a, b int) bool {
		return results[front[a]].MACs < results[front[b]].MACs
	})
	return front
}

// ByTechnique returns result indices whose technique is in the given set
// (TechNone is always included, as in the paper's per-technique frontiers).
// Results that failed to evaluate (Err != "") are excluded: their zero MACs
// and accuracy would otherwise fabricate a frontier point.
func ByTechnique(results []Result, techs ...Technique) []int {
	var out []int
	for i := range results {
		if results[i].Err != "" {
			continue
		}
		t := results[i].Config.Technique
		if t == TechNone {
			out = append(out, i)
			continue
		}
		for _, want := range techs {
			if t == want {
				out = append(out, i)
				break
			}
		}
	}
	return out
}
