package genesis

import (
	"strings"
	"testing"

	"repro/internal/dnn"
)

// TestGenesisParallelDeterministic is the equivalence oracle for the
// parallel sweep: for every evaluation network, a run fanned out across
// workers must produce a report bit-identical — accuracies, rates, MACs,
// param bytes, measured energies, IMpJ, and the chosen config — to a run
// pinned to a single goroutine by ForceSerial. Run under -race, this also
// exercises the fan-out paths for data races.
func TestGenesisParallelDeterministic(t *testing.T) {
	for _, net := range []string{"mnist", "har", "okg"} {
		t.Run(net, func(t *testing.T) {
			so := smallOptions(net)
			so.ForceSerial = true
			serial, err := Run(so)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			po := smallOptions(net)
			po.Workers = 4 // force real fan-out even on a 1-CPU machine
			parallel, err := Run(po)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if len(serial.Results) != len(parallel.Results) {
				t.Fatalf("result counts differ: serial %d, parallel %d",
					len(serial.Results), len(parallel.Results))
			}
			if serial.Chosen != parallel.Chosen {
				t.Errorf("chosen differs: serial %d, parallel %d", serial.Chosen, parallel.Chosen)
			}
			for i := range serial.Results {
				s, p := &serial.Results[i], &parallel.Results[i]
				if s.Config != p.Config {
					t.Fatalf("result %d: config %v vs %v", i, s.Config, p.Config)
				}
				// Float comparisons are exact on purpose: the claim is
				// bit-identity, not approximate agreement.
				if s.Accuracy != p.Accuracy || s.TP != p.TP || s.TN != p.TN {
					t.Errorf("%s: accuracy/tp/tn differ: (%v %v %v) vs (%v %v %v)",
						s.Config.Name(), s.Accuracy, s.TP, s.TN, p.Accuracy, p.TP, p.TN)
				}
				if s.MACs != p.MACs || s.ParamBytes != p.ParamBytes || s.Feasible != p.Feasible {
					t.Errorf("%s: macs/bytes/feasible differ: (%d %d %v) vs (%d %d %v)",
						s.Config.Name(), s.MACs, s.ParamBytes, s.Feasible, p.MACs, p.ParamBytes, p.Feasible)
				}
				if s.EInferJ != p.EInferJ || s.IMpJ != p.IMpJ {
					t.Errorf("%s: energy/impj differ: (%v %v) vs (%v %v)",
						s.Config.Name(), s.EInferJ, s.IMpJ, p.EInferJ, p.IMpJ)
				}
				if s.Err != p.Err {
					t.Errorf("%s: err differs: %q vs %q", s.Config.Name(), s.Err, p.Err)
				}
			}
		})
	}
}

// TestEvaluateErrPropagates checks that an evaluation failure surfaces as
// Result.Err instead of a fake zero-value row: an empty training set leaves
// quantization without calibration samples.
func TestEvaluateErrPropagates(t *testing.T) {
	ds, err := dnn.DatasetFor("har", 1, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ds.Train = nil // no calibration samples -> Quantize must fail
	n, err := dnn.NetworkFor("har", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := evaluateNetwork(n, ds, smallOptions("har"), 1)
	if res.Err == "" {
		t.Fatal("expected Err on quantization failure, got none")
	}
	if !strings.HasPrefix(res.Err, "quantize:") {
		t.Errorf("Err = %q, want quantize: prefix", res.Err)
	}
	if res.Feasible {
		t.Error("errored result must not be feasible")
	}
	if res.Model != nil {
		t.Error("errored result must not carry a model")
	}
}

// TestByTechniqueSkipsErrored checks errored sweep entries never reach the
// per-technique frontiers (their zero MACs would fabricate Pareto points).
func TestByTechniqueSkipsErrored(t *testing.T) {
	results := []Result{
		{Config: Config{Technique: TechNone}},
		{Config: Config{Technique: TechPrune}, Err: "apply: boom"},
		{Config: Config{Technique: TechPrune}},
	}
	got := ByTechnique(results, TechPrune)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ByTechnique = %v, want [0 2]", got)
	}
}
