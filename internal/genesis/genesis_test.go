package genesis

import (
	"testing"

	"repro/internal/dnn"
)

// smallOptions keeps the sweep cheap for unit tests.
func smallOptions(network string) Options {
	o := DefaultOptions(network)
	o.TrainSamples = 360
	o.TestSamples = 90
	o.Epochs = 2
	o.FineTuneEpochs = 1
	o.MaxSamplesPerEpoch = 240
	o.PruneLevels = []float64{0.8}
	o.RankFracs = []float64{0.5}
	return o
}

func TestConfigsEnumeration(t *testing.T) {
	o := DefaultOptions("har")
	cfgs := o.Configs()
	// 1 none + 4 prune + 3 separate + 12 both
	if len(cfgs) != 20 {
		t.Fatalf("config count = %d, want 20", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Name()] {
			t.Errorf("duplicate config name %q", c.Name())
		}
		names[c.Name()] = true
	}
}

func TestApplyReducesCost(t *testing.T) {
	base := dnn.HARNet(1)
	baseMACs, baseParams := base.MACs(), base.ParamCount()
	for _, c := range []Config{
		{Technique: TechPrune, PruneLevel: 0.8, RankFrac: 1},
		{Technique: TechSeparate, RankFrac: 0.4},
		{Technique: TechBoth, PruneLevel: 0.8, RankFrac: 0.4},
	} {
		n := base.Clone()
		if err := Apply(n, c); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if n.MACs() >= baseMACs {
			t.Errorf("%s: MACs %d not reduced from %d", c.Name(), n.MACs(), baseMACs)
		}
		if n.ParamCount() >= baseParams {
			t.Errorf("%s: params %d not reduced from %d", c.Name(), n.ParamCount(), baseParams)
		}
	}
}

func TestApplyNoneIsIdentity(t *testing.T) {
	base := dnn.HARNet(1)
	n := base.Clone()
	if err := Apply(n, Config{Technique: TechNone, RankFrac: 1}); err != nil {
		t.Fatal(err)
	}
	if n.MACs() != base.MACs() || n.ParamCount() != base.ParamCount() {
		t.Error("none config should not change the network")
	}
}

func TestRunHARSweep(t *testing.T) {
	rep, err := Run(smallOptions("har"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 { // none + prune + sep + both
		t.Fatalf("results = %d, want 4", len(rep.Results))
	}
	// The uncompressed network must be infeasible under the budget (the
	// premise of Fig. 4's "original, uncompressed" marker).
	if rep.Results[0].Config.Technique != TechNone {
		t.Fatal("first result should be uncompressed")
	}
	if rep.Results[0].Feasible {
		t.Errorf("uncompressed (%dB) should exceed the %dB budget",
			rep.Results[0].ParamBytes, rep.Options.FRAMBudgetBytes)
	}
	// At least one compressed configuration must be feasible and chosen.
	if rep.Chosen < 0 {
		t.Fatal("no feasible configuration chosen")
	}
	chosen := rep.ChosenResult()
	if chosen.Config.Technique == TechNone {
		t.Error("chosen config should be compressed")
	}
	if chosen.IMpJ <= 0 {
		t.Error("chosen IMpJ should be positive")
	}
	if chosen.EInferJ <= 0 {
		t.Error("EInfer should be measured")
	}
	if chosen.Accuracy < 0.5 {
		t.Errorf("chosen accuracy %v too low", chosen.Accuracy)
	}
	// Compression must actually shrink the deployed image.
	if chosen.ParamBytes >= rep.Results[0].ParamBytes {
		t.Errorf("chosen %dB should be smaller than uncompressed %dB",
			chosen.ParamBytes, rep.Results[0].ParamBytes)
	}
}

func TestParetoFront(t *testing.T) {
	results := []Result{
		{MACs: 100, Accuracy: 0.9},
		{MACs: 50, Accuracy: 0.8},
		{MACs: 60, Accuracy: 0.7},   // dominated by 1
		{MACs: 120, Accuracy: 0.85}, // dominated by 0
		{MACs: 20, Accuracy: 0.5},
	}
	front := ParetoFront(results, []int{0, 1, 2, 3, 4})
	want := []int{4, 1, 0}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
}

func TestByTechnique(t *testing.T) {
	results := []Result{
		{Config: Config{Technique: TechNone}},
		{Config: Config{Technique: TechPrune}},
		{Config: Config{Technique: TechSeparate}},
		{Config: Config{Technique: TechBoth}},
	}
	pruneOnly := ByTechnique(results, TechPrune)
	if len(pruneOnly) != 2 { // none + prune
		t.Errorf("prune-only = %v", pruneOnly)
	}
	all := ByTechnique(results, TechPrune, TechSeparate, TechBoth)
	if len(all) != 4 {
		t.Errorf("all = %v", all)
	}
}

func TestConfigNames(t *testing.T) {
	if (Config{Technique: TechNone}).Name() != "uncompressed" {
		t.Error("none name")
	}
	if (Config{Technique: TechPrune, PruneLevel: 0.9}).Name() != "prune-0.90" {
		t.Error("prune name")
	}
}

func TestRunPerLayerRefinement(t *testing.T) {
	o := smallOptions("har")
	rep, refined, err := RunPerLayer(o)
	if err != nil {
		t.Fatal(err)
	}
	if refined == nil {
		t.Fatal("no refined result")
	}
	grid := rep.ChosenResult()
	// The refinement may only keep or improve the grid's IMpJ, and must
	// remain feasible.
	if refined.IMpJ < grid.IMpJ-1e-12 {
		t.Errorf("refined IMpJ %v worse than grid %v", refined.IMpJ, grid.IMpJ)
	}
	if !refined.Feasible {
		t.Error("refined result must be feasible")
	}
	if refined.Model == nil {
		t.Error("refined result must carry a deployable model")
	}
	t.Logf("grid %s IMpJ %.3f -> refined IMpJ %.3f after %d moves %v",
		grid.Config.Name(), grid.IMpJ, refined.IMpJ, len(refined.Moves), refined.Moves)
}

func TestMovesForLayerRespectsGuards(t *testing.T) {
	n := dnn.HARNet(1)
	// Classifier layer (last dense) must have no moves.
	if mv := movesForLayer(n, lastDenseIndex(n)); mv != nil {
		t.Errorf("classifier layer should have no moves, got %v", mv)
	}
	// The big dense layer gets both prune and separate.
	if mv := movesForLayer(n, 3); len(mv) != 2 {
		t.Errorf("dense layer moves = %v", mv)
	}
	// Conv gets prune and (while dense) separate.
	if mv := movesForLayer(n, 0); len(mv) != 2 {
		t.Errorf("conv moves = %v", mv)
	}
	// After pruning, the conv loses its separation move.
	n.Layers[0].(*dnn.Conv).Prune(0.05)
	if mv := movesForLayer(n, 0); len(mv) != 1 || mv[0].Technique != TechPrune {
		t.Errorf("pruned conv moves = %v", mv)
	}
}
