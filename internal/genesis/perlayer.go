package genesis

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/dnn"
)

// This file implements the per-layer refinement of GENESIS's search.
// The grid sweep in genesis.go applies one global (prune level, rank
// fraction) pair; the paper's GENESIS "sweeps parameters for both
// separation and pruning across each layer of the network". RunPerLayer
// starts from the grid's best configuration and greedily applies the
// single per-layer move (prune one layer harder, or separate one layer)
// that most improves IMpJ, re-fine-tuning after each accepted move, until
// no move improves.

// Move is one per-layer compression action considered by the greedy pass.
type Move struct {
	Layer     int
	Technique Technique
	Level     float64 // prune level or rank fraction
}

func (m Move) String() string {
	return fmt.Sprintf("%s@layer%d(%.2f)", m.Technique, m.Layer, m.Level)
}

// PerLayerResult extends a Result with the move sequence that produced it.
type PerLayerResult struct {
	Result
	Moves []Move
}

// RunPerLayer runs the grid sweep, then greedily refines the chosen
// configuration with per-layer moves. It returns the grid report and the
// refined result (which equals the grid's choice when no move helps).
func RunPerLayer(opts Options) (*Report, *PerLayerResult, error) {
	rep, err := Run(opts)
	if err != nil {
		return nil, nil, err
	}
	chosen := rep.ChosenResult()
	if chosen == nil {
		return rep, nil, fmt.Errorf("genesis: no feasible grid configuration to refine")
	}

	ds, err := dnn.DatasetFor(opts.Network, opts.Seed, opts.TrainSamples, opts.TestSamples)
	if err != nil {
		return nil, nil, err
	}
	base, err := dnn.NetworkFor(opts.Network, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = opts.Epochs
	cfg.Seed = opts.Seed
	cfg.MaxSamplesPerEpoch = opts.MaxSamplesPerEpoch
	dnn.Train(base, ds, cfg)

	// Reconstruct the chosen starting point.
	current := base.Clone()
	if err := Apply(current, chosen.Config); err != nil {
		return nil, nil, err
	}
	fineTune(current, ds, opts)
	best := scoreNetwork(current, ds, opts)
	best.Config = chosen.Config
	refined := &PerLayerResult{Result: best}

	for round := 0; round < maxGreedyRounds; round++ {
		move, cand := bestMove(current, ds, opts, best.IMpJ)
		if cand == nil {
			break
		}
		current = cand
		best = scoreNetwork(current, ds, opts)
		best.Config = chosen.Config
		refined.Result = best
		refined.Moves = append(refined.Moves, move)
	}
	return rep, refined, nil
}

// maxGreedyRounds bounds the refinement (each round fine-tunes and
// evaluates every candidate move).
const maxGreedyRounds = 3

// perLayerPruneStep is how much additional drop fraction a prune move
// applies to one layer.
const perLayerPruneStep = 0.5

// perLayerRankFrac is the rank fraction a separation move applies.
const perLayerRankFrac = 0.5

// bestMove tries every legal per-layer move and returns the one with the
// highest feasible IMpJ above the current best, or nil.
func bestMove(current *dnn.Network, ds *dataset.Dataset, opts Options, baseIMpJ float64) (Move, *dnn.Network) {
	var bestM Move
	var bestN *dnn.Network
	bestScore := baseIMpJ
	for li := 0; li < len(current.Layers); li++ {
		for _, mv := range movesForLayer(current, li) {
			cand := current.Clone()
			if err := applyMove(cand, mv); err != nil {
				continue
			}
			if _, err := cand.Validate(); err != nil {
				continue
			}
			fineTune(cand, ds, opts)
			res := scoreNetwork(cand, ds, opts)
			if res.Feasible && res.IMpJ > bestScore {
				bestScore = res.IMpJ
				bestM = mv
				bestN = cand
			}
		}
	}
	return bestM, bestN
}

// movesForLayer enumerates the legal moves on one layer.
func movesForLayer(n *dnn.Network, li int) []Move {
	switch l := n.Layers[li].(type) {
	case *dnn.Conv:
		if l.W.Len() < 100 {
			return nil
		}
		moves := []Move{{Layer: li, Technique: TechPrune, Level: perLayerPruneStep}}
		if l.Mask == nil { // separation only before pruning
			moves = append(moves, Move{Layer: li, Technique: TechSeparate, Level: perLayerRankFrac})
		}
		return moves
	case *dnn.Dense:
		if l.Out*l.In < 1024 || li == lastDenseIndex(n) {
			return nil
		}
		return []Move{
			{Layer: li, Technique: TechPrune, Level: perLayerPruneStep},
			{Layer: li, Technique: TechSeparate, Level: perLayerRankFrac},
		}
	case *dnn.SparseDense:
		return nil // already sparse; further moves not supported
	}
	return nil
}

func lastDenseIndex(n *dnn.Network) int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if n.Layers[i].Kind() == "dense" {
			return i
		}
	}
	return -1
}

func applyMove(n *dnn.Network, mv Move) error {
	switch l := n.Layers[mv.Layer].(type) {
	case *dnn.Conv:
		if mv.Technique == TechPrune {
			_, err := compress.PruneConv(n, mv.Layer, mv.Level)
			return err
		}
		if l.C == 1 {
			full := minInt(l.C*l.KH, l.F*l.KW)
			return compress.SeparateConvSpatial(n, mv.Layer, scaleRank(full, mv.Level))
		}
		return compress.SeparateConvTucker2(n, mv.Layer,
			scaleRank(l.F, mv.Level), scaleRank(l.C, mv.Level))
	case *dnn.Dense:
		if mv.Technique == TechPrune {
			_, err := compress.SparsifyDense(n, mv.Layer, mv.Level)
			return err
		}
		full := minInt(l.Out, l.In)
		return compress.SeparateDense(n, mv.Layer, scaleRank(full, mv.Level))
	}
	return fmt.Errorf("genesis: no move for layer %d", mv.Layer)
}

// fineTune runs the sweep's standard fine-tuning pass.
func fineTune(n *dnn.Network, ds *dataset.Dataset, opts Options) {
	if opts.FineTuneEpochs <= 0 {
		return
	}
	ft := dnn.DefaultTrainConfig()
	ft.Epochs = opts.FineTuneEpochs
	ft.LR = 0.001
	ft.Seed = opts.Seed + 77
	ft.MaxSamplesPerEpoch = opts.MaxSamplesPerEpoch
	dnn.Train(n, ds, ft)
}

// scoreNetwork quantizes, measures, and scores a network exactly like the
// grid sweep does.
func scoreNetwork(n *dnn.Network, ds *dataset.Dataset, opts Options) Result {
	return evaluateNetwork(n, ds, opts, 0)
}
