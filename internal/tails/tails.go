// Package tails implements TAILS (§7), the hardware-accelerated variant of
// SONIC: the same loop-continuation runtime, with convolutions and dense
// fully-connected layers executed on the LEA vector accelerator via DMA.
//
// TAILS inherits LEA's real limitations, all of which the device model
// enforces or charges for:
//
//   - LEA only reads the 4 KB SRAM bank, so every operand is DMA'd in and
//     every result DMA'd out;
//   - LEA's FIR convolution saturates each output to Q15 at its own fixed
//     scale, so activations are pre-shifted in software before invocation
//     (LEA has no left shift), which is TAILS's dominant control overhead
//     (§9.2) and makes conv results approximate rather than bit-identical
//     to the software runtimes;
//   - dense matrix-vector products use LEA's wide MAC accumulator and are
//     bit-identical to the host reference;
//   - sparse fully-connected layers run in software exactly like SONIC;
//   - a one-time calibration (§7.1) halves the DMA/LEA tile size after
//     each power failure until a whole tile completes within the energy
//     buffer, and persists the result in FRAM.
package tails

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/kern"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/sonic"
	"repro/internal/tape"
)

// TAILS is the accelerated runtime. The Software* flags emulate the
// corresponding hardware in software — the ablation of §9.1 ("LEA
// consistently improved performance by 1.4×, DMA by 14%").
type TAILS struct {
	SoftwareLEA bool // compute vector ops with CPU MACs instead of LEA
	SoftwareDMA bool // move blocks with CPU load/store instead of DMA

	// Tape selects the pre-decoded op-tape executors (see tapeLayerFn).
	// Bit-exact with the interpreted walk; it only changes host
	// simulation speed.
	Tape bool
}

// Name identifies the runtime.
func (t TAILS) Name() string {
	switch {
	case t.SoftwareLEA && t.SoftwareDMA:
		return "tails-sw"
	case t.SoftwareLEA:
		return "tails-noLEA"
	case t.SoftwareDMA:
		return "tails-noDMA"
	}
	return "tails"
}

// Calibration slots in the image's persistent Cal region.
const (
	calTile  = 0 // calibrated tile size in words (0 = uncalibrated)
	calTrial = 1 // candidate being trialled (0 = none in progress)
)

// Control-block slots used by TAILS's dense kernel (SONIC's cursor and
// sparse undo-log state occupy slots 0-2).
const (
	slotDensePartialA = 4
	slotDensePartialB = 5
)

// Tile bounds: the hardware maximum is set by the scratch layout below —
// the accumulate leg stages a tile of FIR outputs and a tile of partials in
// the out-scratch simultaneously, so a tile is at most half of it.
// Calibration halves down to minTile (a minTile trial costs well under any
// modelled buffer).
const (
	hwMaxTile = outWords / 2
	minTile   = 8
)

// scratch is the SRAM working set: an input window, an output/accumulate
// area, and a coefficient strip. Together they fill the 4 KB LEA bank.
type scratch struct {
	in   *mem.Region // 1024 words
	out  *mem.Region // 896 words
	coef *mem.Region // 128 words
}

const (
	inWords   = 1024
	outWords  = 896
	coefWords = 128
)

// Infer runs one inference, calibrating the tile size first if this image
// has never run on this device.
func (t TAILS) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	return t.ResumeInfer(img, nil)
}

// ResumeInfer implements core.Resumer: Infer minus LoadInput, with an
// optional pre-attempt hook for restoring a forked prefix. The SRAM
// scratch allocations precede the restore, which clears their contents the
// same way the modelled reboot does.
func (t TAILS) ResumeInfer(img *core.Image, atReboot func() error) ([]fixed.Q15, error) {
	dev := img.Dev
	sc := &scratch{}
	var err error
	if sc.in, err = dev.SRAM.Alloc("lea.in", inWords, 2); err != nil {
		return nil, fmt.Errorf("tails: %w", err)
	}
	defer dev.SRAM.Release(sc.in)
	if sc.out, err = dev.SRAM.Alloc("lea.out", outWords, 2); err != nil {
		return nil, fmt.Errorf("tails: %w", err)
	}
	defer dev.SRAM.Release(sc.out)
	if sc.coef, err = dev.SRAM.Alloc("lea.coef", coefWords, 2); err != nil {
		return nil, fmt.Errorf("tails: %w", err)
	}
	defer dev.SRAM.Release(sc.coef)

	s := &sonic.Exec{Img: img, Dev: dev}
	dev.Emit(mcu.TraceRunBegin, t.Name(), 0)
	if atReboot != nil {
		if err := atReboot(); err != nil {
			return nil, err
		}
	}
	layerFn := t.layerFn(sc)
	if t.Tape {
		layerFn = t.tapeLayerFn(sc, tape.Get(img.Model))
	}
	if err := dev.Run(func() {
		s.ResetVolatile()
		t.calibrate(s, sc)
		s.Run(layerFn)
	}); err != nil {
		return nil, err
	}
	dev.FlushTrace()
	return img.ReadOutput(sonic.FinalParity(img.Model)), nil
}

// CalibratedTile reports the persisted tile size (0 before first run).
func CalibratedTile(img *core.Image) int { return int(img.Cal.Get(calTile)) }

// calibrate runs the one-time recursive tile calibration (§7.1): trial a
// DMA-in / FIR / DMA-out round trip at the candidate size; a power failure
// during the trial re-enters calibrate, which halves the candidate.
func (t TAILS) calibrate(s *sonic.Exec, sc *scratch) {
	dev := s.Dev
	img := s.Img
	dev.SetSection("other", mcu.PhaseControl)
	if dev.Load(img.Cal, calTile) != 0 {
		return // already calibrated on this device
	}
	// The trial stages through the activation buffer, so the starting
	// candidate is bounded by both the LEA bank and the image's buffers.
	maxCand := hwMaxTile
	if img.MaxActWords < maxCand {
		maxCand = img.MaxActWords
	}
	cand := int(dev.Load(img.Cal, calTrial))
	if cand == 0 {
		cand = maxCand
	} else {
		cand /= 2 // previous trial died: halve
		if cand < minTile {
			cand = minTile
		}
	}
	dev.Emit(mcu.TraceCalibrate, "trial", int64(cand))
	dev.Store(img.Cal, calTrial, int64(cand))
	dev.Progress()

	// Trial: run one worst-case accelerated chunk — coefficient DMA, input
	// DMA, software pre-shift, FIR, partial-accumulate DMA and vector add,
	// and result DMA — so the calibrated tile is valid for the most
	// expensive unit inference will execute. Stages through activation
	// buffer A; inference has not started, and every runtime initializes
	// its working buffers before reading them.
	const taps = 16 // conservative upper bound on kernel width
	outN := cand
	if outN+taps-1 > img.MaxActWords {
		outN = img.MaxActWords - taps + 1
	}
	if outN < 1 {
		outN = 1
	}
	dest := img.AccA
	if dest == nil || dest.Len() < 2*outN {
		dest = img.ActB
	}
	t.blockIn(dev, sc.coef, 0, img.ActA, 0, taps)
	t.blockIn(dev, sc.in, 0, img.ActA, 0, outN+taps-1)
	preShiftRow(dev, sc.in, 0, outN+taps-1, 1)
	t.fir(dev, sc.out, 0, sc.in, 0, sc.coef, 0, taps, outN)
	// Stage the partial-accumulate operand from ActA rather than dest: the
	// DMA cost is identical, but the trial must never read words it later
	// writes — that read-modify-write of dest (however dead its data) is
	// exactly what the WAR consistency checker flags.
	t.blockIn(dev, sc.out, outN, img.ActA, 0, outN)
	t.addv(dev, sc.out, 0, sc.out, 0, sc.out, outN, outN)
	t.blockOut(dev, dest, 0, sc.out, 0, outN)

	dev.Emit(mcu.TraceCalibrate, "calibrated", int64(cand))
	dev.Store(img.Cal, calTile, int64(cand))
	dev.Store(img.Cal, calTrial, 0)
	dev.Progress()
}

// layerFn dispatches layers: LEA paths for conv and dense, SONIC's software
// kernels for everything else.
func (t TAILS) layerFn(sc *scratch) sonic.LayerFn {
	return func(s *sonic.Exec, li int, parity bool, start sonic.Cursor) {
		l := &s.Img.Layers[li]
		src, dst := sonic.ActBufs(s.Img, parity)
		name := core.LayerName(s.Img.Model, li)
		switch {
		case l.Q.Kind == dnn.QConv && l.NZ == nil:
			t.convLayer(s, sc, l, name, src, dst, start)
		case l.Q.Kind == dnn.QDense:
			t.denseLayer(s, sc, l, name, src, dst, start)
		default:
			// Sparse convolutions and sparse fully-connected layers run in
			// software exactly like SONIC. (The paper pads sparse filters
			// to run them on LEA and notes the wasted work "sometimes
			// hurts performance"; on this device model it always does, so
			// our TAILS keeps LEA for the dense and separated layers it
			// actually accelerates.)
			s.RunLayerSoftware(li, parity, start)
		}
	}
}

// tile returns the calibrated tile size.
func tile(s *sonic.Exec) int {
	v := int(s.Dev.Load(s.Img.Cal, calTile))
	if v <= 0 {
		v = minTile
	}
	return v
}

// blockIn moves n words into SRAM: DMA, or CPU copy under SoftwareDMA.
func (t TAILS) blockIn(dev *mcu.Device, dst *mem.Region, dstOff int, src *mem.Region, srcOff, n int) {
	if t.SoftwareDMA {
		if n <= 0 {
			return
		}
		// Bulk CPU copy: loads then stores, same op multiset as the
		// interleaved scalar loop. The funded store prefix still leaves
		// the partial destination loop-ordered buffering tolerates.
		dev.LoadRange(src, srcOff, n)
		dev.StoreRange(dst, dstOff, src.ROWords()[srcOff:srcOff+n])
		return
	}
	dev.DMA(dst, dstOff, src, srcOff, n)
}

// blockOut moves n words out of SRAM.
func (t TAILS) blockOut(dev *mcu.Device, dst *mem.Region, dstOff int, src *mem.Region, srcOff, n int) {
	t.blockIn(dev, dst, dstOff, src, srcOff, n)
}

// fir runs a 1-D convolution on LEA, or in software under SoftwareLEA.
func (t TAILS) fir(dev *mcu.Device, out *mem.Region, outOff int, in *mem.Region, inOff int,
	coef *mem.Region, coefOff, coefN, outN int) {
	if !t.SoftwareLEA {
		dev.LEAFIR(out, outOff, in, inOff, coef, coefOff, coefN, outN)
		return
	}
	// Bulk charge for the whole software FIR; all operands live in SRAM,
	// lost at brown-out, so the grouped charge order is unobservable.
	total := outN * coefN
	dev.Ops(mcu.OpBranch, total)
	dev.Ops(mcu.OpFixedMul, total)
	dev.Ops(mcu.OpFixedAdd, total)
	dev.Ops(mcu.OpLoadSRAM, 2*total)
	dev.Ops(mcu.OpStoreSRAM, outN)
	if !out.Observed() {
		kern.FIR(out.Words(), in.ROWords(), coef.ROWords(), outOff, inOff, coefOff, coefN, outN)
		return
	}
	for i := 0; i < outN; i++ {
		var acc fixed.Acc
		for k := 0; k < coefN; k++ {
			acc = acc.MAC(fixed.Q15(coef.Get(coefOff+k)), fixed.Q15(in.Get(inOff+i+k)))
		}
		out.Put(outOff+i, int64(acc.Sat()))
	}
}

// macv computes a dot product with a wide accumulator on LEA or in software.
func (t TAILS) macv(dev *mcu.Device, x *mem.Region, xOff int, y *mem.Region, yOff, n int) fixed.Acc {
	if !t.SoftwareLEA {
		return dev.LEAMacV(x, xOff, y, yOff, n)
	}
	dev.Ops(mcu.OpBranch, n)
	dev.Ops(mcu.OpFixedMul, n)
	dev.Ops(mcu.OpFixedAdd, n)
	dev.Ops(mcu.OpLoadSRAM, 2*n)
	return fixed.Acc(kern.DotQ15(x.ROWords(), y.ROWords(), xOff, yOff, n))
}

// addv saturating-adds n Q15 elements (dst = a + b) on LEA or in software.
func (t TAILS) addv(dev *mcu.Device, dst *mem.Region, dstOff int, a *mem.Region, aOff int,
	b *mem.Region, bOff, n int) {
	if !t.SoftwareLEA {
		dev.LEAAddV(dst, dstOff, a, aOff, b, bOff, n)
		return
	}
	dev.Ops(mcu.OpFixedAdd, n)
	dev.Ops(mcu.OpLoadSRAM, 2*n)
	dev.Ops(mcu.OpStoreSRAM, n)
	if !dst.Observed() {
		kern.AddSatV(dst.Words(), a.ROWords(), b.ROWords(), dstOff, aOff, bOff, n)
		return
	}
	for i := 0; i < n; i++ {
		s := fixed.Add(fixed.Q15(a.Get(aOff+i)), fixed.Q15(b.Get(bOff+i)))
		dst.Put(dstOff+i, int64(s))
	}
}

// preShiftRow arithmetic-right-shifts a row of SRAM words in place — the
// software rescale LEA cannot do, charged per element (§9.2: "these shifts
// account for most of the control time").
func preShiftRow(dev *mcu.Device, r *mem.Region, off, n, sh int) {
	if sh <= 0 {
		return
	}
	dev.Ops(mcu.OpLoadSRAM, n)
	dev.Ops(mcu.OpAdd, n) // shift sequence
	dev.Ops(mcu.OpStoreSRAM, n)
	if !r.Observed() {
		kern.ShiftRight(r.Words(), off, n, sh)
		return
	}
	for i := 0; i < n; i++ {
		r.Put(off+i, r.Get(off+i)>>uint(sh))
	}
}

// shiftBias rescales a Q15 bias (at scale in+w) into the layer's final
// output scale, charging software shift ops.
func shiftBias(dev *mcu.Device, b fixed.Q15, shift int) fixed.Q15 {
	dev.Op(mcu.OpAdd)
	return shiftBiasValue(b, shift)
}

// shiftBiasValue is shiftBias's value computation, shared with the fused
// finalize span (which charges the shift through its block).
func shiftBiasValue(b fixed.Q15, shift int) fixed.Q15 {
	if shift >= 0 {
		return b >> uint(shift)
	}
	// Left shift with saturation (done in software; LEA cannot).
	v := int64(b) << uint(-shift)
	if v > int64(fixed.One) {
		return fixed.One
	}
	if v < int64(fixed.MinusOne) {
		return fixed.MinusOne
	}
	return fixed.Q15(v)
}

// denseLayer computes a dense fully-connected layer with LEA vector MACs.
// Loop continuation runs at (output, chunk) granularity: each iteration
// DMAs one calibrated chunk of the weight row and input into SRAM, MACs it
// with the wide accumulator, and folds it into a double-buffered partial in
// the control block (parity = chunk index), so even rows much longer than
// the energy buffer make progress. Because the accumulator is wide and
// chunks are summed in order, results are bit-identical to the host
// reference.
func (t TAILS) denseLayer(s *sonic.Exec, sc *scratch, l *core.LayerImage, name string,
	src, dst *mem.Region, start sonic.Cursor) {
	q := l.Q
	dev := s.Dev
	img := s.Img
	chunk := tile(s)
	if chunk > hwMaxTile {
		chunk = hwMaxTile
	}
	chunks := (q.In + chunk - 1) / chunk

	// Double-buffered wide partial for the in-flight output row.
	partialSlot := func(ck int) int { return slotDensePartialA + (ck & 1) }

	for o := start.Pos; o < q.Out; o++ {
		ckStart := 0
		if o == start.Pos {
			ckStart = start.I
		}
		for ck := ckStart; ck < chunks; ck++ {
			c0 := ck * chunk
			n := chunk
			if c0+n > q.In {
				n = q.In - c0
			}
			dev.SetSection(name, mcu.PhaseControl)
			t.blockIn(dev, sc.in, 0, l.W, o*q.In+c0, n)
			t.blockIn(dev, sc.out, 0, src, c0, n)
			var partial fixed.Acc
			if ck > 0 {
				partial = fixed.Acc(dev.Load(img.Ctl, partialSlot(ck-1)))
			}
			dev.SetSection(name, mcu.PhaseKernel)
			partial += t.macv(dev, sc.in, 0, sc.out, 0, n)
			dev.SetSection(name, mcu.PhaseControl)
			dev.Store(img.Ctl, partialSlot(ck), int64(partial))
			s.Checkpoint(sonic.Cursor{Layer: start.Layer, Pos: o, I: ck + 1})
		}
		// Finalize output o from the last chunk's partial. Idempotent:
		// re-execution re-reads the same partial and rewrites the same
		// value.
		dev.SetSection(name, mcu.PhaseControl)
		acc := fixed.Acc(dev.Load(img.Ctl, partialSlot(chunks-1)))
		bq := fixed.Q15(dev.Load(l.B, o))
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, o, int64(acc.AddQ(bq).SatShiftSigned(q.Shift)))
		s.Checkpoint(sonic.Cursor{Layer: start.Layer, Pos: o + 1})
	}
}

// convLayer computes a 2-D convolution as iterated 1-D FIR convolutions
// (§7.2), with loop-ordered buffering at row granularity for idempotence.
// Generations are (channel, kernel-row) pairs; each inner iteration
// convolves one input row with one weight row and accumulates into the
// opposite partial buffer. Activations are pre-shifted in software so that
// LEA's fixed Q15 output lands in the layer's final scale.
func (t TAILS) convLayer(s *sonic.Exec, sc *scratch, l *core.LayerImage, name string,
	src, dst *mem.Region, start sonic.Cursor) {
	q := l.Q
	dev := s.Dev
	h, w := q.InShape[1], q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	gens := q.C * q.KH // generations: one per (channel, kernel row)
	rows := q.F * oh   // inner iterations per generation
	preShift := q.Shift
	if preShift < 0 {
		preShift = 0
	}
	postShift := -q.Shift
	if postShift < 0 {
		postShift = 0
	}
	ct := tile(s)
	if ct > ow {
		ct = ow
	}

	if start.Pass == 0 {
		chunks := (ow + ct - 1) / ct
		for pos := start.Pos; pos < gens; pos++ {
			dev.SetSection(name, mcu.PhaseControl)
			ci, ky := pos/q.KH, pos%q.KH
			dest, inter := sonic.AccBufs(s.Img, pos)
			iStart := 0
			if pos == start.Pos {
				iStart = start.I
			}
			// One iteration processes one calibrated chunk of one output
			// row, so the progress unit is exactly what calibration sized
			// to the energy buffer.
			for i := iStart; i < rows*chunks; i++ {
				row, ck := i/chunks, i%chunks
				f, oy := row/oh, row%oh
				c0 := ck * ct
				n := ct
				if c0+n > ow {
					n = ow - c0
				}
				dev.SetSection(name, mcu.PhaseControl)
				// Weight row for (f, ci, ky): KW taps. Pruned filters are
				// used densely (zero-padded), as §7.2 describes.
				t.blockIn(dev, sc.coef, 0, l.W, ((f*q.C+ci)*q.KH+ky)*q.KW, q.KW)
				rowBase := f*oh*ow + oy*ow
				// Input segment covering n outputs: n+KW-1 samples.
				t.blockIn(dev, sc.in, 0, src, (ci*h+oy+ky)*w+c0, n+q.KW-1)
				preShiftRow(dev, sc.in, 0, n+q.KW-1, preShift)
				dev.SetSection(name, mcu.PhaseKernel)
				t.fir(dev, sc.out, 0, sc.in, 0, sc.coef, 0, q.KW, n)
				dev.SetSection(name, mcu.PhaseControl)
				if pos > 0 {
					t.blockIn(dev, sc.out, n, inter, rowBase+c0, n)
					dev.SetSection(name, mcu.PhaseKernel)
					t.addv(dev, sc.out, 0, sc.out, 0, sc.out, n, n)
					dev.SetSection(name, mcu.PhaseControl)
				}
				t.blockOut(dev, dest, rowBase+c0, sc.out, 0, n)
				s.Checkpoint(sonic.Cursor{Layer: start.Layer, Pos: pos, I: i + 1})
			}
			s.Transition(name, sonic.Cursor{Layer: start.Layer, Pos: pos + 1})
		}
		start = sonic.Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(name, start)
	}

	// Finalize: post-shift (if the output scale is finer than LEA's) and
	// bias addition, elementwise in software.
	final, _ := sonic.AccBufs(s.Img, gens-1)
	s.MapLayer(name, start, q.F*oh*ow, func(i int) {
		f := i / (oh * ow)
		v := fixed.Q15(dev.Load(final, i))
		if postShift > 0 {
			dev.Op(mcu.OpAdd)
			wide := int64(v) << uint(postShift)
			if wide > int64(fixed.One) {
				v = fixed.One
			} else if wide < int64(fixed.MinusOne) {
				v = fixed.MinusOne
			} else {
				v = fixed.Q15(wide)
			}
		}
		bq := shiftBias(dev, fixed.Q15(dev.Load(l.B, f)), q.Shift)
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, i, int64(fixed.Add(v, bq)))
	})
}
