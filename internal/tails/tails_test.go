package tails

import (
	"testing"
	"testing/quick"

	"math/rand/v2"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/sonic"
)

// buildModel trains a small HAR network with all layer kinds.
func buildModel(t testing.TB) (*dnn.QuantModel, []dataset.Example) {
	t.Helper()
	ds := dataset.HAR(3, 240, 12)
	n := dnn.HARNet(3)
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 2
	dnn.Train(n, ds, cfg)
	n.Layers[0].(*dnn.Conv).Prune(0.03)
	n.Layers[3] = dnn.NewSparseDense(n.Layers[3].(*dnn.Dense), 0.02)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		t.Fatal(err)
	}
	return qm, ds.Test
}

// denseOnlyModel has no conv layers, so TAILS must be bit-identical to the
// host reference (wide MAC accumulators end to end).
func denseOnlyModel(t testing.TB) (*dnn.QuantModel, []dataset.Example) {
	t.Helper()
	ds := dataset.HAR(9, 120, 12)
	rng := rand.New(rand.NewPCG(9, 0))
	n := dnn.NewNetwork("dense-only", dnn.Shape{3, 1, 32})
	n.Add(dnn.NewFlatten(), dnn.NewDense(rng, 32, 96), dnn.NewReLU(), dnn.NewDense(rng, 6, 32))
	dnn.Train(n, ds, dnn.TrainConfig{Epochs: 2, LR: 0.004, Momentum: 0.9, Decay: 0.8, Seed: 1})
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	return qm, ds.Test
}

func assertEqualQ(t *testing.T, got, want []fixed.Q15, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: logit %d: got %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

func deploy(t testing.TB, qm *dnn.QuantModel, p energy.System) (*mcu.Device, *core.Image) {
	t.Helper()
	dev := mcu.New(p)
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	return dev, img
}

func TestCalibrationPersistsAndHalves(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)

	// Continuous power: first trial succeeds at the maximum.
	_, img := deploy(t, qm, energy.Continuous{})
	if _, err := (TAILS{}).Infer(img, qin); err != nil {
		t.Fatal(err)
	}
	full := CalibratedTile(img)
	if full <= 0 {
		t.Fatal("calibration did not persist")
	}

	// Tiny energy buffer: calibration must halve until a trial fits.
	dev2, img2 := deploy(t, qm, energy.NewFailAfterOps(700, 700))
	if _, err := (TAILS{}).Infer(img2, qin); err != nil {
		t.Fatal(err)
	}
	small := CalibratedTile(img2)
	if small >= full {
		t.Errorf("constrained tile %d should be smaller than unconstrained %d", small, full)
	}
	if small < minTile {
		t.Errorf("tile %d below minimum", small)
	}
	if dev2.Stats().Reboots == 0 {
		t.Error("expected calibration reboots")
	}

	// Second inference on the same image must not recalibrate.
	before := img2.Cal.Get(calTile)
	if _, err := (TAILS{}).Infer(img2, qin); err != nil {
		t.Fatal(err)
	}
	if img2.Cal.Get(calTile) != before {
		t.Error("calibration should be one-time")
	}
}

func TestTAILSDenseBitExactVsHost(t *testing.T) {
	qm, ex := denseOnlyModel(t)
	_, img := deploy(t, qm, energy.Continuous{})
	for i := 0; i < 6; i++ {
		qin := qm.QuantizeInput(ex[i].X)
		got, err := (TAILS{}).Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, qm.Forward(qin), "dense-only")
	}
}

// The central property: TAILS under any power schedule produces exactly the
// TAILS continuous-power result (its conv arithmetic legitimately differs
// from the software runtimes, but must be self-consistent).
func TestTAILSIntermittentEqualsContinuous(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	_, imgC := deploy(t, qm, energy.Continuous{})
	want, err := (TAILS{}).Infer(imgC, qin)
	if err != nil {
		t.Fatal(err)
	}
	for _, period := range []int{401, 997, 2003, 9001} {
		dev, img := deploy(t, qm, energy.NewFailAfterOps(period, period))
		got, err := (TAILS{}).Infer(img, qin)
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		// Note: the calibrated tile differs across power systems, which can
		// only change *chunking*, not values: FIR chunk boundaries produce
		// the same Q15 outputs because each output is an independent dot
		// product. Assert exact equality.
		assertEqualQ(t, got, want, "intermittent")
		if dev.Stats().Reboots == 0 {
			t.Errorf("period %d: expected reboots", period)
		}
	}
}

// Property over random failure periods.
func TestTAILSEquivalenceProperty(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[1].X)
	_, imgC := deploy(t, qm, energy.Continuous{})
	want, err := (TAILS{}).Infer(imgC, qin)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint32) bool {
		period := 400 + int(seed%8000)
		_, img := deploy(t, qm, energy.NewFailAfterOps(period, period))
		got, err := (TAILS{}).Infer(img, qin)
		if err != nil {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTAILSAccuracyCloseToSoftware(t *testing.T) {
	// TAILS's pre-shifted Q15 conv arithmetic may differ in low bits; its
	// classification decisions must still overwhelmingly agree with SONIC.
	qm, ex := buildModel(t)
	_, imgT := deploy(t, qm, energy.Continuous{})
	_, imgS := deploy(t, qm, energy.Continuous{})
	agree := 0
	for _, e := range ex {
		qin := qm.QuantizeInput(e.X)
		gt, err := (TAILS{}).Infer(imgT, qin)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := (sonic.SONIC{}).Infer(imgS, qin)
		if err != nil {
			t.Fatal(err)
		}
		if core.Argmax(gt) == core.Argmax(gs) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(ex)); frac < 0.9 {
		t.Errorf("TAILS/SONIC argmax agreement = %v, want >= 0.9", frac)
	}
}

func TestTAILSFasterThanSONIC(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	run := func(rt core.Runtime) float64 {
		dev, img := deploy(t, qm, energy.Continuous{})
		if _, err := rt.Infer(img, qin); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().EnergyNJ()
	}
	base := run(baseline.Base{})
	son := run(sonic.SONIC{})
	tls := run(TAILS{})
	noLEA := run(TAILS{SoftwareLEA: true})
	noDMA := run(TAILS{SoftwareDMA: true})
	if tls >= son {
		t.Errorf("TAILS (%v) must beat SONIC (%v)", tls, son)
	}
	if tls >= noLEA {
		t.Errorf("LEA must help: tails %v vs software-LEA %v", tls, noLEA)
	}
	if tls >= noDMA {
		t.Errorf("DMA must help: tails %v vs software-DMA %v", tls, noDMA)
	}
	t.Logf("energy: base=%.0fuJ sonic=%.0fuJ tails=%.0fuJ noLEA=%.0fuJ noDMA=%.0fuJ | tails/base=%.2f LEA-gain=%.2fx DMA-gain=%.2fx",
		base/1e3, son/1e3, tls/1e3, noLEA/1e3, noDMA/1e3, tls/base, noLEA/tls, noDMA/tls)
}

func TestTAILSCompletesOnAllCapacitors(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	_, imgC := deploy(t, qm, energy.Continuous{})
	want, err := (TAILS{}).Infer(imgC, qin)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []energy.Capacitor{energy.Cap100uF, energy.Cap1mF, energy.Cap50mF} {
		_, img := deploy(t, qm, energy.NewIntermittent(cap, energy.ConstantHarvester{Watts: energy.DefaultRFWatts}))
		got, err := (TAILS{}).Infer(img, qin)
		if err != nil {
			t.Fatalf("cap %.0fuF: %v", cap.C*1e6, err)
		}
		// Different calibrated tiles must not change values.
		assertEqualQ(t, got, want, "capacitor")
	}
}

func TestNames(t *testing.T) {
	if (TAILS{}).Name() != "tails" ||
		(TAILS{SoftwareLEA: true}).Name() != "tails-noLEA" ||
		(TAILS{SoftwareDMA: true}).Name() != "tails-noDMA" ||
		(TAILS{SoftwareLEA: true, SoftwareDMA: true}).Name() != "tails-sw" {
		t.Error("names wrong")
	}
}

func BenchmarkTAILSInferHAR(b *testing.B) {
	qm, ex := buildModel(b)
	_, img := deploy(b, qm, energy.Continuous{})
	qin := qm.QuantizeInput(ex[0].X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (TAILS{}).Infer(img, qin); err != nil {
			b.Fatal(err)
		}
	}
}

// A wide dense layer (In > the LEA tile) exercises the chunked MACV path
// and must stay bit-exact versus the host reference.
func TestTAILSWideDenseChunking(t *testing.T) {
	ds := dataset.Keyword(5, 200, 40)
	rng := rand.New(rand.NewPCG(5, 0))
	n := dnn.NewNetwork("wide", dnn.Shape{1, 32, 16})
	n.Add(dnn.NewFlatten(), dnn.NewDense(rng, 16, 512), dnn.NewReLU(), dnn.NewDense(rng, 12, 16))
	dnn.Train(n, ds, dnn.TrainConfig{Epochs: 1, LR: 0.004, Momentum: 0.9, Decay: 1, Seed: 1})
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	// Constrain power so calibration lands a small tile, forcing multiple
	// chunks per output row.
	dev, img := deploy(t, qm, energy.NewFailAfterOps(900, 900))
	qin := qm.QuantizeInput(ds.Test[0].X)
	got, err := (TAILS{}).Infer(img, qin)
	if err != nil {
		t.Fatal(err)
	}
	if tile := CalibratedTile(img); tile >= 512 {
		t.Fatalf("expected a constrained tile < 512, got %d", tile)
	}
	assertEqualQ(t, got, qm.Forward(qin), "wide-dense")
	if dev.Stats().OpCount[mcu.OpLEAInvoke] == 0 {
		t.Error("LEA should have been used")
	}
}

// A conv whose output scale is finer than its product scale (negative
// Shift) exercises TAILS's software post-shift path.
func TestTAILSNegativeShiftConv(t *testing.T) {
	qm, ex := buildModel(t)
	// Force a negative shift on the conv layer; TAILS must still be
	// self-consistent between continuous and intermittent execution.
	for i := range qm.Layers {
		if qm.Layers[i].Kind == dnn.QConv {
			qm.Layers[i].Shift--
			qm.Layers[i].OutScale--
			// Downstream layers see the same wire format; this test only
			// checks TAILS's internal consistency, not accuracy.
			break
		}
	}
	qin := qm.QuantizeInput(ex[0].X)
	_, imgC := deploy(t, qm, energy.Continuous{})
	want, err := (TAILS{}).Infer(imgC, qin)
	if err != nil {
		t.Fatal(err)
	}
	_, imgI := deploy(t, qm, energy.NewFailAfterOps(1501, 1501))
	got, err := (TAILS{}).Infer(imgI, qin)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualQ(t, got, want, "neg-shift")
}
