package tails_test

import (
	"testing"

	"repro/internal/intermittest"
	"repro/internal/tails"
)

// TestTAILSWARSilent sweeps every brown-out placement with the WAR shadow
// tracker armed, for the accelerated and software-DMA variants: tile
// calibration and the LEA block pipeline must never read NV words they
// later overwrite without protocol protection, and every schedule must
// reproduce that variant's continuous-power logits bit-exactly.
func TestTAILSWARSilent(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	for _, rt := range []tails.TAILS{{}, {SoftwareDMA: true}} {
		rep, err := intermittest.SweepRuntime(qm, x, rt,
			intermittest.Options{CheckWAR: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Errorf("%s not intermittence-safe: %s", rep.Runtime, rep.Summary())
		}
		if rep.GoldenWAR != 0 {
			t.Errorf("%s golden run has WAR hazards: %v", rep.Runtime, rep.GoldenWAR)
		}
	}
}
