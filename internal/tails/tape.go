package tails

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/mem"
	"repro/internal/sonic"
	"repro/internal/tape"
)

// tapeLayerFn is layerFn executing from the compiled program: the LEA
// convolution reads its row/generation decodes from tables, the dense
// kernel (already decode-free) runs unchanged, and every software
// fallback goes through sonic.TapeLayerFn — the same dispatch order as
// the interpreted walk, issuing the identical op stream.
func (t TAILS) tapeLayerFn(sc *scratch, p *tape.Program) sonic.LayerFn {
	swFn := sonic.TapeLayerFn(p)
	return func(s *sonic.Exec, li int, parity bool, start sonic.Cursor) {
		l := &s.Img.Layers[li]
		switch {
		case l.Q.Kind == dnn.QConv && l.NZ == nil:
			src, dst := sonic.ActBufs(s.Img, parity)
			t.tapeConvLayer(s, sc, l, &p.Layers[li], src, dst, start)
		case l.Q.Kind == dnn.QDense:
			src, dst := sonic.ActBufs(s.Img, parity)
			t.denseLayer(s, sc, l, p.Layers[li].Name, src, dst, start)
		default:
			swFn(s, li, parity, start)
		}
	}
}

// tapeConvLayer is convLayer with the per-iteration coordinate decodes
// read from the program. The calibrated tile size — and therefore the
// chunks-per-row count — is device state, not model state, so the inner
// (row, chunk) split stays a live counter pair (one div/mod at resume,
// increments after); the (f, oy) and (ci, ky) decodes and the derived
// coefficient/input/accumulator offsets all come from the row and
// generation tables.
func (t TAILS) tapeConvLayer(s *sonic.Exec, sc *scratch, l *core.LayerImage, tl *tape.Layer,
	src, dst *mem.Region, start sonic.Cursor) {
	q := l.Q
	dev := s.Dev
	ow := q.OutShape[2]
	gens := q.C * q.KH
	rows := q.F * q.OutShape[1]
	preShift := q.Shift
	if preShift < 0 {
		preShift = 0
	}
	postShift := -q.Shift
	if postShift < 0 {
		postShift = 0
	}
	ct := tile(s)
	if ct > ow {
		ct = ow
	}
	// Hoist the tables into locals so the chunk loop's opaque device calls
	// don't force slice-header reloads through tl on every access.
	rowAcc, rowSrcY, rowCoef := tl.RowAcc, tl.RowSrcY, tl.RowCoef
	genSrcTab, genCoefTab, filterOf := tl.GenSrc, tl.GenCoef, tl.FilterOf
	// Pre-resolve the layer's kernel/control sections: the chunk loop flips
	// attribution up to six times per chunk.
	tokK := dev.SectionToken(tl.Name, mcu.PhaseKernel)
	tokC := dev.SectionToken(tl.Name, mcu.PhaseControl)

	if start.Pass == 0 {
		chunks := (ow + ct - 1) / ct
		for pos := start.Pos; pos < gens; pos++ {
			dev.SetSectionTok(tokC)
			genSrc := int(genSrcTab[pos])
			coefOff := int(genCoefTab[pos])
			dest, inter := sonic.AccBufs(s.Img, pos)
			iStart := 0
			if pos == start.Pos {
				iStart = start.I
			}
			row, ck := iStart/chunks, iStart%chunks
			for i := iStart; i < rows*chunks; i++ {
				c0 := ck * ct
				n := ct
				if c0+n > ow {
					n = ow - c0
				}
				dev.SetSectionTok(tokC)
				t.blockIn(dev, sc.coef, 0, l.W, int(rowCoef[row])+coefOff, q.KW)
				rowBase := int(rowAcc[row])
				t.blockIn(dev, sc.in, 0, src, genSrc+int(rowSrcY[row])+c0, n+q.KW-1)
				preShiftRow(dev, sc.in, 0, n+q.KW-1, preShift)
				dev.SetSectionTok(tokK)
				t.fir(dev, sc.out, 0, sc.in, 0, sc.coef, 0, q.KW, n)
				dev.SetSectionTok(tokC)
				if pos > 0 {
					t.blockIn(dev, sc.out, n, inter, rowBase+c0, n)
					dev.SetSectionTok(tokK)
					t.addv(dev, sc.out, 0, sc.out, 0, sc.out, n, n)
					dev.SetSectionTok(tokC)
				}
				t.blockOut(dev, dest, rowBase+c0, sc.out, 0, n)
				s.Checkpoint(sonic.Cursor{Layer: start.Layer, Pos: pos, I: i + 1})
				if ck++; ck == chunks {
					ck = 0
					row++
				}
			}
			s.Transition(tl.Name, sonic.Cursor{Layer: start.Layer, Pos: pos + 1})
		}
		start = sonic.Cursor{Layer: start.Layer, Pass: 1}
		s.Transition(tl.Name, start)
	}

	final, _ := sonic.AccBufs(s.Img, gens-1)
	// Fused finalize: the per-element charge profile is uniform across the
	// whole layer (post-shift presence is a layer property, and shiftBias
	// always charges one software shift), so one block covers it.
	adds := 1 // shiftBias
	if postShift > 0 {
		adds++
	}
	blk, per := s.FuseUnit(tokC,
		mcu.BlockOp{Tok: tokK, Kind: mcu.OpBranch, N: 1},
		mcu.BlockOp{Tok: tokK, Kind: mcu.OpLoadFRAM, N: 2},
		mcu.BlockOp{Tok: tokK, Kind: mcu.OpAdd, N: adds},
		mcu.BlockOp{Tok: tokK, Kind: mcu.OpFixedAdd, N: 1},
		mcu.BlockOp{Tok: tokK, Kind: mcu.OpStoreFRAM, N: 1})
	finalW, bW, dstW := final.ROWords(), l.B.ROWords(), dst.Words()
	s.FuseMapTok(tokK, tokC, blk, per, start, q.F*q.OutShape[1]*ow, func(i0, m int) {
		for i := i0; i < i0+m; i++ {
			v := fixed.Q15(finalW[i])
			if postShift > 0 {
				wide := int64(v) << uint(postShift)
				if wide > int64(fixed.One) {
					v = fixed.One
				} else if wide < int64(fixed.MinusOne) {
					v = fixed.MinusOne
				} else {
					v = fixed.Q15(wide)
				}
			}
			bq := shiftBiasValue(fixed.Q15(bW[int(filterOf[i])]), q.Shift)
			dstW[i] = int64(fixed.Add(v, bq))
		}
	}, func(i int) {
		f := int(filterOf[i])
		v := fixed.Q15(dev.Load(final, i))
		if postShift > 0 {
			dev.Op(mcu.OpAdd)
			wide := int64(v) << uint(postShift)
			if wide > int64(fixed.One) {
				v = fixed.One
			} else if wide < int64(fixed.MinusOne) {
				v = fixed.MinusOne
			} else {
				v = fixed.Q15(wide)
			}
		}
		bq := shiftBias(dev, fixed.Q15(dev.Load(l.B, f)), q.Shift)
		dev.Op(mcu.OpFixedAdd)
		dev.Store(dst, i, int64(fixed.Add(v, bq)))
	})
}
