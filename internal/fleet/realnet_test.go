package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/harness"
)

// TestFleetRealNetworks sweeps a small fleet over the paper's three
// evaluation networks (MNIST, HAR, OkGoogle in quick mode) instead of the
// synthetic tiny model the other fleet tests use: the campaign engine must
// handle real layer mixes (sparse convs, LEA tiles, pooling) through the
// same Spec cross-product, and the op-tape campaign must reproduce the
// interpreted campaign's aggregates bit-for-bit on them. CI runs this as
// the real-network fleet smoke.
func TestFleetRealNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network fleet sweep needs quick-mode GENESIS preparation")
	}
	prepped, err := harness.PrepareAll(harness.PrepareOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	models := make(map[string]fleet.Model, len(prepped))
	names := make([]string, 0, len(prepped))
	for _, p := range prepped {
		models[p.Net] = fleet.Model{Net: p.Net, QM: p.Model, Input: p.Model.QuantizeInput(p.Input)}
		names = append(names, p.Net)
	}
	spec := fleet.Spec{
		Devices:  36, // two full model × runtime × power cross-products
		Seed:     1,
		Models:   names,
		Runtimes: []string{"tile-32", "sonic", "tails"},
		Powers: []fleet.PowerClass{
			{Name: "rf-100uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
			{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}},
		},
	}
	interp, err := fleet.Run(context.Background(), spec, models, 2)
	if err != nil {
		t.Fatal(err)
	}
	if interp.Done != spec.Devices {
		t.Fatalf("swept %d of %d devices", interp.Done, spec.Devices)
	}
	sum := interp.Agg.Summary()
	if sum.Completed == 0 {
		t.Fatal("no device completed an inference on the real networks")
	}

	tapeSpec := spec
	tapeSpec.Tape = true
	tape, err := fleet.Run(context.Background(), tapeSpec, models, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tape.Agg.Summary(), sum) {
		a, _ := json.Marshal(sum)
		b, _ := json.Marshal(tape.Agg.Summary())
		t.Fatalf("tape fleet aggregates diverge on real networks:\ninterp %s\ntape   %s", a, b)
	}
	if !reflect.DeepEqual(tape.Agg.IMpJ.Centroids(), interp.Agg.IMpJ.Centroids()) ||
		!reflect.DeepEqual(tape.Agg.RebootHist.Counts(), interp.Agg.RebootHist.Counts()) {
		t.Fatal("tape fleet sketches/histograms diverge on real networks")
	}
}

// TestProvisionedFleetBitIdentical is the provisioned-≡-fresh acceptance
// oracle on the paper's real networks: a campaign whose every device pays
// a full fresh deploy (Spec.Fresh) and the default campaign — devices
// provisioned by COW restore-in-place into per-worker pools — must
// produce bit-identical results at every worker count, down to sketch
// centroids and histogram bins. CI greps for the per-worker-count subtest
// PASS lines under -race.
func TestProvisionedFleetBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network provisioning oracle needs quick-mode GENESIS preparation")
	}
	prepped, err := harness.PrepareAll(harness.PrepareOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	models := make(map[string]fleet.Model, len(prepped))
	names := make([]string, 0, len(prepped))
	for _, p := range prepped {
		models[p.Net] = fleet.Model{Net: p.Net, QM: p.Model, Input: p.Model.QuantizeInput(p.Input)}
		names = append(names, p.Net)
	}
	spec := fleet.Spec{
		Devices:  36, // two full model × runtime × power cross-products
		Seed:     1,
		Models:   names,
		Runtimes: []string{"tile-32", "sonic", "tails"},
		Powers: []fleet.PowerClass{
			{Name: "rf-100uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
			{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}},
		},
		Tape: true,
	}
	type print struct {
		Summary  fleet.Summary
		IMpJ     []fleet.Centroid
		FirstSec []fleet.Centroid
		Reboots  []int64
		Wasted   []int64
		Done     int
		EnergyPJ int64
	}
	printOf := func(r *fleet.Result) print {
		return print{
			Summary:  r.Agg.Summary(),
			IMpJ:     r.Agg.IMpJ.Centroids(),
			FirstSec: r.Agg.FirstSec.Centroids(),
			Reboots:  r.Agg.RebootHist.Counts(),
			Wasted:   r.Agg.WastedHist.Counts(),
			Done:     r.Done,
			EnergyPJ: r.Agg.EnergyPJ,
		}
	}

	freshSpec := spec
	freshSpec.Fresh = true
	base, err := fleet.Run(context.Background(), freshSpec, models, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Agg.Summary().Completed == 0 {
		t.Fatal("degenerate fresh baseline: no device completed")
	}
	want := printOf(base)

	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		name := "workers-max"
		if workers <= 4 {
			name = fmt.Sprintf("workers-%d", workers)
		}
		t.Run(name, func(t *testing.T) {
			r, err := fleet.Run(context.Background(), spec, models, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := printOf(r); !reflect.DeepEqual(got, want) {
				a, _ := json.Marshal(want.Summary)
				b, _ := json.Marshal(got.Summary)
				t.Fatalf("provisioned fleet (workers=%d) diverges from fresh:\nfresh       %s\nprovisioned %s", workers, a, b)
			}
			if p := r.Provision; p.Restores != int64(spec.Devices) || p.FreshDeploys != 0 || p.Prototypes != int64(len(names)) {
				t.Fatalf("provisioning counters off: %+v", r.Provision)
			}
		})
	}
}
