package fleet

import (
	"math"
	"sort"
)

// Sketch is a t-digest-style online quantile estimator: a bounded list of
// weighted centroids over the observed values, compressed under the
// classic q(1-q) size bound so tail quantiles (P99 latency, worst-case
// IMpJ) stay far more accurate than mid-range ones. It exists so a fleet
// campaign can stream per-device metrics through O(compression) memory
// instead of retaining one value per device.
//
// Determinism contract: a Sketch's state is a pure function of its insert
// and merge history — Add buffers values and compresses at fixed counts,
// sorts break ties stably, and Merge never mutates its argument — so two
// shards fed the same device sequence hold bit-identical centroids no
// matter which worker ran them or how often the campaign was snapshotted.
type Sketch struct {
	compression float64
	centroids   []Centroid // sorted by Mean
	unmerged    []float64  // insertion buffer, compressed when full
	scratch     []Centroid // reusable compression workspace
	count       int64
	min, max    float64
}

// Centroid is one weighted point of a Sketch.
type Centroid struct {
	Mean  float64 `json:"mean"`
	Count int64   `json:"count"`
}

// DefaultCompression bounds the sketch at roughly this many centroids;
// the mid-range rank error is about 2/compression and shrinks
// quadratically toward the tails.
const DefaultCompression = 200

// sketchBufferCap is the insertion-buffer size; compression happens every
// this many Adds, a deterministic schedule independent of callers.
const sketchBufferCap = 512

// NewSketch returns an empty sketch (compression <= 0 selects the
// default).
func NewSketch(compression float64) *Sketch {
	if compression <= 0 {
		compression = DefaultCompression
	}
	return &Sketch{
		compression: compression,
		unmerged:    make([]float64, 0, sketchBufferCap),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add inserts one value.
func (s *Sketch) Add(v float64) {
	s.unmerged = append(s.unmerged, v)
	s.count++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if len(s.unmerged) == cap(s.unmerged) {
		s.flush()
	}
}

// Count returns the number of inserted values.
func (s *Sketch) Count() int64 { return s.count }

// Min returns the smallest inserted value (+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the largest inserted value (-Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// flush drains the insertion buffer into the centroid list.
func (s *Sketch) flush() {
	if len(s.unmerged) == 0 {
		return
	}
	sort.Float64s(s.unmerged)
	s.scratch = s.scratch[:0]
	for _, v := range s.unmerged {
		s.scratch = append(s.scratch, Centroid{Mean: v, Count: 1})
	}
	s.unmerged = s.unmerged[:0]
	s.absorb(s.scratch)
}

// absorb merges a sorted centroid list into the sketch and recompresses.
// in must not alias s.centroids.
func (s *Sketch) absorb(in []Centroid) {
	merged := make([]Centroid, 0, len(s.centroids)+len(in))
	i, j := 0, 0
	for i < len(s.centroids) && j < len(in) {
		// Stable: existing centroids win ties, so merge order — which is
		// fixed by the caller — fully determines the result.
		if s.centroids[i].Mean <= in[j].Mean {
			merged = append(merged, s.centroids[i])
			i++
		} else {
			merged = append(merged, in[j])
			j++
		}
	}
	merged = append(merged, s.centroids[i:]...)
	merged = append(merged, in[j:]...)
	s.centroids = compressCentroids(merged, s.compression)
}

// compressCentroids greedily coalesces a sorted centroid list under the
// t-digest q(1-q) weight bound: a centroid spanning quantile q may hold at
// most max(1, 4·n·q(1-q)/δ) weight, so centroids near the median are big
// and centroids at the tails stay near-singletons. Compression is
// performed in place over the input slice.
func compressCentroids(cs []Centroid, compression float64) []Centroid {
	if len(cs) == 0 {
		return cs
	}
	var total int64
	for _, c := range cs {
		total += c.Count
	}
	out := cs[:1]
	var cumBefore int64 // weight strictly before the open centroid
	for _, c := range cs[1:] {
		cur := &out[len(out)-1]
		w := cur.Count + c.Count
		q := (float64(cumBefore) + float64(w)/2) / float64(total)
		if float64(w) <= math.Max(1, 4*float64(total)*q*(1-q)/compression) {
			// Weighted mean; counts are exact so totals merge losslessly.
			cur.Mean = (cur.Mean*float64(cur.Count) + c.Mean*float64(c.Count)) / float64(w)
			cur.Count = w
		} else {
			cumBefore += cur.Count
			out = append(out, c)
		}
	}
	return out
}

// Merge folds o's contents into s. o is not modified — not even its
// internal buffers — so shard sketches can be merged into throwaway
// snapshot accumulators mid-campaign without perturbing the final,
// deterministic result.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	s.flush()
	if len(o.centroids) > 0 {
		in := append([]Centroid(nil), o.centroids...)
		s.absorb(in)
	}
	for _, v := range o.unmerged {
		s.unmerged = append(s.unmerged, v)
		if len(s.unmerged) == cap(s.unmerged) {
			s.flush()
		}
	}
	s.count += o.count
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Quantile estimates the q-quantile (q in [0,1]) by midpoint interpolation
// between adjacent centroids, clamped to the observed min/max. It returns
// NaN for an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	s.flush()
	if s.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	target := q * float64(s.count)
	var cum float64
	prevMean, prevMid := s.min, 0.0
	for _, c := range s.centroids {
		mid := cum + float64(c.Count)/2
		if target < mid {
			if mid == prevMid {
				return c.Mean
			}
			t := (target - prevMid) / (mid - prevMid)
			return clamp(prevMean+(c.Mean-prevMean)*t, s.min, s.max)
		}
		cum += float64(c.Count)
		prevMean, prevMid = c.Mean, mid
	}
	return s.max
}

// Centroids returns a copy of the compressed centroid list (flushing any
// buffered inserts first). Tests compare these across worker counts to
// prove campaign determinism bit for bit.
func (s *Sketch) Centroids() []Centroid {
	s.flush()
	return append([]Centroid(nil), s.centroids...)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
