package fleet

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// sampleSets returns named 10k+ sample streams with qualitatively
// different shapes: uniform, heavy-tailed, clustered, and adversarially
// sorted input.
func sampleSets(n int) map[string][]float64 {
	rng := rand.New(rand.NewPCG(7, 11))
	sets := make(map[string][]float64)

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 100
	}
	sets["uniform"] = uniform

	lognormal := make([]float64, n)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.NormFloat64() * 2)
	}
	sets["lognormal"] = lognormal

	clustered := make([]float64, n)
	for i := range clustered {
		c := float64(rng.IntN(3)) * 50
		clustered[i] = c + rng.NormFloat64()
	}
	sets["clustered"] = clustered

	ascending := make([]float64, n)
	for i := range ascending {
		ascending[i] = float64(i)
	}
	sets["ascending"] = ascending
	return sets
}

var testQuantiles = []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}

// rankErr returns |empirical rank of v − q·n| / n against the sorted data.
func rankErr(sorted []float64, v, q float64) float64 {
	// v may fall inside a run of equal values; any rank within the run is
	// correct, so take the closest bound.
	lo := sort.SearchFloat64s(sorted, v)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	target := q * float64(len(sorted))
	errLo := math.Abs(float64(lo) - target)
	errHi := math.Abs(float64(hi) - target)
	return math.Min(errLo, errHi) / float64(len(sorted))
}

// errBound is the accepted rank error at quantile q for the default
// compression: the t-digest q(1-q) shape with a small floor, far tighter
// at the tails than the middle.
func errBound(q float64) float64 {
	return math.Max(0.002, 10*q*(1-q)/DefaultCompression)
}

func TestSketchQuantileError(t *testing.T) {
	const n = 20000
	for name, data := range sampleSets(n) {
		t.Run(name, func(t *testing.T) {
			s := NewSketch(0)
			for _, v := range data {
				s.Add(v)
			}
			if s.Count() != n {
				t.Fatalf("count = %d, want %d", s.Count(), n)
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for _, q := range testQuantiles {
				v := s.Quantile(q)
				if e, bound := rankErr(sorted, v, q), errBound(q); e > bound {
					t.Errorf("q=%v: estimate %v has rank error %.4f > %.4f", q, v, e, bound)
				}
			}
			if got := s.Quantile(0); got != sorted[0] {
				t.Errorf("Quantile(0) = %v, want min %v", got, sorted[0])
			}
			if got := s.Quantile(1); got != sorted[n-1] {
				t.Errorf("Quantile(1) = %v, want max %v", got, sorted[n-1])
			}
		})
	}
}

// TestSketchMergedQuantileError proves sharded accumulation keeps the
// error bound: data split across 16 sketches and merged must answer like
// one sketch over everything.
func TestSketchMergedQuantileError(t *testing.T) {
	const n, shards = 20000, 16
	for name, data := range sampleSets(n) {
		t.Run(name, func(t *testing.T) {
			parts := make([]*Sketch, shards)
			for i := range parts {
				parts[i] = NewSketch(0)
			}
			for i, v := range data {
				parts[i%shards].Add(v)
			}
			merged := NewSketch(0)
			for _, p := range parts {
				merged.Merge(p)
			}
			if merged.Count() != n {
				t.Fatalf("merged count = %d, want %d", merged.Count(), n)
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for _, q := range testQuantiles {
				v := merged.Quantile(q)
				// Merging compresses twice, so allow 2x the single-sketch
				// budget — still percent-level mid-range and per-mille tails.
				if e, bound := rankErr(sorted, v, q), 2*errBound(q); e > bound {
					t.Errorf("q=%v: merged estimate %v has rank error %.4f > %.4f", q, v, e, bound)
				}
			}
		})
	}
}

// TestSketchMergeLeavesSourceIntact is the snapshot-safety property: a
// campaign snapshot merges live shard sketches into a throwaway
// accumulator, which must not change the shard's subsequent behavior.
func TestSketchMergeLeavesSourceIntact(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	src := NewSketch(0)
	twin := NewSketch(0) // same inserts, never merged from
	for i := 0; i < 5000; i++ {
		v := rng.NormFloat64()
		src.Add(v)
		twin.Add(v)
	}
	sink := NewSketch(0)
	sink.Merge(src) // mid-stream snapshot
	for i := 0; i < 5000; i++ {
		v := rng.Float64()
		src.Add(v)
		twin.Add(v)
	}
	if !reflect.DeepEqual(src.Centroids(), twin.Centroids()) {
		t.Fatal("Merge mutated its source: centroids diverged from the untouched twin")
	}
	if src.Count() != twin.Count() || src.Min() != twin.Min() || src.Max() != twin.Max() {
		t.Fatal("Merge mutated its source's count/min/max")
	}
}

func TestSketchCentroidCountBounded(t *testing.T) {
	s := NewSketch(0)
	for i := 0; i < 200000; i++ {
		s.Add(float64(i % 997))
	}
	// The q(1-q) bound admits roughly pi*delta/4 interior centroids plus
	// near-singleton tails; 8x compression is a loose static ceiling that
	// any O(fleet) regression would blow through immediately.
	if n := len(s.Centroids()); n > 8*DefaultCompression {
		t.Fatalf("sketch holds %d centroids after 200k inserts, want O(compression)=%d", n, DefaultCompression)
	}
}

func TestHistMergeAssociativeAndCommutative(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	build := func() *Hist {
		h := NewLogHist(1, 10, 4)
		for i := 0; i < 3000; i++ {
			h.Add(math.Exp(rng.NormFloat64() * 4))
		}
		return h
	}
	a, b, c := build(), build(), build()

	// (a+b)+c
	ab := NewLogHist(1, 10, 4)
	for _, h := range []*Hist{a, b, c} {
		if err := ab.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	// a+(b+c), built right-to-left in a different grouping and order
	bc := NewLogHist(1, 10, 4)
	for _, h := range []*Hist{c, b, a} {
		if err := bc.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(ab.Counts(), bc.Counts()) {
		t.Fatal("histogram merge is not order-independent")
	}
	if ab.Total() != 9000 {
		t.Fatalf("merged total = %d, want 9000", ab.Total())
	}
}

func TestHistShapeMismatchRejected(t *testing.T) {
	a := NewLinearHist(8)
	b := NewLinearHist(16)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging differently-shaped histograms did not error")
	}
}

func TestHistBinning(t *testing.T) {
	h := NewLinearHist(4) // bins [0,1) [1,2) [2,3) [3,4) + under/overflow
	for _, v := range []float64{0, 0, 1, 2.5, 3, 4, 100, -1} {
		h.Add(v)
	}
	want := []int64{1, 2, 1, 1, 1, 2} // under, 0,1,2,3, over
	if got := h.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d, want 8", h.Total())
	}
	var n int64
	for _, b := range h.Buckets() {
		n += b.Count
	}
	if n != 8 {
		t.Fatalf("bucket counts sum to %d, want 8", n)
	}
}
