package fleet

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/energy"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// TestFleetSpecHashShardNormalization is the dedup regression for the
// Shards default: a spec that leaves Shards at zero and one that spells
// out DefaultShards run the identical campaign, so they must share a
// content address — otherwise the serve front-end re-simulates whole
// fleets for a spelling difference. Same for an over-count clamped down
// to the device count.
func TestFleetSpecHashShardNormalization(t *testing.T) {
	zero := testSpec(100)
	zero.Shards = 0
	explicit := testSpec(100)
	explicit.Shards = DefaultShards
	if zero.Hash() != explicit.Hash() {
		t.Fatal("Shards:0 and Shards:DefaultShards run the same campaign but hash differently")
	}

	// Over-counts clamp to Devices: Shards:10 on a 10-device fleet is the
	// same grouping as Shards:500.
	small := testSpec(10)
	small.Shards = 500
	clamped := testSpec(10)
	clamped.Shards = 10
	if small.Hash() != clamped.Hash() {
		t.Fatal("over-count shards and the clamped count hash differently")
	}

	// Distinct effective shard counts still fix different aggregate
	// groupings and must keep distinct addresses.
	other := testSpec(100)
	other.Shards = 32
	if zero.Hash() == other.Hash() {
		t.Fatal("different effective shard counts hash identically")
	}

	// The tape knob selects an executor proven bit-exact with the
	// interpreted walk; it is not campaign identity.
	taped := testSpec(100)
	taped.Tape = true
	if zero.Hash() != taped.Hash() {
		t.Fatal("Tape changed the content hash despite identical results")
	}
}

// TestFleetRuntimeByNameErrors pins the parse diagnostics: a malformed
// parameter on a recognized prefix must say what is wrong with it, not
// claim the whole runtime is unknown.
func TestFleetRuntimeByNameErrors(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"tile-0", `runtime "tile-0": tile size must be positive, got 0`},
		{"tile--4", `runtime "tile--4": tile size must be positive, got -4`},
		{"tile-x", `runtime "tile-x": tile size "x" is not a number`},
		{"ckpt-0", `runtime "ckpt-0": checkpoint interval must be positive, got 0`},
		{"ckpt-x", `runtime "ckpt-x": checkpoint interval "x" is not a number`},
		{"alpaca", `unknown runtime "alpaca"`},
		{"", `unknown runtime ""`},
	}
	for _, tc := range cases {
		_, err := RuntimeByName(tc.name)
		if err == nil {
			t.Errorf("RuntimeByName(%q) did not error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("RuntimeByName(%q) = %q, want it to contain %q", tc.name, err, tc.want)
		}
	}
}

// TestFleetRuntimeByNameTape checks the tape knob threads into every
// resolvable runtime without changing its name.
func TestFleetRuntimeByNameTape(t *testing.T) {
	for _, name := range []string{"base", "tile-8", "tile-32", "tile-128", "sonic", "tails", "ckpt-8"} {
		rt, err := RuntimeByNameTape(name, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rt.Name() != name {
			t.Fatalf("RuntimeByNameTape(%q).Name() = %q", name, rt.Name())
		}
		var tape bool
		switch r := rt.(type) {
		case baseline.Base:
			tape = r.Tape
		case baseline.Tile:
			tape = r.Tape
		case sonic.SONIC:
			tape = r.Tape
		case tails.TAILS:
			tape = r.Tape
		case checkpoint.Checkpoint:
			tape = r.Tape
		default:
			t.Fatalf("%s resolved to unexpected type %T", name, rt)
		}
		if !tape {
			t.Fatalf("RuntimeByNameTape(%q, true) left the tape knob off", name)
		}
	}
}

// TestFleetDeviceCrossProduct pins the assignment order: device i cycles
// the Models x Runtimes x Powers cross product with models fastest, so
// any index's assignment is readable off the spec by hand.
func TestFleetDeviceCrossProduct(t *testing.T) {
	spec := Spec{
		Devices:  36,
		Seed:     7,
		Models:   []string{"m0", "m1"},
		Runtimes: []string{"base", "sonic", "tails"},
		Powers: []PowerClass{
			{Name: "p0", SystemSpec: energy.SystemSpec{Kind: "cont"}},
			{Name: "p1", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
		},
	}
	combos := len(spec.Models) * len(spec.Runtimes) * len(spec.Powers)
	seen := make(map[[3]string]int)
	for i := 0; i < combos; i++ {
		d := spec.Device(i)
		// Models fastest, then runtimes, then powers.
		wantM := spec.Models[i%2]
		wantR := spec.Runtimes[(i/2)%3]
		wantP := spec.Powers[(i/6)%2]
		if d.Model != wantM || d.Runtime != wantR || d.Power.Name != wantP.Name {
			t.Fatalf("device %d = (%s, %s, %s), want (%s, %s, %s)",
				i, d.Model, d.Runtime, d.Power.Name, wantM, wantR, wantP.Name)
		}
		seen[[3]string{d.Model, d.Runtime, d.Power.Name}]++
	}
	if len(seen) != combos {
		t.Fatalf("first %d devices cover %d of %d combinations", combos, len(seen), combos)
	}
	// The second cycle repeats assignments but never harvest seeds.
	for i := 0; i < combos; i++ {
		d, d2 := spec.Device(i), spec.Device(i+combos)
		if d.Model != d2.Model || d.Runtime != d2.Runtime || d.Power.Name != d2.Power.Name {
			t.Fatalf("cross product does not cycle at device %d", i+combos)
		}
		if d.HarvestSeed == d2.HarvestSeed {
			t.Fatalf("devices %d and %d share a harvest seed across cycles", i, i+combos)
		}
	}
}

// TestFleetDeviceSeedGolden is the seed-derivation regression vector:
// campaign results are reproducible across releases only if the
// SplitMix64 derivation never drifts, so these exact values are part of
// the spec's compatibility surface.
func TestFleetDeviceSeedGolden(t *testing.T) {
	golden := []struct {
		seed uint64
		i    int
		want uint64
	}{
		{1, 0, 0x910a2dec89025cc1},
		{1, 1, 0xbeeb8da1658eec67},
		{1, 2, 0xf893a2eefb32555e},
		{1, 3, 0x71c18690ee42c90b},
		{1, 1023, 0x9d61a03a3cfc0647},
		{42, 0, 0xbdd732262feb6e95},
		{42, 7, 0xccf635ee9e9e2fa4},
		{0xdeadbeef, 0, 0x4adfb90f68c9eb9b},
		{0xdeadbeef, 999999, 0xee3bdab0a2b2ec01},
	}
	for _, g := range golden {
		if got := deviceSeed(g.seed, g.i); got != g.want {
			t.Errorf("deviceSeed(%#x, %d) = %#x, want %#x (derivation drifted: stored campaign hashes no longer reproduce)",
				g.seed, g.i, got, g.want)
		}
	}
	spec := Spec{
		Devices:  4,
		Seed:     1,
		Models:   []string{"m"},
		Runtimes: []string{"base"},
		Powers:   []PowerClass{{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}}},
	}
	if got := spec.Device(0).HarvestSeed; got != golden[0].want {
		t.Errorf("Device(0).HarvestSeed = %#x, want %#x", got, golden[0].want)
	}
}
