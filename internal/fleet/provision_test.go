package fleet

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
)

// TestProvisionedTinyFleetBitIdentical is the provisioned-≡-fresh oracle
// on the synthetic tiny model: a Fresh campaign (every device pays
// mcu.New + core.Deploy) and the default pooled campaign must produce
// bit-identical aggregates at every worker count. The real-network form
// lives in realnet_test.go as TestProvisionedFleetBitIdentical.
func TestProvisionedTinyFleetBitIdentical(t *testing.T) {
	models := testModels(1)
	spec := testSpec(600)
	freshSpec := spec
	freshSpec.Fresh = true
	base, err := Run(context.Background(), freshSpec, models, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Provision.FreshDeploys != 600 || base.Provision.Restores != 0 || base.Provision.Prototypes != 0 {
		t.Fatalf("fresh campaign provisioning counters off: %+v", base.Provision)
	}
	want := fingerprintOf(base)

	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		t.Run(subtestName("workers", workers), func(t *testing.T) {
			r, err := Run(context.Background(), spec, models, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprintOf(r); !reflect.DeepEqual(got, want) {
				t.Fatalf("pooled workers=%d aggregates differ from fresh baseline:\ngot  %+v\nwant %+v", workers, got, want)
			}
			p := r.Provision
			if p.Restores != 600 || p.FreshDeploys != 0 {
				t.Fatalf("pooled campaign provisioning counters off: %+v", p)
			}
			if p.Prototypes != 1 {
				t.Fatalf("one model should deploy one prototype, got %d", p.Prototypes)
			}
			if p.SlotDeploys < 1 || p.SlotDeploys > int64(workers) {
				t.Fatalf("slot deploys = %d, want in [1, workers=%d]", p.SlotDeploys, workers)
			}
			// The dirty tracking must be doing real work: weight regions are
			// never written by inference, so steady-state restores skip their
			// pages wholesale, while activation/control pages actually copy.
			if p.PagesSkipped == 0 || p.PagesCopied == 0 {
				t.Fatalf("degenerate page traffic (skipped=%d copied=%d): dirty tracking inert", p.PagesSkipped, p.PagesCopied)
			}
		})
	}
}

// TestPoolPurityAfterBrownOut is the no-residue oracle: a device that
// browned out hundreds of times and then failed to terminate is the
// worst-case polluter — partial activations, torn accumulators, control
// state mid-protocol, reboot bookkeeping. Re-provisioning its slot must
// leave banks byte-identical to the prototype (and to a fresh deploy),
// and the next simulation on the slot must match a fresh device exactly.
func TestPoolPurityAfterBrownOut(t *testing.T) {
	models := testModels(1)
	m := models["tiny"]
	proto, err := NewPrototype(m)
	if err != nil {
		t.Fatal(err)
	}
	p := &pool{protos: map[string]*Prototype{"tiny": proto}, slots: make(map[string]*Slot)}

	// tile-128 tasks exceed a 20 µF constant-charge budget, so the run
	// reboots until the device gives up — leaving maximal mid-flight
	// residue.
	rf := PowerClass{Name: "rf-20uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 20e-6}}
	rt128, err := RuntimeByName("tile-128")
	if err != nil {
		t.Fatal(err)
	}
	dnc := DeviceSpec{Index: 0, Model: "tiny", Runtime: "tile-128", Power: rf, HarvestSeed: deviceSeed(1, 0)}
	st, err := p.simulate(dnc, m, rt128, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed || st.Reboots == 0 {
		t.Fatalf("residue generator broke: tile-128 on rf-20uF completed=%v reboots=%d", st.Completed, st.Reboots)
	}

	sl := p.slots["tiny"]
	if err := sl.Provision(energy.Continuous{}, false, &p.stats); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sl.dev.FRAM.Snapshot(nil, nil), proto.fram) {
		t.Error("FRAM differs from prototype after re-provisioning a browned-out slot")
	}
	if !reflect.DeepEqual(sl.dev.SRAM.Snapshot(nil, nil), proto.sram) {
		t.Error("SRAM differs from prototype after re-provisioning a browned-out slot")
	}
	ref := mcu.New(energy.Continuous{})
	if _, err := core.Deploy(ref, m.QM); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sl.dev.FRAM.Snapshot(nil, nil), ref.FRAM.Snapshot(nil, nil)) {
		t.Error("provisioned FRAM differs from a fresh deploy")
	}

	// And the behavioral form: the next device simulated on the polluted
	// slot must be indistinguishable from one on a brand-new device.
	ok := DeviceSpec{Index: 1, Model: "tiny", Runtime: "sonic", Power: rf, HarvestSeed: deviceSeed(1, 1)}
	rtOK, err := RuntimeByName("sonic")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.simulate(ok, m, rtOK, false)
	if err != nil {
		t.Fatal(err)
	}
	wantSt, err := simulate(ok, m, rtOK, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Completed {
		t.Fatal("sonic on rf-20uF should complete")
	}
	if !reflect.DeepEqual(got, wantSt) {
		t.Fatalf("post-brown-out pooled device stats = %+v, fresh = %+v", got, wantSt)
	}
}

// TestProvisioningAllocsConstant is the O(1) allocation regression.
// Steady-state provisioning rewinds existing banks in place — no device,
// region, image, or page allocation — so it must stay at a tiny constant
// regardless of model size; and a whole pooled simulation must allocate
// strictly less than the fresh path, which pays mcu.New + core.Deploy
// per device on top of the same inference.
func TestProvisioningAllocsConstant(t *testing.T) {
	models := testModels(1)
	m := models["tiny"]
	rt, err := RuntimeByName("tile-32")
	if err != nil {
		t.Fatal(err)
	}
	cont := PowerClass{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}}
	ds := DeviceSpec{Index: 0, Model: "tiny", Runtime: "tile-32", Power: cont, HarvestSeed: deviceSeed(1, 0)}

	proto, err := NewPrototype(m)
	if err != nil {
		t.Fatal(err)
	}
	p := &pool{protos: map[string]*Prototype{"tiny": proto}, slots: make(map[string]*Slot)}
	if _, err := p.simulate(ds, m, rt, false); err != nil { // cold: slot deploy
		t.Fatal(err)
	}
	sl := p.slots["tiny"]
	provAllocs := testing.AllocsPerRun(10, func() {
		if err := sl.Provision(energy.Continuous{}, false, &p.stats); err != nil {
			t.Fatal(err)
		}
	})
	if provAllocs > 8 {
		t.Fatalf("restore-in-place provisioning allocates %.0f objects/run, want O(1)", provAllocs)
	}

	pooled := testing.AllocsPerRun(10, func() {
		if _, err := p.simulate(ds, m, rt, false); err != nil {
			t.Fatal(err)
		}
	})
	freshPool := &pool{fresh: true}
	fresh := testing.AllocsPerRun(10, func() {
		if _, err := freshPool.simulate(ds, m, rt, false); err != nil {
			t.Fatal(err)
		}
	})
	// Both paths pay the runtime's own per-inference setup, so on the tiny
	// model the gap is the deploy's region allocations; on real networks it
	// is hundreds of KB of tables. Require a solid margin, not a ratio —
	// ratios flap with runtime-internals churn.
	if pooled+20 > fresh {
		t.Fatalf("pooled simulate allocates %.0f objects/run vs fresh %.0f: pooling shed no deploy work", pooled, fresh)
	}
}
