package fleet

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/intermittest"
)

// testModels returns a registry holding the tiny model — every kernel
// class the runtimes implement, small enough to sweep thousands of
// devices in seconds.
func testModels(seed uint64) map[string]Model {
	qm, x := intermittest.TinyModel(seed)
	return map[string]Model{"tiny": {Net: "tiny", QM: qm, Input: qm.QuantizeInput(x)}}
}

// testSpec is a campaign mixing deterministic and stochastic harvesters,
// completing and non-completing runtimes.
func testSpec(devices int) Spec {
	return Spec{
		Devices:  devices,
		Seed:     1,
		Models:   []string{"tiny"},
		Runtimes: []string{"base", "tile-32", "sonic", "tails"},
		Powers: []PowerClass{
			{Name: "rf-100uF", SystemSpec: energy.SystemSpec{Kind: "const", CapFarads: 100e-6}},
			{Name: "stoch-100uF", SystemSpec: energy.SystemSpec{Kind: "stoch", CapFarads: 100e-6}},
			{Name: "solar-100uF", SystemSpec: energy.SystemSpec{Kind: "solar", CapFarads: 100e-6, Watts: 5e-3}},
			{Name: "cont", SystemSpec: energy.SystemSpec{Kind: "cont"}},
		},
	}
}

// fingerprint reduces a Result to comparable values: every counter, the
// exact sketch centroid lists, and the exact histogram bins.
type fingerprint struct {
	Summary   Summary
	IMpJ      []Centroid
	FirstSec  []Centroid
	Reboots   []int64
	Wasted    []int64
	Done      int
	EnergyPJ  int64
	IMpJCount int64
}

func fingerprintOf(r *Result) fingerprint {
	return fingerprint{
		Summary:   r.Agg.Summary(),
		IMpJ:      r.Agg.IMpJ.Centroids(),
		FirstSec:  r.Agg.FirstSec.Centroids(),
		Reboots:   r.Agg.RebootHist.Counts(),
		Wasted:    r.Agg.WastedHist.Counts(),
		Done:      r.Done,
		EnergyPJ:  r.Agg.EnergyPJ,
		IMpJCount: r.Agg.IMpJ.Count(),
	}
}

// TestFleetDeterministicAcrossWorkers is the campaign determinism oracle:
// the same spec swept with 1, 2, 4, and GOMAXPROCS workers — and once
// with a concurrent snapshot reader hammering the live campaign — must
// produce bit-identical aggregates, down to sketch centroids and
// histogram bins. CI greps for these subtest PASS lines.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	models := testModels(1)
	spec := testSpec(600)
	base, err := Run(context.Background(), spec, models, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Agg.Devices != 600 || base.Done != 600 {
		t.Fatalf("baseline swept %d/%d devices, want 600", base.Agg.Devices, base.Done)
	}
	if base.Agg.Completed == 0 || base.Agg.Reboots == 0 {
		t.Fatalf("degenerate baseline: completed=%d reboots=%d", base.Agg.Completed, base.Agg.Reboots)
	}
	want := fingerprintOf(base)

	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		t.Run(subtestName("workers", workers), func(t *testing.T) {
			r, err := Run(context.Background(), spec, models, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprintOf(r); !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d aggregates differ from workers=1 baseline:\ngot  %+v\nwant %+v", workers, got, want)
			}
		})
	}

	// Concurrent snapshots must observe the campaign without perturbing it.
	t.Run("workers-snapshotted", func(t *testing.T) {
		c, err := NewCampaign(spec, models)
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		snapDone := make(chan error, 1)
		go func() {
			defer close(snapDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Snapshot(); err != nil {
					snapDone <- err
					return
				}
			}
		}()
		r, err := c.Run(context.Background(), 4)
		close(stop)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-snapDone; err != nil {
			t.Fatal(err)
		}
		if got := fingerprintOf(r); !reflect.DeepEqual(got, want) {
			t.Fatal("snapshotting a live campaign changed its final aggregates")
		}
	})
}

func subtestName(prefix string, n int) string {
	names := map[int]string{1: "1", 2: "2", 4: "4"}
	if s, ok := names[n]; ok {
		return prefix + "-" + s
	}
	return prefix + "-max"
}

// TestFleetMemoryBound is the O(workers)-memory acceptance test: a
// 10,000-device campaign must retain no per-device state — growing the
// fleet 5x may not grow the retained aggregates — and the streaming
// structures must stay at their fixed sizes.
func TestFleetMemoryBound(t *testing.T) {
	models := testModels(1)
	retainedAfter := func(devices int) (*Result, uint64) {
		r, err := Run(context.Background(), testSpec(devices), models, 2)
		if err != nil {
			t.Fatal(err)
		}
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		return r, ms.HeapAlloc
	}
	rSmall, small := retainedAfter(2000)
	rLarge, large := retainedAfter(10000)
	if rLarge.Agg.Devices != 10000 {
		t.Fatalf("swept %d devices, want 10000", rLarge.Agg.Devices)
	}
	// Both results (and their campaigns' shard aggregates) are live at
	// both measurements, so fleet-size-independent memory means the two
	// readings differ only by noise. A per-device leak as small as 64
	// bytes would add ~0.5 MB here.
	const slackBytes = 1 << 18 // 256 KiB of allocator noise
	if large > small+slackBytes {
		t.Fatalf("retained heap grew %d bytes going from 2k to 10k devices; aggregates must be O(workers), not O(fleet)",
			large-small)
	}
	for name, s := range map[string]*Sketch{"IMpJ": rLarge.Agg.IMpJ, "FirstSec": rLarge.Agg.FirstSec} {
		if n := len(s.Centroids()); n > 8*DefaultCompression {
			t.Errorf("%s sketch holds %d centroids, want O(compression)", name, n)
		}
	}
	if rSmall.Agg.Completed == 0 || rLarge.Agg.Completed == 0 {
		t.Fatal("degenerate campaign: nothing completed")
	}
	_ = rSmall
}

func TestFleetCancellation(t *testing.T) {
	models := testModels(1)
	spec := testSpec(50000)
	ctx, cancel := context.WithCancel(context.Background())
	c, err := NewCampaign(spec, models)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if done, _ := c.Progress(); done > 100 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, err = c.Run(ctx, 2)
	if err != context.Canceled {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if done, total := c.Progress(); done >= total {
		t.Fatalf("campaign ran to completion (%d/%d) despite cancellation", done, total)
	}
	cancel()
}

// TestFleetDevicePurity pins the seed-indexed assignment: device derivation
// is a pure function of (spec, index) with well-separated harvest seeds.
func TestFleetDevicePurity(t *testing.T) {
	spec := testSpec(1000)
	seen := make(map[uint64]int)
	for i := 0; i < spec.Devices; i++ {
		a, b := spec.Device(i), spec.Device(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("device %d derivation is not pure", i)
		}
		if prev, dup := seen[a.HarvestSeed]; dup {
			t.Fatalf("devices %d and %d share harvest seed %#x", prev, i, a.HarvestSeed)
		}
		seen[a.HarvestSeed] = i
	}
	// The cross product cycles: with 1 model, 4 runtimes, 4 powers the
	// first 16 devices cover every (runtime, power) pair.
	pairs := make(map[[2]string]bool)
	for i := 0; i < 16; i++ {
		d := spec.Device(i)
		pairs[[2]string{d.Runtime, d.Power.Name}] = true
	}
	if len(pairs) != 16 {
		t.Fatalf("first 16 devices cover %d of 16 runtime x power pairs", len(pairs))
	}
}

func TestFleetSpecHashIdentity(t *testing.T) {
	a, b := testSpec(100), testSpec(100)
	if a.Hash() != b.Hash() {
		t.Fatal("identical specs hash differently")
	}
	b.Seed++
	if a.Hash() == b.Hash() {
		t.Fatal("different seeds hash identically")
	}
	c := testSpec(100)
	c.Shards = 32
	if a.Hash() == c.Hash() {
		t.Fatal("different shard counts must hash differently (sharding fixes aggregate bits)")
	}
}

func TestFleetSpecValidation(t *testing.T) {
	models := testModels(1)
	for name, mutate := range map[string]func(*Spec){
		"no-devices":      func(s *Spec) { s.Devices = 0 },
		"unknown-model":   func(s *Spec) { s.Models = []string{"resnet"} },
		"no-models":       func(s *Spec) { s.Models = nil },
		"unknown-runtime": func(s *Spec) { s.Runtimes = []string{"quantum"} },
		"no-powers":       func(s *Spec) { s.Powers = nil },
		"bad-power":       func(s *Spec) { s.Powers[0].CapFarads = -1 },
	} {
		t.Run(name, func(t *testing.T) {
			s := testSpec(10)
			mutate(&s)
			if err := s.Validate(models); err == nil {
				t.Fatal("invalid spec passed validation")
			}
		})
	}
	s := testSpec(10)
	if err := s.Validate(models); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestFleetRuntimeByName(t *testing.T) {
	for _, name := range []string{"base", "tile-8", "tile-32", "tile-128", "sonic", "tails", "ckpt-8"} {
		rt, err := RuntimeByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rt.Name() != name {
			t.Fatalf("RuntimeByName(%q).Name() = %q", name, rt.Name())
		}
	}
	for _, name := range []string{"", "tile-", "tile-0", "ckpt-x", "alpaca"} {
		if _, err := RuntimeByName(name); err == nil {
			t.Fatalf("RuntimeByName(%q) did not error", name)
		}
	}
}
