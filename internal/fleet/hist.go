package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Hist is a fixed-bin histogram whose merge is plain element-wise integer
// addition — exactly associative and commutative, so per-shard histograms
// fold into fleet-wide ones in any grouping without changing a single
// count. Bin i covers [edges[i], edges[i+1]); one underflow and one
// overflow bin catch everything outside the edge range.
type Hist struct {
	edges  []float64
	counts []int64 // len(edges)+1: [underflow, bins..., overflow]
	total  int64
}

// NewHist builds a histogram over the given ascending bin edges.
func NewHist(edges []float64) *Hist {
	if len(edges) < 2 {
		panic("fleet: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("fleet: histogram edges must ascend")
		}
	}
	return &Hist{edges: edges, counts: make([]int64, len(edges)+1)}
}

// NewLinearHist builds unit-width integer bins [0,1), [1,2), ... [n-1,n) —
// the right shape for small counts like per-device reboots, where bin i
// means "exactly i".
func NewLinearHist(n int) *Hist {
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = float64(i)
	}
	return NewHist(edges)
}

// NewLogHist builds logarithmic bins from lo spanning the given number of
// decades at perDecade bins each — the right shape for quantities spread
// over orders of magnitude, like per-device wasted energy or latency.
func NewLogHist(lo float64, decades, perDecade int) *Hist {
	if lo <= 0 {
		panic("fleet: log histogram needs a positive lower bound")
	}
	edges := make([]float64, decades*perDecade+1)
	for i := range edges {
		edges[i] = lo * math.Pow(10, float64(i)/float64(perDecade))
	}
	return NewHist(edges)
}

// Add counts one value.
func (h *Hist) Add(v float64) { h.AddN(v, 1) }

// AddN counts a value n times.
func (h *Hist) AddN(v float64, n int64) {
	// sort.SearchFloat64s finds the first edge > v when offset by one,
	// i.e. bin index 0 is underflow (v < edges[0]).
	i := sort.SearchFloat64s(h.edges, v)
	if i < len(h.edges) && h.edges[i] == v {
		i++ // edges are inclusive lower bounds
	}
	h.counts[i] += n
	h.total += n
}

// Merge adds o's counts into h. Shapes must match; o is not modified.
func (h *Hist) Merge(o *Hist) error {
	if len(o.edges) != len(h.edges) {
		return fmt.Errorf("fleet: merging histograms with %d vs %d edges", len(o.edges), len(h.edges))
	}
	for i, e := range h.edges {
		if o.edges[i] != e {
			return fmt.Errorf("fleet: merging histograms with different edge %d: %v vs %v", i, e, o.edges[i])
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	return nil
}

// Total returns the number of counted values.
func (h *Hist) Total() int64 { return h.total }

// Bucket is one non-empty histogram bin, JSON-ready for the serving API.
type Bucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
}

// MarshalJSON renders unbounded (infinite) bucket edges as null, which
// encoding/json cannot represent as numbers.
func (b Bucket) MarshalJSON() ([]byte, error) {
	type jsonBucket struct {
		Lo    *float64 `json:"lo"`
		Hi    *float64 `json:"hi"`
		Count int64    `json:"count"`
	}
	jb := jsonBucket{Count: b.Count}
	if !math.IsInf(b.Lo, 0) {
		lo := b.Lo
		jb.Lo = &lo
	}
	if !math.IsInf(b.Hi, 0) {
		hi := b.Hi
		jb.Hi = &hi
	}
	return json.Marshal(jb)
}

// Buckets returns the non-empty bins in order. Underflow and overflow
// bins report infinite outer bounds.
func (h *Hist) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b := Bucket{Lo: math.Inf(-1), Hi: math.Inf(1), Count: c}
		if i > 0 {
			b.Lo = h.edges[i-1]
		}
		if i < len(h.edges) {
			b.Hi = h.edges[i]
		}
		out = append(out, b)
	}
	return out
}

// Counts returns a copy of the raw bin counts (underflow first, overflow
// last); tests compare these across worker counts.
func (h *Hist) Counts() []int64 { return append([]int64(nil), h.counts...) }
