// Package fleet sweeps campaigns of many independent energy-harvesting
// device instances — each with its own harvest seed, capacitor, power
// system, network, and runtime — across a sharded worker pool, streaming
// per-device metrics into aggregate statistics (IMpJ and latency quantile
// sketches, reboot and wasted-energy histograms) whose memory stays
// O(workers + shards), never O(fleet).
//
// Determinism: device i's entire simulation is a pure function of
// (Spec, i) — its harvest seed, model, runtime, and power system are all
// derived from the campaign seed and the device index, never from which
// worker ran it. Devices are assigned to a fixed number of logical shards
// by index (i mod Shards), each shard aggregates its devices in index
// order, and shards merge in shard order, so the campaign result is
// bit-identical under any worker count (see
// TestFleetDeterministicAcrossWorkers).
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/sonic"
	"repro/internal/tails"
)

// PowerClass names one power configuration devices of the fleet may get;
// the embedded SystemSpec describes capacitor and harvester, and each
// device instantiates it with its own derived seed.
type PowerClass struct {
	Name string `json:"name"`
	energy.SystemSpec
}

// Spec describes one fleet campaign. Device i cycles through the
// Models × Runtimes × Powers cross product (models fastest) and gets a
// harvest seed derived from (Seed, i), so the fleet covers every
// combination with per-device stochastic variation, and any single device
// can be re-simulated in isolation from the spec alone.
type Spec struct {
	// Devices is the fleet size.
	Devices int `json:"devices"`
	// Seed pins every derived per-device seed.
	Seed uint64 `json:"seed"`
	// Models names the networks devices run (resolved by the caller's
	// model registry — e.g. "tiny", "mnist", "har", "okg").
	Models []string `json:"models"`
	// Runtimes names the inference runtimes ("base", "tile-8", "tile-32",
	// "tile-128", "sonic", "tails", "ckpt-8", ...).
	Runtimes []string `json:"runtimes"`
	// Powers lists the power classes devices draw from.
	Powers []PowerClass `json:"powers"`
	// Shards is the number of logical aggregation shards (DefaultShards
	// when zero). It is part of the campaign's identity: shard grouping
	// affects sketch compression points, so changing it may change
	// aggregate bits (never their statistical meaning).
	Shards int `json:"shards,omitempty"`
	// Tape selects the pre-decoded op-tape executors for every runtime of
	// the campaign. The tape path is bit-exact with the interpreted walk
	// (see TestTapeInterpreterDifferential), so it does not participate in
	// the content hash: the same results, just faster.
	Tape bool `json:"tape,omitempty"`
	// NoFuse forces the scalar op-by-op execution path even where the
	// fused bulk kernels could engage. Fused and scalar paths are
	// bit-exact (TestFusedScalarDifferential), so like Tape this is an
	// executor choice, not campaign identity, and stays out of the hash.
	// It exists for A/B verification and benchmarking.
	NoFuse bool `json:"no_fuse,omitempty"`
	// Fresh disables pooled COW provisioning: every device pays a full
	// mcu.New + core.Deploy instead of a restore-in-place into its
	// worker's device pool. Provisioned and fresh fleets are bit-identical
	// (TestProvisionedFleetBitIdentical), so like Tape and NoFuse this is
	// an executor choice, not campaign identity, and stays out of the
	// hash. It exists for A/B verification and benchmarking.
	Fresh bool `json:"fresh,omitempty"`
}

// DefaultShards is the logical shard count campaigns default to — enough
// to keep any plausible worker count busy, small enough that per-shard
// aggregate state stays trivially bounded.
const DefaultShards = 64

// DeviceSpec is one resolved device instance of a campaign.
type DeviceSpec struct {
	Index       int
	Model       string
	Runtime     string
	Power       PowerClass
	HarvestSeed uint64
}

// shardCount returns the effective logical shard count.
func (s *Spec) shardCount() int {
	n := s.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n > s.Devices {
		n = s.Devices
	}
	return n
}

// Device derives the i-th device instance. It is a pure function of
// (spec, i): worker scheduling can never influence what a device is.
func (s *Spec) Device(i int) DeviceSpec {
	idx := i
	m := s.Models[idx%len(s.Models)]
	idx /= len(s.Models)
	rt := s.Runtimes[idx%len(s.Runtimes)]
	idx /= len(s.Runtimes)
	p := s.Powers[idx%len(s.Powers)]
	return DeviceSpec{Index: i, Model: m, Runtime: rt, Power: p, HarvestSeed: deviceSeed(s.Seed, i)}
}

// deviceSeed derives device i's harvest seed from the campaign seed with
// a SplitMix64 finalizer, mirroring the energy package's seeding: one
// campaign seed pins every device's stochastic harvest sequence, and
// distinct indices get well-separated streams.
func deviceSeed(seed uint64, i int) uint64 {
	z := seed + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Validate checks the spec against a model registry. MaxDevices guards
// the serving path against unbounded job submissions.
func (s *Spec) Validate(models map[string]Model) error {
	if s.Devices <= 0 {
		return fmt.Errorf("fleet: campaign needs a positive device count, got %d", s.Devices)
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("fleet: campaign names no models")
	}
	for _, m := range s.Models {
		if _, ok := models[m]; !ok {
			return fmt.Errorf("fleet: unknown model %q", m)
		}
	}
	if len(s.Runtimes) == 0 {
		return fmt.Errorf("fleet: campaign names no runtimes")
	}
	for _, r := range s.Runtimes {
		if _, err := RuntimeByName(r); err != nil {
			return err
		}
	}
	if len(s.Powers) == 0 {
		return fmt.Errorf("fleet: campaign names no power classes")
	}
	for i, p := range s.Powers {
		if err := p.SystemSpec.Validate(); err != nil {
			return fmt.Errorf("fleet: power class %d (%q): %w", i, p.Name, err)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("fleet: negative shard count %d", s.Shards)
	}
	return nil
}

// Hash returns the campaign's content address: a hex sha256 over every
// result-affecting spec field (all of them — even Shards, which fixes the
// aggregation grouping). Identical specs hash identically, which is what
// lets the serving front-end answer duplicate jobs from cache without
// re-running a single device.
//
// Shards is hashed in its *normalized* form (shardCount): a spec with
// Shards:0 and one with Shards:DefaultShards run the identical campaign,
// as does any over-count clamped down to Devices, so they must share a
// content address or the serve path re-simulates whole fleets for
// spellings of the same job.
func (s *Spec) Hash() string {
	// Struct JSON field order is declaration order and the spec contains
	// no maps, so the encoding is canonical.
	norm := *s
	norm.Shards = s.shardCount()
	norm.Tape = false   // executor choice, not campaign identity
	norm.NoFuse = false // likewise bit-exact, see TestFusedScalarDifferential
	norm.Fresh = false  // likewise bit-exact, see TestProvisionedFleetBitIdentical
	buf, err := json.Marshal(&norm)
	if err != nil {
		panic("fleet: spec does not marshal: " + err.Error())
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// Model is one deployable network of the campaign's registry: a quantized
// model plus the input sample every device of the fleet infers on. The
// model is read-only during campaigns and safe to share across workers.
// Proto, when set by the registry (the serve model cache builds it once
// per prepared model), is the deploy-once provisioning prototype; when
// nil, campaigns build their own.
type Model struct {
	Net   string
	QM    *dnn.QuantModel
	Input []fixed.Q15
	Proto *Prototype
}

// RuntimeByName resolves a runtime name to a fresh instance: the fixed
// Fig. 9 set plus parameterized "tile-N" and "ckpt-N" forms.
func RuntimeByName(name string) (core.Runtime, error) {
	return RuntimeByNameTape(name, false)
}

// RuntimeByNameTape is RuntimeByName with the pre-decoded op-tape
// executor selected: every resolved runtime gets its Tape knob set, so a
// whole fleet can A/B the tape against the interpreted walk from one
// spec field.
func RuntimeByNameTape(name string, tape bool) (core.Runtime, error) {
	switch name {
	case "base":
		return baseline.Base{Tape: tape}, nil
	case "sonic":
		return sonic.SONIC{Tape: tape}, nil
	case "tails":
		return tails.TAILS{Tape: tape}, nil
	}
	// A malformed parameter on a recognized "tile-"/"ckpt-" prefix is not
	// an unknown runtime: report what is actually wrong with it.
	if n, ok := strings.CutPrefix(name, "tile-"); ok {
		size, err := strconv.Atoi(n)
		if err != nil {
			return nil, fmt.Errorf("fleet: runtime %q: tile size %q is not a number", name, n)
		}
		if size <= 0 {
			return nil, fmt.Errorf("fleet: runtime %q: tile size must be positive, got %d", name, size)
		}
		return baseline.Tile{TileSize: size, Tape: tape}, nil
	}
	if n, ok := strings.CutPrefix(name, "ckpt-"); ok {
		iv, err := strconv.Atoi(n)
		if err != nil {
			return nil, fmt.Errorf("fleet: runtime %q: checkpoint interval %q is not a number", name, n)
		}
		if iv <= 0 {
			return nil, fmt.Errorf("fleet: runtime %q: checkpoint interval must be positive, got %d", name, iv)
		}
		return checkpoint.Checkpoint{Interval: iv, Tape: tape}, nil
	}
	return nil, fmt.Errorf("fleet: unknown runtime %q", name)
}
