package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/mem"
)

// Prototype is the deploy-once template for one model: a scratch device is
// deployed a single time and its post-deploy FRAM/SRAM captured with the
// page-shared snapshot machinery. Every pooled fleet device of that model
// is then provisioned by restoring the snapshots in place instead of
// re-running Deploy. Deploy is a pure function of the model (executor
// choices — tape, fusion — only affect how inference runs, not the
// flashed image), so one prototype serves every runtime and power class
// of a campaign, and prototypes are immutable and safe to share across
// campaigns and workers.
type Prototype struct {
	model      Model
	fram, sram *mem.Snapshot
}

// NewPrototype deploys m once onto a scratch device and snapshots the
// resulting banks.
func NewPrototype(m Model) (*Prototype, error) {
	dev := mcu.New(energy.Continuous{})
	if _, err := core.Deploy(dev, m.QM); err != nil {
		return nil, fmt.Errorf("fleet: prototype deploy %s: %w", m.Net, err)
	}
	return &Prototype{model: m, fram: dev.FRAM.Snapshot(nil, nil), sram: dev.SRAM.Snapshot(nil, nil)}, nil
}

// ProvisionStats counts provisioning work across a campaign. It is
// observability, not results: slot counts depend on how many workers ran
// and what they were scheduled, so these counters live outside Aggregates
// and Summary and are excluded from every bit-identity oracle.
type ProvisionStats struct {
	Prototypes   int64 `json:"prototypes"`    // prototype deploys (one per campaign model, shared)
	SlotDeploys  int64 `json:"slot_deploys"`  // pool-slot cold deploys (≤ workers × models)
	Restores     int64 `json:"restores"`      // devices provisioned by COW restore-in-place
	FreshDeploys int64 `json:"fresh_deploys"` // devices provisioned by full fresh deploy
	PagesCopied  int64 `json:"pages_copied"`  // snapshot pages rewritten during restores
	PagesClean   int64 `json:"pages_clean"`   // pages compared and found untouched
	PagesSkipped int64 `json:"pages_skipped"` // pages skipped wholesale (region never written)
}

// Add accumulates b into a. The serve front-end folds each finished
// campaign's counters into its process-lifetime stats with it.
func (a *ProvisionStats) Add(b ProvisionStats) {
	a.Prototypes += b.Prototypes
	a.SlotDeploys += b.SlotDeploys
	a.Restores += b.Restores
	a.FreshDeploys += b.FreshDeploys
	a.PagesCopied += b.PagesCopied
	a.PagesClean += b.PagesClean
	a.PagesSkipped += b.PagesSkipped
}

// Slot is one pooled device: a device deployed once from a prototype's
// model, whose banks are thereafter rewound by restore-in-place between
// simulations. The mem.Memory objects, every *mem.Region, and therefore
// the Image are stable for the slot's life; per-slot dirty-page hints
// remember which pages previous runs touched so steady-state restores
// copy only those. Exported so cmd/bench can A/B the provisioning path
// (fresh mcu.New + Deploy vs Provision) in isolation.
type Slot struct {
	proto    *Prototype
	dev      *mcu.Device
	img      *core.Image
	framHint *mem.DirtyPages
	sramHint *mem.DirtyPages
}

// NewSlot deploys the slot's own device. The deploy is deterministic, so
// the freshly deployed banks already equal the prototype snapshots — the
// first restore verifies that page by page (everything Deploy wrote is
// marked dirty) and later ones lean on the dirty tracking.
func NewSlot(p *Prototype) (*Slot, error) {
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, p.model.QM)
	if err != nil {
		return nil, fmt.Errorf("fleet: slot deploy %s: %w", p.model.Net, err)
	}
	return &Slot{
		proto: p, dev: dev, img: img,
		framHint: mem.NewDirtyPages(p.fram),
		sramHint: mem.NewDirtyPages(p.sram),
	}, nil
}

// Provision rewinds the slot to the prototype image and binds a fresh
// power system, leaving the device indistinguishable — for everything a
// simulation can observe — from a freshly constructed, freshly deployed
// one (TestProvisionedFleetBitIdentical, TestPoolPurityAfterBrownOut).
func (s *Slot) Provision(power energy.System, noFuse bool, st *ProvisionStats) error {
	fst, err := s.proto.fram.RestoreInPlace(s.dev.FRAM, s.framHint)
	if err != nil {
		return fmt.Errorf("fleet: provisioning %s FRAM: %w", s.proto.model.Net, err)
	}
	sst, err := s.proto.sram.RestoreInPlace(s.dev.SRAM, s.sramHint)
	if err != nil {
		return fmt.Errorf("fleet: provisioning %s SRAM: %w", s.proto.model.Net, err)
	}
	s.dev.Reprovision(power)
	s.dev.NoFuse = noFuse
	s.dev.TrackWasted(true)
	st.Restores++
	st.PagesCopied += int64(fst.Copied + sst.Copied)
	st.PagesClean += int64(fst.Clean + sst.Clean)
	st.PagesSkipped += int64(fst.Skipped + sst.Skipped)
	return nil
}

// pool holds one worker's reusable devices, one slot per model, created
// lazily on first use. Pools are single-worker-owned and need no locks;
// their stats are folded into the campaign when the worker exits.
type pool struct {
	fresh  bool // Spec.Fresh: bypass slots, fully re-deploy every device
	protos map[string]*Prototype
	slots  map[string]*Slot
	stats  ProvisionStats
}

func (c *Campaign) newPool() *pool {
	return &pool{fresh: c.spec.Fresh, protos: c.protos, slots: make(map[string]*Slot, len(c.protos))}
}

// simulate runs one device instance through this worker's pool — or, for
// a Fresh campaign, through the fresh-deploy path — and extracts its
// stats. Pooled and fresh simulations are bit-identical.
func (p *pool) simulate(ds DeviceSpec, m Model, rt core.Runtime, noFuse bool) (DeviceStats, error) {
	if p.fresh {
		p.stats.FreshDeploys++
		return simulate(ds, m, rt, noFuse)
	}
	sl := p.slots[ds.Model]
	if sl == nil {
		var err error
		if sl, err = NewSlot(p.protos[ds.Model]); err != nil {
			return DeviceStats{}, err
		}
		p.slots[ds.Model] = sl
		p.stats.SlotDeploys++
	}
	power, err := ds.Power.New(ds.HarvestSeed)
	if err != nil {
		return DeviceStats{}, err
	}
	if err := sl.Provision(power, noFuse, &p.stats); err != nil {
		return DeviceStats{}, fmt.Errorf("fleet: device %d: %w", ds.Index, err)
	}
	return runDevice(sl.dev, sl.img, ds, m, rt)
}
