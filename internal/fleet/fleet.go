package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mcu"
)

// DeviceStats is the per-device metric record a simulation extracts. It
// is consumed immediately by the shard aggregates and never retained, so
// fleet memory stays independent of fleet size.
type DeviceStats struct {
	Completed bool
	// IMpJ is inferences per millijoule of consumed energy — the fleet
	// form of the paper's energy-efficiency axis (zero for devices whose
	// runtime does not complete on their power system).
	IMpJ float64
	// FirstInferSec is the latency from first boot to the first completed
	// inference: live execution plus every recharge wait the run actually
	// incurred.
	FirstInferSec float64
	Reboots       int
	EnergyPJ      int64
	WastedNJ      float64
	// Ops is the total number of charged ops the device executed across
	// all kinds — the work denominator for fleet throughput readouts.
	Ops int64
}

// simulate runs one device instance to its first inference and extracts
// its stats. Wasted-work accounting runs device-native (Device.TrackWasted
// replicates the trace analysis arithmetic bit-exactly) instead of through
// a per-device trace buffer, which would disqualify the fused kernel fast
// path — a tracer must see every op.
func simulate(ds DeviceSpec, m Model, rt core.Runtime, noFuse bool) (DeviceStats, error) {
	power, err := ds.Power.New(ds.HarvestSeed)
	if err != nil {
		return DeviceStats{}, err
	}
	dev := mcu.New(power)
	dev.NoFuse = noFuse
	dev.TrackWasted(true)
	img, err := core.Deploy(dev, m.QM)
	if err != nil {
		return DeviceStats{}, fmt.Errorf("fleet: deploy %s on device %d: %w", m.Net, ds.Index, err)
	}
	return runDevice(dev, img, ds, m, rt)
}

// runDevice drives one prepared (deployed, powered) device through its
// inference and extracts the per-device stats. It is shared between the
// fresh-deploy path above and the pooled provisioning path, so the two
// can only diverge in how the device was prepared — which the
// provisioned-≡-fresh oracle pins down.
func runDevice(dev *mcu.Device, img *core.Image, ds DeviceSpec, m Model, rt core.Runtime) (DeviceStats, error) {
	_, ierr := rt.Infer(img, m.Input)
	st := dev.Stats()
	out := DeviceStats{
		Reboots:  st.Reboots,
		EnergyPJ: st.EnergyPJ,
		WastedNJ: dev.WastedNJ(),
	}
	for _, n := range st.OpCount {
		out.Ops += n
	}
	if ierr != nil {
		if errors.Is(ierr, mcu.ErrDoesNotComplete) {
			return out, nil // a DNC device is a data point, not a failure
		}
		return out, fmt.Errorf("fleet: device %d (%s/%s/%s): %w", ds.Index, m.Net, ds.Runtime, ds.Power.Name, ierr)
	}
	out.Completed = true
	out.FirstInferSec = st.TotalSeconds(dev.Cost.ClockHz)
	if mj := st.EnergyMJ(); mj > 0 {
		out.IMpJ = 1 / mj
	}
	return out, nil
}

// Aggregates is the mergeable accumulator of fleet-wide statistics. All
// integer fields merge by addition; the sketches and histograms merge by
// their own order-independent (histograms) or fixed-order (sketches)
// rules. Its memory is O(sketch compression + histogram bins), fixed for
// the life of a campaign.
type Aggregates struct {
	Devices   int64
	Completed int64
	DNC       int64 // devices whose runtime cannot finish on their power
	Reboots   int64
	EnergyPJ  int64   // total consumed, integer picojoules (order-free sum)
	WastedNJ  float64 // total re-executed energy across the fleet
	// Ops is the fleet-wide charged-op total. It feeds the serving API's
	// throughput counters and is deliberately NOT part of Summary, whose
	// byte-identical form across executors is load-bearing for A/B checks.
	Ops int64

	IMpJ       *Sketch // inferences per millijoule, completed devices
	FirstSec   *Sketch // latency to first inference, completed devices
	RebootHist *Hist   // reboots per device (bin i = exactly i, last = more)
	WastedHist *Hist   // wasted nJ per device, log bins
}

// Histogram shapes: reboot counts resolve exactly up to rebootHistMax,
// wasted energy spans sub-nJ to tens of J at 4 bins per decade.
const rebootHistMax = 64

func newAggregates() *Aggregates {
	return &Aggregates{
		IMpJ:       NewSketch(0),
		FirstSec:   NewSketch(0),
		RebootHist: NewLinearHist(rebootHistMax),
		WastedHist: NewLogHist(1, 10, 4),
	}
}

// observe folds one device's stats in.
func (a *Aggregates) observe(st DeviceStats) {
	a.Devices++
	a.Reboots += int64(st.Reboots)
	a.EnergyPJ += st.EnergyPJ
	a.WastedNJ += st.WastedNJ
	a.Ops += st.Ops
	a.RebootHist.Add(float64(st.Reboots))
	a.WastedHist.Add(st.WastedNJ)
	if st.Completed {
		a.Completed++
		a.IMpJ.Add(st.IMpJ)
		a.FirstSec.Add(st.FirstInferSec)
	} else {
		a.DNC++
	}
}

// merge folds o into a without modifying o, so live shard aggregates can
// be merged into snapshot accumulators mid-run.
func (a *Aggregates) merge(o *Aggregates) error {
	a.Devices += o.Devices
	a.Completed += o.Completed
	a.DNC += o.DNC
	a.Reboots += o.Reboots
	a.EnergyPJ += o.EnergyPJ
	a.WastedNJ += o.WastedNJ
	a.Ops += o.Ops
	a.IMpJ.Merge(o.IMpJ)
	a.FirstSec.Merge(o.FirstSec)
	if err := a.RebootHist.Merge(o.RebootHist); err != nil {
		return err
	}
	return a.WastedHist.Merge(o.WastedHist)
}

// Quantiles is a fixed percentile readout of one sketch.
type Quantiles struct {
	Min float64 `json:"min"`
	P10 float64 `json:"p10"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func quantilesOf(s *Sketch) Quantiles {
	if s.Count() == 0 {
		return Quantiles{}
	}
	return Quantiles{
		Min: s.Min(),
		P10: s.Quantile(0.10),
		P50: s.Quantile(0.50),
		P90: s.Quantile(0.90),
		P99: s.Quantile(0.99),
		Max: s.Max(),
	}
}

// Summary is the JSON-ready aggregate view the serving API streams.
type Summary struct {
	Devices      int64     `json:"devices"`
	Completed    int64     `json:"completed"`
	DNC          int64     `json:"dnc"`
	Reboots      int64     `json:"reboots"`
	EnergyJ      float64   `json:"energy_j"`
	WastedJ      float64   `json:"wasted_j"`
	IMpJ         Quantiles `json:"impj"`
	FirstInferS  Quantiles `json:"first_infer_s"`
	RebootHist   []Bucket  `json:"reboot_hist"`
	WastedNJHist []Bucket  `json:"wasted_nj_hist"`
}

// Summary materializes the aggregate readout.
func (a *Aggregates) Summary() Summary {
	return Summary{
		Devices:      a.Devices,
		Completed:    a.Completed,
		DNC:          a.DNC,
		Reboots:      a.Reboots,
		EnergyJ:      float64(a.EnergyPJ) * 1e-12,
		WastedJ:      a.WastedNJ * 1e-9,
		IMpJ:         quantilesOf(a.IMpJ),
		FirstInferS:  quantilesOf(a.FirstSec),
		RebootHist:   a.RebootHist.Buckets(),
		WastedNJHist: a.WastedHist.Buckets(),
	}
}

// Result is a finished (or snapshotted) campaign's output. Provision
// counts provisioning work (prototype/slot deploys, restores, page
// traffic); unlike Agg it depends on worker scheduling, so it is not part
// of the campaign's deterministic result.
type Result struct {
	Spec      Spec
	Done      int
	Agg       *Aggregates
	Provision ProvisionStats
}

// shard is one logical aggregation unit. Exactly one worker owns a shard
// at a time during Run; the mutex exists so Snapshot can read live shards
// concurrently with that worker.
type shard struct {
	mu  sync.Mutex
	agg *Aggregates
}

// Campaign is an in-flight fleet sweep: construct with NewCampaign, drive
// with Run, observe with Progress/Snapshot from any goroutine.
type Campaign struct {
	spec   Spec
	models map[string]Model
	rts    map[string]core.Runtime
	protos map[string]*Prototype // nil when spec.Fresh
	shards []*shard
	done   atomic.Int64

	provMu sync.Mutex
	prov   ProvisionStats
}

// NewCampaign validates the spec against the model registry and prepares
// the shard aggregates.
func NewCampaign(spec Spec, models map[string]Model) (*Campaign, error) {
	if err := spec.Validate(models); err != nil {
		return nil, err
	}
	c := &Campaign{spec: spec, models: models, rts: make(map[string]core.Runtime)}
	for _, name := range spec.Runtimes {
		rt, err := RuntimeByNameTape(name, spec.Tape)
		if err != nil {
			return nil, err
		}
		c.rts[name] = rt
	}
	if !spec.Fresh {
		c.protos = make(map[string]*Prototype, len(spec.Models))
		for _, name := range spec.Models {
			if _, ok := c.protos[name]; ok {
				continue
			}
			m := c.models[name]
			if m.Proto != nil {
				// A registry-cached prototype (the serve model cache builds
				// one per prepared model) saves even the campaign's single
				// prototype deploy.
				c.protos[name] = m.Proto
				continue
			}
			proto, err := NewPrototype(m)
			if err != nil {
				return nil, err
			}
			c.protos[name] = proto
			c.prov.Prototypes++
		}
	}
	c.shards = make([]*shard, spec.shardCount())
	for i := range c.shards {
		c.shards[i] = &shard{agg: newAggregates()}
	}
	return c, nil
}

// Spec returns the campaign's spec.
func (c *Campaign) Spec() Spec { return c.spec }

// Progress reports devices simulated so far and the fleet size.
func (c *Campaign) Progress() (done, total int) {
	return int(c.done.Load()), c.spec.Devices
}

// Snapshot merges the current shard aggregates into a fresh Result — the
// streamed mid-campaign view. Snapshotting never mutates shard state, so
// it cannot perturb the final deterministic aggregates.
func (c *Campaign) Snapshot() (*Result, error) {
	agg := newAggregates()
	for _, sh := range c.shards {
		sh.mu.Lock()
		err := agg.merge(sh.agg)
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	c.provMu.Lock()
	prov := c.prov
	c.provMu.Unlock()
	return &Result{Spec: c.spec, Done: int(c.done.Load()), Agg: agg, Provision: prov}, nil
}

// Run sweeps the fleet across workers goroutines (GOMAXPROCS when <= 0).
// Workers claim whole shards; shard s simulates devices s, s+S, s+2S, ...
// in index order, so the aggregation sequence of every shard — and hence
// the merged result — is identical under any worker count. Cancelling the
// context stops the sweep and returns the context's error. Any worker
// error likewise cancels the sweep, so peers stop at their next device
// instead of simulating the rest of the fleet behind a lost cause.
func (c *Campaign) Run(ctx context.Context, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.shards) {
		workers = len(c.shards)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker provisions its devices from a private pool: one
			// reusable device per model, rewound by COW restore between
			// devices. Pool state never crosses workers, and the simulation
			// a device runs is bit-identical to a fresh deploy, so shard
			// results stay a pure function of (spec, index).
			pool := c.newPool()
			defer func() {
				c.provMu.Lock()
				c.prov.Add(pool.stats)
				c.provMu.Unlock()
			}()
			for {
				s := int(next.Add(1) - 1)
				if s >= len(c.shards) {
					return
				}
				if errs[w] = c.runShard(ctx, s, pool); errs[w] != nil {
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Prefer a worker's real failure over the context.Canceled fallout its
	// cancellation induced in the peers.
	var first error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
		if first == nil && err != nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return c.Snapshot()
}

// runShard simulates every device of shard s in index order, provisioning
// each from the owning worker's pool.
func (c *Campaign) runShard(ctx context.Context, s int, pool *pool) error {
	sh := c.shards[s]
	stride := len(c.shards)
	for i := s; i < c.spec.Devices; i += stride {
		if err := ctx.Err(); err != nil {
			return err
		}
		ds := c.spec.Device(i)
		st, err := pool.simulate(ds, c.models[ds.Model], c.rts[ds.Runtime], c.spec.NoFuse)
		if err != nil {
			return err
		}
		sh.mu.Lock()
		sh.agg.observe(st)
		sh.mu.Unlock()
		c.done.Add(1)
	}
	return nil
}

// Run is the one-shot form: build a campaign and sweep it.
func Run(ctx context.Context, spec Spec, models map[string]Model, workers int) (*Result, error) {
	c, err := NewCampaign(spec, models)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx, workers)
}
