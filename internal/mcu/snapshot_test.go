package mcu_test

import (
	"reflect"
	"testing"

	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/mem"
)

// rig allocates a deterministic region layout used by the scripted
// workload, so golden, scratch, and fork devices all match.
type rig struct {
	dev              *mcu.Device
	state, buf, roll *mem.Region
	scratch          *mem.Region
}

func newRig(power energy.System) *rig {
	d := mcu.New(power)
	d.EnableWARCheck()
	r := &rig{
		dev:     d,
		state:   d.FRAM.MustAlloc("state", 64, 2),
		buf:     d.FRAM.MustAlloc("buf", 600, 2),
		roll:    d.FRAM.MustAlloc("roll", 600, 2),
		scratch: d.FRAM.MustAlloc("scratch", 64, 2),
	}
	// Setup-time host writes, as deploy/LoadInput do.
	for i := 0; i < r.buf.Len(); i++ {
		r.buf.Put(i, int64(i*3+1))
	}
	return r
}

// workload issues a deterministic mix of everything the journal must
// capture: scalar loads/stores, bulk store and DMA batches, section flips,
// commits, host-side writes between charged ops, and WAR traffic (reads
// followed by unlogged overwrites).
func (r *rig) workload() {
	d := r.dev
	for step := 0; step < 40; step++ {
		layer := "conv"
		if step%3 == 1 {
			layer = "dense"
		}
		d.SetSection(layer, mcu.PhaseKernel)
		base := (step * 13) % (r.buf.Len() - 32)
		for i := 0; i < 8; i++ {
			v := d.Load(r.buf, base+i)
			d.Store(r.scratch, i%r.scratch.Len(), v+int64(step))
		}
		// WAR hazard: read a rolling word, then overwrite it un-logged.
		w := step % r.roll.Len()
		_ = d.Load(r.roll, w)
		d.Store(r.roll, w, int64(step))

		d.SetSection(layer, mcu.PhaseControl)
		vs := make([]int64, 24)
		for i := range vs {
			vs[i] = int64(step*100 + i)
		}
		d.StoreRange(r.roll, (step*24)%(r.roll.Len()-24), vs)
		d.DMA(r.buf, (step*16)%(r.buf.Len()-16), r.roll, 0, 16)
		d.Ops(mcu.OpFixedMul, 20+step%7)
		// Host-side bookkeeping write between charged ops.
		r.state.Put(step%r.state.Len(), int64(step*7))
		if step%4 == 3 {
			d.StoreIndex(r.state, 0, int64(step))
			d.Progress()
		}
	}
}

// framSum walks every FRAM word through the public region accessors.
func framSum(d *mcu.Device) int64 {
	var s int64 = 1469598103
	for ri := 0; ri < d.FRAM.Regions(); ri++ {
		r := d.FRAM.RegionAt(ri)
		for i := 0; i < r.Len(); i++ {
			s = s*1099511628211 + r.Get(i)
		}
	}
	return s
}

// opsUntilFail drives plain ops until the next brown-out, pinning the
// power system's hidden cursor position.
func opsUntilFail(d *mcu.Device) int {
	n := 0
	d.Attempt(func() {
		for i := 0; i < 200_000; i++ {
			d.Op(mcu.OpBranch)
			n++
		}
	})
	return n
}

// TestDeviceSnapshotRoundTrip: a full-device snapshot restores memory,
// power, accounting, and WAR state bit-exactly — the restored device's
// stats and forward behavior match a twin that stopped at the snapshot.
func TestDeviceSnapshotRoundTrip(t *testing.T) {
	r := newRig(energy.NewFailSchedule([]int{100_000}))
	r.workload()
	snap, err := r.dev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Diverge, then restore. The reference state is a twin that ran the
	// same prefix and stopped where the snapshot was taken.
	r.workload()
	if err := r.dev.Restore(snap); err != nil {
		t.Fatal(err)
	}
	twin := newRig(energy.NewFailSchedule([]int{100_000}))
	twin.workload()
	if got, want := *r.dev.Stats(), *twin.dev.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored stats diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := framSum(r.dev), framSum(twin.dev); got != want {
		t.Errorf("restored FRAM diverged: %d vs %d", got, want)
	}
	if got, want := r.dev.WARViolations(), twin.dev.WARViolations(); !reflect.DeepEqual(got, want) {
		t.Errorf("restored WAR records diverged:\n got %v\nwant %v", got, want)
	}
	// Forward behavior, including the power schedule's hidden cursor.
	if got, want := opsUntilFail(r.dev), opsUntilFail(twin.dev); got != want {
		t.Errorf("post-restore brown-out position %d, twin %d", got, want)
	}
}

// TestJournalForkMatchesScratch: for brown-out placements across the whole
// run — including mid-batch ones — a fork served from the golden journal
// is bit-identical to a from-scratch run stopped at its first brown-out
// and rebooted: same stats, same FRAM image, same WAR verdicts, same
// section, same forward power behavior.
func TestJournalForkMatchesScratch(t *testing.T) {
	golden := newRig(energy.Continuous{})
	j := golden.dev.StartJournal(512)
	golden.workload()
	golden.dev.StopJournal()
	total := j.MaxOp()
	if total < 1000 {
		t.Fatalf("workload too small to exercise the train: %d ops", total)
	}
	if j.Snapshots() < 3 {
		t.Fatalf("snapshot train too short: %d", j.Snapshots())
	}

	for b := int64(1); b <= total; b += 7 {
		// From-scratch: run to the first brown-out on op b, then reboot.
		// The second gap makes the post-reboot cursor position observable.
		scratch := newRig(energy.NewFailSchedule([]int{int(b), 1000}))
		if scratch.dev.Attempt(scratch.workload) {
			t.Fatalf("b=%d: scratch run did not brown out", b)
		}
		if err := scratch.dev.Reboot(); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}

		// Fork: fresh identically-deployed device, prefix restored.
		fork := newRig(energy.NewFailSchedule([]int{int(b), 1000}))
		if err := j.RestorePrefix(fork.dev, b); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}

		if got, want := *fork.dev.Stats(), *scratch.dev.Stats(); !reflect.DeepEqual(got, want) {
			t.Fatalf("b=%d: fork stats diverged:\n got %+v\nwant %+v", b, got, want)
		}
		if got, want := framSum(fork.dev), framSum(scratch.dev); got != want {
			t.Fatalf("b=%d: fork FRAM diverged", b)
		}
		if fork.dev.WARCount() != scratch.dev.WARCount() {
			t.Fatalf("b=%d: WAR count %d vs %d", b, fork.dev.WARCount(), scratch.dev.WARCount())
		}
		if got, want := fork.dev.WARViolations(), scratch.dev.WARViolations(); !reflect.DeepEqual(got, want) {
			t.Fatalf("b=%d: WAR records diverged:\n got %v\nwant %v", b, got, want)
		}
		gl, gp := fork.dev.Section()
		wl, wp := scratch.dev.Section()
		if gl != wl || gp != wp {
			t.Fatalf("b=%d: section %s/%s vs %s/%s", b, gl, gp, wl, wp)
		}
		if got, want := opsUntilFail(fork.dev), opsUntilFail(scratch.dev); got != want {
			t.Fatalf("b=%d: forward brown-out position %d vs %d", b, got, want)
		}
	}
}

// TestJournalBoundsRejected: placements outside the recorded range error
// instead of silently restoring garbage.
func TestJournalBoundsRejected(t *testing.T) {
	golden := newRig(energy.Continuous{})
	j := golden.dev.StartJournal(0)
	golden.workload()
	golden.dev.StopJournal()

	fork := newRig(energy.NewFailSchedule([]int{1}))
	if err := j.RestorePrefix(fork.dev, 0); err == nil {
		t.Fatal("boundary 0 accepted")
	}
	if err := j.RestorePrefix(fork.dev, j.MaxOp()+1); err == nil {
		t.Fatal("boundary past the recording accepted")
	}
}
