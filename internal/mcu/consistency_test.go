package mcu

import (
	"testing"

	"repro/internal/energy"
)

func TestWARCheckFlagsReadThenWrite(t *testing.T) {
	d := New(energy.Continuous{})
	d.EnableWARCheck()
	r := d.FRAM.MustAlloc("data", 8, 2)
	d.SetSection("fc", PhaseKernel)

	d.Load(r, 3)
	d.Store(r, 3, 42)
	if d.WARCount() != 1 {
		t.Fatalf("WARCount = %d, want 1", d.WARCount())
	}
	v := d.WARViolations()[0]
	if v.Region != "data" || v.Index != 3 || v.Layer != "fc" || v.Phase != PhaseKernel {
		t.Errorf("violation metadata = %+v", v)
	}
	if v.Op != 2 {
		t.Errorf("violation op = %d, want 2 (the flagging store)", v.Op)
	}
}

func TestWARCheckProgressResetsRegion(t *testing.T) {
	d := New(energy.Continuous{})
	d.EnableWARCheck()
	r := d.FRAM.MustAlloc("data", 8, 2)

	d.Load(r, 0)
	d.Progress()
	d.Store(r, 0, 1)
	if d.WARCount() != 0 {
		t.Fatalf("write in fresh commit region flagged (%d violations)", d.WARCount())
	}
}

func TestWARCheckAttemptFailureResetsRegion(t *testing.T) {
	d := New(energy.NewFailAfterOps(2, 0))
	d.EnableWARCheck()
	r := d.FRAM.MustAlloc("data", 8, 2)

	if d.Attempt(func() {
		d.Load(r, 0)     // op 1
		d.Store(r, 5, 0) // op 2: brown-out, store never lands
	}) {
		t.Fatal("attempt should have browned out")
	}
	if err := d.Reboot(); err != nil {
		t.Fatal(err)
	}
	// The aborted region's read must not poison the replay.
	if !d.Attempt(func() {
		d.Store(r, 0, 1)
	}) {
		t.Fatal("retry browned out unexpectedly")
	}
	if d.WARCount() != 0 {
		t.Fatalf("replay write flagged (%d violations)", d.WARCount())
	}
}

func TestWARCheckProtocolAndLogged(t *testing.T) {
	d := New(energy.Continuous{})
	proto := d.FRAM.MustAlloc("ctl", 8, 2)
	d.MarkProtocol(proto) // before enable: must survive EnableWARCheck
	d.EnableWARCheck()
	data := d.FRAM.MustAlloc("data", 8, 2)

	d.Load(proto, 0)
	d.Store(proto, 0, 1)
	if d.WARCount() != 0 {
		t.Fatal("protocol region flagged")
	}

	d.Load(data, 1)
	d.MarkLogged(data, 1)
	d.Store(data, 1, 7)
	if d.WARCount() != 0 {
		t.Fatal("undo-logged word flagged")
	}

	// MarkProtocol after enable works too.
	late := d.FRAM.MustAlloc("late", 4, 2)
	d.MarkProtocol(late)
	d.Load(late, 0)
	d.Store(late, 0, 1)
	if d.WARCount() != 0 {
		t.Fatal("late protocol region flagged")
	}
}

func TestWARCheckDMA(t *testing.T) {
	d := New(energy.Continuous{})
	d.EnableWARCheck()
	a := d.FRAM.MustAlloc("a", 8, 2)
	b := d.FRAM.MustAlloc("b", 8, 2)

	// DMA read of a, then DMA overwrite of the same words: WAR.
	d.DMA(b, 0, a, 0, 4)
	d.DMA(a, 0, b, 0, 4)
	if d.WARCount() != 4 {
		t.Fatalf("WARCount = %d, want 4 (one per overwritten word)", d.WARCount())
	}
}

func TestWARCheckDisabledByDefault(t *testing.T) {
	d := New(energy.Continuous{})
	if d.WARCheckEnabled() {
		t.Fatal("WAR checking on by default; it must be opt-in")
	}
	r := d.FRAM.MustAlloc("data", 8, 2)
	d.Load(r, 0)
	d.Store(r, 0, 1)
	if d.WARCount() != 0 {
		t.Fatal("violations recorded while disabled")
	}
}

func TestMaxRegionOps(t *testing.T) {
	d := New(energy.Continuous{})
	r := d.FRAM.MustAlloc("data", 8, 2)
	for i := 0; i < 5; i++ {
		d.Store(r, 0, int64(i))
	}
	d.Progress() // region of 5 ops
	d.Store(r, 0, 9)
	d.Progress() // region of 1 op
	if got := d.Stats().MaxRegionOps; got != 5 {
		t.Fatalf("MaxRegionOps = %d, want 5", got)
	}
}
