package mcu

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/mem"
)

// powerFailure is the panic sentinel raised when the energy buffer empties.
// It never escapes the package: Attempt recovers it.
type powerFailure struct{}

// ErrDoesNotComplete is returned when a program makes no progress across
// maxRebootsWithoutProgress consecutive charge cycles — the non-termination
// condition of §2.1 (e.g., a task that needs more energy than the device
// can buffer).
var ErrDoesNotComplete = errors.New("mcu: does not complete (no progress across charge cycles)")

// maxRebootsWithoutProgress is how many full charge cycles a program may
// burn with no committed progress before the run is declared
// non-terminating.
const maxRebootsWithoutProgress = 4

// Phase labels execution for the kernel/control breakdown of Fig. 10.
type Phase string

// Execution phases.
const (
	PhaseKernel     Phase = "kernel"
	PhaseControl    Phase = "control"
	PhaseTransition Phase = "transition"
)

// Section attributes operations to a layer and phase for the per-layer
// breakdowns in Figs. 9, 10, and 12.
type Section struct {
	Layer string
	Phase Phase
}

// SectionStats accumulates costs within one section. Energy accumulates in
// integer picojoules (EnergyPJ, OpEnergyPJ) so that charging n ops in one
// bulk update is bit-identical to n scalar updates — integer addition is
// associative where float64 accumulation is not. Use the EnergyNJ /
// OpEnergyNJ accessors for the nanojoule views.
type SectionStats struct {
	Cycles     int64
	EnergyPJ   int64
	OpCount    [NumOps]int64
	OpEnergyPJ [NumOps]int64
}

// EnergyNJ returns the section's consumed energy in nanojoules.
func (s *SectionStats) EnergyNJ() float64 { return float64(s.EnergyPJ) * 1e-3 }

// OpEnergyNJ returns the section's energy spent on one op kind in nJ.
func (s *SectionStats) OpEnergyNJ(k OpKind) float64 { return float64(s.OpEnergyPJ[k]) * 1e-3 }

// Stats is the device's full accounting. Energy accumulates in integer
// picojoules for the same bulk/scalar bit-exactness reason as SectionStats.
type Stats struct {
	LiveCycles  int64
	DeadSeconds float64
	Reboots     int
	EnergyPJ    int64
	OpCount     [NumOps]int64
	OpEnergyPJ  [NumOps]int64
	Sections    map[Section]*SectionStats

	// MaxRegionOps is the largest op count observed between consecutive
	// durable commits (Progress calls) — the program's atomic-region size.
	// Any charge cycle funding fewer ops than this can fail to make
	// progress, so fault-injection campaigns use it as the liveness floor
	// for fuzzed failure schedules.
	MaxRegionOps int64
}

// LiveSeconds converts live cycles to seconds at the given clock.
func (s *Stats) LiveSeconds(clockHz float64) float64 {
	return float64(s.LiveCycles) / clockHz
}

// TotalSeconds is live plus dead time.
func (s *Stats) TotalSeconds(clockHz float64) float64 {
	return s.LiveSeconds(clockHz) + s.DeadSeconds
}

// EnergyNJ returns total consumed energy in nanojoules.
func (s *Stats) EnergyNJ() float64 { return float64(s.EnergyPJ) * 1e-3 }

// OpEnergy returns the per-kind energy breakdown in nanojoules.
func (s *Stats) OpEnergy() [NumOps]float64 {
	var out [NumOps]float64
	for k, pj := range s.OpEnergyPJ {
		out[k] = float64(pj) * 1e-3
	}
	return out
}

// EnergyMJ returns total consumed energy in millijoules.
func (s *Stats) EnergyMJ() float64 { return float64(s.EnergyPJ) * 1e-9 }

// Device is the simulated MCU.
type Device struct {
	FRAM  *mem.Memory
	SRAM  *mem.Memory
	Power energy.System
	Cost  CostModel

	// JITIndexCheckpoint enables the future-architecture feature of §10:
	// a small hardware cache holds hot index variables and flushes them to
	// FRAM just in time at brown-out (using residual decoupling charge),
	// so per-iteration progress stores cost an SRAM write instead of a
	// FRAM write. The paper estimates this alone saves ~14% of SONIC's
	// system energy. StoreIndex honours the flag.
	JITIndexCheckpoint bool

	// ForceScalar disables the bulk-charge fast path: Ops and the Range
	// helpers charge one op at a time through the scalar Consume loop.
	// The differential oracle (internal/intermittest) flips this knob to
	// prove the two paths produce bit-identical results.
	ForceScalar bool

	// NoFuse disables the fused-kernel fast path (CanFuse returns false)
	// while keeping the bulk-charge path: executors fall back to their
	// per-word scalar loops. The fused/scalar differential oracle and the
	// cmd/bench A/B pairs flip this knob.
	NoFuse bool

	stats    Stats
	section  Section
	secStats *SectionStats

	// memoLayer/memoStats cache the resolved SectionStats for every phase
	// of the layer currently being attributed. Runtimes rotate through a
	// layer's kernel, control, and transition phases on every loop
	// iteration (the task runtime adds the transition phase, so a
	// two-entry cache thrashes), and a per-phase array turns each
	// SetSection inside a layer into an index load instead of a hashed
	// map lookup. Misses fall back to — and refill from — stats.Sections.
	memoLayer string
	memoStats [numMemoPhases]*SectionStats

	// toks holds the pre-resolved section handles handed out by
	// SectionToken; statsGen invalidates their cached stats pointers
	// whenever stats.Sections is replaced wholesale (ResetStats, snapshot
	// restore, fork prefix restore).
	toks     []tokEntry
	statsGen uint32

	// costPJ caches the cost model's energies in integer picojoules, the
	// unit Stats accumulates in (see SectionStats). Refreshed from Cost by
	// NewWithMem; devices are constructed through New/NewWithMem and Cost
	// is never mutated afterwards anywhere in the tree.
	costPJ [NumOps]int64

	// powerPJ caches Power's optional integer-picojoule consume entry point
	// (energy.PJConsumer), probed once at construction like costPJ. When
	// present, per-op charging skips the float→pJ conversion inside
	// Consume; the integer subtraction performed is identical either way.
	// intPower/contPower additionally devirtualize the two concrete power
	// systems every simulated run uses, so the per-op charge compiles to an
	// inlined integer subtract instead of an interface call.
	powerPJ   energy.PJConsumer
	intPower  *energy.Intermittent
	contPower bool

	// bulkPower caches Power's optional bulk entry point
	// (energy.BulkConsumer), probed once at construction so chargeOps
	// skips the per-call interface assertion.
	bulkPower energy.BulkConsumer

	// Wasted-work accounting (TrackWasted): pjNow mirrors the derived
	// total consumed picojoules incrementally, commitNJ is the consumed
	// energy at the last durable commit (or cycle start), and wastedNJ
	// accumulates, per browned-out charge cycle, the energy spent after
	// that cycle's last commit — the same arithmetic, on the same float64
	// values, as trace.Buffer's online analysis, so a fleet run reads the
	// figure off the device without paying for a tracer. The scalar fast
	// path maintains pjNow unconditionally (one integer add), so tracking
	// does not set slowOp; with tracking off the running value is
	// meaningless and TrackWasted resyncs it from deriveNow on enable.
	wastedTrack bool
	pjNow       int64
	commitNJ    float64
	wastedNJ    float64

	// Tracing state: tracer is the nil-checked event consumer, traceMask
	// the kinds it subscribed to (see TraceMasker), batchTrace whether
	// op-batch events are wanted, levelFn the cached energy-buffer
	// sampler, batchOps the plain-operation count aggregated since the
	// last emitted event (see trace.go).
	tracer     Tracer
	traceMask  uint32
	batchTrace bool
	levelFn    func() float64
	batchOps   int

	// Memory-consistency state: shadow is the nil-checked WAR tracker
	// (see consistency.go), protocol the regions exempted from it, and
	// warViolations/warCount the detections so far.
	shadow        *mem.Shadow
	protocol      []*mem.Region
	warViolations []WARViolation
	warCount      int

	rebootsSinceProgress int
	inAttempt            bool
	opsInRegion          int64

	// slowOp gates Op's out-of-line body: true while any per-op observer
	// or incremental mirror is attached (journal, WAR shadow, wasted-work
	// tracking, op-batch tracing). Recomputed by refreshSlowOp at every
	// attach/detach point, so the hot path tests one bool instead of four.
	slowOp bool

	// opsTotal is the op-position coordinate the snapshot/fork machinery
	// (journal.go) and the WAR shadow index everything by — the count of
	// charged operations, equal to the sum of the per-section op counts
	// (opsNow). It is maintained incrementally only on the slow op path;
	// observers that need it resync it from opsNow when they attach.
	opsTotal int64
	journal  *Journal
}

// New returns a device with the standard MSP430FR5994 memory sizes.
func New(power energy.System) *Device {
	return NewWithMem(power, mem.New(mem.FRAM, mem.DefaultFRAMBytes), mem.New(mem.SRAM, mem.DefaultSRAMBytes))
}

// NewWithMem returns a device over caller-provided memories.
func NewWithMem(power energy.System, fram, sram *mem.Memory) *Device {
	d := &Device{FRAM: fram, SRAM: sram, Cost: DefaultCostModel()}
	for k := range d.costPJ {
		d.costPJ[k] = energy.PicojoulesOf(d.Cost.Costs[k].EnergyNJ)
	}
	d.bindPower(power)
	d.stats.Sections = make(map[Section]*SectionStats)
	d.SetSection("boot", PhaseControl)
	return d
}

// bindPower installs the power system and re-probes the devirtualization
// caches that depend on its concrete type.
func (d *Device) bindPower(power energy.System) {
	d.Power = power
	d.powerPJ, _ = power.(energy.PJConsumer)
	d.bulkPower, _ = power.(energy.BulkConsumer)
	d.intPower, d.contPower = nil, false
	switch p := power.(type) {
	case *energy.Intermittent:
		d.intPower = p
	case energy.Continuous:
		d.contPower = true
	}
}

// Reprovision resets the device for reuse by a new simulated instance: a
// fresh power system is bound (re-probing the devirtualized fast paths),
// and every piece of per-run mutable state outside the memory banks —
// stats, section attribution, wasted-work mirrors, WAR verdicts,
// progress/attempt bookkeeping — is cleared without reallocating the
// banks or invalidating any *mem.Region pointer. Memory contents are the
// caller's job (the fleet pool restores them from a prototype snapshot
// before calling this). Observer configuration (journal, tracer, WAR
// shadow) is not touched; pooled devices are expected to run bare, as
// fleet simulations do.
func (d *Device) Reprovision(power energy.System) {
	d.bindPower(power)
	d.warViolations = nil
	d.warCount = 0
	d.rebootsSinceProgress = 0
	d.inAttempt = false
	d.wastedTrack = false
	d.ResetStats()
}

// Stats returns the accumulated statistics. Derived accumulators (cycles
// and energy, which are fixed integer multiples of the op counts) are
// materialized here rather than on every operation; the finalization is
// idempotent, so Stats may be called at any point during a run.
func (d *Device) Stats() *Stats {
	d.finalizeStats()
	return &d.stats
}

// finalizeStats recomputes the derived Stats fields from the per-section
// op counts — the only accounting the hot paths maintain. The global
// per-kind OpCount is their sum (every charged op is attributed to exactly
// one section), and LiveCycles and the energy accumulators are
// Σ count[k]·cost[k] with integer per-kind costs, so deriving everything
// on demand is bit-identical to accumulating it per operation.
func (d *Device) finalizeStats() {
	var totCyc, totPJ int64
	var tot [NumOps]int64
	for _, ss := range d.stats.Sections {
		var cyc, pj int64
		for k, n := range ss.OpCount {
			epj := n * d.costPJ[k]
			ss.OpEnergyPJ[k] = epj
			cyc += n * int64(d.Cost.Costs[k].Cycles)
			pj += epj
			tot[k] += n
		}
		ss.Cycles = cyc
		ss.EnergyPJ = pj
		totCyc += cyc
		totPJ += pj
	}
	d.stats.OpCount = tot
	for k, n := range tot {
		d.stats.OpEnergyPJ[k] = n * d.costPJ[k]
	}
	d.stats.LiveCycles = totCyc
	d.stats.EnergyPJ = totPJ
}

// deriveNow returns the derived live-cycle count and total consumed energy
// in picojoules without a full finalization — the tracer samples both per
// event. Summed over sections (integer addition, so order-independent).
func (d *Device) deriveNow() (cyc, pj int64) {
	for _, ss := range d.stats.Sections {
		for k, n := range ss.OpCount {
			cyc += n * int64(d.Cost.Costs[k].Cycles)
			pj += n * d.costPJ[k]
		}
	}
	return cyc, pj
}

// opsNow derives the total charged-operation count from the per-section
// accounting — the value opsTotal mirrors while a per-op observer is
// attached. Observers resync the mirror from it when they attach.
func (d *Device) opsNow() int64 {
	var n int64
	for _, ss := range d.stats.Sections {
		for _, c := range ss.OpCount {
			n += c
		}
	}
	return n
}

// refreshSlowOp recomputes the slow-path bit from the attached observers
// and mirrors. Every attach/detach point (StartJournal, StopJournal,
// SetTracer, TrackWasted, EnableWARCheck, ResetStats) calls it.
// Wasted-work tracking does not force the slow path: its consumed-energy
// mirror (pjNow) is one integer add the fast path maintains directly, so
// a fleet device — which always tracks wasted work — still runs the
// two-increment hot loop.
func (d *Device) refreshSlowOp() {
	d.slowOp = d.journal != nil || d.shadow != nil || d.batchTrace
}

// ResetStats clears accounting without touching memory or power. Any
// operations batched for the tracer but not yet emitted are discarded
// rather than carried over — they belong to the pre-reset stream, and
// flushing them after the reset would mis-attribute them to post-reset
// timestamps. The open commit region's op count is likewise zeroed so
// MaxRegionOps measures only post-reset regions.
func (d *Device) ResetStats() {
	d.stats = Stats{Sections: make(map[Section]*SectionStats)}
	d.batchOps = 0
	d.opsInRegion = 0
	d.opsTotal = 0
	d.pjNow, d.commitNJ, d.wastedNJ = 0, 0, 0
	d.secStats = nil // force SetSection to re-resolve into the fresh map
	d.memoLayer, d.memoStats = "", [numMemoPhases]*SectionStats{}
	d.statsGen++
	d.refreshSlowOp()
	d.SetSection("boot", PhaseControl)
}

// TrackWasted enables (or disables) device-native wasted-work accounting:
// the energy consumed after each charge cycle's last durable commit and
// before its brown-out, summed over the run. The figure is computed with
// the same float64 arithmetic as trace.Buffer's online analysis
// (TotalWastedEnergyNJ), so callers that only need the aggregate — the
// fleet engine — can skip attaching a tracer entirely, which keeps the
// fused-kernel fast path engaged; scalar ops also stay on the two-
// increment fast path, which carries the consumed-energy mirror itself.
// Enable it before the run charges its first operation.
func (d *Device) TrackWasted(on bool) {
	d.wastedTrack = on
	d.refreshSlowOp()
	d.pjNow, d.commitNJ, d.wastedNJ = 0, 0, 0
	if on {
		_, pj := d.deriveNow()
		d.pjNow = pj
		d.commitNJ = float64(pj) * 1e-3
	}
}

// WastedNJ reports the accumulated wasted (re-executed) energy in
// nanojoules; zero unless TrackWasted is enabled.
func (d *Device) WastedNJ() float64 { return d.wastedNJ }

// resyncWasted recomputes the incremental consumed-energy mirror after a
// wholesale stats replacement (snapshot restore, fork prefix rebuild).
func (d *Device) resyncWasted() {
	if d.wastedTrack {
		_, pj := d.deriveNow()
		d.pjNow = pj
		d.commitNJ = float64(pj) * 1e-3
	}
}

// CanFuse reports whether the fused-kernel fast path may engage: bulk
// charging enabled, fusion not vetoed, and no journal, WAR tracker, or
// tracer attached — every observer that needs to see the per-op stream.
// The power system must be one of the two devirtualized kinds
// (Intermittent or Continuous), whose whole-block funding is exact;
// count-based fault-injection systems take the scalar path so failure
// schedules keep their op-exact placement.
func (d *Device) CanFuse() bool {
	return !d.ForceScalar && !d.NoFuse && d.journal == nil && d.shadow == nil &&
		d.tracer == nil && (d.intPower != nil || d.contPower)
}

// SetSection changes the attribution label for subsequent operations.
// When tracing, a layer-label change flushes the pending op batch and
// emits layer-end/layer-begin events (phase-only changes do not, keeping
// the event stream proportional to layer transitions, not iterations).
func (d *Device) SetSection(layer string, phase Phase) {
	sec := Section{Layer: layer, Phase: phase}
	if sec == d.section && d.secStats != nil {
		return
	}
	if d.tracer != nil && layer != d.section.Layer {
		d.flushOpBatch()
		if d.secStats != nil { // skip the end event for the initial boot section
			d.emit(TraceLayerEnd, d.section.Layer, 0)
		}
		d.emit(TraceLayerBegin, layer, 0)
	}
	d.section = sec
	pi := phaseMemoIndex(phase)
	if layer != d.memoLayer && pi >= 0 {
		d.memoLayer = layer
		d.memoStats = [numMemoPhases]*SectionStats{}
	}
	if pi >= 0 && d.memoStats[pi] != nil {
		d.secStats = d.memoStats[pi]
	} else {
		ss, ok := d.stats.Sections[sec]
		if !ok {
			ss = &SectionStats{}
			d.stats.Sections[sec] = ss
		}
		d.secStats = ss
		if pi >= 0 {
			d.memoStats[pi] = ss
		}
	}
	if j := d.journal; j != nil {
		j.onSection(sec)
	}
}

// numMemoPhases sizes the per-layer phase memo: the three named phases.
const numMemoPhases = 3

// phaseMemoIndex maps the named phases to memo slots; unknown phases
// return -1 and resolve through the section map on every call.
func phaseMemoIndex(p Phase) int {
	switch p {
	case PhaseKernel:
		return 0
	case PhaseControl:
		return 1
	case PhaseTransition:
		return 2
	}
	return -1
}

// Section returns the current attribution label.
func (d *Device) Section() (string, Phase) { return d.section.Layer, d.section.Phase }

// SectionTok is a pre-resolved section handle. The op-tape executors flip
// attribution twice per inner-loop iteration; resolving the (layer, phase)
// pair once per layer and switching by token replaces the per-iteration
// string construction and comparison with an index load. The accounting is
// identical to SetSection's — tokens cache pointers into the same
// stats.Sections entries — so the attributed Stats are bit-exact with the
// interpreted walk's.
type SectionTok int

// tokEntry caches one token's resolved stats. gen guards against stats
// replacement (ResetStats, snapshot restore): a stale entry re-resolves
// into the live map on next use.
type tokEntry struct {
	sec   Section
	stats *SectionStats
	gen   uint32
}

// SectionToken registers a (layer, phase) pair and returns its handle.
// Tokens are device-local (stats pointers are per-device) and cheap; the
// tape executors resolve a layer's phases once per layer visit. The stats
// entry is materialized lazily, on the first switch — exactly when
// SetSection would create it — so a run that dies before ever entering the
// section leaves the same Sections map the interpreted walk would.
func (d *Device) SectionToken(layer string, phase Phase) SectionTok {
	// Dedupe on (layer, phase): executors re-register on every layer visit
	// (once per reboot attempt), and handing back the existing token keeps
	// toks at two entries per section instead of growing — and reallocating
	// — across a long intermittent run. The scan is over a handful of
	// entries, and the layer names come from the per-model memo, so the
	// string compare is almost always a pointer compare.
	for i := range d.toks {
		if d.toks[i].sec.Phase == phase && d.toks[i].sec.Layer == layer {
			return SectionTok(i)
		}
	}
	d.toks = append(d.toks, tokEntry{sec: Section{Layer: layer, Phase: phase}})
	return SectionTok(len(d.toks) - 1)
}

// SetSectionTok is SetSection through a pre-resolved handle: the same
// section change, layer-transition trace events, and journal record, with
// the resolution amortized into SectionToken.
func (d *Device) SetSectionTok(t SectionTok) {
	e := &d.toks[t]
	if e.sec == d.section && d.secStats != nil {
		return
	}
	if d.tracer != nil && e.sec.Layer != d.section.Layer {
		d.flushOpBatch()
		if d.secStats != nil { // skip the end event for the initial boot section
			d.emit(TraceLayerEnd, d.section.Layer, 0)
		}
		d.emit(TraceLayerBegin, e.sec.Layer, 0)
	}
	if e.stats == nil || e.gen != d.statsGen {
		e.stats = d.resolveSection(e.sec)
		e.gen = d.statsGen
	}
	d.section = e.sec
	d.secStats = e.stats
	if j := d.journal; j != nil {
		j.onSection(e.sec)
	}
}

// resolveSection returns the live SectionStats for sec, creating it on
// first attribution exactly as SetSection does.
func (d *Device) resolveSection(sec Section) *SectionStats {
	ss, ok := d.stats.Sections[sec]
	if !ok {
		ss = &SectionStats{}
		d.stats.Sections[sec] = ss
	}
	return ss
}

// Op charges one operation of kind k. If the energy buffer empties, the
// operation does not take effect and the device browns out (panics with the
// power-failure sentinel, recovered by Attempt). The common path is charge
// plus two increments: everything an attached observer would need — the
// journal tape, the opsTotal mirror, wasted-work and op-batch bookkeeping —
// lives in the out-of-line opSlow body behind the one recomputed-on-attach
// slowOp bit.
func (d *Device) Op(k OpKind) {
	if d.slowOp {
		d.opSlow(k)
		return
	}
	// The devirtualized intermittent charge is open-coded (an inlined
	// integer subtract); everything else goes through consume1.
	if p := d.intPower; p != nil && !d.ForceScalar {
		if !p.ConsumePJ(d.costPJ[k]) {
			d.brownOut(k)
		}
	} else if !d.consume1(k) {
		d.brownOut(k)
	}
	d.secStats.OpCount[k]++
	d.opsInRegion++
	d.pjNow += d.costPJ[k]
}

// opSlow is Op's full body for devices with a per-op observer or mirror
// attached. It additionally maintains opsTotal, the op-position coordinate
// the journal and WAR shadow index by.
func (d *Device) opSlow(k OpKind) {
	if j := d.journal; j != nil {
		j.onOp(k)
	}
	if p := d.intPower; p != nil && !d.ForceScalar {
		if !p.ConsumePJ(d.costPJ[k]) {
			d.brownOut(k)
		}
	} else if !d.consume1(k) {
		d.brownOut(k)
	}
	d.opsTotal++
	d.secStats.OpCount[k]++
	d.opsInRegion++
	d.pjNow += d.costPJ[k]
	if d.batchTrace {
		d.batchOps++
		if d.batchOps >= opBatchMax {
			d.flushOpBatch()
		}
	}
}

// consume1 charges one op of kind k against the power system, preferring
// the integer-picojoule entry point when the system provides one — through
// the devirtualized concrete types where possible, so the common charge is
// an inlined integer subtract. With ForceScalar set it pins the original
// float Consume call, so the differential oracle exercises the unoptimized
// path end to end.
func (d *Device) consume1(k OpKind) bool {
	if d.ForceScalar {
		return d.Power.Consume(d.Cost.Costs[k].EnergyNJ)
	}
	if d.intPower != nil {
		return d.intPower.ConsumePJ(d.costPJ[k])
	}
	if d.contPower {
		return true
	}
	if d.powerPJ != nil {
		return d.powerPJ.ConsumePJ(d.costPJ[k])
	}
	return d.Power.Consume(d.Cost.Costs[k].EnergyNJ)
}

// account records n funded operations of kind k. Only the op counts (and
// the open commit region's size) are maintained per operation; cycles and
// energy are fixed integer multiples of the counts and are derived in
// finalizeStats, so one n-fold update is bit-identical to n single updates
// — the invariant the bulk-charge fast path and the differential oracle
// rely on.
func (d *Device) account(k OpKind, n int) {
	if d.slowOp {
		d.accountSlow(k, n)
		return
	}
	d.secStats.OpCount[k] += int64(n)
	d.opsInRegion += int64(n)
	d.pjNow += int64(n) * d.costPJ[k]
}

// accountSlow is account's full body behind the slowOp bit, mirroring
// opSlow's bookkeeping for a funded bulk batch.
func (d *Device) accountSlow(k OpKind, n int) {
	if j := d.journal; j != nil {
		j.onOps(k, n)
	}
	nn := int64(n)
	d.opsTotal += nn
	d.secStats.OpCount[k] += nn
	d.opsInRegion += nn
	d.pjNow += nn * d.costPJ[k]
	if d.batchTrace {
		d.batchOps += n
		if d.batchOps >= opBatchMax {
			d.flushOpBatch()
		}
	}
}

// brownOut raises the power-failure sentinel for an unfunded op of kind k.
func (d *Device) brownOut(k OpKind) {
	if d.tracer != nil {
		d.flushOpBatch()
		d.emit(TraceBrownOut, d.section.Layer, int64(k))
	}
	if d.wastedTrack {
		// The failing op is charged but never accounted (exactly as the
		// tracer's brown-out event samples only accounted ops), so the
		// cycle's wasted energy is accounted-now minus last commit.
		d.wastedNJ += float64(d.pjNow)*1e-3 - d.commitNJ
	}
	panic(powerFailure{})
}

// chargeOps charges up to n operations of kind k and returns how many were
// funded, accounting exactly the funded prefix. When the power system
// implements energy.BulkConsumer (every system in this tree does) and
// ForceScalar is off, the whole batch costs O(1); otherwise it falls back
// to the scalar loop. Callers apply the funded prefix's effects and brown
// out when the return value is short.
func (d *Device) chargeOps(k OpKind, n int) int {
	if !d.ForceScalar {
		// Devirtualized fast paths mirroring Op's: the intermittent system
		// charges through the cached integer-pJ cost (ConsumeNPJ uses the
		// same pjOf quantization as the costPJ table, so the arithmetic is
		// bit-identical to ConsumeN), and continuous power funds everything.
		if p := d.intPower; p != nil {
			funded := p.ConsumeNPJ(d.costPJ[k], n)
			if funded > 0 {
				d.account(k, funded)
			}
			return funded
		}
		if d.contPower {
			d.account(k, n)
			return n
		}
	}
	e := d.Cost.Costs[k].EnergyNJ
	if b := d.bulkPower; b != nil && !d.ForceScalar {
		funded := b.ConsumeN(e, n)
		if funded > 0 {
			d.account(k, funded)
		}
		return funded
	}
	for i := 0; i < n; i++ {
		if !d.consume1(k) {
			return i
		}
		d.account(k, 1)
	}
	return n
}

// Ops charges n operations of kind k through the bulk fast path: O(1)
// accounting for the whole run, with a power failure still landing at the
// exact op index the scalar loop would brown out on.
func (d *Device) Ops(k OpKind, n int) {
	if n <= 0 {
		return
	}
	if funded := d.chargeOps(k, n); funded < n {
		d.brownOut(k)
	}
}

// loadOp returns the load op kind for a region's memory.
func loadOp(r *mem.Region) OpKind {
	if r.Kind() == mem.FRAM {
		return OpLoadFRAM
	}
	return OpLoadSRAM
}

// storeOp returns the store op kind for a region's memory.
func storeOp(r *mem.Region) OpKind {
	if r.Kind() == mem.FRAM {
		return OpStoreFRAM
	}
	return OpStoreSRAM
}

// Load reads region word i, charging the memory's access cost.
func (d *Device) Load(r *mem.Region, i int) int64 {
	d.Op(loadOp(r))
	if d.shadow != nil {
		d.shadowRead(r, i)
	}
	return r.Get(i)
}

// Store writes region word i, charging the memory's access cost. The write
// does not occur if power fails on this operation.
func (d *Device) Store(r *mem.Region, i int, v int64) {
	d.Op(storeOp(r))
	if d.shadow != nil {
		d.shadowWrite(r, i)
	}
	r.Put(i, v)
}

// LoadRange charges n consecutive loads from region words r[i:i+n] as one
// bulk batch — the macro-op form of n Load calls. It performs no data
// movement (callers read values with r.Get, which is free of charge, as in
// Load); it charges the loads, records the funded prefix's shadow reads,
// and browns out at the exact op index the scalar loop would.
func (d *Device) LoadRange(r *mem.Region, i, n int) {
	if n <= 0 {
		return
	}
	k := loadOp(r)
	funded := d.chargeOps(k, n)
	if d.shadow != nil {
		for j := 0; j < funded; j++ {
			d.shadowRead(r, i+j)
		}
	}
	if funded < n {
		d.brownOut(k)
	}
}

// StoreRange writes vs to consecutive region words r[i:i+len(vs)] as one
// bulk batch — the macro-op form of len(vs) Store calls. Exactly the
// funded prefix of the writes takes effect (with its shadow records), so a
// mid-batch power failure leaves the same partial destination the scalar
// loop would.
func (d *Device) StoreRange(r *mem.Region, i int, vs []int64) {
	n := len(vs)
	if n == 0 {
		return
	}
	k := storeOp(r)
	funded := d.chargeOps(k, n)
	if d.journal == nil && d.shadow == nil {
		// No write-log ordering or WAR records to maintain: the funded
		// prefix lands via one bulk copy (observer-aware in SetRange).
		r.SetRange(i, vs[:funded])
		if funded < n {
			d.brownOut(k)
		}
		return
	}
	if jr := d.journal; jr != nil {
		jr.beginBatch(funded)
	}
	for j := 0; j < funded; j++ {
		if d.shadow != nil {
			d.shadowWrite(r, i+j)
		}
		r.Put(i+j, vs[j])
	}
	if jr := d.journal; jr != nil {
		jr.endBatch()
	}
	if funded < n {
		d.brownOut(k)
	}
}

// MACRange charges the canonical software multiply-accumulate inner loop
// for n consecutive elements — per element one loop branch, one weight
// load from w[wOff+j], one activation load from x[xOff+j], one fixed-point
// multiply and one fixed-point accumulate — in segment-grouped order (all
// branches, then all weight loads, ...). Within one uncommitted region the
// grouping is architecturally legal: the memory reads keep their relative
// order and a failure anywhere in the range aborts the whole region.
// Callers compute the arithmetic themselves from r.Get values.
func (d *Device) MACRange(w *mem.Region, wOff int, x *mem.Region, xOff, n int) {
	if n <= 0 {
		return
	}
	d.Ops(OpBranch, n)
	d.LoadRange(w, wOff, n)
	d.LoadRange(x, xOff, n)
	d.Ops(OpFixedMul, n)
	d.Ops(OpFixedAdd, n)
}

// StoreIndex writes a loop-index/progress word. With JITIndexCheckpoint
// disabled (the default, matching real MSP430 hardware) it is an ordinary
// store at the region's cost; with the §10 architecture enabled it charges
// only an SRAM store, and the value still persists across power failures
// because the hardware flushes the index cache at brown-out.
func (d *Device) StoreIndex(r *mem.Region, i int, v int64) {
	if d.JITIndexCheckpoint {
		d.Op(OpStoreSRAM)
		if d.shadow != nil {
			d.shadowWrite(r, i) // the value persists, so it is an NV write
		}
		r.Put(i, v)
		return
	}
	d.Store(r, i, v)
}

// Progress records that the running program committed durable work. The
// non-termination detector resets; programs that fail to call this across
// several whole charge cycles are declared non-terminating. Every runtime
// calls this exactly at its durable-progress points, so it doubles as the
// uniform commit-event emitter for wasted-work analysis.
func (d *Device) Progress() {
	d.rebootsSinceProgress = 0
	if d.opsInRegion > d.stats.MaxRegionOps {
		d.stats.MaxRegionOps = d.opsInRegion
	}
	d.opsInRegion = 0
	if j := d.journal; j != nil {
		j.onCommit()
	}
	if d.shadow != nil {
		d.shadow.Commit()
	}
	if d.wastedTrack {
		d.commitNJ = float64(d.pjNow) * 1e-3
	}
	if d.tracer != nil {
		d.flushOpBatch()
		d.emit(TraceCommit, d.section.Layer, 0)
	}
}

// Attempt runs f, converting a brown-out into a normal return.
// It returns true if f ran to completion, false if power failed.
func (d *Device) Attempt(f func()) (completed bool) {
	if d.inAttempt {
		panic("mcu: nested Attempt")
	}
	d.inAttempt = true
	defer func() {
		d.inAttempt = false
		if r := recover(); r != nil {
			if _, ok := r.(powerFailure); !ok {
				panic(r)
			}
			if d.shadow != nil {
				d.shadow.Abort()
			}
			d.opsInRegion = 0 // region aborted; it never committed
			completed = false
		}
	}()
	f()
	return true
}

// Reboot models the post-failure power cycle: SRAM clears, the capacitor
// recharges (adding dead time), and the reboot counters advance. It returns
// ErrDoesNotComplete when the program has burned too many whole charge
// cycles without progress.
func (d *Device) Reboot() error {
	d.SRAM.ClearVolatile()
	d.stats.Reboots++
	if d.wastedTrack {
		// A new charge cycle begins; its wasted-work baseline is the
		// energy consumed so far (nothing is charged between the
		// brown-out and this reboot).
		d.commitNJ = float64(d.pjNow) * 1e-3
	}
	d.Emit(TraceReboot, "", int64(d.stats.Reboots))
	d.stats.DeadSeconds += d.Power.Recharge()
	d.Emit(TraceRechargeDone, "", 0)
	d.rebootsSinceProgress++
	if d.rebootsSinceProgress > maxRebootsWithoutProgress {
		return ErrDoesNotComplete
	}
	return nil
}

// Run drives f to completion under intermittent power: attempt, reboot on
// failure, retry. f is re-invoked from its start after each failure — it
// must locate its restart point in FRAM, exactly as intermittent programs
// do. Run returns ErrDoesNotComplete if f stops making progress.
func (d *Device) Run(f func()) error {
	for {
		if d.Attempt(f) {
			return nil
		}
		if err := d.Reboot(); err != nil {
			return err
		}
	}
}

// String describes the device configuration.
func (d *Device) String() string {
	return fmt.Sprintf("mcu(FRAM %dKB, SRAM %dKB, clock %.0fMHz)",
		d.FRAM.Capacity()/1024, d.SRAM.Capacity()/1024, d.Cost.ClockHz/1e6)
}
