package mcu

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/mem"
)

// powerFailure is the panic sentinel raised when the energy buffer empties.
// It never escapes the package: Attempt recovers it.
type powerFailure struct{}

// ErrDoesNotComplete is returned when a program makes no progress across
// maxRebootsWithoutProgress consecutive charge cycles — the non-termination
// condition of §2.1 (e.g., a task that needs more energy than the device
// can buffer).
var ErrDoesNotComplete = errors.New("mcu: does not complete (no progress across charge cycles)")

// maxRebootsWithoutProgress is how many full charge cycles a program may
// burn with no committed progress before the run is declared
// non-terminating.
const maxRebootsWithoutProgress = 4

// Phase labels execution for the kernel/control breakdown of Fig. 10.
type Phase string

// Execution phases.
const (
	PhaseKernel     Phase = "kernel"
	PhaseControl    Phase = "control"
	PhaseTransition Phase = "transition"
)

// Section attributes operations to a layer and phase for the per-layer
// breakdowns in Figs. 9, 10, and 12.
type Section struct {
	Layer string
	Phase Phase
}

// SectionStats accumulates costs within one section.
type SectionStats struct {
	Cycles   int64
	EnergyNJ float64
	OpCount  [NumOps]int64
	OpEnergy [NumOps]float64
}

// Stats is the device's full accounting.
type Stats struct {
	LiveCycles  int64
	DeadSeconds float64
	Reboots     int
	EnergyNJ    float64
	OpCount     [NumOps]int64
	OpEnergy    [NumOps]float64
	Sections    map[Section]*SectionStats

	// MaxRegionOps is the largest op count observed between consecutive
	// durable commits (Progress calls) — the program's atomic-region size.
	// Any charge cycle funding fewer ops than this can fail to make
	// progress, so fault-injection campaigns use it as the liveness floor
	// for fuzzed failure schedules.
	MaxRegionOps int64
}

// LiveSeconds converts live cycles to seconds at the given clock.
func (s *Stats) LiveSeconds(clockHz float64) float64 {
	return float64(s.LiveCycles) / clockHz
}

// TotalSeconds is live plus dead time.
func (s *Stats) TotalSeconds(clockHz float64) float64 {
	return s.LiveSeconds(clockHz) + s.DeadSeconds
}

// EnergyMJ returns total consumed energy in millijoules.
func (s *Stats) EnergyMJ() float64 { return s.EnergyNJ * 1e-6 }

// Device is the simulated MCU.
type Device struct {
	FRAM  *mem.Memory
	SRAM  *mem.Memory
	Power energy.System
	Cost  CostModel

	// JITIndexCheckpoint enables the future-architecture feature of §10:
	// a small hardware cache holds hot index variables and flushes them to
	// FRAM just in time at brown-out (using residual decoupling charge),
	// so per-iteration progress stores cost an SRAM write instead of a
	// FRAM write. The paper estimates this alone saves ~14% of SONIC's
	// system energy. StoreIndex honours the flag.
	JITIndexCheckpoint bool

	stats    Stats
	section  Section
	secStats *SectionStats

	// Tracing state: tracer is the nil-checked event consumer, levelFn the
	// cached energy-buffer sampler, batchOps the plain-operation count
	// aggregated since the last emitted event (see trace.go).
	tracer   Tracer
	levelFn  func() float64
	batchOps int

	// Memory-consistency state: shadow is the nil-checked WAR tracker
	// (see consistency.go), protocol the regions exempted from it, and
	// warViolations/warCount the detections so far.
	shadow        *mem.Shadow
	protocol      []*mem.Region
	warViolations []WARViolation
	warCount      int

	rebootsSinceProgress int
	inAttempt            bool
	opsInRegion          int64
}

// New returns a device with the standard MSP430FR5994 memory sizes.
func New(power energy.System) *Device {
	return NewWithMem(power, mem.New(mem.FRAM, mem.DefaultFRAMBytes), mem.New(mem.SRAM, mem.DefaultSRAMBytes))
}

// NewWithMem returns a device over caller-provided memories.
func NewWithMem(power energy.System, fram, sram *mem.Memory) *Device {
	d := &Device{FRAM: fram, SRAM: sram, Power: power, Cost: DefaultCostModel()}
	d.stats.Sections = make(map[Section]*SectionStats)
	d.SetSection("boot", PhaseControl)
	return d
}

// Stats returns the accumulated statistics.
func (d *Device) Stats() *Stats { return &d.stats }

// ResetStats clears accounting without touching memory or power.
func (d *Device) ResetStats() {
	d.stats = Stats{Sections: make(map[Section]*SectionStats)}
	d.SetSection("boot", PhaseControl)
}

// SetSection changes the attribution label for subsequent operations.
// When tracing, a layer-label change flushes the pending op batch and
// emits layer-end/layer-begin events (phase-only changes do not, keeping
// the event stream proportional to layer transitions, not iterations).
func (d *Device) SetSection(layer string, phase Phase) {
	sec := Section{Layer: layer, Phase: phase}
	if sec == d.section && d.secStats != nil {
		return
	}
	if d.tracer != nil && layer != d.section.Layer {
		d.flushOpBatch()
		if d.secStats != nil { // skip the end event for the initial boot section
			d.emit(TraceLayerEnd, d.section.Layer, 0)
		}
		d.emit(TraceLayerBegin, layer, 0)
	}
	d.section = sec
	ss, ok := d.stats.Sections[sec]
	if !ok {
		ss = &SectionStats{}
		d.stats.Sections[sec] = ss
	}
	d.secStats = ss
}

// Section returns the current attribution label.
func (d *Device) Section() (string, Phase) { return d.section.Layer, d.section.Phase }

// Op charges one operation of kind k. If the energy buffer empties, the
// operation does not take effect and the device browns out (panics with the
// power-failure sentinel, recovered by Attempt).
func (d *Device) Op(k OpKind) {
	c := &d.Cost.Costs[k]
	if !d.Power.Consume(c.EnergyNJ) {
		if d.tracer != nil {
			d.flushOpBatch()
			d.emit(TraceBrownOut, d.section.Layer, int64(k))
		}
		panic(powerFailure{})
	}
	d.stats.LiveCycles += int64(c.Cycles)
	d.stats.EnergyNJ += c.EnergyNJ
	d.opsInRegion++
	d.stats.OpCount[k]++
	d.stats.OpEnergy[k] += c.EnergyNJ
	d.secStats.Cycles += int64(c.Cycles)
	d.secStats.EnergyNJ += c.EnergyNJ
	d.secStats.OpCount[k]++
	d.secStats.OpEnergy[k] += c.EnergyNJ
	if d.tracer != nil {
		d.batchOps++
		if d.batchOps >= opBatchMax {
			d.flushOpBatch()
		}
	}
}

// Ops charges n operations of kind k one at a time, so a power failure can
// land at any element boundary.
func (d *Device) Ops(k OpKind, n int) {
	for i := 0; i < n; i++ {
		d.Op(k)
	}
}

// loadOp returns the load op kind for a region's memory.
func loadOp(r *mem.Region) OpKind {
	if r.Kind() == mem.FRAM {
		return OpLoadFRAM
	}
	return OpLoadSRAM
}

// storeOp returns the store op kind for a region's memory.
func storeOp(r *mem.Region) OpKind {
	if r.Kind() == mem.FRAM {
		return OpStoreFRAM
	}
	return OpStoreSRAM
}

// Load reads region word i, charging the memory's access cost.
func (d *Device) Load(r *mem.Region, i int) int64 {
	d.Op(loadOp(r))
	if d.shadow != nil {
		d.shadowRead(r, i)
	}
	return r.Get(i)
}

// Store writes region word i, charging the memory's access cost. The write
// does not occur if power fails on this operation.
func (d *Device) Store(r *mem.Region, i int, v int64) {
	d.Op(storeOp(r))
	if d.shadow != nil {
		d.shadowWrite(r, i)
	}
	r.Put(i, v)
}

// StoreIndex writes a loop-index/progress word. With JITIndexCheckpoint
// disabled (the default, matching real MSP430 hardware) it is an ordinary
// store at the region's cost; with the §10 architecture enabled it charges
// only an SRAM store, and the value still persists across power failures
// because the hardware flushes the index cache at brown-out.
func (d *Device) StoreIndex(r *mem.Region, i int, v int64) {
	if d.JITIndexCheckpoint {
		d.Op(OpStoreSRAM)
		if d.shadow != nil {
			d.shadowWrite(r, i) // the value persists, so it is an NV write
		}
		r.Put(i, v)
		return
	}
	d.Store(r, i, v)
}

// Progress records that the running program committed durable work. The
// non-termination detector resets; programs that fail to call this across
// several whole charge cycles are declared non-terminating. Every runtime
// calls this exactly at its durable-progress points, so it doubles as the
// uniform commit-event emitter for wasted-work analysis.
func (d *Device) Progress() {
	d.rebootsSinceProgress = 0
	if d.opsInRegion > d.stats.MaxRegionOps {
		d.stats.MaxRegionOps = d.opsInRegion
	}
	d.opsInRegion = 0
	if d.shadow != nil {
		d.shadow.Commit()
	}
	if d.tracer != nil {
		d.flushOpBatch()
		d.emit(TraceCommit, d.section.Layer, 0)
	}
}

// Attempt runs f, converting a brown-out into a normal return.
// It returns true if f ran to completion, false if power failed.
func (d *Device) Attempt(f func()) (completed bool) {
	if d.inAttempt {
		panic("mcu: nested Attempt")
	}
	d.inAttempt = true
	defer func() {
		d.inAttempt = false
		if r := recover(); r != nil {
			if _, ok := r.(powerFailure); !ok {
				panic(r)
			}
			if d.shadow != nil {
				d.shadow.Abort()
			}
			d.opsInRegion = 0 // region aborted; it never committed
			completed = false
		}
	}()
	f()
	return true
}

// Reboot models the post-failure power cycle: SRAM clears, the capacitor
// recharges (adding dead time), and the reboot counters advance. It returns
// ErrDoesNotComplete when the program has burned too many whole charge
// cycles without progress.
func (d *Device) Reboot() error {
	d.SRAM.ClearVolatile()
	d.stats.Reboots++
	d.Emit(TraceReboot, "", int64(d.stats.Reboots))
	d.stats.DeadSeconds += d.Power.Recharge()
	d.Emit(TraceRechargeDone, "", 0)
	d.rebootsSinceProgress++
	if d.rebootsSinceProgress > maxRebootsWithoutProgress {
		return ErrDoesNotComplete
	}
	return nil
}

// Run drives f to completion under intermittent power: attempt, reboot on
// failure, retry. f is re-invoked from its start after each failure — it
// must locate its restart point in FRAM, exactly as intermittent programs
// do. Run returns ErrDoesNotComplete if f stops making progress.
func (d *Device) Run(f func()) error {
	for {
		if d.Attempt(f) {
			return nil
		}
		if err := d.Reboot(); err != nil {
			return err
		}
	}
}

// String describes the device configuration.
func (d *Device) String() string {
	return fmt.Sprintf("mcu(FRAM %dKB, SRAM %dKB, clock %.0fMHz)",
		d.FRAM.Capacity()/1024, d.SRAM.Capacity()/1024, d.Cost.ClockHz/1e6)
}
