package mcu

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/energy"
)

// burn runs a restart-safe counter program to n on d.
func burn(t *testing.T, d *Device, n int64) {
	t.Helper()
	r := d.FRAM.MustAlloc("counter", 1, 2)
	defer d.FRAM.Release(r)
	err := d.Run(func() {
		for d.Load(r, 0) < n {
			v := d.Load(r, 0)
			d.Store(r, 0, v+1)
			d.Progress()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReprovisionMatchesFreshDevice(t *testing.T) {
	// A device that browned out repeatedly, tracked wasted work, and then
	// failed to terminate carries every kind of per-run residue:
	// stats/sections, wasted mirrors, reboot bookkeeping.
	used := New(energy.NewFailAfterOps(7, 7))
	used.TrackWasted(true)
	burn(t, used, 10)
	if err := used.Run(func() {
		for i := 0; i < 100; i++ {
			used.Op(OpAdd)
		}
	}); !errors.Is(err, ErrDoesNotComplete) {
		t.Fatalf("setup run: %v, want ErrDoesNotComplete", err)
	}

	used.Reprovision(energy.NewFailAfterOps(7, 7))
	if used.WastedNJ() != 0 {
		t.Errorf("wasted tracking survived reprovision: %v nJ", used.WastedNJ())
	}
	used.TrackWasted(true)
	burn(t, used, 10)

	fresh := New(energy.NewFailAfterOps(7, 7))
	fresh.TrackWasted(true)
	burn(t, fresh, 10)

	if !reflect.DeepEqual(used.Stats(), fresh.Stats()) {
		t.Errorf("reprovisioned stats = %+v, fresh = %+v", used.Stats(), fresh.Stats())
	}
	if used.WastedNJ() != fresh.WastedNJ() {
		t.Errorf("wasted = %v nJ, fresh %v nJ", used.WastedNJ(), fresh.WastedNJ())
	}
}

func TestReprovisionRebindsPowerFastPaths(t *testing.T) {
	// Construction devirtualizes the power system (contPower/intPower
	// caches); a rebind from continuous power to an op-limited system must
	// re-probe them, or the device would never brown out.
	d := New(energy.Continuous{})
	burn(t, d, 5)
	if d.Stats().Reboots != 0 {
		t.Fatal("continuous power should not reboot")
	}
	d.Reprovision(energy.NewFailAfterOps(7, 7))
	burn(t, d, 10)
	if d.Stats().Reboots == 0 {
		t.Error("rebound op-limited power never browned out: stale devirtualized caches")
	}
}
