// Package mcu models the intermittently-powered microcontroller the paper
// targets (TI MSP430FR5994 at 16 MHz): a device that executes abstract
// operations with per-operation cycle and energy costs, charges them
// against an energy.System, and browns out mid-program when the buffer
// empties — clearing SRAM while FRAM persists. It also models the LEA
// vector accelerator and the DMA engine that TAILS uses.
//
// The cost model is a plain value calibrated to the MSP430's orders of
// magnitude (FRAM writes ≫ SRAM accesses ≫ register ops; the hardware
// multiplier is a 9-cycle memory-mapped peripheral). Absolute joules are
// not the claim — relative costs are, and tests pin the relations the
// paper's results depend on.
package mcu

// OpKind enumerates the operation classes whose costs and counts the model
// tracks. The classes match the energy breakdown of the paper's Fig. 12
// (load, store, add, increment, multiply, fixed-point ops, task
// transitions) plus the LEA/DMA operations TAILS uses.
type OpKind uint8

// Operation classes.
const (
	OpAdd OpKind = iota
	OpIncrement
	OpBranch // loop compare-and-branch and other control flow
	OpMul    // integer multiply on the memory-mapped multiplier
	OpFixedMul
	OpFixedAdd
	OpLoadFRAM
	OpStoreFRAM
	OpLoadSRAM
	OpStoreSRAM
	OpTransition // lightweight task transition (SONIC: jump + stack reset)
	OpPrivatize  // Alpaca dynamic-buffering path per task-shared access
	OpDispatch   // Alpaca task transition: two-phase bookkeeping + scheduler
	OpDMASetup
	OpDMAWord
	OpLEAInvoke
	OpLEAElem

	NumOps // sentinel
)

var opNames = [NumOps]string{
	"add", "increment", "branch", "multiply", "fixed-mul", "fixed-add",
	"load-fram", "store-fram", "load-sram", "store-sram",
	"transition", "privatize", "dispatch",
	"dma-setup", "dma-word", "lea-invoke", "lea-elem",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return "?"
}

// OpCost is the cycle and energy cost of one operation.
type OpCost struct {
	Cycles   int32
	EnergyNJ float64
}

// CostModel maps operation classes to costs and carries the clock rate.
type CostModel struct {
	ClockHz float64
	Costs   [NumOps]OpCost
}

// DefaultCostModel returns costs calibrated to the MSP430FR5994:
//
//   - register ALU ops ~1 cycle / ~1 nJ;
//   - SRAM accesses ~2 cycles;
//   - FRAM reads carry wait states and FRAM writes cost ~3× more energy
//     than reads (the paper attributes 14% of SONIC's system energy to
//     FRAM loop-index writes);
//   - the hardware multiplier is a memory-mapped peripheral taking four
//     instructions and nine cycles (§10);
//   - LEA amortizes a large invocation cost over cheap per-element work,
//     but only operates on the 4 KB SRAM bank (DMA required);
//   - SONIC's task transitions cost tens of cycles (a jump and stack
//     reset), while Alpaca's dispatch (OpDispatch) costs hundreds: it runs
//     the two-phase commit bookkeeping and scheduler, and each dynamically
//     privatized access (OpPrivatize) pays the buffering path Maeng et al.
//     describe — the dominant overheads the paper measures in Fig. 10.
func DefaultCostModel() CostModel {
	return CostModel{
		ClockHz: 16e6,
		Costs: [NumOps]OpCost{
			OpAdd:        {1, 1.0},
			OpIncrement:  {1, 1.0},
			OpBranch:     {2, 1.6},
			OpMul:        {9, 8.0},
			OpFixedMul:   {13, 11.0},
			OpFixedAdd:   {3, 2.5},
			OpLoadFRAM:   {3, 2.5},
			OpStoreFRAM:  {4, 7.5},
			OpLoadSRAM:   {2, 1.5},
			OpStoreSRAM:  {2, 1.6},
			OpTransition: {60, 70.0},
			OpPrivatize:  {18, 55.0},
			OpDispatch:   {450, 1350.0},
			OpDMASetup:   {30, 25.0},
			OpDMAWord:    {1, 0.8},
			OpLEAInvoke:  {60, 50.0},
			OpLEAElem:    {1, 1.1},
		},
	}
}
