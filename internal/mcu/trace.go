package mcu

// This file defines the device-side half of the execution-tracing
// subsystem: a typed event model timestamped in both live cycles and
// accumulated energy, and a nil-checked Tracer hook on Device. The
// consumer side (ring buffer, exporters, wasted-work analysis) lives in
// internal/trace; keeping the interface here lets every layer of the
// stack emit events without import cycles.
//
// Tracing is off by default. The disabled cost is a single nil-check
// branch on the operation hot path (see BenchmarkDeviceOp); when enabled,
// per-operation costs are aggregated into op-batch events so the event
// stream stays proportional to interesting transitions, not to every
// simulated instruction.

// TraceKind enumerates the traceable event classes.
type TraceKind uint8

// Trace event kinds. The producers are spread across the stack: the
// device model itself (op batches, brown-outs, reboots, recharges, DMA
// and LEA invocations, layer/section changes, durable-progress commits),
// the Alpaca-style task runtime (task dispatch, privatization, the two
// phases of commit), SONIC (loop-continuation index writes, transitions),
// TAILS (calibration decisions), and the periodic-checkpointing runtime
// (register/stack dumps).
const (
	// TraceOpBatch aggregates consecutive plain operations within one
	// section; Arg is the operation count since the previous event.
	TraceOpBatch TraceKind = iota
	// TraceLayerBegin/TraceLayerEnd bracket execution attributed to one
	// layer label ("conv1", "fc", ...). A layer interrupted by a power
	// failure begins again after the reboot, so re-execution is visible
	// as repeated begin events for the same label.
	TraceLayerBegin
	TraceLayerEnd
	// TraceRunBegin marks the start of one inference attempt sequence;
	// Label is the runtime name.
	TraceRunBegin
	// TraceTaskBegin marks an Alpaca-style task dispatch; Label is the
	// task name, Arg its ID.
	TraceTaskBegin
	// TraceTaskCommitStage is phase one of the two-phase commit: the
	// transition target is staged and the runtime enters commit phase.
	TraceTaskCommitStage
	// TraceTaskCommitReplay is phase two: the redo log is replayed to the
	// home locations and the transition completes. Arg is the number of
	// log entries replayed.
	TraceTaskCommitReplay
	// TracePrivatize records a redo-log insertion (first write by a task
	// to a task-shared location); Label is the region name, Arg the slot.
	TracePrivatize
	// TraceCommit records durable progress (Device.Progress): the point
	// re-execution will not cross again. Wasted-work analysis measures
	// from the last commit to the brown-out.
	TraceCommit
	// TraceLoopIndex records a loop-continuation cursor write (SONIC's
	// per-iteration progress store); Arg is the packed cursor.
	TraceLoopIndex
	// TraceCheckpoint records a periodic-checkpoint register/stack dump;
	// Arg is the number of words dumped.
	TraceCheckpoint
	// TraceCalibrate records a TAILS tile-calibration decision; Label is
	// "trial" or "calibrated", Arg the tile size in words.
	TraceCalibrate
	// TraceDMA records one DMA block transfer; Arg is the word count.
	TraceDMA
	// TraceLEA records one LEA invocation; Label is the vector op
	// ("macv", "fir", "addv"), Arg the element count.
	TraceLEA
	// TraceBrownOut records the energy buffer emptying: the in-flight
	// operation did not take effect and volatile state is about to be
	// lost. Label is the section layer at failure.
	TraceBrownOut
	// TraceReboot records the device coming back up after a failure;
	// Arg is the cumulative reboot count.
	TraceReboot
	// TraceRechargeDone records the capacitor refill completing; the
	// event's DeadSec includes the recharge that just finished.
	TraceRechargeDone

	NumTraceKinds // sentinel
)

var traceKindNames = [NumTraceKinds]string{
	"op-batch", "layer-begin", "layer-end", "run-begin",
	"task-begin", "commit-stage", "commit-replay", "privatize",
	"commit", "loop-index", "checkpoint", "calibrate",
	"dma", "lea", "brown-out", "reboot", "recharge-done",
}

func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return "?"
}

// TraceEvent is one timestamped event. Timestamps are the device's
// accumulated live cycles and consumed energy at the moment of the event;
// DeadSec adds the recharge time spent so far, so wall-clock time is
// Cycles/ClockHz + DeadSec. LevelNJ samples the energy buffer when the
// power system exposes it (-1 otherwise), giving exporters the sawtooth
// voltage/energy track of the paper's Fig. 6.
type TraceEvent struct {
	Kind     TraceKind
	Cycles   int64
	EnergyNJ float64
	DeadSec  float64
	LevelNJ  float64
	Label    string
	Arg      int64
}

// Tracer receives the event stream. Implementations must not call back
// into the device. internal/trace provides the standard bounded ring
// buffer implementation.
type Tracer interface {
	TraceEvent(e TraceEvent)
}

// TraceMasker is an optional Tracer refinement: a consumer that wants only
// a subset of event kinds. SetTracer probes for it once and the device
// then skips masked-out events before constructing them — on hot paths
// (per-iteration loop-index stores, per-write privatize events) the
// construction itself dominates tracing cost, so a consumer that only
// needs the charge-cycle aggregation kinds avoids almost all of it.
type TraceMasker interface {
	Tracer
	TraceMask() uint32
}

// TraceMaskAll is the event mask enabling every kind.
const TraceMaskAll = uint32(1)<<NumTraceKinds - 1

// MaskOf builds an event mask from kinds.
func MaskOf(kinds ...TraceKind) uint32 {
	var m uint32
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// opBatchMax bounds how many plain operations aggregate into one op-batch
// event before a flush, so long kernels still produce periodic timeline
// and energy-level samples.
const opBatchMax = 1024

// SetTracer installs (or, with nil, removes) the event consumer. It also
// probes the power system once for a buffer-level sampler, so per-event
// level sampling is a cached indirect call rather than a type assertion.
func (d *Device) SetTracer(t Tracer) {
	d.tracer = t
	d.levelFn = nil
	d.traceMask = 0
	d.batchTrace = false
	if t == nil {
		d.refreshSlowOp()
		return
	}
	d.traceMask = TraceMaskAll
	if m, ok := t.(TraceMasker); ok {
		d.traceMask = m.TraceMask()
	}
	d.batchTrace = d.traceMask>>uint(TraceOpBatch)&1 == 1
	d.refreshSlowOp()
	if lv, ok := d.Power.(interface{ LevelNJ() float64 }); ok {
		d.levelFn = lv.LevelNJ
	}
}

// Tracer returns the installed event consumer (nil when tracing is off).
func (d *Device) Tracer() Tracer { return d.tracer }

// Emit records an event if tracing is enabled, flushing any pending
// op batch first so stream order matches execution order. Callers on hot
// paths should avoid constructing labels eagerly; passing stored strings
// keeps the disabled path allocation-free.
func (d *Device) Emit(k TraceKind, label string, arg int64) {
	if d.tracer == nil || d.traceMask>>uint(k)&1 == 0 {
		return
	}
	d.flushOpBatch()
	d.emit(k, label, arg)
}

// emit sends one event without flushing (internal).
func (d *Device) emit(k TraceKind, label string, arg int64) {
	if d.traceMask>>uint(k)&1 == 0 {
		return
	}
	level := -1.0
	if d.levelFn != nil {
		level = d.levelFn()
	}
	cyc, pj := d.deriveNow()
	d.tracer.TraceEvent(TraceEvent{
		Kind:     k,
		Cycles:   cyc,
		EnergyNJ: float64(pj) * 1e-3,
		DeadSec:  d.stats.DeadSeconds,
		LevelNJ:  level,
		Label:    label,
		Arg:      arg,
	})
}

// FlushTrace flushes any aggregated-but-unemitted op batch to the tracer,
// so the trace's final timestamps match Stats. Harnesses call it after a
// run completes; it is a no-op when tracing is off.
func (d *Device) FlushTrace() {
	if d.tracer != nil {
		d.flushOpBatch()
	}
}

// flushOpBatch emits the aggregated plain-operation event, attributed to
// the current section's layer.
func (d *Device) flushOpBatch() {
	if d.batchOps == 0 {
		return
	}
	n := d.batchOps
	d.batchOps = 0
	d.emit(TraceOpBatch, d.section.Layer, int64(n))
}
