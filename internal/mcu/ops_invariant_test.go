package mcu

import (
	"testing"

	"repro/internal/energy"
)

// TestOpsTotalMirrorsSectionCounts is the regression guard for the derived
// op accounting: the fast path maintains only per-section counts, and the
// opsTotal mirror (which journal records and WAR violation positions read)
// is resynced from them whenever a per-op observer attaches. At every
// observation point the invariant is
//
//	opsTotal == opsNow() == Σ_k Stats().OpCount[k]
//
// across scalar ops, bulk ChargeBlock/ChargeTrain charges, section
// switches, and observer attach/detach.
func TestOpsTotalMirrorsSectionCounts(t *testing.T) {
	dev := New(energy.Continuous{})
	tokA := dev.SectionToken("a", PhaseKernel)
	tokB := dev.SectionToken("b", PhaseControl)

	check := func(label string, wantMirror bool) {
		t.Helper()
		var sum int64
		for _, n := range dev.Stats().OpCount {
			sum += n
		}
		if now := dev.opsNow(); now != sum {
			t.Fatalf("%s: opsNow()=%d, Σ Stats.OpCount=%d", label, now, sum)
		}
		if wantMirror && dev.opsTotal != sum {
			t.Fatalf("%s: opsTotal=%d, Σ Stats.OpCount=%d", label, dev.opsTotal, sum)
		}
	}

	// Fast path: scalar ops and bulk charges with no observer attached.
	dev.SetSectionTok(tokA)
	for i := 0; i < 7; i++ {
		dev.Op(OpFixedMul)
	}
	blk := dev.NewBlock(
		BlockOp{Tok: tokA, Kind: OpLoadFRAM, N: 2},
		BlockOp{Tok: tokB, Kind: OpStoreFRAM, N: 1})
	if m := dev.ChargeBlock(blk, 5); m != 5 {
		t.Fatalf("ChargeBlock funded %d of 5", m)
	}
	blk2 := dev.NewBlock(BlockOp{Tok: tokB, Kind: OpBranch, N: 3})
	if n := dev.ChargeTrain([]TrainSeg{{Blk: blk, N: 2}, {Blk: blk2, N: 4}}); n != 6 {
		t.Fatalf("ChargeTrain funded %d of 6", n)
	}
	check("fast path", false)

	// Journal attach resyncs the mirror from the section counts; the slow
	// path then maintains it incrementally.
	dev.StartJournal(0)
	check("journal attach", true)
	dev.SetSectionTok(tokB)
	for i := 0; i < 11; i++ {
		dev.Op(OpBranch)
	}
	dev.account(OpLoadFRAM, 4)
	check("journal ops", true)
	dev.StopJournal()

	// Back on the fast path, then the WAR shadow attach resyncs again
	// (violation records carry op positions read from the mirror).
	dev.Op(OpFixedAdd)
	check("fast again", false)
	dev.EnableWARCheck()
	check("war attach", true)
	dev.Op(OpStoreFRAM)
	check("war ops", true)
}
