package mcu

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/mem"
)

// DeviceSnapshot is a deterministic capture of the full simulated machine:
// both memory banks, the power system, all accounting (op counts, section
// stats, reboot/progress counters), the pending trace batch, and the
// in-flight WAR-shadow state. Restoring it rewinds the device bit-exactly,
// so a restored run continues identically to one that never stopped.
type DeviceSnapshot struct {
	fram, sram *mem.Snapshot
	power      energy.SystemState

	stats                Stats
	section              Section
	opsTotal             int64
	opsInRegion          int64
	rebootsSinceProgress int
	batchOps             int

	shadow        *mem.ShadowSnapshot
	warViolations []WARViolation
	warCount      int
}

// Snapshot captures the device's state between operations. The power
// system must implement energy.Snapshotter (all systems in this tree do).
// Snapshots are taken at op boundaries from host code — not from inside an
// Attempt's failure path.
func (d *Device) Snapshot() (*DeviceSnapshot, error) {
	snapper, ok := d.Power.(energy.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("mcu: power system %T does not support snapshots", d.Power)
	}
	s := &DeviceSnapshot{
		fram:                 d.FRAM.Snapshot(nil, nil),
		sram:                 d.SRAM.Snapshot(nil, nil),
		power:                snapper.SnapshotState(),
		stats:                cloneStats(&d.stats),
		section:              d.section,
		opsTotal:             d.opsNow(),
		opsInRegion:          d.opsInRegion,
		rebootsSinceProgress: d.rebootsSinceProgress,
		batchOps:             d.batchOps,
		warCount:             d.warCount,
		warViolations:        append([]WARViolation(nil), d.warViolations...),
	}
	if d.shadow != nil {
		s.shadow = d.shadow.Snapshot()
	}
	return s, nil
}

// Restore rewinds the device to a snapshot taken from it (or from a device
// with an identical memory layout and power-system type). The WAR shadow
// is restored only when both the snapshot and the device have one.
func (d *Device) Restore(s *DeviceSnapshot) error {
	if err := s.fram.RestoreTo(d.FRAM); err != nil {
		return err
	}
	if err := s.sram.RestoreTo(d.SRAM); err != nil {
		return err
	}
	if err := energy.RestoreState(d.Power, s.power); err != nil {
		return err
	}
	d.stats = cloneStats(&s.stats)
	d.opsTotal = s.opsTotal
	d.opsInRegion = s.opsInRegion
	d.rebootsSinceProgress = s.rebootsSinceProgress
	d.batchOps = s.batchOps
	d.warCount = s.warCount
	d.warViolations = append([]WARViolation(nil), s.warViolations...)
	d.secStats = nil
	d.memoLayer, d.memoStats = "", [numMemoPhases]*SectionStats{}
	d.statsGen++
	d.resyncWasted()
	d.SetSection(s.section.Layer, s.section.Phase)
	if d.shadow != nil && s.shadow != nil {
		d.shadow.Restore(s.shadow)
	}
	return nil
}
