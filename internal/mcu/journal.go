package mcu

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// DefaultSnapStride is the op stride between snapshots in a recording when
// the caller does not choose one. Each fork then replays at most this many
// tape entries to rebuild its prefix stats, while the page-shared FRAM
// snapshots keep the train's memory near one live image.
const DefaultSnapStride = 2048

// Journal records one golden (failure-free) run so that any brown-out
// placement can later be forked instead of re-simulated: a snapshot train
// of the machine state at stride intervals, plus op-exact logs of
// everything that happens between snapshots — the op-kind tape, every
// nonvolatile write with its funded op position, section and commit
// events, and WAR violations.
//
// The recording run must never brown out (use Continuous power) and must
// use the bulk charge path (ForceScalar off): bulk batches account their
// ops before applying their effects, which is what guarantees every
// snapshot lands on a consistent op boundary.
//
// After the run, RestorePrefix reconstructs onto a fresh, identically
// deployed device the exact state a from-scratch run would reach at its
// first brown-out on charged op b: the golden prefix of ops 1..b-1
// (deterministically identical across placements, since no power system in
// this tree feeds back into the op stream before the first failure), the
// aborted in-flight region, and the first reboot.
type Journal struct {
	d      *Device
	stride int64
	base   int64 // opsTotal when recording started; tape[i] is charged op base+i+1

	tape    []uint8     // kind of every charged op
	writes  []writeRec  // FRAM writes in op-position order
	secLog  []secRec    // SetSection events
	commits []commitRec // Progress events with the running MaxRegionOps
	warLog  []warRec    // WAR violations with write position and batch end
	snaps   []*prefixSnap

	regIdx map[*mem.Region]int32 // FRAM region -> index, stable during a run

	// In-flight bulk effect batch (StoreRange / DMA): the j-th Put of the
	// batch was funded by charged op batchBase+j+1, and the batch's last op
	// is batchBase+batchN — the op position every WAR record of a fully
	// funded batch carries.
	inBatch           bool
	batchBase, batchN int64
	batchK            int64
	nextSnapAt        int64
	prevFRAM          *mem.Snapshot
	dirty             map[[2]int]struct{} // (region index, page) written since the last snapshot
}

type writeRec struct {
	pos int64 // the charged op that funded this write (host writes: ops so far)
	reg int32
	idx int32
	val int64
}

type secRec struct {
	opIdx int64 // ops charged when the section changed
	sec   Section
}

type commitRec struct {
	opIdx        int64
	maxRegionOps int64
}

type warRec struct {
	v        WARViolation
	writePos int64 // charged op funding the violating write
	batchEnd int64 // last op of its charge batch (== writePos for scalar stores)
}

// prefixSnap is one snapshot-train entry: full machine state at a
// consistent op boundary, plus cursors into the logs so replay resumes
// exactly where the snapshot left off.
type prefixSnap struct {
	pos     int64 // ops charged at capture
	fram    *mem.Snapshot
	stats   Stats
	section Section

	tapeLen, secCur, commitCur, writeCur int
}

// StartJournal begins recording on this device with the given snapshot
// stride (<=0 selects DefaultSnapStride). The first snapshot is taken at
// the first charged operation — after deploy- and setup-time host writes,
// so a fork at the earliest boundary sees them all.
func (d *Device) StartJournal(stride int) *Journal {
	if d.journal != nil {
		panic("mcu: journal already recording")
	}
	if d.ForceScalar {
		panic("mcu: journal recording requires the bulk charge path")
	}
	if stride <= 0 {
		stride = DefaultSnapStride
	}
	// Ops before this point ran on the fast path, which does not maintain
	// the incremental mirror; resync it so recorded positions are exact.
	d.opsTotal = d.opsNow()
	j := &Journal{
		d:          d,
		stride:     int64(stride),
		base:       d.opsTotal,
		regIdx:     make(map[*mem.Region]int32),
		nextSnapAt: d.opsTotal,
		dirty:      make(map[[2]int]struct{}),
	}
	d.journal = j
	d.FRAM.SetObserver(j)
	d.refreshSlowOp()
	return j
}

// StopJournal ends the recording; the journal keeps its data and serves
// RestorePrefix calls from any goroutine.
func (d *Device) StopJournal() {
	if d.journal == nil {
		return
	}
	d.FRAM.SetObserver(nil)
	d.journal = nil
	d.refreshSlowOp()
}

// Snapshots reports the snapshot-train length (for tests and diagnostics).
func (j *Journal) Snapshots() int { return len(j.snaps) }

// OnPut implements mem.PutObserver: every FRAM write during the recording,
// device- or host-side, lands here with the op position that funded it.
// Host-side writes (deploy/setup/runtime bookkeeping) happen between
// charged ops and are positioned at the ops-so-far count: a fork at
// boundary b applies them exactly when the from-scratch run would have
// reached the host code that issued them.
func (j *Journal) OnPut(r *mem.Region, i int, v int64) {
	pos := j.d.opsTotal
	if j.inBatch {
		j.batchK++
		pos = j.batchBase + j.batchK
	}
	ri, ok := j.regIdx[r]
	if !ok {
		ri = int32(j.d.FRAM.IndexOf(r))
		if ri < 0 {
			panic(fmt.Sprintf("mcu: journaled Put to region %q not in FRAM", r.Name))
		}
		j.regIdx[r] = ri
	}
	j.writes = append(j.writes, writeRec{pos: pos, reg: ri, idx: int32(i), val: v})
	j.dirty[[2]int{int(ri), i / mem.SnapPageWords}] = struct{}{}
}

// beginBatch brackets a bulk effect loop whose writes were funded by the
// charge batch ending at the current op count.
func (j *Journal) beginBatch(n int) {
	j.inBatch = true
	j.batchBase = j.d.opsTotal - int64(n)
	j.batchN = int64(n)
	j.batchK = 0
}

func (j *Journal) endBatch() { j.inBatch = false }

// onOp records one charged scalar op, snapshotting first when the stride
// boundary has been reached (the pre-charge instant is a consistent state:
// all earlier effects applied, this op not yet counted).
func (j *Journal) onOp(k OpKind) {
	if j.d.opsTotal >= j.nextSnapAt {
		j.snap()
	}
	j.tape = append(j.tape, uint8(k))
}

// onOps records a charged bulk batch. The whole batch is accounted before
// its effects run, so the snapshot point before it is consistent.
func (j *Journal) onOps(k OpKind, n int) {
	if j.d.opsTotal >= j.nextSnapAt {
		j.snap()
	}
	for i := 0; i < n; i++ {
		j.tape = append(j.tape, uint8(k))
	}
}

// onSection records an attribution change.
func (j *Journal) onSection(sec Section) {
	j.secLog = append(j.secLog, secRec{opIdx: j.d.opsTotal, sec: sec})
}

// onCommit records a Progress call and the running MaxRegionOps.
func (j *Journal) onCommit() {
	j.commits = append(j.commits, commitRec{opIdx: j.d.opsTotal, maxRegionOps: j.d.stats.MaxRegionOps})
}

// onWAR records a WAR violation with its exact write position and the end
// of its charge batch, so forks can rebuild both the violation count and
// the op field a from-scratch run would have recorded (which for bulk
// batches is the post-batch op count, truncated at the brown-out).
func (j *Journal) onWAR(v WARViolation) {
	w := warRec{v: v, writePos: j.d.opsTotal, batchEnd: j.d.opsTotal}
	if j.inBatch {
		w.writePos = j.batchBase + j.batchK + 1
		w.batchEnd = j.batchBase + j.batchN
	}
	j.warLog = append(j.warLog, w)
}

// snap captures a snapshot-train entry at the current op boundary.
func (j *Journal) snap() {
	d := j.d
	var dirtyFn func(region, page int) bool
	if j.prevFRAM != nil {
		dirty := j.dirty
		dirtyFn = func(region, page int) bool {
			_, ok := dirty[[2]int{region, page}]
			return ok
		}
	}
	fs := d.FRAM.Snapshot(j.prevFRAM, dirtyFn)
	j.snaps = append(j.snaps, &prefixSnap{
		pos:       d.opsTotal,
		fram:      fs,
		stats:     cloneStats(&d.stats),
		section:   d.section,
		tapeLen:   len(j.tape),
		secCur:    len(j.secLog),
		commitCur: len(j.commits),
		writeCur:  len(j.writes),
	})
	j.prevFRAM = fs
	j.dirty = make(map[[2]int]struct{})
	j.nextSnapAt = d.opsTotal + j.stride
}

// cloneStats deep-copies the raw accounting (derived fields are recomputed
// by finalizeStats, so copying their stale values is harmless).
func cloneStats(s *Stats) Stats {
	c := *s
	c.Sections = make(map[Section]*SectionStats, len(s.Sections))
	for k, v := range s.Sections {
		vv := *v
		c.Sections[k] = &vv
	}
	return c
}

// MaxOp returns the last charged op position the recording covers.
func (j *Journal) MaxOp() int64 { return j.base + int64(len(j.tape)) }

// LastFRAMWriteAtOrBefore returns the position of the last journaled FRAM
// write at or before op bound, or 0 when there is none. Two brown-out
// boundaries whose prefixes end at the same write position leave identical
// FRAM images, so their forked suffixes are op-for-op identical — the
// equivalence the sweep's dedup layer keys on.
func (j *Journal) LastFRAMWriteAtOrBefore(bound int64) int64 {
	i := sort.Search(len(j.writes), func(i int) bool { return j.writes[i].pos > bound })
	if i == 0 {
		return 0
	}
	return j.writes[i-1].pos
}

// WARPrefix reconstructs the WAR verdict a from-scratch run reaching its
// first brown-out on charged op b would carry: the total violation count
// over the funded prefix, and the retained records (capped at WARMaxKeep)
// with the op field such a run would have recorded — min(batch end, b-1),
// because a brown-out inside a bulk batch truncates its accounting at the
// failing op.
func (j *Journal) WARPrefix(b int64) (count int, kept []WARViolation) {
	pre := b - 1
	for _, w := range j.warLog {
		if w.writePos > pre {
			break
		}
		count++
		if len(kept) < warMaxKeep {
			v := w.v
			v.Op = w.batchEnd
			if v.Op > pre {
				v.Op = pre
			}
			kept = append(kept, v)
		}
	}
	return count, kept
}

// RestorePrefix reconstructs onto fork the exact state of a from-scratch
// run at its first brown-out on charged op b: golden prefix ops 1..b-1
// applied, the in-flight region aborted (SRAM cleared, shadow empty), and
// the first reboot taken (fork.Power.Recharge() is called once, so the
// caller installs the power system in its pre-first-reboot state). The
// fork must be freshly constructed and identically deployed, so its FRAM
// region layout matches the recording's.
func (j *Journal) RestorePrefix(fork *Device, b int64) error {
	pre := b - 1
	if pre < j.base || b > j.MaxOp() {
		return fmt.Errorf("mcu: boundary %d outside recorded range (%d, %d]", b, j.base, j.MaxOp())
	}
	si := sort.Search(len(j.snaps), func(i int) bool { return j.snaps[i].pos > pre }) - 1
	if si < 0 {
		return fmt.Errorf("mcu: no snapshot at or before op %d", pre)
	}
	s := j.snaps[si]

	// Nonvolatile memory: snapshot image plus the journaled writes funded
	// by ops in (s.pos, b-1]. The write log is position-sorted, and every
	// write at or before s.pos is already inside the snapshot image.
	if err := s.fram.RestoreTo(fork.FRAM); err != nil {
		return err
	}
	for wi := s.writeCur; wi < len(j.writes); wi++ {
		w := j.writes[wi]
		if w.pos > pre {
			break
		}
		fork.FRAM.RegionAt(int(w.reg)).Put(int(w.idx), w.val)
	}

	// Stats: replay the op tape from the snapshot, attributing each op to
	// the section current at its charge (section events at opIdx p take
	// effect before op p+1). Section entries are materialized even for
	// zero-op sections, as SetSection does live.
	st := cloneStats(&s.stats)
	sec := s.section
	var secStats *SectionStats
	ensure := func() {
		ss, ok := st.Sections[sec]
		if !ok {
			ss = &SectionStats{}
			st.Sections[sec] = ss
		}
		secStats = ss
	}
	ensure()
	ei := s.secCur
	for pos := s.pos + 1; pos <= pre; pos++ {
		for ei < len(j.secLog) && j.secLog[ei].opIdx < pos {
			sec = j.secLog[ei].sec
			ensure()
			ei++
		}
		k := j.tape[int(pos-j.base)-1]
		secStats.OpCount[k]++
	}
	// Section changes after the last prefix op but before the failing op.
	for ei < len(j.secLog) && j.secLog[ei].opIdx <= pre {
		sec = j.secLog[ei].sec
		ensure()
		ei++
	}
	// MaxRegionOps advances only at commits; take the last one in range.
	for ci := s.commitCur; ci < len(j.commits) && j.commits[ci].opIdx <= pre; ci++ {
		st.MaxRegionOps = j.commits[ci].maxRegionOps
	}

	fork.stats = st
	fork.secStats = nil
	fork.memoLayer, fork.memoStats = "", [numMemoPhases]*SectionStats{}
	fork.statsGen++
	fork.resyncWasted()
	fork.SetSection(sec.Layer, sec.Phase)

	// WAR verdicts: every violation funded within the prefix.
	fork.warCount, fork.warViolations = j.WARPrefix(b)

	// The brown-out and first reboot: the in-flight region aborts (the
	// fork's shadow is already empty), SRAM clears, power recharges.
	fork.SRAM.ClearVolatile()
	fork.opsTotal = pre
	fork.opsInRegion = 0
	fork.batchOps = 0
	fork.stats.Reboots = 1
	fork.stats.DeadSeconds += fork.Power.Recharge()
	fork.rebootsSinceProgress = 1
	return nil
}
