package mcu

import (
	"testing"

	"repro/internal/energy"
)

// BenchmarkDeviceOp measures the operation hot path — the cost every
// simulated instruction pays. The unobserved sub-benchmark is the
// flattened fast path (one slow-path bit check, a charge, and two
// increments); the observer variants take the out-of-line slow path, so
// the spread between them is the price observers pay and the fast path
// does not.
func BenchmarkDeviceOp(b *testing.B) {
	b.Run("unobserved", func(b *testing.B) {
		dev := New(energy.Continuous{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dev.Op(OpFixedMul)
		}
	})
	b.Run("wasted-track", func(b *testing.B) {
		dev := New(energy.Continuous{})
		dev.TrackWasted(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dev.Op(OpFixedMul)
		}
	})
	b.Run("journal", func(b *testing.B) {
		dev := New(energy.Continuous{})
		dev.StartJournal(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dev.Op(OpFixedMul)
		}
	})
}

// BenchmarkDeviceLoadStore measures the untraced memory-access path.
func BenchmarkDeviceLoadStore(b *testing.B) {
	dev := New(energy.Continuous{})
	r := dev.FRAM.MustAlloc("bench", 64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Store(r, i&63, int64(i))
		_ = dev.Load(r, i&63)
	}
}

// countingTracer is the cheapest possible consumer, isolating the
// device-side emit cost.
type countingTracer struct{ n int }

func (t *countingTracer) TraceEvent(TraceEvent) { t.n++ }

// BenchmarkDeviceOpTraced measures the operation path with tracing
// enabled: the per-op cost is a counter increment, with one op-batch
// event every opBatchMax operations.
func BenchmarkDeviceOpTraced(b *testing.B) {
	dev := New(energy.Continuous{})
	dev.SetTracer(&countingTracer{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Op(OpFixedMul)
	}
}
