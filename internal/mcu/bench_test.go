package mcu

import (
	"testing"

	"repro/internal/energy"
)

// BenchmarkDeviceOp measures the untraced operation hot path — the cost
// every simulated instruction pays. The tracing subsystem must keep this
// within ~2% of the pre-trace baseline (its disabled path is a single
// nil-check branch).
func BenchmarkDeviceOp(b *testing.B) {
	dev := New(energy.Continuous{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Op(OpFixedMul)
	}
}

// BenchmarkDeviceLoadStore measures the untraced memory-access path.
func BenchmarkDeviceLoadStore(b *testing.B) {
	dev := New(energy.Continuous{})
	r := dev.FRAM.MustAlloc("bench", 64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Store(r, i&63, int64(i))
		_ = dev.Load(r, i&63)
	}
}

// countingTracer is the cheapest possible consumer, isolating the
// device-side emit cost.
type countingTracer struct{ n int }

func (t *countingTracer) TraceEvent(TraceEvent) { t.n++ }

// BenchmarkDeviceOpTraced measures the operation path with tracing
// enabled: the per-op cost is a counter increment, with one op-batch
// event every opBatchMax operations.
func BenchmarkDeviceOpTraced(b *testing.B) {
	dev := New(energy.Continuous{})
	dev.SetTracer(&countingTracer{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Op(OpFixedMul)
	}
}
