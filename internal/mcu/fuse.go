package mcu

// Fused-kernel charging: the charge-then-compute half of the fast path.
//
// A tape executor's inner loop charges the same multiset of operations on
// every iteration and ends each iteration at a durable commit (Progress).
// A Block captures that per-iteration op profile once; ChargeBlock then
// funds and accounts as many whole iterations as the energy buffer can
// pay for in O(ops-per-block) time, and the caller executes exactly that
// many iterations as one tight loop over raw memory words (internal/kern)
// before handing control back to the scalar path. Because only whole
// iterations are ever funded — never the partial one — the first unfunded
// iteration re-executes on the scalar path, charges op by op, and browns
// out at the identical op index with the identical partial energy
// consumption, so logits, Stats, reboot placement, dead time, and
// wasted-work figures are bit-exact with the scalar path.
//
// ChargeBlock is only legal when Device.CanFuse() holds: no journal, WAR
// shadow, or tracer is attached, so there is no per-op observer to
// notify, and the power system is one of the two devirtualized kinds.

// BlockOp is one op kind charged N times per fused iteration, attributed
// to the section Tok.
type BlockOp struct {
	Tok  SectionTok
	Kind OpKind
	N    int
}

// Block is the pre-computed per-iteration charge profile of one fused
// loop. Build it once per layer visit with NewBlock; it is device-local
// (section tokens are) and immutable.
type Block struct {
	ops     []BlockOp
	unitPJ  int64 // energy per iteration, integer picojoules
	unitOps int64 // charged operations per iteration
}

// UnitOps returns the charged operations per fused iteration.
func (b *Block) UnitOps() int64 { return b.unitOps }

// NewBlock builds the charge profile for one fused-loop iteration. The
// listed ops must be exactly the multiset the scalar iteration charges,
// and the last entry's token must be the section the scalar iteration
// would leave active at its commit.
func (d *Device) NewBlock(ops ...BlockOp) *Block {
	b := &Block{ops: ops}
	for _, op := range ops {
		b.unitPJ += int64(op.N) * d.costPJ[op.Kind]
		b.unitOps += int64(op.N)
	}
	return b
}

// ChargeBlock funds up to n whole iterations of the block and returns how
// many were funded, accounting exactly the funded iterations — op counts,
// section attribution, commit bookkeeping (each fused iteration ends in a
// Progress), and wasted-work tracking. It never charges a partial
// iteration: when the return value m < n, the buffer holds whatever the
// scalar path needs to re-derive the m+1-th iteration's failure point
// itself. Callers must hold CanFuse() and must execute exactly m
// iterations' worth of data movement after a successful charge.
func (d *Device) ChargeBlock(b *Block, n int) int {
	if n <= 0 {
		return 0
	}
	m := n
	if p := d.intPower; p != nil {
		m = p.FundWhole(b.unitPJ, n)
		if m == 0 {
			return 0
		}
	}
	mm := int64(m)
	for i := range b.ops {
		op := &b.ops[i]
		e := &d.toks[op.Tok]
		if e.stats == nil || e.gen != d.statsGen {
			e.stats = d.resolveSection(e.sec)
			e.gen = d.statsGen
		}
		nn := int64(op.N) * mm
		d.stats.OpCount[op.Kind] += nn
		e.stats.OpCount[op.Kind] += nn
		d.opsTotal += nn
	}
	// The scalar loop's last section switch per iteration is the final
	// op's token; leave the device attributed there.
	last := &d.toks[b.ops[len(b.ops)-1].Tok]
	d.section = last.sec
	d.secStats = last.stats
	// Commit bookkeeping: the first fused iteration closes the open
	// region (opsInRegion + one iteration); every later one spans exactly
	// one iteration, which can only be smaller.
	if first := d.opsInRegion + b.unitOps; first > d.stats.MaxRegionOps {
		d.stats.MaxRegionOps = first
	}
	d.opsInRegion = 0
	d.rebootsSinceProgress = 0
	if d.wastedTrack {
		d.pjNow += b.unitPJ * mm
		d.commitNJ = float64(d.pjNow) * 1e-3
	}
	return m
}
