package mcu

// Fused-kernel charging: the charge-then-compute half of the fast path.
//
// A tape executor's inner loop charges the same multiset of operations on
// every iteration and ends each iteration at a durable commit (Progress).
// A Block captures that per-iteration op profile once; ChargeBlock then
// funds and accounts as many whole iterations as the energy buffer can
// pay for in O(ops-per-block) time, and the caller executes exactly that
// many iterations as one tight loop over raw memory words (internal/kern)
// before handing control back to the scalar path. Because only whole
// iterations are ever funded — never the partial one — the first unfunded
// iteration re-executes on the scalar path, charges op by op, and browns
// out at the identical op index with the identical partial energy
// consumption, so logits, Stats, reboot placement, dead time, and
// wasted-work figures are bit-exact with the scalar path.
//
// ChargeBlock is only legal when Device.CanFuse() holds: no journal, WAR
// shadow, or tracer is attached, so there is no per-op observer to
// notify, and the power system is one of the two devirtualized kinds.

// BlockOp is one op kind charged N times per fused iteration, attributed
// to the section Tok.
type BlockOp struct {
	Tok  SectionTok
	Kind OpKind
	N    int
}

// Block is the pre-computed per-iteration charge profile of one fused
// loop. Build it once per layer visit with NewBlock; it is device-local
// (section tokens are) and immutable.
type Block struct {
	ops     []BlockOp
	unitPJ  int64 // energy per iteration, integer picojoules
	unitOps int64 // charged operations per iteration
}

// UnitOps returns the charged operations per fused iteration.
func (b *Block) UnitOps() int64 { return b.unitOps }

// NewBlock builds the charge profile for one fused-loop iteration. The
// listed ops must be exactly the multiset the scalar iteration charges,
// and the last entry's token must be the section the scalar iteration
// would leave active at its commit.
func (d *Device) NewBlock(ops ...BlockOp) *Block {
	b := &Block{ops: ops}
	for _, op := range ops {
		b.unitPJ += int64(op.N) * d.costPJ[op.Kind]
		b.unitOps += int64(op.N)
	}
	return b
}

// ChargeBlock funds up to n whole iterations of the block and returns how
// many were funded, accounting exactly the funded iterations — op counts,
// section attribution, commit bookkeeping (each fused iteration ends in a
// Progress), and wasted-work tracking. It never charges a partial
// iteration: when the return value m < n, the buffer holds whatever the
// scalar path needs to re-derive the m+1-th iteration's failure point
// itself. Callers must hold CanFuse() and must execute exactly m
// iterations' worth of data movement after a successful charge.
func (d *Device) ChargeBlock(b *Block, n int) int {
	if n <= 0 {
		return 0
	}
	m := n
	if p := d.intPower; p != nil {
		m = p.FundWhole(b.unitPJ, n)
		if m == 0 {
			return 0
		}
	}
	// The scalar loop's last section switch per iteration is the final
	// op's token; leave the device attributed there.
	last := d.accountBlockOps(b, int64(m))
	d.section = last.sec
	d.secStats = last.stats
	// Commit bookkeeping: the first fused iteration closes the open
	// region (opsInRegion + one iteration); every later one spans exactly
	// one iteration, which can only be smaller.
	if first := d.opsInRegion + b.unitOps; first > d.stats.MaxRegionOps {
		d.stats.MaxRegionOps = first
	}
	d.opsInRegion = 0
	d.rebootsSinceProgress = 0
	if d.wastedTrack {
		d.pjNow += b.unitPJ * int64(m)
		d.commitNJ = float64(d.pjNow) * 1e-3
	}
	return m
}

// accountBlockOps attributes mm funded iterations of the block's op
// profile to their section tokens and returns the last op's resolved
// token entry (the section the scalar loop would leave active). The
// global per-kind counts and opsTotal are derived from the section
// accounting at Stats() time, so this is the only bookkeeping needed.
func (d *Device) accountBlockOps(b *Block, mm int64) *tokEntry {
	for i := range b.ops {
		op := &b.ops[i]
		e := &d.toks[op.Tok]
		if e.stats == nil || e.gen != d.statsGen {
			e.stats = d.resolveSection(e.sec)
			e.gen = d.statsGen
		}
		e.stats.OpCount[op.Kind] += int64(op.N) * mm
	}
	return &d.toks[b.ops[len(b.ops)-1].Tok]
}

// TrainSeg is one homogeneous stretch of a fused block train: N
// consecutive iterations sharing one per-iteration charge profile.
type TrainSeg struct {
	Blk *Block
	N   int
}

// ChargeTrain funds a train of heterogeneous whole iterations — the
// concatenation of each segment's N iterations of its block, in order —
// and returns how many iterations were funded (a train-order prefix).
// The buffer drains segment by segment with the same exact integer
// arithmetic the scalar path performs op by op, and only whole iterations
// are ever funded — never a partial one — so the first unfunded iteration
// re-executes on the scalar path and browns out at the identical op index
// with identical partial energy. Accounting matches ChargeBlock's per
// segment: the section is left at the last funded op's token, and the
// commit bookkeeping treats every funded iteration as ending in a
// Progress, exactly as the scalar walk would. Callers must hold CanFuse()
// and execute exactly the funded iterations' data movement afterwards.
func (d *Device) ChargeTrain(segs []TrainSeg) int {
	total := 0
	var pjTotal, firstUnit, maxUnit int64
	var last *tokEntry
	for si := range segs {
		sg := &segs[si]
		if sg.N <= 0 {
			continue
		}
		m := sg.N
		if p := d.intPower; p != nil {
			m = p.FundWhole(sg.Blk.unitPJ, sg.N)
			if m == 0 {
				break
			}
		}
		last = d.accountBlockOps(sg.Blk, int64(m))
		// Region sizes: the train's first funded iteration closes the open
		// region (handled below via firstUnit); every later iteration spans
		// exactly its own block's unitOps.
		if total == 0 {
			firstUnit = sg.Blk.unitOps
			if m > 1 && sg.Blk.unitOps > maxUnit {
				maxUnit = sg.Blk.unitOps
			}
		} else if sg.Blk.unitOps > maxUnit {
			maxUnit = sg.Blk.unitOps
		}
		total += m
		pjTotal += sg.Blk.unitPJ * int64(m)
		if m < sg.N {
			break
		}
	}
	if total == 0 {
		return 0
	}
	d.section = last.sec
	d.secStats = last.stats
	if first := d.opsInRegion + firstUnit; first > d.stats.MaxRegionOps {
		d.stats.MaxRegionOps = first
	}
	if maxUnit > d.stats.MaxRegionOps {
		d.stats.MaxRegionOps = maxUnit
	}
	d.opsInRegion = 0
	d.rebootsSinceProgress = 0
	if d.wastedTrack {
		d.pjNow += pjTotal
		d.commitNJ = float64(d.pjNow) * 1e-3
	}
	return total
}
