package mcu

import "repro/internal/mem"

// WARViolation is one detected write-after-read hazard: a nonvolatile word
// whose first access in a commit region was a read and which was later
// overwritten without undo-logging. Replaying that region after a brown-out
// would read the overwritten value and silently diverge from the original
// execution — the §4 bug class loop continuation exists to prevent.
type WARViolation struct {
	Region string // FRAM region name
	Index  int    // word index within the region
	Layer  string // section layer at the violating store
	Phase  Phase  // section phase at the violating store
	Op     int64  // total charged ops when the store executed (failure placement)
}

// WARMaxKeep bounds the retained violation records; WARCount keeps the true
// total so a flood of violations stays visible without unbounded memory.
// Exported so the fork-based campaign can rebuild capped record lists
// identical to a from-scratch run's.
const WARMaxKeep = 64

const warMaxKeep = WARMaxKeep

// EnableWARCheck switches on the memory-consistency shadow tracker. Every
// subsequent FRAM access through Load/Store/StoreIndex/DMA is checked for
// write-after-read hazards between durable commit points (Progress calls
// and power failures both reset the tracking window). Regions previously
// marked as protocol regions are exempted. The check is opt-in because the
// shadow adds per-access bookkeeping the measurement paths should not pay.
func (d *Device) EnableWARCheck() {
	d.shadow = mem.NewShadow()
	d.warViolations = nil
	d.warCount = 0
	for _, r := range d.protocol {
		d.shadow.Exempt(r)
	}
	// Violation records carry op positions; resync the incremental mirror
	// (ops so far ran on the fast path, which does not maintain it).
	d.opsTotal = d.opsNow()
	d.refreshSlowOp()
}

// WARCheckEnabled reports whether the shadow tracker is active.
func (d *Device) WARCheckEnabled() bool { return d.shadow != nil }

// WARViolations returns the retained violation records (at most warMaxKeep;
// see WARCount for the full total).
func (d *Device) WARViolations() []WARViolation { return d.warViolations }

// WARCount returns the total number of violations detected, including any
// beyond the retention bound.
func (d *Device) WARCount() int { return d.warCount }

// MarkProtocol declares regions that implement their own crash-consistency
// protocol — commit cursors, undo/redo logs, checkpoint slots. Their
// write-after-read traffic is the mechanism that keeps everything else
// consistent, so the WAR checker must not flag it. Safe to call whether or
// not checking is enabled, and allocation sites call it unconditionally.
func (d *Device) MarkProtocol(regions ...*mem.Region) {
	d.protocol = append(d.protocol, regions...)
	if d.shadow != nil {
		for _, r := range regions {
			d.shadow.Exempt(r)
		}
	}
}

// MarkLogged records that region word i's pre-state has been durably saved
// this commit region (undo-logged), so overwriting it is recoverable and
// must not be flagged. SONIC's sparse kernel calls this after persisting
// its read cursor and canonical value.
func (d *Device) MarkLogged(r *mem.Region, i int) {
	if d.shadow != nil {
		d.shadow.NoteLogged(r, i)
	}
}

// MarkLoggedRange is MarkLogged over words r[i:i+n] — one call for a
// redo-log replay run instead of one per word.
func (d *Device) MarkLoggedRange(r *mem.Region, i, n int) {
	if d.shadow == nil {
		return
	}
	for j := 0; j < n; j++ {
		d.shadow.NoteLogged(r, i+j)
	}
}

// shadowRead forwards a completed word read to the shadow tracker.
func (d *Device) shadowRead(r *mem.Region, i int) {
	d.shadow.OnRead(r, i)
}

// shadowWrite forwards a completed word write to the shadow tracker and
// records a violation when the tracker flags one.
func (d *Device) shadowWrite(r *mem.Region, i int) {
	if !d.shadow.OnWrite(r, i) {
		return
	}
	d.warCount++
	keep := len(d.warViolations) < warMaxKeep
	if !keep && d.journal == nil {
		return
	}
	v := WARViolation{
		Region: r.Name,
		Index:  i,
		Layer:  d.section.Layer,
		Phase:  d.section.Phase,
		Op:     d.opsTotal,
	}
	if keep {
		d.warViolations = append(d.warViolations, v)
	}
	if j := d.journal; j != nil {
		j.onWAR(v)
	}
}
