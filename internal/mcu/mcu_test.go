package mcu

import (
	"errors"
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mem"
)

func TestOpAccounting(t *testing.T) {
	d := New(energy.Continuous{})
	d.SetSection("L", PhaseKernel)
	d.Op(OpAdd)
	d.Ops(OpMul, 3)
	st := d.Stats()
	if st.OpCount[OpAdd] != 1 || st.OpCount[OpMul] != 3 {
		t.Errorf("op counts wrong: %v %v", st.OpCount[OpAdd], st.OpCount[OpMul])
	}
	wantCycles := int64(d.Cost.Costs[OpAdd].Cycles) + 3*int64(d.Cost.Costs[OpMul].Cycles)
	if st.LiveCycles != wantCycles {
		t.Errorf("cycles = %d, want %d", st.LiveCycles, wantCycles)
	}
	wantE := d.Cost.Costs[OpAdd].EnergyNJ + 3*d.Cost.Costs[OpMul].EnergyNJ
	if math.Abs(st.EnergyNJ()-wantE) > 1e-9 {
		t.Errorf("energy = %v, want %v", st.EnergyNJ(), wantE)
	}
	sec := st.Sections[Section{Layer: "L", Phase: PhaseKernel}]
	if sec == nil || sec.OpCount[OpMul] != 3 {
		t.Errorf("section accounting missing")
	}
}

func TestLoadStoreChargesByMemoryKind(t *testing.T) {
	d := New(energy.Continuous{})
	rf := d.FRAM.MustAlloc("f", 4, 2)
	rs := d.SRAM.MustAlloc("s", 4, 2)
	d.Store(rf, 0, 5)
	d.Store(rs, 0, 6)
	if d.Load(rf, 0) != 5 || d.Load(rs, 0) != 6 {
		t.Fatal("load/store values wrong")
	}
	st := d.Stats()
	if st.OpCount[OpStoreFRAM] != 1 || st.OpCount[OpStoreSRAM] != 1 ||
		st.OpCount[OpLoadFRAM] != 1 || st.OpCount[OpLoadSRAM] != 1 {
		t.Errorf("memory op attribution wrong: %v", st.OpCount)
	}
}

func TestPowerFailureAbortsStore(t *testing.T) {
	// Fail on the 3rd op: the store must NOT take effect.
	d := New(energy.NewFailAfterOps(3, 1000))
	r := d.FRAM.MustAlloc("r", 2, 2)
	completed := d.Attempt(func() {
		d.Op(OpAdd)
		d.Op(OpAdd)
		d.Store(r, 0, 42) // third op: fails
	})
	if completed {
		t.Fatal("attempt should have failed")
	}
	if r.Get(0) != 0 {
		t.Error("failed store must not take effect")
	}
}

func TestRebootClearsSRAMOnly(t *testing.T) {
	d := New(energy.NewFailAfterOps(2, 100))
	rf := d.FRAM.MustAlloc("f", 1, 2)
	rs := d.SRAM.MustAlloc("s", 1, 2)
	d.Attempt(func() {
		d.Store(rf, 0, 7)
		d.Store(rs, 0, 8) // fails here? op 2 -> fails, store lost
	})
	// First store succeeded, second failed.
	d.Reboot()
	if rf.Get(0) != 7 {
		t.Error("FRAM lost data across reboot")
	}
	if rs.Get(0) != 0 {
		t.Error("SRAM should clear on reboot")
	}
	if d.Stats().Reboots != 1 {
		t.Errorf("reboots = %d", d.Stats().Reboots)
	}
}

func TestRunRetriesToCompletion(t *testing.T) {
	// Program: increment a FRAM counter to 10, restart-safe.
	d := New(energy.NewFailAfterOps(7, 7))
	r := d.FRAM.MustAlloc("counter", 1, 2)
	err := d.Run(func() {
		for d.Load(r, 0) < 10 {
			v := d.Load(r, 0)
			d.Store(r, 0, v+1)
			d.Progress()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Get(0) != 10 {
		t.Errorf("counter = %d, want 10", r.Get(0))
	}
	if d.Stats().Reboots == 0 {
		t.Error("expected at least one reboot")
	}
}

func TestRunDetectsNonTermination(t *testing.T) {
	// A task needing 100 ops with a 10-op budget and no progress marks.
	d := New(energy.NewFailAfterOps(10, 10))
	err := d.Run(func() {
		for i := 0; i < 100; i++ {
			d.Op(OpAdd)
		}
	})
	if !errors.Is(err, ErrDoesNotComplete) {
		t.Errorf("err = %v, want ErrDoesNotComplete", err)
	}
}

func TestProgressSuppressesNonTermination(t *testing.T) {
	// Same budget, but the program checkpoints its loop index in FRAM —
	// like SONIC — so it completes.
	d := New(energy.NewFailAfterOps(10, 10))
	idx := d.FRAM.MustAlloc("i", 1, 2)
	err := d.Run(func() {
		for d.Load(idx, 0) < 100 {
			i := d.Load(idx, 0)
			d.Op(OpAdd)
			d.Store(idx, 0, i+1)
			d.Progress()
		}
	})
	if err != nil {
		t.Fatalf("loop-continuation-style program should complete: %v", err)
	}
}

func TestAttemptPropagatesRealPanics(t *testing.T) {
	d := New(energy.Continuous{})
	defer func() {
		if recover() == nil {
			t.Error("non-power panics must propagate")
		}
	}()
	d.Attempt(func() { panic("bug") })
}

func TestNestedAttemptPanics(t *testing.T) {
	d := New(energy.Continuous{})
	defer func() {
		if recover() == nil {
			t.Error("nested Attempt should panic")
		}
	}()
	d.Attempt(func() {
		d.Attempt(func() {})
	})
}

func TestDeadTimeAccounting(t *testing.T) {
	p := energy.NewIntermittent(energy.Cap100uF, energy.ConstantHarvester{Watts: 1e-3})
	d := New(p)
	// Allocation is deploy-time work: it must happen once, outside the
	// intermittently-retried program, or its state resets on every reboot.
	r := d.FRAM.MustAlloc("x", 1, 2)
	err := d.Run(func() {
		for d.Load(r, 0) < 200_000 {
			v := d.Load(r, 0)
			d.Store(r, 0, v+1)
			d.Progress()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Reboots < 2 {
		t.Errorf("expected several reboots, got %d", st.Reboots)
	}
	if st.DeadSeconds <= 0 {
		t.Error("dead time should accumulate")
	}
	if st.TotalSeconds(d.Cost.ClockHz) <= st.LiveSeconds(d.Cost.ClockHz) {
		t.Error("total time should include dead time")
	}
}

func TestDMACopies(t *testing.T) {
	d := New(energy.Continuous{})
	src := d.FRAM.MustAlloc("src", 8, 2)
	dst := d.SRAM.MustAlloc("dst", 8, 2)
	for i := 0; i < 8; i++ {
		src.Put(i, int64(i*i))
	}
	d.DMA(dst, 0, src, 0, 8)
	for i := 0; i < 8; i++ {
		if dst.Get(i) != int64(i*i) {
			t.Fatalf("dst[%d] = %d", i, dst.Get(i))
		}
	}
	if d.Stats().OpCount[OpDMASetup] != 1 || d.Stats().OpCount[OpDMAWord] != 8 {
		t.Error("DMA op accounting wrong")
	}
}

func TestDMAPartialOnPowerFailure(t *testing.T) {
	// Power fails on the 4th op (setup + word + word + failing word):
	// exactly 2 words must land.
	d := New(energy.NewFailAfterOps(4, 1000))
	src := d.FRAM.MustAlloc("src", 8, 2)
	dst := d.FRAM.MustAlloc("dst", 8, 2)
	for i := 0; i < 8; i++ {
		src.Put(i, 1)
	}
	if d.Attempt(func() { d.DMA(dst, 0, src, 0, 8) }) {
		t.Fatal("DMA should have been interrupted")
	}
	n := 0
	for i := 0; i < 8; i++ {
		if dst.Get(i) == 1 {
			n++
		}
	}
	if n != 2 {
		t.Errorf("partial DMA wrote %d words, want 2", n)
	}
}

func TestLEAMacV(t *testing.T) {
	d := New(energy.Continuous{})
	x := d.SRAM.MustAlloc("x", 4, 2)
	y := d.SRAM.MustAlloc("y", 4, 2)
	for i := 0; i < 4; i++ {
		x.Put(i, int64(fixed.FromFloat(0.5)))
		y.Put(i, int64(fixed.FromFloat(0.25)))
	}
	acc := d.LEAMacV(x, 0, y, 0, 4)
	if got := acc.Float(); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("dot = %v, want 0.5", got)
	}
	if d.Stats().OpCount[OpLEAInvoke] != 1 || d.Stats().OpCount[OpLEAElem] != 4 {
		t.Error("LEA op accounting wrong")
	}
}

func TestLEARejectsFRAMOperand(t *testing.T) {
	d := New(energy.Continuous{})
	x := d.FRAM.MustAlloc("x", 4, 2)
	y := d.SRAM.MustAlloc("y", 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("LEA must reject FRAM operands")
		}
	}()
	d.LEAMacV(x, 0, y, 0, 4)
}

func TestLEAFIR(t *testing.T) {
	d := New(energy.Continuous{})
	in := d.SRAM.MustAlloc("in", 6, 2)
	coef := d.SRAM.MustAlloc("coef", 2, 2)
	out := d.SRAM.MustAlloc("out", 5, 2)
	// in = [1,2,3,4,5,6]/8, coef = [1,1]/8 -> out[i] = (in[i]+in[i+1])/64
	for i := 0; i < 6; i++ {
		in.Put(i, int64(fixed.FromFloat(float64(i+1)/8)))
	}
	coef.Put(0, int64(fixed.FromFloat(0.125)))
	coef.Put(1, int64(fixed.FromFloat(0.125)))
	d.LEAFIR(out, 0, in, 0, coef, 0, 2, 5)
	for i := 0; i < 5; i++ {
		want := (float64(i+1) + float64(i+2)) / 64
		got := fixed.Q15(out.Get(i)).Float()
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("fir[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestLEAFootprintEnforced(t *testing.T) {
	d := New(energy.Continuous{})
	big := mem.LEABufferBytes // twice the bank in words across x and y
	x := d.SRAM.MustAlloc("x", big/2, 2)
	y := d.SRAM.MustAlloc("y", big/2, 2)
	defer func() {
		if recover() == nil {
			t.Error("oversized LEA working set should panic")
		}
	}()
	d.LEAMacV(x, 0, y, 0, big/2)
}

func TestLEAAddV(t *testing.T) {
	d := New(energy.Continuous{})
	a := d.SRAM.MustAlloc("a", 3, 2)
	b := d.SRAM.MustAlloc("b", 3, 2)
	dst := d.SRAM.MustAlloc("dst", 3, 2)
	for i := 0; i < 3; i++ {
		a.Put(i, int64(fixed.FromFloat(0.3)))
		b.Put(i, int64(fixed.FromFloat(0.4)))
	}
	d.LEAAddV(dst, 0, a, 0, b, 0, 3)
	for i := 0; i < 3; i++ {
		if got := fixed.Q15(dst.Get(i)).Float(); math.Abs(got-0.7) > 1e-3 {
			t.Errorf("add[%d] = %v", i, got)
		}
	}
}

func TestMaxLEATileWords(t *testing.T) {
	if MaxLEATileWords(2) != mem.LEABufferBytes/4 {
		t.Errorf("MaxLEATileWords(2) = %d", MaxLEATileWords(2))
	}
}

func TestSectionSwitching(t *testing.T) {
	d := New(energy.Continuous{})
	d.SetSection("conv1", PhaseKernel)
	d.Op(OpAdd)
	d.SetSection("conv1", PhaseControl)
	d.Op(OpAdd)
	d.SetSection("conv1", PhaseKernel) // back to existing section
	d.Op(OpAdd)
	k := d.Stats().Sections[Section{Layer: "conv1", Phase: PhaseKernel}]
	c := d.Stats().Sections[Section{Layer: "conv1", Phase: PhaseControl}]
	if k.OpCount[OpAdd] != 2 || c.OpCount[OpAdd] != 1 {
		t.Errorf("section split wrong: kernel %d control %d", k.OpCount[OpAdd], c.OpCount[OpAdd])
	}
	layer, phase := d.Section()
	if layer != "conv1" || phase != PhaseKernel {
		t.Errorf("Section() = %s/%s", layer, phase)
	}
}

func TestResetStats(t *testing.T) {
	d := New(energy.Continuous{})
	d.Op(OpAdd)
	d.ResetStats()
	if d.Stats().OpCount[OpAdd] != 0 || d.Stats().EnergyNJ() != 0 {
		t.Error("stats not cleared")
	}
	d.Op(OpAdd) // must not panic after reset
}

func BenchmarkOp(b *testing.B) {
	d := New(energy.Continuous{})
	for i := 0; i < b.N; i++ {
		d.Op(OpAdd)
	}
}

// TestCostModelRelations pins the cost relations the reproduction's results
// depend on (see DESIGN.md §4). If a recalibration breaks one of these,
// the evaluation shapes are no longer meaningful.
func TestCostModelRelations(t *testing.T) {
	c := DefaultCostModel().Costs
	if !(c[OpStoreFRAM].EnergyNJ >= 2.5*c[OpLoadFRAM].EnergyNJ) {
		t.Error("FRAM writes must cost ~3x FRAM reads")
	}
	if !(c[OpStoreFRAM].EnergyNJ >= 4*c[OpStoreSRAM].EnergyNJ) {
		t.Error("FRAM writes must cost >=4x SRAM writes")
	}
	if !(c[OpLEAElem].EnergyNJ < c[OpFixedMul].EnergyNJ/5) {
		t.Error("LEA per-element MAC must be far cheaper than software fixed multiply")
	}
	if !(c[OpDMAWord].EnergyNJ < c[OpLoadFRAM].EnergyNJ+c[OpStoreSRAM].EnergyNJ) {
		t.Error("DMA per word must beat a CPU load+store copy")
	}
	if !(c[OpDispatch].EnergyNJ > 10*c[OpTransition].EnergyNJ) {
		t.Error("Alpaca dispatch must dwarf SONIC's light transition")
	}
	if !(c[OpMul].Cycles >= 9) {
		t.Error("hardware multiplier is a 9-cycle peripheral (para 10)")
	}
}

func TestStoreIndexJITFeature(t *testing.T) {
	d := New(energy.Continuous{})
	r := d.FRAM.MustAlloc("idx", 1, 2)
	d.StoreIndex(r, 0, 7)
	if d.Stats().OpCount[OpStoreFRAM] != 1 {
		t.Error("without JIT, StoreIndex is an FRAM store")
	}
	d.JITIndexCheckpoint = true
	d.StoreIndex(r, 0, 9)
	if d.Stats().OpCount[OpStoreSRAM] != 1 {
		t.Error("with JIT, StoreIndex charges an SRAM store")
	}
	if r.Get(0) != 9 {
		t.Error("JIT StoreIndex must still persist the value")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpKind(0); k < NumOps; k++ {
		if k.String() == "?" || k.String() == "" {
			t.Errorf("op %d has no name", k)
		}
	}
	if NumOps.String() != "?" {
		t.Error("out-of-range op should stringify to ?")
	}
}
