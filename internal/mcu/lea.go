package mcu

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/kern"
	"repro/internal/mem"
)

// This file models the TI Low-Energy Accelerator (LEA) and the DMA engine.
// LEA's defining constraints (§7, §10) are modelled explicitly:
//
//   - LEA reads and writes only the 4 KB SRAM bank, never FRAM, so all
//     operands must be DMA'd in and results DMA'd out;
//   - it supports vector MAC and one-dimensional FIR discrete-time
//     convolution on Q15 fixed point;
//   - it has no vector left-shift and no scalar multiply, so rescaling
//     passes happen in software (TAILS charges them as control ops);
//   - each invocation has a fixed cost that must be amortized over the
//     vector length.

// DMA copies n words from src[srcOff:] to dst[dstOff:], charging a setup
// cost plus one DMA-word cost per element. The copy proceeds word by word:
// a power failure mid-transfer leaves a partial destination, exactly the
// hazard loop-ordered buffering exists to tolerate.
func (d *Device) DMA(dst *mem.Region, dstOff int, src *mem.Region, srcOff, n int) {
	d.Emit(TraceDMA, dst.Name, int64(n))
	d.Op(OpDMASetup)
	if n <= 0 {
		return
	}
	// Bulk path: one charge for the whole block, with exactly the funded
	// prefix of words transferred — the same partial destination a
	// word-by-word failure leaves.
	funded := d.chargeOps(OpDMAWord, n)
	if d.journal == nil && d.shadow == nil {
		// Bulk move over raw words; SetRange keeps any Put observer fed.
		dst.SetRange(dstOff, src.ROWords()[srcOff:srcOff+funded])
		if funded < n {
			d.brownOut(OpDMAWord)
		}
		return
	}
	if j := d.journal; j != nil {
		j.beginBatch(funded)
	}
	for i := 0; i < funded; i++ {
		if d.shadow != nil {
			d.shadowRead(src, srcOff+i)
			d.shadowWrite(dst, dstOff+i)
		}
		dst.Put(dstOff+i, src.Get(srcOff+i))
	}
	if j := d.journal; j != nil {
		j.endBatch()
	}
	if funded < n {
		d.brownOut(OpDMAWord)
	}
}

// checkLEAOperand panics if a LEA operand is not in SRAM — on real hardware
// this is a wiring impossibility, so it is a programming bug here.
func checkLEAOperand(name string, r *mem.Region) {
	if r.Kind() != mem.SRAM {
		panic(fmt.Sprintf("mcu: LEA operand %s must reside in SRAM, got %s", name, r.Kind()))
	}
}

// checkLEAFootprint panics if the combined operand size exceeds the LEA
// SRAM bank.
func checkLEAFootprint(words int) {
	if words*2 > mem.LEABufferBytes {
		panic(fmt.Sprintf("mcu: LEA working set %d words exceeds %dB bank", words, mem.LEABufferBytes))
	}
}

// LEAMacV computes the Q15 dot product of x[xOff:xOff+n] and y[yOff:yOff+n]
// into a 32-bit accumulator (LEA's MAC instruction). Operands must be in
// SRAM. Charges one invocation plus one element cost per MAC.
func (d *Device) LEAMacV(x *mem.Region, xOff int, y *mem.Region, yOff, n int) fixed.Acc {
	checkLEAOperand("x", x)
	checkLEAOperand("y", y)
	checkLEAFootprint(2 * n)
	d.Emit(TraceLEA, "macv", int64(n))
	d.Op(OpLEAInvoke)
	// One bulk charge for the whole vector. All operands are SRAM, which a
	// brown-out wipes anyway, so charging before computing is
	// indistinguishable from the interleaved scalar order.
	d.Ops(OpLEAElem, n)
	// Reads only — no observer or WAR shadow sees SRAM Gets, so the raw
	// word loop is unconditionally equivalent.
	return fixed.Acc(kern.DotQ15(x.ROWords(), y.ROWords(), xOff, yOff, n))
}

// LEAFIR computes a 1-D FIR discrete-time convolution:
//
//	out[i] = sat( Σ_k coef[k] * in[i+k] >> 15 ),  i in [0, outN)
//
// requiring in to hold outN+coefN-1 valid samples. All three regions must
// be in SRAM. Outputs accumulate LEA's 32-bit precision internally and
// saturate to Q15 on writeback (LEA's fixed output format — any further
// rescaling is the software's problem, as on real hardware).
func (d *Device) LEAFIR(out *mem.Region, outOff int, in *mem.Region, inOff int,
	coef *mem.Region, coefOff, coefN, outN int) {
	checkLEAOperand("out", out)
	checkLEAOperand("in", in)
	checkLEAOperand("coef", coef)
	checkLEAFootprint(outN + coefN + outN + coefN - 1)
	d.Emit(TraceLEA, "fir", int64(outN))
	d.Op(OpLEAInvoke)
	// Bulk charge for the whole invocation; operands and outputs are SRAM,
	// lost at brown-out, so the charge/compute order is unobservable.
	d.Ops(OpLEAElem, outN*coefN)
	if !out.Observed() {
		kern.FIR(out.Words(), in.ROWords(), coef.ROWords(), outOff, inOff, coefOff, coefN, outN)
		return
	}
	for i := 0; i < outN; i++ {
		var acc fixed.Acc
		for k := 0; k < coefN; k++ {
			acc = acc.MAC(fixed.Q15(coef.Get(coefOff+k)), fixed.Q15(in.Get(inOff+i+k)))
		}
		out.Put(outOff+i, int64(acc.Sat()))
	}
}

// LEAAddV computes elementwise saturating addition dst[i] = sat(a[i]+b[i])
// over n Q15 elements (LEA's vector add), used by TAILS to accumulate
// partial convolution results.
func (d *Device) LEAAddV(dst *mem.Region, dstOff int, a *mem.Region, aOff int,
	b *mem.Region, bOff, n int) {
	checkLEAOperand("dst", dst)
	checkLEAOperand("a", a)
	checkLEAOperand("b", b)
	checkLEAFootprint(3 * n)
	d.Emit(TraceLEA, "addv", int64(n))
	d.Op(OpLEAInvoke)
	d.Ops(OpLEAElem, n) // bulk charge; SRAM-only effects (see LEAMacV)
	if !dst.Observed() {
		kern.AddSatV(dst.Words(), a.ROWords(), b.ROWords(), dstOff, aOff, bOff, n)
		return
	}
	for i := 0; i < n; i++ {
		s := fixed.Add(fixed.Q15(a.Get(aOff+i)), fixed.Q15(b.Get(bOff+i)))
		dst.Put(dstOff+i, int64(s))
	}
}

// MaxLEATileWords returns the largest vector length (in words) whose
// working set of nBuffers equal-sized buffers fits the LEA bank. TAILS's
// calibration starts from this hardware bound and shrinks further until a
// tile completes within the energy buffer.
func MaxLEATileWords(nBuffers int) int {
	return mem.LEABufferBytes / 2 / nBuffers
}
