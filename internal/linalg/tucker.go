package linalg

import (
	"repro/internal/tensor"
)

// Unfold returns the mode-n matricization of t: a matrix of shape
// (t.Dim(n), prod of the other dims), with the remaining modes flattened in
// row-major order of the original tensor. Fold inverts it.
func Unfold(t *tensor.Tensor, mode int) *tensor.Tensor {
	shape := t.Shape()
	rows := shape[mode]
	cols := t.Len() / rows
	out := tensor.New(rows, cols)
	idx := make([]int, len(shape))
	for flat := 0; flat < t.Len(); flat++ {
		// Decode flat index into multi-index (row-major).
		rem := flat
		for i := len(shape) - 1; i >= 0; i-- {
			idx[i] = rem % shape[i]
			rem /= shape[i]
		}
		r := idx[mode]
		// Column index: row-major over all modes except `mode`.
		c := 0
		for i := 0; i < len(shape); i++ {
			if i == mode {
				continue
			}
			c = c*shape[i] + idx[i]
		}
		out.Data()[r*cols+c] = t.Data()[flat]
	}
	return out
}

// Fold inverts Unfold: it reassembles a tensor of the given shape from its
// mode-n matricization.
func Fold(m *tensor.Tensor, mode int, shape []int) *tensor.Tensor {
	out := tensor.New(shape...)
	cols := out.Len() / shape[mode]
	idx := make([]int, len(shape))
	for flat := 0; flat < out.Len(); flat++ {
		rem := flat
		for i := len(shape) - 1; i >= 0; i-- {
			idx[i] = rem % shape[i]
			rem /= shape[i]
		}
		r := idx[mode]
		c := 0
		for i := 0; i < len(shape); i++ {
			if i == mode {
				continue
			}
			c = c*shape[i] + idx[i]
		}
		out.Data()[flat] = m.Data()[r*cols+c]
	}
	return out
}

// ModeMul computes the mode-n product Y = X ×ₙ M, where M has shape
// (J, X.Dim(n)); the result replaces dimension n with J.
func ModeMul(x *tensor.Tensor, m *tensor.Tensor, mode int) *tensor.Tensor {
	unf := Unfold(x, mode)        // (In, rest)
	prod := tensor.MatMul(m, unf) // (J, rest)
	shape := append([]int(nil), x.Shape()...)
	shape[mode] = m.Dim(0)
	return Fold(prod, mode, shape)
}

// Tucker is a Tucker decomposition X ≈ Core ×₁ F[0] ×₂ F[1] ... with factor
// matrices F[n] of shape (X.Dim(n), Rank[n]).
type Tucker struct {
	Core    *tensor.Tensor
	Factors []*tensor.Tensor
	Ranks   []int
}

// hooiIters bounds the alternating optimization; HOOI converges quickly for
// the small filter tensors GENESIS separates.
const hooiIters = 8

// HOOI computes a rank-(ranks...) Tucker decomposition of x using
// higher-order orthogonal iteration. Ranks are clamped to the corresponding
// dimension sizes.
func HOOI(x *tensor.Tensor, ranks []int) Tucker {
	nd := x.Dims()
	if len(ranks) != nd {
		panic("linalg: HOOI rank arity mismatch")
	}
	r := make([]int, nd)
	for i := range ranks {
		r[i] = ranks[i]
		if r[i] > x.Dim(i) {
			r[i] = x.Dim(i)
		}
		if r[i] < 1 {
			r[i] = 1
		}
	}

	// Initialize factors via HOSVD: leading left singular vectors of each
	// unfolding. An unfolding may have fewer singular triplets than the
	// requested rank (its other dimensions bound it), so the effective rank
	// is whatever the factor actually provides.
	factors := make([]*tensor.Tensor, nd)
	for n := 0; n < nd; n++ {
		factors[n] = leadingLeftVectors(Unfold(x, n), r[n])
		r[n] = factors[n].Dim(1)
	}

	for iter := 0; iter < hooiIters; iter++ {
		for n := 0; n < nd; n++ {
			// Project x by all factors except n, then refresh factor n.
			// The projected unfolding's rank is bounded by the other
			// modes' ranks, so the effective rank may shrink further.
			y := x
			for m := 0; m < nd; m++ {
				if m == n {
					continue
				}
				y = ModeMul(y, tensor.Transpose(factors[m]), m)
			}
			factors[n] = leadingLeftVectors(Unfold(y, n), r[n])
			r[n] = factors[n].Dim(1)
		}
	}

	core := x
	for n := 0; n < nd; n++ {
		core = ModeMul(core, tensor.Transpose(factors[n]), n)
	}
	return Tucker{Core: core, Factors: factors, Ranks: r}
}

// leadingLeftVectors returns the first k left singular vectors of m as an
// (m.Dim(0), k) matrix.
func leadingLeftVectors(m *tensor.Tensor, k int) *tensor.Tensor {
	d := Decompose(m)
	rows := m.Dim(0)
	if k > len(d.S) {
		k = len(d.S)
	}
	out := tensor.New(rows, k)
	for i := 0; i < rows; i++ {
		for j := 0; j < k; j++ {
			out.Set(d.U.At(i, j), i, j)
		}
	}
	return out
}

// Reconstruct expands the Tucker decomposition back to a full tensor.
func (t Tucker) Reconstruct() *tensor.Tensor {
	y := t.Core
	for n := range t.Factors {
		y = ModeMul(y, t.Factors[n], n)
	}
	return y
}

// Params returns the number of parameters stored by the decomposition
// (core plus factors), the quantity GENESIS trades against accuracy.
func (t Tucker) Params() int {
	p := t.Core.Len()
	for _, f := range t.Factors {
		p += f.Len()
	}
	return p
}
