// Package linalg implements the dense linear algebra GENESIS needs to
// separate network layers: singular value decomposition (one-sided Jacobi),
// rank-k truncation, tensor matricization, and the Tucker decomposition via
// higher-order orthogonal iteration (HOOI), following De Lathauwer et al.
package linalg

import (
	"math"

	"repro/internal/tensor"
)

// SVD holds a thin singular value decomposition A = U * diag(S) * V^T,
// with U of shape (m,r), S of length r, and V of shape (n,r), where
// r = min(m,n). Singular values are sorted in descending order.
type SVD struct {
	U *tensor.Tensor
	S []float64
	V *tensor.Tensor
}

// jacobiSweeps bounds the number of full sweeps of the one-sided Jacobi
// iteration; convergence is typically reached far earlier.
const jacobiSweeps = 60

// jacobiTol is the relative off-diagonal tolerance for convergence.
const jacobiTol = 1e-12

// Decompose computes the thin SVD of a 2-D tensor using one-sided Jacobi
// rotations. One-sided Jacobi orthogonalizes the columns of a working copy
// of A while accumulating the rotations into V; the column norms become the
// singular values and the normalized columns become U.
func Decompose(a *tensor.Tensor) SVD {
	if a.Dims() != 2 {
		panic("linalg: Decompose requires a 2-D tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	transposed := false
	work := a.Clone()
	if m < n {
		// One-sided Jacobi wants tall matrices; decompose A^T and swap U/V.
		work = tensor.Transpose(work)
		m, n = n, m
		transposed = true
	}

	// cols[j] is column j of the working matrix (length m).
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			cols[j][i] = work.At(i, j)
		}
	}
	// v accumulates right rotations; starts as identity (n×n).
	v := tensor.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(1, i, i)
	}

	for sweep := 0; sweep < jacobiSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha, beta, gamma := 0.0, 0.0, 0.0
				cp, cq := cols[p], cols[q]
				for i := 0; i < m; i++ {
					alpha += cp[i] * cp[i]
					beta += cq[i] * cq[i]
					gamma += cp[i] * cq[i]
				}
				if math.Abs(gamma) > jacobiTol*math.Sqrt(alpha*beta) {
					converged = false
					// Compute the Jacobi rotation that zeroes gamma.
					zeta := (beta - alpha) / (2 * gamma)
					t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
					c := 1 / math.Sqrt(1+t*t)
					s := c * t
					for i := 0; i < m; i++ {
						tmp := cp[i]
						cp[i] = c*tmp - s*cq[i]
						cq[i] = s*tmp + c*cq[i]
					}
					for i := 0; i < n; i++ {
						tmp := v.At(i, p)
						v.Set(c*tmp-s*v.At(i, q), i, p)
						v.Set(s*tmp+c*v.At(i, q), i, q)
					}
				}
			}
		}
		if converged {
			break
		}
	}

	// Extract singular values and left vectors.
	s := make([]float64, n)
	u := tensor.New(m, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			norm += cols[j][i] * cols[j][i]
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(cols[j][i]/norm, i, j)
			}
		}
	}

	// Sort by descending singular value (simple selection sort; n is small).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[order[j]] > s[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedS := make([]float64, n)
	sortedU := tensor.New(m, n)
	sortedV := tensor.New(n, n)
	for newJ, oldJ := range order {
		sortedS[newJ] = s[oldJ]
		for i := 0; i < m; i++ {
			sortedU.Set(u.At(i, oldJ), i, newJ)
		}
		for i := 0; i < n; i++ {
			sortedV.Set(v.At(i, oldJ), i, newJ)
		}
	}

	if transposed {
		return SVD{U: sortedV, S: sortedS, V: sortedU}
	}
	return SVD{U: sortedU, S: sortedS, V: sortedV}
}

// Reconstruct returns U * diag(S) * V^T.
func (d SVD) Reconstruct() *tensor.Tensor {
	r := len(d.S)
	us := d.U.Clone()
	for i := 0; i < us.Dim(0); i++ {
		for j := 0; j < r; j++ {
			us.Set(us.At(i, j)*d.S[j], i, j)
		}
	}
	return tensor.MatMul(us, tensor.Transpose(d.V))
}

// Truncate keeps only the top-k singular triplets.
func (d SVD) Truncate(k int) SVD {
	if k >= len(d.S) {
		return d
	}
	m, n := d.U.Dim(0), d.V.Dim(0)
	u := tensor.New(m, k)
	v := tensor.New(n, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			u.Set(d.U.At(i, j), i, j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			v.Set(d.V.At(i, j), i, j)
		}
	}
	return SVD{U: u, S: append([]float64(nil), d.S[:k]...), V: v}
}

// LowRankFactors returns matrices (A1, A2) with A ≈ A1*A2, where A1 is
// (m,k) and A2 is (k,n). This is the "separation" GENESIS applies to
// fully-connected layers: an m×n layer becomes m×k followed by k×n.
// The singular values are split evenly (sqrt) across the two factors to
// balance their dynamic ranges for later quantization.
func (d SVD) LowRankFactors(k int) (*tensor.Tensor, *tensor.Tensor) {
	t := d.Truncate(k)
	m, n := t.U.Dim(0), t.V.Dim(0)
	a1 := tensor.New(m, k)
	a2 := tensor.New(k, n)
	for j := 0; j < k; j++ {
		root := math.Sqrt(t.S[j])
		for i := 0; i < m; i++ {
			a1.Set(t.U.At(i, j)*root, i, j)
		}
		for i := 0; i < n; i++ {
			a2.Set(t.V.At(i, j)*root, j, i)
		}
	}
	return a1, a2
}

// RankForEnergy returns the smallest rank whose retained singular-value
// energy (sum of squares) is at least frac of the total. frac in (0,1].
func (d SVD) RankForEnergy(frac float64) int {
	total := 0.0
	for _, s := range d.S {
		total += s * s
	}
	if total == 0 {
		return 1
	}
	acc := 0.0
	for i, s := range d.S {
		acc += s * s
		if acc >= frac*total {
			return i + 1
		}
	}
	return len(d.S)
}
