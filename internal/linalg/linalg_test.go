package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randTensor(r *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.RandNormal(r, 1)
	return t
}

func TestSVDReconstructsExactly(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 0))
	for _, dims := range [][2]int{{4, 4}, {6, 3}, {3, 6}, {1, 5}, {5, 1}} {
		a := randTensor(r, dims[0], dims[1])
		d := Decompose(a)
		back := d.Reconstruct()
		if !tensor.Equal(a, back, 1e-8) {
			t.Errorf("SVD reconstruct failed for %v", dims)
		}
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 0))
	a := randTensor(r, 8, 5)
	d := Decompose(a)
	for i := 1; i < len(d.S); i++ {
		if d.S[i] > d.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", d.S)
		}
		if d.S[i] < 0 {
			t.Fatalf("negative singular value: %v", d.S)
		}
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 0))
	a := randTensor(r, 7, 4)
	d := Decompose(a)
	utu := tensor.MatMul(tensor.Transpose(d.U), d.U)
	vtv := tensor.MatMul(tensor.Transpose(d.V), d.V)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(utu.At(i, j)-want) > 1e-8 {
				t.Fatalf("U not orthonormal at (%d,%d): %v", i, j, utu.At(i, j))
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-8 {
				t.Fatalf("V not orthonormal at (%d,%d): %v", i, j, vtv.At(i, j))
			}
		}
	}
}

// Property: SVD reconstruction holds for random sizes and seeds.
func TestSVDReconstructProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		m, n := 1+r.IntN(8), 1+r.IntN(8)
		a := randTensor(r, m, n)
		d := Decompose(a)
		return tensor.Equal(a, d.Reconstruct(), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLowRankFactorsOfLowRankMatrix(t *testing.T) {
	// Build an exactly rank-2 matrix; rank-2 factors must reconstruct it.
	r := rand.New(rand.NewPCG(5, 0))
	a1 := randTensor(r, 6, 2)
	a2 := randTensor(r, 2, 5)
	a := tensor.MatMul(a1, a2)
	d := Decompose(a)
	f1, f2 := d.LowRankFactors(2)
	back := tensor.MatMul(f1, f2)
	if !tensor.Equal(a, back, 1e-8) {
		t.Errorf("rank-2 factorization of rank-2 matrix should be exact")
	}
	if f1.Dim(1) != 2 || f2.Dim(0) != 2 {
		t.Errorf("factor shapes wrong: %v %v", f1.Shape(), f2.Shape())
	}
}

func TestTruncationErrorDecreasesWithRank(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 0))
	a := randTensor(r, 8, 8)
	d := Decompose(a)
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		f1, f2 := d.LowRankFactors(k)
		diff := a.Clone()
		diff.AddScaled(-1, tensor.MatMul(f1, f2))
		err := diff.Norm2()
		if err > prev+1e-9 {
			t.Fatalf("error increased with rank at k=%d: %v > %v", k, err, prev)
		}
		prev = err
	}
	if prev > 1e-8 {
		t.Errorf("full-rank factorization should be exact, err=%v", prev)
	}
}

func TestRankForEnergy(t *testing.T) {
	d := SVD{S: []float64{4, 2, 1, 0.1}}
	// total energy 16+4+1+0.01 = 21.01; rank 1 keeps 16/21.01 ≈ 0.761
	if got := d.RankForEnergy(0.5); got != 1 {
		t.Errorf("RankForEnergy(0.5) = %d, want 1", got)
	}
	if got := d.RankForEnergy(0.95); got != 2 {
		t.Errorf("RankForEnergy(0.95) = %d, want 2", got)
	}
	if got := d.RankForEnergy(1.0); got != 4 {
		t.Errorf("RankForEnergy(1.0) = %d, want 4", got)
	}
}

func TestUnfoldFoldRoundtrip(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 0))
	x := randTensor(r, 3, 4, 5)
	for mode := 0; mode < 3; mode++ {
		u := Unfold(x, mode)
		if u.Dim(0) != x.Dim(mode) || u.Dim(1) != x.Len()/x.Dim(mode) {
			t.Fatalf("unfold shape wrong for mode %d: %v", mode, u.Shape())
		}
		back := Fold(u, mode, x.Shape())
		if !tensor.Equal(x, back, 0) {
			t.Fatalf("fold(unfold) != identity for mode %d", mode)
		}
	}
}

func TestModeMulMatchesMatMulForMatrices(t *testing.T) {
	// For a 2-D tensor, ×₀ M is M*X and ×₁ M is X*Mᵀ.
	r := rand.New(rand.NewPCG(17, 0))
	x := randTensor(r, 4, 5)
	m := randTensor(r, 3, 4)
	got := ModeMul(x, m, 0)
	want := tensor.MatMul(m, x)
	if !tensor.Equal(got, want, 1e-10) {
		t.Errorf("mode-0 product mismatch")
	}
	m2 := randTensor(r, 2, 5)
	got2 := ModeMul(x, m2, 1)
	want2 := tensor.MatMul(x, tensor.Transpose(m2))
	if !tensor.Equal(got2, want2, 1e-10) {
		t.Errorf("mode-1 product mismatch")
	}
}

func TestHOOIFullRankIsExact(t *testing.T) {
	r := rand.New(rand.NewPCG(19, 0))
	x := randTensor(r, 3, 4, 2)
	tk := HOOI(x, []int{3, 4, 2})
	if !tensor.Equal(x, tk.Reconstruct(), 1e-7) {
		t.Errorf("full-rank HOOI should reconstruct exactly")
	}
}

func TestHOOIRecoversLowRankTensor(t *testing.T) {
	// Construct an exactly rank-(2,2,2) tensor and verify HOOI recovers it.
	r := rand.New(rand.NewPCG(23, 0))
	core := randTensor(r, 2, 2, 2)
	f1, f2, f3 := randTensor(r, 5, 2), randTensor(r, 6, 2), randTensor(r, 4, 2)
	x := ModeMul(ModeMul(ModeMul(core, f1, 0), f2, 1), f3, 2)
	tk := HOOI(x, []int{2, 2, 2})
	diff := x.Clone()
	diff.AddScaled(-1, tk.Reconstruct())
	if rel := diff.Norm2() / x.Norm2(); rel > 1e-6 {
		t.Errorf("HOOI failed to recover rank-(2,2,2) tensor, rel err %v", rel)
	}
	if tk.Params() >= x.Len() {
		t.Errorf("decomposition should compress: %d params vs %d elements", tk.Params(), x.Len())
	}
}

func TestHOOIErrorDecreasesWithRank(t *testing.T) {
	r := rand.New(rand.NewPCG(29, 0))
	x := randTensor(r, 6, 6, 6)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		tk := HOOI(x, []int{k, k, k})
		diff := x.Clone()
		diff.AddScaled(-1, tk.Reconstruct())
		err := diff.Norm2()
		if err > prev+1e-6 {
			t.Fatalf("HOOI error increased at rank %d: %v > %v", k, err, prev)
		}
		prev = err
	}
}

func TestHOOIRankClamping(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 0))
	x := randTensor(r, 2, 3, 2)
	tk := HOOI(x, []int{10, 10, 10})
	if tk.Ranks[0] != 2 || tk.Ranks[1] != 3 || tk.Ranks[2] != 2 {
		t.Errorf("ranks not clamped: %v", tk.Ranks)
	}
}

func BenchmarkSVD32x32(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	a := randTensor(r, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(a)
	}
}

func BenchmarkHOOI(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	x := randTensor(r, 8, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HOOI(x, []int{3, 3, 3})
	}
}

func TestHOOIRankBoundedByUnfolding(t *testing.T) {
	// A (16,1,2,2) tensor's mode-0 unfolding is 16x4: rank 8 on mode 0 must
	// clamp to 4, and Ranks must report the effective width.
	r := rand.New(rand.NewPCG(37, 0))
	x := randTensor(r, 16, 1, 2, 2)
	tk := HOOI(x, []int{8, 1, 2, 2})
	if tk.Ranks[0] != 4 {
		t.Errorf("mode-0 rank = %d, want 4 (unfolding bound)", tk.Ranks[0])
	}
	if tk.Factors[0].Dim(1) != tk.Ranks[0] {
		t.Errorf("factor width %d != reported rank %d", tk.Factors[0].Dim(1), tk.Ranks[0])
	}
	// Full effective rank: reconstruction is exact.
	if !tensor.Equal(x, tk.Reconstruct(), 1e-7) {
		t.Error("effective-full-rank HOOI should reconstruct exactly")
	}
}
