package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	a.Set(7.5, 1, 2, 3)
	if a.At(1, 2, 3) != 7.5 {
		t.Errorf("At(1,2,3) = %v", a.At(1, 2, 3))
	}
	if a.At(0, 0, 0) != 0 {
		t.Errorf("zero value expected")
	}
	// Row-major layout: last index is fastest.
	a.Set(1, 0, 0, 1)
	if a.Data()[1] != 1 {
		t.Errorf("row-major layout violated")
	}
}

func TestIndexPanics(t *testing.T) {
	a := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			a.At(idx...)
		}()
	}
}

func TestInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero dimension")
		}
	}()
	New(3, 0)
}

func TestReshapeSharesStorage(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Set(9, 2, 3)
	if a.At(1, 5) != 9 {
		t.Errorf("reshape should share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(2, 2)
	a.Set(1, 0, 0)
	b := a.Clone()
	b.Set(5, 0, 0)
	if a.At(0, 0) != 1 {
		t.Errorf("clone should not alias")
	}
}

func TestMatMulAgainstManual(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := MatVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MatVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("shape %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("transpose values wrong: %v", at.Data())
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0))
		m, k, n := 1+r.IntN(6), 1+r.IntN(6), 1+r.IntN(6)
		a, b := New(m, k), New(k, n)
		a.RandNormal(rng, 1)
		b.RandNormal(rng, 1)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MatVec is linear: A(x+y) == Ax + Ay.
func TestMatVecLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		m, n := 1+r.IntN(8), 1+r.IntN(8)
		a := New(m, n)
		a.RandNormal(r, 1)
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		ax, ay, asum := MatVec(a, x), MatVec(a, y), MatVec(a, sum)
		for i := range asum {
			if math.Abs(asum[i]-(ax[i]+ay[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArgmaxMaxAbsNorm(t *testing.T) {
	a := FromSlice([]float64{-3, 1, 2, -0.5}, 4)
	if a.Argmax() != 2 {
		t.Errorf("Argmax = %d", a.Argmax())
	}
	if a.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	if math.Abs(a.Norm2()-math.Sqrt(9+1+4+0.25)) > 1e-12 {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
	if a.CountNonzero(0.6) != 3 {
		t.Errorf("CountNonzero = %d", a.CountNonzero(0.6))
	}
}

func TestAddScaledScaleFill(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	a.AddScaled(0.5, b)
	if a.At(0) != 6 || a.At(1) != 12 {
		t.Errorf("AddScaled = %v", a.Data())
	}
	a.Scale(2)
	if a.At(0) != 12 {
		t.Errorf("Scale = %v", a.Data())
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Errorf("Zero failed")
	}
}

func TestCSRRoundtrip(t *testing.T) {
	d := FromSlice([]float64{
		0, 1.5, 0, 0,
		-2, 0, 0, 0.001,
		0, 0, 3, 0,
	}, 3, 4)
	c := NewCSR(d, 0.01)
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (0.001 pruned)", c.NNZ())
	}
	back := c.Dense()
	want := d.Clone()
	want.Set(0, 1, 3) // the pruned entry
	if !Equal(back, want, 0) {
		t.Errorf("roundtrip = %v", back.Data())
	}
	if math.Abs(c.Density()-3.0/12.0) > 1e-12 {
		t.Errorf("Density = %v", c.Density())
	}
}

// Property: CSR MatVec equals dense MatVec for random sparse matrices.
func TestCSRMatVecEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		m, n := 1+r.IntN(10), 1+r.IntN(10)
		d := New(m, n)
		for i := 0; i < d.Len(); i++ {
			if r.Float64() < 0.3 {
				d.Data()[i] = r.NormFloat64()
			}
		}
		c := NewCSR(d, 0)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		dv, cv := MatVec(d, x), c.MatVec(x)
		for i := range dv {
			if math.Abs(dv[i]-cv[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCSRRow(t *testing.T) {
	d := FromSlice([]float64{0, 5, 0, 7}, 2, 2)
	c := NewCSR(d, 0)
	cols, vals := c.Row(1)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 7 {
		t.Errorf("Row(1) = %v %v", cols, vals)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x, y := New(64, 64), New(64, 64)
	x.RandNormal(rng, 1)
	y.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkCSRMatVec(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 1))
	d := New(256, 256)
	for i := 0; i < d.Len(); i++ {
		if rng.Float64() < 0.05 {
			d.Data()[i] = rng.NormFloat64()
		}
	}
	c := NewCSR(d, 0)
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MatVec(x)
	}
}
