package tensor

import (
	"bytes"
	"encoding/gob"
)

// gobTensor is the wire form of a Tensor; the Tensor itself keeps its fields
// unexported to protect the shape/data invariant.
type gobTensor struct {
	Shape []int
	Data  []float64
}

// GobEncode implements gob.GobEncoder.
func (t *Tensor) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gobTensor{Shape: t.shape, Data: t.data})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(b []byte) error {
	var g gobTensor
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	t.shape = g.Shape
	t.data = g.Data
	return nil
}
