// Package tensor provides the dense and sparse numeric containers shared by
// the DNN library, the GENESIS compression tool, and the device runtimes.
//
// Dense tensors are float64-backed, row-major, with an arbitrary number of
// dimensions. Sparse matrices use compressed sparse row (CSR) storage, the
// layout SONIC's sparse fully-connected kernels consume on-device.
package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Tensor is a dense row-major tensor of float64 values.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; its length must equal the shape's volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The caller must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutations are visible in the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// offset converts a multi-index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong arity for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape of equal volume. The view
// shares storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandNormal fills t with Gaussian noise of the given standard deviation.
func (t *Tensor) RandNormal(rng *rand.Rand, stddev float64) {
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * stddev
	}
}

// RandUniform fills t with uniform noise in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// AddScaled accumulates alpha*src into t elementwise.
func (t *Tensor) AddScaled(alpha float64, src *Tensor) {
	if len(src.data) != len(t.data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range src.data {
		t.data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Argmax returns the flat index of the largest element.
func (t *Tensor) Argmax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// CountNonzero returns the number of elements with |v| > eps.
func (t *Tensor) CountNonzero(eps float64) int {
	n := 0
	for _, v := range t.data {
		if math.Abs(v) > eps {
			n++
		}
	}
	return n
}

// Equal reports whether two tensors have identical shape and elementwise
// values within tol.
func Equal(a, b *Tensor, tol float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MatMul returns a*b for 2-D tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 || a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.shape, b.shape))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatVec returns a*x for a 2-D tensor a of shape (m,n) and a vector x of
// length n.
func MatVec(a *Tensor, x []float64) []float64 {
	if a.Dims() != 2 || a.Dim(1) != len(x) {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v x len %d", a.shape, len(x)))
	}
	m, n := a.Dim(0), a.Dim(1)
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose requires 2-D tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}
