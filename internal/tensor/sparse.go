package tensor

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row matrix. It is the storage format GENESIS
// emits for pruned fully-connected layers and the format SONIC's sparse
// kernels walk on-device: RowPtr has one entry per row plus a terminator,
// and Cols/Vals hold the column index and value of each retained weight.
type CSR struct {
	Rows, ColsN int
	RowPtr      []int32
	Cols        []int32
	Vals        []float64
}

// NewCSR builds a CSR matrix from a dense 2-D tensor, dropping entries with
// |v| <= eps.
func NewCSR(dense *Tensor, eps float64) *CSR {
	if dense.Dims() != 2 {
		panic("tensor: NewCSR requires a 2-D tensor")
	}
	m, n := dense.Dim(0), dense.Dim(1)
	c := &CSR{Rows: m, ColsN: n, RowPtr: make([]int32, m+1)}
	for i := 0; i < m; i++ {
		row := dense.Data()[i*n : (i+1)*n]
		for j, v := range row {
			if math.Abs(v) > eps {
				c.Cols = append(c.Cols, int32(j))
				c.Vals = append(c.Vals, v)
			}
		}
		c.RowPtr[i+1] = int32(len(c.Vals))
	}
	return c
}

// NNZ returns the number of stored (nonzero) entries.
func (c *CSR) NNZ() int { return len(c.Vals) }

// Density returns NNZ divided by the full matrix volume.
func (c *CSR) Density() float64 {
	if c.Rows == 0 || c.ColsN == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(c.Rows*c.ColsN)
}

// Dense expands the CSR matrix back into a dense tensor.
func (c *CSR) Dense() *Tensor {
	out := New(c.Rows, c.ColsN)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			out.Set(c.Vals[p], i, int(c.Cols[p]))
		}
	}
	return out
}

// MatVec returns c*x.
func (c *CSR) MatVec(x []float64) []float64 {
	if len(x) != c.ColsN {
		panic(fmt.Sprintf("tensor: CSR MatVec length mismatch: %d vs %d", len(x), c.ColsN))
	}
	out := make([]float64, c.Rows)
	for i := 0; i < c.Rows; i++ {
		s := 0.0
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			s += c.Vals[p] * x[c.Cols[p]]
		}
		out[i] = s
	}
	return out
}

// Row returns the column indices and values of row i. The slices alias the
// CSR storage and must not be modified.
func (c *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	return c.Cols[lo:hi], c.Vals[lo:hi]
}
