// External test package: the cross-checks pull in sonic (for FinalParity)
// and intermittest, both of which sit above tape in the import graph.
package tape_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/intermittest"
	"repro/internal/sonic"
	"repro/internal/tape"
)

// TestCompileTablesMatchInterpretedDecodes cross-checks every table entry
// against the div/mod chains the interpreted kernels compute live: the
// tables are only legal if they answer the exact same questions.
func TestCompileTablesMatchInterpretedDecodes(t *testing.T) {
	qm, _ := intermittest.TinyModel(1)
	p := tape.Compile(qm)
	if len(p.Layers) != len(qm.Layers) {
		t.Fatalf("compiled %d layers, model has %d", len(p.Layers), len(qm.Layers))
	}
	sawConv, sawSparse, sawPool := false, false, false
	for li := range qm.Layers {
		q := &qm.Layers[li]
		tl := &p.Layers[li]
		if want := core.LayerName(qm, li); tl.Name != want {
			t.Errorf("layer %d name = %q, want %q", li, tl.Name, want)
		}
		if want := q.Kind != dnn.QFlatten; tl.Flips != want {
			t.Errorf("layer %d (%v) Flips = %v, want %v", li, q.Kind, tl.Flips, want)
		}
		switch q.Kind {
		case dnn.QConv:
			sawConv = true
			h, w := q.InShape[1], q.InShape[2]
			oh, ow := q.OutShape[1], q.OutShape[2]
			epf := q.C * q.KH * q.KW
			if tl.EPF != epf || tl.Positions != oh*ow {
				t.Fatalf("layer %d EPF/Positions = %d/%d, want %d/%d", li, tl.EPF, tl.Positions, epf, oh*ow)
			}
			for widx := range q.W {
				kx := widx % q.KW
				ky := (widx / q.KW) % q.KH
				ci := (widx / (q.KW * q.KH)) % q.C
				f := widx / epf
				if got, want := int(tl.WSrc[widx]), (ci*h+ky)*w+kx; got != want {
					t.Fatalf("layer %d WSrc[%d] = %d, want %d", li, widx, got, want)
				}
				if got, want := int(tl.WAccBase[widx]), f*tl.Positions; got != want {
					t.Fatalf("layer %d WAccBase[%d] = %d, want %d", li, widx, got, want)
				}
			}
			for i := 0; i < tl.Positions; i++ {
				if got, want := int(tl.PosOff[i]), (i/ow)*w+i%ow; got != want {
					t.Fatalf("layer %d PosOff[%d] = %d, want %d", li, i, got, want)
				}
			}
			for i := range tl.FilterOf {
				if got, want := int(tl.FilterOf[i]), i/tl.Positions; got != want {
					t.Fatalf("layer %d FilterOf[%d] = %d, want %d", li, i, got, want)
				}
			}
			if q.NZ != nil {
				sawSparse = true
				if tl.Elems != len(q.NZ) {
					t.Fatalf("layer %d Elems = %d, want len(NZ)=%d", li, tl.Elems, len(q.NZ))
				}
				for pos := range q.NZ {
					want := pos == 0 || int(q.NZ[pos-1])/epf != int(q.NZ[pos])/epf
					if tl.First[pos] != want {
						t.Fatalf("layer %d First[%d] = %v, want %v", li, pos, tl.First[pos], want)
					}
				}
				if tl.RowAcc != nil || tl.GenSrc != nil {
					t.Fatalf("layer %d: sparse conv compiled TAILS dense tables", li)
				}
			} else {
				if tl.Elems != len(q.W) {
					t.Fatalf("layer %d Elems = %d, want len(W)=%d", li, tl.Elems, len(q.W))
				}
				for pos := 0; pos < tl.Elems; pos++ {
					if tl.First[pos] != (pos%epf == 0) {
						t.Fatalf("layer %d First[%d] = %v, want %v", li, pos, tl.First[pos], pos%epf == 0)
					}
				}
				for r := 0; r < q.F*oh; r++ {
					f, oy := r/oh, r%oh
					if got, want := int(tl.RowAcc[r]), f*oh*ow+oy*ow; got != want {
						t.Fatalf("layer %d RowAcc[%d] = %d, want %d", li, r, got, want)
					}
					if got, want := int(tl.RowSrcY[r]), oy*w; got != want {
						t.Fatalf("layer %d RowSrcY[%d] = %d, want %d", li, r, got, want)
					}
					if got, want := int(tl.RowCoef[r]), f*epf; got != want {
						t.Fatalf("layer %d RowCoef[%d] = %d, want %d", li, r, got, want)
					}
				}
				for g := 0; g < q.C*q.KH; g++ {
					ci, ky := g/q.KH, g%q.KH
					if got, want := int(tl.GenSrc[g]), (ci*h+ky)*w; got != want {
						t.Fatalf("layer %d GenSrc[%d] = %d, want %d", li, g, got, want)
					}
					if got, want := int(tl.GenCoef[g]), g*q.KW; got != want {
						t.Fatalf("layer %d GenCoef[%d] = %d, want %d", li, g, got, want)
					}
					// The two tables recompose to the interpreted
					// coefficient offset ((f*C+ci)*KH+ky)*KW.
					for r := 0; r < q.F*oh; r++ {
						f := r / oh
						if got, want := int(tl.RowCoef[r])+int(tl.GenCoef[g]), ((f*q.C+ci)*q.KH+ky)*q.KW; got != want {
							t.Fatalf("layer %d coef(r=%d,g=%d) = %d, want %d", li, r, g, got, want)
						}
					}
				}
			}
		case dnn.QPool:
			sawPool = true
			c, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
			oh, ow := h/q.Window, w/q.Window
			if len(tl.PoolBase) != c*oh*ow {
				t.Fatalf("layer %d PoolBase has %d entries, want %d", li, len(tl.PoolBase), c*oh*ow)
			}
			n := 0
			for ci := 0; ci < c; ci++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						if got, want := int(tl.PoolBase[n]), (ci*h+oy*q.Window)*w+ox*q.Window; got != want {
							t.Fatalf("layer %d PoolBase[%d] = %d, want %d", li, n, got, want)
						}
						n++
					}
				}
			}
		}
	}
	if !sawConv || !sawPool {
		t.Fatalf("tiny model exercised conv=%v sparse=%v pool=%v; table coverage is incomplete", sawConv, sawSparse, sawPool)
	}
	if got, want := p.FinalParity, sonic.FinalParity(qm); got != want {
		t.Fatalf("FinalParity = %v, want sonic.FinalParity = %v", got, want)
	}
}

// TestGetMemoizesPerModel: one compile per model pointer, shared across
// concurrent getters — the property that keeps fleet campaigns from
// compiling a network once per device.
func TestGetMemoizesPerModel(t *testing.T) {
	qm, _ := intermittest.TinyModel(1)
	const goroutines = 16
	progs := make([]*tape.Program, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			progs[g] = tape.Get(qm)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if progs[g] != progs[0] {
			t.Fatal("concurrent Get returned distinct programs for one model")
		}
	}
	qm2, _ := intermittest.TinyModel(1)
	if tape.Get(qm2) == progs[0] {
		t.Fatal("distinct model pointers share a program")
	}
}

// TestScratchSizing: borrowed workspaces cover every pass the model runs,
// and the shared zero block really is all zeros at full length.
func TestScratchSizing(t *testing.T) {
	qm, _ := intermittest.TinyModel(1)
	p := tape.Get(qm)
	sc := p.GetScratch()
	defer p.PutScratch(sc)
	for li := range qm.Layers {
		q := &qm.Layers[li]
		switch q.Kind {
		case dnn.QConv:
			tl := &p.Layers[li]
			if need := q.F * tl.Positions; len(sc.Out) < need {
				t.Fatalf("layer %d needs Out[%d], scratch has %d", li, need, len(sc.Out))
			}
			if need := q.OutShape[2]; len(sc.Row) < need {
				t.Fatalf("layer %d needs Row[%d], scratch has %d", li, need, len(sc.Row))
			}
			for i, z := range p.Zeros(q.F * tl.Positions) {
				if z != 0 {
					t.Fatalf("Zeros[%d] = %d", i, z)
				}
			}
		case dnn.QReLU:
			if need := q.InShape.Len(); len(sc.Out) < need {
				t.Fatalf("relu layer %d needs Out[%d], scratch has %d", li, need, len(sc.Out))
			}
		case dnn.QDense, dnn.QSparseDense:
			if len(sc.Out) < q.Out {
				t.Fatalf("dense layer %d needs Out[%d], scratch has %d", li, q.Out, len(sc.Out))
			}
		}
	}
}
