// Package tape compiles a quantized network once into flat, pre-decoded
// per-layer op tables — precomputed region offsets, filter-coordinate
// decodes, loop-axis address tables, and section labels — that the
// runtimes execute in tight loops on mcu.Device instead of re-deriving
// div/mod chains, rebuilding decode memos, and re-allocating scratch on
// every inference (or, for Base, on every brown-out retry).
//
// A Program changes *how fast the host simulates*, never *what the device
// does*: executors built on these tables issue the exact op stream —
// every charged Load/Store/Op, every section transition, every commit
// point — that the interpreted layer walk issues, so logits, Stats,
// reboot placement, and WAR records are bit-identical. The equivalence is
// enforced per runtime by TestTapeInterpreterDifferential (harness), the
// fork oracle, and the intermittest campaign.
//
// Programs are immutable after Compile and safe to share across
// goroutines; per-inference mutable workspace comes from the program's
// Scratch pool. Get memoizes compilation per model, so a fleet campaign
// compiles each network once per process no matter how many devices run
// it.
package tape

import (
	"sync"

	"repro/internal/core"
	"repro/internal/dnn"
)

// Layer is one layer's pre-decoded tables. Only the tables meaningful for
// the layer's kind are populated; all indices are int32 to keep big conv
// tables dense in memory.
type Layer struct {
	// Name is the layer's section label (core.LayerName), computed once.
	Name string
	// Flips reports whether the layer flips the activation ping-pong
	// parity (every value-producing kind; flatten does not).
	Flips bool

	// Convolution tables (QConv). The filter-element-major walk used by
	// every runtime decodes each flat weight index widx into
	// (f, ci, ky, kx); these tables hold the two derived offsets the
	// kernels actually use.
	Positions int     // output positions per filter (oh*ow)
	EPF       int     // filter elements per filter (C*KH*KW)
	Elems     int     // walked filter elements: len(NZ), or all of W
	WSrc      []int32 // widx -> top-left input offset (ci*h+ky)*w + kx
	WAccBase  []int32 // widx -> accumulator base f*Positions
	PosOff    []int32 // output position i -> input offset (i/ow)*w + i%ow
	First     []bool  // walked element pos -> first element of its filter
	FilterOf  []int32 // output element i -> its filter i/Positions

	// Pooling table (QPool): output element i -> input offset of its
	// window's top-left element.
	PoolBase []int32

	// Sparse CSR span tables (QSparseDense). Spans enumerate the rows
	// owning at least one nonzero, in nonzero order, so the sparse
	// executor walks rows without ever probing RowPtr word by word at run
	// time; row-advance branch counts fall out of consecutive SpRow
	// differences (the pre-derived form of the scalar walk's RowPtr
	// probes).
	SpStart []int32 // span s -> first nonzero index (RowPtr[row])
	SpLen   []int32 // span s -> nonzero count of the row
	SpRow   []int32 // span s -> owning row index
	SpanOf  []int32 // nonzero pos -> owning span index

	// TAILS dense-conv tables (QConv with no NZ list): the accelerated
	// path iterates (output row r, filter-element generation g) instead
	// of (element, position), so both axes pre-decode separately.
	// Rows r ∈ [0, F*oh): f = r/oh, oy = r%oh.
	// Generations g ∈ [0, C*KH): ci = g/KH, ky = g%KH.
	RowAcc  []int32 // r -> output/accumulator row base f*oh*ow + oy*ow
	RowSrcY []int32 // r -> input row offset oy*w
	RowCoef []int32 // r -> coefficient base f*EPF
	GenSrc  []int32 // g -> input offset (ci*h+ky)*w
	GenCoef []int32 // g -> coefficient offset g*KW
}

// Program is one network's compiled tape: per-layer decode tables plus
// sizing for the shared scratch pool. Immutable after Compile.
type Program struct {
	Model  *dnn.QuantModel
	Layers []Layer
	// FinalParity is the activation parity holding the output after the
	// full layer walk (sonic.FinalParity's answer, folded in at compile).
	FinalParity bool

	maxAcc int // largest conv accumulator block (F*Positions)
	maxOut int // largest single-pass output length
	maxRow int // largest conv output row (ow)

	zeros []int64 // shared all-zero block; read-only after Compile
	pool  sync.Pool
}

// Scratch is one inference's mutable workspace, sized for the program's
// largest passes. Executors borrow it for the duration of an inference so
// hot loops (and Base's per-retry attempts) allocate nothing.
type Scratch struct {
	Row []int64 // one conv output row (>= maxRow)
	Out []int64 // one pass's outputs (>= maxOut)
}

// GetScratch borrows a workspace from the program's pool.
func (p *Program) GetScratch() *Scratch {
	return p.pool.Get().(*Scratch)
}

// PutScratch returns a workspace to the pool.
func (p *Program) PutScratch(s *Scratch) { p.pool.Put(s) }

// Zeros returns a shared all-zero block of length n (n <= the largest
// accumulator block). Callers must treat it as read-only.
func (p *Program) Zeros(n int) []int64 { return p.zeros[:n] }

// cache memoizes Compile per model pointer: quantized models are
// immutable once deployed, so identity is the right key, and a fleet
// compiles each network once per process.
var cache sync.Map // *dnn.QuantModel -> *Program

// Get returns the model's compiled program, compiling it on first use.
func Get(qm *dnn.QuantModel) *Program {
	if p, ok := cache.Load(qm); ok {
		return p.(*Program)
	}
	p, _ := cache.LoadOrStore(qm, Compile(qm))
	return p.(*Program)
}

// Compile lowers the model into its pre-decoded tables.
func Compile(qm *dnn.QuantModel) *Program {
	p := &Program{Model: qm, Layers: make([]Layer, len(qm.Layers))}
	for li := range qm.Layers {
		q := &qm.Layers[li]
		tl := &p.Layers[li]
		tl.Name = core.LayerName(qm, li)
		tl.Flips = q.Kind != dnn.QFlatten
		if tl.Flips {
			p.FinalParity = !p.FinalParity
		}
		switch q.Kind {
		case dnn.QConv:
			compileConv(q, tl)
			if acc := q.F * tl.Positions; acc > p.maxAcc {
				p.maxAcc = acc
			}
			if acc := q.F * tl.Positions; acc > p.maxOut {
				p.maxOut = acc
			}
			if ow := q.OutShape[2]; ow > p.maxRow {
				p.maxRow = ow
			}
		case dnn.QPool:
			compilePool(q, tl)
		case dnn.QReLU:
			if n := q.InShape.Len(); n > p.maxOut {
				p.maxOut = n
			}
		case dnn.QDense:
			if q.Out > p.maxOut {
				p.maxOut = q.Out
			}
		case dnn.QSparseDense:
			compileSparse(q, tl)
			if q.Out > p.maxOut {
				p.maxOut = q.Out
			}
		}
	}
	p.zeros = make([]int64, p.maxAcc)
	maxRow, maxOut := p.maxRow, p.maxOut
	p.pool.New = func() any {
		return &Scratch{Row: make([]int64, maxRow), Out: make([]int64, maxOut)}
	}
	return p
}

// compileConv fills the convolution tables: one entry per flat weight
// index for the source/accumulator offsets, one per walked element for
// filter-boundary detection, one per output position/element for the
// inner-loop and finalize decodes, and the row/generation axes the TAILS
// hardware path iterates for dense filters.
func compileConv(q *dnn.QuantLayer, tl *Layer) {
	h, w := q.InShape[1], q.InShape[2]
	oh, ow := q.OutShape[1], q.OutShape[2]
	tl.Positions = oh * ow
	tl.EPF = q.C * q.KH * q.KW
	tl.Elems = len(q.W)
	if q.NZ != nil {
		tl.Elems = len(q.NZ)
	}

	tl.WSrc = make([]int32, len(q.W))
	tl.WAccBase = make([]int32, len(q.W))
	for widx := range q.W {
		kx := widx % q.KW
		ky := (widx / q.KW) % q.KH
		ci := (widx / (q.KW * q.KH)) % q.C
		f := widx / tl.EPF
		tl.WSrc[widx] = int32((ci*h+ky)*w + kx)
		tl.WAccBase[widx] = int32(f * tl.Positions)
	}

	tl.First = make([]bool, tl.Elems)
	for pos := 0; pos < tl.Elems; pos++ {
		if q.NZ != nil {
			tl.First[pos] = pos == 0 ||
				int(q.NZ[pos-1])/tl.EPF != int(q.NZ[pos])/tl.EPF
		} else {
			tl.First[pos] = pos%tl.EPF == 0
		}
	}

	tl.PosOff = make([]int32, tl.Positions)
	for i := 0; i < tl.Positions; i++ {
		tl.PosOff[i] = int32((i/ow)*w + i%ow)
	}
	tl.FilterOf = make([]int32, q.F*tl.Positions)
	for i := range tl.FilterOf {
		tl.FilterOf[i] = int32(i / tl.Positions)
	}

	if q.NZ == nil {
		tl.RowAcc = make([]int32, q.F*oh)
		tl.RowSrcY = make([]int32, q.F*oh)
		tl.RowCoef = make([]int32, q.F*oh)
		for r := range tl.RowAcc {
			f, oy := r/oh, r%oh
			tl.RowAcc[r] = int32(f*oh*ow + oy*ow)
			tl.RowSrcY[r] = int32(oy * w)
			tl.RowCoef[r] = int32(f * tl.EPF)
		}
		tl.GenSrc = make([]int32, q.C*q.KH)
		tl.GenCoef = make([]int32, q.C*q.KH)
		for g := range tl.GenSrc {
			ci, ky := g/q.KH, g%q.KH
			tl.GenSrc[g] = int32((ci*h + ky) * w)
			tl.GenCoef[g] = int32(g * q.KW)
		}
	}
}

// compileSparse fills the CSR span tables: one span per row owning at
// least one nonzero, in nonzero order, with the position→span back-map
// used to resume mid-layer. Row lengths are clamped to the nonzero count
// exactly as the interpreted walk clamps RowPtr[row+1].
func compileSparse(q *dnn.QuantLayer, tl *Layer) {
	nnz := int32(len(q.W))
	tl.SpanOf = make([]int32, nnz)
	for row := 0; row+1 < len(q.RowPtr); row++ {
		s, e := q.RowPtr[row], q.RowPtr[row+1]
		if e > nnz {
			e = nnz
		}
		if e <= s {
			continue // empty row: never executed, only advanced over
		}
		si := int32(len(tl.SpStart))
		tl.SpStart = append(tl.SpStart, s)
		tl.SpLen = append(tl.SpLen, e-s)
		tl.SpRow = append(tl.SpRow, int32(row))
		for p := s; p < e; p++ {
			tl.SpanOf[p] = si
		}
	}
}

// compilePool fills the pooling window-origin table.
func compilePool(q *dnn.QuantLayer, tl *Layer) {
	c, h, w := q.InShape[0], q.InShape[1], q.InShape[2]
	oh, ow := h/q.Window, w/q.Window
	tl.PoolBase = make([]int32, c*oh*ow)
	n := 0
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				tl.PoolBase[n] = int32((ci*h+oy*q.Window)*w + ox*q.Window)
				n++
			}
		}
	}
}
