package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/mem"
)

// testModel builds a small quantized model with all layer kinds.
func testModel(t testing.TB) *dnn.QuantModel {
	t.Helper()
	n := dnn.HARNet(1)
	n.Layers[0].(*dnn.Conv).Prune(0.05)
	n.Layers[3] = dnn.NewSparseDense(n.Layers[3].(*dnn.Dense), 0.03)
	ds := dataset.HAR(1, 4, 0)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	return qm
}

func TestDeployAllocatesAndInitializes(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	qm := testModel(t)
	before := dev.FRAM.Used()
	img, err := Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	if dev.FRAM.Used() <= before {
		t.Error("deploy should consume FRAM")
	}
	// Weights landed in FRAM verbatim.
	l0 := img.Layers[0]
	for j := 0; j < 10; j++ {
		if fixed.Q15(l0.W.Get(j)) != qm.Layers[0].W[j] {
			t.Fatalf("weight %d not flashed", j)
		}
	}
	// Pruned conv gets NZ and FinPar tables.
	if l0.NZ == nil || l0.FinPar == nil {
		t.Error("pruned conv should have NZ and FinPar regions")
	}
	// Sparse FC gets CSR structures.
	var sawSparse bool
	for _, li := range img.Layers {
		if li.Q.Kind == dnn.QSparseDense {
			sawSparse = true
			if li.Cols == nil || li.RowPtr == nil {
				t.Error("sparse layer missing CSR regions")
			}
		}
	}
	if !sawSparse {
		t.Fatal("test model should contain a sparse layer")
	}
	// Release returns all memory.
	img.Release()
	if dev.FRAM.Used() != before {
		t.Errorf("release leaked: %d != %d", dev.FRAM.Used(), before)
	}
}

func TestDeployFailsWhenTooBig(t *testing.T) {
	// A device with a tiny FRAM cannot hold the model.
	fram := mem.New(mem.FRAM, 1024)
	sram := mem.New(mem.SRAM, mem.DefaultSRAMBytes)
	dev := mcu.NewWithMem(energy.Continuous{}, fram, sram)
	if _, err := Deploy(dev, testModel(t)); err == nil {
		t.Error("deploy into 1KB FRAM should fail")
	}
}

func TestFinParContents(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	qm := testModel(t)
	img, err := Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	q := qm.Layers[0]
	epf := q.C * q.KH * q.KW
	// Recompute expected last-parity per filter from the NZ list.
	want := make([]int64, q.F)
	for f := range want {
		want[f] = -1
	}
	for p, widx := range q.NZ {
		want[int(widx)/epf] = int64(p & 1)
	}
	for f := 0; f < q.F; f++ {
		if got := img.Layers[0].FinPar.Get(f); got != want[f] {
			t.Errorf("FinPar[%d] = %d, want %d", f, got, want[f])
		}
	}
}

func TestLoadInputAndReadOutput(t *testing.T) {
	dev := mcu.New(energy.Continuous{})
	qm := testModel(t)
	img, err := Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]fixed.Q15, qm.In.Len())
	for i := range x {
		x[i] = fixed.Q15(i % 100)
	}
	img.Ctl.Put(3, 99) // dirty the control block
	if err := img.LoadInput(x); err != nil {
		t.Fatal(err)
	}
	if img.ActA.Get(5) != 5 {
		t.Error("input not loaded into ActA")
	}
	if img.Ctl.Get(3) != 0 {
		t.Error("control block not cleared")
	}
	// Cal persists across LoadInput.
	img.Cal.Put(0, 123)
	if err := img.LoadInput(x); err != nil {
		t.Fatal(err)
	}
	if img.Cal.Get(0) != 123 {
		t.Error("calibration state must survive LoadInput")
	}
	// Wrong length rejected.
	if err := img.LoadInput(x[:3]); err == nil {
		t.Error("short input should be rejected")
	}
	// ReadOutput pulls from the requested buffer.
	img.ActB.Put(0, 42)
	out := img.ReadOutput(true)
	if out[0] != 42 {
		t.Errorf("ReadOutput(B)[0] = %d", out[0])
	}
	if len(out) != qm.Layers[len(qm.Layers)-1].OutShape.Len() {
		t.Errorf("output length %d", len(out))
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]fixed.Q15{-5, 3, 2}) != 1 {
		t.Error("argmax wrong")
	}
	if Argmax([]fixed.Q15{fixed.MinusOne}) != 0 {
		t.Error("single-element argmax wrong")
	}
}

func TestLayerName(t *testing.T) {
	qm := testModel(t)
	names := make([]string, len(qm.Layers))
	for i := range qm.Layers {
		names[i] = LayerName(qm, i)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "conv1") || !strings.Contains(joined, "fc") ||
		!strings.Contains(joined, "other") {
		t.Errorf("layer names = %v", names)
	}
	// Conv numbering increments.
	n := dnn.MNISTNet(1)
	ds := dataset.Digits(1, 2, 0)
	qm2, err := dnn.Quantize(n, [][]float64{ds.Train[0].X})
	if err != nil {
		t.Fatal(err)
	}
	if LayerName(qm2, 0) != "conv1" || LayerName(qm2, 3) != "conv2" {
		t.Errorf("conv numbering wrong: %s %s", LayerName(qm2, 0), LayerName(qm2, 3))
	}
}
