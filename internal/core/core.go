// Package core defines the deployable model image — a quantized network
// placed into the device's FRAM — and the runtime interface that the
// inference implementations (the naive baseline, the task-tiled Alpaca
// baselines, SONIC, and TAILS) share.
//
// Deployment is the analog of flashing the device: weights, sparse index
// structures, activation buffers, and partial-accumulation buffers are all
// allocated in non-volatile memory at deploy time, before intermittent
// execution begins. The FRAM capacity check at deploy time is the
// feasibility constraint GENESIS optimizes under.
package core

import (
	"fmt"
	"sync"

	"repro/internal/dnn"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/mem"
)

// LayerImage is one layer's in-FRAM representation.
type LayerImage struct {
	Q *dnn.QuantLayer

	W      *mem.Region // dense weights or CSR values (Q15, 2B elems)
	B      *mem.Region // biases (Q15, 2B elems)
	NZ     *mem.Region // nonzero flat indices for pruned conv (2B elems)
	Cols   *mem.Region // CSR column indices (2B elems)
	RowPtr *mem.Region // CSR row pointers (2B elems)

	// FinPar (pruned convs only) holds, per filter, the double-buffer
	// parity of the filter's last nonzero element, or -1 for filters whose
	// weights were pruned entirely (their outputs are bias-only). SONIC's
	// finalize pass reads it to locate each filter's final partials. It is
	// computed at deploy time, like a compiler-emitted table.
	FinPar *mem.Region
}

// Image is a deployed model: weights in FRAM plus the shared working
// buffers every runtime uses.
type Image struct {
	Model *dnn.QuantModel
	Dev   *mcu.Device

	Layers []LayerImage

	// ActA/ActB are ping-pong Q15 activation buffers sized to the largest
	// activation volume; layer L reads from one and its finalize pass
	// writes into the other.
	ActA, ActB *mem.Region

	// AccA/AccB are double-buffered wide partial accumulators (modelled as
	// 32-bit) used by loop-ordered buffering within conv and dense layers.
	AccA, AccB *mem.Region

	// Ctl is the runtime control block: NV loop indices, layer cursor,
	// buffer parity. Runtimes carve it up as they like; it is cleared by
	// LoadInput at the start of every inference.
	Ctl *mem.Region

	// Cal holds state that must persist across inferences — TAILS's
	// one-time tile calibration (§7.1). LoadInput does not touch it.
	Cal *mem.Region

	MaxActWords int
}

// CtlWords is the size of the shared NV control block.
const CtlWords = 32

// regionNames holds one layer's FRAM region labels. They depend only on
// the model, so fleet campaigns deploying the same network onto thousands
// of devices format them once instead of once per device.
type regionNames struct {
	W, B, NZ, Cols, RowPtr, FinPar string
}

// deployNames memoizes per-model region labels, keyed by model pointer
// like the op-tape program cache.
var deployNames sync.Map // *dnn.QuantModel -> []regionNames

func namesFor(qm *dnn.QuantModel) []regionNames {
	if v, ok := deployNames.Load(qm); ok {
		return v.([]regionNames)
	}
	names := make([]regionNames, len(qm.Layers))
	for i := range qm.Layers {
		pfx := fmt.Sprintf("L%d.%s", i, qm.Layers[i].Kind)
		names[i] = regionNames{
			W: pfx + ".W", B: pfx + ".B", NZ: pfx + ".NZ",
			Cols: pfx + ".Cols", RowPtr: pfx + ".RowPtr", FinPar: pfx + ".FinPar",
		}
	}
	v, _ := deployNames.LoadOrStore(qm, names)
	return v.([]regionNames)
}

// flash bulk-initializes a freshly allocated region from a typed host
// table: one widening loop straight into the raw backing words, instead
// of one Region.Put interface call per word. An observed bank (a journal
// attached before deploy) falls back to the Put path so the observer
// still sees every write.
func flash[T ~int16 | ~int32](r *mem.Region, vs []T) {
	if r == nil || len(vs) == 0 {
		return
	}
	if r.Observed() {
		for j, v := range vs {
			r.Put(j, int64(v))
		}
		return
	}
	w := r.Words()
	for j, v := range vs {
		w[j] = int64(v)
	}
}

// Deploy places a quantized model into the device's FRAM, allocating weight
// regions and working buffers. It fails if the model does not fit — the
// feasibility condition of GENESIS (§5.2).
func Deploy(dev *mcu.Device, qm *dnn.QuantModel) (*Image, error) {
	img := &Image{Model: qm, Dev: dev}
	maxAct := qm.In.Len()
	maxOut := 0
	for i := range qm.Layers {
		ql := &qm.Layers[i]
		if n := ql.OutShape.Len(); n > maxAct {
			maxAct = n
		}
		switch ql.Kind {
		case dnn.QConv, dnn.QDense, dnn.QSparseDense:
			if n := ql.OutShape.Len(); n > maxOut {
				maxOut = n
			}
		}
	}
	img.MaxActWords = maxAct

	alloc := func(name string, n, elemBytes int) (*mem.Region, error) {
		if n == 0 {
			return nil, nil
		}
		return dev.FRAM.Alloc(name, n, elemBytes)
	}

	var err error
	names := namesFor(qm)
	for i := range qm.Layers {
		ql := &qm.Layers[i]
		li := LayerImage{Q: ql}
		nm := &names[i]
		if li.W, err = alloc(nm.W, len(ql.W), 2); err != nil {
			return nil, err
		}
		if li.B, err = alloc(nm.B, len(ql.B), 2); err != nil {
			return nil, err
		}
		if li.NZ, err = alloc(nm.NZ, len(ql.NZ), 2); err != nil {
			return nil, err
		}
		if li.Cols, err = alloc(nm.Cols, len(ql.Cols), 2); err != nil {
			return nil, err
		}
		if li.RowPtr, err = alloc(nm.RowPtr, len(ql.RowPtr), 2); err != nil {
			return nil, err
		}
		// Host-side initialization: flashing the image is deploy-time work
		// and consumes no harvested energy.
		flash(li.W, ql.W)
		flash(li.B, ql.B)
		flash(li.NZ, ql.NZ)
		flash(li.Cols, ql.Cols)
		flash(li.RowPtr, ql.RowPtr)
		if ql.Kind == dnn.QConv && ql.NZ != nil {
			if li.FinPar, err = alloc(nm.FinPar, ql.F, 2); err != nil {
				return nil, err
			}
			epf := ql.C * ql.KH * ql.KW
			for f := 0; f < ql.F; f++ {
				li.FinPar.Put(f, -1)
			}
			for p, widx := range ql.NZ {
				li.FinPar.Put(int(widx)/epf, int64(p&1))
			}
		}
		img.Layers = append(img.Layers, li)
	}

	if img.ActA, err = dev.FRAM.Alloc("act.A", maxAct, 2); err != nil {
		return nil, err
	}
	if img.ActB, err = dev.FRAM.Alloc("act.B", maxAct, 2); err != nil {
		return nil, err
	}
	if maxOut > 0 {
		if img.AccA, err = dev.FRAM.Alloc("acc.A", maxOut, 4); err != nil {
			return nil, err
		}
		if img.AccB, err = dev.FRAM.Alloc("acc.B", maxOut, 4); err != nil {
			return nil, err
		}
	}
	if img.Ctl, err = dev.FRAM.Alloc("ctl", CtlWords, 2); err != nil {
		return nil, err
	}
	if img.Cal, err = dev.FRAM.Alloc("cal", 4, 2); err != nil {
		return nil, err
	}
	// The control block and calibration area carry the runtimes' own
	// crash-consistency protocols (commit cursors, undo-log slots, staged
	// partials), so the WAR checker must treat them as exempt.
	dev.MarkProtocol(img.Ctl, img.Cal)
	return img, nil
}

// Release frees every FRAM region the image holds.
func (img *Image) Release() {
	fram := img.Dev.FRAM
	for _, li := range img.Layers {
		for _, r := range []*mem.Region{li.W, li.B, li.NZ, li.Cols, li.RowPtr, li.FinPar} {
			if r != nil {
				fram.Release(r)
			}
		}
	}
	for _, r := range []*mem.Region{img.ActA, img.ActB, img.AccA, img.AccB, img.Ctl, img.Cal} {
		if r != nil {
			fram.Release(r)
		}
	}
	img.Layers = nil
}

// LoadInput writes a quantized input sample into activation buffer A and
// clears the control block. This models the sensor depositing a reading
// before inference starts; it is not charged against harvested energy and
// must be called once per inference, outside the intermittent retry loop.
func (img *Image) LoadInput(x []fixed.Q15) error {
	if len(x) != img.Model.In.Len() {
		return fmt.Errorf("core: input length %d, model wants %d", len(x), img.Model.In.Len())
	}
	flash(img.ActA, x)
	if img.Ctl.Observed() {
		for i := 0; i < CtlWords; i++ {
			img.Ctl.Put(i, 0)
		}
	} else {
		w := img.Ctl.Words()
		for i := range w {
			w[i] = 0
		}
	}
	return nil
}

// ReadOutput extracts the final logits from the buffer the last layer wrote
// (host-side, after inference completes).
func (img *Image) ReadOutput(fromB bool) []fixed.Q15 {
	n := img.Model.Layers[len(img.Model.Layers)-1].OutShape.Len()
	src := img.ActA
	if fromB {
		src = img.ActB
	}
	out := make([]fixed.Q15, n)
	for i := range out {
		out[i] = fixed.Q15(src.Get(i))
	}
	return out
}

// Runtime is an inference implementation: it drives the deployed image
// through one inference on the device, tolerating (or not) intermittent
// power. Implementations must leave the logits readable via ReadOutput and
// report which buffer holds them.
type Runtime interface {
	// Name identifies the implementation ("base", "tile-32", "sonic", ...).
	Name() string
	// Infer runs one inference to completion under the device's power
	// system. It returns the logits, or mcu.ErrDoesNotComplete if the
	// implementation cannot finish on this power system.
	Infer(img *Image, input []fixed.Q15) ([]fixed.Q15, error)
}

// Resumer is the optional Runtime extension behind snapshot-and-fork
// fault-injection campaigns. ResumeInfer is Infer minus LoadInput: it
// performs the runtime's host-side setup (allocations, executor
// construction), then calls atReboot — which the campaign uses to restore
// a recorded prefix of a golden run onto the device, leaving it exactly as
// a from-scratch run would be at its first post-brown-out reboot — and
// finally runs the intermittent retry loop, recovering from the restored
// FRAM state as if power had just come back.
//
// atReboot runs after all setup-time host writes (which the restore
// overwrites) and before the first attempt. A non-nil error aborts the
// inference and is returned unchanged.
type Resumer interface {
	ResumeInfer(img *Image, atReboot func() error) ([]fixed.Q15, error)
}

// LayerName returns the section label used to attribute device operations
// to layers in the Fig. 9/10/12 breakdowns: convolutional layers are
// numbered "conv1", "conv2", ...; fully-connected layers (dense or sparse)
// are "fc"; everything else is "other".
func LayerName(qm *dnn.QuantModel, li int) string {
	if v, ok := layerNames.Load(qm); ok {
		return v.([]string)[li]
	}
	names := make([]string, len(qm.Layers))
	conv := 0
	for i := range qm.Layers {
		switch qm.Layers[i].Kind {
		case dnn.QConv:
			conv++
			names[i] = fmt.Sprintf("conv%d", conv)
		case dnn.QDense, dnn.QSparseDense:
			names[i] = "fc"
		default:
			names[i] = "other"
		}
	}
	v, _ := layerNames.LoadOrStore(qm, names)
	return v.([]string)[li]
}

// layerNames memoizes the per-model section labels; like deployNames the
// labels are pure functions of the model, and runtimes ask for them on
// every inference.
var layerNames sync.Map // *dnn.QuantModel -> []string

// Argmax returns the index of the largest logit.
func Argmax(logits []fixed.Q15) int {
	best, bi := fixed.MinusOne, 0
	for i, v := range logits {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
