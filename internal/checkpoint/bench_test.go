package checkpoint

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
)

func BenchmarkCheckpoint64InferHAR(b *testing.B) {
	qm, ex := buildModel(b)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		b.Fatal(err)
	}
	qin := qm.QuantizeInput(ex[0].X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Checkpoint{Interval: 64}).Infer(img, qin); err != nil {
			b.Fatal(err)
		}
	}
}
