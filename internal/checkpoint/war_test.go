package checkpoint_test

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/intermittest"
)

// TestCheckpointWARSilent sweeps every brown-out placement with the WAR
// shadow tracker armed: periodic full-state checkpointing must restore a
// consistent snapshot after every reboot, leaving no unlogged
// read-then-write hazard and reproducing the continuous-power logits.
func TestCheckpointWARSilent(t *testing.T) {
	qm, x := intermittest.TinyModel(1)
	rep, err := intermittest.SweepRuntime(qm, x, checkpoint.Checkpoint{Interval: 8},
		intermittest.Options{CheckWAR: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("%s not intermittence-safe: %s", rep.Runtime, rep.Summary())
	}
	if rep.GoldenWAR != 0 {
		t.Errorf("%s golden run has WAR hazards: %v", rep.Runtime, rep.GoldenWAR)
	}
}
