// Package checkpoint implements the other class of intermittence support
// the paper discusses (§2.1): software checkpointing in the style of
// Mementos/DINO/Ratchet. Instead of making every loop iteration durable
// (SONIC's loop continuation) or privatizing task-shared writes (Alpaca),
// a checkpointing system periodically dumps its volatile execution state —
// registers and live stack — to non-volatile memory and, after a power
// failure, restores the last dump and re-executes everything since.
//
// The implementation runs SONIC's idempotent kernels under a periodic
// checkpoint policy: the durable loop cursor (standing in for the saved
// register file) is written only every Interval-th iteration, at a cost of
// a RegWords-word volatile-state dump, and iterations in between keep
// their indices in registers. Structural boundaries where range
// re-execution would not be idempotent (buffer swaps, layer transitions,
// and every sparse undo-logging iteration) always checkpoint — the same
// WAR-hazard-driven checkpoint placement DINO performs.
//
// This reproduces the tradeoff the paper summarizes with "prior work
// showed that [task-based models] are more efficient than checkpointing
// models": small intervals pay constant dump overhead; large intervals
// waste re-executed work on every failure and, like large task tiles, risk
// non-termination when an inter-checkpoint region exceeds the energy
// buffer.
package checkpoint

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/sonic"
	"repro/internal/tape"
)

// DefaultRegWords models the volatile state a conservative software
// checkpoint must persist: a 16-word register file plus live stack.
const DefaultRegWords = 64

// Checkpoint is a periodic-checkpointing inference runtime.
type Checkpoint struct {
	// Interval is the number of loop iterations between checkpoints.
	Interval int
	// RegWords overrides the modelled dump size (default DefaultRegWords).
	RegWords int
	// Tape selects the pre-decoded op-tape kernels (sonic.TapeLayerFn);
	// the checkpoint policy itself is unchanged, and the op stream is
	// bit-exact with the interpreted walk.
	Tape bool
}

// Name identifies the runtime, e.g. "ckpt-64".
func (c Checkpoint) Name() string { return fmt.Sprintf("ckpt-%d", c.Interval) }

// Infer runs one inference under the periodic checkpoint policy.
func (c Checkpoint) Infer(img *core.Image, input []fixed.Q15) ([]fixed.Q15, error) {
	if err := img.LoadInput(input); err != nil {
		return nil, err
	}
	return c.ResumeInfer(img, nil)
}

// ResumeInfer implements core.Resumer: Infer minus LoadInput, with an
// optional pre-attempt hook for restoring a forked prefix.
func (c Checkpoint) ResumeInfer(img *core.Image, atReboot func() error) ([]fixed.Q15, error) {
	if c.Interval < 2 {
		return nil, fmt.Errorf("checkpoint: interval must be >= 2 (got %d); use SONIC for per-iteration durability", c.Interval)
	}
	reg := c.RegWords
	if reg == 0 {
		reg = DefaultRegWords
	}
	e := &sonic.Exec{Img: img, Dev: img.Dev, Every: c.Interval, RegWords: reg}
	e.Dev.Emit(mcu.TraceRunBegin, c.Name(), int64(c.Interval))
	if atReboot != nil {
		if err := atReboot(); err != nil {
			return nil, err
		}
	}
	var layerFn sonic.LayerFn = func(s *sonic.Exec, li int, parity bool, start sonic.Cursor) {
		s.RunLayerSoftware(li, parity, start)
	}
	if c.Tape {
		layerFn = sonic.TapeLayerFn(tape.Get(img.Model))
	}
	if err := e.Dev.Run(func() {
		e.ResetVolatile()
		e.Run(layerFn)
	}); err != nil {
		return nil, err
	}
	e.Dev.FlushTrace()
	return img.ReadOutput(sonic.FinalParity(img.Model)), nil
}
