package checkpoint

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/mcu"
	"repro/internal/sonic"
)

func buildModel(t testing.TB) (*dnn.QuantModel, []dataset.Example) {
	t.Helper()
	ds := dataset.HAR(3, 240, 12)
	n := dnn.HARNet(3)
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 2
	dnn.Train(n, ds, cfg)
	n.Layers[0].(*dnn.Conv).Prune(0.03)
	n.Layers[3] = dnn.NewSparseDense(n.Layers[3].(*dnn.Dense), 0.02)
	qm, err := dnn.Quantize(n, [][]float64{ds.Train[0].X, ds.Train[1].X})
	if err != nil {
		t.Fatal(err)
	}
	return qm, ds.Test
}

func assertEqualQ(t *testing.T, got, want []fixed.Q15, ctx string) {
	t.Helper()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: logit %d: got %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

func TestMatchesHostReference(t *testing.T) {
	qm, ex := buildModel(t)
	dev := mcu.New(energy.Continuous{})
	img, err := core.Deploy(dev, qm)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{4, 64, 256} {
		qin := qm.QuantizeInput(ex[0].X)
		got, err := Checkpoint{Interval: k}.Infer(img, qin)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualQ(t, got, qm.Forward(qin), "continuous")
	}
}

func TestIntervalValidation(t *testing.T) {
	qm, ex := buildModel(t)
	dev := mcu.New(energy.Continuous{})
	img, _ := core.Deploy(dev, qm)
	if _, err := (Checkpoint{Interval: 1}).Infer(img, qm.QuantizeInput(ex[0].X)); err == nil {
		t.Error("interval 1 should be rejected")
	}
}

// Correctness under failure injection: re-execution from a stale checkpoint
// must reproduce the continuous-power result exactly.
func TestCorrectUnderFailureInjection(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	want := qm.Forward(qin)
	for _, k := range []int{4, 32} {
		for _, period := range []int{311, 1511, 6007} {
			dev := mcu.New(energy.NewFailAfterOps(period, period))
			img, err := core.Deploy(dev, qm)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Checkpoint{Interval: k}.Infer(img, qin)
			if err != nil {
				t.Fatalf("k=%d period=%d: %v", k, period, err)
			}
			assertEqualQ(t, got, want, "injected")
			if dev.Stats().Reboots == 0 {
				t.Errorf("k=%d period=%d: expected reboots", k, period)
			}
		}
	}
}

// Property over random intervals and failure periods.
func TestEquivalenceProperty(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[1].X)
	want := qm.Forward(qin)
	f := func(seed uint32) bool {
		k := 2 + int(seed%100)
		period := 400 + int(seed/7%6000)
		dev := mcu.New(energy.NewFailAfterOps(period, period))
		img, err := core.Deploy(dev, qm)
		if err != nil {
			return false
		}
		got, err := Checkpoint{Interval: k}.Infer(img, qin)
		if errors.Is(err, mcu.ErrDoesNotComplete) {
			return true // large k + small budget legitimately hangs
		}
		if err != nil {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// The §2 tradeoff: frequent checkpoints cost dump overhead on continuous
// power; sparse checkpoints waste re-executed work on intermittent power.
// SONIC beats both ends.
func TestTaskBasedBeatsCheckpointing(t *testing.T) {
	qm, ex := buildModel(t)
	qin := qm.QuantizeInput(ex[0].X)
	run := func(rt core.Runtime, p energy.System) (float64, error) {
		dev := mcu.New(p)
		img, err := core.Deploy(dev, qm)
		if err != nil {
			t.Fatal(err)
		}
		_, ierr := rt.Infer(img, qin)
		return dev.Stats().EnergyNJ(), ierr
	}

	sonicE, err := run(sonic.SONIC{}, energy.Continuous{})
	if err != nil {
		t.Fatal(err)
	}
	ckptSmall, err := run(Checkpoint{Interval: 4}, energy.Continuous{})
	if err != nil {
		t.Fatal(err)
	}
	if ckptSmall <= sonicE {
		t.Errorf("frequent checkpointing (%v) should cost more than SONIC (%v)", ckptSmall, sonicE)
	}

	// Intermittent power: wasted re-execution makes large intervals pay.
	rf := func() energy.System {
		return energy.NewIntermittent(energy.Cap100uF, energy.ConstantHarvester{Watts: energy.DefaultRFWatts})
	}
	sonicI, err := run(sonic.SONIC{}, rf())
	if err != nil {
		t.Fatal(err)
	}
	ckptLarge, err := run(Checkpoint{Interval: 128}, rf())
	if err != nil {
		t.Fatal(err)
	}
	if ckptLarge <= sonicI {
		t.Errorf("sparse checkpointing at 100uF (%v) should waste more than SONIC (%v)", ckptLarge, sonicI)
	}
	t.Logf("continuous: sonic %.0fuJ vs ckpt-4 %.0fuJ (%.2fx); 100uF: sonic %.0fuJ vs ckpt-128 %.0fuJ (%.2fx)",
		sonicE/1e3, ckptSmall/1e3, ckptSmall/sonicE, sonicI/1e3, ckptLarge/1e3, ckptLarge/sonicI)
}
