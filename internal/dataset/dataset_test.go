package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDigitsShapeAndBalance(t *testing.T) {
	d := Digits(1, 200, 50)
	if d.InputLen() != 784 {
		t.Fatalf("InputLen = %d, want 784", d.InputLen())
	}
	if len(d.Train) != 200 || len(d.Test) != 50 {
		t.Fatalf("split sizes wrong: %d/%d", len(d.Train), len(d.Test))
	}
	counts := make([]int, 10)
	for _, ex := range d.Train {
		if len(ex.X) != 784 {
			t.Fatalf("sample length %d", len(ex.X))
		}
		if ex.Label < 0 || ex.Label >= 10 {
			t.Fatalf("label out of range: %d", ex.Label)
		}
		counts[ex.Label]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Errorf("class %d has %d samples, want 20 (balanced)", c, n)
		}
	}
}

func TestDigitsDeterministic(t *testing.T) {
	a := Digits(7, 20, 5)
	b := Digits(7, 20, 5)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatalf("labels differ at %d", i)
		}
		for j := range a.Train[i].X {
			if a.Train[i].X[j] != b.Train[i].X[j] {
				t.Fatalf("pixels differ at sample %d pixel %d", i, j)
			}
		}
	}
}

func TestDigitsDifferentSeedsDiffer(t *testing.T) {
	a := Digits(1, 10, 1)
	b := Digits(2, 10, 1)
	same := true
	for i := range a.Train {
		for j := range a.Train[i].X {
			if a.Train[i].X[j] != b.Train[i].X[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestDigitsPixelRange(t *testing.T) {
	d := Digits(3, 50, 10)
	for _, ex := range append(d.Train, d.Test...) {
		for _, v := range ex.X {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of [0,1]: %v", v)
			}
		}
	}
}

func TestDigitsHaveInk(t *testing.T) {
	// Every rendered digit must contain some bright pixels (the glyph).
	d := Digits(4, 100, 0)
	for i, ex := range d.Train {
		sum := 0.0
		for _, v := range ex.X {
			sum += v
		}
		if sum < 5 {
			t.Fatalf("sample %d (label %d) looks blank: ink %v", i, ex.Label, sum)
		}
	}
}

func TestHARShape(t *testing.T) {
	d := HAR(1, 60, 12)
	if d.NumClasses != 6 {
		t.Fatalf("NumClasses = %d", d.NumClasses)
	}
	if d.InputLen() != 3*32 {
		t.Fatalf("InputLen = %d", d.InputLen())
	}
	for _, ex := range d.Train {
		if len(ex.X) != 96 {
			t.Fatalf("sample length %d", len(ex.X))
		}
	}
}

func TestHARClassesSeparable(t *testing.T) {
	// Static classes should have lower variance than walking on vertical axis.
	d := HAR(2, 600, 0)
	variance := func(ex Example, axis int) float64 {
		mean, n := 0.0, harWindow
		for t := 0; t < n; t++ {
			mean += ex.X[axis*harWindow+t]
		}
		mean /= float64(n)
		v := 0.0
		for t := 0; t < n; t++ {
			diff := ex.X[axis*harWindow+t] - mean
			v += diff * diff
		}
		return v / float64(n)
	}
	var walkVar, sitVar float64
	var walkN, sitN int
	for _, ex := range d.Train {
		switch ex.Label {
		case 0:
			walkVar += variance(ex, 2)
			walkN++
		case 3:
			sitVar += variance(ex, 2)
			sitN++
		}
	}
	if walkVar/float64(walkN) < 4*sitVar/float64(sitN) {
		t.Errorf("walking variance should dominate sitting: %v vs %v",
			walkVar/float64(walkN), sitVar/float64(sitN))
	}
}

func TestKeywordShape(t *testing.T) {
	d := Keyword(1, 120, 24)
	if d.NumClasses != 12 {
		t.Fatalf("NumClasses = %d", d.NumClasses)
	}
	if d.InputLen() != 32*16 {
		t.Fatalf("InputLen = %d", d.InputLen())
	}
}

func TestKeywordSilenceIsDim(t *testing.T) {
	d := Keyword(5, 240, 0)
	var silence, speech float64
	var sn, vn int
	for _, ex := range d.Train {
		sum := 0.0
		for _, v := range ex.X {
			sum += v
		}
		if ex.Label == 10 { // silence
			silence += sum
			sn++
		} else if ex.Label < 10 {
			speech += sum
			vn++
		}
	}
	if silence/float64(sn) > 0.7*speech/float64(vn) {
		t.Errorf("silence should be dimmer than speech: %v vs %v",
			silence/float64(sn), speech/float64(vn))
	}
}

// Property: all generators produce finite values in a bounded range for any
// seed.
func TestGeneratorsBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		for _, d := range []*Dataset{Digits(seed, 10, 2), HAR(seed, 12, 2), Keyword(seed, 12, 2)} {
			for _, ex := range append(d.Train, d.Test...) {
				for _, v := range ex.X {
					if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 10 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestClassNames(t *testing.T) {
	if len(ClassNames("digits")) != 10 || len(ClassNames("har")) != 6 || len(ClassNames("okg")) != 12 {
		t.Error("class name lengths wrong")
	}
	if ClassNames("nope") != nil {
		t.Error("unknown dataset should return nil")
	}
}

func BenchmarkRenderDigit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Digits(uint64(i), 1, 0)
	}
}
