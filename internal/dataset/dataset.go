// Package dataset generates the three synthetic workloads that stand in for
// the paper's MNIST, human-activity-recognition (HAR), and Google keyword
// spotting (OkG) datasets, which are not available offline.
//
// Each generator is deterministic given a seed and produces inputs with the
// same structure as the original data: 28×28 grayscale glyph images for
// image classification, 3-axis accelerometer windows for HAR, and
// time×frequency spectrogram patches for keyword spotting. The tasks are
// designed so that classification accuracy degrades smoothly as networks are
// compressed, which is the property GENESIS's accuracy/energy tradeoff
// exploration (Fig. 4) depends on.
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Example is a single labelled sample, stored flat in row-major order.
type Example struct {
	X     []float64
	Label int
}

// Dataset is a train/test split of labelled examples with a known input
// shape (channels, height, width) and class count.
type Dataset struct {
	Name       string
	InputShape [3]int // channels, height, width
	NumClasses int
	Train      []Example
	Test       []Example
}

// InputLen returns the flattened input length.
func (d *Dataset) InputLen() int {
	return d.InputShape[0] * d.InputShape[1] * d.InputShape[2]
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d train / %d test, input %v, %d classes",
		d.Name, len(d.Train), len(d.Test), d.InputShape, d.NumClasses)
}

// digitStrokes defines each digit as polylines in the unit square,
// (x, y) with y increasing downward. The glyphs are deliberately simple;
// randomized affine jitter, stroke width, and noise make the task nontrivial.
var digitStrokes = [10][][][2]float64{
	0: {{{0.3, 0.2}, {0.7, 0.2}, {0.75, 0.5}, {0.7, 0.8}, {0.3, 0.8}, {0.25, 0.5}, {0.3, 0.2}}},
	1: {{{0.35, 0.3}, {0.5, 0.2}, {0.5, 0.8}}, {{0.35, 0.8}, {0.65, 0.8}}},
	2: {{{0.3, 0.3}, {0.5, 0.2}, {0.7, 0.3}, {0.7, 0.45}, {0.3, 0.8}, {0.7, 0.8}}},
	3: {{{0.3, 0.25}, {0.6, 0.2}, {0.7, 0.35}, {0.5, 0.5}, {0.7, 0.65}, {0.6, 0.8}, {0.3, 0.75}}},
	4: {{{0.6, 0.8}, {0.6, 0.2}, {0.25, 0.6}, {0.75, 0.6}}},
	5: {{{0.7, 0.2}, {0.3, 0.2}, {0.3, 0.5}, {0.65, 0.5}, {0.7, 0.65}, {0.6, 0.8}, {0.3, 0.78}}},
	6: {{{0.65, 0.2}, {0.35, 0.35}, {0.3, 0.65}, {0.5, 0.8}, {0.7, 0.65}, {0.5, 0.5}, {0.32, 0.58}}},
	7: {{{0.28, 0.2}, {0.72, 0.2}, {0.45, 0.8}}},
	8: {{{0.5, 0.5}, {0.32, 0.35}, {0.5, 0.2}, {0.68, 0.35}, {0.5, 0.5}, {0.3, 0.65}, {0.5, 0.8}, {0.7, 0.65}, {0.5, 0.5}}},
	9: {{{0.68, 0.42}, {0.5, 0.5}, {0.32, 0.35}, {0.5, 0.2}, {0.68, 0.35}, {0.65, 0.8}}},
}

// Digits generates a synthetic handwritten-digit dataset: 1×28×28 images,
// 10 classes. This stands in for MNIST in the image-recognition experiments.
func Digits(seed uint64, nTrain, nTest int) *Dataset {
	d := &Dataset{Name: "digits", InputShape: [3]int{1, 28, 28}, NumClasses: 10}
	rng := rand.New(rand.NewPCG(seed, 0x5))
	d.Train = makeDigits(rng, nTrain)
	d.Test = makeDigits(rng, nTest)
	return d
}

func makeDigits(rng *rand.Rand, n int) []Example {
	out := make([]Example, n)
	for i := range out {
		label := i % 10 // balanced classes
		out[i] = Example{X: renderDigit(rng, label), Label: label}
	}
	// Shuffle so class order is not a signal.
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

const digitSize = 28

func renderDigit(rng *rand.Rand, label int) []float64 {
	img := make([]float64, digitSize*digitSize)
	// Random affine jitter.
	angle := (rng.Float64() - 0.5) * 0.45 // ±~13°
	scale := 0.8 + rng.Float64()*0.35
	dx := (rng.Float64() - 0.5) * 0.16
	dy := (rng.Float64() - 0.5) * 0.16
	width := 0.035 + rng.Float64()*0.03
	sin, cos := math.Sin(angle), math.Cos(angle)
	xform := func(p [2]float64) (float64, float64) {
		// Center, rotate+scale, translate back.
		x, y := p[0]-0.5, p[1]-0.5
		x, y = (x*cos-y*sin)*scale, (x*sin+y*cos)*scale
		return (x + 0.5 + dx) * digitSize, (y + 0.5 + dy) * digitSize
	}
	for _, stroke := range digitStrokes[label] {
		for s := 0; s < len(stroke)-1; s++ {
			x0, y0 := xform(stroke[s])
			x1, y1 := xform(stroke[s+1])
			drawSegment(img, x0, y0, x1, y1, width*digitSize)
		}
	}
	// Additive noise and clamping.
	for i := range img {
		img[i] += rng.NormFloat64() * 0.08
		if img[i] < 0 {
			img[i] = 0
		}
		if img[i] > 1 {
			img[i] = 1
		}
	}
	return img
}

// drawSegment renders a line segment into img with a soft Gaussian brush.
func drawSegment(img []float64, x0, y0, x1, y1, radius float64) {
	steps := int(math.Hypot(x1-x0, y1-y0)*2) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		cx, cy := x0+(x1-x0)*t, y0+(y1-y0)*t
		lo, hi := int(math.Floor(-2*radius)), int(math.Ceil(2*radius))
		for oy := lo; oy <= hi; oy++ {
			for ox := lo; ox <= hi; ox++ {
				px, py := int(cx)+ox, int(cy)+oy
				if px < 0 || px >= digitSize || py < 0 || py >= digitSize {
					continue
				}
				d2 := (float64(px)-cx)*(float64(px)-cx) + (float64(py)-cy)*(float64(py)-cy)
				v := math.Exp(-d2 / (2 * radius * radius))
				idx := py*digitSize + px
				if v > img[idx] {
					img[idx] = v
				}
			}
		}
	}
}

// harClasses matches the six activities of the UCI HAR dataset the paper's
// HAR network classifies.
var harClasses = []string{"walking", "upstairs", "downstairs", "sitting", "standing", "laying"}

// harWindow is the number of accelerometer samples per window (per axis).
const harWindow = 32

// HAR generates a synthetic human-activity-recognition dataset: windows of
// 3-axis accelerometer data (3×1×32), 6 classes. Periodic activities get
// class-specific gait frequencies and axis phase relationships; static
// postures get class-specific gravity orientations.
func HAR(seed uint64, nTrain, nTest int) *Dataset {
	d := &Dataset{Name: "har", InputShape: [3]int{3, 1, harWindow}, NumClasses: len(harClasses)}
	rng := rand.New(rand.NewPCG(seed, 0xACCE1))
	d.Train = makeHAR(rng, nTrain)
	d.Test = makeHAR(rng, nTest)
	return d
}

func makeHAR(rng *rand.Rand, n int) []Example {
	out := make([]Example, n)
	for i := range out {
		label := i % len(harClasses)
		out[i] = Example{X: renderHAR(rng, label), Label: label}
	}
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

func renderHAR(rng *rand.Rand, label int) []float64 {
	x := make([]float64, 3*harWindow)
	phase := rng.Float64() * 2 * math.Pi
	jitter := func() float64 { return rng.NormFloat64() * 0.12 }
	// Per-class parameters: gait frequency (cycles/window), vertical impact
	// amplitude, gravity orientation (which axis carries ~1g).
	var freq, amp float64
	var grav [3]float64
	switch label {
	case 0: // walking
		freq, amp, grav = 3.0, 0.45, [3]float64{0, 0, 1}
	case 1: // upstairs: slower, stronger forward component
		freq, amp, grav = 2.2, 0.55, [3]float64{0.25, 0, 0.95}
	case 2: // downstairs: faster, sharp impacts
		freq, amp, grav = 3.8, 0.7, [3]float64{-0.2, 0, 0.95}
	case 3: // sitting: static, tilted
		freq, amp, grav = 0, 0, [3]float64{0.5, 0.2, 0.8}
	case 4: // standing: static, upright
		freq, amp, grav = 0, 0, [3]float64{0, 0, 1}
	case 5: // laying: static, horizontal
		freq, amp, grav = 0, 0, [3]float64{0.95, 0.1, 0.1}
	}
	for t := 0; t < harWindow; t++ {
		ph := phase + 2*math.Pi*freq*float64(t)/harWindow
		// Axis 0: forward/back sway at gait frequency.
		x[0*harWindow+t] = grav[0] + 0.4*amp*math.Sin(ph) + jitter()
		// Axis 1: lateral sway at half the gait frequency.
		x[1*harWindow+t] = grav[1] + 0.3*amp*math.Sin(ph/2) + jitter()
		// Axis 2: vertical impacts, sharpened to resemble heel strikes.
		imp := math.Sin(ph)
		x[2*harWindow+t] = grav[2] + amp*imp*math.Abs(imp) + jitter()
	}
	return x
}

// kwClasses matches the 12-way keyword-spotting task (10 keywords plus
// "silence" and "unknown") of the Speech Commands benchmark.
var kwClasses = []string{
	"yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go",
	"silence", "unknown",
}

const (
	kwTime = 32 // time frames
	kwFreq = 16 // mel-like frequency bins
)

// Keyword generates a synthetic keyword-spotting dataset: 1×32×16
// spectrogram patches, 12 classes. Each keyword is a characteristic set of
// formant tracks (frequency trajectories over time); "silence" is noise and
// "unknown" is a random track.
func Keyword(seed uint64, nTrain, nTest int) *Dataset {
	d := &Dataset{Name: "okg", InputShape: [3]int{1, kwTime, kwFreq}, NumClasses: len(kwClasses)}
	rng := rand.New(rand.NewPCG(seed, 0x0C6))
	d.Train = makeKeyword(rng, nTrain)
	d.Test = makeKeyword(rng, nTest)
	return d
}

func makeKeyword(rng *rand.Rand, n int) []Example {
	out := make([]Example, n)
	for i := range out {
		label := i % len(kwClasses)
		out[i] = Example{X: renderKeyword(rng, label), Label: label}
	}
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// kwFormants gives, per keyword, 2–3 formant tracks as (startFreq, endFreq,
// startTime, endTime) in unit coordinates. Tracks are rendered as bright
// ridges in the spectrogram.
var kwFormants = [][][4]float64{
	{{0.2, 0.5, 0.1, 0.9}, {0.6, 0.8, 0.1, 0.6}}, // yes
	{{0.5, 0.2, 0.1, 0.9}, {0.7, 0.7, 0.2, 0.8}}, // no
	{{0.3, 0.9, 0.2, 0.8}},                       // up: rising
	{{0.9, 0.2, 0.2, 0.8}},                       // down: falling
	{{0.4, 0.4, 0.1, 0.5}, {0.6, 0.3, 0.5, 0.9}}, // left
	{{0.3, 0.6, 0.1, 0.5}, {0.6, 0.6, 0.5, 0.9}}, // right
	{{0.5, 0.5, 0.3, 0.7}},                       // on: short flat
	{{0.4, 0.4, 0.2, 0.5}, {0.4, 0.4, 0.6, 0.9}}, // off: two bursts
	{{0.8, 0.8, 0.1, 0.4}, {0.5, 0.2, 0.4, 0.9}}, // stop
	{{0.2, 0.2, 0.2, 0.5}, {0.2, 0.7, 0.5, 0.9}}, // go
	{}, // silence
	{{0.1, 0.9, 0.1, 0.9}, {0.9, 0.1, 0.1, 0.9}, {0.5, 0.5, 0.3, 0.7}}, // unknown (cluttered)
}

func renderKeyword(rng *rand.Rand, label int) []float64 {
	img := make([]float64, kwTime*kwFreq)
	tracks := kwFormants[label]
	if label == len(kwClasses)-1 { // "unknown": perturb tracks heavily
		perturbed := make([][4]float64, len(tracks))
		for i, tr := range tracks {
			perturbed[i] = [4]float64{
				clamp01(tr[0] + rng.NormFloat64()*0.2),
				clamp01(tr[1] + rng.NormFloat64()*0.2),
				tr[2], tr[3],
			}
		}
		tracks = perturbed
	}
	warp := 0.9 + rng.Float64()*0.2   // speaking-rate variation
	shift := rng.NormFloat64() * 0.05 // pitch variation
	for _, tr := range tracks {
		t0, t1 := tr[2]*warp, tr[3]*warp
		for ti := 0; ti < kwTime; ti++ {
			tu := float64(ti) / kwTime
			if tu < t0 || tu > t1 {
				continue
			}
			prog := (tu - t0) / (t1 - t0 + 1e-9)
			fc := (tr[0]+(tr[1]-tr[0])*prog+shift)*kwFreq + rng.NormFloat64()*0.4
			for fi := 0; fi < kwFreq; fi++ {
				d := float64(fi) - fc
				v := math.Exp(-d * d / 2.2)
				if v > img[ti*kwFreq+fi] {
					img[ti*kwFreq+fi] = v
				}
			}
		}
	}
	for i := range img {
		img[i] += math.Abs(rng.NormFloat64()) * 0.1 // noise floor
		if img[i] > 1 {
			img[i] = 1
		}
	}
	return img
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ClassNames returns human-readable class names for the named dataset, or
// nil if unknown.
func ClassNames(name string) []string {
	switch name {
	case "digits":
		return []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}
	case "har":
		return harClasses
	case "okg":
		return kwClasses
	}
	return nil
}
