package repro_test

import (
	"errors"
	"sync"
	"testing"

	"repro"
	"repro/internal/dnn"
	"repro/internal/mcu"
)

// compressOnce caches one GENESIS run for the facade tests.
var (
	once  sync.Once
	model *repro.QuantModel
	mErr  error
)

func quickModel(t testing.TB) *repro.QuantModel {
	t.Helper()
	once.Do(func() {
		model, mErr = repro.TrainAndCompress("har", repro.QuickOptions("har"))
	})
	if mErr != nil {
		t.Fatal(mErr)
	}
	return model
}

func TestQuickstartFlow(t *testing.T) {
	m := quickModel(t)
	ds, err := dnn.DatasetFor("har", 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}

	dev := repro.NewDevice(repro.Intermittent100uF())
	img, err := repro.Deploy(dev, m)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ex := range ds.Test {
		logits, err := repro.SONIC().Infer(img, m.QuantizeInput(ex.X))
		if err != nil {
			t.Fatal(err)
		}
		if repro.Argmax(logits) == ex.Label {
			correct++
		}
	}
	if correct < len(ds.Test)/2 {
		t.Errorf("SONIC on 100uF classified %d/%d", correct, len(ds.Test))
	}
	if dev.Stats().Reboots == 0 {
		t.Error("intermittent inference should have rebooted")
	}
}

func TestBaseFailsWhereSONICSucceeds(t *testing.T) {
	m := quickModel(t)
	ds, _ := dnn.DatasetFor("har", 2, 1, 1)
	x := m.QuantizeInput(ds.Test[0].X)

	devB := repro.NewDevice(repro.Intermittent100uF())
	imgB, err := repro.Deploy(devB, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Base().Infer(imgB, x); !errors.Is(err, mcu.ErrDoesNotComplete) {
		t.Errorf("base should not complete on 100uF: %v", err)
	}

	devS := repro.NewDevice(repro.Intermittent100uF())
	imgS, err := repro.Deploy(devS, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.SONIC().Infer(imgS, x); err != nil {
		t.Errorf("SONIC must complete: %v", err)
	}
}

func TestRuntimeNames(t *testing.T) {
	if repro.SONIC().Name() != "sonic" || repro.TAILS().Name() != "tails" ||
		repro.Base().Name() != "base" || repro.Tile(32).Name() != "tile-32" {
		t.Error("runtime names wrong")
	}
}

func TestTrainNetworkFacade(t *testing.T) {
	n, acc, err := repro.TrainNetwork("har", 1, 240, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("accuracy %v too low", acc)
	}
	if n.MACs() == 0 {
		t.Error("network should have MACs")
	}
}

func TestAppModelFacade(t *testing.T) {
	p := repro.WildlifeModel()
	p.TP, p.TN, p.EInfer = 0.95, 0.95, 0.03
	if !(repro.IMpJBaseline(p) < repro.IMpJ(p) && repro.IMpJ(p) < repro.IMpJIdeal(p)) {
		t.Error("IMpJ ordering wrong: baseline < inference < ideal expected")
	}
}

func TestCapacitorExports(t *testing.T) {
	if repro.Cap1mF.UsableNJ() <= repro.Cap100uF.UsableNJ() {
		t.Error("capacitor ordering wrong")
	}
	if len(repro.Networks()) != 3 {
		t.Error("three networks expected")
	}
}
