// Wearable activity tracking on harvested energy. A batteryless wristband
// classifies 3-axis accelerometer windows into six activities. The example
// streams a day-in-the-life activity sequence through the deployed network
// under three power systems and shows that SONIC's results are identical
// on all of them — the paper's core correctness guarantee — while the
// unprotected baseline cannot run at all on the smaller buffers.
//
//	go run ./examples/har
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	fmt.Println("preparing the HAR classifier with GENESIS...")
	model, err := repro.TrainAndCompress("har", repro.QuickOptions("har"))
	if err != nil {
		log.Fatal(err)
	}

	// A fresh stream of activity windows (unseen seed).
	ds, err := repro.NewDataset("har", 1234, 1, 24)
	if err != nil {
		log.Fatal(err)
	}
	names := repro.ClassNames("har")

	powers := []struct {
		name string
		make func() repro.PowerSystem
	}{
		{"continuous", repro.ContinuousPower},
		{"RF + 1 mF", func() repro.PowerSystem { return repro.IntermittentRF(repro.Cap1mF) }},
		{"RF + 100 uF", repro.Intermittent100uF},
	}

	timelines := make([][]int, len(powers))
	for pi, pw := range powers {
		dev := repro.NewDevice(pw.make())
		img, err := repro.Deploy(dev, model)
		if err != nil {
			log.Fatal(err)
		}
		for _, ex := range ds.Test {
			logits, err := repro.SONIC().Infer(img, model.QuantizeInput(ex.X))
			if err != nil {
				log.Fatal(err)
			}
			timelines[pi] = append(timelines[pi], repro.Argmax(logits))
		}
		st := dev.Stats()
		fmt.Printf("%-12s: %2d windows, %4d power failures, %6.2f mJ, %.3f s live\n",
			pw.name, len(ds.Test), st.Reboots, st.EnergyMJ(), st.LiveSeconds(dev.Cost.ClockHz))
	}

	// The guarantee: identical classifications under every power system.
	for i := range ds.Test {
		if timelines[0][i] != timelines[1][i] || timelines[0][i] != timelines[2][i] {
			log.Fatalf("window %d: results diverge across power systems!", i)
		}
	}
	fmt.Println("\nall three power systems produced identical classifications:")
	var b strings.Builder
	correct := 0
	for i, ex := range ds.Test {
		pred := timelines[0][i]
		mark := " "
		if pred == ex.Label {
			correct++
			mark = "*"
		}
		fmt.Fprintf(&b, "  window %2d: %-10s%s", i, names[pred], mark)
		if (i+1)%3 == 0 {
			b.WriteByte('\n')
		}
	}
	fmt.Print(b.String())
	fmt.Printf("\naccuracy on the stream: %d/%d\n", correct, len(ds.Test))

	// And the contrast: the unprotected baseline on the 100 uF system.
	dev := repro.NewDevice(repro.Intermittent100uF())
	img, err := repro.Deploy(dev, model)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := repro.Base().Infer(img, model.QuantizeInput(ds.Test[0].X)); err != nil {
		fmt.Printf("\nunprotected baseline on 100 uF: %v\n", err)
	}
}
