// Quickstart: train + compress a network with GENESIS, deploy it onto the
// simulated energy-harvesting device, and run intermittence-safe inference
// with SONIC on the smallest (100 µF) power system.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. GENESIS: train the human-activity-recognition network on the
	// synthetic accelerometer dataset, sweep compression configurations,
	// and pick the one that maximizes IMpJ under the FRAM budget.
	fmt.Println("running GENESIS (quick budgets)...")
	model, err := repro.TrainAndCompress("har", repro.QuickOptions("har"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen model: %d MACs, %d bytes of weights\n",
		model.MACs(), model.WeightWords()*2)

	// 2. Deploy onto a device powered by RF harvesting with a 100 µF
	// capacitor — the buffer holds only a few thousand operations, so the
	// device power-fails hundreds of times during one inference.
	dev := repro.NewDevice(repro.Intermittent100uF())
	img, err := repro.Deploy(dev, model)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Classify a few fresh samples with SONIC. Loop continuation
	// checkpoints progress after every loop iteration, so every inference
	// completes and produces exactly the continuous-power answer.
	ds, err := repro.NewDataset("har", 42, 1, 6)
	if err != nil {
		log.Fatal(err)
	}
	names := repro.ClassNames("har")
	correct := 0
	for i, ex := range ds.Test {
		logits, err := repro.SONIC().Infer(img, model.QuantizeInput(ex.X))
		if err != nil {
			log.Fatal(err)
		}
		pred := repro.Argmax(logits)
		if pred == ex.Label {
			correct++
		}
		fmt.Printf("sample %d: predicted %-10s (truth %s)\n", i, names[pred], names[ex.Label])
	}
	st := dev.Stats()
	fmt.Printf("\n%d/%d correct — %.3f s live, %.3f s recharging, %d power failures, %.2f mJ\n",
		correct, len(ds.Test),
		st.LiveSeconds(dev.Cost.ClockHz), st.DeadSeconds, st.Reboots, st.EnergyMJ())
}
