// Wildlife monitoring — the paper's §3 motivating application, end to end.
//
// A battery-less camera trap harvests RF energy and watches for a rare
// animal (we stand in "hedgehog" with one digit class of the synthetic
// image dataset, base rate p = 5%). Communicating a reading costs orders
// of magnitude more than sensing or local inference, so the deployment
// question is: given a fixed budget of harvested energy, how many
// *interesting* readings does each strategy deliver?
//
// The example runs three deployments of the repro.Pipeline over the same
// event distribution and energy budget, reproducing the analysis behind
// Figs. 1-2 with a real deployed network rather than closed-form rates:
//
//   - always-send: no inference, transmit every reading;
//
//   - SONIC-filtered: classify locally on intermittent power, transmit
//     only readings classified as interesting;
//
//   - oracle: transmit exactly the interesting readings (unbuildable).
//
//     go run ./examples/wildlife
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

// Energy costs in Joules (paper §3.2, result-only communication).
const (
	eSense   = 0.010
	eComm    = 23.0 / 98 // OpenChirp packet, sending the result only
	budgetJ  = 300.0     // total harvested energy to spend
	interest = 7         // the "hedgehog" class
	baseRate = 0.05
)

// trapSource emits mostly-boring readings with rare interesting ones.
type trapSource struct {
	rng         *rand.Rand
	interesting []repro.Example
	boring      []repro.Example
}

func (s *trapSource) Next() repro.Event {
	pool := s.boring
	if s.rng.Float64() < baseRate {
		pool = s.interesting
	}
	ex := pool[s.rng.IntN(len(pool))]
	return repro.Event{X: ex.X, Label: ex.Label}
}

func main() {
	fmt.Println("preparing the image classifier with GENESIS...")
	model, err := repro.TrainAndCompress("mnist", repro.QuickOptions("mnist"))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := repro.NewDataset("mnist", 99, 1, 4000)
	if err != nil {
		log.Fatal(err)
	}

	newSource := func() *trapSource {
		s := &trapSource{rng: rand.New(rand.NewPCG(99, 1))}
		for _, ex := range ds.Test {
			if ex.Label == interest {
				s.interesting = append(s.interesting, ex)
			} else {
				s.boring = append(s.boring, ex)
			}
		}
		return s
	}

	base := repro.PipelineConfig{Interesting: interest, ESenseJ: eSense, ECommJ: eComm}
	filtered := base
	filtered.Runtime = repro.SONIC()
	oracle := base
	oracle.Oracle = true

	run := func(name string, cfg repro.PipelineConfig) repro.Tally {
		dev := repro.NewDevice(repro.Intermittent100uF())
		pl, err := repro.NewPipeline(dev, model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tally, err := pl.Run(newSource(), budgetJ)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %6d events, %5d sent, %4d interesting, %3d missed  (%.3f IMpJ, %d reboots)\n",
			name+":", tally.Events, tally.Sent, tally.InterestingSent,
			tally.MissedPositives, tally.IMpJ(), tally.Reboots)
		return tally
	}

	fmt.Printf("\nover %.0f J of harvested energy (p=%.2f, Ecomm=%.2f J):\n",
		budgetJ, baseRate, eComm)
	always := run("always-send", base)
	filt := run("local filter", filtered)
	run("oracle", oracle)

	fmt.Printf("\nlocal inference on intermittent power delivers %.1fx the interesting\nmessages of always-send — the paper's \"intelligence beyond the edge\".\n",
		filt.IMpJ()/always.IMpJ())
}
