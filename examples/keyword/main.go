// Keyword spotting with hardware acceleration. A batteryless voice badge
// recognizes twelve keywords from spectrogram patches. The example deploys
// the GENESIS-compressed network and compares SONIC against TAILS on the
// same device, showing TAILS's one-time tile calibration (§7.1) and the
// DMA+LEA speedup on the separated convolution and dense layers.
//
//	go run ./examples/keyword
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("preparing the keyword-spotting network with GENESIS...")
	model, err := repro.TrainAndCompress("okg", repro.QuickOptions("okg"))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := repro.NewDataset("okg", 777, 1, 12)
	if err != nil {
		log.Fatal(err)
	}
	names := repro.ClassNames("okg")

	type outcome struct {
		name    string
		correct int
		energy  float64
		reboots int
	}
	var outcomes []outcome
	for _, rt := range []repro.Runtime{repro.SONIC(), repro.TAILS()} {
		dev := repro.NewDevice(repro.Intermittent100uF())
		img, err := repro.Deploy(dev, model)
		if err != nil {
			log.Fatal(err)
		}
		o := outcome{name: rt.Name()}
		for i, ex := range ds.Test {
			logits, err := rt.Infer(img, model.QuantizeInput(ex.X))
			if err != nil {
				log.Fatal(err)
			}
			pred := repro.Argmax(logits)
			if pred == ex.Label {
				o.correct++
			}
			if rt.Name() == "tails" {
				fmt.Printf("  heard %-8q -> %-8q\n", names[ex.Label], names[pred])
			}
			_ = i
		}
		o.energy = dev.Stats().EnergyMJ()
		o.reboots = dev.Stats().Reboots
		outcomes = append(outcomes, o)
	}

	fmt.Println()
	for _, o := range outcomes {
		fmt.Printf("%-6s: %2d/%d correct, %.2f mJ, %d power failures\n",
			o.name, o.correct, len(ds.Test), o.energy, o.reboots)
	}
	fmt.Printf("\nTAILS used %.0f%% of SONIC's energy for the same stream\n",
		100*outcomes[1].energy/outcomes[0].energy)
	fmt.Println("(the first TAILS inference also ran the one-time LEA tile calibration)")
}
