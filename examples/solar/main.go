// Solar deployment with an energy trace. A batteryless sensor runs HAR
// inference from a small solar array whose output varies wildly with the
// time of day. The example records the capacitor's charge level while
// SONIC infers through dozens of power failures — the sawtooth of the
// paper's Fig. 6 — renders it as an ASCII strip, and verifies that the
// classifications are identical to a bench run on continuous power.
//
//	go run ./examples/solar
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/energy"
	"repro/internal/mcu"
)

func main() {
	fmt.Println("preparing the HAR classifier with GENESIS...")
	model, err := repro.TrainAndCompress("har", repro.QuickOptions("har"))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := repro.NewDataset("har", 2026, 1, 8)
	if err != nil {
		log.Fatal(err)
	}
	names := repro.ClassNames("har")

	// Continuous-power reference.
	bench := repro.NewDevice(repro.ContinuousPower())
	benchImg, err := repro.Deploy(bench, model)
	if err != nil {
		log.Fatal(err)
	}

	// Solar deployment: a 5 mW-peak array, sampled through a recorder so
	// we can plot the capacitor's charge level.
	rec := energy.NewRecorder(
		energy.NewIntermittent(energy.Cap100uF, energy.NewSolarHarvester(5e-3, 7)), 400)
	dev := mcu.New(rec)
	img, err := repro.Deploy(dev, model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nclassifying the morning's activity windows on solar power:")
	for i, ex := range ds.Test {
		want, err := repro.SONIC().Infer(benchImg, model.QuantizeInput(ex.X))
		if err != nil {
			log.Fatal(err)
		}
		got, err := repro.SONIC().Infer(img, model.QuantizeInput(ex.X))
		if err != nil {
			log.Fatal(err)
		}
		if repro.Argmax(got) != repro.Argmax(want) {
			log.Fatalf("window %d: solar result diverged from bench!", i)
		}
		fmt.Printf("  window %d: %s\n", i, names[repro.Argmax(got)])
	}
	st := dev.Stats()
	fmt.Printf("\n%d power failures, %.2f mJ consumed, %.2f s spent recharging\n",
		st.Reboots, st.EnergyMJ(), st.DeadSeconds)
	fmt.Println("all solar-powered results identical to the continuous-power bench run")

	// Render the capacitor sawtooth (subsampled).
	trace := rec.Trace()
	fmt.Printf("\ncapacitor charge over the first inference (%d samples, full = %.1f uJ):\n",
		len(trace), rec.BufferEnergy()/1e3)
	const width = 64
	full := rec.BufferEnergy()
	var b strings.Builder
	for row := 4; row >= 0; row-- {
		lo := float64(row) / 5 * full
		b.WriteString("  |")
		for i := 0; i < width && i < len(trace); i++ {
			p := trace[i*max(1, len(trace)/width)]
			if p.LevelNJ >= lo {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "> ops\n")
	fmt.Print(b.String())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
