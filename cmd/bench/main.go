// Command bench measures the simulator's wall-clock performance on the
// workloads that dominate development time — the Fig. 9 measurement
// matrix (72 cells: three networks × six runtimes × four power systems)
// and the intermittence-correctness fuzz campaign — and records them as
// JSON, seeding the repository's performance trajectory. Each perf PR
// appends its before/after to the tracked BENCH_PR<n>.json files.
//
// Usage:
//
//	bench                      # measure and write BENCH_PR3.json
//	bench -count 5 -out /tmp/b.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/intermittest"
	"repro/internal/prof"
)

// preBulkFig9NsPerOp is BenchmarkFig9 at the commit before the bulk-charge
// fast path (ad4056e), measured with -benchtime=1x on the reference
// machine: 1.079 s per 72-cell matrix. The "before" of this PR's ≥3× goal.
const preBulkFig9NsPerOp int64 = 1_079_000_000

type cellTime struct {
	Net     string `json:"net"`
	Runtime string `json:"runtime"`
	Power   string `json:"power"`
	NsPerOp int64  `json:"ns_per_op"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`

	Fig9 struct {
		BeforeNsPerOp int64      `json:"before_ns_per_op"`
		AfterNsPerOp  int64      `json:"after_ns_per_op"`
		Speedup       float64    `json:"speedup"`
		Iterations    int        `json:"iterations"`
		Cells         []cellTime `json:"cells"`
	} `json:"fig9"`

	Campaign struct {
		NsPerOp    int64 `json:"ns_per_op"`
		Iterations int   `json:"iterations"`
	} `json:"intermittest_campaign"`
}

var profiler = prof.RegisterFlags()

func main() {
	var (
		out   = flag.String("out", "BENCH_PR3.json", "output JSON path")
		count = flag.Int("count", 3, "timed iterations per workload")
		seed  = flag.Uint64("seed", 1, "model seed")
	)
	flag.Parse()
	if err := profiler.Start(); err != nil {
		fail(err)
	}
	defer profiler.Stop()

	var rep report
	rep.GoVersion = runtime.Version()
	rep.GOARCH = runtime.GOARCH

	// Fig. 9 matrix: GENESIS preparation is untimed (as in BenchmarkFig9);
	// the timed region is the full 72-cell measurement.
	fmt.Fprintln(os.Stderr, "bench: preparing models (quick GENESIS sweep)...")
	prepped, err := harness.PrepareAll(harness.PrepareOptions{Seed: *seed, Quick: true})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench: Fig. 9 matrix × %d...\n", *count)
	start := time.Now()
	for i := 0; i < *count; i++ {
		if _, err := harness.RunAll(prepped); err != nil {
			fail(err)
		}
	}
	rep.Fig9.BeforeNsPerOp = preBulkFig9NsPerOp
	rep.Fig9.AfterNsPerOp = time.Since(start).Nanoseconds() / int64(*count)
	rep.Fig9.Speedup = float64(preBulkFig9NsPerOp) / float64(rep.Fig9.AfterNsPerOp)
	rep.Fig9.Iterations = *count

	// Per-cell breakdown, one measurement each: where the time goes.
	for _, p := range prepped {
		input := p.Model.QuantizeInput(p.Input)
		for _, rt := range harness.Runtimes() {
			for _, pw := range harness.Powers() {
				t0 := time.Now()
				if _, err := harness.Measure(p.Net, p.Model, rt, pw, input); err != nil {
					fail(err)
				}
				rep.Fig9.Cells = append(rep.Fig9.Cells, cellTime{
					Net: p.Net, Runtime: rt.Name(), Power: pw.Name,
					NsPerOp: time.Since(t0).Nanoseconds(),
				})
			}
		}
	}

	// Intermittence fuzz campaign, as CI runs it: every runtime plus the
	// two negative controls, WAR shadow armed.
	fmt.Fprintf(os.Stderr, "bench: intermittest campaign × %d...\n", *count)
	qm, x := intermittest.TinyModel(*seed)
	rts := append(harness.Runtimes(),
		core.Runtime(checkpoint.Checkpoint{Interval: 8}), intermittest.Broken{})
	opt := intermittest.Options{Seed: *seed, CheckWAR: true}
	start = time.Now()
	for i := 0; i < *count; i++ {
		if _, err := intermittest.Campaign(qm, x, rts, opt); err != nil {
			fail(err)
		}
	}
	rep.Campaign.NsPerOp = time.Since(start).Nanoseconds() / int64(*count)
	rep.Campaign.Iterations = *count

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("fig9: %.3fs/op (%.2fx over pre-bulk %.3fs)  campaign: %.3fs/op  -> %s\n",
		float64(rep.Fig9.AfterNsPerOp)/1e9, rep.Fig9.Speedup,
		float64(preBulkFig9NsPerOp)/1e9, float64(rep.Campaign.NsPerOp)/1e9, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	profiler.Stop()
	os.Exit(1)
}
